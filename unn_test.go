package unn_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"unn"
)

func testDiscretes(t *testing.T, rng *rand.Rand, n, k int, side float64) []*unn.Discrete {
	t.Helper()
	pts := make([]*unn.Discrete, n)
	for i := range pts {
		cx, cy := rng.Float64()*side, rng.Float64()*side
		locs := make([]unn.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = unn.Pt(cx+rng.NormFloat64(), cy+rng.NormFloat64())
			w[j] = 0.5 + rng.Float64()
		}
		p, err := unn.NewDiscrete(locs, w)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = p
	}
	return pts
}

// TestOpenAutoDiscrete: the default backend for discrete input is the
// exact reference and supports all three query kinds.
func TestOpenAutoDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := testDiscretes(t, rng, 16, 3, 20)
	h, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Backend(); got != unn.BackendBrute {
		t.Fatalf("auto backend = %s, want brute", got)
	}
	want := unn.CapNonzero | unn.CapProbs | unn.CapExpected | unn.CapTopK
	if got := h.Capabilities(); got != want {
		t.Fatalf("capabilities = %v, want %v", got, want)
	}
	q := unn.Pt(10, 10)
	nn, err := h.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := unn.NonzeroNN(unn.FromDiscrete(pts), q); !reflect.DeepEqual(nn, want) {
		t.Fatalf("QueryNonzero = %v, want %v", nn, want)
	}
	probs, err := h.QueryProbs(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := unn.ExactProbabilities(pts, q)
	for _, pr := range probs {
		if math.Abs(pr.P-exact[pr.I]) > 1e-12 {
			t.Fatalf("π_%d = %v, want %v", pr.I, pr.P, exact[pr.I])
		}
	}
	if _, _, err := h.QueryExpected(q); err != nil {
		t.Fatal(err)
	}
}

// TestOpenBackendsAgree: every nonzero-capable backend opened through
// the one Open API answers identically (up to the structures' own
// guarantees) on disk datasets.
func TestOpenBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	disks := make([]unn.Disk, 12)
	for i := range disks {
		disks[i] = unn.DiskAt(rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64()*1.5)
	}
	hBrute, err := unn.OpenDisks(disks)
	if err != nil {
		t.Fatal(err)
	}
	hTS, err := unn.OpenDisks(disks, unn.WithBackend(unn.BackendTwoStageDisks))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]unn.Point, 128)
	for i := range qs {
		qs[i] = unn.Pt(rng.Float64()*30, rng.Float64()*30)
	}
	a, err := hBrute.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hTS.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("brute and two-stage disagree on disks")
	}
}

// TestOpenCapabilityError: asking a handle for an unsupported kind
// fails with ErrUnsupported.
func TestOpenCapabilityError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := testDiscretes(t, rng, 8, 2, 10)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendTwoStageDiscrete))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.QueryProbs(unn.Pt(0, 0), 0); !errors.Is(err, unn.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// TestOpenSquares: the L∞/L1 structures are reachable through Open.
func TestOpenSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	squares := make([]unn.Square, 10)
	for i := range squares {
		squares[i] = unn.Square{C: unn.Pt(rng.Float64()*20, rng.Float64()*20), R: 0.5 + rng.Float64()}
	}
	for _, b := range []unn.Backend{unn.BackendAuto, unn.BackendTwoStageLinf, unn.BackendTwoStageL1} {
		h, err := unn.OpenSquares(squares, unn.WithBackend(b))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if out, err := h.QueryNonzero(unn.Pt(10, 10)); err != nil || len(out) == 0 {
			t.Fatalf("%s: out=%v err=%v", b, out, err)
		}
	}
}

// TestOpenAutoNeverMismatches is the BackendAuto regression test: for
// every dataset kind, the auto-selected backend must support every
// query kind that at least one backend could support on that dataset —
// in particular, probability queries over continuous (non-discrete)
// inputs must not land on a backend that returns ErrUnsupported.
func TestOpenAutoNeverMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	disks := make([]unn.Disk, 10)
	for i := range disks {
		disks[i] = unn.DiskAt(rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64())
	}
	gauss := make([]unn.Uncertain, 10)
	for i := range gauss {
		d := unn.DiskAt(rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64())
		gauss[i] = unn.NewTruncGauss(d, d.R/2)
	}
	squares := make([]unn.Square, 10)
	for i := range squares {
		squares[i] = unn.Square{C: unn.Pt(rng.Float64()*30, rng.Float64()*30), R: 0.5 + rng.Float64()}
	}
	cases := []struct {
		name string
		open func() (*unn.Handle, error)
		want unn.Capability
	}{
		{"discrete", func() (*unn.Handle, error) {
			return unn.OpenDiscrete(testDiscretes(t, rng, 10, 2, 30))
		}, unn.CapNonzero | unn.CapProbs | unn.CapExpected},
		{"disks", func() (*unn.Handle, error) {
			return unn.OpenDisks(disks)
		}, unn.CapNonzero | unn.CapProbs},
		{"continuous", func() (*unn.Handle, error) {
			return unn.Open(gauss)
		}, unn.CapNonzero | unn.CapProbs},
		{"squares", func() (*unn.Handle, error) {
			return unn.OpenSquares(squares)
		}, unn.CapNonzero},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			caps := h.Capabilities()
			if !caps.Has(tc.want) {
				t.Fatalf("auto capabilities = %v, want at least %v", caps, tc.want)
			}
			q := unn.Pt(15, 15)
			if caps.Has(unn.CapNonzero) {
				if _, err := h.QueryNonzero(q); err != nil {
					t.Fatalf("QueryNonzero: %v", err)
				}
			}
			if caps.Has(unn.CapProbs) {
				if _, err := h.QueryProbs(q, 0); err != nil {
					t.Fatalf("QueryProbs: %v", err)
				}
			}
			if caps.Has(unn.CapExpected) {
				if _, _, err := h.QueryExpected(q); err != nil {
					t.Fatalf("QueryExpected: %v", err)
				}
			}
		})
	}
}

// TestOpenSharded: the sharded execution layer is reachable from Open
// (including auto selection) and agrees with the monolithic handle.
func TestOpenSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := testDiscretes(t, rng, 24, 3, 40)
	mono, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := unn.OpenDiscrete(pts, unn.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]unn.Point, 64)
	for i := range qs {
		qs[i] = unn.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	a, err := mono.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded auto handle disagrees with the monolithic one")
	}

	// The grid partitioner only shapes sharding: with WithShards it works,
	// without it Open must reject the dangling option.
	if _, err := unn.OpenDiscrete(pts, unn.WithShards(4), unn.WithShardGrid()); err != nil {
		t.Fatalf("WithShards+WithShardGrid: %v", err)
	}
	if _, err := unn.OpenDiscrete(pts, unn.WithShardGrid()); err == nil {
		t.Fatal("WithShardGrid without WithShards was silently accepted")
	}
	if _, err := unn.OpenDiscrete(pts, unn.WithShards(0)); err == nil {
		t.Fatal("WithShards(0) was silently accepted as unsharded")
	}
}

// TestHandleServe: the async stream is reachable from the public API.
func TestHandleServe(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := testDiscretes(t, rng, 16, 2, 30)
	h, err := unn.OpenDiscrete(pts, unn.WithShards(2), unn.WithServeBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan unn.Query, 16)
	for i := 0; i < 16; i++ {
		in <- unn.Query{Seq: uint64(i), Kind: unn.CapNonzero,
			Q: unn.Pt(rng.Float64()*30, rng.Float64()*30)}
	}
	close(in)
	got := 0
	for a := range h.Serve(context.Background(), in) {
		if a.Err != nil {
			t.Fatalf("seq %d: %v", a.Seq, a.Err)
		}
		got++
	}
	if got != 16 {
		t.Fatalf("drained %d answers, want 16", got)
	}
}

// TestHandleEstimator: Threshold/TopK work against any probability-
// capable handle.
func TestHandleEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := testDiscretes(t, rng, 10, 3, 15)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendSpiral))
	if err != nil {
		t.Fatal(err)
	}
	q := unn.Pt(7, 7)
	top := unn.TopK(unn.HandleEstimator{H: h}, q, 3, 0.02)
	if len(top) == 0 || len(top) > 3 {
		t.Fatalf("TopK = %v", top)
	}
	for _, pr := range unn.Threshold(unn.HandleEstimator{H: h}, q, 0.25) {
		if pr.P < 0.25 {
			t.Fatalf("threshold returned %v", pr)
		}
	}
}

// TestHandleDynamic drives the public mutation API: Insert/Delete on a
// sharded handle track a freshly opened monolithic handle over the
// surviving points, the shard count responds to growth, and the answer
// cache never serves pre-mutation answers.
func TestHandleDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1))
	const side = 50.0
	pool := testDiscretes(t, rng, 120, 2, side)
	live := append([]*unn.Discrete(nil), pool[:20]...)
	h, err := unn.OpenDiscrete(live, unn.WithShards(4), unn.WithCache(64, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mutable() {
		t.Fatal("sharded handle is not mutable")
	}
	before := h.ShardCount()
	for _, p := range pool[20:] {
		gi, err := h.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if gi != len(live) {
			t.Fatalf("Insert returned %d, want %d", gi, len(live))
		}
		live = append(live, p)
	}
	for i := 0; i < 30; i++ {
		di := rng.Intn(len(live))
		if err := h.Delete(di); err != nil {
			t.Fatal(err)
		}
		live = append(live[:di], live[di+1:]...)
	}
	if h.Epoch() != 130 {
		t.Fatalf("epoch = %d, want 130", h.Epoch())
	}
	if after := h.ShardCount(); after <= before {
		t.Fatalf("shard count did not grow under inserts (%d → %d)", before, after)
	}
	mono, err := unn.OpenDiscrete(live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		q := unn.Pt(rng.Float64()*side, rng.Float64()*side)
		want, _ := mono.QueryNonzero(q)
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
		wi, wd, _ := mono.QueryExpected(q)
		gi, gd, err := h.QueryExpected(q)
		if err != nil {
			t.Fatal(err)
		}
		if wi != gi || wd != gd {
			t.Fatalf("q=%v: expected (%d,%v), want (%d,%v)", q, gi, gd, wi, wd)
		}
	}
}

// TestHandleBatchMutate drives the epoch-coalesced mutation path
// through the public API: a BatchMutate burst applies with sequential
// semantics and one epoch bump, the insert buffer absorbs inserts
// between flushes, and answers stay identical to a fresh monolithic
// handle over the survivors.
func TestHandleBatchMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(0xba7))
	const side = 50.0
	pool := testDiscretes(t, rng, 80, 2, side)
	live := append([]*unn.Discrete(nil), pool[:24]...)
	h, err := unn.OpenDiscrete(live, unn.WithShards(4), unn.WithInsertBuffer(8), unn.WithAutoCache(64))
	if err != nil {
		t.Fatal(err)
	}
	var ms []unn.Mutation
	for _, p := range pool[24:56] {
		ms = append(ms, unn.InsertMutation(p))
	}
	ms = append(ms, unn.DeleteMutation(0), unn.DeleteMutation(0))
	res, err := h.BatchMutate(ms)
	if err != nil {
		t.Fatal(err)
	}
	live = append(live, pool[24:56]...)[2:]
	if got, want := res[0], 24; got != want {
		t.Fatalf("first insert landed at %d, want %d", got, want)
	}
	if got, want := res[len(res)-1], len(live); got != want {
		t.Fatalf("final delete reported %d live items, want %d", got, want)
	}
	if h.Epoch() != 1 {
		t.Fatalf("epoch = %d after one batch, want 1", h.Epoch())
	}
	mono, err := unn.OpenDiscrete(live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		q := unn.Pt(rng.Float64()*side, rng.Float64()*side)
		want, _ := mono.QueryNonzero(q)
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
	}
	// Option validation: the buffer needs the sharded layer, and batches
	// on monolithic handles report ErrImmutable.
	if _, err := unn.OpenDiscrete(pool[:8], unn.WithInsertBuffer(0)); err == nil {
		t.Fatal("WithInsertBuffer without WithShards was accepted")
	}
	if _, err := mono.BatchMutate([]unn.Mutation{unn.DeleteMutation(0)}); !errors.Is(err, unn.ErrImmutable) {
		t.Fatalf("BatchMutate on monolithic handle: err = %v, want ErrImmutable", err)
	}
}

// TestHandleImmutable: monolithic handles refuse mutations, and the
// adaptive knob demands sharding.
func TestHandleImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1a1))
	pts := testDiscretes(t, rng, 8, 2, 20)
	h, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Mutable() {
		t.Fatal("monolithic handle reports Mutable")
	}
	if _, err := h.Insert(pts[0]); !errors.Is(err, unn.ErrImmutable) {
		t.Fatalf("Insert err = %v, want ErrImmutable", err)
	}
	if err := h.Delete(0); !errors.Is(err, unn.ErrImmutable) {
		t.Fatalf("Delete err = %v, want ErrImmutable", err)
	}
	if h.ShardCount() != 0 {
		t.Fatalf("monolithic ShardCount = %d, want 0", h.ShardCount())
	}
	if _, err := unn.OpenDiscrete(pts, unn.WithShardAdaptive(8)); err == nil {
		t.Fatal("WithShardAdaptive without WithShards was accepted")
	}
}

// TestOpenSquaresShardedProbs is the regression for the squares-only
// sharded merge: QueryProbs on an OpenSquares handle with WithShards
// must answer ErrUnsupported (no squares backend quantifies) — it used
// to panic on the dataset's absent Points view. Mutations keep working.
func TestOpenSquaresShardedProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5c))
	squares := make([]unn.Square, 12)
	for i := range squares {
		squares[i] = unn.Square{C: unn.Pt(rng.Float64()*30, rng.Float64()*30), R: 0.4 + rng.Float64()}
	}
	h, err := unn.OpenSquares(squares, unn.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.QueryProbs(unn.Pt(5, 5), 0); !errors.Is(err, unn.ErrUnsupported) {
		t.Fatalf("QueryProbs err = %v, want ErrUnsupported", err)
	}
	extra := unn.Square{C: unn.Pt(31, 31), R: 0.5}
	if _, err := h.InsertSquare(extra); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	mono, err := unn.OpenSquares(append(squares[1:12:12], extra))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		q := unn.Pt(rng.Float64()*32, rng.Float64()*32)
		want, _ := mono.QueryNonzero(q)
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
	}
}

// TestOpenWithPlanner: the cost-based planner through the public API —
// full capability set, parity with the rule-based auto handle, Explain
// with cost estimates, Stats counters, and the option-combination
// errors.
func TestOpenWithPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(0x91a))
	pts := testDiscretes(t, rng, 40, 3, 60)
	h, err := unn.OpenDiscrete(pts, unn.WithPlanner())
	if err != nil {
		t.Fatal(err)
	}
	auto, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Capabilities().Has(auto.Capabilities()) {
		t.Fatalf("planner caps %v lost some of auto's %v", h.Capabilities(), auto.Capabilities())
	}
	for i := 0; i < 12; i++ {
		q := unn.Pt(rng.Float64()*60, rng.Float64()*60)
		want, err := auto.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: planner NN≠0 %v, want %v", q, got, want)
		}
		wi, wd, err := auto.QueryExpected(q)
		if err != nil {
			t.Fatal(err)
		}
		gi, gd, err := h.QueryExpected(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gd-wd) > 1e-9 || (gi != wi && gd != wd) {
			t.Fatalf("q=%v: planner E[d] (%d,%v), want (%d,%v)", q, gi, gd, wi, wd)
		}
	}
	expl := h.Explain()
	if !strings.Contains(expl, "plan: n=40") {
		t.Fatalf("Explain missing the plan header:\n%s", expl)
	}
	st := h.Stats()
	if st.Kind(unn.QueryKindNonzero).Count == 0 || st.Kind(unn.QueryKindExpected).Count == 0 {
		t.Fatalf("Stats counters empty after queries: %+v", st)
	}
	// WithPlanner replaces the backend choice: pinning a backend too is a
	// contradiction.
	if _, err := unn.OpenDiscrete(pts, unn.WithPlanner(), unn.WithBackend(unn.BackendBrute)); err == nil {
		t.Fatal("WithPlanner + WithBackend accepted")
	}
	// A missing calibration table fails Open, not silently.
	if _, err := unn.OpenDiscrete(pts, unn.WithCalibration("/nonexistent/bench.json")); err == nil {
		t.Fatal("WithCalibration over a missing file accepted")
	}
	// The legacy adaptive cutoff is subsumed by per-shard planning;
	// combining them would silently ignore the cutoff, so it is rejected.
	if _, err := unn.OpenDiscrete(pts, unn.WithPlanner(), unn.WithShards(2), unn.WithShardAdaptive(8)); err == nil {
		t.Fatal("WithPlanner + WithShardAdaptive accepted")
	}
	// An all-π mix still serves every kind.
	hm, err := unn.OpenDiscrete(pts, unn.WithPlannerMix(0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hm.QueryNonzero(unn.Pt(1, 1)); err != nil {
		t.Fatalf("zero-weight kind stopped working: %v", err)
	}
}

// TestOpenAutoCache: the adaptive cache quantum resolves from the built
// structure and shows up in Stats.
func TestOpenAutoCache(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcac))
	pts := testDiscretes(t, rng, 24, 2, 30)
	h, err := unn.OpenDiscrete(pts, unn.WithAutoCache(64))
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.CacheQuantum <= 0 {
		t.Fatalf("adaptive cache quantum = %v, want > 0", st.CacheQuantum)
	}
	q := unn.Pt(15, 15)
	if _, err := h.QueryNonzero(q); err != nil {
		t.Fatal(err)
	}
	if _, err := h.QueryNonzero(unn.Pt(q.X+st.CacheQuantum/64, q.Y)); err != nil {
		t.Fatal(err)
	}
	if hits, _ := h.CacheStats(); hits == 0 {
		t.Fatal("nearby queries missed the adaptive-quantum cache")
	}
}

// TestOpenPlannerSharded: planner + shards composes with the dynamic
// mutation API end to end.
func TestOpenPlannerSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5a9))
	pts := testDiscretes(t, rng, 30, 2, 50)
	h, err := unn.OpenDiscrete(pts, unn.WithPlanner(), unn.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mutable() {
		t.Fatal("sharded planner handle is not mutable")
	}
	extra := testDiscretes(t, rng, 1, 2, 50)[0]
	if _, err := h.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	mono, err := unn.OpenDiscrete(append(pts[1:30:30], extra))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		q := unn.Pt(rng.Float64()*50, rng.Float64()*50)
		want, _ := mono.QueryNonzero(q)
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
	}
	if expl := h.Explain(); !strings.Contains(expl, "shard 0") {
		t.Fatalf("sharded planner Explain missing shard lines:\n%s", expl)
	}
}

// TestAdaptivePlannerHandle covers the public adaptive-loop surface:
// the option demands sharding, a manual Replan installs a fresh plan
// without changing any answer, and Stats/Explain report the loop.
func TestAdaptivePlannerHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xada))
	pts := testDiscretes(t, rng, 60, 2, 50)
	if _, err := unn.OpenDiscrete(pts, unn.WithAdaptivePlanner()); err == nil {
		t.Fatal("WithAdaptivePlanner without WithShards was accepted")
	}
	h, err := unn.OpenDiscrete(pts, unn.WithAdaptivePlanner(), unn.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := h.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("manual Replan on a quiescent handle did not install")
	}
	st := h.Stats()
	if st.Replans != 1 || st.LastReplanReason == "" {
		t.Fatalf("Stats after Replan = (%d, %q)", st.Replans, st.LastReplanReason)
	}
	if len(st.ShardTemps) != 3 {
		t.Fatalf("ShardTemps = %v, want 3 entries", st.ShardTemps)
	}
	if expl := h.Explain(); !strings.Contains(expl, "adaptive:") {
		t.Fatalf("Explain missing the adaptive block:\n%s", expl)
	}
	for i := 0; i < 12; i++ {
		q := unn.Pt(rng.Float64()*50, rng.Float64()*50)
		want, _ := mono.QueryNonzero(q)
		got, err := h.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v post-replan nonzero %v, want %v", q, got, want)
		}
	}
	// The loop without the planner knob still implies planning (the
	// option sets it), and a plain non-adaptive handle refuses Replan.
	if _, err := mono.Replan(); err == nil {
		t.Fatal("Replan on a non-adaptive handle did not error")
	}
}
