package unn_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"unn"
)

func testDiscretes(t *testing.T, rng *rand.Rand, n, k int, side float64) []*unn.Discrete {
	t.Helper()
	pts := make([]*unn.Discrete, n)
	for i := range pts {
		cx, cy := rng.Float64()*side, rng.Float64()*side
		locs := make([]unn.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = unn.Pt(cx+rng.NormFloat64(), cy+rng.NormFloat64())
			w[j] = 0.5 + rng.Float64()
		}
		p, err := unn.NewDiscrete(locs, w)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = p
	}
	return pts
}

// TestOpenAutoDiscrete: the default backend for discrete input is the
// exact reference and supports all three query kinds.
func TestOpenAutoDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := testDiscretes(t, rng, 16, 3, 20)
	h, err := unn.OpenDiscrete(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Backend(); got != unn.BackendBrute {
		t.Fatalf("auto backend = %s, want brute", got)
	}
	want := unn.CapNonzero | unn.CapProbs | unn.CapExpected
	if got := h.Capabilities(); got != want {
		t.Fatalf("capabilities = %v, want %v", got, want)
	}
	q := unn.Pt(10, 10)
	nn, err := h.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := unn.NonzeroNN(unn.FromDiscrete(pts), q); !reflect.DeepEqual(nn, want) {
		t.Fatalf("QueryNonzero = %v, want %v", nn, want)
	}
	probs, err := h.QueryProbs(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := unn.ExactProbabilities(pts, q)
	for _, pr := range probs {
		if math.Abs(pr.P-exact[pr.I]) > 1e-12 {
			t.Fatalf("π_%d = %v, want %v", pr.I, pr.P, exact[pr.I])
		}
	}
	if _, _, err := h.QueryExpected(q); err != nil {
		t.Fatal(err)
	}
}

// TestOpenBackendsAgree: every nonzero-capable backend opened through
// the one Open API answers identically (up to the structures' own
// guarantees) on disk datasets.
func TestOpenBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	disks := make([]unn.Disk, 12)
	for i := range disks {
		disks[i] = unn.DiskAt(rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64()*1.5)
	}
	hBrute, err := unn.OpenDisks(disks)
	if err != nil {
		t.Fatal(err)
	}
	hTS, err := unn.OpenDisks(disks, unn.WithBackend(unn.BackendTwoStageDisks))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]unn.Point, 128)
	for i := range qs {
		qs[i] = unn.Pt(rng.Float64()*30, rng.Float64()*30)
	}
	a, err := hBrute.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hTS.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("brute and two-stage disagree on disks")
	}
}

// TestOpenCapabilityError: asking a handle for an unsupported kind
// fails with ErrUnsupported.
func TestOpenCapabilityError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := testDiscretes(t, rng, 8, 2, 10)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendTwoStageDiscrete))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.QueryProbs(unn.Pt(0, 0), 0); !errors.Is(err, unn.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// TestOpenSquares: the L∞/L1 structures are reachable through Open.
func TestOpenSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	squares := make([]unn.Square, 10)
	for i := range squares {
		squares[i] = unn.Square{C: unn.Pt(rng.Float64()*20, rng.Float64()*20), R: 0.5 + rng.Float64()}
	}
	for _, b := range []unn.Backend{unn.BackendAuto, unn.BackendTwoStageLinf, unn.BackendTwoStageL1} {
		h, err := unn.OpenSquares(squares, unn.WithBackend(b))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if out, err := h.QueryNonzero(unn.Pt(10, 10)); err != nil || len(out) == 0 {
			t.Fatalf("%s: out=%v err=%v", b, out, err)
		}
	}
}

// TestHandleEstimator: Threshold/TopK work against any probability-
// capable handle.
func TestHandleEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := testDiscretes(t, rng, 10, 3, 15)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendSpiral))
	if err != nil {
		t.Fatal(err)
	}
	q := unn.Pt(7, 7)
	top := unn.TopK(unn.HandleEstimator{H: h}, q, 3, 0.02)
	if len(top) == 0 || len(top) > 3 {
		t.Fatalf("TopK = %v", top)
	}
	for _, pr := range unn.Threshold(unn.HandleEstimator{H: h}, q, 0.25) {
		if pr.P < 0.25 {
			t.Fatalf("threshold returned %v", pr)
		}
	}
}
