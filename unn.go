// Package unn is a library for nearest-neighbor searching under
// uncertainty in the plane, reproducing
//
//	"Nearest-Neighbor Searching Under Uncertainty II"
//	(Agarwal, Aronov, Har-Peled, Phillips, Yi, Zhang; PODS 2013 /
//	arXiv:1606.00112), together with the expected-distance semantics of
//	the companion PODS 2012 paper [AESZ12].
//
// An uncertain point is a probability distribution over locations —
// continuous with bounded support (uniform disk, truncated Gaussian,
// histogram) or discrete ({(p_j, w_j)}, Σw = 1). For a query point q the
// library answers:
//
//   - NN≠0(q): every point with nonzero probability of being the nearest
//     neighbor — via the exact O(n) oracle (Lemma 2.1), the nonzero
//     Voronoi diagram V≠0(P) with point location (Theorems 2.5–2.14), or
//     near-linear two-stage structures (Theorems 3.1/3.2);
//   - quantification probabilities π_i(q) = Pr[P_i is the NN of q] —
//     exactly (Eq. (2), or the V_Pr diagram of Theorem 4.2), by Monte
//     Carlo (Theorem 4.3/4.5), or by deterministic spiral search
//     (Theorem 4.7); plus threshold and top-k wrappers;
//   - expected-distance NN queries (the [AESZ12] semantics).
//
// The quickstart example under examples/quickstart exercises every query
// type; DESIGN.md maps each theorem to its implementation and
// EXPERIMENTS.md records the measured reproduction of every claim.
package unn

import (
	"math/rand"

	"unn/internal/expected"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// --- geometry ---------------------------------------------------------------

// Point is a point in the plane.
type Point = geom.Point

// Disk is a closed disk (an uncertainty region).
type Disk = geom.Disk

// Rect is an axis-aligned rectangle.
type Rect = geom.Rect

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// DiskAt builds a Disk.
func DiskAt(x, y, r float64) Disk { return geom.DiskAt(x, y, r) }

// --- uncertain point model ----------------------------------------------

// Uncertain is an uncertain point: any probability distribution over
// planar locations exposing extreme distances, the distance cdf and
// sampling.
type Uncertain = uncertain.Point

// Discrete is an uncertain point with finitely many locations.
type Discrete = uncertain.Discrete

// UniformDisk is the uniform distribution on a disk.
type UniformDisk = uncertain.UniformDisk

// TruncGauss is a Gaussian truncated to a disk.
type TruncGauss = uncertain.TruncGauss

// Histogram is a grid-histogram pdf.
type Histogram = uncertain.Histogram

// NewDiscrete builds a discrete uncertain point (weights are normalized).
func NewDiscrete(locs []Point, w []float64) (*Discrete, error) {
	return uncertain.NewDiscrete(locs, w)
}

// UniformDiscrete builds a discrete uncertain point with equal weights.
func UniformDiscrete(locs []Point) *Discrete { return uncertain.UniformDiscrete(locs) }

// NewTruncGauss builds a truncated Gaussian on disk d.
func NewTruncGauss(d Disk, sigma float64) *TruncGauss { return uncertain.NewTruncGauss(d, sigma) }

// NewHistogram builds a histogram pdf.
func NewHistogram(origin Point, cellW, cellH float64, w [][]float64) (*Histogram, error) {
	return uncertain.NewHistogram(origin, cellW, cellH, w)
}

// Discretize samples m locations from any uncertain point (the
// continuous→discrete reduction of Theorem 4.5).
func Discretize(p Uncertain, m int, rng *rand.Rand) *Discrete {
	return uncertain.Discretize(p, m, rng)
}

// Disks wraps plain disks as uncertain points (the pdf is irrelevant for
// NN≠0 queries).
func Disks(disks []Disk) []Uncertain { return nonzero.DisksAsUncertain(disks) }

// FromDiscrete converts discrete points to the generic interface.
func FromDiscrete(pts []*Discrete) []Uncertain { return nonzero.DiscreteAsUncertain(pts) }

// --- nonzero nearest neighbors (Section 2 & 3) -------------------------------

// NonzeroNN returns NN≠0(q) = {i : π_i(q) > 0} by the exact O(n) oracle
// of Lemma 2.1.
func NonzeroNN(pts []Uncertain, q Point) []int { return nonzero.Brute(pts, q) }

// Diagram is a constructed nonzero Voronoi diagram V≠0(P) with point
// location (Theorem 2.11).
type Diagram = nonzero.Diagram

// DiagramOptions tunes diagram construction.
type DiagramOptions = nonzero.DiagramOptions

// BuildDiskDiagram constructs V≠0 for disk regions (Theorem 2.5).
func BuildDiskDiagram(disks []Disk, opt DiagramOptions) (*Diagram, error) {
	return nonzero.BuildDiskDiagram(disks, opt)
}

// BuildDiscreteDiagram constructs V≠0 for discrete points (Theorem 2.14).
func BuildDiscreteDiagram(pts []*Discrete, opt DiagramOptions) (*Diagram, error) {
	return nonzero.BuildDiscreteDiagram(pts, opt)
}

// DiskComplexity is the exact vertex census of V≠0 for disk regions.
type DiskComplexity = nonzero.DiskComplexity

// CountDiskComplexity counts breakpoints and curve crossings of V≠0(P)
// exactly in the polar parameterization (Theorems 2.5–2.10 experiments).
func CountDiskComplexity(disks []Disk, grid int) DiskComplexity {
	return nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, grid)
}

// TwoStageDisks is the near-linear NN≠0 structure for disks (Thm 3.1).
type TwoStageDisks = nonzero.TwoStageDisks

// NewTwoStageDisks preprocesses disks for NN≠0 queries.
func NewTwoStageDisks(disks []Disk) *TwoStageDisks { return nonzero.NewTwoStageDisks(disks) }

// TwoStageDiscrete is the near-linear NN≠0 structure for discrete points
// (Theorem 3.2).
type TwoStageDiscrete = nonzero.TwoStageDiscrete

// NewTwoStageDiscrete preprocesses discrete points for NN≠0 queries.
func NewTwoStageDiscrete(pts []*Discrete) *TwoStageDiscrete {
	return nonzero.NewTwoStageDiscrete(pts)
}

// --- quantification probabilities (Section 4) --------------------------------

// Prob is a sparse (index, probability) result entry.
type Prob = quantify.Prob

// ExactProbabilities evaluates π_i(q) for all i exactly (Eq. (2)).
func ExactProbabilities(pts []*Discrete, q Point) []float64 {
	return quantify.ExactAt(pts, q)
}

// VPr is the exact probabilistic Voronoi diagram (§4.1, Theorem 4.2).
type VPr = quantify.VPr

// VPrOptions tunes V_Pr construction.
type VPrOptions = quantify.VPrOptions

// BuildVPr constructs the exact probabilistic Voronoi diagram.
func BuildVPr(pts []*Discrete, opt VPrOptions) (*VPr, error) {
	return quantify.BuildVPr(pts, opt)
}

// MonteCarlo is the randomized structure of Theorem 4.3/4.5.
type MonteCarlo = quantify.MonteCarlo

// MCOptions configures Monte-Carlo construction.
type MCOptions = quantify.MCOptions

// NewMonteCarlo builds a Monte-Carlo index with s instantiations.
func NewMonteCarlo(pts []Uncertain, s int, opt MCOptions) (*MonteCarlo, error) {
	return quantify.NewMonteCarlo(pts, s, opt)
}

// MCRounds returns the round count prescribed by Theorem 4.3 for a
// uniform (all queries) ε/δ guarantee.
func MCRounds(n, k int, eps, delta float64) int { return quantify.Rounds(n, k, eps, delta) }

// MCRoundsPerQuery returns the per-query round count (Chernoff only).
func MCRoundsPerQuery(n int, eps, delta float64) int {
	return quantify.RoundsEmpirical(n, eps, delta)
}

// Spiral is the deterministic structure of Theorem 4.7.
type Spiral = quantify.Spiral

// NewSpiral preprocesses discrete points for spiral-search queries.
func NewSpiral(pts []*Discrete) (*Spiral, error) { return quantify.NewSpiral(pts) }

// Threshold returns the points whose estimated π_i(q) is at least tau
// (the probabilistic threshold query of [DYM+05]).
func Threshold(est quantify.Estimator, q Point, tau float64) []Prob {
	return quantify.Threshold(est, q, tau)
}

// TopK returns the k most probable nearest neighbors.
func TopK(est quantify.Estimator, q Point, k int, eps float64) []Prob {
	return quantify.TopK(est, q, k, eps)
}

// SpiralEstimator adapts a Spiral to the Threshold/TopK interface.
type SpiralEstimator = quantify.SpiralEstimator

// MCEstimator adapts a MonteCarlo index to the Threshold/TopK interface.
type MCEstimator = quantify.MCEstimator

// --- expected-distance semantics ([AESZ12]) ----------------------------------

// ExpectedIndex answers expected-distance NN queries (the PODS 2012
// companion semantics).
type ExpectedIndex = expected.Index

// NewExpectedIndex builds an expected-distance NN index.
func NewExpectedIndex(pts []*Discrete) (*ExpectedIndex, error) { return expected.New(pts) }

// TrapQuerier answers Diagram queries via a randomized-incremental
// trapezoidal map ([dBCKO08 Ch. 6]) — the literal point-location
// structure of Theorem 2.11.
type TrapQuerier = nonzero.TrapQuerier

// NewTrapQuerier builds the trapezoidal-map querier over a diagram.
func NewTrapQuerier(d *Diagram, rng *rand.Rand) (*TrapQuerier, error) {
	return nonzero.NewTrapQuerier(d, rng)
}

// NewSpiralContinuous builds a spiral-search structure over continuous
// uncertain points via the Theorem 4.5 discretization — the engineering
// answer to the paper's open problem (iii). It returns the structure and
// the discretized points (needed for exact re-evaluation).
func NewSpiralContinuous(pts []Uncertain, perPoint int, rng *rand.Rand) (*Spiral, []*Discrete, error) {
	return quantify.NewSpiralContinuous(pts, perPoint, rng)
}

// NewMonteCarloParallel is NewMonteCarlo with construction fanned out
// over all CPUs; results are deterministic in the seed.
func NewMonteCarloParallel(pts []Uncertain, s int, opt MCOptions) (*MonteCarlo, error) {
	return quantify.NewMonteCarloParallel(pts, s, opt)
}

// --- L1 / L∞ metrics (remark after Theorem 3.1) ------------------------------

// Square is an L∞ ball (axis-aligned square) or, under the L1 API, a
// diamond: center plus radius.
type Square = lmetric.Square

// TwoStageLinf answers NN≠0 queries over square uncertainty regions
// under the Chebyshev metric.
type TwoStageLinf = lmetric.TwoStageLinf

// NewTwoStageLinf preprocesses square regions for L∞ NN≠0 queries.
func NewTwoStageLinf(squares []Square) *TwoStageLinf { return lmetric.NewTwoStageLinf(squares) }

// TwoStageL1 answers NN≠0 queries over diamond regions under the
// Manhattan metric (via the 45° reduction to L∞).
type TwoStageL1 = lmetric.TwoStageL1

// NewTwoStageL1 preprocesses diamond regions for L1 NN≠0 queries.
func NewTwoStageL1(diamonds []Square) *TwoStageL1 { return lmetric.NewTwoStageL1(diamonds) }

// NewSpiralQuadtree is NewSpiral with the quadtree branch-and-bound
// retrieval backend suggested in §4.3 Remark (ii) ([Har11]).
func NewSpiralQuadtree(pts []*Discrete) (*Spiral, error) {
	return quantify.NewSpiralQuadtree(pts)
}
