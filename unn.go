// Package unn is a library for nearest-neighbor searching under
// uncertainty in the plane, reproducing
//
//	"Nearest-Neighbor Searching Under Uncertainty II"
//	(Agarwal, Aronov, Har-Peled, Phillips, Yi, Zhang; PODS 2013 /
//	arXiv:1606.00112), together with the expected-distance semantics of
//	the companion PODS 2012 paper [AESZ12].
//
// An uncertain point is a probability distribution over locations —
// continuous with bounded support (uniform disk, truncated Gaussian,
// histogram) or discrete ({(p_j, w_j)}, Σw = 1). For a query point q the
// library answers:
//
//   - NN≠0(q): every point with nonzero probability of being the nearest
//     neighbor — via the exact O(n) oracle (Lemma 2.1), the nonzero
//     Voronoi diagram V≠0(P) with point location (Theorems 2.5–2.14), or
//     near-linear two-stage structures (Theorems 3.1/3.2);
//   - quantification probabilities π_i(q) = Pr[P_i is the NN of q] —
//     exactly (Eq. (2), or the V_Pr diagram of Theorem 4.2), by Monte
//     Carlo (Theorem 4.3/4.5), or by deterministic spiral search
//     (Theorem 4.7); plus threshold and top-k wrappers;
//   - top-k most-likely NN (Handle.QueryTopK): the k points with the
//     largest π_i(q), ranked by probability with deterministic
//     index-order tie-break — a first-class query kind served by any
//     π-capable backend;
//   - expected-distance NN queries (the [AESZ12] semantics).
//
// All of these are served through one query engine: Open builds any
// backend behind a capability-checked Handle with single, batched
// (parallel, deterministic order) and cached execution.
//
// # Cost-based planning
//
// WithPlanner replaces the rule-based automatic backend choice with a
// query planner: per-backend build and query costs are estimated from
// the paper's own asymptotics, calibrated to the machine (a Build-time
// micro-probe, or a persisted BENCH_engine.json via WithCalibration),
// and each query kind is assigned its cheapest capable backend — e.g.
// one discrete handle serving NN≠0 from the Theorem 3.2 two-stage
// structure, π from the Theorem 4.7 spiral search, and E[d] from the
// [AESZ12] centroid index, where the rule-based choice would pay the
// brute oracle's O(n) (or Õ(n²) for π) on every query. WithPlannerMix
// declares the expected workload; Handle.Explain reports the decision
// with its cost estimates; Handle.Stats exposes the measured per-kind
// latencies that close the calibration loop.
//
// # Sharding
//
// WithShards(k) turns on the sharded execution layer: the dataset is
// split into k spatial shards (kd-median cut on region centroids by
// default, WithShardGrid selects a grid cut), one backend instance is
// built per shard in parallel, and every query is answered by merging
// the per-shard answers with bounding-box distance pruning. NN≠0 and
// expected-distance answers are identical to the unsharded backend's;
// quantification probabilities are combined under the independence
// model — exactly for discrete datasets, and by a documented survival
// integral approximation for continuous ones.
//
// # Serving streams
//
// Handle.Serve(ctx, in) answers an asynchronous query stream: a worker
// pool drains the input channel and completions arrive on the returned
// channel as they finish — out of order under load, tagged with the
// caller-assigned Query.Seq. The answer channel's capacity (set by
// WithServeBuffer) is the backpressure window: a slow consumer
// transitively stops the stream from accepting input. Closing the input
// channel ends the stream gracefully; cancelling the context tears it
// down without deadlocking. Per-query failures are reported in
// Answer.Err and do not stop the stream.
//
// # Dynamic mutations
//
// A sharded handle is mutable: Handle.Insert / InsertSquare append an
// uncertain point at index n, Handle.Delete(i) removes item i (indices
// stay dense — later items shift down by one, like deleting from a
// slice). Mutations route to the owning shard by centroid and rebuild
// only that shard's backend; a shard drifting past 2× the per-shard
// size target splits, one falling below ½× merges with its nearest
// spatial neighbor — and the target itself tracks ⌈n/k⌉ of the live
// dataset with hysteresis, so a long stream keeps about k shards of
// growing size instead of fragmenting far past the core count. Every
// mutation is serialized against in-flight
// queries (reads see the index strictly before or after a mutation,
// never mid-rebalance) and flushes the answer cache. On the Serve
// stream the same mutations travel as OpInsert/OpDelete ops in
// Query.Kind. Monolithic handles return ErrImmutable. With
// WithShardAdaptive, rebuilds also pick each shard's backend by size:
// small shards take the brute reference (cheap rebuilds under churn),
// large ones the two-stage structure, whenever the swap preserves the
// handle's capability set.
//
// Bursts amortize further: Handle.BatchMutate applies a whole run of
// mutations under one write lock and rebuilds each touched shard once
// per batch instead of once per item (the Serve stream coalesces runs
// of queued mutation ops into such batches automatically), and
// WithInsertBuffer adds a log-structured delta shard that absorbs
// inserts without any main-shard rebuild until a cost-model-chosen
// flush threshold is reached.
//
// The quickstart example under examples/quickstart exercises every
// query type through the engine, and examples/streaming drives a live
// fleet through the dynamic mutation API; DESIGN.md maps each theorem
// to its implementation (and diagrams the sharded layer) and
// EXPERIMENTS.md records the measured reproduction of every claim.
package unn

import (
	"fmt"
	"io"
	"math/rand"

	"unn/internal/engine"
	"unn/internal/expected"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// --- geometry ---------------------------------------------------------------

// Point is a point in the plane.
type Point = geom.Point

// Disk is a closed disk (an uncertainty region).
type Disk = geom.Disk

// Rect is an axis-aligned rectangle.
type Rect = geom.Rect

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// DiskAt builds a Disk.
func DiskAt(x, y, r float64) Disk { return geom.DiskAt(x, y, r) }

// --- uncertain point model ----------------------------------------------

// Uncertain is an uncertain point: any probability distribution over
// planar locations exposing extreme distances, the distance cdf and
// sampling.
type Uncertain = uncertain.Point

// Discrete is an uncertain point with finitely many locations.
type Discrete = uncertain.Discrete

// UniformDisk is the uniform distribution on a disk.
type UniformDisk = uncertain.UniformDisk

// TruncGauss is a Gaussian truncated to a disk.
type TruncGauss = uncertain.TruncGauss

// Histogram is a grid-histogram pdf.
type Histogram = uncertain.Histogram

// NewDiscrete builds a discrete uncertain point (weights are normalized).
func NewDiscrete(locs []Point, w []float64) (*Discrete, error) {
	return uncertain.NewDiscrete(locs, w)
}

// UniformDiscrete builds a discrete uncertain point with equal weights.
func UniformDiscrete(locs []Point) *Discrete { return uncertain.UniformDiscrete(locs) }

// NewTruncGauss builds a truncated Gaussian on disk d.
func NewTruncGauss(d Disk, sigma float64) *TruncGauss { return uncertain.NewTruncGauss(d, sigma) }

// NewHistogram builds a histogram pdf.
func NewHistogram(origin Point, cellW, cellH float64, w [][]float64) (*Histogram, error) {
	return uncertain.NewHistogram(origin, cellW, cellH, w)
}

// Discretize samples m locations from any uncertain point (the
// continuous→discrete reduction of Theorem 4.5).
func Discretize(p Uncertain, m int, rng *rand.Rand) *Discrete {
	return uncertain.Discretize(p, m, rng)
}

// Disks wraps plain disks as uncertain points (the pdf is irrelevant for
// NN≠0 queries).
func Disks(disks []Disk) []Uncertain { return nonzero.DisksAsUncertain(disks) }

// FromDiscrete converts discrete points to the generic interface.
func FromDiscrete(pts []*Discrete) []Uncertain { return nonzero.DiscreteAsUncertain(pts) }

// --- the query engine --------------------------------------------------------

// Backend names one of the adapted index structures of the engine layer.
type Backend = engine.Backend

// The available backends. Every backend answers the query kinds it
// supports (its Capabilities); the Handle rejects the rest with
// ErrUnsupported.
const (
	// BackendAuto picks the backend(s) by dataset kind so every query
	// kind some backend could answer is supported: the Lemma 2.1 /
	// Eq. (2) reference evaluator for discrete points, the two-stage L∞
	// structure for squares, and for continuous (or mixed) points the
	// reference NN≠0 oracle routed together with the Monte-Carlo
	// quantifier.
	BackendAuto Backend = "auto"
	// BackendBrute is the exact reference: Lemma 2.1 NN≠0 oracle, the
	// Eq. (2) sweep for π, and a linear expected-distance scan.
	BackendBrute = engine.BackendBrute
	// BackendDiagram is the nonzero Voronoi diagram V≠0(P) with point
	// location (Theorems 2.5/2.14 + 2.11).
	BackendDiagram = engine.BackendDiagram
	// BackendTwoStageDisks is the near-linear structure of Theorem 3.1.
	BackendTwoStageDisks = engine.BackendTwoStageDisks
	// BackendTwoStageDiscrete is the near-linear structure of Theorem 3.2.
	BackendTwoStageDiscrete = engine.BackendTwoStageDiscrete
	// BackendVPr is the exact probabilistic Voronoi diagram (Theorem 4.2).
	BackendVPr = engine.BackendVPr
	// BackendMonteCarlo is the randomized structure of Theorems 4.3/4.5.
	BackendMonteCarlo = engine.BackendMonteCarlo
	// BackendSpiral is the deterministic spiral search of Theorem 4.7.
	BackendSpiral = engine.BackendSpiral
	// BackendExpected is the expected-distance index ([AESZ12]).
	BackendExpected = engine.BackendExpected
	// BackendTwoStageLinf answers NN≠0 over squares under L∞.
	BackendTwoStageLinf = engine.BackendTwoStageLinf
	// BackendTwoStageL1 answers NN≠0 over diamonds under L1.
	BackendTwoStageL1 = engine.BackendTwoStageL1
)

// Capability is the bitmask of query kinds a backend supports.
type Capability = engine.Capability

// The capability bits.
const (
	CapNonzero  = engine.CapNonzero
	CapProbs    = engine.CapProbs
	CapExpected = engine.CapExpected
	CapTopK     = engine.CapTopK
)

// The query-kind names alias the capability bits when one selects a
// query method (Request dispatch, Serve-stream Query.Kind): a
// registered kind IS its capability bit.
const (
	QueryKindNonzero  = engine.QueryKindNonzero
	QueryKindProbs    = engine.QueryKindProbs
	QueryKindExpected = engine.QueryKindExpected
	QueryKindTopK     = engine.QueryKindTopK
)

// ErrUnsupported is returned when a Handle is asked for a query kind its
// backend does not support.
var ErrUnsupported = engine.ErrUnsupported

// ErrImmutable is returned by Insert/Delete on a handle whose backend
// does not support mutations (every monolithic backend; use WithShards
// for a dynamic handle).
var ErrImmutable = engine.ErrImmutable

// ExpectedResult is one expected-distance batch answer.
type ExpectedResult = engine.ExpectedResult

// Item is one insertion payload for dynamic handles: exactly one field
// set, matching the dataset kind (Point for Open/OpenDiscrete/OpenDisks
// handles, Square for OpenSquares handles).
type Item = engine.Item

// Mutation is one entry of a Handle.BatchMutate burst — an insert or a
// delete, built with InsertMutation / InsertSquareMutation /
// DeleteMutation. Delete indices use sequential semantics: each is
// interpreted against the dataset state left by the mutations before it
// in the batch, exactly as if the batch ran one mutation at a time.
type Mutation = engine.Mutation

// InsertMutation builds a batch entry inserting uncertain point p.
func InsertMutation(p Uncertain) Mutation {
	return engine.InsertMutation(engine.Item{Point: p})
}

// InsertSquareMutation is InsertMutation for OpenSquares handles.
func InsertSquareMutation(s Square) Mutation {
	return engine.InsertMutation(engine.Item{Square: &s})
}

// DeleteMutation builds a batch entry deleting global item i.
func DeleteMutation(i int) Mutation { return engine.DeleteMutation(i) }

// OpInsert and OpDelete are the Serve-stream mutation ops: a Query
// carrying one of them in Kind applies Handle.Insert / Handle.Delete
// through the stream, serialized against in-flight queries.
const (
	OpInsert = engine.OpInsert
	OpDelete = engine.OpDelete
)

// Query is one request on a Handle.Serve stream: a caller-assigned Seq
// tag (echoed in the Answer), the query kind (exactly one capability
// bit) or mutation op, the query point, and the accuracy knob for
// probability queries (or the mutation payload).
type Query = engine.Query

// Answer is one completed Serve query; exactly one payload field (by
// Kind) is meaningful and per-query failures arrive in Err without
// ending the stream.
type Answer = engine.Answer

// Option tunes Open.
type Option func(*openConfig)

type openConfig struct {
	backend     Backend
	build       engine.BuildOptions
	run         engine.Options
	shard       engine.ShardOptions
	planner     engine.PlannerOptions
	replanSet   bool  // WithAdaptivePlanner given (implies plannerSet)
	plannerSet  bool  // WithPlanner (or a planner shaping option) given
	shardsSet   bool  // WithShards given (its k must then be ≥ 1)
	splitSet    bool  // WithShardGrid given (meaningless without WithShards)
	adaptiveSet bool  // WithShardAdaptive given (meaningless without WithShards)
	bufferSet   bool  // WithInsertBuffer given (meaningless without WithShards)
	calErr      error // WithCalibration load failure, surfaced by Open
}

// WithBackend selects the index structure. Default BackendAuto.
func WithBackend(b Backend) Option { return func(c *openConfig) { c.backend = b } }

// WithWorkers sets the batch worker-pool size (default runtime.NumCPU();
// 1 forces sequential batches).
func WithWorkers(n int) Option { return func(c *openConfig) { c.run.Workers = n } }

// WithBatchTile sets the batch executor's tile width: how many queries
// of a batch share one pass over the backend's SoA rows (and one
// shard-affine schedule). 0 selects the default (8), a negative value
// disables tiling — every batch slot then runs the scalar single-query
// path — and widths above 64 clamp. Tiling amortizes the data stream
// across the tile's lanes and enables in-batch deduplication (queries
// sharing a cache cell — or exact coordinates when caching is off —
// compute once per batch); answers are bit-identical either way.
func WithBatchTile(t int) Option { return func(c *openConfig) { c.run.BatchTile = t } }

// WithShards enables the sharded execution layer: the dataset is split
// into k spatial shards, one backend instance is built per shard (in
// parallel), and queries are answered by the merge planner with
// bounding-box shard pruning. Open rejects k < 1 rather than silently
// running unsharded; shards may be empty when k exceeds the dataset
// size. See the package comment for the merge semantics.
func WithShards(k int) Option {
	return func(c *openConfig) {
		c.shard.Shards = k
		c.shardsSet = true
	}
}

// WithShardGrid selects the grid partitioner (uniform cells over the
// centroid bounding box) instead of the default kd-median cut. It only
// shapes the sharding enabled by WithShards; Open rejects it without
// one rather than silently running unsharded.
func WithShardGrid() Option {
	return func(c *openConfig) {
		c.shard.Split = engine.SplitGrid
		c.splitSet = true
	}
}

// WithShardAdaptive enables per-shard backend choice on a sharded
// handle: when a mutation (or the initial build) gives a shard at most
// cutoff items (≤ 0 selects the default, 32), that shard runs the brute
// reference backend — constant-time rebuilds under churn — while larger
// shards run the two-stage structure of the dataset kind. Swaps happen
// only when they preserve the handle's capability set — so under
// BackendAuto (which already picks the full-capability reference) the
// knob has no effect; pair it with an explicit NN≠0 backend such as
// BackendTwoStageDiscrete or BackendTwoStageDisks. Requires WithShards.
// WithPlanner generalizes this fixed rule: under the cost-based planner
// every shard re-plans all its query kinds at its own size from
// calibrated costs, no cutoff to tune — combining the two is rejected.
func WithShardAdaptive(cutoff int) Option {
	return func(c *openConfig) {
		c.shard.Adaptive = true
		c.shard.AdaptiveCutoff = cutoff
		c.adaptiveSet = true
	}
}

// WithInsertBuffer enables the log-structured insert buffer on a
// sharded handle: Insert (and the insert entries of BatchMutate and the
// Serve stream) appends to a small delta shard that is queried
// alongside the main shards — NN≠0 merged exactly through the merge
// planner, π/E[d] through the cross-shard renormalization — instead of
// rebuilding an owning shard per item. When the buffer crosses the
// flush threshold it drains into the owning shards, which rebuild once:
// one shard rebuild amortized over a threshold's worth of inserts.
// threshold ≤ 0 lets the cost model choose (the minimizer of amortized
// flush cost against per-query buffer-scan overhead). Requires
// WithShards.
func WithInsertBuffer(threshold int) Option {
	return func(c *openConfig) {
		c.shard.InsertBuffer = true
		c.shard.FlushThreshold = threshold
		c.bufferSet = true
	}
}

// WithPlanner replaces the rule-based automatic backend choice with the
// cost-based query planner: per query kind, the cheapest capable backend
// is picked from calibrated build/query cost estimates (a Build-time
// micro-probe by default; see WithCalibration for using a persisted
// table), and the handle serves each kind through its assigned backend —
// possibly a composite, e.g. the two-stage structure for NN≠0, spiral
// search for π, and the expected-distance index for E[d] on one discrete
// dataset. Handle.Explain reports the decision with its cost estimates.
// Combined with WithShards, every shard re-plans at its own size (a
// small shard may keep the cheap-to-rebuild oracle while large ones buy
// the fast structures). Requires the default BackendAuto: the planner
// *is* a backend selection, so pairing it with WithBackend is rejected.
func WithPlanner() Option { return func(c *openConfig) { c.plannerSet = true } }

// WithPlannerMix declares the expected query mix the planner optimizes
// for — relative weights per query kind (only ratios matter; kinds with
// weight 0 still work, they just don't influence the choice). Implies
// WithPlanner.
func WithPlannerMix(nonzero, probs, expected float64) Option {
	return func(c *openConfig) {
		c.plannerSet = true
		c.planner.Mix.Nonzero = nonzero
		c.planner.Mix.Probs = probs
		c.planner.Mix.Expected = expected
	}
}

// WithPlannerTopK adds a top-k query share to the planner's expected mix
// (same relative-weight semantics as WithPlannerMix, composable with
// it in either order). With weight 0 — the default — top-k queries still
// work; they ride the π backend the rest of the mix selects. Implies
// WithPlanner.
func WithPlannerTopK(weight float64) Option {
	return func(c *openConfig) {
		c.plannerSet = true
		c.planner.Mix.TopK = weight
	}
}

// WithAdaptivePlanner turns the cost-based planner into a continuous
// loop: the handle windows its per-kind latency counters and per-shard
// visit counters into EWMA workload profiles, detects drift from the
// installed plan (a shifted query mix, or latencies wandering from the
// estimates the plan was bought on), and then re-plans every shard with
// that shard's *own* observed mix — hot shards amortize over a larger
// horizon and buy expensive structures, cold shards fall back to the
// cheap-to-build oracle — building off the query path and installing
// the new backends with an epoch-fenced atomic swap (in-flight queries
// never see a torn shard). Stats reports the shard temperatures, replan
// count and last drift reason; Handle.Replan triggers one cycle
// manually. Implies WithPlanner and requires WithShards (the loop
// steers per-shard plans). Snapshots persist the temperatures and
// replan history, so a restored handle resumes the loop warm.
func WithAdaptivePlanner() Option {
	return func(c *openConfig) {
		c.plannerSet = true
		c.replanSet = true
		c.run.AdaptiveReplan = &engine.AdaptiveOptions{}
	}
}

// WithCalibration loads the planner's cost-model coefficients from a
// persisted BENCH_engine.json (written by `unnbench -json`) instead of
// micro-probing at Build time. Implies WithPlanner; a missing or
// malformed table fails Open rather than silently planning on defaults.
func WithCalibration(path string) Option {
	return func(c *openConfig) {
		c.plannerSet = true
		cal, err := engine.LoadCalibration(path)
		if err != nil {
			c.calErr = err
			return
		}
		c.planner.Calibration = cal
	}
}

// WithServeBuffer sets the capacity of the answer channel returned by
// Handle.Serve — the stream's backpressure window (default 2×Workers).
func WithServeBuffer(n int) Option { return func(c *openConfig) { c.run.ServeBuffer = n } }

// WithCache enables the engine-level LRU answer cache with the given
// capacity (entries). Quantum sets the grid step used to quantize query
// points into cache keys — queries within one quantum cell share an
// answer; pass 0 to require exact coordinate matches, or any negative
// value to derive the quantum from the built structure itself (the V≠0
// diagram reports a robust minimum of its cell extents, other backends
// the dataset's centroid-spacing estimate — see Handle.Stats for the
// resolved value).
func WithCache(capacity int, quantum float64) Option {
	return func(c *openConfig) {
		c.run.CacheSize = capacity
		c.run.CacheQuantum = quantum
	}
}

// WithAutoCache is WithCache with the adaptive quantum: answer sharing
// at the granularity the built structure reports its answers actually
// change.
func WithAutoCache(capacity int) Option { return WithCache(capacity, -1) }

// WithEps sets the default additive error for approximating probability
// backends when a query passes eps ≤ 0 (default 0.02).
func WithEps(eps float64) Option { return func(c *openConfig) { c.build.Eps = eps } }

// WithMCRounds sets the number of Monte-Carlo instantiations (default 64;
// see MCRounds / MCRoundsPerQuery for the theorem-prescribed counts).
func WithMCRounds(s int) Option { return func(c *openConfig) { c.build.MCRounds = s } }

// WithMCParallel fans Monte-Carlo construction over all CPUs
// (deterministic in the seed).
func WithMCParallel() Option { return func(c *openConfig) { c.build.MCParallel = true } }

// WithSeed fixes the seed of randomized constructions (default 0x6e67).
func WithSeed(seed int64) Option { return func(c *openConfig) { c.build.Seed = seed } }

// WithDiagramOptions tunes V≠0 diagram construction.
func WithDiagramOptions(opt DiagramOptions) Option {
	return func(c *openConfig) { c.build.Diagram = opt }
}

// WithVPrOptions tunes probabilistic-Voronoi construction.
func WithVPrOptions(opt VPrOptions) Option {
	return func(c *openConfig) { c.build.VPr = opt }
}

// WithSpiralQuadtree selects the quadtree branch-and-bound retrieval
// backend for the spiral structure (§4.3 Remark (ii)).
func WithSpiralQuadtree() Option { return func(c *openConfig) { c.build.SpiralQuadtree = true } }

// Handle is a capability-checked handle to one built backend (or
// sharded backend fleet, see WithShards): single queries, parallel
// batches with deterministic result order, an asynchronous Serve stream
// with out-of-order completion and backpressure, and an optional striped
// LRU answer cache (hit/miss counters via CacheStats). All methods are
// safe for concurrent use.
//
// Query kinds the backend does not support return ErrUnsupported
// (checkable with errors.Is). When the cache is enabled, returned
// slices may be shared with it; treat them as read-only.
type Handle struct {
	*engine.Engine
}

// Insert appends uncertain point p to a dynamic (sharded) handle and
// returns its index, always the new Len-1: inserts append. The point
// must match the dataset kind the handle was opened with (e.g. only
// discrete points enter an OpenDiscrete handle — anything else would
// silently shrink the capability set). Monolithic handles return
// ErrImmutable. The mutation routes to the owning shard by centroid,
// rebuilds only the shards the rebalancer touches, and flushes the
// answer cache.
func (h *Handle) Insert(p Uncertain) (int, error) {
	return h.Engine.Insert(engine.Item{Point: p})
}

// InsertSquare is Insert for OpenSquares handles.
func (h *Handle) InsertSquare(s Square) (int, error) {
	return h.Engine.Insert(engine.Item{Square: &s})
}

// Delete removes item i from a dynamic (sharded) handle. Indices stay
// dense: items above i shift down by one, exactly like deleting from a
// slice. Deleting the last remaining item is rejected.
func (h *Handle) Delete(i int) error { return h.Engine.Delete(i) }

// BatchMutate applies a burst of mutations to a dynamic (sharded)
// handle through the epoch-coalesced path: the whole batch runs under
// one write lock with sequential semantics, each shard the burst
// touches rebuilds once (instead of once per mutation), the rebalancer
// runs once at the end, and the answer cache flushes once. The returned
// slice has one entry per mutation — the assigned global index for an
// insert, the live item count right after the op for a delete.
// Validation is atomic: one invalid entry rejects the whole batch
// before anything is applied. Monolithic handles return ErrImmutable.
func (h *Handle) BatchMutate(ms []Mutation) ([]int, error) {
	return h.Engine.BatchMutate(ms)
}

// Mutable reports whether the handle accepts Insert/Delete (true for
// sharded handles, see WithShards).
func (h *Handle) Mutable() bool { return h.Engine.Mutable() }

// Epoch returns the number of mutations applied to a dynamic handle
// (0 for monolithic ones).
func (h *Handle) Epoch() uint64 { return h.Engine.Epoch() }

// ShardCount returns the handle's current number of spatial shards —
// it moves as the dynamic layer splits and merges — or 0 for a
// monolithic handle.
func (h *Handle) ShardCount() int {
	if s, ok := h.Index().(interface{ Shards() int }); ok {
		return s.Shards()
	}
	return 0
}

// Stats is a snapshot of a handle's serving counters: per-query-kind
// latency (count and total/mean nanoseconds — batch and Serve traffic
// funnels through the same counters), cache hits/misses, and the
// effective cache quantum (the resolved value when WithCache was given a
// negative, adaptive quantum).
type Stats = engine.Stats

// KindStats is the latency record of one query kind within Stats.
type KindStats = engine.KindStats

// Stats snapshots the handle's per-kind latency counters and cache
// traffic — the measured side of the planner's cost model (the same
// numbers a calibration table persists).
func (h *Handle) Stats() Stats { return h.Engine.Stats() }

// Explain describes how the handle answers each query kind: for planner
// handles (WithPlanner) the per-kind backend assignment with its
// estimated build and query costs and the beaten alternatives; for
// rule-based auto handles the routing rule; for sharded handles the
// per-shard composition (with each shard's own plan under WithPlanner);
// for plain backends a capability summary. Adaptive handles
// (WithAdaptivePlanner) append the loop's state: window size, replan
// count, last drift reason, and the hottest shard's temperature.
func (h *Handle) Explain() string { return h.Engine.Explain() }

// Replan triggers one replan-and-swap cycle synchronously on an
// adaptive handle (WithAdaptivePlanner) — the manual counterpart of the
// automatic drift trigger: every shard re-plans with its observed mix
// and temperature-scaled horizon, and the new backends install under
// the epoch fence. It reports whether a new plan was installed; false
// with a nil error means a concurrent mutation raced the build (the
// fence aborted the swap — retry when the stream settles) or there was
// nothing to replan. Errors on handles without the adaptive loop.
func (h *Handle) Replan() (bool, error) { return h.Engine.Replan() }

func openDataset(ds *engine.Dataset, opts []Option) (*Handle, error) {
	cfg := openConfig{backend: BackendAuto}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shardsSet && cfg.shard.Shards < 1 {
		return nil, fmt.Errorf("unn: WithShards needs k ≥ 1, got %d", cfg.shard.Shards)
	}
	if cfg.splitSet && !cfg.shardsSet {
		return nil, fmt.Errorf("unn: WithShardGrid requires WithShards(k) to enable sharding")
	}
	if cfg.adaptiveSet && !cfg.shardsSet {
		return nil, fmt.Errorf("unn: WithShardAdaptive requires WithShards(k) to enable sharding")
	}
	if cfg.bufferSet && !cfg.shardsSet {
		return nil, fmt.Errorf("unn: WithInsertBuffer requires WithShards(k) to enable sharding")
	}
	if cfg.calErr != nil {
		return nil, fmt.Errorf("unn: WithCalibration: %w", cfg.calErr)
	}
	if cfg.plannerSet && cfg.backend != BackendAuto {
		return nil, fmt.Errorf("unn: WithPlanner replaces the backend choice; drop WithBackend(%s)", cfg.backend)
	}
	if cfg.plannerSet && cfg.adaptiveSet {
		return nil, fmt.Errorf("unn: WithPlanner already plans every shard by cost; drop WithShardAdaptive")
	}
	if cfg.replanSet && !cfg.shardsSet {
		return nil, fmt.Errorf("unn: WithAdaptivePlanner requires WithShards(k): the loop replans per shard")
	}
	var (
		ix  engine.Index
		err error
	)
	switch {
	case cfg.plannerSet:
		// The cost-based planner: per query kind, the cheapest capable
		// backend by calibrated estimate (micro-probe or table).
		ix, _, err = engine.BuildPlanned(ds, cfg.build, cfg.shard, cfg.planner)
	case cfg.backend == BackendAuto:
		// Auto picks per dataset kind so no query kind any backend could
		// answer lands on one that cannot: squares → two-stage L∞,
		// discrete → brute (all three kinds exact), continuous/mixed →
		// brute routed together with Monte Carlo for quantification.
		ix, err = engine.BuildAuto(ds, cfg.build, cfg.shard)
	default:
		ix, err = engine.BuildSharded(cfg.backend, ds, cfg.build, cfg.shard)
	}
	if err != nil {
		return nil, err
	}
	return &Handle{engine.NewEngine(ix, cfg.run)}, nil
}

// Open builds the selected backend over generic uncertain points and
// returns its query handle. Discrete and disk specializations are
// detected by type, so backends that need them (diagram, two-stage,
// V_Pr, spiral, expected) work whenever the input is uniformly discrete
// or disk-shaped.
func Open(pts []Uncertain, opts ...Option) (*Handle, error) {
	return openDataset(engine.FromPoints(pts), opts)
}

// OpenDiscrete is Open for discrete uncertain points.
func OpenDiscrete(pts []*Discrete, opts ...Option) (*Handle, error) {
	return openDataset(engine.FromDiscrete(pts), opts)
}

// OpenDisks is Open for disk uncertainty regions.
func OpenDisks(disks []Disk, opts ...Option) (*Handle, error) {
	return openDataset(engine.FromDisks(disks), opts)
}

// OpenSquares is Open for L∞ balls (squares) or L1 diamonds, served by
// the lmetric backends.
func OpenSquares(squares []Square, opts ...Option) (*Handle, error) {
	return openDataset(engine.FromSquares(squares), opts)
}

// --- snapshots ---------------------------------------------------------------

// Snapshot serializes the handle's full built state — dataset, index
// structures (flat kd-tree and kernel arrays as raw slabs), shard
// partition, planner decision with its calibrated cost coefficients,
// and serving configuration — into w, in the versioned binary format
// documented in DESIGN.md §9. OpenSnapshot restores it without
// rebuilding: no geometry recomputation and no calibration probes, so
// loading is an order of magnitude faster than a cold Open.
//
// Only handles over uniform-disk, discrete, or square datasets can be
// snapshotted; continuous distributions (truncated Gaussians,
// histograms) have no serialized form and return an error.
func (h *Handle) Snapshot(w io.Writer) error {
	return engine.WriteSnapshot(w, h.Engine)
}

// OpenSnapshot restores a Handle from a snapshot written by
// Handle.Snapshot. The restored handle answers every query kind
// bit-identically to the snapshotted one (same Explain plan, same
// backends, same cache quantum) and remains fully mutable when the
// original was. Truncated, corrupted, or wrong-version input returns an
// error; it never panics.
func OpenSnapshot(r io.Reader) (*Handle, error) {
	e, err := engine.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("unn: %w", err)
	}
	return &Handle{e}, nil
}

// --- nonzero nearest neighbors (Section 2 & 3) -------------------------------

// NonzeroNN returns NN≠0(q) = {i : π_i(q) > 0} by the exact O(n) oracle
// of Lemma 2.1.
func NonzeroNN(pts []Uncertain, q Point) []int { return nonzero.Brute(pts, q) }

// Diagram is a constructed nonzero Voronoi diagram V≠0(P) with point
// location (Theorem 2.11).
type Diagram = nonzero.Diagram

// DiagramOptions tunes diagram construction.
type DiagramOptions = nonzero.DiagramOptions

// BuildDiskDiagram constructs V≠0 for disk regions (Theorem 2.5).
//
// Deprecated: use OpenDisks(disks, WithBackend(BackendDiagram)); the
// engine handle adds batching, caching and capability checks.
func BuildDiskDiagram(disks []Disk, opt DiagramOptions) (*Diagram, error) {
	return nonzero.BuildDiskDiagram(disks, opt)
}

// BuildDiscreteDiagram constructs V≠0 for discrete points (Theorem 2.14).
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendDiagram)).
func BuildDiscreteDiagram(pts []*Discrete, opt DiagramOptions) (*Diagram, error) {
	return nonzero.BuildDiscreteDiagram(pts, opt)
}

// DiskComplexity is the exact vertex census of V≠0 for disk regions.
type DiskComplexity = nonzero.DiskComplexity

// CountDiskComplexity counts breakpoints and curve crossings of V≠0(P)
// exactly in the polar parameterization (Theorems 2.5–2.10 experiments).
func CountDiskComplexity(disks []Disk, grid int) DiskComplexity {
	return nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, grid)
}

// TwoStageDisks is the near-linear NN≠0 structure for disks (Thm 3.1).
type TwoStageDisks = nonzero.TwoStageDisks

// NewTwoStageDisks preprocesses disks for NN≠0 queries.
//
// Deprecated: use OpenDisks(disks, WithBackend(BackendTwoStageDisks)).
func NewTwoStageDisks(disks []Disk) *TwoStageDisks { return nonzero.NewTwoStageDisks(disks) }

// TwoStageDiscrete is the near-linear NN≠0 structure for discrete points
// (Theorem 3.2).
type TwoStageDiscrete = nonzero.TwoStageDiscrete

// NewTwoStageDiscrete preprocesses discrete points for NN≠0 queries.
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendTwoStageDiscrete)).
func NewTwoStageDiscrete(pts []*Discrete) *TwoStageDiscrete {
	return nonzero.NewTwoStageDiscrete(pts)
}

// --- quantification probabilities (Section 4) --------------------------------

// Prob is a sparse (index, probability) result entry.
type Prob = quantify.Prob

// ExactProbabilities evaluates π_i(q) for all i exactly (Eq. (2)).
func ExactProbabilities(pts []*Discrete, q Point) []float64 {
	return quantify.ExactAt(pts, q)
}

// VPr is the exact probabilistic Voronoi diagram (§4.1, Theorem 4.2).
type VPr = quantify.VPr

// VPrOptions tunes V_Pr construction.
type VPrOptions = quantify.VPrOptions

// BuildVPr constructs the exact probabilistic Voronoi diagram.
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendVPr)).
func BuildVPr(pts []*Discrete, opt VPrOptions) (*VPr, error) {
	return quantify.BuildVPr(pts, opt)
}

// MonteCarlo is the randomized structure of Theorem 4.3/4.5.
type MonteCarlo = quantify.MonteCarlo

// MCOptions configures Monte-Carlo construction.
type MCOptions = quantify.MCOptions

// NewMonteCarlo builds a Monte-Carlo index with s instantiations.
//
// Deprecated: use Open(pts, WithBackend(BackendMonteCarlo),
// WithMCRounds(s)).
func NewMonteCarlo(pts []Uncertain, s int, opt MCOptions) (*MonteCarlo, error) {
	return quantify.NewMonteCarlo(pts, s, opt)
}

// MCRounds returns the round count prescribed by Theorem 4.3 for a
// uniform (all queries) ε/δ guarantee.
func MCRounds(n, k int, eps, delta float64) int { return quantify.Rounds(n, k, eps, delta) }

// MCRoundsPerQuery returns the per-query round count (Chernoff only).
func MCRoundsPerQuery(n int, eps, delta float64) int {
	return quantify.RoundsEmpirical(n, eps, delta)
}

// Spiral is the deterministic structure of Theorem 4.7.
type Spiral = quantify.Spiral

// NewSpiral preprocesses discrete points for spiral-search queries.
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendSpiral)).
func NewSpiral(pts []*Discrete) (*Spiral, error) { return quantify.NewSpiral(pts) }

// Threshold returns the points whose estimated π_i(q) is at least tau
// (the probabilistic threshold query of [DYM+05]).
func Threshold(est quantify.Estimator, q Point, tau float64) []Prob {
	return quantify.Threshold(est, q, tau)
}

// TopK returns the k most probable nearest neighbors.
func TopK(est quantify.Estimator, q Point, k int, eps float64) []Prob {
	return quantify.TopK(est, q, k, eps)
}

// SpiralEstimator adapts a Spiral to the Threshold/TopK interface.
type SpiralEstimator = quantify.SpiralEstimator

// MCEstimator adapts a MonteCarlo index to the Threshold/TopK interface.
type MCEstimator = quantify.MCEstimator

// HandleEstimator adapts any probability-capable Handle to the
// Threshold/TopK interface.
type HandleEstimator struct{ H *Handle }

// Estimate implements quantify.Estimator; errors (capability or
// otherwise) surface as an empty estimate.
func (he HandleEstimator) Estimate(q Point, eps float64) []Prob {
	ps, err := he.H.QueryProbs(q, eps)
	if err != nil {
		return nil
	}
	return ps
}

// --- expected-distance semantics ([AESZ12]) ----------------------------------

// ExpectedIndex answers expected-distance NN queries (the PODS 2012
// companion semantics).
type ExpectedIndex = expected.Index

// NewExpectedIndex builds an expected-distance NN index.
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendExpected)).
func NewExpectedIndex(pts []*Discrete) (*ExpectedIndex, error) { return expected.New(pts) }

// TrapQuerier answers Diagram queries via a randomized-incremental
// trapezoidal map ([dBCKO08 Ch. 6]) — the literal point-location
// structure of Theorem 2.11.
type TrapQuerier = nonzero.TrapQuerier

// NewTrapQuerier builds the trapezoidal-map querier over a diagram.
func NewTrapQuerier(d *Diagram, rng *rand.Rand) (*TrapQuerier, error) {
	return nonzero.NewTrapQuerier(d, rng)
}

// NewSpiralContinuous builds a spiral-search structure over continuous
// uncertain points via the Theorem 4.5 discretization — the engineering
// answer to the paper's open problem (iii). It returns the structure and
// the discretized points (needed for exact re-evaluation).
func NewSpiralContinuous(pts []Uncertain, perPoint int, rng *rand.Rand) (*Spiral, []*Discrete, error) {
	return quantify.NewSpiralContinuous(pts, perPoint, rng)
}

// NewMonteCarloParallel is NewMonteCarlo with construction fanned out
// over all CPUs; results are deterministic in the seed.
//
// Deprecated: use Open(pts, WithBackend(BackendMonteCarlo),
// WithMCRounds(s), WithMCParallel()).
func NewMonteCarloParallel(pts []Uncertain, s int, opt MCOptions) (*MonteCarlo, error) {
	return quantify.NewMonteCarloParallel(pts, s, opt)
}

// --- L1 / L∞ metrics (remark after Theorem 3.1) ------------------------------

// Square is an L∞ ball (axis-aligned square) or, under the L1 API, a
// diamond: center plus radius.
type Square = lmetric.Square

// TwoStageLinf answers NN≠0 queries over square uncertainty regions
// under the Chebyshev metric.
type TwoStageLinf = lmetric.TwoStageLinf

// NewTwoStageLinf preprocesses square regions for L∞ NN≠0 queries.
//
// Deprecated: use OpenSquares(squares, WithBackend(BackendTwoStageLinf)).
func NewTwoStageLinf(squares []Square) *TwoStageLinf { return lmetric.NewTwoStageLinf(squares) }

// TwoStageL1 answers NN≠0 queries over diamond regions under the
// Manhattan metric (via the 45° reduction to L∞).
type TwoStageL1 = lmetric.TwoStageL1

// NewTwoStageL1 preprocesses diamond regions for L1 NN≠0 queries.
//
// Deprecated: use OpenSquares(diamonds, WithBackend(BackendTwoStageL1)).
func NewTwoStageL1(diamonds []Square) *TwoStageL1 { return lmetric.NewTwoStageL1(diamonds) }

// NewSpiralQuadtree is NewSpiral with the quadtree branch-and-bound
// retrieval backend suggested in §4.3 Remark (ii) ([Har11]).
//
// Deprecated: use OpenDiscrete(pts, WithBackend(BackendSpiral),
// WithSpiralQuadtree()).
func NewSpiralQuadtree(pts []*Discrete) (*Spiral, error) {
	return quantify.NewSpiralQuadtree(pts)
}
