// Benchmarks: one per reproduced experiment (E1–E15, see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark times the core operation the paper's
// claim is about; `go run ./cmd/unnbench` prints the corresponding full
// tables.
package unn_test

import (
	"bytes"
	"math/rand"
	"testing"

	"unn"
	"unn/internal/constructions"
	"unn/internal/engine"
	"unn/internal/experiments"
	"unn/internal/geom"
	"unn/internal/nonzero"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

func randQueries(n int, side float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return qs
}

// E1 / Theorem 2.5: exact vertex census of V≠0 on random disks.
func BenchmarkE1_DiskComplexityCensus_n24(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	disks := constructions.RandomDisks(rng, 24, 40, 0.5, 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, 0)
	}
}

// E2 / Theorem 2.7: census on the Ω(n³) mixed-radius construction.
func BenchmarkE2_LowerBoundMixed_m3(b *testing.B) {
	disks := constructions.LowerBoundMixed(3)
	n := len(disks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, 32*n*n)
	}
}

// E3 / Theorem 2.8: census on the Ω(n³) equal-radius construction.
func BenchmarkE3_LowerBoundEqual_m4(b *testing.B) {
	disks := constructions.LowerBoundEqual(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
	}
}

// E4 / Theorem 2.10: census on the Ω(n²) disjoint construction.
func BenchmarkE4_LowerBoundDisjoint_m8(b *testing.B) {
	disks := constructions.LowerBoundDisjoint(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
	}
}

// E5 / Theorem 2.14: building the exact discrete V≠0 diagram.
func BenchmarkE5_DiscreteDiagramBuild_n8k3(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := constructions.RandomDiscrete(rng, 8, 3, 30, 2.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unn.BuildDiscreteDiagram(pts, unn.DiagramOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 / Theorems 2.11 & 3.1: the three ways to answer NN≠0 over disks.
func BenchmarkE6_DiagramQuery_n32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	disks := constructions.RandomDisks(rng, 32, 40, 0.5, 2.0)
	diag, err := unn.BuildDiskDiagram(disks, unn.DiagramOptions{})
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 40, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diag.Query(qs[i%len(qs)])
	}
}

func BenchmarkE6_TwoStageDiskQuery_n32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	disks := constructions.RandomDisks(rng, 32, 40, 0.5, 2.0)
	ts := unn.NewTwoStageDisks(disks)
	qs := randQueries(256, 40, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Query(qs[i%len(qs)])
	}
}

func BenchmarkE6_BruteQuery_n32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	disks := constructions.RandomDisks(rng, 32, 40, 0.5, 2.0)
	qs := randQueries(256, 40, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonzero.BruteDisks(disks, qs[i%len(qs)])
	}
}

// E7 / Theorem 3.2: the discrete two-stage structure at N = 3200.
func BenchmarkE7_TwoStageDiscreteQuery_N3200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := constructions.RandomDiscrete(rng, 800, 4, 100, 1.5, 1)
	ts := unn.NewTwoStageDiscrete(pts)
	qs := randQueries(256, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Query(qs[i%len(qs)])
	}
}

// E8 / Lemma 4.1, Theorem 4.2: building and querying V_Pr.
func BenchmarkE8_VPrBuild_N12(b *testing.B) {
	pts := constructions.VPrLowerBound(6, rand.New(rand.NewSource(7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unn.BuildVPr(pts, unn.VPrOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_VPrQuery_N12(b *testing.B) {
	pts := constructions.VPrLowerBound(6, rand.New(rand.NewSource(7)))
	v, err := unn.BuildVPr(pts, unn.VPrOptions{})
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Query(qs[i%len(qs)])
	}
}

// E9 / Theorem 4.3: Monte-Carlo queries, kd-tree vs Delaunay backends.
func BenchmarkE9_MCQuery_KDTree_s800(b *testing.B) {
	benchMCQuery(b, quantify.MCKDTree)
}

func BenchmarkE9_MCQuery_Delaunay_s800(b *testing.B) {
	benchMCQuery(b, quantify.MCDelaunay)
}

func benchMCQuery(b *testing.B, backend quantify.MCBackend) {
	rng := rand.New(rand.NewSource(9))
	pts := constructions.RandomDiscrete(rng, 20, 4, 30, 2, 1)
	upts := nonzero.DiscreteAsUncertain(pts)
	mc, err := quantify.NewMonteCarlo(upts, 800, quantify.MCOptions{Backend: backend, Rng: rng})
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 30, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Query(qs[i%len(qs)])
	}
}

// E10 / Theorem 4.5: instantiating + preprocessing continuous points.
func BenchmarkE10_ContinuousMCBuild_n10s200(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	var pts []uncertain.Point
	for i := 0; i < 10; i++ {
		d := geom.DiskAt(rng.Float64()*30, rng.Float64()*30, 1+rng.Float64())
		pts = append(pts, uncertain.NewTruncGauss(d, d.R/2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quantify.NewMonteCarlo(pts, 200, quantify.MCOptions{Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 / Theorem 4.7: spiral search vs the exact sweep at N = 16000.
func BenchmarkE11_SpiralQuery_N16000(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts := constructions.RandomDiscrete(rng, 4000, 4, 200, 1.5, 8)
	sp, err := unn.NewSpiral(pts)
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 200, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Query(qs[i%len(qs)], 0.05)
	}
}

func BenchmarkE11_ExactQuery_N16000(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts := constructions.RandomDiscrete(rng, 4000, 4, 200, 1.5, 8)
	qs := randQueries(64, 200, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantify.ExactAt(pts, qs[i%len(qs)])
	}
}

// E12 / §4.3 Remark (i): exact evaluation on the adversarial instance.
func BenchmarkE12_RemarkExact(b *testing.B) {
	pts, q := constructions.RemarkInstance(0.01, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantify.ExactAt(pts, q)
	}
}

// E13 / Figure 1: the closed-form distance cdf of a uniform disk.
func BenchmarkE13_UniformDiskCDF(b *testing.B) {
	u := uncertain.UniformDisk{D: geom.DiskAt(0, 0, 5)}
	q := geom.Pt(6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.DistCDF(q, 5+10*float64(i%100)/100)
	}
}

// E14 / §1.2: expected-distance NN queries ([AESZ12] semantics).
func BenchmarkE14_ExpectedNNQuery_n1000(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	pts := constructions.RandomDiscrete(rng, 1000, 4, 100, 2, 1)
	ix, err := unn.NewExpectedIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 100, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.NNExpected(qs[i%len(qs)])
	}
}

// E15 / Theorem 2.5: full V≠0 diagram construction over disks.
func BenchmarkE15_DiskDiagramBuild_n16(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	disks := constructions.RandomDisks(rng, 16, 40, 0.5, 2.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unn.BuildDiskDiagram(disks, unn.DiagramOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E16 / engine layer: a query stream through the unified engine — the
// Monte-Carlo backend behind unn.Open, batched across the worker pool.
func BenchmarkE16_EngineBatchMC_n1000(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := constructions.RandomDiscrete(rng, 1000, 3, 200, 2.0, 1)
	h, err := unn.OpenDiscrete(pts,
		unn.WithBackend(unn.BackendMonteCarlo), unn.WithMCRounds(48), unn.WithMCParallel())
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 200, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.BatchProbs(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// E17 / sharded engine: the E17 shard-scaling workload through
// unn.Open with the sharded execution layer at k = 8.
func BenchmarkE17_ShardedBatch_n2000_k8(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 2000, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.BatchNonzero(qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18_DynamicMutation measures one insert+delete round trip on
// a sharded handle (the amortized streaming-mutation cost of the
// dynamic shard layer, experiment E18).
func BenchmarkE18_DynamicMutation_n2000_k16(b *testing.B) {
	rng := rand.New(rand.NewSource(0xe18))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithShards(16))
	if err != nil {
		b.Fatal(err)
	}
	pool := constructions.RandomDiscrete(rng, 1024, 2, 2000, 2.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
		if err := h.Delete(rng.Intn(2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE20_BatchMutate measures one 64-mutation burst through the
// epoch-coalesced BatchMutate path (experiment E20) — compare against
// 64 iterations of BenchmarkE18_DynamicMutation's per-item path.
func BenchmarkE20_BatchMutate_n2000_k16(b *testing.B) {
	rng := rand.New(rand.NewSource(0xe20))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithShards(16))
	if err != nil {
		b.Fatal(err)
	}
	pool := constructions.RandomDiscrete(rng, 1024, 2, 2000, 2.0, 1)
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := make([]unn.Mutation, 64)
		for j := range ms {
			if j%2 == 0 {
				ms[j] = unn.InsertMutation(pool[next%len(pool)])
				next++
			} else {
				ms[j] = unn.DeleteMutation(rng.Intn(2000))
			}
		}
		if _, err := h.BatchMutate(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE20_BufferedInsert measures the amortized buffered insert on
// a WithInsertBuffer fleet (the log-structured append of E20).
func BenchmarkE20_BufferedInsert_n2000_k16(b *testing.B) {
	rng := rand.New(rand.NewSource(0xe20b))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithShards(16), unn.WithInsertBuffer(0))
	if err != nil {
		b.Fatal(err)
	}
	pool := constructions.RandomDiscrete(rng, 1024, 2, 2000, 2.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE19_PlannerMixed measures the cost-based planner's composite
// on the E19 mixed workload (NN≠0 / π / E[d] interleaved) — the
// counterpart of the rule-based-auto baseline below it.
func BenchmarkE19_PlannerMixed_n2000(b *testing.B) {
	benchmarkE19(b, true)
}

// BenchmarkE19_AutoMixed is the rule-based auto router on the same
// mixed workload (the E19 baseline).
func BenchmarkE19_AutoMixed_n2000(b *testing.B) {
	benchmarkE19(b, false)
}

func benchmarkE19(b *testing.B, planner bool) {
	rng := rand.New(rand.NewSource(0xe19))
	pts := constructions.RandomDiscrete(rng, 2000, 3, 20000, 2.0, 1)
	opts := []unn.Option{}
	if planner {
		opts = append(opts, unn.WithPlanner())
	}
	h, err := unn.OpenDiscrete(pts, opts...)
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(96, 20000, 0xe19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for qi, q := range qs {
			switch qi % 3 {
			case 0:
				_, err = h.QueryNonzero(q)
			case 1:
				_, err = h.QueryProbs(q, 0)
			default:
				_, _, err = h.QueryExpected(q)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Guard: the experiment registry stays in sync with the benchmarks above.
func TestExperimentRegistryCovered(t *testing.T) {
	if len(experiments.All) != 24 {
		t.Fatalf("registry has %d experiments; update bench_test.go", len(experiments.All))
	}
}

// E6 extension: the trapezoidal-map querier (the literal Theorem 2.11
// structure) on the same workload as the slab-based diagram.
func BenchmarkE6_TrapMapQuery_n32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	disks := constructions.RandomDisks(rng, 32, 40, 0.5, 2.0)
	diag, err := unn.BuildDiskDiagram(disks, unn.DiagramOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tq, err := unn.NewTrapQuerier(diag, rng)
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 40, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tq.Query(qs[i%len(qs)])
	}
}

// E9 extension: parallel Monte-Carlo construction.
func BenchmarkE9_MCBuildParallel_s800(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := constructions.RandomDiscrete(rng, 20, 4, 30, 2, 1)
	upts := nonzero.DiscreteAsUncertain(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quantify.NewMonteCarloParallel(upts, 800, quantify.MCOptions{Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 extension: quadtree retrieval backend (§4.3 Remark ii, [Har11]).
func BenchmarkE11_SpiralQuadtreeQuery_N16000(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts := constructions.RandomDiscrete(rng, 4000, 4, 200, 1.5, 8)
	sp, err := unn.NewSpiralQuadtree(pts)
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 200, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Query(qs[i%len(qs)], 0.05)
	}
}

// E6 extension: the L∞ two-stage structure (remark after Theorem 3.1).
func BenchmarkE6_TwoStageLinfQuery_n32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	squares := make([]unn.Square, 32)
	for i := range squares {
		squares[i] = unn.Square{
			C: geom.Pt(rng.Float64()*40, rng.Float64()*40),
			R: 0.5 + rng.Float64()*1.5,
		}
	}
	ts := unn.NewTwoStageLinf(squares)
	qs := randQueries(256, 40, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Query(qs[i%len(qs)])
	}
}

// E16 extension (flat-kernel PR): single NN≠0 query on the brute engine
// via the zero-alloc entry point. Pre-kernel baseline (AoS double-pass
// oracle through Engine.QueryNonzero): ≈44µs/op, 1 alloc/op on the
// bench/history reference box; the fused SoA kernel halves the hypot
// count and the scratch arena removes the steady-state allocations
// (bench/history/README.md has the interleaved A/B numbers).
func BenchmarkE16_SingleNonzero_Brute_n1000(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := constructions.RandomDiscrete(rng, 1000, 3, 10000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendBrute))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 10000, 22)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.QueryNonzeroInto(qs[i%len(qs)], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// E17 extension (flat-kernel PR): single NN≠0 query through the sharded
// merge, k = 8 shards. Pre-kernel baseline (per-shard AoS backend calls
// + per-query candidate allocations): ≈18.5µs/op, 7 allocs/op; the flat
// merge applies the Lemma 2.1 filter directly to shard member rows from
// one pooled scratch (≈3× faster, 0 allocs/op steady state).
func BenchmarkE17_SingleNonzero_Sharded_n2000_k8(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendBrute), unn.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 2000, 24)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.QueryNonzeroInto(qs[i%len(qs)], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// E21 extension (snapshot PR): the same sharded single-query workload as
// BenchmarkE17_SingleNonzero_Sharded, but on a handle restored from a
// binary snapshot instead of the live-built one. Guards the snapshot
// small-fix: restored shards must come up wired through the pooled
// flat-kernel path, so steady-state queries stay at 0 allocs/op
// (`make bench-allocs` greps every SingleNonzero benchmark).
func BenchmarkE21_SingleNonzero_Restored_n2000_k8(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	built, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendBrute), unn.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := built.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	h, err := unn.OpenSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 2000, 24)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.QueryNonzeroInto(qs[i%len(qs)], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkE22_TopK measures the registry-dispatched top-k
// most-likely-NN kind on a sharded discrete engine; pairs with the
// π benchmark below it — the E22 claim is that top-k costs one π
// sweep plus an O(n log k) selection.
func BenchmarkE22_TopK_n2000_k8(b *testing.B) {
	benchmarkE22(b, true)
}

func BenchmarkE22_Probs_n2000_k8(b *testing.B) {
	benchmarkE22(b, false)
}

// BenchmarkE23_BatchTiled drives the batch-fused tiled executor through
// the allocation-aware entry point on the E17 sharded workload: one
// 256-query batch per iteration, destination slots recycled across
// iterations. `make bench-allocs` greps this benchmark alongside the
// SingleNonzero ones — the tiled path's acceptance bar is 0 allocs/op
// steady state (pooled tile scratch, sort-based in-batch dedup, no
// per-batch maps or closures).
func BenchmarkE23_BatchTiled_n2000_k8(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendBrute), unn.WithShards(8),
		unn.WithWorkers(1), unn.WithBatchTile(16))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 2000, 24)
	var dst [][]int
	if dst, err = h.BatchNonzeroInto(qs, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = h.BatchNonzeroInto(qs, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkE22(b *testing.B, topk bool) {
	rng := rand.New(rand.NewSource(0xe22))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendBrute), unn.WithShards(8))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(256, 2000, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if topk {
			_, err = h.QueryTopK(q, 10, 0)
		} else {
			_, err = h.QueryProbs(q, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE24_Adaptive measures post-drift steady-state serving on an
// adaptive handle: the setup flips an E[d]-heavy stream at a
// planner-built sharded handle until the loop detects the drift and
// swaps a replanned fleet in, then the measured loop serves E[d]
// queries off the swapped plan (the regime the E24 claim is about —
// the frozen counterpart keeps the brute scan the π-era plan left on
// every shard).
func BenchmarkE24_Adaptive(b *testing.B) {
	rng := rand.New(rand.NewSource(0xe24))
	pts := constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1)
	h, err := unn.OpenDiscrete(pts, unn.WithAdaptivePlanner(), unn.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	qs := randQueries(512, 2000, 24)
	for w := 0; w < 64 && h.Stats().Replans == 0; w++ {
		for _, q := range qs {
			if _, _, err := h.QueryExpected(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	if h.Stats().Replans == 0 {
		b.Fatal("adaptive loop never replanned under the E[d]-heavy stream")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.QueryExpected(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE24_AdaptiveObserve pins the observation path's allocation
// contract: with the adaptive loop enabled, the per-query overhead is
// one atomic countdown add, and the window tick folds the counters into
// the EWMA profiles entirely on the stack — so the NN≠0 hot path must
// stay 0 allocs/op even while the loop observes (`make bench-allocs`
// greps this benchmark). Drift thresholds sit at the ceiling so a
// replan (which does allocate, off the query path) cannot fire
// mid-measurement.
func BenchmarkE24_AdaptiveObserve_n2000_k8(b *testing.B) {
	rng := rand.New(rand.NewSource(0xe24))
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1))
	ix, _, err := engine.BuildPlanned(ds, engine.BuildOptions{},
		engine.ShardOptions{Shards: 8}, engine.PlannerOptions{NoProbe: true})
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.NewEngine(ix, engine.Options{AdaptiveReplan: &engine.AdaptiveOptions{
		Window: 64,
		Drift:  engine.DriftThresholds{ErrFactor: 1e9, MixDelta: 1},
	}})
	qs := randQueries(256, 2000, 24)
	buf := make([]int, 0, 64)
	for _, q := range qs {
		out, err := eng.QueryNonzeroInto(q, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.QueryNonzeroInto(qs[i%len(qs)], buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
