module unn

go 1.24
