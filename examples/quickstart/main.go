// Quickstart: every query type of the library on a small instance, all
// served through the unified query engine (unn.Open): one handle per
// backend, capability-checked, with single and batched execution.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"unn"
)

func main() {
	// Three uncertain points: a delivery courier whose last GPS fixes
	// disagree, a second courier, and a parked one that is almost certain.
	courierA, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(0, 0), unn.Pt(2, 1), unn.Pt(1, -1)},
		[]float64{0.5, 0.3, 0.2},
	)
	check(err)
	// (Coordinates chosen tie-free: locations of different couriers at the
	// exact same distance from q are a measure-zero event that Eq. (2)'s
	// "≤" handles pessimistically.)
	courierB, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(6, 0.3), unn.Pt(5, 2)},
		[]float64{0.6, 0.4},
	)
	check(err)
	parked, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(3, 6), unn.Pt(3.1, 6.1)},
		[]float64{0.9, 0.1},
	)
	check(err)
	pts := []*unn.Discrete{courierA, courierB, parked}
	names := []string{"courierA", "courierB", "parked"}
	q := unn.Pt(3, 1) // the customer

	// 1. The exact reference handle (Lemma 2.1 oracle + Eq. (2) sweep +
	// expected-distance scan): the default backend supports all three
	// query kinds.
	exact, err := unn.OpenDiscrete(pts)
	check(err)
	fmt.Printf("reference handle: backend=%s capabilities=%s\n", exact.Backend(), exact.Capabilities())

	nn, err := exact.QueryNonzero(q)
	check(err)
	fmt.Println("\nNN≠0(q): points that can possibly be the nearest neighbor")
	for _, i := range nn {
		fmt.Printf("  %s\n", names[i])
	}

	probs, err := exact.QueryProbs(q, 0)
	check(err)
	fmt.Println("\nexact π_i(q) (Eq. (2)):")
	for _, pr := range probs {
		fmt.Printf("  %-9s %.4f\n", names[pr.I], pr.P)
	}

	// 2. The same NN≠0 answer through the V≠0 diagram (point location,
	// Thm 2.11) and the near-linear two-stage structure (Thm 3.2) — same
	// engine interface, different backends.
	diag, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendDiagram))
	check(err)
	ts, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendTwoStageDiscrete))
	check(err)
	dAns, err := diag.QueryNonzero(q)
	check(err)
	tAns, err := ts.QueryNonzero(q)
	check(err)
	fmt.Printf("\nV≠0 diagram query        -> %v\n", dAns)
	fmt.Printf("two-stage structure query -> %v\n", tAns)

	// Capability checking: the two-stage structure answers only NN≠0.
	if _, err := ts.QueryProbs(q, 0); errors.Is(err, unn.ErrUnsupported) {
		fmt.Printf("two-stage QueryProbs      -> ErrUnsupported (capabilities=%s)\n", ts.Capabilities())
	}

	// 3. Monte-Carlo estimation (Thm 4.3), seeded for reproducibility.
	s := unn.MCRoundsPerQuery(len(pts), 0.02, 0.01)
	mc, err := unn.OpenDiscrete(pts,
		unn.WithBackend(unn.BackendMonteCarlo), unn.WithMCRounds(s), unn.WithSeed(1))
	check(err)
	mcProbs, err := mc.QueryProbs(q, 0)
	check(err)
	fmt.Printf("\nMonte Carlo (s=%d rounds): %v\n", s, mcProbs)

	// 4. Spiral search (Thm 4.7) with a per-query accuracy knob.
	sp, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendSpiral))
	check(err)
	spProbs, err := sp.QueryProbs(q, 0.02)
	check(err)
	fmt.Printf("spiral search (ε=0.02): %v\n", spProbs)

	// 5. Threshold and top-k queries over any probability-capable handle.
	fmt.Printf("\nthreshold τ=0.25: %v\n", unn.Threshold(unn.HandleEstimator{H: sp}, q, 0.25))
	fmt.Printf("top-2:            %v\n", unn.TopK(unn.HandleEstimator{H: sp}, q, 2, 0.02))

	// 6. Expected-distance NN (the PODS 2012 semantics).
	ex, err := unn.OpenDiscrete(pts, unn.WithBackend(unn.BackendExpected))
	check(err)
	enn, ed, err := ex.QueryExpected(q)
	check(err)
	fmt.Printf("\nexpected-distance NN: %s (E d = %.3f)\n", names[enn], ed)

	// 7. Batched execution: a stream of customers fanned across the
	// worker pool, answers in input order.
	customers := []unn.Point{unn.Pt(3, 1), unn.Pt(0, 5), unn.Pt(6, -1)}
	batch, err := ts.BatchNonzero(customers)
	check(err)
	fmt.Println("\nbatched NN≠0 for three customers (two-stage backend):")
	for i, ans := range batch {
		fmt.Printf("  %v -> %v\n", customers[i], ans)
	}

	// 8. The cost-based planner: instead of one backend for everything,
	// each query kind gets its cheapest capable structure (calibrated at
	// build time); Explain shows the decision and its estimates.
	planned, err := unn.OpenDiscrete(pts, unn.WithPlanner())
	check(err)
	fmt.Printf("\ncost-based planner handle: backend=%s\n%s", planned.Backend(), planned.Explain())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
