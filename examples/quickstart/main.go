// Quickstart: every query type of the library on a small instance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unn"
)

func main() {
	// Three uncertain points: a delivery courier whose last GPS fixes
	// disagree, a second courier, and a parked one that is almost certain.
	courierA, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(0, 0), unn.Pt(2, 1), unn.Pt(1, -1)},
		[]float64{0.5, 0.3, 0.2},
	)
	check(err)
	// (Coordinates chosen tie-free: locations of different couriers at the
	// exact same distance from q are a measure-zero event that Eq. (2)'s
	// "≤" handles pessimistically.)
	courierB, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(6, 0.3), unn.Pt(5, 2)},
		[]float64{0.6, 0.4},
	)
	check(err)
	parked, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(3, 6), unn.Pt(3.1, 6.1)},
		[]float64{0.9, 0.1},
	)
	check(err)
	pts := []*unn.Discrete{courierA, courierB, parked}
	names := []string{"courierA", "courierB", "parked"}
	q := unn.Pt(3, 1) // the customer

	// 1. Nonzero nearest neighbors (Lemma 2.1 oracle).
	fmt.Println("NN≠0(q): points that can possibly be the nearest neighbor")
	for _, i := range unn.NonzeroNN(unn.FromDiscrete(pts), q) {
		fmt.Printf("  %s\n", names[i])
	}

	// 2. Exact quantification probabilities (Eq. (2)).
	fmt.Println("\nexact π_i(q):")
	for i, p := range unn.ExactProbabilities(pts, q) {
		fmt.Printf("  %-9s %.4f\n", names[i], p)
	}

	// 3. The same through the V≠0 diagram (point location, Thm 2.11)…
	diag, err := unn.BuildDiscreteDiagram(pts, unn.DiagramOptions{})
	check(err)
	fmt.Printf("\nV≠0 diagram: %d vertices, %d edges, %d faces; query -> %v\n",
		diag.Stats().V, diag.Stats().E, diag.Stats().F, diag.Query(q))

	// …and through the near-linear two-stage structure (Thm 3.2).
	ts := unn.NewTwoStageDiscrete(pts)
	fmt.Printf("two-stage structure          query -> %v\n", ts.Query(q))

	// 4. Monte-Carlo estimation (Thm 4.3).
	s := unn.MCRoundsPerQuery(len(pts), 0.02, 0.01)
	mc, err := unn.NewMonteCarlo(unn.FromDiscrete(pts), s, unn.MCOptions{
		Rng: rand.New(rand.NewSource(1)),
	})
	check(err)
	fmt.Printf("\nMonte Carlo (s=%d rounds): %v\n", s, mc.Query(q))

	// 5. Spiral search (Thm 4.7).
	sp, err := unn.NewSpiral(pts)
	check(err)
	probs, m := sp.Query(q, 0.02)
	fmt.Printf("spiral search (ε=0.02, retrieved %d locations): %v\n", m, probs)

	// 6. Threshold and top-k queries.
	fmt.Printf("\nthreshold τ=0.25: %v\n", unn.Threshold(unn.SpiralEstimator{S: sp}, q, 0.25))
	fmt.Printf("top-2:            %v\n", unn.TopK(unn.SpiralEstimator{S: sp}, q, 2, 0.02))

	// 7. Expected-distance NN (the PODS 2012 semantics).
	ix, err := unn.NewExpectedIndex(pts)
	check(err)
	enn, ed := ix.NNExpected(q)
	fmt.Printf("\nexpected-distance NN: %s (E d = %.3f)\n", names[enn], ed)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
