// Mobiledata: discrete uncertainty at scale. Each mobile user's location
// is a discrete distribution over their recent check-in spots (the
// "mobile data" motivation of §1). A dispatch service asks: which driver
// is most likely closest to the pickup point? The spiral search of
// Theorem 4.7 answers this touching only m(ρ,ε) of the N = nk locations;
// the example compares it against the exact sweep and a threshold query.
//
//	go run ./examples/mobiledata
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"unn"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// 2000 drivers × 5 recent check-in locations each (N = 10,000).
	const n, k = 2000, 5
	drivers := make([]*unn.Discrete, n)
	for i := range drivers {
		cx, cy := rng.Float64()*2000, rng.Float64()*2000
		locs := make([]unn.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = unn.Pt(cx+rng.NormFloat64()*30, cy+rng.NormFloat64()*30)
			w[j] = 0.5 + rng.Float64() // mild spread ρ
		}
		d, err := unn.NewDiscrete(locs, w)
		if err != nil {
			log.Fatal(err)
		}
		drivers[i] = d
	}

	sp, err := unn.NewSpiral(drivers)
	if err != nil {
		log.Fatal(err)
	}
	eps := 0.01
	fmt.Printf("N = %d locations, spread ρ = %.2f, m(ρ,ε=%.2f) = %d\n\n",
		n*k, sp.Rho(), eps, sp.M(eps))

	pickup := unn.Pt(1000, 1000)

	t0 := time.Now()
	probs, m := sp.Query(pickup, eps)
	tSpiral := time.Since(t0)

	t0 = time.Now()
	exact := unn.ExactProbabilities(drivers, pickup)
	tExact := time.Since(t0)

	fmt.Printf("spiral: retrieved %d of %d locations in %v\n", m, n*k, tSpiral)
	fmt.Printf("exact sweep over all locations:     %v\n\n", tExact)

	fmt.Println("most likely nearest drivers (spiral estimate vs exact):")
	top := unn.TopK(unn.SpiralEstimator{S: sp}, pickup, 5, eps)
	for _, pr := range top {
		fmt.Printf("  driver %-5d ˆπ=%.4f  π=%.4f\n", pr.I, pr.P, exact[pr.I])
	}

	fmt.Println("\ndrivers with π ≥ 10% (threshold query of [DYM+05]):")
	for _, pr := range unn.Threshold(unn.SpiralEstimator{S: sp}, pickup, 0.10) {
		fmt.Printf("  driver %-5d ˆπ=%.4f\n", pr.I, pr.P)
	}

	// Adaptive retrieval: stops when the survival probability hits ε.
	probsA, mA := sp.QueryAdaptive(pickup, eps)
	fmt.Printf("\nadaptive spiral retrieved %d locations (fixed-m rule: %d); top entry π=%.4f\n",
		mA, m, probsA[0].P)
	_ = probs
}
