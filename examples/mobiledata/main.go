// Mobiledata: discrete uncertainty at scale. Each mobile user's location
// is a discrete distribution over their recent check-in spots (the
// "mobile data" motivation of §1). A dispatch service asks: which driver
// is most likely closest to the pickup point? The spiral search of
// Theorem 4.7 answers this touching only m(ρ,ε) of the N = nk locations;
// the example serves it through the query engine — a batch of pickups
// fanned across the worker pool, then a live pickup stream through
// Handle.Serve over the city split into 8 spatial shards — and compares
// against the exact sweep.
//
//	go run ./examples/mobiledata
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"unn"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// 2000 drivers × 5 recent check-in locations each (N = 10,000).
	const n, k = 2000, 5
	drivers := make([]*unn.Discrete, n)
	for i := range drivers {
		cx, cy := rng.Float64()*2000, rng.Float64()*2000
		locs := make([]unn.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = unn.Pt(cx+rng.NormFloat64()*30, cy+rng.NormFloat64()*30)
			w[j] = 0.5 + rng.Float64() // mild spread ρ
		}
		d, err := unn.NewDiscrete(locs, w)
		if err != nil {
			log.Fatal(err)
		}
		drivers[i] = d
	}

	eps := 0.01
	spiral, err := unn.OpenDiscrete(drivers,
		unn.WithBackend(unn.BackendSpiral), unn.WithEps(eps))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := unn.OpenDiscrete(drivers) // brute: the Eq. (2) reference
	if err != nil {
		log.Fatal(err)
	}

	pickup := unn.Pt(1000, 1000)

	t0 := time.Now()
	if _, err := spiral.QueryProbs(pickup, eps); err != nil {
		log.Fatal(err)
	}
	tSpiral := time.Since(t0)

	t0 = time.Now()
	exactProbs, err := exact.QueryProbs(pickup, 0)
	if err != nil {
		log.Fatal(err)
	}
	tExact := time.Since(t0)
	exactByDriver := make(map[int]float64, len(exactProbs))
	for _, pr := range exactProbs {
		exactByDriver[pr.I] = pr.P
	}

	fmt.Printf("N = %d locations; spiral backend %v, exact sweep %v\n\n",
		n*k, tSpiral, tExact)

	fmt.Println("most likely nearest drivers (spiral estimate vs exact):")
	top := unn.TopK(unn.HandleEstimator{H: spiral}, pickup, 5, eps)
	for _, pr := range top {
		fmt.Printf("  driver %-5d ˆπ=%.4f  π=%.4f\n", pr.I, pr.P, exactByDriver[pr.I])
	}

	fmt.Println("\ndrivers with π ≥ 10% (threshold query of [DYM+05]):")
	for _, pr := range unn.Threshold(unn.HandleEstimator{H: spiral}, pickup, 0.10) {
		fmt.Printf("  driver %-5d ˆπ=%.4f\n", pr.I, pr.P)
	}

	// A rush of simultaneous pickups: one batch call fans the stream
	// across the worker pool; answers come back in input order.
	pickups := make([]unn.Point, 64)
	for i := range pickups {
		pickups[i] = unn.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	t0 = time.Now()
	batch, err := spiral.BatchProbs(pickups, eps)
	if err != nil {
		log.Fatal(err)
	}
	tBatch := time.Since(t0)
	busiest, most := 0, 0
	for i, ps := range batch {
		if len(ps) > most {
			busiest, most = i, len(ps)
		}
	}
	fmt.Printf("\nbatched %d pickups in %v (%d workers); most contested pickup %v has %d candidate drivers\n",
		len(pickups), tBatch, spiral.Workers(), pickups[busiest], most)

	// Dispatch as a live stream: pickups arrive on a channel and
	// completions come back asynchronously (out of order under load,
	// matched by sequence ID) — the moving-query serving mode, here over
	// the city split into 8 spatial shards with one NN≠0 structure per
	// shard. Backpressure is the answer channel's capacity: a slow
	// dispatcher stops the stream from accepting requests.
	city, err := unn.OpenDiscrete(drivers,
		unn.WithBackend(unn.BackendTwoStageDiscrete), unn.WithShards(8))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	requests := make(chan unn.Query)
	answers := city.Serve(ctx, requests)
	go func() {
		for i, q := range pickups {
			requests <- unn.Query{Seq: uint64(i), Kind: unn.CapNonzero, Q: q}
		}
		close(requests)
	}()
	t0 = time.Now()
	served, candidates := 0, 0
	for a := range answers {
		if a.Err != nil {
			log.Fatal(a.Err)
		}
		served++
		candidates += len(a.Nonzero)
	}
	fmt.Printf("served %d streamed pickups in %v (sharded k=8); %.1f candidate drivers per pickup\n",
		served, time.Since(t0), float64(candidates)/float64(served))
}
