// Semantics: why quantification probabilities, not expected distances.
// §1.2 of the paper (following [YTX+10]) notes that the expected-distance
// NN of the PODS 2012 companion paper "is not a good indicator under
// large uncertainty". This example builds the canonical two-point
// illustration — both semantics answered by one engine handle — and then
// reproduces the §4.3 Remark (i) instance showing that even computing π
// by dropping low-weight locations is unsound.
//
//	go run ./examples/semantics
package main

import (
	"fmt"
	"log"

	"unn"
)

func main() {
	// A compact point at distance ~10.1, and a spread-out point with
	// locations at distances 2 (weight 0.55) and 22 (weight 0.45):
	//   E d(compact) ≈ 10.1 < E d(spread) = 11 → expected-NN: compact;
	//   π(spread) = 0.55 > π(compact) = 0.45  → most-likely NN: spread.
	q := unn.Pt(0, 0)
	compact, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(10, 0), unn.Pt(10.2, 0.2)}, []float64{0.5, 0.5})
	check(err)
	spread, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(0, 2), unn.Pt(0, 22)}, []float64{0.55, 0.45})
	check(err)
	pts := []*unn.Discrete{compact, spread}
	names := []string{"compact", "spread"}

	// The default (exact reference) backend answers both semantics
	// through one capability-checked handle.
	h, err := unn.OpenDiscrete(pts)
	check(err)
	enn, ed, err := h.QueryExpected(q)
	check(err)
	probs, err := h.QueryProbs(q, 0)
	check(err)
	pi := make([]float64, len(pts))
	for _, pr := range probs {
		pi[pr.I] = pr.P
	}
	best := 0
	if pi[1] > pi[0] {
		best = 1
	}
	fmt.Println("two-point illustration (§1.2):")
	for i, p := range pts {
		fmt.Printf("  %-8s E d = %5.2f   π = %.2f\n", names[i], p.ExpectedDist(q), pi[i])
	}
	fmt.Printf("  expected-distance NN: %s (E d = %.2f)\n", names[enn], ed)
	fmt.Printf("  most-likely NN:       %s (π = %.2f)\n", names[best], pi[best])
	if enn != best {
		fmt.Println("  → the two semantics disagree, as §1.2 warns.")
	}

	// §4.3 Remark (i): dropping locations with weight < ε/k is unsound.
	fmt.Println("\nlight-location pruning counterexample (§4.3 Remark i):")
	// Far locations are staggered so no exact ties occur, and the far
	// mass of P1/P2 lies beyond everyone else's so it never wins.
	eps := 0.01
	p1, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(1, 0), unn.Pt(3e4, 0)}, []float64{3 * eps, 1 - 3*eps})
	check(err)
	var mid []*unn.Discrete
	const half = 20
	for i := 0; i < half; i++ {
		p, err := unn.NewDiscrete(
			[]unn.Point{unn.Pt(0, 1.001+0.001*float64(i)), unn.Pt(1e4+float64(i), 100)},
			[]float64{2.0 / (2 * half), 1 - 2.0/(2*half)})
		check(err)
		mid = append(mid, p)
	}
	p2, err := unn.NewDiscrete(
		[]unn.Point{unn.Pt(2, 0), unn.Pt(2e4, 0)}, []float64{5 * eps, 1 - 5*eps})
	check(err)
	all := append(append([]*unn.Discrete{p1}, mid...), p2)
	piAll := unn.ExactProbabilities(all, q)
	naive := 5 * eps * (1 - 3*eps) // what you get after dropping the light middle points
	fmt.Printf("  π(P1) = %.4f (≈ 3ε)\n", piAll[0])
	fmt.Printf("  π(P2) = %.4f (< 2ε)\n", piAll[len(all)-1])
	fmt.Printf("  π̂(P2) with light points dropped = %.4f (> 4ε) — order inverted\n", naive)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
