// Streaming: a fleet that never stops changing. Delivery vehicles join,
// leave, and re-register with fresh location distributions all day —
// the moving-uncertain-data setting that motivates probabilistic moving
// nearest-neighbor queries — so a static index would need a full
// rebuild on every change. The dynamic shard layer absorbs the churn
// instead: each mutation routes to its owning spatial shard, only that
// shard's backend rebuilds, and shards split or merge as the fleet
// grows and shrinks. The example drives a mixed mutation/query stream
// through Handle.Serve (OpInsert/OpDelete ride the same channel as
// queries), then compares the amortized mutation cost against a full
// rebuild.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"unn"
)

const side = 3000.0

func vehicle(rng *rand.Rand) *unn.Discrete {
	cx, cy := rng.Float64()*side, rng.Float64()*side
	locs := make([]unn.Point, 4)
	w := make([]float64, 4)
	for j := range locs {
		locs[j] = unn.Pt(cx+rng.NormFloat64()*25, cy+rng.NormFloat64()*25)
		w[j] = 0.5 + rng.Float64()
	}
	d, err := unn.NewDiscrete(locs, w)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	rng := rand.New(rand.NewSource(0x57ea))

	// The morning fleet: 3000 vehicles behind 16 spatial shards with an
	// adaptive per-shard backend choice — busy shards run the two-stage
	// structure, drained ones fall back to the cheap-to-rebuild brute
	// oracle.
	fleet := make([]*unn.Discrete, 3000)
	for i := range fleet {
		fleet[i] = vehicle(rng)
	}
	h, err := unn.OpenDiscrete(fleet,
		unn.WithBackend(unn.BackendTwoStageDiscrete),
		unn.WithShards(16), unn.WithShardAdaptive(0), unn.WithCache(4096, side/256))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d vehicles, %d shards, mutable=%v\n", len(fleet), h.ShardCount(), h.Mutable())

	// A day of churn on the Serve stream: vehicles join (OpInsert) and
	// leave (OpDelete) between dispatch queries, all on one channel. The
	// dynamic layer serializes mutations against in-flight queries, so
	// every answer reflects a consistent fleet.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	requests := make(chan unn.Query)
	answers := h.Serve(ctx, requests)
	const churn = 600
	go func() {
		// In-flight ops may apply in any order across the worker pool, so
		// deletes draw below a floor that holds even if every sent delete
		// lands before any sent insert.
		floor := len(fleet)
		seq := uint64(0)
		for i := 0; i < churn; i++ {
			switch i % 3 {
			case 0: // a new vehicle comes online
				seq++
				requests <- unn.Query{Seq: seq, Kind: unn.OpInsert, Item: unn.Item{Point: vehicle(rng)}}
			case 1: // one drops off
				seq++
				floor--
				requests <- unn.Query{Seq: seq, Kind: unn.OpDelete, Del: rng.Intn(floor)}
			default: // dispatch keeps asking between mutations
				seq++
				requests <- unn.Query{Seq: seq, Kind: unn.CapNonzero,
					Q: unn.Pt(rng.Float64()*side, rng.Float64()*side)}
			}
		}
		close(requests)
	}()
	t0 := time.Now()
	mutations, queries, candidates := 0, 0, 0
	for a := range answers {
		if a.Err != nil {
			log.Fatal(a.Err)
		}
		switch a.Kind {
		case unn.OpInsert, unn.OpDelete:
			mutations++
		default:
			queries++
			candidates += len(a.Nonzero)
		}
	}
	fmt.Printf("served %d mutations + %d queries in %v; %.1f candidates per dispatch\n",
		mutations, queries, time.Since(t0), float64(candidates)/float64(queries))
	fmt.Printf("after churn: epoch %d, %d shards (splits/merges track the fleet)\n",
		h.Epoch(), h.ShardCount())

	// Why bother: amortized mutation cost vs rebuilding the whole index.
	t0 = time.Now()
	const direct = 200
	for i := 0; i < direct; i++ {
		if _, err := h.Insert(vehicle(rng)); err != nil {
			log.Fatal(err)
		}
	}
	perMutation := time.Since(t0) / direct
	t0 = time.Now()
	if _, err = unn.OpenDiscrete(fleet,
		unn.WithBackend(unn.BackendTwoStageDiscrete), unn.WithShards(16)); err != nil {
		log.Fatal(err)
	}
	rebuild := time.Since(t0)
	fmt.Printf("amortized insert %v vs full rebuild %v — %.0fx cheaper per mutation\n",
		perMutation, rebuild, float64(rebuild)/float64(perMutation))

	// Bursts coalesce further: a convoy of 64 vehicles registering at
	// once applies as ONE epoch — each touched shard rebuilds once for
	// the whole burst, not once per vehicle. (The Serve stream above
	// already does this opportunistically for queued mutation runs.)
	burst := make([]unn.Mutation, 64)
	for i := range burst {
		burst[i] = unn.InsertMutation(vehicle(rng))
	}
	t0 = time.Now()
	if _, err := h.BatchMutate(burst); err != nil {
		log.Fatal(err)
	}
	perBatched := time.Since(t0) / time.Duration(len(burst))
	fmt.Printf("64-insert convoy via BatchMutate: %v per mutation (singles above: %v)\n",
		perBatched, perMutation)

	// The evening shift: the dispatch workload itself changes — the day
	// was "who could be nearby" (NN≠0), the night runs "who do we expect
	// closest" (E[d]). An adaptive-planner handle watches its own
	// traffic: per-shard visit counters become shard temperatures, and
	// when the observed mix drifts from the plan it re-plans every shard
	// for what that shard actually serves, swapping the new backends in
	// without a restart.
	ah, err := unn.OpenDiscrete(fleet, unn.WithAdaptivePlanner(), unn.WithShards(8))
	if err != nil {
		log.Fatal(err)
	}
	// Downtown stays hot after dark: queries skew toward one corner, so
	// some shards run far warmer than others.
	for i := 0; i < 2500; i++ {
		q := unn.Pt(rng.Float64()*side/3, rng.Float64()*side/3)
		if i%8 == 0 {
			q = unn.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		if _, _, err := ah.QueryExpected(q); err != nil {
			log.Fatal(err)
		}
	}
	st := ah.Stats()
	fmt.Printf("adaptive dispatch: %d replans", st.Replans)
	if st.LastReplanReason != "" {
		fmt.Printf(" (last: %s)", st.LastReplanReason)
	}
	fmt.Println()
	fmt.Print("shard temperatures (visits/window): ")
	for i, temp := range st.ShardTemps {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.0f", temp)
	}
	fmt.Println()
}
