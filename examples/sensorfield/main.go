// Sensorfield: continuous uncertainty. A field of environmental sensors
// was dropped from the air; each sensor's true position is known only up
// to a disk (GPS fix radius), with a truncated-Gaussian prior inside it
// (the paper's §1: "sensor databases ... the location of data is
// imprecise"). For a reading request at point q we ask which sensors can
// possibly be the closest one (NN≠0, which depends only on the disks) and
// with what probability (Monte Carlo over the Gaussian priors) — every
// structure opened through the same engine API, with the two-stage plan
// running behind the sharded execution layer (4 spatial shards, merged
// answers cross-checked against the monolithic diagram).
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unn"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 40 sensors scattered over a 100×100m field.
	const n = 40
	disks := make([]unn.Disk, n)
	priors := make([]unn.Uncertain, n)
	for i := range disks {
		disks[i] = unn.DiskAt(rng.Float64()*100, rng.Float64()*100, 2+rng.Float64()*6)
		priors[i] = unn.NewTruncGauss(disks[i], disks[i].R/2)
	}

	// Near-linear NN≠0 structure (Theorem 3.1 two-stage plan) behind the
	// sharded execution layer — the field is split into 4 spatial shards,
	// one two-stage structure per shard, answers merged with bbox pruning
	// — and the full V≠0 diagram (Theorem 2.5 construction): same input,
	// same interface, different execution plans.
	ts, err := unn.OpenDisks(disks,
		unn.WithBackend(unn.BackendTwoStageDisks), unn.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	diag, err := unn.OpenDisks(disks, unn.WithBackend(unn.BackendDiagram))
	if err != nil {
		log.Fatal(err)
	}
	census := unn.CountDiskComplexity(disks, 0)
	fmt.Printf("exact V≠0 vertex census: %d breakpoints + %d crossings = %d vertices (O(n³)=%d)\n\n",
		census.Breakpoints, census.Crossings, census.Vertices(), n*n*n)

	// Monte-Carlo backend over the Gaussian priors (Theorem 4.5: works
	// for continuous pdfs by direct instantiation). Open detects the disk
	// regions behind the priors, but the MC backend samples the full
	// truncated-Gaussian pdfs.
	s := unn.MCRoundsPerQuery(n, 0.05, 0.05)
	mc, err := unn.Open(priors,
		unn.WithBackend(unn.BackendMonteCarlo), unn.WithMCRounds(s), unn.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	queries := []unn.Point{unn.Pt(50, 50), unn.Pt(10, 85), unn.Pt(95, 5)}
	// Batch the reading requests through both NN≠0 backends and
	// cross-check them against each other.
	tsAns, err := ts.BatchNonzero(queries)
	if err != nil {
		log.Fatal(err)
	}
	diagAns, err := diag.BatchNonzero(queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range queries {
		if len(tsAns[i]) != len(diagAns[i]) {
			log.Fatalf("sharded two-stage and diagram disagree at %v: %v vs %v",
				q, diagAns[i], tsAns[i])
		}
		fmt.Printf("query %v: %d candidate sensors %v\n", q, len(tsAns[i]), tsAns[i])
		probs, err := mc.QueryProbs(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  π estimates (s=%d rounds):", s)
		for _, pr := range probs {
			if pr.P >= 0.05 {
				fmt.Printf("  s%d:%.2f", pr.I, pr.P)
			}
		}
		fmt.Println()
	}
}
