// Sensorfield: continuous uncertainty. A field of environmental sensors
// was dropped from the air; each sensor's true position is known only up
// to a disk (GPS fix radius), with a truncated-Gaussian prior inside it
// (the paper's §1: "sensor databases ... the location of data is
// imprecise"). For a reading request at point q we ask which sensors can
// possibly be the closest one (NN≠0, which depends only on the disks) and
// with what probability (Monte Carlo over the Gaussian priors).
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"log"
	"math/rand"

	"unn"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 40 sensors scattered over a 100×100m field.
	const n = 40
	disks := make([]unn.Disk, n)
	priors := make([]unn.Uncertain, n)
	for i := range disks {
		disks[i] = unn.DiskAt(rng.Float64()*100, rng.Float64()*100, 2+rng.Float64()*6)
		priors[i] = unn.NewTruncGauss(disks[i], disks[i].R/2)
	}

	// Near-linear NN≠0 structure (Theorem 3.1 two-stage plan).
	ts := unn.NewTwoStageDisks(disks)

	// Full V≠0 diagram for comparison (Theorem 2.5 construction).
	diag, err := unn.BuildDiskDiagram(disks, unn.DiagramOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := diag.Stats()
	fmt.Printf("V≠0(P): %d vertices, %d edges, %d faces (n=%d sensors)\n", st.V, st.E, st.F, n)
	census := unn.CountDiskComplexity(disks, 0)
	fmt.Printf("exact vertex census: %d breakpoints + %d crossings = %d vertices (O(n³)=%d)\n\n",
		census.Breakpoints, census.Crossings, census.Vertices(), n*n*n)

	// Monte-Carlo index over the Gaussian priors (Theorem 4.5: works for
	// continuous pdfs by direct instantiation).
	s := unn.MCRoundsPerQuery(n, 0.05, 0.05)
	mc, err := unn.NewMonteCarlo(priors, s, unn.MCOptions{Rng: rng})
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []unn.Point{unn.Pt(50, 50), unn.Pt(10, 85), unn.Pt(95, 5)} {
		cands := ts.Query(q)
		if got := diag.Query(q); len(got) != len(cands) {
			log.Fatalf("structures disagree at %v: %v vs %v", q, got, cands)
		}
		fmt.Printf("query %v: %d candidate sensors %v\n", q, len(cands), cands)
		fmt.Printf("  π estimates (s=%d rounds):", s)
		for _, pr := range mc.Query(q) {
			if pr.P >= 0.05 {
				fmt.Printf("  s%d:%.2f", pr.I, pr.P)
			}
		}
		fmt.Println()
	}
}
