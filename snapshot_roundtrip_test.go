// The snapshot round-trip gate: build → Snapshot → OpenSnapshot →
// parity, over the public API, at CI-friendly sizes. `make
// snapshot-roundtrip` runs exactly this test; the engine-internal
// suite (internal/engine/snapshot_test.go) covers the per-backend
// matrix, this gate proves the end-to-end contract a downstream user
// relies on: a restored handle answers every query kind bit-identically
// to the handle that wrote the snapshot, with the same Explain plan.
package unn_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"unn"
	"unn/internal/constructions"
)

func TestSnapshotRoundTripGate(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe21))
	cases := []struct {
		name string
		side float64
		open func() (*unn.Handle, error)
	}{
		{"sharded-disks", 300, func() (*unn.Handle, error) {
			disks := constructions.RandomDisks(rng, 5000, 300, 0.5, 2.0)
			return unn.OpenDisks(disks, unn.WithShards(8))
		}},
		{"planned-discrete", 20000, func() (*unn.Handle, error) {
			pts := constructions.RandomDiscrete(rng, 2000, 3, 20000, 2.0, 1)
			return unn.OpenDiscrete(pts, unn.WithPlanner(), unn.WithShards(4))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := live.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := unn.OpenSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if lx, rx := live.Explain(), restored.Explain(); lx != rx {
				t.Fatalf("Explain diverged after restore:\nlive:\n%s\nrestored:\n%s", lx, rx)
			}
			qs := randQueries(128, tc.side, 0xe21)
			for _, q := range qs {
				li, err := live.QueryNonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				ri, err := restored.QueryNonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(li) != len(ri) {
					t.Fatalf("NN≠0 diverged at %v: %d vs %d ids", q, len(li), len(ri))
				}
				for i := range li {
					if li[i] != ri[i] {
						t.Fatalf("NN≠0 diverged at %v: ids %v vs %v", q, li, ri)
					}
				}
				lp, err1 := live.QueryProbs(q, 0)
				rp, err2 := restored.QueryProbs(q, 0)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("probs support diverged at %v: %v vs %v", q, err1, err2)
				}
				if err1 == nil {
					if len(lp) != len(rp) {
						t.Fatalf("probs diverged at %v: %d vs %d entries", q, len(lp), len(rp))
					}
					for i := range lp {
						if lp[i].I != rp[i].I || math.Abs(lp[i].P-rp[i].P) > 1e-12 {
							t.Fatalf("probs diverged at %v: %v vs %v", q, lp[i], rp[i])
						}
					}
				}
			}
		})
	}
}
