GO ?= go

.PHONY: verify build vet fmtcheck test race bench bench-json examples clean

# The tier-1 gate: everything CI runs.
verify: build vet fmtcheck test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt gating: fail when any file needs reformatting.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-check the concurrent machinery: the sharded execution layer and
# the async Serve stream.
race:
	$(GO) test -race ./internal/engine -run 'Shard|Serve|Batch'

# Engine benchmarks: parallel batch vs sequential, sharded vs unsharded.
bench:
	$(GO) test ./internal/engine -run xxx \
		-bench 'EngineBatch|EngineSequential|ShardedBatch|UnshardedBatch' -benchtime 5x

# Machine-readable perf trajectory: one JSON record per backend/size
# (E16) plus the shard-scaling sweep (E17).
bench-json:
	$(GO) run ./cmd/unnbench -quick -json BENCH_engine.json >/dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/semantics
	$(GO) run ./examples/sensorfield
	$(GO) run ./examples/mobiledata

clean:
	$(GO) clean ./...
