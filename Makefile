GO ?= go

.PHONY: verify build vet fmtcheck test test-serial race bench bench-allocs bench-json benchdiff snapshot-roundtrip fuzz-short examples clean

# The tier-1 gate: everything CI runs.
verify: build vet fmtcheck test test-serial race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt gating: fail when any file needs reformatting.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Single-proc leg: the batch executor's worker pools, tile scheduler and
# Serve coalescing must behave identically when the runtime offers no
# parallelism (degenerate pool sizes, inline sequential paths).
# -count=1 because the test cache does not key on GOMAXPROCS.
test-serial:
	GOMAXPROCS=1 $(GO) test -count=1 ./internal/engine ./internal/kernel

# Race-check the concurrent machinery: the sharded execution layer, the
# dynamic mutation path, the async Serve stream, the planner's
# composite indexes (incl. the Stats latency counters batch workers hit),
# and the adaptive replanning loop's concurrent replan-and-swap churn.
race:
	$(GO) test -race ./internal/engine -run 'Shard|Serve|Batch|Dynamic|Planner|Planned|Stats|Adaptive|Replan|Observe'

# Engine benchmarks: parallel batch vs sequential, sharded vs unsharded.
bench:
	$(GO) test ./internal/engine -run xxx \
		-bench 'EngineBatch|EngineSequential|ShardedBatch|UnshardedBatch' -benchtime 5x

# Zero-alloc gate for the flat-kernel query path, the tiled batch
# executor, and the adaptive observation path: the E16/E17 single-query
# benchmarks drive QueryNonzeroInto, the E23 benchmark drives
# BatchNonzeroInto, and the E24 benchmark drives QueryNonzeroInto with
# the adaptive loop's windowed observation enabled — all with pooled
# scratch, reporting allocs/op; any nonzero steady-state figure fails
# the target (the one-time pool fill amortizes to 0 over the fixed
# iteration count).
bench-allocs:
	@out="$$($(GO) test . -run xxx -bench 'SingleNonzero|E23_BatchTiled|E24_AdaptiveObserve' -benchtime 200x)"; \
	echo "$$out"; \
	bad="$$(echo "$$out" | awk '/allocs\/op/ && $$(NF-1)+0 != 0')"; \
	if [ -n "$$bad" ]; then \
		echo "bench-allocs: query path allocates:"; echo "$$bad"; exit 1; fi

# Snapshot round-trip gate: build an index, write its binary snapshot,
# restore it through unn.OpenSnapshot, and require bit-identical
# answers plus an identical Explain plan (DESIGN.md §9).
snapshot-roundtrip:
	$(GO) test . -run TestSnapshotRoundTripGate -count=1 -v

# Short fuzz pass over the decode/parity surfaces with seeded corpora:
# the flat-kernel vs reference-path parity fuzzer, the tiled-kernel vs
# scalar-kernel parity fuzzer, and the snapshot container decoder
# (which must reject arbitrary corruption with an error, never a panic
# or an attacker-sized allocation).
fuzz-short:
	$(GO) test ./internal/kernel -run xxx -fuzz FuzzKernelParity -fuzztime 30s
	$(GO) test ./internal/kernel -run xxx -fuzz FuzzTileParity -fuzztime 30s
	$(GO) test ./internal/engine -run xxx -fuzz FuzzSnapshotDecode -fuzztime 30s

# Machine-readable perf trajectory: one JSON record per backend/size
# (E16) plus the shard-scaling (E17), streaming-mutation (E18),
# planner-vs-auto (E19), mutation-batching (E20), snapshot (E21),
# top-k (E22) and batch-tiling (E23) sweeps.
bench-json:
	$(GO) run ./cmd/unnbench -quick -json BENCH_engine.json >/dev/null

# Compare the fresh BENCH_engine.json against a previous run's artifact
# (OLD=path, fetched by CI from the last uploaded BENCH_engine), warning
# on >20% regressions in the E17–E23 throughput metrics — and, within
# the fresh file, on the E19 planner dropping below the rule-based
# auto, on E21 snapshot restore dropping below 10× the cold build, on
# snapshot parity breaking, on an E22 top-k query costing more than
# 1.5× its own configuration's π baseline, and on the E23 tiled batch
# executor dropping below 1.5× the scalar path on the hot workload or
# breaking batch parity.
OLD ?= prev/BENCH_engine.json
benchdiff:
	@if [ -f "$(OLD)" ]; then \
		$(GO) run ./cmd/benchdiff -old "$(OLD)" -new BENCH_engine.json; \
	else \
		echo "benchdiff: no previous artifact at $(OLD); skipping"; \
	fi

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/semantics
	$(GO) run ./examples/sensorfield
	$(GO) run ./examples/mobiledata
	$(GO) run ./examples/streaming

clean:
	$(GO) clean ./...
