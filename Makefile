GO ?= go

.PHONY: verify build vet test bench bench-json examples clean

# The tier-1 gate: everything CI runs.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Engine benchmarks (BenchmarkEngineBatch vs BenchmarkEngineSequential).
bench:
	$(GO) test ./internal/engine -run xxx -bench 'EngineBatch|EngineSequential' -benchtime 5x

# Machine-readable perf trajectory: one JSON record per backend/size.
bench-json:
	$(GO) run ./cmd/unnbench -quick -json BENCH_engine.json >/dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/semantics
	$(GO) run ./examples/sensorfield
	$(GO) run ./examples/mobiledata

clean:
	$(GO) clean ./...
