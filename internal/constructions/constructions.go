// Package constructions generates the paper's lower-bound instances and
// the random workloads used by the experiment harness.
//
// The lower-bound families reproduce, coordinate for coordinate, the
// constructions of Theorem 2.7 (Figure 5), Theorem 2.8 (Figure 6),
// Theorem 2.10 (Figure 8) and Lemma 4.1 — the paper's "figures" are these
// constructions, and the experiments verify that the diagrams built on
// them exhibit the claimed Ω(n³), Ω(n²) and Ω(n⁴) growth.
package constructions

import (
	"math"
	"math/rand"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

// LowerBoundMixed is the Θ(n³) construction of Theorem 2.7 / Figure 5:
// n = 4m disks — two families of m giant disks (radius R = 8n²) flanking
// the y-axis on the x-axis, staggered by ω = 1/n², plus 2m unit disks
// stacked on the y-axis. Every triple (i, j, k) contributes two vertices
// to V≠0, for 4m³ = n³/16 crossing vertices in total.
func LowerBoundMixed(m int) []geom.Disk {
	n := 4 * m
	R := 8 * float64(n) * float64(n)
	omega := 1 / (float64(n) * float64(n))
	var disks []geom.Disk
	for i := 1; i <= m; i++ {
		disks = append(disks, geom.DiskAt(-R-1.5-float64(i-1)*omega, 0, R))
	}
	for j := 1; j <= m; j++ {
		disks = append(disks, geom.DiskAt(R+1.5+float64(j-1)*omega, 0, R))
	}
	for k := 1; k <= 2*m; k++ {
		disks = append(disks, geom.DiskAt(0, float64(4*(k-m)-2), 1))
	}
	return disks
}

// LowerBoundMixedExpected returns the number of crossing vertices the
// Theorem 2.7 construction guarantees: 2 per (i, j, k) triple.
func LowerBoundMixedExpected(m int) int { return 2 * m * m * 2 * m }

// LowerBoundEqual is the Θ(n³) equal-radius construction of Theorem 2.8 /
// Figure 6: n = 3m unit disks — two staggered families on the x-axis
// around ±2 and one family on the arc (2−2cos kθ, 2 sin kθ) with
// θ = π/(2(m+1)). Every triple contributes one vertex, m³ = n³/27 total.
func LowerBoundEqual(m int) []geom.Disk {
	theta := math.Pi / 2 / float64(m+1)
	omega := 1e-4 / float64(m+1)
	var disks []geom.Disk
	for i := 1; i <= m; i++ {
		disks = append(disks, geom.DiskAt(-2-float64(i-1)*omega, 0, 1))
	}
	for j := 1; j <= m; j++ {
		disks = append(disks, geom.DiskAt(2+float64(j-1)*omega, 0, 1))
	}
	for k := 1; k <= m; k++ {
		a := float64(k) * theta
		disks = append(disks, geom.DiskAt(2-2*math.Cos(a), 2*math.Sin(a), 1))
	}
	return disks
}

// LowerBoundEqualExpected returns the guaranteed vertex count m³ of the
// Theorem 2.8 construction.
func LowerBoundEqualExpected(m int) int { return m * m * m }

// LowerBoundDisjoint is the Ω(n²) construction of Theorem 2.10 /
// Figure 8: n = 2m disjoint unit disks centered at (4(i−m)−2, 0). Every
// pair (i, j) with j−i ≥ 2 determines two vertices of V≠0.
func LowerBoundDisjoint(m int) []geom.Disk {
	var disks []geom.Disk
	for i := 1; i <= 2*m; i++ {
		disks = append(disks, geom.DiskAt(float64(4*(i-m)-2), 0, 1))
	}
	return disks
}

// LowerBoundDisjointExpected counts the pairs (i, j), j−i ≥ 2, times two.
func LowerBoundDisjointExpected(m int) int {
	n := 2 * m
	// pairs with j-i >= 2: C(n,2) - (n-1)
	return 2 * (n*(n-1)/2 - (n - 1))
}

// VPrLowerBound is the Ω(n⁴) instance of Lemma 4.1, de-degenerated: each
// P_i has two locations with probability 1/2 — p_i near the unit circle
// (radial jitter makes all bisectors distinct while keeping every
// pairwise bisector crossing near the origin) and p'_i far away near
// (100, 0) (tiny stagger removes the coincident-location degeneracy).
func VPrLowerBound(n int, rng *rand.Rand) []*uncertain.Discrete {
	if rng == nil {
		rng = rand.New(rand.NewSource(0x4a1))
	}
	pts := make([]*uncertain.Discrete, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * (float64(i) + 0.13*rng.Float64()) / float64(n)
		rad := 1 + 0.05*rng.Float64()
		near := geom.Dir(ang).Scale(rad)
		far := geom.Pt(100+1e-3*float64(i), 0)
		d, err := uncertain.NewDiscrete([]geom.Point{near, far}, []float64{0.5, 0.5})
		if err != nil {
			panic(err)
		}
		pts[i] = d
	}
	return pts
}

// RandomDisks draws n disks with centers uniform in a side×side square
// and radii uniform in [rMin, rMax].
func RandomDisks(rng *rand.Rand, n int, side, rMin, rMax float64) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		disks[i] = geom.DiskAt(
			rng.Float64()*side, rng.Float64()*side,
			rMin+rng.Float64()*(rMax-rMin),
		)
	}
	return disks
}

// DisjointDisks draws n pairwise-disjoint disks with radius ratio at most
// lambda (radii in [1, lambda]), by dart throwing in a square sized for
// ~25% packing density.
func DisjointDisks(rng *rand.Rand, n int, lambda float64) []geom.Disk {
	if lambda < 1 {
		lambda = 1
	}
	avgR := (1 + lambda) / 2
	side := math.Sqrt(float64(n)*math.Pi*avgR*avgR) * 2
	var disks []geom.Disk
	for len(disks) < n {
		d := geom.DiskAt(rng.Float64()*side, rng.Float64()*side, 1+rng.Float64()*(lambda-1))
		ok := true
		for _, e := range disks {
			if d.C.Dist(e.C) <= d.R+e.R {
				ok = false
				break
			}
		}
		if ok {
			disks = append(disks, d)
		}
	}
	return disks
}

// RandomDiscrete draws n discrete uncertain points, each with k locations
// Gaussian-scattered (sd sigma) around a uniform center in a side×side
// square; weights are uniform in [0.5, 1.5] before normalization, unless
// spread > 1, in which case they span the given spread ratio.
func RandomDiscrete(rng *rand.Rand, n, k int, side, sigma, spread float64) []*uncertain.Discrete {
	pts := make([]*uncertain.Discrete, n)
	for i := range pts {
		c := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = c.Add(geom.Pt(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
			if spread > 1 {
				w[j] = math.Pow(spread, rng.Float64())
			} else {
				w[j] = 0.5 + rng.Float64()
			}
		}
		d, err := uncertain.NewDiscrete(locs, w)
		if err != nil {
			panic(err)
		}
		pts[i] = d
	}
	return pts
}

// RemarkInstance reproduces the adversarial example of §4.3 Remark (i),
// which shows that dropping locations of weight < ε/k can distort the
// quantification probabilities by more than 2ε. The returned slice holds
// n/2+2 uncertain points; the query is the origin.
//
//	P_1: location at distance 1 with weight 3ε (rest of the mass far away);
//	P_3..P_{n/2+2}: one location each at distances just above 1, weight 2/n;
//	P_2: location at distance 2 with weight 5ε (rest far away).
func RemarkInstance(eps float64, n int) ([]*uncertain.Discrete, geom.Point) {
	// The far locations are staggered (all distinct, the P_1 and P_2 far
	// locations farthest of all) so that no exact distance ties occur and
	// the far mass never wins: every far location has all of the middle
	// points' full mass strictly closer, killing its η factor.
	mk := func(nearDist, w float64, dir float64, far geom.Point) *uncertain.Discrete {
		loc := geom.Dir(dir).Scale(nearDist)
		d, err := uncertain.NewDiscrete(
			[]geom.Point{loc, far}, []float64{w, 1 - w})
		if err != nil {
			panic(err)
		}
		return d
	}
	var pts []*uncertain.Discrete
	pts = append(pts, mk(1, 3*eps, 0, geom.Pt(3e4, 0)))
	for i := 0; i < n/2; i++ {
		dir := 2 * math.Pi * float64(i+1) / float64(n/2+2)
		pts = append(pts, mk(1+1e-3*float64(i+1), 2/float64(n), dir,
			geom.Pt(1e4+float64(i), 0)))
	}
	pts = append(pts, mk(2, 5*eps, math.Pi/3, geom.Pt(2e4, 0)))
	return pts, geom.Pt(0, 0)
}
