package constructions

import (
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/nonzero"
	"unn/internal/quantify"
)

// The Theorem 2.7 construction must actually exhibit its guaranteed
// vertex count: 4m³ crossings between the γ curves of the two giant-disk
// families.
func TestLowerBoundMixedRealizesCubicVertices(t *testing.T) {
	for _, m := range []int{2, 3} {
		disks := LowerBoundMixed(m)
		if len(disks) != 4*m {
			t.Fatalf("m=%d: %d disks", m, len(disks))
		}
		want := LowerBoundMixedExpected(m)
		// Angular resolution must separate vertices ~4 units apart seen
		// from centers ~R away: grid ≳ 2πR/4.
		n := 4 * m
		grid := 4 * 8 * n * n // ≈ 2πR with R = 8n²
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, grid)
		if c.Crossings < want {
			t.Fatalf("m=%d: %d crossings < guaranteed %d", m, c.Crossings, want)
		}
	}
}

func TestLowerBoundEqualRealizesCubicVertices(t *testing.T) {
	for _, m := range []int{3, 4} {
		disks := LowerBoundEqual(m)
		if len(disks) != 3*m {
			t.Fatalf("m=%d: %d disks", m, len(disks))
		}
		want := LowerBoundEqualExpected(m)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
		if c.Crossings < want {
			t.Fatalf("m=%d: %d crossings < guaranteed %d", m, c.Crossings, want)
		}
	}
}

func TestLowerBoundDisjointRealizesQuadraticVertices(t *testing.T) {
	for _, m := range []int{3, 5} {
		disks := LowerBoundDisjoint(m)
		// Disjointness.
		for i := range disks {
			for j := i + 1; j < len(disks); j++ {
				if disks[i].Intersects(disks[j]) {
					t.Fatalf("disks %d and %d intersect", i, j)
				}
			}
		}
		want := LowerBoundDisjointExpected(m)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
		if c.Crossings < want {
			t.Fatalf("m=%d: %d crossings < guaranteed %d", m, c.Crossings, want)
		}
	}
}

func TestVPrLowerBoundGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cells := make([]int, 0, 2)
	for _, n := range []int{4, 6} {
		pts := VPrLowerBound(n, rng)
		v, err := quantify.BuildVPr(pts, quantify.VPrOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, v.DistinctCells())
	}
	// 6⁴/4⁴ ≈ 5; demand at least cubic-ish growth to catch regressions.
	if float64(cells[1]) < 2.5*float64(cells[0]) {
		t.Fatalf("V_Pr cells grew too slowly: %v", cells)
	}
}

// The §4.3 Remark (i) instance: dropping the light middle points flips
// the apparent order of π_1 and π_2.
func TestRemarkInstance(t *testing.T) {
	eps := 0.01
	n := 40
	pts, q := RemarkInstance(eps, n)
	pi := quantify.ExactAt(pts, q)
	// π_1 ≈ 3ε and exceeds π_2 < 2ε.
	if pi[0] < 2.5*eps {
		t.Fatalf("π_1 = %v, want ≈ 3ε", pi[0])
	}
	last := len(pi) - 1
	if pi[last] >= 2*eps {
		t.Fatalf("π_2 = %v, want < 2ε", pi[last])
	}
	if pi[0] <= pi[last] {
		t.Fatal("true order must have π_1 > π_2")
	}
	// Naive estimate that ignores the light points: ˆπ_2 = 5ε(1−3ε) > 4ε,
	// wrongly exceeding π_1.
	naive := 5 * eps * (1 - 3*eps)
	if naive <= 4*eps {
		t.Fatalf("naive estimate %v not > 4ε", naive)
	}
	if naive <= pi[0] {
		t.Fatal("instance fails to exhibit the inversion")
	}
}

func TestDisjointDisksRespectLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	disks := DisjointDisks(rng, 30, 3)
	lo, hi := disks[0].R, disks[0].R
	for _, d := range disks {
		if d.R < lo {
			lo = d.R
		}
		if d.R > hi {
			hi = d.R
		}
	}
	if hi/lo > 3 {
		t.Fatalf("radius ratio %v > λ", hi/lo)
	}
	for i := range disks {
		for j := i + 1; j < len(disks); j++ {
			if disks[i].Intersects(disks[j]) {
				t.Fatal("disks not disjoint")
			}
		}
	}
}

func TestRandomWorkloadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	disks := RandomDisks(rng, 25, 100, 1, 5)
	if len(disks) != 25 {
		t.Fatal("disk count")
	}
	for _, d := range disks {
		if d.R < 1 || d.R > 5 {
			t.Fatalf("radius %v out of range", d.R)
		}
	}
	pts := RandomDiscrete(rng, 10, 4, 100, 2, 50)
	if len(pts) != 10 || pts[0].K() != 4 {
		t.Fatal("discrete shape")
	}
	for _, p := range pts {
		if p.SpreadRatio() > 51 {
			t.Fatalf("spread %v exceeds requested", p.SpreadRatio())
		}
	}
	q := geom.Pt(50, 50)
	if got := nonzero.Brute(nonzero.DiscreteAsUncertain(pts), q); len(got) == 0 {
		t.Fatal("no nonzero NN on random workload")
	}
}
