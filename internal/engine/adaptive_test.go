package engine

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/quantify"
)

// adaptiveFixture builds a planner-built sharded discrete engine with
// the adaptive loop enabled, planned for a π-heavy mix so an
// E[d]-heavy stream later constitutes drift.
func adaptiveFixture(t *testing.T, n, shards int, aopt AdaptiveOptions) (*Engine, *ShardedIndex, *Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x5eed))
	pts := constructions.RandomDiscrete(rng, n, 3, 90, 2.0, 1)
	ds := FromDiscrete(pts)
	ix, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{Shards: shards},
		PlannerOptions{Mix: Workload{Probs: 1, Nonzero: 0.25, Expected: 0.01}, NoProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	sx, ok := ix.(*ShardedIndex)
	if !ok {
		t.Fatalf("BuildPlanned with %d shards returned %T, want *ShardedIndex", shards, ix)
	}
	eng := NewEngine(ix, Options{AdaptiveReplan: &aopt})
	if eng.adapt == nil {
		t.Fatal("adaptive controller not wired on a planner-built sharded fleet")
	}
	return eng, sx, ds
}

// TestObserverWindowDelta pins the delta-window contract: only samples
// since the previous call contribute, an unchanged snapshot yields an
// empty window, and a counter that moved backwards restarts.
func TestObserverWindowDelta(t *testing.T) {
	var o Observer
	var cum [numKinds]KindStats
	cum[slotNonzero] = KindStats{Count: 10, TotalNs: 1000}
	win := o.Window(cum)
	if win[slotNonzero].Count != 10 || win[slotNonzero].TotalNs != 1000 {
		t.Fatalf("first window = %+v, want the full snapshot", win[slotNonzero])
	}
	// Same snapshot again: nothing new.
	win = o.Window(cum)
	if win[slotNonzero].Count != 0 || win[slotNonzero].TotalNs != 0 {
		t.Fatalf("repeated snapshot produced a non-empty window %+v", win[slotNonzero])
	}
	// Advance: only the delta.
	cum[slotNonzero] = KindStats{Count: 25, TotalNs: 4000}
	win = o.Window(cum)
	if win[slotNonzero].Count != 15 || win[slotNonzero].TotalNs != 3000 {
		t.Fatalf("delta window = %+v, want {15 3000}", win[slotNonzero])
	}
	// Backwards (fresh engine reusing the observer): restart, empty window.
	cum[slotNonzero] = KindStats{Count: 3, TotalNs: 500}
	win = o.Window(cum)
	if win[slotNonzero].Count != 0 {
		t.Fatalf("backwards counter produced window %+v, want empty", win[slotNonzero])
	}
	cum[slotNonzero] = KindStats{Count: 5, TotalNs: 900}
	win = o.Window(cum)
	if win[slotNonzero].Count != 2 || win[slotNonzero].TotalNs != 400 {
		t.Fatalf("post-restart delta = %+v, want {2 400}", win[slotNonzero])
	}
}

// TestDetectDrift exercises the detector's three outcomes: silent when
// the profile matches the plan, firing on a mix shift, firing on an
// estimate error — and staying silent for kinds under the share floor.
func TestDetectDrift(t *testing.T) {
	th := DriftThresholds{} // defaults: factor 4, TV 0.35
	var mean, mix, ref, planMix [numKinds]float64
	planMix[slotProbs], planMix[slotNonzero] = 0.8, 0.2
	mix = planMix
	mean[slotProbs], mean[slotNonzero] = 5000, 800
	ref = mean
	if r := detectDrift(mean, mix, ref, planMix, th); r != "" {
		t.Fatalf("matched profile fired: %q", r)
	}
	// Mix flip: probs-heavy plan, expected-heavy traffic.
	mix = [numKinds]float64{}
	mix[slotExpected], mix[slotNonzero] = 0.9, 0.1
	if r := detectDrift(mean, mix, ref, planMix, th); !strings.Contains(r, "mix shifted") {
		t.Fatalf("flipped mix reason = %q, want a mix-shift reason", r)
	}
	// Estimate error: same mix, one kind 10x its reference.
	mix = planMix
	mean[slotProbs] = ref[slotProbs] * 10
	if r := detectDrift(mean, mix, ref, planMix, th); !strings.Contains(r, "latency") {
		t.Fatalf("10x latency reason = %q, want an estimate-error reason", r)
	}
	// The same error on a kind under the share floor is noise, not signal.
	mean[slotProbs] = ref[slotProbs]
	mean[slotExpected], ref[slotExpected] = 99999, 1
	mix[slotProbs], mix[slotNonzero], mix[slotExpected] = 0.78, 0.19, 0.03
	if r := detectDrift(mean, mix, ref, planMix, th); r != "" {
		t.Fatalf("sub-floor kind fired: %q", r)
	}
}

// TestObserveIntoDeltaWindows is the double-count regression: repeated
// ObserveInto calls with no traffic in between must leave the cost
// model untouched — the old one-shot implementation re-blended the full
// cumulative means on every call.
func TestObserveIntoDeltaWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 80, 3, 60, 2.0, 1))
	ix, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{}, PlannerOptions{NoProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{})
	for i := 0; i < 50; i++ {
		q := geom.Pt(rng.Float64()*60, rng.Float64()*60)
		if _, err := eng.QueryNonzero(q); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.QueryExpected(q); err != nil {
			t.Fatal(err)
		}
	}
	model := NewCostModel(nil)
	before := model.Coefficients()
	eng.ObserveInto(model)
	after1 := model.Coefficients()
	if reflect.DeepEqual(before, after1) {
		t.Fatal("first ObserveInto left the model untouched despite recorded traffic")
	}
	// No new traffic: the second call must consume an empty window.
	eng.ObserveInto(model)
	if got := model.Coefficients(); !reflect.DeepEqual(after1, got) {
		t.Fatalf("ObserveInto with no new traffic moved coefficients:\nfirst:  %v\nsecond: %v", after1, got)
	}
	// Fresh traffic opens a fresh window and moves the model again.
	for i := 0; i < 50; i++ {
		q := geom.Pt(rng.Float64()*60, rng.Float64()*60)
		if _, err := eng.QueryNonzero(q); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveInto(model)
	if got := model.Coefficients(); reflect.DeepEqual(after1, got) {
		t.Fatal("ObserveInto ignored the fresh window")
	}
}

// TestAdaptiveDriftReplans is the loop end to end: a π-heavy plan
// observes an E[d]-heavy stream, detects the flip, replans and swaps —
// and the swapped fleet still answers exactly (NN≠0 bit-identical, π
// and E[d] within 1e-12 of a fresh monolithic oracle).
func TestAdaptiveDriftReplans(t *testing.T) {
	eng, _, ds := adaptiveFixture(t, 400, 4, AdaptiveOptions{Window: 64, Cooldown: 1})
	rng := rand.New(rand.NewSource(11))
	pt := func() geom.Point { return geom.Pt(rng.Float64()*90, rng.Float64()*90) }

	// Phase A: traffic matching the plan's mix — the profile warms up and
	// no replan fires.
	for w := 0; w < 3; w++ {
		for i := 0; i < 52; i++ {
			if _, err := eng.QueryProbs(pt(), 1e-3); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 13; i++ {
			if _, err := eng.QueryNonzero(pt()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := eng.Stats(); st.Replans != 0 {
		t.Fatalf("replan fired under the planned mix: %d (%s)", st.Replans, st.LastReplanReason)
	}

	// Phase B: the stream flips E[d]-heavy. Keep querying until the loop
	// notices — the tick runs inline on the query path and the replan on
	// its own goroutine, so poll Stats with a deadline.
	deadline := time.Now().Add(15 * time.Second)
	for eng.Stats().Replans == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no replan within deadline; Explain:\n%s", eng.Explain())
		}
		for i := 0; i < 58; i++ {
			if _, _, err := eng.QueryExpected(pt()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			if _, err := eng.QueryNonzero(pt()); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := eng.Stats()
	if st.LastReplanReason == "" {
		t.Error("replan recorded no reason")
	}
	if len(st.ShardTemps) != 4 {
		t.Fatalf("ShardTemps = %v, want 4 entries", st.ShardTemps)
	}
	sum := 0.0
	for _, temp := range st.ShardTemps {
		sum += temp
	}
	if sum <= 0 {
		t.Errorf("all shard temperatures cold after observed traffic: %v", st.ShardTemps)
	}
	if ex := eng.Explain(); !strings.Contains(ex, "adaptive: window 64 queries") ||
		!strings.Contains(ex, st.LastReplanReason) {
		t.Errorf("Explain missing the adaptive block or reason:\n%s", ex)
	}

	// Post-swap parity against a fresh monolithic oracle on the same
	// dataset: the replan must not have changed any answer.
	pts := ds.Discrete
	for trial := 0; trial < 24; trial++ {
		q := pt()
		nz, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteNonzero(ds, q); !reflect.DeepEqual(nz, want) {
			t.Fatalf("q=%v post-replan nonzero = %v, want %v", q, nz, want)
		}
		ps, err := eng.QueryProbs(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		probsWithin(t, "post-replan", ps, quantify.ExactPositive(pts, q), 1e-12)
		gi, gd, err := eng.QueryExpected(q)
		if err != nil {
			t.Fatal(err)
		}
		wi, wd := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.ExpectedDist(q); d < wd {
				wi, wd = i, d
			}
		}
		if gi != wi || math.Abs(gd-wd) > 1e-12*math.Max(1, math.Abs(wd)) {
			t.Fatalf("q=%v post-replan expected = (%d, %v), want (%d, %v)", q, gi, gd, wi, wd)
		}
	}
}

// TestReplanManual pins the manual trigger: it errors on an engine
// without the loop, installs a plan synchronously on one with it, and
// shows up in Stats and Explain.
func TestReplanManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 80, 3, 60, 2.0, 1))
	plain, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{}, PlannerOptions{NoProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(plain, Options{}).Replan(); err == nil {
		t.Fatal("Replan on a non-adaptive engine did not error")
	}
	// AdaptiveReplan on a non-sharded index is ignored, not an error: the
	// loop replans per shard, so there is nothing for it to do.
	if _, err := NewEngine(plain, Options{AdaptiveReplan: &AdaptiveOptions{}}).Replan(); err == nil {
		t.Fatal("Replan on a monolithic engine did not error")
	}

	eng, sx, _ := adaptiveFixture(t, 200, 4, AdaptiveOptions{})
	epoch0 := func() uint64 {
		sx.mu.RLock()
		defer sx.mu.RUnlock()
		return sx.epoch
	}()
	ok, err := eng.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("manual replan on a quiescent fleet did not install")
	}
	sx.mu.RLock()
	epoch1 := sx.epoch
	sx.mu.RUnlock()
	if epoch1 != epoch0+1 {
		t.Errorf("swap advanced epoch %d → %d, want +1", epoch0, epoch1)
	}
	st := eng.Stats()
	if st.Replans != 1 || st.LastReplanReason != "manual replan" {
		t.Errorf("Stats after manual replan = (%d, %q)", st.Replans, st.LastReplanReason)
	}
	if ex := eng.Explain(); !strings.Contains(ex, "1 replans (last: manual replan)") {
		t.Errorf("Explain missing the replan history:\n%s", ex)
	}
}

// TestAdaptiveReplanChurn hammers queries and mutations against
// concurrent replan-swaps (run under -race in the Makefile race leg):
// no call may error, the mutation epoch must be monotone, and once the
// churn quiesces the fleet must still answer exactly.
func TestAdaptiveReplanChurn(t *testing.T) {
	eng, sx, _ := adaptiveFixture(t, 200, 4, AdaptiveOptions{Window: 32, Cooldown: 1})
	rng := rand.New(rand.NewSource(99))
	extra := constructions.RandomDiscrete(rng, 64, 3, 90, 2.0, 1)

	iters := 400
	if raceEnabled {
		iters = 150
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Query hammers: each goroutine owns its rng (rand.Rand is not
	// concurrency-safe).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				q := geom.Pt(r.Float64()*90, r.Float64()*90)
				if _, err := eng.QueryNonzero(q); err != nil {
					fail(err)
					return
				}
				if _, _, err := eng.QueryExpected(q); err != nil {
					fail(err)
					return
				}
			}
		}(int64(g) + 1)
	}

	// Mutation churn: inserts bump the epoch and occasionally collide
	// with an in-flight replan build, exercising the stale-swap fence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := eng.Insert(Item{Point: extra[i%len(extra)]}); err != nil {
				fail(err)
				return
			}
			if i%3 == 0 {
				if err := eng.Delete(0); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	// Replan churn, watching the epoch for monotonicity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for i := 0; i < iters/4; i++ {
			if _, err := eng.Replan(); err != nil {
				fail(err)
				return
			}
			sx.mu.RLock()
			ep := sx.epoch
			sx.mu.RUnlock()
			if ep < last {
				fail(fmt.Errorf("epoch regressed: %d then %d", last, ep))
				return
			}
			last = ep
		}
		stop.Store(true)
	}()
	wg.Wait()
	stop.Store(true)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiesced: the surviving fleet answers exactly on its final dataset.
	sx.mu.RLock()
	final := sx.ds
	sx.mu.RUnlock()
	for trial := 0; trial < 16; trial++ {
		q := geom.Pt(rng.Float64()*90, rng.Float64()*90)
		nz, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteNonzero(final, q); !reflect.DeepEqual(nz, want) {
			t.Fatalf("q=%v post-churn nonzero = %v, want %v", q, nz, want)
		}
	}
}

// TestAdaptiveSnapshotRoundTrip drives traffic until the shard
// temperatures are warm, forces a replan, and asserts the whole
// adaptive state — temps, replan count, last reason, and the enabled
// loop itself — survives a snapshot round trip.
func TestAdaptiveSnapshotRoundTrip(t *testing.T) {
	eng, _, _ := adaptiveFixture(t, 200, 4, AdaptiveOptions{Window: 32, Cooldown: 1})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3*32+8; i++ {
		if _, err := eng.QueryNonzero(geom.Pt(rng.Float64()*90, rng.Float64()*90)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Replan(); err != nil {
		t.Fatal(err)
	}
	want := eng.Stats()
	sumTemps := func(ts []float64) float64 {
		s := 0.0
		for _, v := range ts {
			s += v
		}
		return s
	}
	if sumTemps(want.ShardTemps) <= 0 {
		t.Fatalf("fixture never warmed: temps %v", want.ShardTemps)
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, eng); err != nil {
		t.Fatal(err)
	}
	eng2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := eng2.Stats()
	if got.Replans != want.Replans || got.LastReplanReason != want.LastReplanReason {
		t.Errorf("restored replan history = (%d, %q), want (%d, %q)",
			got.Replans, got.LastReplanReason, want.Replans, want.LastReplanReason)
	}
	if !reflect.DeepEqual(got.ShardTemps, want.ShardTemps) {
		t.Errorf("restored shard temps = %v, want %v", got.ShardTemps, want.ShardTemps)
	}
	// The restored loop is live, not just reported: a manual replan works.
	if ok, err := eng2.Replan(); err != nil || !ok {
		t.Fatalf("restored engine Replan = (%v, %v), want (true, nil)", ok, err)
	}
	// And the restored fleet answers like the original.
	for trial := 0; trial < 8; trial++ {
		q := geom.Pt(rng.Float64()*90, rng.Float64()*90)
		a, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng2.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("q=%v restored answers diverged: %v vs %v", q, a, b)
		}
	}
}
