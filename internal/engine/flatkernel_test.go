package engine

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
)

// flatParityCase pairs a backend with a dataset whose flat path the
// sharded planner exercises, plus the monolithic AoS oracle.
type flatParityCase struct {
	name    string
	backend Backend
	ds      *Dataset
	side    float64
	oracle  func(q geom.Point) []int
}

func flatParityCases(t *testing.T) []flatParityCase {
	t.Helper()
	rng := rand.New(rand.NewSource(0xf1a7))
	disks := constructions.RandomDisks(rng, 40, 30, 0.5, 2.0)
	discrete := constructions.RandomDiscrete(rng, 40, 3, 30, 1.0, 1)
	squares := randSquares(rng, 40, 30)
	return []flatParityCase{
		{"brute/disks", BackendBrute, FromDisks(disks), 30,
			func(q geom.Point) []int { return nonzero.BruteDisks(disks, q) }},
		{"brute/discrete", BackendBrute, FromDiscrete(discrete), 30,
			func(q geom.Point) []int { return nonzero.Brute(nonzero.DiscreteAsUncertain(discrete), q) }},
		{"twostage-disks", BackendTwoStageDisks, FromDisks(disks), 30,
			func(q geom.Point) []int { return nonzero.BruteDisks(disks, q) }},
		{"twostage-discrete", BackendTwoStageDiscrete, FromDiscrete(discrete), 30,
			func(q geom.Point) []int { return nonzero.Brute(nonzero.DiscreteAsUncertain(discrete), q) }},
		{"twostage-linf", BackendTwoStageLinf, FromSquares(squares), 30,
			func(q geom.Point) []int { return lmetric.BruteLinf(squares, q) }},
		{"twostage-l1", BackendTwoStageL1, FromSquares(squares), 30,
			func(q geom.Point) []int { return lmetric.BruteL1(squares, q) }},
	}
}

// nilAsEmpty lets reflect-free set comparison treat nil and the empty
// slice as the same answer.
func eqIDs(a, b []int) bool {
	return slices.Equal(a, b) || (len(a) == 0 && len(b) == 0)
}

// TestFlatParityShards is the flat-kernel contract: for every dataset
// kind with a SoA mirror and every shard count (0 = monolithic), the
// NN≠0 answer through the appending fast path is identical to the AoS
// brute oracle — including through a non-empty destination prefix,
// which must be preserved untouched.
func TestFlatParityShards(t *testing.T) {
	for _, tc := range flatParityCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x7e57))
			qs := randQueries(rng, 64, tc.side)
			for _, k := range []int{0, 1, 2, 4, 7} {
				var ix Index
				var err error
				if k == 0 {
					ix, err = Build(tc.backend, tc.ds, BuildOptions{})
				} else {
					ix, err = BuildSharded(tc.backend, tc.ds, BuildOptions{}, ShardOptions{Shards: k})
				}
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				prefix := []int{-7, 99}
				for _, q := range qs {
					want := tc.oracle(q)
					got, err := ix.QueryNonzero(q)
					if err != nil {
						t.Fatalf("k=%d: %v", k, err)
					}
					if !eqIDs(want, got) {
						t.Fatalf("k=%d q=%v: nonzero %v, want %v", k, q, got, want)
					}
					app, err := appendNonzeroOf(ix, q, slices.Clone(prefix))
					if err != nil {
						t.Fatalf("k=%d: append: %v", k, err)
					}
					if !slices.Equal(app[:2], prefix) {
						t.Fatalf("k=%d q=%v: prefix clobbered: %v", k, q, app[:2])
					}
					if !eqIDs(want, app[2:]) {
						t.Fatalf("k=%d q=%v: appended %v, want %v", k, q, app[2:], want)
					}
				}
			}
		})
	}
}

// TestBatchNonzeroScratchRace drives concurrent batch queries through
// the shared scratch pools (kernel.Scratch, planScratch) and checks the
// answers stay deterministic; under -race this is the data-race probe
// for the pooled hot path.
func TestBatchNonzeroScratchRace(t *testing.T) {
	rng := rand.New(rand.NewSource(0xace))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 60, 3, 40, 1.0, 1))
	sx, err := BuildSharded(BackendBrute, ds, BuildOptions{}, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := randQueries(rng, 256, 40)
	eng := NewEngine(sx, Options{Workers: 8})
	want, err := NewEngine(sx, Options{Workers: 1}).BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		got, err := eng.BatchNonzero(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: concurrent batch diverges from sequential", round)
		}
	}
}

// TestZeroAllocQueryPath: with caching off, a steady-state
// QueryNonzeroInto performs no heap allocation — the tentpole's 0
// allocs/op acceptance. sync.Pool contents may be dropped by a GC
// mid-measurement, so one retry is allowed before failing.
func TestZeroAllocQueryPath(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa110c))
	cases := []struct {
		name    string
		backend Backend
		ds      *Dataset
		shards  int
	}{
		{"brute/disks/mono", BackendBrute, FromDisks(constructions.RandomDisks(rng, 64, 30, 0.5, 2.0)), 0},
		{"brute/discrete/k4", BackendBrute, FromDiscrete(constructions.RandomDiscrete(rng, 64, 3, 30, 1.0, 1)), 4},
		{"twostage-disks/mono", BackendTwoStageDisks, FromDisks(constructions.RandomDisks(rng, 64, 30, 0.5, 2.0)), 0},
		{"twostage-linf/k2", BackendTwoStageLinf, FromSquares(randSquares(rng, 64, 30)), 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var ix Index
			var err error
			if tc.shards == 0 {
				ix, err = Build(tc.backend, tc.ds, BuildOptions{})
			} else {
				ix, err = BuildSharded(tc.backend, tc.ds, BuildOptions{}, ShardOptions{Shards: tc.shards})
			}
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(ix, Options{Workers: 1})
			qs := randQueries(rng, 16, 30)
			var dst []int
			for _, q := range qs { // warm pools and the dst high-water mark
				dst, err = eng.QueryNonzeroInto(q, dst[:0])
				if err != nil {
					t.Fatal(err)
				}
			}
			var allocs float64
			for attempt := 0; attempt < 2; attempt++ {
				allocs = testing.AllocsPerRun(200, func() {
					for _, q := range qs {
						dst, _ = eng.QueryNonzeroInto(q, dst[:0])
					}
				})
				if allocs == 0 {
					return
				}
			}
			t.Fatalf("QueryNonzeroInto allocs/run = %v, want 0", allocs)
		})
	}
}

// TestCellIdentityCacheKeys is the regression for the diagram cache
// keys: entries are keyed by the exact located cell, so (a) two
// distinct same-cell query points share one entry, and (b) even a
// pathologically coarse grid quantum can never alias answers across a
// cell boundary — every cached answer still matches the brute oracle.
func TestCellIdentityCacheKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(0xce11))
	disks := constructions.RandomDisks(rng, 12, 20, 0.5, 1.5)
	ds := FromDisks(disks)
	ix, err := Build(BackendDiagram, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A quantum the size of the whole scene: grid keys would collapse
	// every query to one cache cell, serving wrong answers. Cell identity
	// must keep them apart.
	eng := NewEngine(ix, Options{Workers: 1, CacheSize: 1024, CacheQuantum: 1000})
	di, ok := eng.cells.(*diagramIndex)
	if !ok {
		t.Fatalf("diagram engine did not resolve a cell identifier (got %T)", eng.cells)
	}
	for _, q := range randQueries(rng, 128, 20) {
		got, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := nonzero.BruteDisks(disks, q); !eqIDs(want, got) {
			t.Fatalf("q=%v: cached answer %v, want %v (cross-cell aliasing?)", q, got, want)
		}
	}

	// Same-cell sharing: find two distinct points the locator puts in one
	// cell and check the second is a cache hit.
	var q1, q2 geom.Point
	found := false
	for tries := 0; tries < 1000 && !found; tries++ {
		q1 = geom.Pt(rng.Float64()*20, rng.Float64()*20)
		q2 = geom.Pt(q1.X+1e-7, q1.Y+1e-7)
		id1, ok1 := di.cellID(q1)
		id2, ok2 := di.cellID(q2)
		found = ok1 && ok2 && id1 == id2
	}
	if !found {
		t.Fatal("no same-cell query pair found")
	}
	if _, err := eng.QueryNonzero(q1); err != nil {
		t.Fatal(err)
	}
	hits0, _ := eng.CacheStats()
	if _, err := eng.QueryNonzero(q2); err != nil {
		t.Fatal(err)
	}
	if hits1, _ := eng.CacheStats(); hits1 != hits0+1 {
		t.Fatalf("same-cell query was not a cache hit (hits %d → %d)", hits0, hits1)
	}

	// Across a cell boundary the ids differ, so the entries must too:
	// the second query of a cross-cell pair is a miss, never a hit.
	found = false
	for tries := 0; tries < 1000 && !found; tries++ {
		q1 = geom.Pt(rng.Float64()*20, rng.Float64()*20)
		q2 = geom.Pt(q1.X+1e-3, q1.Y)
		id1, ok1 := di.cellID(q1)
		id2, ok2 := di.cellID(q2)
		found = ok1 && ok2 && id1 != id2
	}
	if !found {
		t.Fatal("no cross-cell query pair found")
	}
	if _, err := eng.QueryNonzero(q1); err != nil {
		t.Fatal(err)
	}
	_, misses0 := eng.CacheStats()
	if _, err := eng.QueryNonzero(q2); err != nil {
		t.Fatal(err)
	}
	if _, misses1 := eng.CacheStats(); misses1 != misses0+1 {
		t.Fatalf("cross-cell query did not miss (misses %d → %d)", misses0, misses1)
	}
}
