// The cost-based query planner: given a dataset and an expected
// workload, pick the cheapest capable backend *per query kind* — a
// composite assignment rather than the old three-case rule. The paper's
// complexity separations drive the choice: the Theorem 3.1/3.2 two-stage
// structures answer NN≠0 in O(log n + k) where the Lemma 2.1 oracle pays
// O(n); the Theorem 4.7 spiral search quantifies in polylog time where
// the exact Eq. (2) sweep pays Õ(n²); the [AESZ12] centroid index
// answers E[d] in O(log n) where the brute scan pays O(n). The planner
// materializes that separation as a plannedIndex — one built instance
// per distinct chosen backend — and exposes the decision (with its cost
// estimates) through Plan.Explain.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"unn/internal/geom"
	"unn/internal/quantify"
)

// Workload is the expected query mix the planner optimizes for: relative
// weights per query kind (they need not sum to 1; only ratios matter).
// The zero value means "uniform over the kinds this dataset supports".
type Workload struct {
	Nonzero  float64
	Probs    float64
	Expected float64
	TopK     float64
}

func (w Workload) weight(kind Capability) float64 {
	switch kind {
	case CapNonzero:
		return w.Nonzero
	case CapProbs:
		return w.Probs
	case CapTopK:
		return w.TopK
	default:
		return w.Expected
	}
}

func (w Workload) isZero() bool {
	return w.Nonzero == 0 && w.Probs == 0 && w.Expected == 0 && w.TopK == 0
}

// PlannerOptions tunes the cost-based planner.
type PlannerOptions struct {
	// Mix is the expected workload; the zero value weighs every supported
	// kind equally.
	Mix Workload
	// Horizon is the number of queries the build cost amortizes over.
	// Default 4096: short-lived handles keep cheap builds, long-lived ones
	// buy the fast structures.
	Horizon float64
	// Calibration supplies measured coefficients (e.g. LoadCalibration of
	// a persisted BENCH_engine.json). When nil, a Build-time micro-probe
	// calibrates the candidates on a small sample; set NoProbe to skip
	// that and run on the seeded defaults.
	Calibration Calibration
	// NoProbe disables the Build-time micro-probe.
	NoProbe bool
	// RandomPenalty multiplies the estimated query cost of randomized
	// approximating backends (Monte Carlo) when a deterministic
	// alternative exists — the variance of an estimate is a cost too.
	// Default 2; 1 disables the penalty.
	RandomPenalty float64
}

func (o PlannerOptions) withDefaults() PlannerOptions {
	if o.Horizon <= 0 {
		o.Horizon = 4096
	}
	if o.RandomPenalty <= 0 {
		o.RandomPenalty = 2
	}
	return o
}

// Choice is the planner's decision for one query kind.
type Choice struct {
	Backend Backend
	// QueryNs is the estimated per-query cost at the dataset size.
	QueryNs float64
	// BuildNs is the estimated build cost of the backend (shared between
	// kinds assigned to the same backend).
	BuildNs float64
	// RunnerUp names another capable backend (empty when the choice was
	// forced) and its estimated per-query cost, for Explain — the winner
	// won on *total* cost over the horizon, so the runner-up's per-query
	// estimate may be lower when its build cost priced it out.
	RunnerUp   Backend
	RunnerUpNs float64
}

// Plan is a per-query-kind backend assignment with its cost estimates.
type Plan struct {
	N       int
	Mix     Workload
	Horizon float64
	// Choices maps each supported query kind to its decision; kinds no
	// backend can answer on this dataset are absent.
	Choices map[Capability]Choice
	// Probed reports whether a Build-time micro-probe calibrated the
	// model (vs a supplied table or the seeded defaults).
	Probed bool
}

// Capabilities returns the union of planned kinds.
func (p *Plan) Capabilities() Capability {
	var c Capability
	for kind := range p.Choices {
		c |= kind
	}
	return c
}

// Explain renders the assignment, its cost estimates, and the beaten
// alternatives — one line per query kind.
func (p *Plan) Explain() string {
	var sb strings.Builder
	// The topk share only renders when set, so plans (and snapshots) of
	// three-kind workloads keep their exact historical header.
	topk := ""
	if p.Mix.TopK != 0 {
		topk = fmt.Sprintf(" topk=%.2f", p.Mix.TopK)
	}
	fmt.Fprintf(&sb, "plan: n=%d, horizon %.0f queries (mix nonzero=%.2f probs=%.2f expected=%.2f%s), calibration=%s\n",
		p.N, p.Horizon, p.Mix.Nonzero, p.Mix.Probs, p.Mix.Expected, topk, p.calibrationName())
	for _, kind := range queryKinds() {
		ch, ok := p.Choices[kind]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  %-8s → %-18s est query %s, build %s",
			kind, ch.Backend, fmtNs(ch.QueryNs), fmtNs(ch.BuildNs))
		if ch.RunnerUp != "" {
			fmt.Fprintf(&sb, " (over %s at %s/query)", ch.RunnerUp, fmtNs(ch.RunnerUpNs))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (p *Plan) calibrationName() string {
	if p.Probed {
		return "micro-probe"
	}
	return "table"
}

// fmtNs renders a nanosecond estimate at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

// planCandidates lists the backends able to answer kind on ds, cheapest
// estimated query first (ties broken by registry order for determinism).
// BackendTwoStageL1 is deliberately no candidate: squares under L1 are a
// different metric semantics (diamonds), not an alternative
// implementation of the L∞ answer, so the planner never silently swaps
// metrics.
func planCandidates(ds *Dataset, kind Capability, model *CostModel, popt PlannerOptions) []Choice {
	n := ds.N()
	var out []Choice
	for _, b := range Backends() {
		if b == BackendTwoStageL1 || !datasetCaps(b, ds).Has(kind) {
			continue
		}
		q := model.QueryCost(b, kind, n)
		if b == BackendMonteCarlo {
			q *= popt.RandomPenalty
		}
		out = append(out, Choice{Backend: b, QueryNs: q, BuildNs: model.BuildCost(b, n)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].QueryNs < out[j].QueryNs })
	return out
}

// planFor composes the per-kind assignment minimizing total estimated
// cost over the horizon: Σ build(b) over distinct chosen backends +
// Σ_kind weight·horizon·query(kind, b_kind). With at most three kinds
// the assignment space is enumerated exactly, so shared builds (one
// backend serving two kinds) are priced correctly.
func planFor(ds *Dataset, model *CostModel, popt PlannerOptions) *Plan {
	popt = popt.withDefaults()
	// Top-k joins the exhaustive walk only when the workload weighs it:
	// with weight 0 it cannot shift the assignment (it would add zero
	// query cost and its backends are already candidates for probs), but
	// a zero-weight fourth kind in the uniform default would dilute the
	// three legacy shares and could flip near-threshold choices — so
	// unweighted top-k instead rides the probs assignment after the walk
	// (see the ride-along below), keeping three-kind plans bit-identical.
	kinds := []Capability{CapNonzero, CapProbs, CapExpected}
	if popt.Mix.TopK > 0 {
		kinds = append(kinds, CapTopK)
	}
	cands := map[Capability][]Choice{}
	var supported []Capability
	for _, kind := range kinds {
		if cs := planCandidates(ds, kind, model, popt); len(cs) > 0 {
			cands[kind] = cs
			supported = append(supported, kind)
		}
	}
	mix := popt.Mix
	if mix.isZero() {
		for _, kind := range supported {
			switch kind {
			case CapNonzero:
				mix.Nonzero = 1
			case CapProbs:
				mix.Probs = 1
			case CapExpected:
				mix.Expected = 1
			}
		}
	}
	wsum := 0.0
	for _, kind := range supported {
		wsum += mix.weight(kind)
	}
	if wsum <= 0 {
		wsum = 1
	}

	plan := &Plan{N: ds.N(), Mix: mix, Horizon: popt.Horizon, Choices: map[Capability]Choice{}}
	// Exhaustive assignment enumeration (≤ |cands|³ combinations).
	best := -1.0
	var bestPick map[Capability]int
	pick := map[Capability]int{}
	var walk func(i int, acc float64)
	walk = func(i int, acc float64) {
		if best >= 0 && acc >= best {
			return // partial cost only grows
		}
		if i == len(supported) {
			builds := map[Backend]float64{}
			total := acc
			for _, kind := range supported {
				ch := cands[kind][pick[kind]]
				builds[ch.Backend] = ch.BuildNs
			}
			for _, b := range builds {
				total += b
			}
			if best < 0 || total < best {
				best = total
				bestPick = map[Capability]int{}
				for k, v := range pick {
					bestPick[k] = v
				}
			}
			return
		}
		kind := supported[i]
		w := mix.weight(kind) / wsum * popt.Horizon
		for ci, ch := range cands[kind] {
			pick[kind] = ci
			walk(i+1, acc+w*ch.QueryNs)
		}
		delete(pick, kind)
	}
	walk(0, 0)
	for _, kind := range supported {
		cs := cands[kind]
		ch := cs[bestPick[kind]]
		for _, alt := range cs {
			if alt.Backend != ch.Backend {
				ch.RunnerUp, ch.RunnerUpNs = alt.Backend, alt.QueryNs
				break
			}
		}
		plan.Choices[kind] = ch
	}
	// Ride-along: an unweighted top-k kind is served by the probs
	// backend (every topk-capable backend is π-capable, so the part is
	// already built — zero extra build cost, and the walk above stays
	// identical to the three-kind planner).
	if _, done := plan.Choices[CapTopK]; !done {
		if chProbs, ok := plan.Choices[CapProbs]; ok && datasetCaps(chProbs.Backend, ds).Has(CapTopK) {
			q := model.QueryCost(chProbs.Backend, CapTopK, ds.N())
			if chProbs.Backend == BackendMonteCarlo {
				q *= popt.RandomPenalty
			}
			ch := Choice{Backend: chProbs.Backend, QueryNs: q, BuildNs: chProbs.BuildNs}
			for _, alt := range planCandidates(ds, CapTopK, model, popt) {
				if alt.Backend != ch.Backend {
					ch.RunnerUp, ch.RunnerUpNs = alt.Backend, alt.QueryNs
					break
				}
			}
			plan.Choices[CapTopK] = ch
		}
	}
	return plan
}

// PlanDataset computes the cost-based plan for ds without building
// anything — the dry-run entry point (BuildPlanned both plans and
// builds).
func PlanDataset(ds *Dataset, bopt BuildOptions, popt PlannerOptions) *Plan {
	model, probed := plannerModel(ds, bopt, popt)
	plan := planFor(ds, model, popt)
	plan.Probed = probed
	return plan
}

// plannerModel assembles the cost model: supplied calibration table,
// else micro-probe, else seeded defaults.
func plannerModel(ds *Dataset, bopt BuildOptions, popt PlannerOptions) (*CostModel, bool) {
	if popt.Calibration != nil {
		return NewCostModel(popt.Calibration), false
	}
	if popt.NoProbe {
		return NewCostModel(nil), false
	}
	return NewCostModel(Calibrate(ds, bopt, Backends())), true
}

// plannedIndex is the planner's composite: one built instance per
// distinct chosen backend, each query kind delegated to its assigned
// part. It implements Index, so it shards, batches, serves and caches
// exactly like a monolithic backend.
type plannedIndex struct {
	plan      *Plan
	buildOpts BuildOptions
	byKind    map[Capability]Index
	caps      Capability
	hint      float64
	n         int
	ds        *Dataset // retained for snapshot export
}

func (px *plannedIndex) Name() string {
	var parts []string
	for _, kind := range queryKinds() {
		if ch, ok := px.plan.Choices[kind]; ok {
			parts = append(parts, fmt.Sprintf("%s=%s", kind, ch.Backend))
		}
	}
	return "planned(" + strings.Join(parts, ",") + ")"
}

func (px *plannedIndex) Capabilities() Capability { return px.caps }

// Len returns the dataset size (feeds Engine.ObserveInto).
func (px *plannedIndex) Len() int { return px.n }

// Plan returns the decision behind the composite.
func (px *plannedIndex) Plan() *Plan { return px.plan }

// Explain implements the optional explainer the Engine surfaces.
func (px *plannedIndex) Explain() string { return px.plan.Explain() }

// QuantumHint implements the adaptive cache-quantum hint: the finest
// hint among the parts (the diagram backend reports real cell extents),
// falling back to the dataset-spacing estimate.
func (px *plannedIndex) QuantumHint() float64 { return px.hint }

// kindBackend reports which backend serves kind (Engine.ObserveInto).
func (px *plannedIndex) kindBackend(kind Capability) (Backend, bool) {
	ch, ok := px.plan.Choices[kind]
	return ch.Backend, ok
}

func (px *plannedIndex) Build(ds *Dataset) error {
	parts := map[Backend]Index{}
	px.byKind = map[Capability]Index{}
	px.caps = 0
	px.n = ds.N()
	px.ds = ds
	for kind, ch := range px.plan.Choices {
		ix, ok := parts[ch.Backend]
		if !ok {
			var err error
			ix, err = Build(ch.Backend, ds, px.buildOpts)
			if err != nil {
				return fmt.Errorf("planned %s: %w", ch.Backend, err)
			}
			parts[ch.Backend] = ix
		}
		if !ix.Capabilities().Has(kind) {
			return fmt.Errorf("planned %s: built index lost %s on this dataset", ch.Backend, kind)
		}
		px.byKind[kind] = ix
		px.caps |= kind
	}
	px.hint = autoQuantum(ds)
	for _, ix := range parts {
		if h, ok := ix.(quantumHinter); ok {
			if q := h.QuantumHint(); q > 0 && (px.hint <= 0 || q < px.hint) {
				px.hint = q
			}
		}
	}
	return nil
}

func (px *plannedIndex) QueryNonzero(q geom.Point) ([]int, error) {
	if ix, ok := px.byKind[CapNonzero]; ok {
		return ix.QueryNonzero(q)
	}
	return nil, ErrUnsupported
}

// batchTiledNonzero / batchTiledExpected delegate the tiled batch
// contract to the kind's planned part (unwrapping is unnecessary: parts
// are raw backends). A part without the contract requests scalar
// fallback.
func (px *plannedIndex) batchTiledNonzero(qs []geom.Point, tile, workers int, sink nonzeroSink) (int, int, error) {
	if ix, ok := px.byKind[CapNonzero]; ok {
		if tb, ok := ix.(tiledNonzeroBatcher); ok {
			return tb.batchTiledNonzero(qs, tile, workers, sink)
		}
	}
	return 0, 0, errUntileable
}

func (px *plannedIndex) batchTiledExpected(qs []geom.Point, tile, workers int, sink expectedSink) (int, int, error) {
	if ix, ok := px.byKind[CapExpected]; ok {
		if tb, ok := ix.(tiledExpectedBatcher); ok {
			return tb.batchTiledExpected(qs, tile, workers, sink)
		}
	}
	return 0, 0, errUntileable
}

func (px *plannedIndex) QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error) {
	if ix, ok := px.byKind[CapProbs]; ok {
		return ix.QueryProbs(q, eps)
	}
	return nil, ErrUnsupported
}

func (px *plannedIndex) QueryExpected(q geom.Point) (int, float64, error) {
	if ix, ok := px.byKind[CapExpected]; ok {
		return ix.QueryExpected(q)
	}
	return -1, 0, ErrUnsupported
}

func (px *plannedIndex) QueryTopK(q geom.Point, k int, eps float64) ([]quantify.Prob, error) {
	if ix, ok := px.byKind[CapTopK]; ok {
		return queryTopKOf(ix, q, k, eps)
	}
	return nil, ErrUnsupported
}

// BuildPlanned builds the cost-based composite for ds: the planner picks
// a backend per query kind and the result answers every kind some
// backend could answer — the cost-optimal counterpart of BuildAuto's
// rule-based choice. With sopt.Shards ≥ 1 the dataset is sharded and
// *each shard re-plans at its own size* (a small shard may keep the
// cheap-to-build oracle while a large one buys the two-stage structure),
// replacing the old hardcoded small→brute / large→two-stage rule. The
// calibration (probe or table) runs once and is shared by all shards.
func BuildPlanned(ds *Dataset, bopt BuildOptions, sopt ShardOptions, popt PlannerOptions) (Index, *Plan, error) {
	popt = popt.withDefaults()
	bopt = bopt.withDefaults()
	model, probed := plannerModel(ds, bopt, popt)
	plan := planFor(ds, model, popt)
	plan.Probed = probed
	if len(plan.Choices) == 0 {
		return nil, nil, fmt.Errorf("engine: build planned: no backend can serve this dataset")
	}
	factory := func(sub *Dataset) (Index, error) {
		p := planFor(sub, model, popt)
		p.Probed = probed
		px := &plannedIndex{plan: p, buildOpts: bopt}
		if err := px.Build(sub); err != nil {
			return nil, err
		}
		return px, nil
	}
	if sopt.Shards <= 0 {
		ix, err := factory(ds)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: build planned: %w", err)
		}
		return ix, plan, nil
	}
	sx := newShardedFunc("planned", factory, bopt, sopt)
	if ds.Squares != nil {
		sx.metric = metricLinf
	}
	sx.planNote = plan.Explain()
	sx.model = model // prices the insert-buffer flush threshold (mutlog.go)
	sx.popt = &popt
	sx.probed = probed
	if err := sx.Build(ds); err != nil {
		return nil, nil, fmt.Errorf("engine: build planned: %w", err)
	}
	return sx, plan, nil
}
