// Mutation batching: the epoch-coalesced mutation path of the dynamic
// shard layer, plus the log-structured insert buffer.
//
// The per-item path (dynamic.go) rebuilds the owning shard's backend on
// every Insert/Delete, so a burst of m mutations landing in one shard
// pays m full rebuilds where one would do — exactly the sustained
// update traffic the moving/streaming-data setting presumes.
// BatchMutate closes that gap: a whole burst applies under one write
// lock with sequential semantics (each delete index is interpreted
// against the state left by the mutations before it, exactly as if the
// ops ran one at a time), the dataset views and the global id remap are
// updated per item, but each *touched* shard's backend rebuilds once at
// the end of the batch — one epoch — and the rebalancer (retarget,
// split, merge) runs once over the touched shards instead of once per
// item.
//
// The insert buffer (ShardOptions.InsertBuffer) defers even that: new
// items append to a small delta shard that is queried alongside the
// main shards through the ordinary merge planner — NN≠0 merges exactly
// under the global Lemma 2.1 filter, π through the cross-shard
// renormalization, E[d] through the min-reduce — so correctness is the
// planner's existing contract, not a special case. The buffer's backend
// is rebuilt on each insert, but the buffer is small (its size is
// bounded by the flush threshold), so that rebuild is the cheap,
// log-structured append. When the buffer crosses the threshold it
// flushes: its members route to their owning main shards, which rebuild
// once — one shard rebuild amortized over a threshold's worth of
// inserts. The threshold itself falls out of the cost model (cost.go):
// the flush cost C_f ≈ BuildCost(backend, target) amortizes as C_f/F
// per insert while every query pays ~c_q·F/2 extra for scanning the
// buffer, so the minimizer of C_f/F + c_q·F/2 is F* = sqrt(2·C_f/c_q)
// (assuming about one query per mutation; ShardOptions.FlushThreshold
// overrides the choice).
package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"unn/internal/geom"
	"unn/internal/kernel"
	"unn/internal/uncertain"
)

// Mutation is one entry of a BatchMutate burst: Op is OpInsert or
// OpDelete, with the matching payload field set. Delete indices use
// sequential semantics — each is interpreted against the dataset state
// left by the mutations before it in the batch, exactly as if the batch
// ran one mutation at a time.
type Mutation struct {
	Op   Capability // OpInsert or OpDelete
	Item Item       // OpInsert payload
	Del  int        // OpDelete target index
}

// InsertMutation builds an OpInsert batch entry.
func InsertMutation(it Item) Mutation { return Mutation{Op: OpInsert, Item: it} }

// DeleteMutation builds an OpDelete batch entry.
func DeleteMutation(i int) Mutation { return Mutation{Op: OpDelete, Del: i} }

// BatchMutable is the batched-mutation contract: ShardedIndex
// implements it on top of Mutable. BatchMutate applies the burst under
// one write lock and rebuilds each touched shard once — one epoch bump
// for the whole batch. The returned slice has one entry per mutation:
// the assigned global index for an insert, the live item count right
// after the op for a delete. Validation is atomic: an invalid entry
// (wrong payload kind, out-of-range delete, deleting the last item)
// rejects the whole batch before anything is applied.
type BatchMutable interface {
	Mutable
	BatchMutate([]Mutation) ([]int, error)
}

// BatchMutate implements BatchMutable.
func (sx *ShardedIndex) BatchMutate(ms []Mutation) ([]int, error) {
	sx.mu.Lock()
	defer sx.mu.Unlock()
	if sx.ds == nil {
		return nil, fmt.Errorf("sharded(%s): mutation before Build", sx.name)
	}
	if sx.broken != nil {
		return nil, sx.broken
	}
	if len(ms) == 0 {
		return nil, nil
	}
	// Atomic validation against the virtual size: the batch is simulated
	// index-wise before anything mutates, so a bad entry leaves the index
	// (and its epoch) untouched.
	vn := sx.n
	for mi, m := range ms {
		switch m.Op {
		case OpInsert:
			if err := sx.checkItem(m.Item); err != nil {
				return nil, fmt.Errorf("batch mutation %d: %w", mi, err)
			}
			vn++
		case OpDelete:
			if m.Del < 0 || m.Del >= vn {
				return nil, fmt.Errorf("sharded(%s): batch mutation %d: Delete(%d) out of range [0,%d)", sx.name, mi, m.Del, vn)
			}
			if vn == 1 {
				return nil, fmt.Errorf("sharded(%s): batch mutation %d: cannot delete the last item", sx.name, mi)
			}
			vn--
		default:
			return nil, fmt.Errorf("sharded(%s): batch mutation %d: Op %v is not OpInsert or OpDelete", sx.name, mi, m.Op)
		}
	}
	sx.ensureOwned()

	// Each delete splices the SoA mirror in O(n); a delete-heavy burst
	// would pay that per op where one re-derivation at the end of the
	// epoch (finishEpoch) costs a single O(n) refill into the same
	// slices. Break-even sits at a handful of deletes — past it, mark
	// the mirror stale so the per-op maintenance skips.
	const rebuildMirrorDeletes = 4
	if sx.flat != nil {
		dels := 0
		for _, m := range ms {
			if m.Op == OpDelete {
				dels++
			}
		}
		if dels >= rebuildMirrorDeletes {
			sx.flatStale = true
		}
	}

	dirty := make(map[*shard]bool)
	shrunk := make(map[*shard]bool)
	res := make([]int, len(ms))
	for mi, m := range ms {
		if m.Op == OpInsert {
			res[mi] = sx.applyInsert(m.Item, dirty)
		} else {
			if err := sx.applyDelete(m.Del, dirty, shrunk); err != nil {
				return nil, sx.poison(err)
			}
			res[mi] = sx.n
		}
	}
	if err := sx.finishEpoch(dirty, shrunk); err != nil {
		return nil, sx.poison(err)
	}
	return res, nil
}

// applyInsert appends the (already validated) item to the dataset views
// at global index n and assigns it to a shard — the insert buffer when
// enabled, otherwise the nearest main shard by centroid — without
// rebuilding anything; finishEpoch rebuilds the touched shards once.
func (sx *ShardedIndex) applyInsert(it Item, dirty map[*shard]bool) int {
	gi := sx.n
	if sx.ds.Squares != nil {
		sx.ds.Squares = append(sx.ds.Squares, *it.Square)
	} else {
		sx.ds.Points = append(sx.ds.Points, it.Point)
		if sx.ds.Discrete != nil {
			sx.ds.Discrete = append(sx.ds.Discrete, it.Point.(*uncertain.Discrete))
		}
		if sx.ds.Disks != nil {
			d, _ := diskOf(it.Point)
			sx.ds.Disks = append(sx.ds.Disks, d)
		}
	}
	sx.n++
	sx.flatInsertRow(gi)
	if sx.buf != nil {
		sx.bufInserts++
		sx.buf.ids = append(sx.buf.ids, gi)
		sx.buf.bbox = sx.buf.bbox.Union(itemBounds(sx.ds, gi))
		dirty[sx.buf] = true
		return gi
	}
	s := sx.shardForInsert(gi)
	s.ids = append(s.ids, gi) // gi is the maximum id: stays ascending
	s.bbox = s.bbox.Union(itemBounds(sx.ds, gi))
	dirty[s] = true
	return gi
}

// shardForInsert resolves the owning main shard for the new item gi:
// the routeShard choice, or — in the degenerate state where every main
// shard is empty (all live items sit in the insert buffer, or the shard
// list was drained) — a fresh shard, so the insert lands somewhere
// instead of panicking on shards[-1].
func (sx *ShardedIndex) shardForInsert(gi int) *shard {
	if si := sx.routeShard(centroid(sx.ds, gi)); si >= 0 {
		return sx.shards[si]
	}
	s := &shard{bbox: geom.EmptyRect()}
	sx.shards = append(sx.shards, s)
	return s
}

// applyDelete removes global item i from the views and every shard's id
// list (the dense remap: ids above i shift down by one, in the main
// shards and the insert buffer alike) without rebuilding; the owning
// shard is marked dirty for finishEpoch, and shrunk because its
// bounding box may have tightened (inserts only grow boxes, so only
// delete-touched shards pay the bounds recompute).
func (sx *ShardedIndex) applyDelete(i int, dirty, shrunk map[*shard]bool) error {
	var owner *shard
	remap := func(s *shard) {
		pos := sort.SearchInts(s.ids, i)
		if pos < len(s.ids) && s.ids[pos] == i {
			owner = s
			s.ids = append(s.ids[:pos], s.ids[pos+1:]...)
		}
		for j := sort.SearchInts(s.ids, i); j < len(s.ids); j++ {
			s.ids[j]--
		}
	}
	for _, s := range sx.shards {
		remap(s)
	}
	if sx.buf != nil {
		remap(sx.buf)
	}
	if owner == nil {
		return fmt.Errorf("id remap lost item %d", i)
	}
	if sx.ds.Squares != nil {
		sx.ds.Squares = append(sx.ds.Squares[:i], sx.ds.Squares[i+1:]...)
	} else {
		sx.ds.Points = append(sx.ds.Points[:i], sx.ds.Points[i+1:]...)
		if sx.ds.Discrete != nil {
			sx.ds.Discrete = append(sx.ds.Discrete[:i], sx.ds.Discrete[i+1:]...)
		}
		if sx.ds.Disks != nil {
			sx.ds.Disks = append(sx.ds.Disks[:i], sx.ds.Disks[i+1:]...)
		}
	}
	sx.n--
	if f := sx.flat; f != nil && !sx.flatStale {
		if f.N == sx.n+1 {
			f.DeleteRow(i)
		} else {
			// Mirror out of step with the views (only possible when the
			// dataset was swapped out from under the index): re-derive it.
			sx.flat = flatForDataset(sx.ds, sx.metric)
		}
	}
	dirty[owner] = true
	shrunk[owner] = true
	return nil
}

// flatInsertRow mirrors the freshly appended dataset row gi into the
// SoA mirror, following flatForDataset's family precedence (the mirror
// keeps exactly one layout even when a dataset carries several views).
// Keeping the mirror in step per-op costs O(k) on insert and the same
// O(n) splice the views already pay on delete — where a full
// flatForDataset rebuild per epoch would put an O(n) copy on every
// mutation, tripling the streaming-mutation cost at E18 scale. When the
// mirror disagrees with the views (a swapped-out dataset), it is
// re-derived instead of extended.
func (sx *ShardedIndex) flatInsertRow(gi int) {
	f := sx.flat
	if f == nil || sx.flatStale {
		return
	}
	ok := f.N == gi
	if ok {
		switch f.Kind {
		case kernel.KindSquares:
			if ok = len(sx.ds.Squares) > gi; ok {
				s := sx.ds.Squares[gi]
				f.AppendRegionRow(s.C.X, s.C.Y, s.R)
			}
		case kernel.KindDiscrete:
			if ok = len(sx.ds.Discrete) > gi; ok {
				p := sx.ds.Discrete[gi]
				f.AppendDiscreteRow(p.Locs, p.W)
			}
		default:
			if ok = len(sx.ds.Disks) > gi; ok {
				d := sx.ds.Disks[gi]
				f.AppendRegionRow(d.C.X, d.C.Y, d.R)
			}
		}
	}
	if !ok {
		sx.flat = flatForDataset(sx.ds, sx.metric)
	}
}

// finishEpoch closes one mutation epoch (a single op or a whole batch):
// flush the insert buffer if it crossed the threshold, drop emptied
// shards, re-derive the touched bounding boxes, re-track the size
// target, rebalance the touched shards (merge underfull, split
// oversized — split/merge build their replacement backends themselves,
// so a shard that rebalances is never built twice), rebuild whatever
// touched shards remain, and bump the epoch once.
func (sx *ShardedIndex) finishEpoch(dirty, shrunk map[*shard]bool) error {
	if sx.buf != nil && len(sx.buf.ids) >= sx.flushThreshold() {
		sx.flushBuffer(dirty)
	}
	for si := 0; si < len(sx.shards); si++ {
		s := sx.shards[si]
		if len(s.ids) == 0 {
			s.sub, s.ix = nil, nil
			delete(dirty, s)
			sx.shards = append(sx.shards[:si], sx.shards[si+1:]...)
			si--
		}
	}
	// Boxes only grow under Union, so delete-touched shards need the
	// full recompute before the rebalancer reads them (insert-only
	// shards had their unions applied in place).
	for s := range shrunk {
		if dirty[s] {
			sx.refreshBounds(s)
		}
	}
	targetShrunk := sx.retarget()

	// Merge: only touched shards can have fallen below the threshold
	// this epoch (matching the per-item path, which judges the mutated
	// shard only). The loop terminates because mergeShard always removes
	// the dirty victim (and never re-dirties a shard), so the set of
	// dirty-underfull candidates strictly shrinks — the shard list
	// itself may grow when an overshooting union re-splits.
	for len(sx.shards) > 1 {
		victim := -1
		for si, s := range sx.shards {
			if dirty[s] && len(s.ids) < (sx.target+1)/2 {
				victim = si
				break
			}
		}
		if victim < 0 {
			break
		}
		if err := sx.mergeShard(victim, dirty); err != nil {
			return err
		}
	}
	// Split: touched shards over 2×target (recursively — a buffer flush
	// can overshoot by several halvings, and BOTH halves of a split may
	// still exceed the bound), plus the global sweep when the tracked
	// target shrank.
	for si := 0; si < len(sx.shards); si++ {
		if !dirty[sx.shards[si]] {
			continue
		}
		if err := sx.splitUntilBounded(si, dirty); err != nil {
			return err
		}
	}
	if targetShrunk {
		if err := sx.splitOversized(); err != nil {
			return err
		}
	}
	if err := sx.rebuildDirty(dirty); err != nil {
		return err
	}
	// The SoA mirror normally needs no refresh here:
	// flatInsertRow/applyDelete keep it in step row-by-row, and
	// rebalancing only regroups shard id lists — the mirror is indexed by
	// global id, which rebalancing never changes. It is re-derived only
	// when a delete-heavy batch marked it stale (BatchMutate) in favor of
	// one O(n) refill — into the stale mirror's own slices — per epoch.
	if sx.flatStale {
		sx.flat = flatForDatasetInto(sx.flat, sx.ds, sx.metric)
		sx.flatStale = false
	}
	sx.epoch++
	sx.recomputeCaps()
	return nil
}

// splitUntilBounded restores the ≤ 2×target size bound at position si:
// splitShard halves the shard, but when the overshoot exceeds 4×target
// (a large buffer flush into one hot shard) each half may still break
// the bound, so both replacement halves recurse until every piece fits.
// The right half (si+1) goes first — its splits insert behind it and
// never shift position si.
func (sx *ShardedIndex) splitUntilBounded(si int, dirty map[*shard]bool) error {
	s := sx.shards[si]
	if len(s.ids) <= 2*sx.target {
		return nil
	}
	if err := sx.splitShard(si); err != nil {
		return err
	}
	delete(dirty, s)
	if err := sx.splitUntilBounded(si+1, dirty); err != nil {
		return err
	}
	return sx.splitUntilBounded(si, dirty)
}

// rebuildDirty rebuilds the backends of every still-live touched shard
// — each exactly once per epoch, in parallel (bounded by BuildWorkers)
// when a batch touched several.
func (sx *ShardedIndex) rebuildDirty(dirty map[*shard]bool) error {
	var todo []*shard
	for _, s := range sx.shards {
		if dirty[s] {
			todo = append(todo, s)
		}
	}
	if sx.buf != nil && dirty[sx.buf] {
		if len(sx.buf.ids) == 0 {
			sx.buf.sub, sx.buf.ix = nil, nil
		} else {
			todo = append(todo, sx.buf)
		}
	}
	switch len(todo) {
	case 0:
		return nil
	case 1:
		return sx.rebuildShard(todo[0])
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, sx.opt.BuildWorkers)
	errs := make([]error, len(todo))
	for ti, s := range todo {
		wg.Add(1)
		go func(ti int, s *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[ti] = sx.rebuildShard(s)
		}(ti, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- the insert buffer ------------------------------------------------------

// BufferStats reports the insert buffer's counters: the current
// buffered item count, total buffered inserts, and flush count —
// 1 − flushes/inserts is the fraction of inserts absorbed without a
// main-shard rebuild (the E20 "buffer hit fraction").
func (sx *ShardedIndex) BufferStats() (buffered int, inserts, flushes uint64) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.buf == nil {
		return 0, 0, 0
	}
	return len(sx.buf.ids), sx.bufInserts, sx.bufFlushes
}

// flushThreshold resolves the buffer capacity: the configured override,
// or the cost model's minimizer F* = sqrt(2·C_flush/c_query) of the
// amortized flush cost C_flush/F against the per-query buffer-scan
// overhead c_query·F/2 (one query per mutation assumed; C_flush is the
// configured backend's build cost at the per-shard target, c_query the
// reference oracle's per-item scan cost). Clamped to [8, 2×target]
// (floor wins for tiny targets) so a miscalibrated model can neither
// thrash nor let the buffer outgrow the shards it feeds.
func (sx *ShardedIndex) flushThreshold() int {
	if sx.opt.FlushThreshold > 0 {
		return sx.opt.FlushThreshold
	}
	if sx.model == nil {
		sx.model = NewCostModel(nil)
	}
	conf := sx.backend
	if conf == "" {
		conf = BackendBrute // factory-built (auto/planned) fleets: the reference cost
	}
	flush := sx.model.BuildCost(conf, sx.target+1)
	marginal := sx.model.QueryCost(BackendBrute, CapNonzero, 1)
	if marginal <= 0 {
		marginal = 1
	}
	f := int(math.Sqrt(2 * flush / marginal))
	lo, hi := 8, 2*sx.target
	if hi < lo {
		hi = lo
	}
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return f
}

// flushBuffer drains the insert buffer into the main shards: every
// buffered item routes to its owning shard by centroid, the touched
// shards are marked dirty (finishEpoch rebuilds each once), and the
// buffer resets. When no non-empty main shard exists the buffer itself
// becomes a fresh main shard — the flush-side counterpart of
// shardForInsert's degenerate-state fallback.
func (sx *ShardedIndex) flushBuffer(dirty map[*shard]bool) {
	if len(sx.buf.ids) == 0 {
		return
	}
	sx.bufFlushes++
	hasMain := false
	for _, s := range sx.shards {
		if len(s.ids) > 0 {
			hasMain = true
			break
		}
	}
	if !hasMain {
		ns := &shard{ids: sx.buf.ids, bbox: sx.buf.bbox}
		sx.shards = append(sx.shards, ns)
		dirty[ns] = true
	} else {
		touched := make(map[*shard]bool)
		for _, gi := range sx.buf.ids {
			s := sx.shards[sx.routeShard(centroid(sx.ds, gi))]
			s.ids = append(s.ids, gi)
			s.bbox = s.bbox.Union(itemBounds(sx.ds, gi))
			touched[s] = true
		}
		// Buffered ids are the most recent inserts, so they exceed every
		// main-shard id and the appends above stay ascending; the sort is
		// a cheap guard of the subset() precondition all the same.
		for s := range touched {
			sort.Ints(s.ids)
			dirty[s] = true
		}
	}
	delete(dirty, sx.buf)
	sx.buf = &shard{bbox: geom.EmptyRect()}
}
