// The tiled batch executor: BatchNonzero / BatchExpected rebuilt around
// the multi-query kernels (kernel/tile.go) and a shard-affine schedule.
//
// A batch runs in three phases:
//
//  1. Dedup ("in-batch singleflight"): every query is keyed by the same
//     cache key its single-query path would use (exact float bits when
//     the cache is off, so duplicate points still collapse), duplicates
//     alias their lowest-index representative, and representatives probe
//     the cache once. Only the remaining unique misses compute.
//  2. Compute: the backend's tiled batcher — the sharded merge scans
//     each shard's SoA rows once per tile of T queries, visiting shards
//     in tile-min-lower-bound order with per-lane Lemma 2.1 pruning —
//     or, for backends without one, the scalar appender per query.
//     Answers land in their slots through a sink, so the output order
//     is input order regardless of scheduling.
//  3. Alias copy: duplicates copy their representative's slot.
//
// Determinism survives tiling because the two-smallest-Δ fold is
// visit-order independent (see kernel.ScanTwoMin): a lane's scanned
// shard set under the tile schedule is a superset of the rows that can
// contribute — a shard skipped at lb ≥ m2(t) can neither shift the
// final (m1, m2) (its Δ's are ≥ lb ≥ the final m2) nor pass the strict
// δ < bound filter — so each lane's candidate set, sorted ascending, is
// the scalar merge's bit for bit. DESIGN.md §11 has the full argument.
//
// Everything on the workers ≤ 1 path is allocation-free in steady
// state: pooled scratch, sort-based dedup (no maps), pooled emitter
// structs behind the sink interfaces (no closures).
package engine

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"unn/internal/geom"
	"unn/internal/kernel"
)

// defaultBatchTile and maxBatchTile bound the tile width (lanes per
// data pass). 8 lanes amortize the row stream without spilling the
// per-lane state out of registers/L1; wider tiles help only on very
// cheap rows.
const (
	defaultBatchTile = 8
	maxBatchTile     = 64
	// tileDeltaBudget caps the dense per-tile δ block (lanes × rows
	// float64s, ≈32 MB): at large n the tile narrows so the staging
	// block stays cache-resident instead of thrashing.
	tileDeltaBudget = 4 << 20
)

// tileSize resolves Options.BatchTile: 0 selects the default, negative
// disables tiling (the scalar per-query batch path), positive values
// clamp to maxBatchTile.
func (e *Engine) tileSize() int {
	switch t := e.opt.BatchTile; {
	case t == 0:
		return defaultBatchTile
	case t < 0:
		return 0
	case t > maxBatchTile:
		return maxBatchTile
	default:
		return t
	}
}

// errUntileable signals that a backend has no tiled path for the
// request (no SoA mirror, unsupported dataset shape); the executor
// falls back to scalar per-query compute, keeping the dedup phase.
var errUntileable = errors.New("engine: backend has no tiled batch path")

// nonzeroSink receives one computed NN≠0 answer per unique query; qi is
// the index into the compute subset handed to the batcher. ids is only
// valid during the call (tile scratch) — implementations copy.
// Implementations must tolerate concurrent calls for distinct qi.
type nonzeroSink interface {
	emitNonzero(qi int, ids []int)
}

// expectedSink receives one computed expected-distance answer per
// unique query.
type expectedSink interface {
	emitExpected(qi int, gi int, d float64)
}

// tiledNonzeroBatcher is the backend contract behind the tiled
// executor: answer every query in qs (emitting into sink, indices into
// qs) using tiles of at most tile lanes and up to workers goroutines.
// Returns the schedule's slot capacity (Σ tile widths) and occupied
// lanes for the occupancy counters. errUntileable requests scalar
// fallback.
type tiledNonzeroBatcher interface {
	batchTiledNonzero(qs []geom.Point, tile, workers int, sink nonzeroSink) (slots, lanes int, err error)
}

// tiledExpectedBatcher is the expected-distance analogue.
type tiledExpectedBatcher interface {
	batchTiledExpected(qs []geom.Point, tile, workers int, sink expectedSink) (slots, lanes int, err error)
}

// keyRef pairs a query's dedup key with its input index; sorting groups
// duplicates with the lowest index first in each group.
type keyRef struct {
	key cacheKey
	idx int
}

func cmpKeyRef(a, b keyRef) int {
	switch {
	case a.key.kind != b.key.kind:
		return int(a.key.kind) - int(b.key.kind)
	case a.key.x != b.key.x:
		return cmpU64(a.key.x, b.key.x)
	case a.key.y != b.key.y:
		return cmpU64(a.key.y, b.key.y)
	case a.key.eps != b.key.eps:
		return cmpU64(a.key.eps, b.key.eps)
	case a.key.k != b.key.k:
		return cmpU64(a.key.k, b.key.k)
	default:
		return a.idx - b.idx
	}
}

func cmpU64(a, b uint64) int {
	if a < b {
		return -1
	}
	return 1
}

// batchScratch is the executor's pooled per-batch arena: the dedup
// tables and the emitter structs (pointers to these fields convert to
// the sink interfaces without allocating).
type batchScratch struct {
	refs  []keyRef
	alias []int // alias[i] ≥ 0: input i copies representative alias[i]
	comp  []int // input indices to compute, ascending
	keys  []cacheKey
	pts   []geom.Point
	nzEm  nonzeroEmitter
	exEm  expectedEmitter
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch   { return batchPool.Get().(*batchScratch) }
func putBatchScratch(bs *batchScratch) { batchPool.Put(bs) }

// batchKey builds a query's dedup key: the cache key when caching is on
// (so batch dedup collapses exactly what the cache would share — same
// quantum cell, same cell identity), else the exact coordinate bits (so
// cache-off batches still collapse repeated points).
func (e *Engine) batchKey(spec *kindSpec, req Request) cacheKey {
	if e.cache != nil {
		return e.requestKey(spec, req)
	}
	return cacheKey{kind: spec.cacheKind, x: math.Float64bits(req.Q.X), y: math.Float64bits(req.Q.Y)}
}

// hitSink receives cache hits during dedup: v is the cached boxed
// value, rep the input index of the group's representative. An
// interface (implemented by the pooled emitters) instead of a func so
// the steady state builds no closure.
type hitSink interface {
	hit(rep int, v any)
}

// dedup keys qs (phase 1): duplicates alias their representative,
// representatives probe the cache once through sink, and the misses
// land in bs.comp/bs.keys ascending by input index.
func (e *Engine) dedup(spec *kindSpec, qs []geom.Point, bs *batchScratch, sink hitSink) {
	refs := bs.refs[:0]
	for i, q := range qs {
		refs = append(refs, keyRef{key: e.batchKey(spec, Request{Kind: spec.cap, Q: q}), idx: i})
	}
	slices.SortFunc(refs, cmpKeyRef)
	bs.refs = refs

	alias := bs.alias
	if cap(alias) < len(qs) {
		alias = make([]int, len(qs))
	}
	alias = alias[:len(qs)]
	for i := range alias {
		alias[i] = -1
	}
	comp := bs.comp[:0]
	keys := bs.keys[:0]
	for gs := 0; gs < len(refs); {
		ge := gs + 1
		for ge < len(refs) && refs[ge].key == refs[gs].key {
			ge++
		}
		rep := refs[gs].idx // lowest input index of the group (cmp ties on idx)
		cached := false
		if e.cache != nil {
			if v, ok := e.cache.getKey(refs[gs].key); ok {
				sink.hit(rep, v)
				cached = true
			}
		}
		if !cached {
			comp = append(comp, rep)
			keys = append(keys, refs[gs].key)
		}
		for j := gs + 1; j < ge; j++ {
			alias[refs[j].idx] = rep
		}
		gs = ge
	}
	// Compute order must be ascending input order so a wholesale backend
	// failure maps to the lowest failing input index; regroup (comp was
	// emitted in key order) by sorting the (key, rep) pairs on rep.
	if !slices.IsSorted(comp) {
		pairs := refs[:0]
		for ci, qi := range comp {
			pairs = append(pairs, keyRef{key: keys[ci], idx: qi})
		}
		slices.SortFunc(pairs, cmpRefIdx)
		comp, keys = comp[:0], keys[:0]
		for _, p := range pairs {
			comp = append(comp, p.idx)
			keys = append(keys, p.key)
		}
	}
	bs.alias, bs.comp, bs.keys = alias, comp, keys
}

func cmpRefIdx(a, b keyRef) int { return a.idx - b.idx }

// nonzeroEmitter is the executor's nonzeroSink: it copies each computed
// answer into its output slot (reusing the slot's capacity) and, when
// caching, installs an owned copy under the query's key.
type nonzeroEmitter struct {
	e       *Engine
	out     [][]int
	comp    []int
	keys    []cacheKey
	install bool
	gen     uint64
}

func (em *nonzeroEmitter) emitNonzero(ci int, ids []int) {
	qi := em.comp[ci]
	em.out[qi] = append(em.out[qi][:0], ids...)
	if em.install {
		owned := make([]int, len(ids))
		copy(owned, ids)
		em.e.cache.putKey(em.keys[ci], owned, em.gen)
	}
}

// expectedEmitter is the executor's expectedSink.
type expectedEmitter struct {
	e       *Engine
	out     []ExpectedResult
	comp    []int
	keys    []cacheKey
	install bool
	gen     uint64
}

func (em *expectedEmitter) emitExpected(ci int, gi int, d float64) {
	qi := em.comp[ci]
	em.out[qi] = ExpectedResult{I: gi, Dist: d}
	if em.install {
		em.e.cache.putKey(em.keys[ci], expectedAnswer{gi, d}, em.gen)
	}
}

// unwrapped strips the quantum-hint wrapper (unexported interfaces do
// not promote through it).
func (e *Engine) unwrapped() Index {
	ix := e.ix
	for {
		h, ok := ix.(hintedIndex)
		if !ok {
			return ix
		}
		ix = h.Index
	}
}

// batchNonzeroTiled is the tiled NN≠0 batch body: out must have
// len(qs) slots (reused in place — the Into contract). install selects
// cache installation for computed answers (the allocating entry points;
// the Into path skips it like QueryNonzeroInto does).
func (e *Engine) batchNonzeroTiled(qs []geom.Point, out [][]int, install bool) ([][]int, error) {
	t0 := time.Now()
	defer func() { e.stats.recordBatchKind(CapNonzero, len(qs), time.Since(t0)); e.noteQueries(len(qs)) }()
	bs := getBatchScratch()
	defer putBatchScratch(bs)

	var gen uint64
	if e.cache != nil {
		gen = e.cache.generation()
	}
	em := &bs.nzEm
	*em = nonzeroEmitter{e: e, out: out, install: install && e.cache != nil, gen: gen}
	e.dedup(&kindTable[slotNonzero], qs, bs, em)
	em.comp, em.keys = bs.comp, bs.keys

	if len(bs.comp) > 0 {
		pts := bs.pts[:0]
		for _, qi := range bs.comp {
			pts = append(pts, qs[qi])
		}
		bs.pts = pts
		ran := false
		if tb, ok := e.unwrapped().(tiledNonzeroBatcher); ok {
			slots, lanes, err := tb.batchTiledNonzero(pts, e.tileSize(), e.opt.Workers, em)
			switch {
			case err == nil:
				e.stats.recordTiles(slots, lanes)
				ran = true
			case !errors.Is(err, errUntileable):
				return out, fmt.Errorf("engine: batch query %d: %w", bs.comp[0], err)
			}
		}
		if !ran {
			fi, err := runIndexed(e.opt.Workers, len(pts), func(ci int) error {
				return e.fallbackNonzero(pts[ci], ci, em)
			})
			if err != nil {
				return out, fmt.Errorf("engine: batch query %d: %w", bs.comp[fi], err)
			}
		}
	}

	for i, r := range bs.alias {
		if r >= 0 {
			out[i] = append(out[i][:0], out[r]...)
		}
	}
	return out, nil
}

// hit fills a representative's slot from a cached entry (hitSink).
func (em *nonzeroEmitter) hit(rep int, v any) {
	em.out[rep] = append(em.out[rep][:0], v.([]int)...)
}

// fallbackNonzero computes one unique query on the scalar path — the
// raw appender (or backend call), NOT queryValue: the batch records its
// stats once, and double-recording per fallback query would skew the
// cost model's measured latencies.
func (e *Engine) fallbackNonzero(q geom.Point, ci int, em *nonzeroEmitter) error {
	qi := em.comp[ci]
	if e.appender != nil {
		slot, err := e.appender.appendNonzero(q, em.out[qi][:0])
		em.out[qi] = slot
		if err != nil {
			return err
		}
		if em.install {
			owned := make([]int, len(slot))
			copy(owned, slot)
			e.cache.putKey(em.keys[ci], owned, em.gen)
		}
		return nil
	}
	ids, err := e.ix.QueryNonzero(q)
	if err != nil {
		return err
	}
	em.out[qi] = append(em.out[qi][:0], ids...)
	if em.install {
		// ids is freshly backend-owned: installable without a copy.
		e.cache.putKey(em.keys[ci], ids, em.gen)
	}
	return nil
}

// batchExpectedTiled is the tiled expected-distance batch body; ok is
// false when the backend has no tiled expected path (the caller then
// runs the scalar batch unchanged).
func (e *Engine) batchExpectedTiled(qs []geom.Point) ([]ExpectedResult, bool, error) {
	tb, ok := e.unwrapped().(tiledExpectedBatcher)
	if !ok {
		return nil, false, nil
	}
	t0 := time.Now()
	out := make([]ExpectedResult, len(qs))
	bs := getBatchScratch()
	defer putBatchScratch(bs)

	var gen uint64
	if e.cache != nil {
		gen = e.cache.generation()
	}
	em := &bs.exEm
	*em = expectedEmitter{e: e, out: out, install: e.cache != nil, gen: gen}
	e.dedup(&kindTable[slotExpected], qs, bs, em)
	em.comp, em.keys = bs.comp, bs.keys

	if len(bs.comp) > 0 {
		pts := bs.pts[:0]
		for _, qi := range bs.comp {
			pts = append(pts, qs[qi])
		}
		bs.pts = pts
		slots, lanes, err := tb.batchTiledExpected(pts, e.tileSize(), e.opt.Workers, em)
		switch {
		case err == nil:
			e.stats.recordTiles(slots, lanes)
		case errors.Is(err, errUntileable):
			return nil, false, nil
		default:
			return nil, true, fmt.Errorf("engine: batch query %d: %w", bs.comp[0], err)
		}
	}

	for i, r := range bs.alias {
		if r >= 0 {
			out[i] = out[r]
		}
	}
	e.stats.recordBatchKind(CapExpected, len(qs), time.Since(t0))
	e.noteQueries(len(qs))
	return out, true, nil
}

// hit fills a representative's slot from a cached entry (hitSink).
func (em *expectedEmitter) hit(rep int, v any) {
	ans := v.(expectedAnswer)
	em.out[rep] = ExpectedResult{I: ans.i, Dist: ans.d}
}

// runIndexed runs fn(0..n-1) across up to workers goroutines with the
// scalar batch's error semantics: the returned index is the position of
// the lowest failing call (feeding is in order and stops on failure, so
// the recorded minimum is global). Sequential when workers ≤ 1.
func runIndexed(workers, n int, fn func(int) error) (int, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}
	var (
		wg     sync.WaitGroup
		next   = make(chan int)
		mu     sync.Mutex
		errIdx = -1
		errVal error
		failed atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return errIdx, errVal
}

// tileScratch is the pooled per-worker tile arena shared by the
// backends' tiled batchers: kernel scratch (per-lane state + δ block),
// the tile's shard table with per-lane lower bounds, and the lane
// staging slices.
type tileScratch struct {
	sc      kernel.Scratch
	parts   []boundedShard
	order   []int     // shard visit order (positions into parts)
	lbs     []float64 // lane-major [T][S] per-lane shard lower bounds
	scanned []bool    // lane-major [T][S]: lane t scanned shard si
	act     []int     // active lanes for the current shard
	qx, qy  []float64
	qi      []int   // lane → index into the batcher's qs
	pack    []int64 // affinity schedule: nearest-shard ≪ 32 | query index
	outs    [][]int // per-lane answer staging (the monolithic brute tiles)
	best    []int
	bestD   []float64
}

var tilePool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch() *tileScratch   { return tilePool.Get().(*tileScratch) }
func putTileScratch(ts *tileScratch) { tilePool.Put(ts) }

// lanes sizes the per-lane staging slices for T lanes.
func (ts *tileScratch) lanes(T int) {
	if cap(ts.qx) < T {
		ts.qx = make([]float64, T)
		ts.qy = make([]float64, T)
		ts.qi = make([]int, T)
	}
	ts.qx, ts.qy, ts.qi = ts.qx[:T], ts.qy[:T], ts.qi[:T]
}

// growFloats / growInts / growBools resize pooled slices without
// retaining stale values.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// clampTile narrows tile so the dense δ staging block (tile × rows)
// stays within tileDeltaBudget; at least one lane always runs.
func clampTile(tile, rows int) int {
	if tile < 1 {
		tile = 1
	}
	if rows > 0 {
		if c := tileDeltaBudget / rows; c < tile {
			tile = max(c, 1)
		}
	}
	return tile
}

// parallelTiles runs run(ti, ts) for each of nTiles tiles across up to
// workers goroutines, each worker leasing one tileScratch. The caller
// handles the sequential (workers ≤ 1) path inline to keep it
// closure-free.
func parallelTiles(workers, nTiles int, run func(ti int, ts *tileScratch)) {
	if workers > nTiles {
		workers = nTiles
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ts := getTileScratch()
			defer putTileScratch(ts)
			for ti := range next {
				run(ti, ts)
			}
		}()
	}
	for ti := 0; ti < nTiles; ti++ {
		next <- ti
	}
	close(next)
	wg.Wait()
}
