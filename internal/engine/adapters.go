package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"unn/internal/expected"
	"unn/internal/geom"
	"unn/internal/kernel"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
	"unn/internal/quantify"
)

// BuildOptions tunes backend construction. The zero value is usable:
// every field has a documented default.
type BuildOptions struct {
	// Eps is the default additive error for approximating probability
	// backends (spiral prefix rule, and the reported MC guarantee) when a
	// query passes eps ≤ 0. Default 0.02.
	Eps float64
	// MCRounds is the number of Monte-Carlo instantiations s. Default 64.
	MCRounds int
	// Seed drives every randomized construction (Monte-Carlo sampling),
	// making builds reproducible. Default 0x6e67 ("ng").
	Seed int64
	// MCParallel fans Monte-Carlo construction over all CPUs
	// (deterministic in Seed).
	MCParallel bool
	// Diagram tunes V≠0 diagram construction.
	Diagram nonzero.DiagramOptions
	// VPr tunes probabilistic-Voronoi construction.
	VPr quantify.VPrOptions
	// SpiralQuadtree selects the quadtree branch-and-bound retrieval
	// backend for the spiral structure (§4.3 Remark (ii)).
	SpiralQuadtree bool
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.Eps <= 0 {
		o.Eps = 0.02
	}
	if o.MCRounds <= 0 {
		o.MCRounds = 64
	}
	if o.Seed == 0 {
		o.Seed = 0x6e67
	}
	return o
}

// noNonzero, noProbs and noExpected supply the unsupported-kind methods
// so each adapter only writes the queries it implements.
type noNonzero struct{}

func (noNonzero) QueryNonzero(geom.Point) ([]int, error) { return nil, ErrUnsupported }

type noProbs struct{}

func (noProbs) QueryProbs(geom.Point, float64) ([]quantify.Prob, error) {
	return nil, ErrUnsupported
}

type noExpected struct{}

func (noExpected) QueryExpected(geom.Point) (int, float64, error) {
	return -1, 0, ErrUnsupported
}

// --- brute: Lemma 2.1 oracle + Eq. (2) sweep --------------------------------

// bruteIndex is the reference backend: O(n) NN≠0 per query (Lemma 2.1),
// O(N log N + N·n) exact π per query (Eq. (2)) and a linear
// expected-distance scan for discrete inputs.
type bruteIndex struct {
	opt BuildOptions
	ds  *Dataset
	// flat is the SoA mirror of the point rows: the fused one-pass NN≠0
	// kernel and the contiguous E[d] scan run on it (bit-identical to the
	// AoS oracles — same operations in the same order, half the distance
	// evaluations for NN≠0). It is lowered lazily on the first query
	// (ensureFlat): the dynamic layer rebuilds shard backends on every
	// mutation epoch, and a mutation-only window would otherwise pay a
	// full O(shard) lowering per rebuild that no query ever reads.
	flatOnce sync.Once
	flat     *kernel.Flat
}

func (ix *bruteIndex) Name() string { return string(BackendBrute) }

func (ix *bruteIndex) Capabilities() Capability {
	c := CapNonzero
	if ix.ds != nil && ix.ds.Discrete != nil {
		c |= CapProbs | CapExpected | CapTopK
	}
	return c
}

func (ix *bruteIndex) Build(ds *Dataset) error {
	if len(ds.Points) == 0 {
		return fmt.Errorf("brute: dataset has no uncertain points")
	}
	ix.ds = ds
	return nil
}

// ensureFlat lowers the dataset into the SoA mirror on first use. Mixed
// region families stay on the AoS oracle (nil). Concurrent queries hold
// the sharded layer's RLock, so the sync.Once is the only guard needed;
// rebuildShard reads ix.flat under the write lock, after every reader
// has drained.
func (ix *bruteIndex) ensureFlat() *kernel.Flat {
	ix.flatOnce.Do(func() {
		switch {
		case ix.ds.Discrete != nil:
			ix.flat = kernel.FromDiscreteInto(takeShardFlat(), ix.ds.Discrete)
		case ix.ds.Disks != nil:
			ix.flat = kernel.FromDisksInto(takeShardFlat(), ix.ds.Disks)
		}
	})
	return ix.flat
}

// shardFlatPool recycles per-backend SoA mirrors across the dynamic
// layer's shard rebuilds (rebuildShard returns the replaced backend's
// mirror). A Get that comes back with the wrong kind is simply dropped
// by the FromXxxInto constructors — correctness never depends on what
// the pool holds.
var shardFlatPool sync.Pool

func takeShardFlat() *kernel.Flat {
	f, _ := shardFlatPool.Get().(*kernel.Flat)
	return f
}

func recycleShardFlat(f *kernel.Flat) { shardFlatPool.Put(f) }

func (ix *bruteIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.appendNonzero(q, nil)
}

func (ix *bruteIndex) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	f := ix.ensureFlat()
	if f == nil {
		return append(dst, nonzero.Brute(ix.ds.Points, q)...), nil
	}
	sc := kernel.GetScratch()
	dst = f.AppendNonzero(q.X, q.Y, dst, sc)
	kernel.PutScratch(sc)
	return dst, nil
}

// batchTiledNonzero implements tiledNonzeroBatcher for the monolithic
// oracle: consecutive input tiles (there is no shard structure to be
// affine to), each answered by one AppendNonzeroTile pass over the SoA
// rows. Datasets without a flat mirror request scalar fallback.
func (ix *bruteIndex) batchTiledNonzero(qs []geom.Point, tile, workers int, sink nonzeroSink) (int, int, error) {
	f := ix.ensureFlat()
	if f == nil {
		return 0, 0, errUntileable
	}
	if len(qs) == 0 {
		return 0, 0, nil
	}
	tile = clampTile(tile, f.N)
	nTiles := (len(qs) + tile - 1) / tile
	if workers <= 1 || nTiles == 1 {
		ts := getTileScratch()
		defer putTileScratch(ts)
		for ti := 0; ti < nTiles; ti++ {
			ix.runBruteTile(f, qs, ti*tile, min(ti*tile+tile, len(qs)), sink, ts)
		}
		return nTiles * tile, len(qs), nil
	}
	parallelTiles(workers, nTiles, func(ti int, ts *tileScratch) {
		ix.runBruteTile(f, qs, ti*tile, min(ti*tile+tile, len(qs)), sink, ts)
	})
	return nTiles * tile, len(qs), nil
}

// runBruteTile answers queries qs[lo:hi] in one tiled pass.
func (ix *bruteIndex) runBruteTile(f *kernel.Flat, qs []geom.Point, lo, hi int, sink nonzeroSink, ts *tileScratch) {
	T := hi - lo
	ts.lanes(T)
	if cap(ts.outs) < T {
		ts.outs = make([][]int, T)
	}
	outs := ts.outs[:T]
	for t := 0; t < T; t++ {
		ts.qx[t], ts.qy[t] = qs[lo+t].X, qs[lo+t].Y
		outs[t] = outs[t][:0]
	}
	outs = f.AppendNonzeroTile(ts.qx, ts.qy, outs, &ts.sc)
	copy(ts.outs, outs)
	for t := 0; t < T; t++ {
		sink.emitNonzero(lo+t, outs[t])
	}
}

// batchTiledExpected implements tiledExpectedBatcher: one
// ExpectedArgminTile pass per consecutive tile (discrete flat rows
// only).
func (ix *bruteIndex) batchTiledExpected(qs []geom.Point, tile, workers int, sink expectedSink) (int, int, error) {
	if ix.ds.Discrete == nil {
		return 0, 0, ErrUnsupported
	}
	f := ix.ensureFlat()
	if f == nil || f.Kind != kernel.KindDiscrete {
		return 0, 0, errUntileable
	}
	if len(qs) == 0 {
		return 0, 0, nil
	}
	tile = clampTile(tile, f.N)
	nTiles := (len(qs) + tile - 1) / tile
	if workers <= 1 || nTiles == 1 {
		ts := getTileScratch()
		defer putTileScratch(ts)
		for ti := 0; ti < nTiles; ti++ {
			ix.runExpectedTile(f, qs, ti*tile, min(ti*tile+tile, len(qs)), sink, ts)
		}
		return nTiles * tile, len(qs), nil
	}
	parallelTiles(workers, nTiles, func(ti int, ts *tileScratch) {
		ix.runExpectedTile(f, qs, ti*tile, min(ti*tile+tile, len(qs)), sink, ts)
	})
	return nTiles * tile, len(qs), nil
}

// runExpectedTile answers queries qs[lo:hi] in one tiled E[d] pass.
func (ix *bruteIndex) runExpectedTile(f *kernel.Flat, qs []geom.Point, lo, hi int, sink expectedSink, ts *tileScratch) {
	T := hi - lo
	ts.lanes(T)
	if cap(ts.best) < T {
		ts.best = make([]int, T)
		ts.bestD = make([]float64, T)
	}
	best, bestD := ts.best[:T], ts.bestD[:T]
	for t := 0; t < T; t++ {
		ts.qx[t], ts.qy[t] = qs[lo+t].X, qs[lo+t].Y
	}
	f.ExpectedArgminTile(ts.qx, ts.qy, best, bestD)
	for t := 0; t < T; t++ {
		sink.emitExpected(lo+t, best[t], bestD[t])
	}
}

func (ix *bruteIndex) QueryProbs(q geom.Point, _ float64) ([]quantify.Prob, error) {
	if ix.ds.Discrete == nil {
		return nil, ErrUnsupported
	}
	return quantify.ExactPositive(ix.ds.Discrete, q), nil
}

// QueryTopK is the brute reference for top-k most-likely NN: the exact
// Eq. (2) sweep followed by the shared deterministic selection.
func (ix *bruteIndex) QueryTopK(q geom.Point, k int, _ float64) ([]quantify.Prob, error) {
	if ix.ds.Discrete == nil {
		return nil, ErrUnsupported
	}
	if k < 1 {
		return nil, fmt.Errorf("engine: topk: k must be ≥ 1, got %d", k)
	}
	return topKSelect(quantify.ExactPositive(ix.ds.Discrete, q), k), nil
}

func (ix *bruteIndex) QueryExpected(q geom.Point) (int, float64, error) {
	if ix.ds.Discrete == nil {
		return -1, 0, ErrUnsupported
	}
	if f := ix.ensureFlat(); f != nil && f.Kind == kernel.KindDiscrete {
		i, d := f.ExpectedArgmin(q.X, q.Y)
		return i, d, nil
	}
	best, bestD := -1, math.Inf(1)
	for i, p := range ix.ds.Discrete {
		if d := p.ExpectedDist(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD, nil
}

// --- diagram: V≠0 with point location (Thms 2.5/2.14 + 2.11) ---------------

type diagramIndex struct {
	noProbs
	noExpected
	opt  BuildOptions
	diag *nonzero.Diagram
}

func (ix *diagramIndex) Name() string             { return string(BackendDiagram) }
func (ix *diagramIndex) Capabilities() Capability { return CapNonzero }

func (ix *diagramIndex) Build(ds *Dataset) error {
	var err error
	switch {
	case ds.Disks != nil:
		ix.diag, err = nonzero.BuildDiskDiagram(ds.Disks, ix.opt.Diagram)
	case ds.Discrete != nil:
		ix.diag, err = nonzero.BuildDiscreteDiagram(ds.Discrete, ix.opt.Diagram)
	default:
		err = fmt.Errorf("diagram: dataset is neither all-disk nor all-discrete")
	}
	return err
}

func (ix *diagramIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.diag.Query(q), nil
}

// cellID returns the identity of the arrangement cell containing q:
// within one cell of the V≠0 diagram the answer is constant, so the
// engine cache can key NN≠0 entries by (slab, gap) — every query in the
// cell shares one entry, and no quantum-grid rounding can alias two
// cells across a slab boundary. Points outside the located box (or on a
// degenerate locate) report no identity and fall back to quantized keys.
func (ix *diagramIndex) cellID(q geom.Point) (uint64, bool) {
	if ix.diag.Loc == nil || !ix.diag.Box.Contains(q) {
		return 0, false
	}
	s, g, ok := ix.diag.Loc.Locate(q)
	if !ok {
		return 0, false
	}
	return uint64(s)<<32 | uint64(uint32(g)), true
}

// QuantumHint derives the adaptive cache quantum from the built
// diagram's cell extents: inside a vertical slab the answer is constant
// per gap, so slab width lower-bounds the horizontal extent of every
// cell fragment. The hint is the robust minimum of the slab widths
// (robustMin) — the literal minimum degenerates to slivers where
// arrangement vertices nearly coincide, which would disable answer
// sharing entirely.
func (ix *diagramIndex) QuantumHint() float64 {
	loc := ix.diag.Loc
	if loc == nil || loc.SlabCount() == 0 {
		return 0
	}
	ws := make([]float64, 0, loc.SlabCount())
	for s := 0; s < loc.SlabCount(); s++ {
		if w := loc.SlabWidth(s); w > 0 {
			ws = append(ws, w)
		}
	}
	if w := robustMin(ws); !math.IsInf(w, 1) {
		return w
	}
	return 0
}

// --- two-stage structures (Thms 3.1/3.2) ------------------------------------

type twoStageDisksIndex struct {
	noProbs
	noExpected
	ts *nonzero.TwoStageDisks
}

func (ix *twoStageDisksIndex) Name() string             { return string(BackendTwoStageDisks) }
func (ix *twoStageDisksIndex) Capabilities() Capability { return CapNonzero }

func (ix *twoStageDisksIndex) Build(ds *Dataset) error {
	if ds.Disks == nil {
		return fmt.Errorf("twostage-disks: dataset is not all-disk")
	}
	ix.ts = nonzero.NewTwoStageDisks(ds.Disks)
	return nil
}

func (ix *twoStageDisksIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.ts.Query(q), nil
}

func (ix *twoStageDisksIndex) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	return ix.ts.QueryAppend(q, dst), nil
}

type twoStageDiscreteIndex struct {
	noProbs
	noExpected
	ts *nonzero.TwoStageDiscrete
}

func (ix *twoStageDiscreteIndex) Name() string             { return string(BackendTwoStageDiscrete) }
func (ix *twoStageDiscreteIndex) Capabilities() Capability { return CapNonzero }

func (ix *twoStageDiscreteIndex) Build(ds *Dataset) error {
	if ds.Discrete == nil {
		return fmt.Errorf("twostage-discrete: dataset is not all-discrete")
	}
	ix.ts = nonzero.NewTwoStageDiscrete(ds.Discrete)
	return nil
}

func (ix *twoStageDiscreteIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.ts.Query(q), nil
}

func (ix *twoStageDiscreteIndex) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	return ix.ts.QueryAppend(q, dst), nil
}

// --- V_Pr: exact probabilistic Voronoi diagram (Thm 4.2) --------------------

type vprIndex struct {
	noNonzero
	noExpected
	opt BuildOptions
	v   *quantify.VPr
}

func (ix *vprIndex) Name() string             { return string(BackendVPr) }
func (ix *vprIndex) Capabilities() Capability { return CapProbs | CapTopK }

func (ix *vprIndex) Build(ds *Dataset) error {
	if ds.Discrete == nil {
		return fmt.Errorf("vpr: dataset is not all-discrete")
	}
	var err error
	ix.v, err = quantify.BuildVPr(ds.Discrete, ix.opt.VPr)
	return err
}

func (ix *vprIndex) QueryProbs(q geom.Point, _ float64) ([]quantify.Prob, error) {
	return ix.v.QueryPositive(q), nil
}

// --- Monte Carlo (Thms 4.3/4.5) ---------------------------------------------

type monteCarloIndex struct {
	noNonzero
	noExpected
	opt BuildOptions
	mc  *quantify.MonteCarlo
}

func (ix *monteCarloIndex) Name() string             { return string(BackendMonteCarlo) }
func (ix *monteCarloIndex) Capabilities() Capability { return CapProbs | CapTopK }

func (ix *monteCarloIndex) Build(ds *Dataset) error {
	if len(ds.Points) == 0 {
		return fmt.Errorf("montecarlo: dataset has no uncertain points")
	}
	mcOpt := quantify.MCOptions{Rng: rand.New(rand.NewSource(ix.opt.Seed))}
	var err error
	if ix.opt.MCParallel {
		ix.mc, err = quantify.NewMonteCarloParallel(ds.Points, ix.opt.MCRounds, mcOpt)
	} else {
		ix.mc, err = quantify.NewMonteCarlo(ds.Points, ix.opt.MCRounds, mcOpt)
	}
	return err
}

func (ix *monteCarloIndex) QueryProbs(q geom.Point, _ float64) ([]quantify.Prob, error) {
	return ix.mc.Query(q), nil
}

// --- spiral search (Thm 4.7) ------------------------------------------------

type spiralIndex struct {
	noNonzero
	noExpected
	opt BuildOptions
	sp  *quantify.Spiral
}

func (ix *spiralIndex) Name() string             { return string(BackendSpiral) }
func (ix *spiralIndex) Capabilities() Capability { return CapProbs | CapTopK }

func (ix *spiralIndex) Build(ds *Dataset) error {
	if ds.Discrete == nil {
		return fmt.Errorf("spiral: dataset is not all-discrete")
	}
	var err error
	if ix.opt.SpiralQuadtree {
		ix.sp, err = quantify.NewSpiralQuadtree(ds.Discrete)
	} else {
		ix.sp, err = quantify.NewSpiral(ds.Discrete)
	}
	return err
}

func (ix *spiralIndex) QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error) {
	if eps <= 0 {
		eps = ix.opt.Eps
	}
	probs, _ := ix.sp.Query(q, eps)
	return probs, nil
}

// --- expected-distance semantics ([AESZ12]) ---------------------------------

type expectedIndex struct {
	noNonzero
	noProbs
	ix *expected.Index
}

func (ix *expectedIndex) Name() string             { return string(BackendExpected) }
func (ix *expectedIndex) Capabilities() Capability { return CapExpected }

func (ix *expectedIndex) Build(ds *Dataset) error {
	if ds.Discrete == nil {
		return fmt.Errorf("expected: dataset is not all-discrete")
	}
	var err error
	ix.ix, err = expected.New(ds.Discrete)
	return err
}

func (ix *expectedIndex) QueryExpected(q geom.Point) (int, float64, error) {
	i, d := ix.ix.NNExpected(q)
	return i, d, nil
}

// --- L∞ / L1 two-stage structures (remark after Thm 3.1) --------------------

type linfIndex struct {
	noProbs
	noExpected
	ts *lmetric.TwoStageLinf
}

func (ix *linfIndex) Name() string             { return string(BackendTwoStageLinf) }
func (ix *linfIndex) Capabilities() Capability { return CapNonzero }

func (ix *linfIndex) Build(ds *Dataset) error {
	if ds.Squares == nil {
		return fmt.Errorf("twostage-linf: dataset has no squares (use FromSquares)")
	}
	ix.ts = lmetric.NewTwoStageLinf(ds.Squares)
	return nil
}

func (ix *linfIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.ts.Query(q), nil
}

func (ix *linfIndex) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	return ix.ts.QueryAppend(q, dst), nil
}

type l1Index struct {
	noProbs
	noExpected
	ts *lmetric.TwoStageL1
}

func (ix *l1Index) Name() string             { return string(BackendTwoStageL1) }
func (ix *l1Index) Capabilities() Capability { return CapNonzero }

func (ix *l1Index) Build(ds *Dataset) error {
	if ds.Squares == nil {
		return fmt.Errorf("twostage-l1: dataset has no diamonds (use FromSquares)")
	}
	ix.ts = lmetric.NewTwoStageL1(ds.Squares)
	return nil
}

func (ix *l1Index) QueryNonzero(q geom.Point) ([]int, error) {
	return ix.ts.Query(q), nil
}

func (ix *l1Index) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	return ix.ts.QueryAppend(q, dst), nil
}
