package engine

import (
	"container/list"
	"math"
	"sync"

	"unn/internal/geom"
)

// query kinds for cache keys.
const (
	kindNonzero uint8 = iota
	kindProbs
	kindExpected
)

// cacheKey identifies one answer: query kind, the quantized query
// point, and (for probability queries) the accuracy knob.
type cacheKey struct {
	kind uint8
	x, y uint64
	eps  uint64
}

// cache is a mutex-protected LRU answer cache keyed by quantized query
// point. With quantum > 0 the plane is snapped to a grid of that step,
// so nearby queries share an answer — the engine-level analogue of the
// diagrams' cell-level answer sharing (every exact structure is
// piecewise constant, so a fine quantum trades a bounded spatial error
// for hit rate). With quantum = 0 keys are the exact float bit patterns.
type cache struct {
	mu      sync.Mutex
	cap     int
	quantum float64
	ll      *list.List // front = most recent
	items   map[cacheKey]*list.Element
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key cacheKey
	val any
}

func newCache(capacity int, quantum float64) *cache {
	return &cache{
		cap:     capacity,
		quantum: quantum,
		ll:      list.New(),
		items:   make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *cache) quantize(v float64) uint64 {
	if c.quantum > 0 {
		return uint64(int64(math.Floor(v / c.quantum)))
	}
	return math.Float64bits(v)
}

func (c *cache) key(kind uint8, q geom.Point, eps float64) cacheKey {
	return cacheKey{
		kind: kind,
		x:    c.quantize(q.X),
		y:    c.quantize(q.Y),
		eps:  math.Float64bits(eps),
	}
}

func (c *cache) get(kind uint8, q geom.Point, eps float64) (any, bool) {
	k := c.key(kind, q, eps)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *cache) put(kind uint8, q geom.Point, eps float64, val any) {
	k := c.key(kind, q, eps)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *cache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
