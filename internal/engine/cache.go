package engine

import (
	"container/list"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"unn/internal/geom"
)

// query kinds for cache keys.
const (
	kindNonzero uint8 = iota
	kindProbs
	kindExpected
	// kindNonzeroCell keys an NN≠0 answer by the exact arrangement cell
	// containing the query (diagram backends; see diagramIndex.cellID):
	// the located cell id goes in x, y and eps stay zero. Same-cell
	// queries share one entry regardless of the grid quantum, and two
	// queries across a cell boundary can never alias.
	kindNonzeroCell
	// kindTopK keys top-k most-likely-NN answers; k participates in the
	// key, so the same query point at different k never shares a cell.
	kindTopK
)

// quantumHinter is the optional interface a built index implements to
// suggest a cache quantum: the minimum spatial extent over which its
// answer can be assumed constant (the exact structures are piecewise
// constant on their diagram cells). The engine consults it when
// Options.CacheQuantum < 0 (adaptive).
type quantumHinter interface {
	QuantumHint() float64
}

// autoQuantum estimates a cache quantum from the dataset alone: the
// answer cells of every structure here are carved by the uncertainty
// regions, so their extent tracks the spacing between region centroids.
// The estimate is a robust minimum (robustMin over the adjacent
// spacings along x and y, halved) — the literal minimum degenerates to
// slivers under near-duplicate points and would disable sharing
// entirely.
// Backends with real cell geometry (the V≠0 diagram) override this with
// measured cell extents via quantumHinter.
func autoQuantum(ds *Dataset) float64 {
	n := ds.N()
	if n < 2 {
		return 0
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		c := centroid(ds, i)
		xs[i], ys[i] = c.X, c.Y
	}
	gx := robustMinGap(xs)
	gy := robustMinGap(ys)
	g := math.Min(gx, gy)
	if math.IsInf(g, 1) || g <= 0 {
		return 0
	}
	return g / 2
}

// robustMinGap returns the robust-minimum positive gap between
// consecutive sorted values, +Inf when every value coincides.
func robustMinGap(vs []float64) float64 {
	sort.Float64s(vs)
	gaps := vs[:0]
	for i := 1; i < len(vs); i++ {
		if d := vs[i] - vs[i-1]; d > 0 {
			gaps = append(gaps, d)
		}
	}
	return robustMin(gaps)
}

// robustMin is the robust minimum of a sample: the 10th-percentile
// value, but never the literal smallest when a second value exists —
// one near-degenerate sliver (two almost-coincident centroids, a
// hairline diagram slab) must not collapse the estimate. +Inf on an
// empty sample. Destructive (sorts vs in place).
func robustMin(vs []float64) float64 {
	if len(vs) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(vs)
	i := len(vs) / 10
	if i == 0 && len(vs) > 1 {
		i = 1
	}
	return vs[i]
}

// cacheKey identifies one answer: query kind, the quantized query
// point, and the per-kind request knobs (the accuracy eps for
// probability queries, k for top-k queries). Kinds that ignore a knob
// key it as zero (see cache.key), so equivalent requests share a cell
// and requests of distinct kinds or distinct k never do.
type cacheKey struct {
	kind uint8
	x, y uint64
	eps  uint64
	k    uint64
}

// cache is a striped LRU answer cache keyed by quantized query point.
// Keys hash to one of GOMAXPROCS independent stripes, each with its own
// mutex, LRU list and hit/miss counters, so concurrent batch workers do
// not serialize on one lock. Occupancy is bounded globally by an atomic
// counter: nothing is evicted before the total reaches the configured
// capacity, and over-capacity puts evict one LRU tail from a
// round-robin scan of the stripes — a hot stripe may hold most of the
// capacity, and never thrashes while other stripes sit idle.
//
// With quantum > 0 the plane is snapped to a grid of that step, so
// nearby queries share an answer — the engine-level analogue of the
// diagrams' cell-level answer sharing (every exact structure is
// piecewise constant, so a fine quantum trades a bounded spatial error
// for hit rate). With quantum = 0 keys are the exact float bit patterns.
type cache struct {
	// quantum holds the grid step as float64 bits: mutation epochs may
	// tighten the adaptive quantum (Engine.maybeTightenQuantum) while
	// queries quantize keys concurrently, so reads and writes are
	// atomic. The tighten always pairs with an invalidate, so entries
	// keyed under two different quanta never coexist.
	quantum  atomic.Uint64
	capacity int64
	total    atomic.Int64
	clock    atomic.Int64 // rotates the eviction scan start
	// gen is the invalidation generation: a mutation bumps it before
	// clearing the stripes, and puts record the generation read before
	// their answer was computed — a put whose generation is stale is
	// dropped, so an in-flight query can never re-install a
	// pre-mutation answer after the flush.
	gen     atomic.Uint64
	stripes []*cacheStripe
}

type cacheStripe struct {
	mu     sync.Mutex
	ll     *list.List // front = most recent
	items  map[cacheKey]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key cacheKey
	val any
}

func newCache(capacity int, quantum float64) *cache {
	n := runtime.GOMAXPROCS(0)
	if n > capacity {
		n = capacity
	}
	if n < 1 {
		n = 1
	}
	c := &cache{capacity: int64(capacity), stripes: make([]*cacheStripe, n)}
	c.quantum.Store(math.Float64bits(quantum))
	for i := range c.stripes {
		c.stripes[i] = &cacheStripe{
			ll:    list.New(),
			items: make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// setQuantum retunes the grid step (the adaptive-quantum refresh on
// mutation epochs); callers must invalidate so old-grid keys never mix
// with new-grid ones.
func (c *cache) setQuantum(q float64) { c.quantum.Store(math.Float64bits(q)) }

func (c *cache) quantize(v float64) uint64 {
	if q := math.Float64frombits(c.quantum.Load()); q > 0 {
		return quantizeCell(v, q)
	}
	return math.Float64bits(v)
}

// quantizeCell snaps v to its grid cell index at step q, saturating at
// the int64 range. The saturation matters: for coordinates beyond
// ±2⁶³·q the float→int conversion is implementation-specific in Go
// (spec: "behavior is implementation-specific" for out-of-range
// values), so without the clamp the same query point could produce
// different cache keys on different architectures — or alias a finite
// cell. Saturated cells collapse the far tails onto two sentinel cells,
// which only coarsens sharing out there, never correctness of the keys.
func quantizeCell(v, q float64) uint64 {
	f := math.Floor(v / q)
	const lim = 1 << 63 // 2⁶³, exactly representable as a float64
	switch {
	case !(f > -lim): // f ≤ −2⁶³, and NaN (0/0-shaped inputs)
		return 1 << 63 // the bit pattern of math.MinInt64
	case f >= lim: // 2⁶³−1 rounds up to 2⁶³ in float64, so clamp at ≥
		return 1<<63 - 1 // math.MaxInt64
	}
	return uint64(int64(f))
}

// key is the one shared cache-key builder: every query path funnels its
// (kind, point, eps, k) through here so canonicalization is uniform.
func (c *cache) key(kind uint8, q geom.Point, eps float64, k int) cacheKey {
	// Every eps ≤ 0 means "backend default" (see Index.QueryProbs), so
	// all of them share one canonical key — raw bit patterns would give
	// eps = 0 and eps = -1 separate entries for the same answer. Kinds
	// that ignore eps or k pass them as zero.
	if eps <= 0 {
		eps = 0
	}
	if k < 0 {
		k = 0
	}
	return cacheKey{
		kind: kind,
		x:    c.quantize(q.X),
		y:    c.quantize(q.Y),
		eps:  math.Float64bits(eps),
		k:    uint64(k),
	}
}

// stripe hashes k to its stripe (splitmix64-style mixing).
func (c *cache) stripe(k cacheKey) *cacheStripe {
	h := k.x*0x9e3779b97f4a7c15 ^ k.y*0xbf58476d1ce4e5b9 ^
		k.eps*0x94d049bb133111eb ^ k.k*0xd6e8feb86659fd93 ^ uint64(k.kind)
	h ^= h >> 31
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return c.stripes[h%uint64(len(c.stripes))]
}

func (c *cache) get(kind uint8, q geom.Point, eps float64, k int) (any, bool) {
	return c.getKey(c.key(kind, q, eps, k))
}

// getKey looks up a pre-built key (the cell-identity path builds keys
// without a query point).
func (c *cache) getKey(k cacheKey) (any, bool) {
	s := c.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// generation snapshots the invalidation generation; callers read it
// before computing an answer and hand it back to put.
func (c *cache) generation() uint64 { return c.gen.Load() }

// invalidate flushes every entry and advances the generation. The bump
// happens first: any put that read the old generation is dropped, and a
// put racing the stripe sweep either lands before the sweep's lock
// (cleared) or re-checks the generation under its own lock (dropped).
func (c *cache) invalidate() {
	c.gen.Add(1)
	for _, s := range c.stripes {
		s.mu.Lock()
		n := s.ll.Len()
		s.ll.Init()
		s.items = make(map[cacheKey]*list.Element)
		s.mu.Unlock()
		c.total.Add(int64(-n))
	}
}

func (c *cache) put(kind uint8, q geom.Point, eps float64, k int, val any, gen uint64) {
	c.putKey(c.key(kind, q, eps, k), val, gen)
}

// putKey installs val under a pre-built key.
func (c *cache) putKey(k cacheKey, val any, gen uint64) {
	s := c.stripe(k)
	s.mu.Lock()
	if gen != c.gen.Load() {
		// The answer predates an invalidation; caching it would resurrect
		// a stale entry.
		s.mu.Unlock()
		return
	}
	if el, ok := s.items[k]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[k] = s.ll.PushFront(&cacheEntry{key: k, val: val})
	s.mu.Unlock()
	// Evict only while the cache as a whole is over capacity. Concurrent
	// over-capacity puts may each evict one entry (or skip, see
	// evictOne), so occupancy stays within the capacity plus or minus
	// the number of in-flight puts.
	if c.total.Add(1) > c.capacity {
		c.evictOne()
	}
}

// evictOne removes one LRU tail, scanning the stripes round-robin from a
// rotating start so eviction pressure spreads across the cache instead
// of pinning stripe quotas at whatever distribution first filled it.
// Singleton stripes are never victims — any goroutine's fresh insert may
// be the lone entry of an under-filled stripe, and evicting it would
// make that key uncacheable. A suitable victim always exists when the
// cache is over capacity and counts are quiescent (stripes ≤ capacity,
// so by pigeonhole some stripe holds ≥ 2 entries); if a concurrent
// racer drains every candidate mid-scan, the eviction is skipped and the
// next over-capacity put settles the bound (transient overshoot is at
// most the number of concurrent puts).
func (c *cache) evictOne() {
	n := len(c.stripes)
	start := int(c.clock.Add(1) % int64(n))
	for i := 0; i < n; i++ {
		st := c.stripes[(start+i)%n]
		st.mu.Lock()
		if st.ll.Len() > 1 {
			oldest := st.ll.Back()
			st.ll.Remove(oldest)
			delete(st.items, oldest.Value.(*cacheEntry).key)
			st.mu.Unlock()
			c.total.Add(-1)
			return
		}
		st.mu.Unlock()
	}
}

// stats sums the hit/miss counters across stripes.
func (c *cache) stats() (hits, misses uint64) {
	for _, s := range c.stripes {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// len returns the total number of cached entries (tests/diagnostics).
func (c *cache) len() int {
	n := 0
	for _, s := range c.stripes {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
