// Package engine is the unified query-execution layer: every index
// structure of the library — the Lemma 2.1 oracle, the V≠0 diagrams
// (Theorems 2.5/2.14), the two-stage structures (Theorems 3.1/3.2 and
// their L∞/L1 variants), the probabilistic Voronoi diagram V_Pr
// (Theorem 4.2), the Monte-Carlo index (Theorems 4.3/4.5), the spiral
// search (Theorem 4.7) and the expected-distance index ([AESZ12]) —
// adapts to one Index interface, so a single driver can build any
// backend, fan a query stream across a worker pool, and cache answers.
//
// The registered query kinds mirror the query semantics of the papers:
//
//   - QueryNonzero: NN≠0(q), the indices with π_i(q) > 0 (Section 2/3);
//   - QueryProbs: sparse quantification probabilities π_i(q) (Section 4);
//   - QueryExpected: the expected-distance NN (the [AESZ12] semantics);
//   - QueryTopK: the k most-likely nearest neighbors ranked by π_i(q)
//     (the NNU-II top-k semantics), derived from any π-capable backend.
//
// Each kind is one entry of the kind registry (kinds.go): its capability
// bit, cost-model term, cache-key canonicalization, Stats slot and
// dispatch all come from the registry, so a new kind is one registry
// entry plus its backend implementations. A backend implements the
// subset it supports and reports the rest through Capabilities;
// unsupported kinds return ErrUnsupported.
package engine

import (
	"errors"
	"fmt"
	"strings"

	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// Capability is a bitmask of the query kinds a backend supports.
// Capabilities may depend on the dataset (e.g. the brute backend answers
// QueryProbs only for discrete inputs), so they are authoritative only
// after Build.
type Capability uint8

const (
	// CapNonzero marks support for NN≠0 queries.
	CapNonzero Capability = 1 << iota
	// CapProbs marks support for quantification-probability queries.
	CapProbs
	// CapExpected marks support for expected-distance NN queries.
	CapExpected
	// CapTopK marks support for top-k most-likely-NN queries (ranking by
	// π, so every π-capable backend supports it).
	CapTopK
)

// The QueryKind names alias the capability bits when one is used as a
// Request.Kind: a registered kind IS its capability bit, so the same
// value both selects the query method and gates it per backend.
const (
	// QueryKindNonzero requests NN≠0(q) (Lemma 2.1 semantics).
	QueryKindNonzero = CapNonzero
	// QueryKindProbs requests the quantification probabilities π_i(q).
	QueryKindProbs = CapProbs
	// QueryKindExpected requests the expected-distance NN ([AESZ12]).
	QueryKindExpected = CapExpected
	// QueryKindTopK requests the top-k most-likely-NN query (NNU-II
	// semantics): the k indices with the largest π_i(q), ranked by
	// probability descending with index-ascending tie-break.
	QueryKindTopK = CapTopK
)

// Has reports whether c includes all capabilities in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String renders the capability set in registry order.
func (c Capability) String() string {
	var parts []string
	for i := range kindTable {
		if c.Has(kindTable[i].cap) {
			parts = append(parts, kindTable[i].name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ErrUnsupported is returned by a query method the backend does not
// support (for its dataset).
var ErrUnsupported = errors.New("engine: query kind unsupported by backend")

// Dataset is the uniform input handed to every backend's Build. Points
// is always populated; the specialized views are filled in when the
// input admits them (all-discrete, all-disk, squares) and backends that
// need a specialization error out when it is absent.
type Dataset struct {
	// Points is the generic uncertain-point view (always non-empty).
	Points []uncertain.Point
	// Discrete is set iff every point is a *uncertain.Discrete.
	Discrete []*uncertain.Discrete
	// Disks is set iff every point is a disk uncertainty region
	// (uncertain.UniformDisk or *uncertain.TruncGauss: NN≠0 depends only
	// on the region, see the remark after Eq. (3)).
	Disks []geom.Disk
	// Squares is set only by FromSquares, for the L∞/L1 backends.
	Squares []lmetric.Square
}

// N returns the number of uncertain points.
func (ds *Dataset) N() int {
	if len(ds.Points) > 0 {
		return len(ds.Points)
	}
	return len(ds.Squares)
}

// FromPoints builds a Dataset from generic uncertain points, detecting
// the discrete and disk specializations by type.
func FromPoints(pts []uncertain.Point) *Dataset {
	ds := &Dataset{Points: pts}
	discrete := make([]*uncertain.Discrete, 0, len(pts))
	disks := make([]geom.Disk, 0, len(pts))
	for _, p := range pts {
		switch v := p.(type) {
		case *uncertain.Discrete:
			discrete = append(discrete, v)
		case uncertain.UniformDisk:
			disks = append(disks, v.D)
		case *uncertain.TruncGauss:
			disks = append(disks, v.D)
		}
	}
	if len(discrete) == len(pts) {
		ds.Discrete = discrete
	}
	if len(disks) == len(pts) {
		ds.Disks = disks
	}
	return ds
}

// FromDiscrete builds a Dataset from discrete uncertain points.
func FromDiscrete(pts []*uncertain.Discrete) *Dataset {
	gen := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		gen[i] = p
	}
	return &Dataset{Points: gen, Discrete: pts}
}

// FromDisks builds a Dataset from disk uncertainty regions (uniform pdf;
// the pdf is irrelevant for NN≠0 queries).
func FromDisks(disks []geom.Disk) *Dataset {
	gen := make([]uncertain.Point, len(disks))
	for i, d := range disks {
		gen[i] = uncertain.UniformDisk{D: d}
	}
	return &Dataset{Points: gen, Disks: disks}
}

// FromSquares builds a Dataset of L∞ balls (or L1 diamonds) for the
// lmetric backends. Only the square-aware backends accept it.
func FromSquares(squares []lmetric.Square) *Dataset {
	return &Dataset{Squares: squares}
}

// Index is the common interface every adapted structure satisfies.
// Build must be called exactly once before any query; Capabilities is
// authoritative after Build. All query methods must be safe for
// concurrent use after Build (the batch executor relies on it).
type Index interface {
	// Name identifies the backend (stable, machine-readable).
	Name() string
	// Capabilities reports the supported query kinds for the built
	// dataset.
	Capabilities() Capability
	// Build constructs the underlying structure for ds.
	Build(ds *Dataset) error
	// QueryNonzero returns NN≠0(q), sorted ascending.
	QueryNonzero(q geom.Point) ([]int, error)
	// QueryProbs returns sparse quantification probabilities, sorted by
	// index. eps is the per-entry additive error knob for approximating
	// backends (≤ 0 selects the backend's build-time default); exact
	// backends ignore it.
	QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error)
	// QueryExpected returns the expected-distance NN and its expected
	// distance.
	QueryExpected(q geom.Point) (int, float64, error)
}

// Backend names an adapted structure.
type Backend string

// The adapted backends.
const (
	BackendBrute            Backend = "brute"             // Lemma 2.1 oracle + Eq. (2) sweep
	BackendDiagram          Backend = "diagram"           // V≠0 diagram, Thm 2.5/2.14 + 2.11
	BackendTwoStageDisks    Backend = "twostage-disks"    // Thm 3.1
	BackendTwoStageDiscrete Backend = "twostage-discrete" // Thm 3.2
	BackendVPr              Backend = "vpr"               // Thm 4.2
	BackendMonteCarlo       Backend = "montecarlo"        // Thm 4.3/4.5
	BackendSpiral           Backend = "spiral"            // Thm 4.7
	BackendExpected         Backend = "expected"          // [AESZ12]
	BackendTwoStageLinf     Backend = "twostage-linf"     // Thm 3.1 remark, L∞
	BackendTwoStageL1       Backend = "twostage-l1"       // Thm 3.1 remark, L1
)

// Backends lists every adapted backend in registry order.
func Backends() []Backend {
	return []Backend{
		BackendBrute, BackendDiagram, BackendTwoStageDisks,
		BackendTwoStageDiscrete, BackendVPr, BackendMonteCarlo,
		BackendSpiral, BackendExpected, BackendTwoStageLinf,
		BackendTwoStageL1,
	}
}

// NewIndex returns an unbuilt Index for the named backend.
func NewIndex(b Backend, opt BuildOptions) (Index, error) {
	opt = opt.withDefaults()
	switch b {
	case BackendBrute:
		return &bruteIndex{opt: opt}, nil
	case BackendDiagram:
		return &diagramIndex{opt: opt}, nil
	case BackendTwoStageDisks:
		return &twoStageDisksIndex{}, nil
	case BackendTwoStageDiscrete:
		return &twoStageDiscreteIndex{}, nil
	case BackendVPr:
		return &vprIndex{opt: opt}, nil
	case BackendMonteCarlo:
		return &monteCarloIndex{opt: opt}, nil
	case BackendSpiral:
		return &spiralIndex{opt: opt}, nil
	case BackendExpected:
		return &expectedIndex{}, nil
	case BackendTwoStageLinf:
		return &linfIndex{}, nil
	case BackendTwoStageL1:
		return &l1Index{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown backend %q", b)
	}
}

// Build constructs a ready-to-query Index for the named backend. The
// returned index carries a cache-quantum hint (see Options.CacheQuantum):
// backends with real cell geometry report their own, everything else
// falls back to the dataset-spacing estimate.
func Build(b Backend, ds *Dataset, opt BuildOptions) (Index, error) {
	ix, err := NewIndex(b, opt)
	if err != nil {
		return nil, err
	}
	if err := ix.Build(ds); err != nil {
		return nil, fmt.Errorf("engine: build %s: %w", b, err)
	}
	return withQuantumHint(ix, ds), nil
}

// hintedIndex attaches the dataset-derived cache-quantum hint and the
// dataset size to a built adapter; every Index method is forwarded by
// embedding.
type hintedIndex struct {
	Index
	hint float64
	n    int
	// ds is the built dataset, retained for snapshot export (the adapters
	// behind the wrapper do not all keep a handle to it).
	ds *Dataset
}

// QuantumHint implements quantumHinter.
func (h hintedIndex) QuantumHint() float64 { return h.hint }

// Len reports the dataset size (Engine.ObserveInto reads it to fit
// latency observations back into the cost model).
func (h hintedIndex) Len() int { return h.n }

// withQuantumHint wraps the built ix with its cache-quantum hint — the
// adapter's own (computed from built geometry, e.g. the diagram's slab
// widths) when it has one, the autoQuantum estimate of ds otherwise —
// plus the dataset size for the latency-observation feedback loop.
func withQuantumHint(ix Index, ds *Dataset) Index {
	h := hintedIndex{Index: ix, hint: autoQuantum(ds), n: ds.N(), ds: ds}
	if qh, ok := ix.(quantumHinter); ok {
		if q := qh.QuantumHint(); q > 0 {
			h.hint = q
		}
	}
	return h
}
