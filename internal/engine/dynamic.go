// The dynamic shard layer: Insert/Delete on a built ShardedIndex with
// incremental rebalancing, so streaming workloads (sensors that move,
// fleets that grow or shrink) are served without full rebuilds — the
// moving-uncertain-data setting of the probabilistic-Voronoi line of
// work, and the dynamic-indexability concern the paper leaves open.
//
// Mutations route to the owning shard by centroid, maintain the global
// id remap (global indices stay dense: Delete(i) shifts every index
// above i down by one, exactly like deleting from a slice) and the
// per-shard bounding boxes, and rebuild only the affected shards'
// backends. A shard whose size drifts past 2× the per-shard target
// splits in two (kd-median on its own centroids); one that falls below
// ½× merges with its nearest spatial neighbor. The target itself tracks
// the live dataset: it is re-derived as ⌈n/k⌉ of the current size with
// ±50% hysteresis (see retarget), so a stream that grows the dataset
// 100× keeps about k shards of growing size instead of fragmenting into
// 100× more shards than cores. Everything is serialized against
// in-flight queries by the RWMutex epoch in ShardedIndex.
package engine

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/uncertain"
)

// ErrImmutable is returned by Engine.Insert/Delete when the wrapped
// index does not support mutations (every monolithic backend).
var ErrImmutable = errors.New("engine: backend does not support mutations")

// Item is one insertion payload. Exactly one field is set, matching the
// dataset kind the index was built over: Point for point datasets,
// Square for squares/diamonds datasets (FromSquares). Inserts that
// would change the dataset kind — e.g. a continuous point into an
// all-discrete dataset — are rejected rather than silently degrading
// the capability set mid-stream.
type Item struct {
	Point  uncertain.Point
	Square *lmetric.Square
}

// Mutable is the dynamic-index contract: ShardedIndex implements it,
// monolithic backends do not. Insert returns the new item's global
// index (always the new Len()-1: inserts append). Delete(i) removes
// item i, shifts the indices above it down by one, and returns the
// live count — taken under the same write lock as the mutation, so it
// is exact even with concurrent mutators.
type Mutable interface {
	Insert(Item) (int, error)
	Delete(i int) (int, error)
	// Epoch returns the number of applied mutations.
	Epoch() uint64
	// Len returns the live item count.
	Len() int
}

// Epoch implements Mutable.
func (sx *ShardedIndex) Epoch() uint64 {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return sx.epoch
}

// Len implements Mutable.
func (sx *ShardedIndex) Len() int {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return sx.n
}

// diskOf extracts the disk uncertainty region of a point, for datasets
// carrying the Disks view.
func diskOf(p uncertain.Point) (geom.Disk, bool) {
	switch v := p.(type) {
	case uncertain.UniformDisk:
		return v.D, true
	case *uncertain.TruncGauss:
		return v.D, true
	}
	return geom.Disk{}, false
}

// ensureOwned clones the dataset views on the first mutation, so the
// dynamic layer never mutates slices the caller handed to Build.
func (sx *ShardedIndex) ensureOwned() {
	if sx.owned {
		return
	}
	sx.ds = &Dataset{
		Points:   slices.Clone(sx.ds.Points),
		Discrete: slices.Clone(sx.ds.Discrete),
		Disks:    slices.Clone(sx.ds.Disks),
		Squares:  slices.Clone(sx.ds.Squares),
	}
	sx.owned = true
}

// Insert implements Mutable: a one-mutation batch through the
// epoch-coalesced path (mutlog.go) — append the item at global index n,
// route it to the nearest shard by centroid (or the insert buffer when
// enabled), rebuild the touched shard's backend once, and rebalance.
func (sx *ShardedIndex) Insert(it Item) (int, error) {
	res, err := sx.BatchMutate([]Mutation{InsertMutation(it)})
	if err != nil {
		return -1, err
	}
	return res[0], nil
}

// poison marks the index broken after a mutation failed past the point
// of no return (dataset and id remap already updated, a shard backend
// not rebuilt): answers would silently misattribute items, so every
// later query and mutation reports this error instead. Backend builds
// only fail on structurally impossible sub-datasets, so hitting this
// means the factory itself is faulty — there is no safe automatic
// rollback.
func (sx *ShardedIndex) poison(err error) error {
	sx.broken = fmt.Errorf("sharded(%s): index poisoned by failed mutation: %w", sx.name, err)
	return sx.broken
}

// Delete implements Mutable: a one-mutation batch through the
// epoch-coalesced path (mutlog.go) — remove global item i, remap every
// index above it, rebuild the owning shard's backend once, and
// rebalance (an emptied shard is dropped, an underfull one merges with
// its nearest spatial neighbor, re-splitting if the merge overshoots).
// The returned count is the live size right after this mutation.
func (sx *ShardedIndex) Delete(i int) (int, error) {
	res, err := sx.BatchMutate([]Mutation{DeleteMutation(i)})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// retarget tracks the per-shard size target against the live dataset
// size: the ideal is ⌈n/k⌉ for the configured shard count k, and the
// stored target snaps to it only when it drifts past ±50% (above 1.5×
// or below ⅔× the current target). The hysteresis band keeps a stream
// that hovers around one size from re-deriving the target — and
// re-judging every shard — on each mutation, while a sustained trend
// ratchets the target along with the data, so very long streams keep
// about k shards instead of fragmenting (the target used to be frozen
// at build time). Reports whether the target shrank, in which case the
// caller must re-establish the ≤ 2×target bound (splitOversized).
func (sx *ShardedIndex) retarget() (shrunk bool) {
	k := sx.opt.Shards
	if k < 1 {
		k = 1
	}
	want := (sx.n + k - 1) / k
	if want < 1 {
		want = 1
	}
	switch {
	case 2*want > 3*sx.target:
		sx.target = want
	case 3*want < 2*sx.target:
		sx.target = want
		return true
	}
	return false
}

// splitOversized restores the per-shard size invariant after the target
// shrank: every shard beyond 2× the new target splits (repeatedly —
// each split halves, so a shard sized against the old target settles in
// O(log ratio) rounds).
func (sx *ShardedIndex) splitOversized() error {
	for si := 0; si < len(sx.shards); si++ {
		for len(sx.shards[si].ids) > 2*sx.target {
			if err := sx.splitShard(si); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkItem validates a mutation payload against the dataset kind.
func (sx *ShardedIndex) checkItem(it Item) error {
	if sx.ds.Squares != nil {
		if it.Square == nil {
			return fmt.Errorf("sharded(%s): dataset holds squares; Insert needs Item.Square", sx.name)
		}
		return nil
	}
	if it.Point == nil {
		return fmt.Errorf("sharded(%s): dataset holds uncertain points; Insert needs Item.Point", sx.name)
	}
	if sx.ds.Discrete != nil {
		if _, ok := it.Point.(*uncertain.Discrete); !ok {
			return fmt.Errorf("sharded(%s): dataset is all-discrete; inserting a %T would drop the discrete specialization (and its capabilities)", sx.name, it.Point)
		}
	}
	if sx.ds.Disks != nil {
		if _, ok := diskOf(it.Point); !ok {
			return fmt.Errorf("sharded(%s): dataset is all-disk; inserting a %T would drop the disk specialization", sx.name, it.Point)
		}
	}
	return nil
}

// routeShard picks the owning shard for a new centroid: the non-empty
// shard with the smallest bounding-box distance (ties to the lowest
// index, for determinism).
func (sx *ShardedIndex) routeShard(c geom.Point) int {
	best, bestD := -1, 0.0
	for si, s := range sx.shards {
		if len(s.ids) == 0 {
			continue
		}
		d := sx.metric.rectDist(c, s.bbox)
		if best < 0 || d < bestD {
			best, bestD = si, d
		}
	}
	return best
}

// refreshBounds recomputes a shard's bounding box from its members
// (boxes only grow under Union, so deletions need the full recompute).
func (sx *ShardedIndex) refreshBounds(s *shard) {
	s.bbox = geom.EmptyRect()
	for _, i := range s.ids {
		s.bbox = s.bbox.Union(itemBounds(sx.ds, i))
	}
}

// rebuildShard re-projects the shard's sub-dataset and rebuilds its
// backend; only mutated shards pay this cost. The replaced backend's
// SoA mirror goes back to the recycle pool — the write lock excludes
// queries, so nothing can still be reading it — keeping sustained churn
// (the insert buffer rebuilds on every insert) off the allocator.
func (sx *ShardedIndex) rebuildShard(s *shard) error {
	s.sub = subset(sx.ds, s.ids)
	old := s.ix
	ix, err := sx.shardFactory(s.sub)
	if err != nil {
		return fmt.Errorf("sharded(%s): rebuild shard: %w", sx.name, err)
	}
	s.ix = ix
	if ob, ok := old.(*bruteIndex); ok && ob.flat != nil {
		recycleShardFlat(ob.flat)
		ob.flat = nil
	}
	return nil
}

// shardFactory builds the backend for one shard's sub-dataset. With
// ShardOptions.Adaptive it applies the per-shard backend choice; the
// default is the configured backend.
func (sx *ShardedIndex) shardFactory(sub *Dataset) (Index, error) {
	if sx.opt.Adaptive && sx.backend != "" {
		if b, ok := adaptiveBackend(sx.backend, sub, sx.opt.AdaptiveCutoff); ok {
			return Build(b, sub, sx.bopt)
		}
	}
	return sx.factory(sub)
}

// adaptiveBackend picks the per-shard backend under the legacy
// WithShardAdaptive rule: brute at or below the cutoff (cheap rebuilds
// under churn), the kind's two-stage structure above it. The cost-based
// generalization is the per-shard planner (BuildPlanned re-plans every
// shard at its own size); this fixed rule remains for handles that pin a
// named backend. A swap is made only when the candidate's capability set
// (datasetCaps, shared with the planner's candidacy test) contains the
// configured backend's — capabilities may grow (their intersection
// across shards is unchanged) but never shrink.
func adaptiveBackend(conf Backend, sub *Dataset, cutoff int) (Backend, bool) {
	var cand Backend
	if sub.N() <= cutoff {
		cand = BackendBrute
		if len(sub.Points) == 0 {
			return "", false // squares: brute cannot build
		}
	} else {
		switch {
		case sub.Disks != nil:
			cand = BackendTwoStageDisks
		case sub.Discrete != nil:
			cand = BackendTwoStageDiscrete
		default:
			return "", false
		}
	}
	if cand == conf {
		return "", false
	}
	if !datasetCaps(cand, sub).Has(datasetCaps(conf, sub)) {
		return "", false
	}
	return cand, true
}

// splitShard halves shard si by the kd-median cut on its own centroids
// and builds the two replacement backends in parallel (si's own backend
// is never rebuilt first — it is replaced wholesale).
func (sx *ShardedIndex) splitShard(si int) error {
	s := sx.shards[si]
	// The 2-cut allots ⌊len/2⌋ and ⌈len/2⌉ members, so both halves are
	// non-empty for any shard large enough to split.
	groups := kdMedianSplit(sx.ds, slices.Clone(s.ids), 2)
	halves := make([]*shard, len(groups))
	for gi, g := range groups {
		sort.Ints(g)
		h := &shard{ids: g}
		sx.refreshBounds(h)
		halves[gi] = h
	}
	var wg sync.WaitGroup
	errs := make([]error, len(halves))
	for hi, h := range halves {
		wg.Add(1)
		go func(hi int, h *shard) {
			defer wg.Done()
			errs[hi] = sx.rebuildShard(h)
		}(hi, h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sx.shards = append(sx.shards[:si], append(halves, sx.shards[si+1:]...)...)
	return nil
}

// mergeShard folds shard si into its nearest non-empty neighbor (by
// bounding-box center distance) and rebuilds the union; if the merged
// shard overshoots 2×target it is immediately re-split. The caller
// skips si's own rebuild, so when no partner exists (si is the only
// non-empty shard) si itself is rebuilt here. Shards this call rebuilds
// are removed from dirty (nil is fine), so the epoch finisher never
// builds them a second time.
func (sx *ShardedIndex) mergeShard(si int, dirty map[*shard]bool) error {
	s := sx.shards[si]
	c := s.bbox.Center()
	best, bestD := -1, 0.0
	for ti, t := range sx.shards {
		if ti == si || len(t.ids) == 0 {
			continue
		}
		d := c.Dist(t.bbox.Center())
		if best < 0 || d < bestD {
			best, bestD = ti, d
		}
	}
	if best < 0 {
		delete(dirty, s)
		return sx.rebuildShard(s)
	}
	t := sx.shards[best]
	merged := make([]int, 0, len(s.ids)+len(t.ids))
	merged = append(merged, s.ids...)
	merged = append(merged, t.ids...)
	sort.Ints(merged)
	t.ids = merged
	sx.refreshBounds(t)
	if err := sx.rebuildShard(t); err != nil {
		return err
	}
	delete(dirty, s)
	delete(dirty, t)
	s.sub, s.ix = nil, nil
	sx.shards = append(sx.shards[:si], sx.shards[si+1:]...)
	ti := best
	if best > si {
		ti--
	}
	// The union can overshoot 2×target (and, when the partner had
	// already grown this epoch, even 4×target), so split until every
	// piece honors the bound.
	return sx.splitUntilBounded(ti, dirty)
}

// --- Engine-level mutation wrappers ----------------------------------------

// Mutable reports whether the wrapped index accepts Insert/Delete.
func (e *Engine) Mutable() bool {
	_, ok := e.ix.(Mutable)
	return ok
}

// Epoch returns the wrapped index's mutation epoch (0 for immutable
// backends).
func (e *Engine) Epoch() uint64 {
	if m, ok := e.ix.(Mutable); ok {
		return m.Epoch()
	}
	return 0
}

// Insert routes an insertion to a mutable index and closes the
// engine-side epoch (cache flush + adaptive-quantum refresh). The flush
// happens even when the mutation errors — a failure past the point of
// no return poisons the index, and a stale cache hit would otherwise
// dodge the broken-index error that misses see.
func (e *Engine) Insert(it Item) (int, error) {
	m, ok := e.ix.(Mutable)
	if !ok {
		return -1, fmt.Errorf("%w: %s", ErrImmutable, e.ix.Name())
	}
	gi, err := m.Insert(it)
	e.afterMutation()
	return gi, err
}

// Delete routes a deletion to a mutable index and invalidates the
// answer cache. Indices are dense: deleting i shifts later items down.
func (e *Engine) Delete(i int) error {
	_, err := e.deleteN(i)
	return err
}

// deleteN is Delete returning the live count taken under the
// mutation's own write lock (the Serve stream reports it in Answer.N).
// Like Insert, it flushes the cache even on error (poison safety).
func (e *Engine) deleteN(i int) (int, error) {
	m, ok := e.ix.(Mutable)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrImmutable, e.ix.Name())
	}
	n, err := m.Delete(i)
	e.afterMutation()
	return n, err
}

// BatchMutate applies a mutation burst through the epoch-coalesced path
// of a batch-mutable index (ShardedIndex): the whole batch runs under
// one write lock, each touched shard rebuilds once, and the engine-side
// epoch (cache flush + adaptive-quantum refresh) closes once for the
// burst instead of once per item. Results are per mutation: the
// assigned global index for inserts, the live count for deletes.
func (e *Engine) BatchMutate(ms []Mutation) ([]int, error) {
	bm, ok := e.ix.(BatchMutable)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrImmutable, e.ix.Name())
	}
	if len(ms) == 0 {
		return nil, nil // a guaranteed no-op must not flush a hot cache
	}
	res, err := bm.BatchMutate(ms)
	e.afterMutation()
	return res, err
}

// afterMutation closes one engine-side mutation epoch: re-derive the
// adaptive cache quantum, then flush the answer cache (every cached
// answer may change when the dataset does). The tighten MUST precede
// the flush — in the other order a concurrent miss could key an entry
// under the old coarse grid after the flush and have it survive, mixing
// two grids in one cache. The flush runs even when the mutation erred —
// see Insert.
func (e *Engine) afterMutation() {
	e.maybeTightenQuantum()
	if e.cache != nil {
		e.cache.invalidate()
	}
}

// maybeTightenQuantum refreshes the adaptive cache quantum after a
// mutation epoch. The quantum was resolved from the built structure at
// Open, but mutations change centroid spacing: a stream that densifies
// the dataset would leave the quantum too coarse, and nearby-but-
// distinct queries would share one cached answer. The refresh is
// monotone — the quantum only tightens — so answer sharing can only get
// more precise mid-stream, never coarser (a coarsening could silently
// glue previously distinct cells together).
func (e *Engine) maybeTightenQuantum() {
	if !e.adaptive {
		return
	}
	var q float64
	switch h := e.ix.(type) {
	case *ShardedIndex:
		// The cheap O(k) source: per-part hints, re-derived by the very
		// rebuilds this mutation paid for. The full QuantumHint would
		// re-estimate over the whole dataset on every mutation.
		q = h.shardQuantumHint()
	case quantumHinter:
		q = h.QuantumHint()
	default:
		return
	}
	cur := e.CacheQuantum()
	if q > 0 && cur > 0 && q < cur {
		e.quantum.Store(math.Float64bits(q))
		if e.cache != nil {
			e.cache.setQuantum(q)
		}
	}
}
