package engine

import (
	"fmt"
	"strings"

	"unn/internal/geom"
	"unn/internal/quantify"
)

// routedIndex combines several backends into one Index whose capability
// set is their union: each query kind is delegated to the first part
// that supports it. It backs the automatic backend selection for
// datasets no single backend fully covers (e.g. continuous points,
// where the brute oracle answers NN≠0 but only Monte Carlo can
// quantify).
type routedIndex struct {
	parts []Index
	caps  Capability
	hint  float64
	n     int
	ds    *Dataset // retained for snapshot export
}

func (r *routedIndex) Name() string {
	names := make([]string, len(r.parts))
	for i, p := range r.parts {
		names[i] = p.Name()
	}
	return "auto(" + strings.Join(names, "+") + ")"
}

func (r *routedIndex) Capabilities() Capability { return r.caps }

func (r *routedIndex) Build(ds *Dataset) error {
	r.caps = 0
	for _, p := range r.parts {
		if err := p.Build(ds); err != nil {
			return err
		}
		r.caps |= p.Capabilities()
	}
	r.hint = autoQuantum(ds)
	r.n = ds.N()
	r.ds = ds
	return nil
}

// QuantumHint implements the adaptive cache-quantum hint.
func (r *routedIndex) QuantumHint() float64 { return r.hint }

// Len reports the dataset size (Engine.ObserveInto reads it).
func (r *routedIndex) Len() int { return r.n }

func (r *routedIndex) route(c Capability) Index {
	for _, p := range r.parts {
		if p.Capabilities().Has(c) {
			return p
		}
	}
	return nil
}

// kindBackend reports which part serves kind (Engine.ObserveInto and
// Explain read it).
func (r *routedIndex) kindBackend(kind Capability) (Backend, bool) {
	if p := r.route(kind); p != nil {
		return Backend(p.Name()), true
	}
	return "", false
}

// Explain renders the first-capable routing rule — the baseline the
// cost-based planner (planner.go) replaces.
func (r *routedIndex) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rule-based auto (%s): first capable part answers\n", r.Name())
	for _, kind := range queryKinds() {
		if b, ok := r.kindBackend(kind); ok {
			fmt.Fprintf(&sb, "  %-8s → %s\n", kind, b)
		}
	}
	return sb.String()
}

func (r *routedIndex) QueryNonzero(q geom.Point) ([]int, error) {
	if p := r.route(CapNonzero); p != nil {
		return p.QueryNonzero(q)
	}
	return nil, ErrUnsupported
}

func (r *routedIndex) QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error) {
	if p := r.route(CapProbs); p != nil {
		return p.QueryProbs(q, eps)
	}
	return nil, ErrUnsupported
}

func (r *routedIndex) QueryExpected(q geom.Point) (int, float64, error) {
	if p := r.route(CapExpected); p != nil {
		return p.QueryExpected(q)
	}
	return -1, 0, ErrUnsupported
}

func (r *routedIndex) QueryTopK(q geom.Point, k int, eps float64) ([]quantify.Prob, error) {
	if p := r.route(CapTopK); p != nil {
		return queryTopKOf(p, q, k, eps)
	}
	return nil, ErrUnsupported
}

// autoFactory returns the builder the automatic selection uses for ds:
//
//   - squares → the two-stage L∞ structure (the only family that serves
//     them);
//   - discrete points → the brute reference, which covers all three
//     query kinds exactly;
//   - anything else (continuous or mixed points) → brute for NN≠0
//     routed together with Monte Carlo for quantification, so a probs
//     query never lands on a backend that cannot answer it.
//
// The guarantee is that for every dataset kind, Auto supports every
// query kind that at least one backend could support on that dataset.
func autoFactory(ds *Dataset, bopt BuildOptions) (string, func(*Dataset) (Index, error)) {
	switch {
	case ds.Squares != nil:
		return string(BackendTwoStageLinf), func(sub *Dataset) (Index, error) {
			return Build(BackendTwoStageLinf, sub, bopt)
		}
	case ds.Discrete != nil:
		return string(BackendBrute), func(sub *Dataset) (Index, error) {
			return Build(BackendBrute, sub, bopt)
		}
	default:
		return "brute+montecarlo", func(sub *Dataset) (Index, error) {
			nz, err := NewIndex(BackendBrute, bopt)
			if err != nil {
				return nil, err
			}
			pr, err := NewIndex(BackendMonteCarlo, bopt)
			if err != nil {
				return nil, err
			}
			r := &routedIndex{parts: []Index{nz, pr}}
			if err := r.Build(sub); err != nil {
				return nil, err
			}
			return r, nil
		}
	}
}

// BuildAuto builds the automatically selected backend (or backend
// combination) for ds, sharded when sopt.Shards ≥ 1.
func BuildAuto(ds *Dataset, bopt BuildOptions, sopt ShardOptions) (Index, error) {
	name, factory := autoFactory(ds, bopt)
	if sopt.Shards <= 0 {
		ix, err := factory(ds)
		if err != nil {
			return nil, fmt.Errorf("engine: build auto: %w", err)
		}
		return ix, nil
	}
	sx := newShardedFunc(name, factory, bopt, sopt)
	if ds.Squares != nil {
		sx.metric = metricLinf
	}
	if err := sx.Build(ds); err != nil {
		return nil, fmt.Errorf("engine: build auto: %w", err)
	}
	return sx, nil
}
