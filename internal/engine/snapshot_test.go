package engine

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/uncertain"
)

// roundTrip snapshots e, restores it, and returns the restored engine
// plus the snapshot size.
func roundTrip(t *testing.T, e *Engine) (*Engine, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	re, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return re, buf.Len()
}

// assertParity checks the restored engine answers every supported query
// kind bit-identically to the live one.
func assertParity(t *testing.T, live, restored *Engine, qs []geom.Point) {
	t.Helper()
	if got, want := restored.Explain(), live.Explain(); got != want {
		t.Errorf("Explain diverged after restore:\n--- live ---\n%s--- restored ---\n%s", want, got)
	}
	if got, want := restored.CacheQuantum(), live.CacheQuantum(); got != want {
		t.Errorf("cache quantum %v, want %v", got, want)
	}
	caps := live.Capabilities()
	if got := restored.Capabilities(); got != caps {
		t.Fatalf("capabilities %v, want %v", got, caps)
	}
	for qi, q := range qs {
		if caps.Has(CapNonzero) {
			want, err1 := live.QueryNonzero(q)
			got, err2 := restored.QueryNonzero(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("q%d nonzero errs: live %v restored %v", qi, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q%d nonzero = %v, want %v", qi, got, want)
			}
		}
		if caps.Has(CapProbs) {
			want, err1 := live.QueryProbs(q, 0)
			got, err2 := restored.QueryProbs(q, 0)
			if err1 != nil || err2 != nil {
				t.Fatalf("q%d probs errs: live %v restored %v", qi, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q%d probs = %v, want %v", qi, got, want)
			}
		}
		if caps.Has(CapExpected) {
			wi, wd, err1 := live.QueryExpected(q)
			gi, gd, err2 := restored.QueryExpected(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("q%d expected errs: live %v restored %v", qi, err1, err2)
			}
			if gi != wi || gd != wd {
				t.Fatalf("q%d expected = (%d, %v), want (%d, %v)", qi, gi, gd, wi, wd)
			}
		}
		if caps.Has(CapTopK) {
			want, err1 := live.QueryTopK(q, 3, 0)
			got, err2 := restored.QueryTopK(q, 3, 0)
			if err1 != nil || err2 != nil {
				t.Fatalf("q%d topk errs: live %v restored %v", qi, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q%d topk = %v, want %v", qi, got, want)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5a45))
	disks := FromDisks(constructions.RandomDisks(rng, 60, 40, 0.5, 2.0))
	discrete := FromDiscrete(constructions.RandomDiscrete(rng, 60, 4, 40, 1.0, 1))
	squares := FromSquares(randSquares(rng, 60, 40))
	qs := randQueries(rng, 40, 44)

	cases := []struct {
		name  string
		build func(t *testing.T) *Engine
	}{
		{"sharded-named-disks", func(t *testing.T) *Engine {
			ix, err := BuildSharded(BackendTwoStageDisks, disks, BuildOptions{}, ShardOptions{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{CacheSize: 64, CacheQuantum: -1})
		}},
		{"sharded-named-brute-discrete", func(t *testing.T) *Engine {
			ix, err := BuildSharded(BackendBrute, discrete, BuildOptions{}, ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"sharded-auto-discrete", func(t *testing.T) *Engine {
			ix, err := BuildAuto(discrete, BuildOptions{}, ShardOptions{Shards: 4, Split: SplitGrid})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"sharded-auto-disks-routed", func(t *testing.T) *Engine {
			// Continuous family: each shard is a brute+montecarlo composite,
			// exercising the routed and rebuild restore paths.
			ix, err := BuildAuto(disks, BuildOptions{MCRounds: 16}, ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"sharded-planned-discrete", func(t *testing.T) *Engine {
			ix, _, err := BuildPlanned(discrete, BuildOptions{}, ShardOptions{Shards: 4},
				PlannerOptions{Mix: Workload{Nonzero: 1, Probs: 0.1}})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{CacheSize: 32, CacheQuantum: 0.25})
		}},
		{"sharded-linf", func(t *testing.T) *Engine {
			ix, err := BuildSharded(BackendTwoStageLinf, squares, BuildOptions{}, ShardOptions{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"sharded-l1", func(t *testing.T) *Engine {
			ix, err := BuildSharded(BackendTwoStageL1, squares, BuildOptions{}, ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"sharded-more-shards-than-items", func(t *testing.T) *Engine {
			tiny := FromDiscrete(constructions.RandomDiscrete(rng, 3, 2, 10, 1.0, 1))
			ix, err := BuildSharded(BackendBrute, tiny, BuildOptions{}, ShardOptions{Shards: 8})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"plain-named-disks", func(t *testing.T) *Engine {
			ix, err := Build(BackendTwoStageDisks, disks, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"plain-auto-discrete", func(t *testing.T) *Engine {
			ix, err := BuildAuto(discrete, BuildOptions{}, ShardOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{CacheSize: 16, CacheQuantum: -1})
		}},
		{"plain-auto-disks-routed", func(t *testing.T) *Engine {
			ix, err := BuildAuto(disks, BuildOptions{MCRounds: 16}, ShardOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"plain-planned-discrete", func(t *testing.T) *Engine {
			ix, _, err := BuildPlanned(discrete, BuildOptions{}, ShardOptions{},
				PlannerOptions{Mix: Workload{Nonzero: 1, Expected: 0.5}})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"plain-named-l1", func(t *testing.T) *Engine {
			ix, err := Build(BackendTwoStageL1, squares, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
		{"plain-rebuild-diagram", func(t *testing.T) *Engine {
			small := FromDisks(constructions.RandomDisks(rng, 10, 20, 0.5, 2.0))
			ix, err := Build(BackendDiagram, small, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := tc.build(t)
			restored, _ := roundTrip(t, live)
			assertParity(t, live, restored, qs)
		})
	}
}

func TestSnapshotAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0a75))
	pts := constructions.RandomDiscrete(rng, 80, 3, 40, 1.0, 1)
	build := func() *Engine {
		ix, err := BuildSharded(BackendBrute, FromDiscrete(pts), BuildOptions{},
			ShardOptions{Shards: 4, InsertBuffer: true, FlushThreshold: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(ix, Options{})
	}
	live := build()

	// A burst of batched inserts and deletes, sized to leave the insert
	// buffer non-empty at snapshot time.
	extra := constructions.RandomDiscrete(rng, 12, 3, 40, 1.0, 1)
	var ms []Mutation
	for _, p := range extra {
		ms = append(ms, InsertMutation(Item{Point: p}))
	}
	ms = append(ms, DeleteMutation(5), DeleteMutation(31), DeleteMutation(0))
	if _, err := live.BatchMutate(ms); err != nil {
		t.Fatalf("BatchMutate: %v", err)
	}
	sx := live.Index().(*ShardedIndex)
	if buffered, _, _ := sx.BufferStats(); buffered == 0 {
		t.Fatal("test setup: insert buffer empty at snapshot time")
	}

	restored, _ := roundTrip(t, live)
	qs := randQueries(rng, 50, 44)
	assertParity(t, live, restored, qs)

	// Epoch and buffer counters survive.
	if got, want := restored.Epoch(), live.Epoch(); got != want {
		t.Errorf("epoch = %d, want %d", got, want)
	}
	rsx := restored.Index().(*ShardedIndex)
	lb, li, lf := sx.BufferStats()
	rb, ri, rf := rsx.BufferStats()
	if rb != lb || ri != li || rf != lf {
		t.Errorf("BufferStats = (%d,%d,%d), want (%d,%d,%d)", rb, ri, rf, lb, li, lf)
	}

	// The restored handle stays mutable and tracks the live one through
	// further mutations.
	more := constructions.RandomDiscrete(rng, 5, 2, 40, 1.0, 1)
	var ms2 []Mutation
	for _, p := range more {
		ms2 = append(ms2, InsertMutation(Item{Point: p}))
	}
	ms2 = append(ms2, DeleteMutation(2))
	if _, err := live.BatchMutate(ms2); err != nil {
		t.Fatalf("live BatchMutate: %v", err)
	}
	if _, err := restored.BatchMutate(ms2); err != nil {
		t.Fatalf("restored BatchMutate: %v", err)
	}
	assertParity(t, live, restored, qs)
}

func TestSnapshotRejectsContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	disks := constructions.RandomDisks(rng, 8, 20, 0.5, 2.0)
	pts := make([]uncertain.Point, len(disks))
	for i, d := range disks {
		pts[i] = uncertain.NewTruncGauss(d, 0.5)
	}
	ix, err := BuildAuto(FromPoints(pts), BuildOptions{MCRounds: 8}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ix, Options{})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err == nil {
		t.Fatal("WriteSnapshot accepted a truncated-Gaussian dataset")
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	discrete := FromDiscrete(constructions.RandomDiscrete(rng, 20, 3, 20, 1.0, 1))
	ix, err := BuildSharded(BackendBrute, discrete, BuildOptions{}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, NewEngine(ix, Options{})); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	for cut := 1; cut < len(good); cut += len(good)/17 + 1 {
		if _, err := ReadSnapshot(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Single-byte corruptions must never panic; many will still decode
	// (flipped float payloads are valid), but structural damage must
	// surface as an error, not a crash.
	for pos := 0; pos < len(good); pos += len(good)/101 + 1 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0xff
		_, _ = ReadSnapshot(bytes.NewReader(bad))
	}
}

func FuzzSnapshotDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	discrete := FromDiscrete(constructions.RandomDiscrete(rng, 12, 2, 20, 1.0, 1))
	ix, err := BuildSharded(BackendBrute, discrete, BuildOptions{}, ShardOptions{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, NewEngine(ix, Options{})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	disks := FromDisks(constructions.RandomDisks(rng, 10, 20, 0.5, 2.0))
	ix2, err := Build(BackendTwoStageDisks, disks, BuildOptions{})
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := WriteSnapshot(&buf, NewEngine(ix2, Options{})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-allocate; a successful decode must
		// yield a queryable engine.
		e, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if e.Capabilities().Has(CapNonzero) {
			_, _ = e.QueryNonzero(geom.Pt(1, 2))
		}
	})
}
