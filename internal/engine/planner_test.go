package engine

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// plannerDataset is one dataset kind of the parity sweep.
type plannerDataset struct {
	name string
	ds   *Dataset
	side float64
	bopt BuildOptions
	// piTol is the π tolerance for sharded composites (k ≥ 1); the
	// monolithic tolerance is derived from the plan's chosen backend.
	piTol float64
	// piRef answers the reference π vector (nil when no reference exists
	// for this dataset kind).
	piRef func(q geom.Point) []quantify.Prob
	// nzRef answers the reference NN≠0 set.
	nzRef func(q geom.Point) []int
	// edRef answers the reference expected-distance NN (dist = NaN when
	// the kind has no E[d] semantics).
	edRef func(q geom.Point) (int, float64)
}

func plannerDatasets(t *testing.T) []plannerDataset {
	t.Helper()
	rng := rand.New(rand.NewSource(0x91a9))
	var out []plannerDataset

	// Discrete: the brute reference answers all three kinds exactly.
	{
		pts := constructions.RandomDiscrete(rng, 60, 3, 90, 2.0, 1)
		ds := FromDiscrete(pts)
		out = append(out, plannerDataset{
			name: "discrete", ds: ds, side: 90,
			// Sharded discrete π goes through the exact Eq. (2) merge path
			// whatever the per-shard backends, so parity is bit-level.
			piTol: 1e-9,
			piRef: func(q geom.Point) []quantify.Prob { return quantify.ExactPositive(pts, q) },
			nzRef: func(q geom.Point) []int { return bruteNonzero(ds, q) },
			edRef: func(q geom.Point) (int, float64) {
				best, bestD := -1, math.Inf(1)
				for i, p := range pts {
					if d := p.ExpectedDist(q); d < bestD {
						best, bestD = i, d
					}
				}
				return best, bestD
			},
		})
	}

	// Disks: NN≠0 only.
	{
		disks := constructions.RandomDisks(rng, 40, 70, 0.5, 2.0)
		ds := FromDisks(disks)
		out = append(out, plannerDataset{
			name: "disks", ds: ds, side: 70,
			nzRef: func(q geom.Point) []int { return bruteNonzero(ds, q) },
		})
	}

	// Continuous mixed (disk + truncated-Gaussian regions): NN≠0 via the
	// oracle, π only by Monte Carlo — the planner must still compose a
	// full-capability answer for both, and the sharded merge stays within
	// a Monte-Carlo tolerance of the monolithic estimate.
	{
		pts := make([]uncertain.Point, 16)
		for i := range pts {
			d := geom.DiskAt(rng.Float64()*50, rng.Float64()*50, 1.5+rng.Float64()*2)
			if i%2 == 0 {
				pts[i] = uncertain.UniformDisk{D: d}
			} else {
				pts[i] = uncertain.NewTruncGauss(d, d.R/2)
			}
		}
		ds := FromPoints(pts)
		bopt := BuildOptions{MCRounds: 768}
		mono, err := Build(BackendMonteCarlo, ds, bopt)
		if err != nil {
			t.Fatalf("continuous reference: %v", err)
		}
		out = append(out, plannerDataset{
			name: "continuous", ds: ds, side: 50, bopt: bopt,
			piTol: 0.2,
			piRef: func(q geom.Point) []quantify.Prob {
				ps, err := mono.QueryProbs(q, 0)
				if err != nil {
					t.Fatalf("continuous reference query: %v", err)
				}
				return ps
			},
			nzRef: func(q geom.Point) []int { return bruteNonzero(ds, q) },
		})
	}

	// Squares (L∞): only the lmetric family serves them; the reference is
	// the monolithic two-stage L∞ structure.
	{
		sq := make([]lmetric.Square, 30)
		for i := range sq {
			sq[i] = lmetric.Square{C: geom.Pt(rng.Float64()*60, rng.Float64()*60), R: 0.4 + rng.Float64()}
		}
		ds := FromSquares(sq)
		mono, err := Build(BackendTwoStageLinf, ds, BuildOptions{})
		if err != nil {
			t.Fatalf("squares reference: %v", err)
		}
		out = append(out, plannerDataset{
			name: "squares", ds: ds, side: 60,
			nzRef: func(q geom.Point) []int {
				nz, err := mono.QueryNonzero(q)
				if err != nil {
					t.Fatalf("squares reference query: %v", err)
				}
				return nz
			},
		})
	}
	return out
}

// bruteNonzero runs the Lemma 2.1 oracle through the brute backend.
func bruteNonzero(ds *Dataset, q geom.Point) []int {
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		panic(err)
	}
	nz, err := ix.QueryNonzero(q)
	if err != nil {
		panic(err)
	}
	return nz
}

// probsWithin asserts two sparse π vectors agree within tol on the union
// of their supports.
func probsWithin(t *testing.T, tag string, got, want []quantify.Prob, tol float64) {
	t.Helper()
	gm := map[int]float64{}
	for _, p := range got {
		gm[p.I] = p.P
	}
	wm := map[int]float64{}
	for _, p := range want {
		wm[p.I] = p.P
	}
	for i, g := range gm {
		if math.Abs(g-wm[i]) > tol {
			t.Fatalf("%s: π[%d] = %v, want %v (±%v)", tag, i, g, wm[i], tol)
		}
	}
	for i, w := range wm {
		if math.Abs(w-gm[i]) > tol {
			t.Fatalf("%s: π[%d] = %v (missing), want %v (±%v)", tag, i, gm[i], w, tol)
		}
	}
}

// monoPiTol maps the monolithic plan's chosen π backend to its parity
// tolerance: exact backends are bit-level, the spiral's additive-eps
// guarantee gets eps plus slack, Monte Carlo its sampling noise.
func monoPiTol(b Backend) float64 {
	switch b {
	case BackendBrute, BackendVPr:
		return 1e-9
	case BackendSpiral:
		return 0.05
	default:
		return 0.25
	}
}

// TestPlannerParity: every planner-chosen composite must stay
// bit-identical to the brute reference on NN≠0 and within eps on π and
// E[d], across all dataset kinds and shard counts k ∈ {1, 2, 4, 7}
// (plus the monolithic composite), whatever backends the calibration
// picked on this machine.
func TestPlannerParity(t *testing.T) {
	for _, pd := range plannerDatasets(t) {
		pd := pd
		t.Run(pd.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xbeef ^ int64(len(pd.name))))
			qs := randQueries(rng, 24, pd.side)
			for _, k := range []int{0, 1, 2, 4, 7} {
				ix, plan, err := BuildPlanned(pd.ds, pd.bopt, ShardOptions{Shards: k}, PlannerOptions{})
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if len(plan.Choices) == 0 {
					t.Fatalf("k=%d: empty plan", k)
				}
				caps := ix.Capabilities()
				if pd.nzRef != nil && !caps.Has(CapNonzero) {
					t.Fatalf("k=%d: planner lost CapNonzero (caps %v)", k, caps)
				}
				piTol := pd.piTol
				if k == 0 {
					if ch, ok := plan.Choices[CapProbs]; ok {
						piTol = monoPiTol(ch.Backend)
					}
				}
				for qi, q := range qs {
					if pd.nzRef != nil {
						want := pd.nzRef(q)
						got, err := ix.QueryNonzero(q)
						if err != nil {
							t.Fatalf("k=%d q%d: nonzero: %v", k, qi, err)
						}
						if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
							t.Fatalf("k=%d q%d: NN≠0 = %v, want %v (plan %s)", k, qi, got, want, ix.Name())
						}
					}
					if pd.piRef != nil {
						want := pd.piRef(q)
						got, err := ix.QueryProbs(q, 0)
						if err != nil {
							t.Fatalf("k=%d q%d: probs: %v", k, qi, err)
						}
						probsWithin(t, pd.name, got, want, piTol)
					}
					if pd.edRef != nil {
						wi, wd := pd.edRef(q)
						gi, gd, err := ix.QueryExpected(q)
						if err != nil {
							t.Fatalf("k=%d q%d: expected: %v", k, qi, err)
						}
						if math.Abs(gd-wd) > 1e-9 {
							t.Fatalf("k=%d q%d: E[d] = %v, want %v", k, qi, gd, wd)
						}
						if gi != wi && gd != wd {
							t.Fatalf("k=%d q%d: E[d] winner %d (%v), want %d (%v)", k, qi, gi, gd, wi, wd)
						}
					}
				}
			}
		})
	}
}

// TestPlannerCoversAuto: the planner must support every query kind the
// rule-based auto router supports on the same dataset — cost optimality
// never costs capability.
func TestPlannerCoversAuto(t *testing.T) {
	for _, pd := range plannerDatasets(t) {
		auto, err := BuildAuto(pd.ds, pd.bopt, ShardOptions{})
		if err != nil {
			t.Fatalf("%s: auto: %v", pd.name, err)
		}
		planned, _, err := BuildPlanned(pd.ds, pd.bopt, ShardOptions{}, PlannerOptions{})
		if err != nil {
			t.Fatalf("%s: planned: %v", pd.name, err)
		}
		if !planned.Capabilities().Has(auto.Capabilities()) {
			t.Fatalf("%s: planner caps %v lost some of auto's %v",
				pd.name, planned.Capabilities(), auto.Capabilities())
		}
	}
}

// TestPlannerRejectsEmpty: a dataset no backend can serve fails loudly.
func TestPlannerRejectsEmpty(t *testing.T) {
	_, _, err := BuildPlanned(&Dataset{}, BuildOptions{}, ShardOptions{}, PlannerOptions{})
	if err == nil {
		t.Fatal("BuildPlanned over an empty dataset succeeded")
	}
}

// TestPlannerExplain: the explanation names every chosen backend with
// its cost estimates, both monolithic and sharded (per-shard plans).
func TestPlannerExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe59))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 40, 2, 50, 2.0, 1))
	ix, plan, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{}, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{})
	expl := eng.Explain()
	if !strings.Contains(expl, "plan: n=40") {
		t.Fatalf("Explain missing plan header:\n%s", expl)
	}
	for kind, ch := range plan.Choices {
		if !strings.Contains(expl, string(ch.Backend)) {
			t.Fatalf("Explain missing %v choice %s:\n%s", kind, ch.Backend, expl)
		}
	}
	// Sharded: per-shard lines plus the dataset-level plan note.
	sx, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{Shards: 3}, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sexpl := NewEngine(sx, Options{}).Explain()
	if !strings.Contains(sexpl, "shard 0") || !strings.Contains(sexpl, "plan: n=40") {
		t.Fatalf("sharded Explain missing per-shard lines or plan note:\n%s", sexpl)
	}
	// The rule-based auto explains its routing too.
	pts := make([]uncertain.Point, 8)
	for i := range pts {
		pts[i] = uncertain.UniformDisk{D: geom.DiskAt(float64(i)*3, 0, 1)}
	}
	cds := FromPoints(pts)
	cds.Disks = nil // force the mixed-continuous composite
	auto, err := BuildAuto(cds, BuildOptions{}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aexpl := NewEngine(auto, Options{}).Explain()
	if !strings.Contains(aexpl, "rule-based auto") {
		t.Fatalf("auto Explain = %q, want the routing rule", aexpl)
	}
}

// TestPlannerMixSteersChoice: a workload that is all-π must never spend
// the probs assignment on the brute Õ(n²) sweep when a sublinear
// alternative exists, and a tiny horizon must avoid expensive builds for
// kinds that are barely queried.
func TestPlannerMixSteersChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(0x3a11))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 400, 3, 2000, 2.0, 1))
	// All-π workload, generous horizon: the chosen probs backend must be
	// sublinear per query (spiral, vpr, or MC — not the brute sweep).
	_, plan, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{},
		PlannerOptions{Mix: Workload{Probs: 1}, Horizon: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if ch := plan.Choices[CapProbs]; ch.Backend == BackendBrute {
		t.Fatalf("all-π workload at n=400, horizon 2^20 still picked the brute sweep:\n%s", plan.Explain())
	}
	// A one-query horizon amortizes no build: the cheapest-to-build
	// backend (the oracle) must win NN≠0.
	_, plan, err = BuildPlanned(ds, BuildOptions{}, ShardOptions{},
		PlannerOptions{Mix: Workload{Nonzero: 1}, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ch := plan.Choices[CapNonzero]; ch.Backend != BackendBrute {
		t.Fatalf("one-shot NN≠0 workload built %s instead of the free oracle:\n%s",
			ch.Backend, plan.Explain())
	}
}

// TestCalibrationFromJSON: a persisted BENCH_engine.json drives the
// model without probing, and its coefficients are the measured
// cost / term ratios.
func TestCalibrationFromJSON(t *testing.T) {
	recs := []map[string]any{
		{"exp": "E16", "backend": "brute", "n": 100, "build_ns": 1000, "query_ns_op": 2500.0},
		{"exp": "E16", "backend": "spiral", "n": 100, "build_ns": 664386, "query_ns_op": 665.0},
		{"exp": "E17", "backend": "brute", "n": 100, "build_ns": 9e9, "query_ns_op": 9e9}, // ignored: not E16
		{"exp": "E16", "backend": "nosuch", "n": 100, "build_ns": 1, "query_ns_op": 1.0},  // ignored: unknown
	}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := CalibrationFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal[CostKey{BackendBrute, OpQueryNonzero}]; math.Abs(got-25) > 1e-9 {
		t.Fatalf("brute nonzero coefficient = %v, want 25 (2500ns / n=100)", got)
	}
	if got := cal[CostKey{BackendBrute, OpBuild}]; math.Abs(got-10) > 1e-9 {
		t.Fatalf("brute build coefficient = %v, want 10", got)
	}
	if _, ok := cal[CostKey{Backend("nosuch"), OpBuild}]; ok {
		t.Fatal("unknown backend leaked into the calibration")
	}
	// The table replaces the probe: same plan machinery, no probe pass.
	rng := rand.New(rand.NewSource(0x7ab))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 50, 2, 60, 2.0, 1))
	_, plan, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{}, PlannerOptions{Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Probed {
		t.Fatal("plan reports a probe despite a supplied calibration table")
	}
	if _, err := CalibrationFromJSON([]byte("{not json")); err == nil {
		t.Fatal("malformed table parsed")
	}
	// A table with no usable E16 rows must fail too — it would otherwise
	// silently plan on the seeded defaults.
	if _, err := CalibrationFromJSON([]byte(`[{"exp":"E17","backend":"brute","n":10,"query_ns_op":5}]`)); err == nil {
		t.Fatal("E16-free table accepted")
	}
}

// TestEngineStats: the per-kind latency counters tick for every query
// (batch slots included), and ObserveInto folds the means back into a
// cost model under the per-kind serving backend.
func TestEngineStats(t *testing.T) {
	rng := rand.New(rand.NewSource(0x57a7))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 30, 2, 40, 2.0, 1))
	ix, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{}, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{Workers: 2})
	qs := randQueries(rng, 10, 40)
	if _, err := eng.BatchNonzero(qs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryProbs(qs[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.QueryExpected(qs[1]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if got := st.Kind(CapNonzero).Count; got != uint64(len(qs)) {
		t.Fatalf("nonzero count = %d, want %d", got, len(qs))
	}
	if st.Kind(CapProbs).Count != 1 || st.Kind(CapExpected).Count != 1 {
		t.Fatalf("probs/expected counts = %d/%d, want 1/1", st.Kind(CapProbs).Count, st.Kind(CapExpected).Count)
	}
	if st.Kind(CapNonzero).MeanNs() <= 0 {
		t.Fatal("nonzero mean latency not recorded")
	}
	model := NewCostModel(nil)
	eng.ObserveInto(model)
	// The observation lands on whichever backend serves NN≠0 in the plan;
	// at least one coefficient must have moved off the seeded default.
	moved := func(m *CostModel) bool {
		base := NewCostModel(nil)
		for _, b := range Backends() {
			if m.QueryCost(b, CapNonzero, 1000) != base.QueryCost(b, CapNonzero, 1000) {
				return true
			}
		}
		return false
	}
	if !moved(model) {
		t.Fatal("ObserveInto left every nonzero coefficient untouched")
	}
	// The feedback loop also works for a plain pinned backend and for the
	// rule-based auto composite — not just planned indexes.
	for name, build := range map[string]func() (Index, error){
		"plain": func() (Index, error) { return Build(BackendBrute, ds, BuildOptions{}) },
		"auto":  func() (Index, error) { return BuildAuto(ds, BuildOptions{}, ShardOptions{}) },
	} {
		ix, err := build()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(ix, Options{})
		if _, err := e.QueryNonzero(qs[0]); err != nil {
			t.Fatal(err)
		}
		m := NewCostModel(nil)
		e.ObserveInto(m)
		if !moved(m) {
			t.Fatalf("%s handle: ObserveInto recorded nothing", name)
		}
	}
}

// TestAdaptiveCacheQuantum: a negative CacheQuantum resolves to the
// built structure's hint — real slab extents for the diagram backend,
// the centroid-spacing estimate elsewhere — and nearby queries then
// share cache entries.
func TestAdaptiveCacheQuantum(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9045))
	disks := constructions.RandomDisks(rng, 12, 30, 0.5, 1.5)
	diag, err := Build(BackendDiagram, FromDisks(disks), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := diag.(quantumHinter)
	if !ok {
		t.Fatal("diagram backend lost its quantum hint")
	}
	if q := h.QuantumHint(); q <= 0 {
		t.Fatalf("diagram quantum hint = %v, want > 0", q)
	}
	eng := NewEngine(diag, Options{CacheSize: 64, CacheQuantum: -1})
	if eng.CacheQuantum() <= 0 {
		t.Fatalf("adaptive quantum resolved to %v", eng.CacheQuantum())
	}
	q0 := geom.Pt(15, 15)
	q1 := geom.Pt(15+eng.CacheQuantum()/100, 15)
	if _, err := eng.QueryNonzero(q0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryNonzero(q1); err != nil {
		t.Fatal(err)
	}
	hits, _ := eng.CacheStats()
	if hits == 0 {
		t.Fatalf("queries %v apart under quantum %v missed the cache", q1.X-q0.X, eng.CacheQuantum())
	}
	if st := eng.Stats(); st.CacheQuantum != eng.CacheQuantum() {
		t.Fatalf("Stats.CacheQuantum = %v, want %v", st.CacheQuantum, eng.CacheQuantum())
	}
	// Non-diagram backends fall back to the dataset-spacing estimate.
	brute, err := Build(BackendBrute, FromDisks(disks), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	be := NewEngine(brute, Options{CacheSize: 64, CacheQuantum: -1})
	if be.CacheQuantum() <= 0 {
		t.Fatalf("brute adaptive quantum = %v, want the centroid-spacing estimate", be.CacheQuantum())
	}
	// An explicit quantum still wins over the hint.
	fixed := NewEngine(brute, Options{CacheSize: 64, CacheQuantum: 0.125})
	if fixed.CacheQuantum() != 0.125 {
		t.Fatalf("explicit quantum overridden: %v", fixed.CacheQuantum())
	}
}

// TestShardedContinuousPiConditional: the sharded continuous π merge
// conditions the cross-shard survival on the in-shard win, so the
// sharded Monte-Carlo estimate stays within sampling tolerance of the
// monolithic one — including configurations where in-shard and
// cross-shard competition are strongly coupled (overlapping disks
// within and across shards).
func TestShardedContinuousPiConditional(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0de))
	disks := make([]geom.Disk, 12)
	for i := range disks {
		// Three clusters of four overlapping disks: within a cluster the
		// in-shard survival varies sharply over the candidate's distance
		// range, which is exactly where the unconditional factorization
		// biased the merge.
		cx := float64(i/4) * 12
		disks[i] = geom.DiskAt(cx+rng.Float64()*3, rng.Float64()*3, 1.5+rng.Float64())
	}
	ds := FromDisks(disks)
	bopt := BuildOptions{MCRounds: 2048}
	mono, err := Build(BackendMonteCarlo, ds, bopt)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := NewSharded(BackendMonteCarlo, bopt, ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Build(ds); err != nil {
		t.Fatal(err)
	}
	for _, q := range randQueries(rng, 16, 26) {
		want, err := mono.QueryProbs(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.QueryProbs(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		probsWithin(t, "continuous-π", got, want, 0.1)
		total := 0.0
		for _, p := range got {
			total += p.P
		}
		if len(got) > 0 && math.Abs(total-1) > 1e-9 {
			t.Fatalf("merged π sums to %v, want 1", total)
		}
	}
}

// TestPlannedDynamicMutations: a planner-built sharded handle accepts
// Insert/Delete (each rebuild re-plans the shard at its new size) and
// keeps NN≠0 parity with the brute reference.
func TestPlannedDynamicMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1a))
	pool := constructions.RandomDiscrete(rng, 60, 2, 80, 2.0, 1)
	live := append([]*uncertain.Discrete(nil), pool[:40]...)
	ix, _, err := BuildPlanned(FromDiscrete(append([]*uncertain.Discrete(nil), live...)),
		BuildOptions{}, ShardOptions{Shards: 3}, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sx, ok := ix.(*ShardedIndex)
	if !ok {
		t.Fatalf("sharded planner built %T", ix)
	}
	for step := 0; step < 30; step++ {
		if step%2 == 0 {
			p := pool[40+step/2]
			if _, err := sx.Insert(Item{Point: p}); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			di := rng.Intn(len(live))
			if _, err := sx.Delete(di); err != nil {
				t.Fatal(err)
			}
			live = append(live[:di], live[di+1:]...)
		}
	}
	ref := FromDiscrete(live)
	for _, q := range randQueries(rng, 12, 80) {
		want := bruteNonzero(ref, q)
		got, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("after churn: NN≠0 = %v, want %v", got, want)
		}
	}
}

// TestPlannerRequiresAutoBackend mirrors the public-API contract: the
// capability check still reports unsupported kinds through a planned
// composite (squares have no π backend at all).
func TestPlannerUnsupportedKind(t *testing.T) {
	sq := []lmetric.Square{{C: geom.Pt(0, 0), R: 1}, {C: geom.Pt(5, 5), R: 1}}
	ix, _, err := BuildPlanned(FromSquares(sq), BuildOptions{}, ShardOptions{}, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryProbs(geom.Pt(1, 1), 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("squares π err = %v, want ErrUnsupported", err)
	}
}
