package engine

import (
	"container/list"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/lmetric"
)

func randQueries(rng *rand.Rand, n int, side float64) []geom.Point {
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side-side/2, rng.Float64()*side-side/2)
	}
	return qs
}

func randSquares(rng *rand.Rand, n int, side float64) []lmetric.Square {
	sq := make([]lmetric.Square, n)
	for i := range sq {
		sq[i] = lmetric.Square{
			C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
			R: 0.5 + rng.Float64()*2,
		}
	}
	return sq
}

// backendCase pairs each backend with a dataset it supports and the
// capabilities it must report there.
type backendCase struct {
	backend Backend
	ds      *Dataset
	caps    Capability
	side    float64 // query window
}

func allBackendCases(t *testing.T) []backendCase {
	t.Helper()
	rng := rand.New(rand.NewSource(0xca5e))
	discrete := constructions.RandomDiscrete(rng, 24, 3, 30, 1.0, 1)
	smallDiscrete := constructions.RandomDiscrete(rng, 6, 2, 20, 1.0, 1)
	vprPts := constructions.RandomDiscrete(rng, 4, 2, 10, 1.0, 1)
	disks := constructions.RandomDisks(rng, 10, 30, 0.5, 2.0)
	squares := randSquares(rng, 24, 30)
	// Every π-capable backend also serves top-k (ranking by π).
	return []backendCase{
		{BackendBrute, FromDiscrete(discrete), CapNonzero | CapProbs | CapExpected | CapTopK, 30},
		{BackendDiagram, FromDisks(disks), CapNonzero, 30},
		{BackendDiagram, FromDiscrete(smallDiscrete), CapNonzero, 20},
		{BackendTwoStageDisks, FromDisks(disks), CapNonzero, 30},
		{BackendTwoStageDiscrete, FromDiscrete(discrete), CapNonzero, 30},
		{BackendVPr, FromDiscrete(vprPts), CapProbs | CapTopK, 10},
		{BackendMonteCarlo, FromDiscrete(discrete), CapProbs | CapTopK, 30},
		{BackendSpiral, FromDiscrete(discrete), CapProbs | CapTopK, 30},
		{BackendExpected, FromDiscrete(discrete), CapExpected, 30},
		{BackendTwoStageLinf, FromSquares(randSquares(rng, 24, 30)), CapNonzero, 30},
		{BackendTwoStageL1, FromSquares(squares), CapNonzero, 30},
	}
}

// TestBatchSingleParity is the engine's core contract: for every
// backend, BatchQuery over a random query set returns bit-identical
// results to the corresponding single-query calls, for every supported
// query kind and any worker count.
func TestBatchSingleParity(t *testing.T) {
	for _, tc := range allBackendCases(t) {
		t.Run(string(tc.backend)+"/"+map[bool]string{true: "disks", false: "pts"}[tc.ds.Disks != nil], func(t *testing.T) {
			ix, err := Build(tc.backend, tc.ds, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := ix.Capabilities(); got != tc.caps {
				t.Fatalf("capabilities = %v, want %v", got, tc.caps)
			}
			rng := rand.New(rand.NewSource(0xba7c ^ int64(len(tc.ds.Points))))
			qs := randQueries(rng, 64, tc.side)
			for _, workers := range []int{1, 4} {
				eng := NewEngine(ix, Options{Workers: workers})
				if tc.caps.Has(CapNonzero) {
					single := make([][]int, len(qs))
					for i, q := range qs {
						single[i], err = eng.QueryNonzero(q)
						if err != nil {
							t.Fatal(err)
						}
					}
					batched, err := eng.BatchNonzero(qs)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(single, batched) {
						t.Fatalf("workers=%d: nonzero batch diverges from single queries", workers)
					}
				}
				if tc.caps.Has(CapProbs) {
					single := make([][]float64, len(qs))
					for i, q := range qs {
						ps, err := eng.QueryProbs(q, 0)
						if err != nil {
							t.Fatal(err)
						}
						for _, pr := range ps {
							single[i] = append(single[i], float64(pr.I), pr.P)
						}
					}
					batched, err := eng.BatchProbs(qs, 0)
					if err != nil {
						t.Fatal(err)
					}
					flat := make([][]float64, len(qs))
					for i, ps := range batched {
						for _, pr := range ps {
							flat[i] = append(flat[i], float64(pr.I), pr.P)
						}
					}
					if !reflect.DeepEqual(single, flat) {
						t.Fatalf("workers=%d: probs batch diverges from single queries", workers)
					}
				}
				if tc.caps.Has(CapExpected) {
					single := make([]ExpectedResult, len(qs))
					for i, q := range qs {
						idx, d, err := eng.QueryExpected(q)
						if err != nil {
							t.Fatal(err)
						}
						single[i] = ExpectedResult{I: idx, Dist: d}
					}
					batched, err := eng.BatchExpected(qs)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(single, batched) {
						t.Fatalf("workers=%d: expected batch diverges from single queries", workers)
					}
				}
			}
		})
	}
}

// TestUnsupportedKinds verifies the capability contract: querying a kind
// the backend lacks returns ErrUnsupported (wrapped), both single and
// batched.
func TestUnsupportedKinds(t *testing.T) {
	for _, tc := range allBackendCases(t) {
		ix, err := Build(tc.backend, tc.ds, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix, Options{Workers: 2})
		q := geom.Pt(1, 1)
		if !tc.caps.Has(CapNonzero) {
			if _, err := eng.QueryNonzero(q); !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s: QueryNonzero err = %v, want ErrUnsupported", tc.backend, err)
			}
			if _, err := eng.BatchNonzero([]geom.Point{q}); !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s: BatchNonzero err = %v, want ErrUnsupported", tc.backend, err)
			}
		}
		if !tc.caps.Has(CapProbs) {
			if _, err := eng.QueryProbs(q, 0); !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s: QueryProbs err = %v, want ErrUnsupported", tc.backend, err)
			}
		}
		if !tc.caps.Has(CapExpected) {
			if _, _, err := eng.QueryExpected(q); !errors.Is(err, ErrUnsupported) {
				t.Errorf("%s: QueryExpected err = %v, want ErrUnsupported", tc.backend, err)
			}
		}
	}
}

// TestBuildRejectsWrongDataset verifies specialized backends reject
// datasets missing their specialization.
func TestBuildRejectsWrongDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	disks := FromDisks(constructions.RandomDisks(rng, 5, 10, 0.5, 1.5))
	squares := FromSquares(randSquares(rng, 5, 10))
	cases := []struct {
		b  Backend
		ds *Dataset
	}{
		{BackendTwoStageDiscrete, disks},
		{BackendVPr, disks},
		{BackendSpiral, disks},
		{BackendExpected, disks},
		{BackendTwoStageDisks, squares},
		{BackendBrute, squares},
		{BackendTwoStageLinf, disks},
		{BackendTwoStageL1, disks},
	}
	for _, tc := range cases {
		if _, err := Build(tc.b, tc.ds, BuildOptions{}); err == nil {
			t.Errorf("%s: Build accepted an incompatible dataset", tc.b)
		}
	}
	if _, err := NewIndex(Backend("nope"), BuildOptions{}); err == nil {
		t.Error("NewIndex accepted an unknown backend")
	}
}

// TestCacheHitsAndEviction exercises the LRU answer cache: repeated
// queries hit, capacity bounds entries, and answers are identical.
func TestCacheHitsAndEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 12, 3, 20, 1.0, 1))
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{Workers: 1, CacheSize: 8})
	qs := randQueries(rng, 4, 20)
	var first [][]int
	for _, q := range qs {
		out, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, out)
	}
	for i, q := range qs {
		out, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, first[i]) {
			t.Fatalf("cached answer differs at %d", i)
		}
	}
	hits, misses := eng.CacheStats()
	if hits != uint64(len(qs)) || misses != uint64(len(qs)) {
		t.Fatalf("cache stats = %d hits / %d misses, want %d/%d", hits, misses, len(qs), len(qs))
	}
	// Overflow the capacity: the cache must stay bounded and correct.
	many := randQueries(rng, 40, 20)
	for _, q := range many {
		if _, err := eng.QueryNonzero(q); err != nil {
			t.Fatal(err)
		}
	}
	// The occupancy bound is global across stripes.
	if n := eng.cache.len(); n > 8 {
		t.Fatalf("cache grew to %d entries, capacity 8", n)
	}
}

// TestCacheGlobalBound is the striping regression test: with many
// stripes and a working set exactly equal to the capacity, no entry may
// be evicted however unevenly the keys hash (the occupancy bound is
// global, not per stripe), so a clean double pass hits on every key.
func TestCacheGlobalBound(t *testing.T) {
	const capacity = 64
	c := newCache(capacity, 0)
	// Force a high stripe count regardless of this machine's GOMAXPROCS
	// so the balls-in-bins skew is real.
	c.stripes = make([]*cacheStripe, 8)
	for i := range c.stripes {
		c.stripes[i] = &cacheStripe{ll: list.New(), items: map[cacheKey]*list.Element{}}
	}
	rng := rand.New(rand.NewSource(0xcac4e))
	qs := randQueries(rng, capacity, 100)
	for _, q := range qs {
		c.put(kindNonzero, q, 0, 0, []int{1}, c.generation())
	}
	if n := c.len(); n != capacity {
		t.Fatalf("cache holds %d entries after %d distinct puts, want %d", n, capacity, capacity)
	}
	for _, q := range qs {
		if _, ok := c.get(kindNonzero, q, 0, 0); !ok {
			t.Fatalf("entry for %v evicted below capacity", q)
		}
	}
	hits, misses := c.stats()
	if hits != capacity || misses != 0 {
		t.Fatalf("second pass: %d hits / %d misses, want %d/0", hits, misses, capacity)
	}
}

// TestCacheNoSelfEviction regression-tests eviction at capacity: every
// freshly inserted entry must be retrievable immediately, even when its
// key hashes to an under-filled stripe of a full cache (eviction scans
// the other stripes instead of dropping the new entry), and the global
// bound still holds.
func TestCacheNoSelfEviction(t *testing.T) {
	const capacity = 4
	c := newCache(capacity, 0)
	c.stripes = make([]*cacheStripe, 4)
	for i := range c.stripes {
		c.stripes[i] = &cacheStripe{ll: list.New(), items: map[cacheKey]*list.Element{}}
	}
	rng := rand.New(rand.NewSource(0x5e1f))
	for i := 0; i < 200; i++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		c.put(kindNonzero, q, 0, 0, []int{i}, c.generation())
		if _, ok := c.get(kindNonzero, q, 0, 0); !ok {
			t.Fatalf("put %d: freshly inserted entry already evicted", i)
		}
		if n := c.len(); n > capacity {
			t.Fatalf("put %d: cache grew to %d entries, capacity %d", i, n, capacity)
		}
	}
}

// TestCacheQuantization verifies that a positive quantum snaps nearby
// queries to one shared answer.
func TestCacheQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 12, 3, 20, 1.0, 1))
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{Workers: 1, CacheSize: 8, CacheQuantum: 1e-6})
	// Coordinates strictly inside a quantum cell, so a +1e-9 nudge stays
	// in the same cell.
	q := geom.Pt(3.2500004, 7.5000004)
	a, err := eng.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.QueryNonzero(geom.Pt(q.X+1e-9, q.Y+1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("nearby queries within one quantum cell did not share the cached answer")
	}
	hits, _ := eng.CacheStats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestBatchEmptyAndDefaults covers the edge cases of the batch path.
func TestBatchEmptyAndDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 8, 2, 20, 1.0, 1))
	ix, err := Build(BackendSpiral, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{})
	if eng.Workers() < 1 {
		t.Fatalf("default workers = %d", eng.Workers())
	}
	out, err := eng.BatchProbs(nil, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
