package engine

import (
	"context"
	"fmt"
	"sync"

	"unn/internal/geom"
	"unn/internal/quantify"
)

// OpInsert and OpDelete are the Serve-stream mutation ops. They share
// Query.Kind's type so a stream interleaves queries and mutations
// through one channel, but they are ops, not capabilities: no backend
// reports them, and the engine routes them to the Mutable interface
// (ErrImmutable in Answer.Err for monolithic backends). Mutations are
// serialized against in-flight queries by the dynamic layer's RWMutex
// epoch — a query observes the index strictly before or strictly after
// any mutation, never mid-rebalance.
const (
	OpInsert Capability = 1 << 6
	OpDelete Capability = 1 << 7
)

// Query is one request on a Serve stream. Kind selects the query method
// (exactly one capability bit) or a mutation op; Seq is an opaque
// caller-assigned tag echoed in the Answer so out-of-order completions
// can be matched back to their requests.
type Query struct {
	Seq  uint64
	Kind Capability
	Q    geom.Point
	// Eps is the accuracy knob for CapProbs/CapTopK queries (≤ 0 selects
	// the backend's build-time default); ignored otherwise.
	Eps float64
	// K is the result size for CapTopK queries; ignored otherwise.
	K int
	// Item is the OpInsert payload; ignored otherwise.
	Item Item
	// Del is the global index removed by OpDelete; ignored otherwise.
	Del int
}

// Answer is one completed Serve query. Exactly one of the payload
// fields (by Kind) is meaningful; Err carries capability or backend
// errors without tearing down the stream. Mutation ops answer with N,
// the live item count right after the mutation applied (for OpInsert
// the inserted item's index was N−1 at that instant).
type Answer struct {
	Seq      uint64
	Kind     Capability
	Nonzero  []int
	Probs    []quantify.Prob
	TopK     []quantify.Prob
	Expected ExpectedResult
	N        int
	Err      error
}

// Serve answers a stream of queries asynchronously: a pool of
// opt.Workers workers drains in, and completions arrive on the returned
// channel as they finish — out of order under load, tagged by Seq. The
// answer channel's capacity (Options.ServeBuffer, default 2×Workers)
// provides backpressure: when the consumer lags, workers block on the
// full channel and, transitively, stop draining in.
//
// The stream ends (the answer channel closes) when in is closed and all
// accepted queries have completed, or when ctx is cancelled — workers
// drop pending sends on cancellation, so cancellation never deadlocks
// even with a full answer channel and an abandoned consumer. Per-query
// failures (e.g. an unsupported kind) are reported in Answer.Err;
// they do not stop the stream.
// Runs of queued mutation ops are opportunistically coalesced: a worker
// that picks up an OpInsert/OpDelete greedily drains any immediately
// available mutation ops behind it (never blocking on the channel) and
// applies the run as one BatchMutate — one write lock, one rebuild per
// touched shard, one cache flush — while still emitting one Answer per
// op with the exact sequential semantics. A query encountered mid-drain
// ends the run and is answered right after it.
// Runs of queued same-kind tileable queries coalesce symmetrically
// (mirroring the mutation coalescing): the run becomes one Batch* call
// through the tiled executor — shared data passes, in-batch dedup —
// while still emitting one Answer per query; answers are identical to
// the uncoalesced path's.
//
// Served traffic is observed like any other: both the single-query and
// the coalesced batch paths record into the engine's per-kind latency
// counters and per-shard visit counters, so a stream served through
// Serve drives the adaptive replanning loop (Options.AdaptiveReplan)
// exactly as direct Query*/Batch* calls do.
func (e *Engine) Serve(ctx context.Context, in <-chan Query) <-chan Answer {
	buf := e.opt.ServeBuffer
	if buf <= 0 {
		buf = 2 * e.opt.Workers
	}
	out := make(chan Answer, buf)
	_, canBatch := e.ix.(BatchMutable)
	canTile := e.tileSize() > 0
	var wg sync.WaitGroup
	for w := 0; w < e.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			send := func(a Answer) bool {
				select {
				case out <- a:
					return true
				case <-ctx.Done():
					return false
				}
			}
			for {
				select {
				case <-ctx.Done():
					return
				case qr, ok := <-in:
					if !ok {
						return
					}
					if canBatch && isMutOp(qr.Kind) {
						ops, leftover, closed := drainMutations(in, qr)
						for _, a := range e.answerMutations(ops) {
							if !send(a) {
								return
							}
						}
						if leftover != nil && !send(e.answer(*leftover)) {
							return
						}
						if closed {
							return
						}
						continue
					}
					if canTile && isTileableQuery(qr.Kind) {
						run, leftover, closed := drainQueries(in, qr)
						if len(run) > 1 {
							for _, a := range e.answerQueryRun(run) {
								if !send(a) {
									return
								}
							}
						} else if !send(e.answer(qr)) {
							return
						}
						if leftover != nil && !send(e.answer(*leftover)) {
							return
						}
						if closed {
							return
						}
						continue
					}
					if !send(e.answer(qr)) {
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// serveCoalesce caps one coalesced mutation run — large enough to
// amortize the per-epoch costs, small enough that the write lock never
// starves readers for a whole backlog.
const serveCoalesce = 64

// isMutOp reports whether kind is a Serve-stream mutation op.
func isMutOp(kind Capability) bool { return kind == OpInsert || kind == OpDelete }

// drainMutations greedily extends the run started by first with
// mutation ops already queued on in, without ever blocking: the first
// non-mutation query ends the run (returned as leftover), as does an
// empty channel or its closure (closed).
func drainMutations(in <-chan Query, first Query) (ops []Query, leftover *Query, closed bool) {
	ops = []Query{first}
	for len(ops) < serveCoalesce {
		select {
		case qr, ok := <-in:
			if !ok {
				return ops, nil, true
			}
			if isMutOp(qr.Kind) {
				ops = append(ops, qr)
				continue
			}
			return ops, &qr, false
		default:
			return ops, nil, false
		}
	}
	return ops, nil, false
}

// isTileableQuery reports whether kind is a registered query kind the
// tiled batch executor can serve (the Serve-loop coalescing predicate).
func isTileableQuery(kind Capability) bool {
	spec := kindByCap(kind)
	return spec != nil && spec.tileable
}

// drainQueries greedily extends the run started by first with
// immediately available queries of the same kind, without ever
// blocking: the first differently-kinded request ends the run (returned
// as leftover — possibly a mutation op), as does an empty channel or
// its closure (closed). The coalesced kinds ignore Eps/K, so matching
// on Kind alone preserves per-query semantics.
func drainQueries(in <-chan Query, first Query) (run []Query, leftover *Query, closed bool) {
	run = []Query{first}
	for len(run) < serveCoalesce {
		select {
		case qr, ok := <-in:
			if !ok {
				return run, nil, true
			}
			if qr.Kind == first.Kind {
				run = append(run, qr)
				continue
			}
			return run, &qr, false
		default:
			return run, nil, false
		}
	}
	return run, nil, false
}

// answerQueryRun answers one coalesced query run through the batch
// entry point (the tiled executor: shared data passes, in-batch dedup).
// A batch error falls back to per-query answers so each query reports
// its own error, exactly the uncoalesced semantics.
func (e *Engine) answerQueryRun(run []Query) []Answer {
	pts := make([]geom.Point, len(run))
	for i, qr := range run {
		pts[i] = qr.Q
	}
	as := make([]Answer, len(run))
	switch run[0].Kind {
	case CapNonzero:
		res, err := e.BatchNonzero(pts)
		if err != nil {
			break
		}
		for i, qr := range run {
			as[i] = Answer{Seq: qr.Seq, Kind: qr.Kind, Nonzero: res[i]}
		}
		return as
	case CapExpected:
		res, err := e.BatchExpected(pts)
		if err != nil {
			break
		}
		for i, qr := range run {
			as[i] = Answer{Seq: qr.Seq, Kind: qr.Kind, Expected: res[i]}
		}
		return as
	}
	for i, qr := range run {
		as[i] = e.answer(qr)
	}
	return as
}

// answerMutations applies one coalesced run. The batch path validates
// atomically, so on a batch error (one bad op rejects the burst, or a
// poisoned index) the run falls back to per-op application — each op
// then reports its own error, exactly the uncoalesced semantics.
func (e *Engine) answerMutations(ops []Query) []Answer {
	if len(ops) > 1 {
		ms := make([]Mutation, len(ops))
		for i, op := range ops {
			if op.Kind == OpInsert {
				ms[i] = InsertMutation(op.Item)
			} else {
				ms[i] = DeleteMutation(op.Del)
			}
		}
		if res, err := e.BatchMutate(ms); err == nil {
			as := make([]Answer, len(ops))
			for i, op := range ops {
				a := Answer{Seq: op.Seq, Kind: op.Kind, N: res[i]}
				if op.Kind == OpInsert {
					a.N = res[i] + 1 // res is the inserted index; N is the live count
				}
				as[i] = a
			}
			return as
		}
	}
	as := make([]Answer, len(ops))
	for i, op := range ops {
		as[i] = e.answer(op)
	}
	return as
}

// answer executes one stream query through the cached single-query
// path — so Serve traffic feeds the same per-query-kind latency
// counters (Engine.Stats) that calibrate the planner's cost model — or
// applies a mutation op through the dynamic layer.
func (e *Engine) answer(qr Query) Answer {
	a := Answer{Seq: qr.Seq, Kind: qr.Kind}
	switch qr.Kind {
	case OpInsert:
		var gi int
		if gi, a.Err = e.Insert(qr.Item); a.Err == nil {
			a.N = gi + 1
		}
	case OpDelete:
		a.N, a.Err = e.deleteN(qr.Del)
	default:
		if kindByCap(qr.Kind) == nil {
			a.Err = fmt.Errorf("engine: serve: query kind %v is not a single capability or mutation op", qr.Kind)
			return a
		}
		res, err := e.Query(Request{Kind: qr.Kind, Q: qr.Q, Eps: qr.Eps, K: qr.K})
		a.Err = err
		if err != nil {
			if qr.Kind == CapExpected {
				a.Expected.I = -1
			}
			return a
		}
		a.Nonzero, a.Probs, a.TopK, a.Expected = res.Nonzero, res.Probs, res.TopK, res.Expected
	}
	return a
}
