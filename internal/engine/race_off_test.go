//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build;
// timing-assertion tests skip themselves under its overhead.
const raceEnabled = false
