//go:build ignore

// Generates the snapshot compatibility fixtures under testdata/: one
// binary snapshot per covered configuration plus a golden file holding
// the live engine's Explain output and spot answers at generation time.
// The compat test (snapshot_compat_test.go) restores the checked-in
// bytes with the current reader and asserts the restored engine still
// reports the identical Explain and identical answers — the guarantee
// that newer format versions keep reading older files.
//
// Regenerate (from the repo root, against the writer version being
// frozen) with:
//
//	go run ./internal/engine/testdata/gen_fixtures.go
//
// and rename the outputs to the frozen version (engine_v1.snap etc.)
// before committing.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"unn/internal/engine"
	"unn/internal/geom"
	"unn/internal/uncertain"
)

type golden struct {
	Explain      string
	CacheQuantum float64
	Capabilities string
	Queries      []goldenQuery
}

type goldenQuery struct {
	X, Y     float64
	Nonzero  []int
	Probs    []probRow `json:",omitempty"`
	Expected *expRow   `json:",omitempty"`
}

type probRow struct {
	I int
	P float64
}

type expRow struct {
	I int
	D float64
}

func main() {
	dir := "internal/engine/testdata"
	if _, err := os.Stat(dir); err != nil {
		// Allow running from the testdata directory itself.
		dir = "."
	}
	rng := rand.New(rand.NewSource(0x11e8))
	pts := make([]*uncertain.Discrete, 60)
	gen := make([]uncertain.Point, len(pts))
	for i := range pts {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		locs := make([]geom.Point, 3)
		w := make([]float64, 3)
		for a := range locs {
			locs[a] = geom.Pt(cx+rng.Float64()*4, cy+rng.Float64()*4)
			w[a] = 0.1 + rng.Float64()
		}
		p, err := uncertain.NewDiscrete(locs, w)
		if err != nil {
			panic(err)
		}
		pts[i] = p
		gen[i] = p
	}
	ds := &engine.Dataset{Points: gen, Discrete: pts}

	// Configuration 1: sharded + planned + insert buffer + cache — the
	// densest meta section the format writes (per-shard plans, model
	// coefficients, buffer state).
	ix, _, err := engine.BuildPlanned(ds, engine.BuildOptions{},
		engine.ShardOptions{Shards: 3, InsertBuffer: true},
		engine.PlannerOptions{Mix: engine.Workload{Nonzero: 1, Probs: 0.5, Expected: 0.25}, NoProbe: true})
	if err != nil {
		panic(err)
	}
	eng := engine.NewEngine(ix, engine.Options{Workers: 2, CacheSize: 32, CacheQuantum: 0.25})
	emit(dir, "engine_v2_sharded_planned", eng)

	// Configuration 2: plain named backend with a kd-tree payload — the
	// zero-copy slab restore path.
	disks := make([]geom.Disk, 40)
	for i := range disks {
		disks[i] = geom.DiskAt(rng.Float64()*100, rng.Float64()*100, 0.5+rng.Float64()*3)
	}
	dix, err := engine.Build(engine.BackendTwoStageDisks, engine.FromDisks(disks), engine.BuildOptions{})
	if err != nil {
		panic(err)
	}
	emit(dir, "engine_v2_plain_kd", engine.NewEngine(dix, engine.Options{Workers: 1}))
}

func emit(dir, name string, eng *engine.Engine) {
	var buf bytes.Buffer
	if err := engine.WriteSnapshot(&buf, eng); err != nil {
		panic(err)
	}
	g := golden{
		Explain:      eng.Explain(),
		CacheQuantum: eng.CacheQuantum(),
		Capabilities: eng.Capabilities().String(),
	}
	for _, q := range []geom.Point{geom.Pt(10, 10), geom.Pt(50, 55), geom.Pt(90, 20)} {
		gq := goldenQuery{X: q.X, Y: q.Y}
		nz, err := eng.QueryNonzero(q)
		if err != nil {
			panic(err)
		}
		gq.Nonzero = nz
		if eng.Capabilities().Has(engine.CapProbs) {
			ps, err := eng.QueryProbs(q, 0)
			if err != nil {
				panic(err)
			}
			for _, p := range ps {
				gq.Probs = append(gq.Probs, probRow{I: p.I, P: p.P})
			}
		}
		if eng.Capabilities().Has(engine.CapExpected) {
			i, d, err := eng.QueryExpected(q)
			if err != nil {
				panic(err)
			}
			gq.Expected = &expRow{I: i, D: d}
		}
		g.Queries = append(g.Queries, gq)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".snap"), buf.Bytes(), 0o644); err != nil {
		panic(err)
	}
	gb, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".golden.json"), append(gb, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", name, buf.Len())
}
