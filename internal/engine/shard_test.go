package engine

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

var parityKs = []int{1, 2, 4, 7}

// shardedOver wraps backend b over ds at k shards (t.Fatal on error).
func shardedOver(t *testing.T, b Backend, ds *Dataset, k int, bopt BuildOptions) Index {
	t.Helper()
	ix, err := BuildSharded(b, ds, bopt, ShardOptions{Shards: k})
	if err != nil {
		t.Fatalf("sharded %s k=%d: %v", b, k, err)
	}
	return ix
}

// probsMaxDiff renders two sparse π vectors dense and returns their L∞
// distance.
func probsMaxDiff(a, b []quantify.Prob, n int) float64 {
	da, db := make([]float64, n), make([]float64, n)
	for _, pr := range a {
		da[pr.I] = pr.P
	}
	for _, pr := range b {
		db[pr.I] = pr.P
	}
	m := 0.0
	for i := range da {
		if d := math.Abs(da[i] - db[i]); d > m {
			m = d
		}
	}
	return m
}

// TestShardedParity is the merge planner's core contract: for every
// backend and k ∈ {1,2,4,7}, the sharded index answers every supported
// query kind identically to the monolithic backend — bit-identical NN≠0
// sets, π within 1e-12 for the exact probability backends, and the same
// expected-distance NN. The approximating probability backends (spiral,
// montecarlo) are checked against the exact reference at their own
// accuracy level, since sharding legitimately changes which prefix /
// samples they see.
func TestShardedParity(t *testing.T) {
	for _, tc := range allBackendCases(t) {
		tc := tc
		name := string(tc.backend) + "/" + map[bool]string{true: "disks", false: "pts"}[tc.ds.Disks != nil]
		t.Run(name, func(t *testing.T) {
			mono, err := Build(tc.backend, tc.ds, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(0x5a4d ^ int64(tc.ds.N())))
			qs := randQueries(rng, 48, tc.side)
			var exact []*uncertain.Discrete
			if tc.ds.Discrete != nil {
				exact = tc.ds.Discrete
			}
			approx := tc.backend == BackendMonteCarlo || tc.backend == BackendSpiral
			for _, k := range parityKs {
				sx := shardedOver(t, tc.backend, tc.ds, k, BuildOptions{})
				if got := sx.Capabilities(); got != tc.caps {
					t.Fatalf("k=%d: capabilities = %v, want %v", k, got, tc.caps)
				}
				for _, q := range qs {
					if tc.caps.Has(CapNonzero) {
						want, err1 := mono.QueryNonzero(q)
						got, err2 := sx.QueryNonzero(q)
						if err1 != nil || err2 != nil {
							t.Fatalf("k=%d: nonzero errs %v / %v", k, err1, err2)
						}
						if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
							t.Fatalf("k=%d q=%v: nonzero %v, want %v", k, q, got, want)
						}
					}
					if tc.caps.Has(CapProbs) {
						got, err := sx.QueryProbs(q, 0)
						if err != nil {
							t.Fatalf("k=%d: probs err %v", k, err)
						}
						if approx && k > 1 {
							// Sharded approximators: compare against the exact
							// reference at approximation accuracy.
							ref := quantify.ExactPositive(exact, q)
							if d := probsMaxDiff(got, ref, tc.ds.N()); d > 0.2 {
								t.Fatalf("k=%d q=%v: approx probs off exact by %g", k, q, d)
							}
						} else {
							want, err := mono.QueryProbs(q, 0)
							if err != nil {
								t.Fatal(err)
							}
							if d := probsMaxDiff(got, want, tc.ds.N()); d > 1e-12 {
								t.Fatalf("k=%d q=%v: probs diverge by %g", k, q, d)
							}
						}
					}
					if tc.caps.Has(CapExpected) {
						wi, wd, err1 := mono.QueryExpected(q)
						gi, gd, err2 := sx.QueryExpected(q)
						if err1 != nil || err2 != nil {
							t.Fatalf("k=%d: expected errs %v / %v", k, err1, err2)
						}
						if wi != gi || wd != gd {
							t.Fatalf("k=%d q=%v: expected (%d,%v), want (%d,%v)", k, q, gi, gd, wi, wd)
						}
					}
				}
			}
		})
	}
}

// TestShardedDegenerate covers n < k (forced empty shards) and an
// all-coincident cluster (empty shards under a grid cut): answers must
// still match the monolithic backend bit-for-bit.
func TestShardedDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(0xdead))
	small := FromDiscrete(constructions.RandomDiscrete(rng, 3, 2, 20, 1.0, 1))
	mono, err := Build(BackendBrute, small, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := randQueries(rng, 32, 20)
	for _, k := range []int{4, 7, 9} {
		for _, split := range []Split{SplitKDMedian, SplitGrid} {
			sx, err := NewSharded(BackendBrute, BuildOptions{}, ShardOptions{Shards: k, Split: split})
			if err != nil {
				t.Fatal(err)
			}
			if err := sx.Build(small); err != nil {
				t.Fatalf("k=%d split=%d: %v", k, split, err)
			}
			empties := 0
			for _, sz := range sx.shardSizes() {
				if sz == 0 {
					empties++
				}
			}
			if empties == 0 {
				t.Fatalf("k=%d > n=3: expected empty shards, sizes %v", k, sx.shardSizes())
			}
			for _, q := range qs {
				want, _ := mono.QueryNonzero(q)
				got, err := sx.QueryNonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
					t.Fatalf("k=%d: nonzero %v, want %v", k, got, want)
				}
				wp, _ := mono.QueryProbs(q, 0)
				gp, err := sx.QueryProbs(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if d := probsMaxDiff(gp, wp, small.N()); d > 1e-12 {
					t.Fatalf("k=%d: probs diverge by %g", k, d)
				}
			}
		}
	}

	// All centroids coincident: the grid cut piles everything into one
	// cell, leaving k−1 empty shards.
	locs := []geom.Point{geom.Pt(5, 5)}
	coincident := make([]*uncertain.Discrete, 4)
	for i := range coincident {
		coincident[i] = uncertain.UniformDiscrete(locs)
	}
	ds := FromDiscrete(coincident)
	sx, err := NewSharded(BackendBrute, BuildOptions{}, ShardOptions{Shards: 4, Split: SplitGrid})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Build(ds); err != nil {
		t.Fatal(err)
	}
	monoC, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		want, _ := monoC.QueryNonzero(q)
		got, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("coincident: nonzero %v, want %v", got, want)
		}
	}
}

// TestShardedUnsupported verifies the capability contract survives
// sharding: a kind no shard backend supports returns ErrUnsupported.
func TestShardedUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := FromDisks(constructions.RandomDisks(rng, 8, 20, 0.5, 1.5))
	sx := shardedOver(t, BackendTwoStageDisks, ds, 3, BuildOptions{})
	if _, err := sx.QueryProbs(geom.Pt(1, 1), 0); !errors.Is(err, ErrUnsupported) {
		t.Errorf("QueryProbs err = %v, want ErrUnsupported", err)
	}
	if _, _, err := sx.QueryExpected(geom.Pt(1, 1)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("QueryExpected err = %v, want ErrUnsupported", err)
	}
}

// TestShardedInvalid exercises constructor validation.
func TestShardedInvalid(t *testing.T) {
	if _, err := NewSharded(Backend("nope"), BuildOptions{}, ShardOptions{Shards: 2}); err == nil {
		t.Error("NewSharded accepted an unknown backend")
	}
	if _, err := NewSharded(BackendBrute, BuildOptions{}, ShardOptions{}); err == nil {
		t.Error("NewSharded accepted Shards = 0")
	}
	sx, err := NewSharded(BackendBrute, BuildOptions{}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Build(&Dataset{}); err == nil {
		t.Error("Build accepted an empty dataset")
	}
}

// TestShardedContinuousProbs checks the approximate continuous merge
// path: sharded Monte Carlo over truncated Gaussians must stay close to
// the monolithic Monte-Carlo estimate (both are ε-accurate estimates of
// the same true vector).
func TestShardedContinuousProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]uncertain.Point, 16)
	for i := range pts {
		d := geom.DiskAt(rng.Float64()*60, rng.Float64()*60, 1+rng.Float64()*2)
		pts[i] = uncertain.NewTruncGauss(d, d.R/2)
	}
	ds := FromPoints(pts)
	bopt := BuildOptions{MCRounds: 256}
	mono, err := Build(BackendMonteCarlo, ds, bopt)
	if err != nil {
		t.Fatal(err)
	}
	sx := shardedOver(t, BackendMonteCarlo, ds, 4, bopt)
	qs := randQueries(rng, 16, 60)
	for _, q := range qs {
		want, err := mono.QueryProbs(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.QueryProbs(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d := probsMaxDiff(got, want, len(pts)); d > 0.25 {
			t.Fatalf("q=%v: sharded continuous probs off monolithic MC by %g", q, d)
		}
	}
}

// TestShardedThroughEngine verifies ShardedIndex composes with the
// batch and cache machinery exactly like any other Index.
func TestShardedThroughEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 40, 3, 60, 1.0, 1))
	sx := shardedOver(t, BackendBrute, ds, 4, BuildOptions{})
	eng := NewEngine(sx, Options{Workers: 4, CacheSize: 64})
	qs := randQueries(rng, 32, 60)
	single := make([][]int, len(qs))
	for i, q := range qs {
		out, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = out
	}
	batched, err := eng.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, batched) {
		t.Fatal("sharded batch diverges from single queries")
	}
	if hits, _ := eng.CacheStats(); hits == 0 {
		t.Fatal("repeated sharded queries did not hit the cache")
	}
}
