// Snapshot export/import: persist a built Engine into the
// internal/snapshot container and reassemble it without rebuilding.
//
// The format splits cleanly along the hot/cold axis of the engine's
// state. Bulk geometry — the dataset rows in SoA form and every
// kdtree.FlatTree of the two-stage structures, written as raw
// little-endian slabs — restores zero-copy: decoded arrays are adopted
// by kernel.Flat mirrors and kdtree.FlatFromSlab without another pass.
// Small configuration — shard partition, chosen backends, the planner
// Plan and its cost-model coefficients, cache quantum, insert-buffer
// epoch state — rides in one JSON meta section, where versioned-struct
// evolution is cheap. Backends with no flat representation (diagram,
// V_Pr, Monte Carlo, spiral, expected) are rebuilt from the restored
// dataset on load; their sections carry snapshot.FlagRebuilt so the
// section table records exactly what restores zero-copy and what does
// not.
package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/kernel"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
	"unn/internal/snapshot"
	"unn/internal/uncertain"
)

// Section ids of the snapshot container.
const (
	secMeta      uint32 = 1
	secDataset   uint32 = 2
	secBuffer    uint32 = 3
	secTop       uint32 = 4
	secShardBase uint32 = 0x100 // shard i lives in section secShardBase+i
)

// Dataset family tags of the dataset section.
const (
	dsKindDisks uint8 = iota
	dsKindDiscrete
	dsKindSquares
)

// --- meta section (JSON) ----------------------------------------------------

// snapChoice is one planner decision (Plan.Choices entry).
type snapChoice struct {
	Kind       uint8
	Backend    string
	QueryNs    float64
	BuildNs    float64
	RunnerUp   string
	RunnerUpNs float64
}

// snapPlan is a Plan. TopK (format version 2) is the top-k mix share;
// version-1 files leave it absent and it unmarshals to 0 — the exact
// mix a version-1 planner ran with.
type snapPlan struct {
	N        int
	Nonzero  float64
	Probs    float64
	Expected float64
	TopK     float64 `json:",omitempty"`
	Horizon  float64
	Probed   bool
	Choices  []snapChoice
}

// snapIndexMeta describes one index component; its binary payload (kd
// slabs) lives in the owning section, consumed in meta order.
type snapIndexMeta struct {
	// Kind: "brute" (no payload), "kd" (one tree slab), "kd2" (two tree
	// slabs), "rebuild" (no payload; reconstructed from the dataset),
	// "planned" / "routed" (composite; Parts' payloads follow in order).
	Kind    string
	Backend string  `json:",omitempty"`
	Hinted  bool    `json:",omitempty"`
	Hint    float64 `json:",omitempty"`
	N       int     `json:",omitempty"`
	Plan    *snapPlan
	Parts   []snapIndexMeta `json:",omitempty"`
}

// snapCoef is one cost-model coefficient.
type snapCoef struct {
	Backend string
	Op      uint8
	Coef    float64
}

// snapShard is the per-shard meta row (the binary payload is the shard's
// own section).
type snapShard struct {
	Items int
	Index *snapIndexMeta
	// Rates is the shard's observed per-kind EWMA visit rates (registry
	// slot order) — the adaptive loop's workload profile, whose sum is
	// the shard temperature. Present since format version 3, and only
	// for shards that saw traffic under an adaptive engine; absent rows
	// restore cold.
	Rates []float64 `json:",omitempty"`
}

// snapPlanner is the BuildPlanned configuration (PlannerOptions minus
// the calibration table, which the persisted model coefficients carry).
type snapPlanner struct {
	Nonzero       float64
	Probs         float64
	Expected      float64
	TopK          float64 `json:",omitempty"` // format version 2
	Horizon       float64
	RandomPenalty float64
	Probed        bool
}

// snapRun is the Engine-level serving state.
type snapRun struct {
	Workers      int
	CacheSize    int
	ServeBuffer  int
	CacheQuantum float64 // configured knob (negative = adaptive)
	QuantumBits  uint64  // resolved effective quantum (float64 bits)
	Adaptive     bool
	// Replan is the adaptive replanning loop's configuration and history
	// (format version 3; absent on older files and for engines without
	// the loop, which restore with it disabled).
	Replan *snapReplan `json:",omitempty"`
}

// snapReplan persists Options.AdaptiveReplan plus the loop's replan
// history, so a restored handle resumes the loop warm.
type snapReplan struct {
	Window     int
	ErrFactor  float64
	MixDelta   float64
	Cooldown   int
	Replans    uint64 `json:",omitempty"`
	LastReason string `json:",omitempty"`
}

// snapMeta is the JSON meta section.
type snapMeta struct {
	Family      string // "sharded" | "plain"
	Sub         string `json:",omitempty"` // sharded factory: "named" | "auto" | "planned"
	Name        string `json:",omitempty"`
	Backend     string `json:",omitempty"`
	Metric      uint8
	N           int
	DatasetKind uint8
	Epoch       uint64 `json:",omitempty"`
	Target      int    `json:",omitempty"`
	PlanNote    string `json:",omitempty"`
	HasBuffer   bool   `json:",omitempty"`
	BufInserts  uint64 `json:",omitempty"`
	BufFlushes  uint64 `json:",omitempty"`
	Shard       ShardOptions
	Build       BuildOptions
	Planner     *snapPlanner   `json:",omitempty"`
	Model       []snapCoef     `json:",omitempty"`
	Shards      []snapShard    `json:",omitempty"`
	Top         *snapIndexMeta `json:",omitempty"`
	Run         snapRun
}

func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", snapshot.ErrCorrupt, fmt.Sprintf(format, args...))
}

// --- export -----------------------------------------------------------------

// WriteSnapshot serializes the engine's full state (index, dataset,
// planner, serving configuration) into w. Only engines over datasets
// with a uniform flat family (all-disk, all-discrete, or squares) can be
// snapshotted; continuous (truncated-Gaussian) and mixed datasets return
// an error because their per-point distributions have no serialized
// form.
func WriteSnapshot(w io.Writer, e *Engine) error {
	meta := &snapMeta{Run: snapRun{
		Workers:      e.opt.Workers,
		CacheSize:    e.opt.CacheSize,
		ServeBuffer:  e.opt.ServeBuffer,
		CacheQuantum: e.opt.CacheQuantum,
		QuantumBits:  e.quantum.Load(),
		Adaptive:     e.adaptive,
	}}
	if ap := e.adapt; ap != nil {
		replans, reason := ap.replanStats()
		meta.Run.Replan = &snapReplan{
			Window:     ap.opt.Window,
			ErrFactor:  ap.opt.Drift.ErrFactor,
			MixDelta:   ap.opt.Drift.MixDelta,
			Cooldown:   ap.opt.Cooldown,
			Replans:    replans,
			LastReason: reason,
		}
	}
	var sw snapshot.Writer
	var err error
	if sx, ok := e.ix.(*ShardedIndex); ok {
		err = exportSharded(&sw, meta, sx)
	} else {
		err = exportPlain(&sw, meta, e.ix)
	}
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	sw.Add(secMeta, 0, mb)
	if _, err := sw.WriteTo(w); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	return nil
}

// exportSharded serializes a ShardedIndex under its read lock: dataset
// section, one section per shard (ids + bbox + backend payload), and the
// insert-buffer section.
func exportSharded(sw *snapshot.Writer, meta *snapMeta, sx *ShardedIndex) error {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return fmt.Errorf("index is poisoned: %w", sx.broken)
	}
	meta.Family = "sharded"
	meta.Name = sx.name
	meta.Backend = string(sx.backend)
	meta.Metric = uint8(sx.metric)
	meta.N = sx.n
	meta.Epoch = sx.epoch
	meta.Target = sx.target
	meta.PlanNote = sx.planNote
	meta.Shard = sx.opt
	meta.Build = sx.bopt
	meta.BufInserts = sx.bufInserts
	meta.BufFlushes = sx.bufFlushes
	switch {
	case sx.backend != "":
		meta.Sub = "named"
	case sx.popt != nil:
		meta.Sub = "planned"
		meta.Planner = &snapPlanner{
			Nonzero:       sx.popt.Mix.Nonzero,
			Probs:         sx.popt.Mix.Probs,
			Expected:      sx.popt.Mix.Expected,
			TopK:          sx.popt.Mix.TopK,
			Horizon:       sx.popt.Horizon,
			RandomPenalty: sx.popt.RandomPenalty,
			Probed:        sx.probed,
		}
	default:
		meta.Sub = "auto"
	}
	if sx.model != nil {
		meta.Model = coefsFromCalibration(sx.model.Coefficients())
	}
	payload, dk, err := encodeDataset(sx.ds)
	if err != nil {
		return err
	}
	meta.DatasetKind = dk
	sw.Add(secDataset, 0, payload)

	for si, s := range sx.shards {
		sm := snapShard{Items: len(s.ids)}
		if t := s.temp(); t > 0 {
			sm.Rates = make([]float64, numKinds)
			for i := 0; i < numKinds; i++ {
				sm.Rates[i] = s.rate(i)
			}
		}
		var enc snapshot.Enc
		encodeIDsBBox(&enc, s.ids, s.bbox)
		flags := uint32(0)
		if s.ix != nil {
			im, err := exportIndexMeta(s.ix)
			if err != nil {
				return err
			}
			if err := exportIndexPayload(&enc, s.ix); err != nil {
				return err
			}
			if containsRebuild(im) {
				flags |= snapshot.FlagRebuilt
			}
			sm.Index = im
		}
		sw.Add(secShardBase+uint32(si), flags, enc.Bytes())
		meta.Shards = append(meta.Shards, sm)
	}
	if sx.buf != nil {
		meta.HasBuffer = true
		var enc snapshot.Enc
		encodeIDsBBox(&enc, sx.buf.ids, sx.buf.bbox)
		flags := uint32(0)
		if len(sx.buf.ids) > 0 {
			// The buffer's backend is small by construction (bounded by the
			// flush threshold) and is rebuilt on restore.
			flags |= snapshot.FlagRebuilt
		}
		sw.Add(secBuffer, flags, enc.Bytes())
	}
	return nil
}

// exportPlain serializes an unsharded index (hinted adapter, planned
// composite, or auto-routed composite).
func exportPlain(sw *snapshot.Writer, meta *snapMeta, ix Index) error {
	ds, err := datasetOf(ix)
	if err != nil {
		return err
	}
	meta.Family = "plain"
	meta.N = ds.N()
	meta.Build = buildOptsOf(ix)
	payload, dk, err := encodeDataset(ds)
	if err != nil {
		return err
	}
	meta.DatasetKind = dk
	sw.Add(secDataset, 0, payload)
	im, err := exportIndexMeta(ix)
	if err != nil {
		return err
	}
	var enc snapshot.Enc
	if err := exportIndexPayload(&enc, ix); err != nil {
		return err
	}
	flags := uint32(0)
	if containsRebuild(im) {
		flags |= snapshot.FlagRebuilt
	}
	sw.Add(secTop, flags, enc.Bytes())
	meta.Top = im
	return nil
}

// datasetOf recovers the built dataset from an unsharded index.
func datasetOf(ix Index) (*Dataset, error) {
	switch v := ix.(type) {
	case hintedIndex:
		return v.ds, nil
	case *plannedIndex:
		return v.ds, nil
	case *routedIndex:
		return v.ds, nil
	}
	return nil, fmt.Errorf("cannot snapshot index type %T", ix)
}

// buildOptsOf recovers the BuildOptions the index was built with (used
// by the rebuild-on-restore fallback and future shard factories).
func buildOptsOf(ix Index) BuildOptions {
	if h, ok := ix.(hintedIndex); ok {
		return buildOptsOf(h.Index)
	}
	switch v := ix.(type) {
	case *bruteIndex:
		return v.opt
	case *diagramIndex:
		return v.opt
	case *vprIndex:
		return v.opt
	case *monteCarloIndex:
		return v.opt
	case *spiralIndex:
		return v.opt
	case *plannedIndex:
		return v.buildOpts
	case *routedIndex:
		if len(v.parts) > 0 {
			return buildOptsOf(v.parts[0])
		}
	}
	return BuildOptions{}
}

// encodeDataset writes the dataset rows in SoA form: the exact arrays
// the kernel.Flat mirror holds, so restore adopts them without a
// conversion pass.
func encodeDataset(ds *Dataset) ([]byte, uint8, error) {
	var e snapshot.Enc
	switch {
	case ds.Squares != nil:
		n := len(ds.Squares)
		cx, cy, r := make([]float64, n), make([]float64, n), make([]float64, n)
		for i, s := range ds.Squares {
			cx[i], cy[i], r[i] = s.C.X, s.C.Y, s.R
		}
		e.U8(dsKindSquares)
		e.F64s(cx)
		e.F64s(cy)
		e.F64s(r)
		return e.Bytes(), dsKindSquares, nil
	case ds.Discrete != nil:
		off := make([]int32, 1, len(ds.Discrete)+1)
		var xs, ys, w []float64
		for _, p := range ds.Discrete {
			for a, l := range p.Locs {
				xs = append(xs, l.X)
				ys = append(ys, l.Y)
				w = append(w, p.W[a])
			}
			off = append(off, int32(len(xs)))
		}
		e.U8(dsKindDiscrete)
		e.I32s(off)
		e.F64s(xs)
		e.F64s(ys)
		e.F64s(w)
		return e.Bytes(), dsKindDiscrete, nil
	case ds.Disks != nil:
		// Restore reconstructs UniformDisk points from the disk rows; any
		// other region type (truncated Gaussian) would silently change its
		// quantification semantics, so refuse it honestly.
		for _, p := range ds.Points {
			if _, ok := p.(uncertain.UniformDisk); !ok {
				return nil, 0, fmt.Errorf("dataset holds a %T: only uniform-disk, discrete, and square datasets are snapshottable", p)
			}
		}
		n := len(ds.Disks)
		cx, cy, r := make([]float64, n), make([]float64, n), make([]float64, n)
		for i, d := range ds.Disks {
			cx[i], cy[i], r[i] = d.C.X, d.C.Y, d.R
		}
		e.U8(dsKindDisks)
		e.F64s(cx)
		e.F64s(cy)
		e.F64s(r)
		return e.Bytes(), dsKindDisks, nil
	default:
		return nil, 0, fmt.Errorf("dataset has no flat family (mixed or continuous points): not snapshottable")
	}
}

// encodeIDsBBox writes a shard's global id list and bounding box.
func encodeIDsBBox(e *snapshot.Enc, ids []int, bbox geom.Rect) {
	ids32 := make([]int32, len(ids))
	for i, id := range ids {
		ids32[i] = int32(id)
	}
	e.I32s(ids32)
	e.F64(bbox.Min.X)
	e.F64(bbox.Min.Y)
	e.F64(bbox.Max.X)
	e.F64(bbox.Max.Y)
}

// encodeSlab writes one kd-tree's implicit arrays.
func encodeSlab(e *snapshot.Enc, t *kdtree.FlatTree) {
	s := t.Slab()
	e.U64(uint64(s.N))
	e.F64s(s.MinX)
	e.F64s(s.MinY)
	e.F64s(s.MaxX)
	e.F64s(s.MaxY)
	e.F64s(s.MinW)
	e.F64s(s.MaxW)
	e.I32s(s.Lo)
	e.I32s(s.Hi)
	e.F64s(s.Xs)
	e.F64s(s.Ys)
	e.F64s(s.Ws)
	e.I32s(s.IDs)
}

// exportIndexMeta describes ix (recursively for composites); the binary
// payloads are written separately by exportIndexPayload in the same
// traversal order.
func exportIndexMeta(ix Index) (*snapIndexMeta, error) {
	if h, ok := ix.(hintedIndex); ok {
		im, err := exportIndexMeta(h.Index)
		if err != nil {
			return nil, err
		}
		im.Hinted = true
		im.Hint = h.hint
		im.N = h.n
		return im, nil
	}
	switch v := ix.(type) {
	case *bruteIndex:
		return &snapIndexMeta{Kind: "brute", Backend: string(BackendBrute)}, nil
	case *twoStageDisksIndex:
		return &snapIndexMeta{Kind: "kd", Backend: string(BackendTwoStageDisks)}, nil
	case *twoStageDiscreteIndex:
		return &snapIndexMeta{Kind: "kd2", Backend: string(BackendTwoStageDiscrete)}, nil
	case *linfIndex:
		return &snapIndexMeta{Kind: "kd", Backend: string(BackendTwoStageLinf)}, nil
	case *l1Index:
		return &snapIndexMeta{Kind: "kd", Backend: string(BackendTwoStageL1)}, nil
	case *diagramIndex, *vprIndex, *monteCarloIndex, *spiralIndex, *expectedIndex:
		return &snapIndexMeta{Kind: "rebuild", Backend: ix.Name()}, nil
	case *plannedIndex:
		im := &snapIndexMeta{Kind: "planned", Plan: planToSnap(v.plan), Hint: v.hint, N: v.n}
		for _, part := range v.partsInOrder() {
			pm, err := exportIndexMeta(part)
			if err != nil {
				return nil, err
			}
			im.Parts = append(im.Parts, *pm)
		}
		return im, nil
	case *routedIndex:
		im := &snapIndexMeta{Kind: "routed", Hint: v.hint, N: v.n}
		for _, part := range v.parts {
			pm, err := exportIndexMeta(part)
			if err != nil {
				return nil, err
			}
			im.Parts = append(im.Parts, *pm)
		}
		return im, nil
	default:
		return nil, fmt.Errorf("cannot snapshot index type %T", v)
	}
}

// exportIndexPayload writes ix's binary payload (kd slabs, in the same
// traversal order exportIndexMeta describes).
func exportIndexPayload(e *snapshot.Enc, ix Index) error {
	if h, ok := ix.(hintedIndex); ok {
		return exportIndexPayload(e, h.Index)
	}
	switch v := ix.(type) {
	case *twoStageDisksIndex:
		encodeSlab(e, v.ts.Tree())
	case *twoStageDiscreteIndex:
		centers, locs := v.ts.Trees()
		encodeSlab(e, centers)
		encodeSlab(e, locs)
	case *linfIndex:
		encodeSlab(e, v.ts.Tree())
	case *l1Index:
		encodeSlab(e, v.ts.Tree())
	case *plannedIndex:
		for _, part := range v.partsInOrder() {
			if err := exportIndexPayload(e, part); err != nil {
				return err
			}
		}
	case *routedIndex:
		for _, part := range v.parts {
			if err := exportIndexPayload(e, part); err != nil {
				return err
			}
		}
	}
	return nil // brute and rebuild kinds carry no payload
}

// partsInOrder lists the composite's distinct built parts in registry
// kind order — the deterministic traversal both the meta and payload
// writers follow.
func (px *plannedIndex) partsInOrder() []Index {
	var out []Index
	seen := map[Index]bool{}
	for _, kind := range queryKinds() {
		if ix, ok := px.byKind[kind]; ok && !seen[ix] {
			seen[ix] = true
			out = append(out, ix)
		}
	}
	return out
}

func containsRebuild(im *snapIndexMeta) bool {
	if im.Kind == "rebuild" {
		return true
	}
	for i := range im.Parts {
		if containsRebuild(&im.Parts[i]) {
			return true
		}
	}
	return false
}

func planToSnap(p *Plan) *snapPlan {
	sp := &snapPlan{
		N: p.N, Nonzero: p.Mix.Nonzero, Probs: p.Mix.Probs, Expected: p.Mix.Expected,
		TopK: p.Mix.TopK, Horizon: p.Horizon, Probed: p.Probed,
	}
	for _, kind := range queryKinds() {
		if ch, ok := p.Choices[kind]; ok {
			sp.Choices = append(sp.Choices, snapChoice{
				Kind: uint8(kind), Backend: string(ch.Backend),
				QueryNs: ch.QueryNs, BuildNs: ch.BuildNs,
				RunnerUp: string(ch.RunnerUp), RunnerUpNs: ch.RunnerUpNs,
			})
		}
	}
	return sp
}

func coefsFromCalibration(cal Calibration) []snapCoef {
	ops := make([]CostOp, 0, numKinds+1)
	ops = append(ops, OpBuild)
	for i := range kindTable {
		ops = append(ops, kindTable[i].op)
	}
	out := make([]snapCoef, 0, len(cal))
	for _, b := range Backends() {
		for _, op := range ops {
			if v, ok := cal[CostKey{b, op}]; ok {
				out = append(out, snapCoef{Backend: string(b), Op: uint8(op), Coef: v})
			}
		}
	}
	return out
}

// --- import -----------------------------------------------------------------

// ReadSnapshot reassembles an Engine from a snapshot written by
// WriteSnapshot. Load cost is I/O plus slice adoption: the dataset rows
// and every kd-tree restore as decoded slabs (no geometry recomputation,
// no calibration probes); only backends without flat state rebuild.
// Malformed input returns an error (wrapping snapshot.ErrCorrupt) and
// never panics.
func ReadSnapshot(r io.Reader) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("engine: open snapshot: %w", err)
	}
	e, err := readSnapshotBytes(data)
	if err != nil {
		return nil, fmt.Errorf("engine: open snapshot: %w", err)
	}
	return e, nil
}

func readSnapshotBytes(data []byte) (*Engine, error) {
	sr, err := snapshot.NewReader(data)
	if err != nil {
		return nil, err
	}
	mb, _, ok := sr.Section(secMeta)
	if !ok {
		return nil, errCorrupt("missing meta section")
	}
	var meta snapMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, errCorrupt("meta: %v", err)
	}
	if meta.N <= 0 {
		return nil, errCorrupt("meta: non-positive item count %d", meta.N)
	}
	if err := validateMetaRanges(&meta); err != nil {
		return nil, err
	}
	db, _, ok := sr.Section(secDataset)
	if !ok {
		return nil, errCorrupt("missing dataset section")
	}
	dd, err := decodeDataset(db, meta.N)
	if err != nil {
		return nil, err
	}
	if dd.kind != meta.DatasetKind {
		return nil, errCorrupt("dataset kind %d disagrees with meta %d", dd.kind, meta.DatasetKind)
	}
	var ix Index
	switch meta.Family {
	case "sharded":
		ix, err = restoreSharded(sr, &meta, dd)
	case "plain":
		pb, _, ok := sr.Section(secTop)
		if !ok {
			return nil, errCorrupt("missing top-index section")
		}
		if meta.Top == nil {
			return nil, errCorrupt("missing top-index meta")
		}
		ix, err = restoreIndex(meta.Top, snapshot.NewDec(pb), dd.ds, meta.Build)
	default:
		return nil, errCorrupt("unknown family %q", meta.Family)
	}
	if err != nil {
		return nil, err
	}
	return restoreEngine(ix, meta.Run), nil
}

// validateMetaRanges bounds the meta-driven knobs that size work or
// memory on restore. The bounds are far beyond any real configuration;
// they exist so corrupted input fails fast instead of driving a
// pathological rebuild (e.g. a bit-flipped MCRounds forcing billions of
// Monte-Carlo instantiations) or allocation.
func validateMetaRanges(meta *snapMeta) error {
	const lim = 1 << 24
	b := &meta.Build
	for name, v := range map[string]int{
		"MCRounds":           b.MCRounds,
		"Diagram.Gamma.Grid": b.Diagram.Gamma.Grid,
		"Workers":            meta.Run.Workers,
		"ServeBuffer":        meta.Run.ServeBuffer,
		"Shard.Shards":       meta.Shard.Shards,
		"Shard.BuildWorkers": meta.Shard.BuildWorkers,
	} {
		if v < -1 || v > lim {
			return errCorrupt("meta: %s = %d out of range", name, v)
		}
	}
	if meta.Run.CacheSize < 0 || meta.Run.CacheSize > 1<<30 {
		return errCorrupt("meta: CacheSize = %d out of range", meta.Run.CacheSize)
	}
	if rp := meta.Run.Replan; rp != nil {
		if rp.Window < 0 || rp.Window > lim || rp.Cooldown < 0 || rp.Cooldown > lim {
			return errCorrupt("meta: Replan window/cooldown out of range")
		}
		if math.IsNaN(rp.ErrFactor) || math.IsInf(rp.ErrFactor, 0) ||
			math.IsNaN(rp.MixDelta) || math.IsInf(rp.MixDelta, 0) {
			return errCorrupt("meta: Replan thresholds not finite")
		}
	}
	for si := range meta.Shards {
		if len(meta.Shards[si].Rates) > numKinds {
			return errCorrupt("meta: shard %d has %d rate slots", si, len(meta.Shards[si].Rates))
		}
		for _, r := range meta.Shards[si].Rates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return errCorrupt("meta: shard %d rate %v out of range", si, r)
			}
		}
	}
	return nil
}

// restoreEngine replicates NewEngine's wiring, adopting the persisted
// resolved quantum instead of re-deriving it (the adaptive hint would
// otherwise re-pay the dataset-spacing sort).
func restoreEngine(ix Index, run snapRun) *Engine {
	opt := Options{
		Workers:      run.Workers,
		CacheSize:    run.CacheSize,
		CacheQuantum: run.CacheQuantum,
		ServeBuffer:  run.ServeBuffer,
	}
	e := &Engine{ix: ix, opt: opt.withDefaults()}
	e.adaptive = run.Adaptive
	e.quantum.Store(run.QuantumBits)
	if e.opt.CacheSize > 0 {
		e.cache = newCache(e.opt.CacheSize, math.Float64frombits(run.QuantumBits))
	}
	ux := ix
	if h, ok := ux.(hintedIndex); ok {
		ux = h.Index
	}
	if na, ok := ux.(nonzeroAppender); ok {
		e.appender = na
	}
	if ci, ok := ux.(cellIdentifier); ok {
		e.cells = ci
	}
	if rp := run.Replan; rp != nil {
		if sx, ok := ux.(*ShardedIndex); ok && sx.popt != nil {
			e.opt.AdaptiveReplan = &AdaptiveOptions{
				Window:   rp.Window,
				Drift:    DriftThresholds{ErrFactor: rp.ErrFactor, MixDelta: rp.MixDelta},
				Cooldown: rp.Cooldown,
			}
			e.adapt = newAdaptivePlanner(e, sx, *e.opt.AdaptiveReplan)
			e.adapt.restoreState(rp.Replans, rp.LastReason)
		}
	}
	return e
}

// decodedDataset is the dataset section after decode: the reconstructed
// Dataset plus the raw SoA arrays, which makeFlat adopts directly as the
// sharded layer's kernel mirror.
type decodedDataset struct {
	kind uint8
	ds   *Dataset
	// disks / squares rows
	cx, cy, r []float64
	// discrete rows (CSR)
	off        []int32
	xs, ys, ws []float64
}

func decodeDataset(payload []byte, wantN int) (*decodedDataset, error) {
	d := snapshot.NewDec(payload)
	kind, err := d.U8()
	if err != nil {
		return nil, err
	}
	dd := &decodedDataset{kind: kind}
	switch kind {
	case dsKindDisks, dsKindSquares:
		cx, err := d.F64s()
		if err != nil {
			return nil, err
		}
		cy, err := d.F64s()
		if err != nil {
			return nil, err
		}
		r, err := d.F64s()
		if err != nil {
			return nil, err
		}
		if len(cx) != wantN || len(cy) != wantN || len(r) != wantN {
			return nil, errCorrupt("dataset rows %d/%d/%d disagree with meta n=%d", len(cx), len(cy), len(r), wantN)
		}
		dd.cx, dd.cy, dd.r = cx, cy, r
		if kind == dsKindSquares {
			sqs := make([]lmetric.Square, wantN)
			for i := range sqs {
				sqs[i] = lmetric.Square{C: geom.Pt(cx[i], cy[i]), R: r[i]}
			}
			dd.ds = &Dataset{Squares: sqs}
		} else {
			disks := make([]geom.Disk, wantN)
			gen := make([]uncertain.Point, wantN)
			for i := range disks {
				disks[i] = geom.Disk{C: geom.Pt(cx[i], cy[i]), R: r[i]}
				gen[i] = uncertain.UniformDisk{D: disks[i]}
			}
			dd.ds = &Dataset{Points: gen, Disks: disks}
		}
	case dsKindDiscrete:
		off, err := d.I32s()
		if err != nil {
			return nil, err
		}
		xs, err := d.F64s()
		if err != nil {
			return nil, err
		}
		ys, err := d.F64s()
		if err != nil {
			return nil, err
		}
		w, err := d.F64s()
		if err != nil {
			return nil, err
		}
		if len(off) != wantN+1 || off[0] != 0 {
			return nil, errCorrupt("discrete offsets malformed (len %d, meta n=%d)", len(off), wantN)
		}
		total := len(xs)
		if len(ys) != total || len(w) != total || int(off[wantN]) != total {
			return nil, errCorrupt("discrete rows %d/%d/%d disagree with offsets end %d", total, len(ys), len(w), off[wantN])
		}
		for i := 0; i < wantN; i++ {
			if off[i] >= off[i+1] {
				return nil, errCorrupt("discrete row %d has empty or inverted window [%d,%d)", i, off[i], off[i+1])
			}
		}
		// Row views must not alias the flat mirror's arrays: DeleteRow
		// splices the mirror in place while restored rows are immutable.
		locsAll := make([]geom.Point, total)
		for a := range locsAll {
			locsAll[a] = geom.Pt(xs[a], ys[a])
		}
		wRows := make([]float64, total)
		copy(wRows, w)
		pts := make([]*uncertain.Discrete, wantN)
		gen := make([]uncertain.Point, wantN)
		for i := range pts {
			a, b := off[i], off[i+1]
			p, err := uncertain.RestoreDiscrete(locsAll[a:b:b], wRows[a:b:b])
			if err != nil {
				return nil, errCorrupt("discrete row %d: %v", i, err)
			}
			pts[i] = p
			gen[i] = p
		}
		dd.off, dd.xs, dd.ys, dd.ws = off, xs, ys, w
		dd.ds = &Dataset{Points: gen, Discrete: pts}
	default:
		return nil, errCorrupt("unknown dataset kind %d", kind)
	}
	if d.Remaining() != 0 {
		return nil, errCorrupt("dataset section has %d trailing bytes", d.Remaining())
	}
	return dd, nil
}

// makeFlat adopts the decoded SoA arrays as the sharded layer's kernel
// mirror — the zero-copy counterpart of flatForDataset.
func (dd *decodedDataset) makeFlat(m qmetric) *kernel.Flat {
	switch dd.kind {
	case dsKindSquares:
		km := kernel.MetricLinf
		if m == metricL1 {
			km = kernel.MetricL1
		}
		return &kernel.Flat{Kind: kernel.KindSquares, Metric: km, N: len(dd.cx), CX: dd.cx, CY: dd.cy, R: dd.r}
	case dsKindDiscrete:
		return &kernel.Flat{Kind: kernel.KindDiscrete, N: len(dd.off) - 1, Xs: dd.xs, Ys: dd.ys, W: dd.ws, Off: dd.off}
	default:
		return &kernel.Flat{Kind: kernel.KindDisks, N: len(dd.cx), CX: dd.cx, CY: dd.cy, R: dd.r}
	}
}

// restoreSharded reassembles a ShardedIndex: configuration from meta,
// the kernel mirror from the decoded dataset slabs, and the shards
// decoded in parallel from their sections.
func restoreSharded(sr *snapshot.Reader, meta *snapMeta, dd *decodedDataset) (*ShardedIndex, error) {
	sx := &ShardedIndex{
		name:       meta.Name,
		backend:    Backend(meta.Backend),
		metric:     qmetric(meta.Metric),
		opt:        meta.Shard,
		bopt:       meta.Build,
		planNote:   meta.PlanNote,
		epoch:      meta.Epoch,
		target:     meta.Target,
		ds:         dd.ds,
		owned:      true, // decoded views are private by construction
		flat:       dd.makeFlat(qmetric(meta.Metric)),
		n:          meta.N,
		bufInserts: meta.BufInserts,
		bufFlushes: meta.BufFlushes,
	}
	if sx.target < 1 {
		return nil, errCorrupt("per-shard target %d", sx.target)
	}
	if len(meta.Model) > 0 {
		sx.model = NewCostModel(calibrationFromCoefs(meta.Model))
	}
	switch meta.Sub {
	case "named":
		if sx.backend == "" {
			return nil, errCorrupt("named sharded index without a backend")
		}
		b, bopt := sx.backend, sx.bopt
		sx.factory = func(sub *Dataset) (Index, error) { return Build(b, sub, bopt) }
	case "auto":
		_, sx.factory = autoFactory(dd.ds, sx.bopt)
	case "planned":
		if meta.Planner == nil {
			return nil, errCorrupt("planned sharded index without planner options")
		}
		popt := PlannerOptions{
			Mix: Workload{
				Nonzero:  meta.Planner.Nonzero,
				Probs:    meta.Planner.Probs,
				Expected: meta.Planner.Expected,
				TopK:     meta.Planner.TopK,
			},
			Horizon:       meta.Planner.Horizon,
			RandomPenalty: meta.Planner.RandomPenalty,
			NoProbe:       true, // never re-probe: the persisted model has the coefficients
		}
		sx.popt = &popt
		sx.probed = meta.Planner.Probed
		model := sx.model
		if model == nil {
			model = NewCostModel(nil)
			sx.model = model
		}
		probed := sx.probed
		bopt := sx.bopt
		sx.factory = func(sub *Dataset) (Index, error) {
			p := planFor(sub, model, popt)
			p.Probed = probed
			px := &plannedIndex{plan: p, buildOpts: bopt}
			if err := px.Build(sub); err != nil {
				return nil, err
			}
			return px, nil
		}
	default:
		return nil, errCorrupt("unknown sharded factory %q", meta.Sub)
	}
	if sx.opt.InsertBuffer && sx.model == nil {
		sx.model = NewCostModel(nil)
	}

	// Parallel per-shard section decode.
	sx.shards = make([]*shard, len(meta.Shards))
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, runtime.NumCPU())
		mu       sync.Mutex
		firstErr error
	)
	for si := range meta.Shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := decodeShard(sr, si, &meta.Shards[si], sx)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			sx.shards[si] = s
		}(si)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Re-seed the adaptive workload profiles (temperatures) so a
	// restored fleet resumes warm. lastVisits stays 0 alongside the
	// freshly zeroed visit counters.
	for si, s := range sx.shards {
		for i, r := range meta.Shards[si].Rates {
			if i >= numKinds {
				break
			}
			s.setRate(i, r)
		}
	}

	if meta.HasBuffer {
		bb, _, ok := sr.Section(secBuffer)
		if !ok {
			return nil, errCorrupt("missing insert-buffer section")
		}
		d := snapshot.NewDec(bb)
		ids, bbox, err := decodeIDsBBox(d, sx.n)
		if err != nil {
			return nil, fmt.Errorf("insert buffer: %w", err)
		}
		sx.buf = &shard{ids: ids, bbox: bbox}
		if len(ids) > 0 {
			sx.buf.sub = subset(sx.ds, ids)
			ix, err := sx.shardFactory(sx.buf.sub)
			if err != nil {
				return nil, fmt.Errorf("insert buffer rebuild: %w", err)
			}
			sx.buf.ix = ix
		}
	}

	// Every global id must be owned by exactly one shard (or the buffer):
	// a corrupted partition would silently drop or double-count answers.
	seen := make([]bool, sx.n)
	claim := func(ids []int) error {
		for _, id := range ids {
			if seen[id] {
				return errCorrupt("item %d owned by two shards", id)
			}
			seen[id] = true
		}
		return nil
	}
	for _, s := range sx.shards {
		if err := claim(s.ids); err != nil {
			return nil, err
		}
	}
	if sx.buf != nil {
		if err := claim(sx.buf.ids); err != nil {
			return nil, err
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, errCorrupt("item %d owned by no shard", id)
		}
	}

	if !sx.recomputeCaps() {
		return nil, errCorrupt("no shard restored")
	}
	return sx, nil
}

func decodeShard(sr *snapshot.Reader, si int, sm *snapShard, sx *ShardedIndex) (*shard, error) {
	payload, _, ok := sr.Section(secShardBase + uint32(si))
	if !ok {
		return nil, errCorrupt("missing section of shard %d", si)
	}
	d := snapshot.NewDec(payload)
	ids, bbox, err := decodeIDsBBox(d, sx.n)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", si, err)
	}
	if len(ids) != sm.Items {
		return nil, errCorrupt("shard %d holds %d ids, meta says %d", si, len(ids), sm.Items)
	}
	s := &shard{ids: ids, bbox: bbox}
	if len(ids) > 0 {
		if sm.Index == nil {
			return nil, errCorrupt("non-empty shard %d has no index meta", si)
		}
		s.sub = subset(sx.ds, ids)
		s.ix, err = restoreIndex(sm.Index, d, s.sub, sx.bopt)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return s, nil
}

// decodeIDsBBox reads and validates a shard's id list (strictly
// ascending, in range) and bounding box.
func decodeIDsBBox(d *snapshot.Dec, n int) ([]int, geom.Rect, error) {
	var box geom.Rect
	ids32, err := d.I32s()
	if err != nil {
		return nil, box, err
	}
	ids := make([]int, len(ids32))
	prev := -1
	for i, id := range ids32 {
		if int(id) <= prev || int(id) >= n {
			return nil, box, errCorrupt("id %d out of order or range (n=%d)", id, n)
		}
		prev = int(id)
		ids[i] = int(id)
	}
	for _, p := range []*float64{&box.Min.X, &box.Min.Y, &box.Max.X, &box.Max.Y} {
		v, err := d.F64()
		if err != nil {
			return nil, box, err
		}
		*p = v
	}
	return ids, box, nil
}

func decodeSlab(d *snapshot.Dec) (*kdtree.FlatTree, error) {
	n, err := d.U64()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, errCorrupt("kd slab item count %d exceeds payload", n)
	}
	var s kdtree.Slab
	s.N = int(n)
	for _, dst := range []*[]float64{&s.MinX, &s.MinY, &s.MaxX, &s.MaxY, &s.MinW, &s.MaxW} {
		if *dst, err = d.F64s(); err != nil {
			return nil, err
		}
	}
	if s.Lo, err = d.I32s(); err != nil {
		return nil, err
	}
	if s.Hi, err = d.I32s(); err != nil {
		return nil, err
	}
	for _, dst := range []*[]float64{&s.Xs, &s.Ys, &s.Ws} {
		if *dst, err = d.F64s(); err != nil {
			return nil, err
		}
	}
	if s.IDs, err = d.I32s(); err != nil {
		return nil, err
	}
	t, err := kdtree.FlatFromSlab(s)
	if err != nil {
		return nil, errCorrupt("%v", err)
	}
	return t, nil
}

// restoreIndex reassembles one index component from its meta and the
// shared payload decoder (consumed in meta order).
func restoreIndex(im *snapIndexMeta, d *snapshot.Dec, sub *Dataset, bopt BuildOptions) (Index, error) {
	inner, err := restoreAdapter(im, d, sub, bopt)
	if err != nil {
		return nil, err
	}
	if im.Hinted {
		return hintedIndex{Index: inner, hint: im.Hint, n: im.N, ds: sub}, nil
	}
	return inner, nil
}

func restoreAdapter(im *snapIndexMeta, d *snapshot.Dec, sub *Dataset, bopt BuildOptions) (Index, error) {
	switch im.Kind {
	case "brute":
		if len(sub.Points) == 0 {
			return nil, errCorrupt("brute backend over a dataset without points")
		}
		// The flat mirror lowers lazily on first query (ensureFlat), via
		// the shardFlatPool reuse path — restored shards keep the
		// zero-alloc steady state.
		return &bruteIndex{opt: bopt.withDefaults(), ds: sub}, nil
	case "kd":
		t, err := decodeSlab(d)
		if err != nil {
			return nil, err
		}
		switch Backend(im.Backend) {
		case BackendTwoStageDisks:
			if sub.Disks == nil || t.Len() != len(sub.Disks) {
				return nil, errCorrupt("twostage-disks tree/dataset mismatch")
			}
			return &twoStageDisksIndex{ts: nonzero.RestoreTwoStageDisks(sub.Disks, t)}, nil
		case BackendTwoStageLinf:
			if sub.Squares == nil || t.Len() != len(sub.Squares) {
				return nil, errCorrupt("twostage-linf tree/dataset mismatch")
			}
			return &linfIndex{ts: lmetric.RestoreTwoStageLinf(sub.Squares, t)}, nil
		case BackendTwoStageL1:
			if sub.Squares == nil || t.Len() != len(sub.Squares) {
				return nil, errCorrupt("twostage-l1 tree/dataset mismatch")
			}
			return &l1Index{ts: lmetric.RestoreTwoStageL1(sub.Squares, t)}, nil
		default:
			return nil, errCorrupt("kd payload for backend %q", im.Backend)
		}
	case "kd2":
		centers, err := decodeSlab(d)
		if err != nil {
			return nil, err
		}
		locs, err := decodeSlab(d)
		if err != nil {
			return nil, err
		}
		if sub.Discrete == nil || centers.Len() != len(sub.Discrete) {
			return nil, errCorrupt("twostage-discrete trees/dataset mismatch")
		}
		return &twoStageDiscreteIndex{ts: nonzero.RestoreTwoStageDiscrete(sub.Discrete, centers, locs)}, nil
	case "rebuild":
		ix, err := NewIndex(Backend(im.Backend), bopt)
		if err != nil {
			return nil, errCorrupt("%v", err)
		}
		if err := ix.Build(sub); err != nil {
			return nil, fmt.Errorf("rebuild %s: %w", im.Backend, err)
		}
		return ix, nil
	case "planned":
		if im.Plan == nil || len(im.Plan.Choices) == 0 {
			return nil, errCorrupt("planned composite without a plan")
		}
		plan := planFromSnap(im.Plan)
		px := &plannedIndex{plan: plan, buildOpts: bopt, hint: im.Hint, n: im.N, ds: sub}
		byBackend := map[Backend]Index{}
		for pi := range im.Parts {
			part, err := restoreIndex(&im.Parts[pi], d, sub, bopt)
			if err != nil {
				return nil, err
			}
			byBackend[Backend(im.Parts[pi].Backend)] = part
		}
		px.byKind = map[Capability]Index{}
		for kind, ch := range plan.Choices {
			part, ok := byBackend[ch.Backend]
			if !ok {
				return nil, errCorrupt("plan assigns %s to %s but no such part was persisted", kind, ch.Backend)
			}
			if !part.Capabilities().Has(kind) {
				return nil, errCorrupt("restored %s part cannot answer %s", ch.Backend, kind)
			}
			px.byKind[kind] = part
			px.caps |= kind
		}
		return px, nil
	case "routed":
		r := &routedIndex{hint: im.Hint, n: im.N, ds: sub}
		if len(im.Parts) == 0 {
			return nil, errCorrupt("routed composite without parts")
		}
		for pi := range im.Parts {
			part, err := restoreIndex(&im.Parts[pi], d, sub, bopt)
			if err != nil {
				return nil, err
			}
			r.parts = append(r.parts, part)
			r.caps |= part.Capabilities()
		}
		return r, nil
	default:
		return nil, errCorrupt("unknown index kind %q", im.Kind)
	}
}

func planFromSnap(sp *snapPlan) *Plan {
	p := &Plan{
		N:       sp.N,
		Mix:     Workload{Nonzero: sp.Nonzero, Probs: sp.Probs, Expected: sp.Expected, TopK: sp.TopK},
		Horizon: sp.Horizon,
		Probed:  sp.Probed,
		Choices: map[Capability]Choice{},
	}
	for _, ch := range sp.Choices {
		p.Choices[Capability(ch.Kind)] = Choice{
			Backend: Backend(ch.Backend), QueryNs: ch.QueryNs, BuildNs: ch.BuildNs,
			RunnerUp: Backend(ch.RunnerUp), RunnerUpNs: ch.RunnerUpNs,
		}
	}
	return p
}

func calibrationFromCoefs(coefs []snapCoef) Calibration {
	cal := make(Calibration, len(coefs))
	for _, c := range coefs {
		cal[CostKey{Backend(c.Backend), CostOp(c.Op)}] = c.Coef
	}
	return cal
}
