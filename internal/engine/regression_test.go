package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/uncertain"
)

// TestBatchErrorLowestIndex: the batch executor must report the lowest
// failing input index whatever the worker scheduling — the same index
// the sequential path would report. Query 50 fails instantly while
// query 11 fails slowly, so a worker races the higher index into the
// error slot first; the report must still name 11.
func TestBatchErrorLowestIndex(t *testing.T) {
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Pt(float64(i), 0)
	}
	for trial := 0; trial < 25; trial++ {
		_, err := batch(8, qs, func(q geom.Point) (int, error) {
			i := int(q.X)
			switch i {
			case 11:
				time.Sleep(200 * time.Microsecond)
				return 0, fmt.Errorf("boom %d", i)
			case 50:
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("trial %d: batch with failing queries returned nil error", trial)
		}
		if want := "engine: batch query 11: boom 11"; err.Error() != want {
			t.Fatalf("trial %d: err = %q, want %q", trial, err, want)
		}
	}
}

// TestBatchErrorStopsFeeding: once an error is recorded, the feeder
// stops handing out work — a failing batch must not evaluate every
// remaining query.
func TestBatchErrorStopsFeeding(t *testing.T) {
	const n = 10_000
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(float64(i), 0)
	}
	evaluated := make([]int32, n)
	_, err := batch(4, qs, func(q geom.Point) (int, error) {
		i := int(q.X)
		evaluated[i] = 1
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	ran := 0
	for _, v := range evaluated {
		ran += int(v)
	}
	if ran == n {
		t.Fatalf("all %d queries ran despite the early error", n)
	}
}

// TestCacheEpsCanonicalKey: every eps ≤ 0 means "backend default", so
// all such queries must share one cache entry — a default-eps query
// hits after a put keyed by eps = -1.
func TestCacheEpsCanonicalKey(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe5))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 10, 2, 20, 1.0, 1))
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{Workers: 1, CacheSize: 16})
	q := geom.Pt(10, 10)
	if _, err := eng.QueryProbs(q, -1); err != nil { // miss, put
		t.Fatal(err)
	}
	if _, err := eng.QueryProbs(q, 0); err != nil { // must hit
		t.Fatal(err)
	}
	if _, err := eng.QueryProbs(q, -0.5); err != nil { // must hit
		t.Fatal(err)
	}
	hits, misses := eng.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("eps ≤ 0 queries: %d hits / %d misses, want 2/1", hits, misses)
	}
	// A positive eps is a real accuracy request and keys separately.
	if _, err := eng.QueryProbs(q, 0.1); err != nil {
		t.Fatal(err)
	}
	if hits, misses = eng.CacheStats(); hits != 2 || misses != 2 {
		t.Fatalf("after eps = 0.1: %d hits / %d misses, want 2/2", hits, misses)
	}
}

// TestShardedExpectedTieBreak pins the merge planner's tie-break: two
// shards whose local winners have exactly equal expected distance must
// yield the smaller global index, matching the monolithic
// first-strict-min scan. The nearer shard (by bounding-box lower bound)
// holds the LARGER global index, so the planner must overturn its
// provisional winner on the d == bestD comparison.
func TestShardedExpectedTieBreak(t *testing.T) {
	p0 := uncertain.UniformDiscrete([]geom.Point{geom.Pt(0, 0)})
	p1 := uncertain.UniformDiscrete([]geom.Point{geom.Pt(1.5, 0), geom.Pt(2.5, 0)})
	ds := FromDiscrete([]*uncertain.Discrete{p0, p1})
	q := geom.Pt(1, 0)
	// E[d(q, p0)] = 1 exactly; E[d(q, p1)] = (0.5 + 1.5)/2 = 1 exactly;
	// p1's bbox is nearer to q (lb 0.5 < 1), so its shard is scanned
	// first.
	mono, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wi, wd, err := mono.QueryExpected(q)
	if err != nil {
		t.Fatal(err)
	}
	if wi != 0 || wd != 1 {
		t.Fatalf("monolithic winner (%d, %v), want (0, 1)", wi, wd)
	}
	sx := shardedOver(t, BackendBrute, ds, 2, BuildOptions{})
	if sizes := sx.(*ShardedIndex).shardSizes(); len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("partition %v, want the two points in separate shards", sizes)
	}
	gi, gd, err := sx.QueryExpected(q)
	if err != nil {
		t.Fatal(err)
	}
	if gi != wi || gd != wd {
		t.Fatalf("sharded winner (%d, %v), want (%d, %v)", gi, gd, wi, wd)
	}
}

// TestShardedSquaresSurvival: the continuous-probs merge helpers used
// to dereference ds.Points, which a squares-only dataset (FromSquares)
// does not have — survival and the cross-survival integral panicked.
// They now derive the distance cdf from the square region itself.
func TestShardedSquaresSurvival(t *testing.T) {
	squares := []lmetric.Square{
		{C: geom.Pt(0, 0), R: 1},
		{C: geom.Pt(10, 0), R: 1},
		{C: geom.Pt(0, 10), R: 2},
		{C: geom.Pt(10, 10), R: 0}, // zero-area point mass
	}
	ds := FromSquares(squares)
	sx, err := NewSharded(BackendTwoStageLinf, BuildOptions{}, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Build(ds); err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(1, 1)
	ordered := sx.appendParts(q, nil)
	for _, bs := range ordered {
		for _, r := range []float64{0, 0.5, 2, 20} {
			if v := sx.survival(q, r, bs, -1); v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("survival(r=%v) = %v out of [0,1]", r, v)
			}
		}
	}
	for gi := range squares {
		if v := sx.conditionalCrossSurvival(q, gi, ordered, 0); v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("conditionalCrossSurvival(%d) = %v out of [0,1]", gi, v)
		}
	}
	// No squares backend quantifies, so the public path still reports
	// ErrUnsupported — but it must get there without panicking.
	if _, err := sx.QueryProbs(q, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("QueryProbs err = %v, want ErrUnsupported", err)
	}
}

// TestSquareDistCDF checks the derived uniform-on-square distance cdf:
// boundary behavior, monotonicity, and a closed-form interior value
// under both the L∞ and the (rotated) L1 metric.
func TestSquareDistCDF(t *testing.T) {
	s := lmetric.Square{C: geom.Pt(0, 0), R: 1}
	for _, m := range []qmetric{metricLinf, metricL1} {
		q := geom.Pt(0, 0)
		if got := squareDistCDF(s, m, q, 0.5); math.Abs(got-0.25) > 1e-12 {
			t.Fatalf("metric %d: cdf(0.5) = %v, want 0.25", m, got)
		}
		if got := squareDistCDF(s, m, q, 1); got != 1 {
			t.Fatalf("metric %d: cdf(Δ) = %v, want 1", m, got)
		}
		prev := -1.0
		for r := 0.0; r <= 2; r += 0.05 {
			v := squareDistCDF(s, m, q, r)
			if v < prev {
				t.Fatalf("metric %d: cdf not monotone at r=%v", m, r)
			}
			prev = v
		}
	}
	// Far query: zero below δ, one at Δ.
	q := geom.Pt(5, 0)
	if got := squareDistCDF(s, metricLinf, q, 3.9); got != 0 {
		t.Fatalf("cdf below δ = %v, want 0", got)
	}
	if got := squareDistCDF(s, metricLinf, q, 6); got != 1 {
		t.Fatalf("cdf at Δ = %v, want 1", got)
	}
	// Point mass: step function at its distance.
	pm := lmetric.Square{C: geom.Pt(2, 0), R: 0}
	if got := squareDistCDF(pm, metricLinf, geom.Pt(0, 0), 1.9); got != 0 {
		t.Fatalf("point-mass cdf below distance = %v, want 0", got)
	}
	if got := squareDistCDF(pm, metricLinf, geom.Pt(0, 0), 2); got != 1 {
		t.Fatalf("point-mass cdf at distance = %v, want 1", got)
	}
}
