package engine

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/uncertain"
)

// TestDynamicParityBatchedMutations extends the dynamic layer's core
// contract to the epoch-coalesced path: after ANY interleaving of
// BatchMutate bursts and single mutations — with and without the
// insert buffer, in both split modes — the index answers every query
// kind like a freshly built monolithic backend over the survivors
// (bit-identical NN≠0 and E[d], π within eps), including right after
// every buffer flush, and the epoch advances once per batch.
func TestDynamicParityBatchedMutations(t *testing.T) {
	for _, tc := range []struct {
		name   string
		split  Split
		buffer bool
	}{
		{"kdmedian", SplitKDMedian, false},
		{"grid", SplitGrid, false},
		{"kdmedian-buffer", SplitKDMedian, true},
		{"grid-buffer", SplitGrid, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xba7c4 ^ int64(tc.split)))
			const side = 80.0
			pool := constructions.RandomDiscrete(rng, 400, 3, side, 2.0, 1)
			live := append([]*uncertain.Discrete(nil), pool[:32]...)
			next := 32
			sopt := ShardOptions{Shards: 4, Split: tc.split}
			if tc.buffer {
				sopt.InsertBuffer = true
				sopt.FlushThreshold = 6 // small, so the sweep crosses several flushes
			}
			sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), live...)), sopt)
			qs := randQueries(rng, 8, side)
			epochs := uint64(0)
			for step := 0; step < 24; step++ {
				if step%3 == 2 {
					// A single mutation between bursts.
					i := rng.Intn(len(live))
					if _, err := sx.Delete(i); err != nil {
						t.Fatalf("step %d: delete: %v", step, err)
					}
					live = append(live[:i], live[i+1:]...)
					epochs++
				} else {
					// A burst of 4–12 mutations, ~2/3 inserts.
					m := 4 + rng.Intn(9)
					var ms []Mutation
					virtual := append([]*uncertain.Discrete(nil), live...)
					for j := 0; j < m; j++ {
						if (rng.Intn(3) > 0 && next < len(pool)) || len(virtual) <= 2 {
							p := pool[next]
							next++
							ms = append(ms, InsertMutation(Item{Point: p}))
							virtual = append(virtual, p)
						} else {
							i := rng.Intn(len(virtual))
							ms = append(ms, DeleteMutation(i))
							virtual = append(virtual[:i], virtual[i+1:]...)
						}
					}
					res, err := sx.BatchMutate(ms)
					if err != nil {
						t.Fatalf("step %d: batch: %v", step, err)
					}
					// Results carry the sequential semantics: inserted global
					// indices and post-delete live counts.
					vn := len(live)
					for mi, mu := range ms {
						if mu.Op == OpInsert {
							if res[mi] != vn {
								t.Fatalf("step %d: insert %d returned index %d, want %d", step, mi, res[mi], vn)
							}
							vn++
						} else {
							vn--
							if res[mi] != vn {
								t.Fatalf("step %d: delete %d returned count %d, want %d", step, mi, res[mi], vn)
							}
						}
					}
					live = virtual
					epochs++
				}
				if sx.Len() != len(live) {
					t.Fatalf("step %d: Len=%d, want %d", step, sx.Len(), len(live))
				}
				if sx.Epoch() != epochs {
					t.Fatalf("step %d: epoch=%d, want one bump per batch (%d)", step, sx.Epoch(), epochs)
				}
				checkSizeInvariant(t, sx, tc.name)
				checkDynamicParity(t, sx, live, qs, tc.name)
			}
			if tc.buffer {
				_, inserts, flushes := sx.BufferStats()
				if inserts == 0 {
					t.Fatal("insert buffer absorbed no inserts")
				}
				if flushes == 0 {
					t.Fatal("insert buffer never flushed despite the tiny threshold")
				}
			}
		})
	}
}

// TestBatchMutateValidation: validation is atomic — an invalid entry
// anywhere in the batch (simulated index-wise against the virtual size)
// rejects the whole burst before anything is applied.
func TestBatchMutateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(0xa70))
	pts := constructions.RandomDiscrete(rng, 10, 2, 30, 1.0, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 2})
	q := geom.Pt(15, 15)
	before, err := sx.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]Mutation{
		// Out-of-range delete behind a valid insert: index 11 is valid
		// only after the insert applies; 12 never is.
		{InsertMutation(Item{Point: pts[0]}), DeleteMutation(12)},
		// Delete made invalid by the deletes before it.
		{DeleteMutation(9), DeleteMutation(9)},
		// Wrong payload kind.
		{InsertMutation(Item{})},
		{InsertMutation(Item{Point: uncertain.UniformDisk{D: geom.DiskAt(1, 1, 1)}})},
		// Not a mutation op.
		{{Op: CapNonzero}},
		// Deleting down to zero items.
		{
			DeleteMutation(0), DeleteMutation(0), DeleteMutation(0), DeleteMutation(0),
			DeleteMutation(0), DeleteMutation(0), DeleteMutation(0), DeleteMutation(0),
			DeleteMutation(0), DeleteMutation(0),
		},
	}
	for ci, ms := range cases {
		if _, err := sx.BatchMutate(ms); err == nil {
			t.Fatalf("case %d: batch with an invalid entry was accepted", ci)
		}
		if sx.Len() != 10 || sx.Epoch() != 0 {
			t.Fatalf("case %d: rejected batch mutated the index (n=%d, epoch=%d)", ci, sx.Len(), sx.Epoch())
		}
		after, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatalf("case %d: query after rejected batch: %v", ci, err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("case %d: rejected batch changed answers: %v vs %v", ci, after, before)
		}
	}
	// The empty batch is a no-op, not an epoch.
	if res, err := sx.BatchMutate(nil); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	if sx.Epoch() != 0 {
		t.Fatalf("empty batch bumped the epoch to %d", sx.Epoch())
	}
}

// TestBatchMutateCoalescesRebuilds is the point of the tentpole: a
// burst landing in one region rebuilds the owning shard once, not once
// per item — observed through the untouched shards' backend identity
// (the same built instance survives the batch).
func TestBatchMutateCoalescesRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0a1))
	const side = 100.0
	pts := constructions.RandomDiscrete(rng, 64, 2, side, 1.0, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 4})
	// Remember every shard's built instance, keyed by its bbox center.
	type key struct{ x, y float64 }
	prev := map[key]Index{}
	for _, s := range sx.shards {
		c := s.bbox.Center()
		prev[key{c.X, c.Y}] = s.ix
	}
	// A burst clustered at one corner: at most a couple of shards own it.
	var ms []Mutation
	for j := 0; j < 12; j++ {
		loc := geom.Pt(rng.Float64()*3, rng.Float64()*3)
		ms = append(ms, InsertMutation(Item{Point: uncertain.UniformDiscrete([]geom.Point{loc})}))
	}
	if _, err := sx.BatchMutate(ms); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, s := range sx.shards {
		c := s.bbox.Center()
		if old, ok := prev[key{c.X, c.Y}]; ok && old == s.ix {
			kept++
		}
	}
	if kept == 0 {
		t.Fatalf("a 12-insert burst at one corner rebuilt every one of %d shards", len(sx.shards))
	}
}

// TestDynamicInsertBuffer drives the log-structured buffer directly:
// inserts below the threshold leave every main shard's backend
// untouched (the log-structured append), queries still see the buffered
// items exactly, and the flush drains the buffer into the owners.
func TestDynamicInsertBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb0f))
	const side = 60.0
	pool := constructions.RandomDiscrete(rng, 64, 2, side, 1.0, 1)
	live := append([]*uncertain.Discrete(nil), pool[:24]...)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), live...)),
		ShardOptions{Shards: 3, InsertBuffer: true, FlushThreshold: 8})
	mains := make([]Index, 0, len(sx.shards))
	for _, s := range sx.shards {
		mains = append(mains, s.ix)
	}
	qs := randQueries(rng, 8, side)
	for j := 0; j < 7; j++ { // stays below the threshold of 8
		p := pool[24+j]
		if _, err := sx.Insert(Item{Point: p}); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		checkDynamicParity(t, sx, live, qs, "buffered")
	}
	for si, s := range sx.shards {
		if s.ix != mains[si] {
			t.Fatalf("a buffered insert rebuilt main shard %d", si)
		}
	}
	if buffered, inserts, flushes := sx.BufferStats(); buffered != 7 || inserts != 7 || flushes != 0 {
		t.Fatalf("BufferStats = (%d, %d, %d), want (7, 7, 0)", buffered, inserts, flushes)
	}
	// The 8th insert crosses the threshold: the buffer flushes into the
	// owning shards and resets.
	p := pool[31]
	if _, err := sx.Insert(Item{Point: p}); err != nil {
		t.Fatal(err)
	}
	live = append(live, p)
	if buffered, _, flushes := sx.BufferStats(); buffered != 0 || flushes != 1 {
		t.Fatalf("after the flush: buffered=%d flushes=%d, want 0 and 1", buffered, flushes)
	}
	total := 0
	for _, s := range sx.shards {
		total += len(s.ids)
	}
	if total != len(live) {
		t.Fatalf("main shards hold %d items after the flush, want all %d", total, len(live))
	}
	checkDynamicParity(t, sx, live, qs, "flushed")

	// Deleting a buffered item removes it from the buffer in place.
	if _, err := sx.Insert(Item{Point: pool[32]}); err != nil {
		t.Fatal(err)
	}
	live = append(live, pool[32])
	if _, err := sx.Delete(len(live) - 1); err != nil {
		t.Fatal(err)
	}
	live = live[:len(live)-1]
	if buffered, _, _ := sx.BufferStats(); buffered != 0 {
		t.Fatalf("deleting the buffered item left %d in the buffer", buffered)
	}
	checkDynamicParity(t, sx, live, qs, "buffer-delete")
}

// TestDynamicFlushOvershootSplits is the regression for the >4×target
// overshoot: a large spatially-local flush lands in ONE hot shard, so a
// single halving leaves BOTH halves above the 2×target bound —
// splitUntilBounded must recurse until every piece honors it.
func TestDynamicFlushOvershootSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0e5))
	// 32 items in a tight corner: kd-median shards both stay near it.
	mk := func(x, y float64) *uncertain.Discrete {
		return uncertain.UniformDiscrete([]geom.Point{geom.Pt(x, y)})
	}
	var pts []*uncertain.Discrete
	for i := 0; i < 32; i++ {
		pts = append(pts, mk(rng.Float64()*4, rng.Float64()*4))
	}
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 2, InsertBuffer: true, FlushThreshold: 96})
	live := append([]*uncertain.Discrete(nil), pts...)
	// 96 buffered inserts in the same corner: the flush routes the whole
	// run into the hot shards — a >4×target overshoot.
	for i := 0; i < 96; i++ {
		p := mk(rng.Float64()*4, rng.Float64()*4)
		if _, err := sx.Insert(Item{Point: p}); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	if buffered, _, flushes := sx.BufferStats(); buffered != 0 || flushes != 1 {
		t.Fatalf("BufferStats after the overshoot flush: buffered=%d flushes=%d", buffered, flushes)
	}
	checkSizeInvariant(t, sx, "overshoot flush")
	checkDynamicParity(t, sx, live, randQueries(rng, 8, 4), "overshoot flush")
}

// TestSplitUntilBounded drives the recursive split directly: a shard at
// 16× the target must end as a fleet of pieces all within 2×target,
// partitioning exactly the original members.
func TestSplitUntilBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5b1))
	pts := constructions.RandomDiscrete(rng, 128, 2, 50, 1.0, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 1})
	sx.mu.Lock()
	sx.target = 8
	err := sx.splitUntilBounded(0, nil)
	sx.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	checkSizeInvariant(t, sx, "direct split")
	seen := map[int]bool{}
	for _, s := range sx.shards {
		if s.ix == nil {
			t.Fatal("a split piece was left unbuilt")
		}
		for _, id := range s.ids {
			if seen[id] {
				t.Fatalf("id %d landed in two pieces", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 128 {
		t.Fatalf("split pieces cover %d of 128 members", len(seen))
	}
	checkDynamicParity(t, sx, pts, randQueries(rng, 8, 50), "direct split")
}

// TestFlushThresholdCostModel: the auto threshold is the cost model's
// minimizer — positive, clamped, and growing with the configured
// backend's rebuild cost (an expensive backend affords a larger buffer).
func TestFlushThresholdCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf1a5))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 400, 2, 100, 1.0, 1))
	mk := func(b Backend) *ShardedIndex {
		sx := dynamicOver(t, b, ds, ShardOptions{Shards: 4, InsertBuffer: true})
		return sx
	}
	brute := mk(BackendBrute).flushThreshold()
	ts := mk(BackendTwoStageDiscrete).flushThreshold()
	if brute < 8 || ts < 8 {
		t.Fatalf("thresholds below the floor: brute=%d twostage=%d", brute, ts)
	}
	if hi := 2 * ((400 + 3) / 4); brute > hi || ts > hi {
		t.Fatalf("thresholds above the 2×target clamp %d: brute=%d twostage=%d", hi, brute, ts)
	}
	if ts <= brute {
		t.Fatalf("two-stage flush threshold %d not above brute's %d despite the costlier rebuild", ts, brute)
	}
}

// TestRouteShardDegenerate: routeShard reports −1 when every main shard
// is empty, and the mutation paths route to a fresh shard instead of
// panicking on shards[-1] — both driven directly and through the
// natural buffer path (deletes drain the main shards, the next flush
// re-seeds them).
func TestRouteShardDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(0xdead))
	pts := constructions.RandomDiscrete(rng, 6, 2, 20, 1.0, 1)

	t.Run("direct", func(t *testing.T) {
		sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
			ShardOptions{Shards: 2})
		// Drive the degenerate state directly: every shard emptied.
		sx.mu.Lock()
		sx.ds = &Dataset{}
		sx.n = 0
		sx.owned = true
		for _, s := range sx.shards {
			s.ids, s.sub, s.ix = nil, nil, nil
		}
		if got := sx.routeShard(geom.Pt(1, 1)); got != -1 {
			sx.mu.Unlock()
			t.Fatalf("routeShard over empty shards = %d, want -1", got)
		}
		sx.mu.Unlock()
		gi, err := sx.Insert(Item{Point: pts[0]})
		if err != nil {
			t.Fatalf("Insert into the degenerate state: %v", err)
		}
		if gi != 0 {
			t.Fatalf("Insert returned index %d, want 0", gi)
		}
		got, err := sx.QueryNonzero(pts[0].Support().Center())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []int{0}) {
			t.Fatalf("fresh-shard answer %v, want [0]", got)
		}
	})

	t.Run("buffer-drain", func(t *testing.T) {
		sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts[:2]...)),
			ShardOptions{Shards: 1, InsertBuffer: true, FlushThreshold: 3})
		live := append([]*uncertain.Discrete(nil), pts[:2]...)
		// Buffer one item, then delete both originals: the sole main
		// shard empties and is dropped.
		if _, err := sx.Insert(Item{Point: pts[2]}); err != nil {
			t.Fatal(err)
		}
		live = append(live, pts[2])
		for i := 0; i < 2; i++ {
			if _, err := sx.Delete(0); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			live = live[1:]
		}
		if got := sx.Shards(); got != 0 {
			t.Fatalf("main shard count = %d, want 0 (all live items buffered)", got)
		}
		qs := randQueries(rng, 6, 20)
		checkDynamicParity(t, sx, live, qs, "all-buffered")
		// Two more inserts cross the threshold; the flush must seed a
		// fresh main shard rather than indexing shards[-1].
		for _, p := range pts[3:5] {
			if _, err := sx.Insert(Item{Point: p}); err != nil {
				t.Fatalf("insert into the drained state: %v", err)
			}
			live = append(live, p)
		}
		if got := sx.Shards(); got < 1 {
			t.Fatalf("flush into the drained state left %d main shards", got)
		}
		if buffered, _, _ := sx.BufferStats(); buffered != 0 {
			t.Fatalf("flush left %d items buffered", buffered)
		}
		checkDynamicParity(t, sx, live, qs, "reseeded")
	})
}

// TestServeCoalescesMutations: runs of queued mutation ops on the Serve
// stream apply as one epoch-coalesced batch (observable through the
// epoch counter), with per-op answers carrying the exact sequential
// live counts.
func TestServeCoalescesMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eca))
	const side = 50.0
	pool := constructions.RandomDiscrete(rng, 64, 2, side, 1.0, 1)
	live := append([]*uncertain.Discrete(nil), pool[:16]...)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), live...)),
		ShardOptions{Shards: 3})
	eng := NewEngine(sx, Options{Workers: 1})

	const ops = 24
	in := make(chan Query, ops)
	want := map[uint64]int{} // seq → expected Answer.N
	vn := len(live)
	for i := 0; i < ops; i++ {
		seq := uint64(i + 1)
		if i%4 == 3 {
			di := rng.Intn(vn)
			in <- Query{Seq: seq, Kind: OpDelete, Del: di}
			live = append(live[:di], live[di+1:]...)
			vn--
		} else {
			p := pool[16+i]
			in <- Query{Seq: seq, Kind: OpInsert, Item: Item{Point: p}}
			live = append(live, p)
			vn++
		}
		want[seq] = vn
	}
	close(in)
	got := 0
	for a := range eng.Serve(context.Background(), in) {
		if a.Err != nil {
			t.Fatalf("seq %d: %v", a.Seq, a.Err)
		}
		if a.N != want[a.Seq] {
			t.Fatalf("seq %d: N=%d, want %d", a.Seq, a.N, want[a.Seq])
		}
		got++
	}
	if got != ops {
		t.Fatalf("stream answered %d of %d ops", got, ops)
	}
	// All ops were queued before the worker started, so they coalesce
	// into far fewer epochs than ops (one per run of ≤ serveCoalesce).
	if ep := sx.Epoch(); ep >= ops {
		t.Fatalf("epoch=%d after %d queued ops: the stream did not coalesce", ep, ops)
	}
	checkDynamicParity(t, sx, live, randQueries(rng, 8, side), "serve-coalesced")
}

// TestQuantizeExtremeCoordinates is the regression for the
// float→int64→uint64 conversion in cache key quantization: coordinates
// far outside ±2⁶³·quantum used to hit Go's implementation-specific
// out-of-range conversion, so keys could differ across architectures or
// alias finite cells. The clamp saturates them deterministically.
func TestQuantizeExtremeCoordinates(t *testing.T) {
	const q = 1e-9 // tiny quantum: moderate coordinates already overflow
	cases := []struct {
		v    float64
		want uint64
	}{
		{1e300, 1<<63 - 1},         // saturates high
		{math.Inf(1), 1<<63 - 1},   // +Inf too
		{-1e300, 1 << 63},          // saturates low (MinInt64 bits)
		{math.Inf(-1), 1 << 63},    // −Inf too
		{math.NaN(), 1 << 63},      // NaN pinned to the low sentinel
		{1e-9, 1},                  // in-range values keep exact cells
		{-3e-9, uint64(1<<64 - 3)}, // int64(−3) bits
		{9.3e9, 1<<63 - 1},         // 9.3e18 cells: just past 2⁶³, saturates
	}
	// Just inside the range: converts exactly. The expectation divides at
	// runtime (variables, not constants), folding the same float rounding
	// the implementation sees.
	v, quant := 9e9, q
	cases = append(cases, struct {
		v    float64
		want uint64
	}{v, uint64(int64(math.Floor(v / quant)))})
	for _, tc := range cases {
		if got := quantizeCell(tc.v, q); got != tc.want {
			t.Errorf("quantizeCell(%g, %g) = %#x, want %#x", tc.v, q, got, tc.want)
		}
	}
	// Saturated extremes must not alias each other or a finite cell.
	lo, hi, mid := quantizeCell(-1e300, q), quantizeCell(1e300, q), quantizeCell(1.0, q)
	if lo == hi || lo == mid || hi == mid {
		t.Fatalf("extreme cells alias: lo=%#x hi=%#x mid=%#x", lo, hi, mid)
	}
	// End to end: a cache with a tiny quantum must keep extreme keys
	// deterministic (same key → hit; distinct extremes → distinct).
	c := newCache(8, q)
	gen := c.generation()
	c.put(kindNonzero, geom.Pt(1e300, 0), 0, 0, []int{1}, gen)
	if _, ok := c.get(kindNonzero, geom.Pt(1e300, 0), 0, 0); !ok {
		t.Fatal("extreme-coordinate key not stable across put/get")
	}
	if _, ok := c.get(kindNonzero, geom.Pt(-1e300, 0), 0, 0); ok {
		t.Fatal("opposite extremes alias one cache cell")
	}
}

// TestAdaptiveQuantumTightensOnMutation is the regression for the
// frozen adaptive cache quantum: a stream that densifies the dataset
// used to leave the Build-time quantum too coarse, so
// nearby-but-distinct queries shared one cached answer. Mutation epochs
// now tighten the quantum monotonically.
func TestAdaptiveQuantumTightensOnMutation(t *testing.T) {
	// A sparse 4×4 grid of discrete points, spacing 10.
	var pts []*uncertain.Discrete
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, uncertain.UniformDiscrete([]geom.Point{geom.Pt(float64(i)*10, float64(j)*10)}))
		}
	}
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 2})
	eng := NewEngine(sx, Options{Workers: 1, CacheSize: 64, CacheQuantum: -1})
	coarse := eng.CacheQuantum()
	if coarse <= 1 {
		t.Fatalf("build-time adaptive quantum %g, want the grid-spacing scale", coarse)
	}
	// Insert a tight cluster: centroid spacing collapses to 0.05.
	for i := 0; i < 6; i++ {
		p := uncertain.UniformDiscrete([]geom.Point{geom.Pt(25+float64(i)*0.05, 25)})
		if _, err := eng.Insert(Item{Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	fine := eng.CacheQuantum()
	if fine >= coarse {
		t.Fatalf("quantum %g did not tighten after densifying (was %g)", fine, coarse)
	}
	// No cross-cell sharing: two queries near distinct cluster points
	// (within ONE stale cell, but different tight cells) must answer
	// independently.
	q1, q2 := geom.Pt(25.0, 25.0), geom.Pt(25.25, 25.0)
	a1, err := eng.QueryNonzero(q1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.QueryNonzero(q2)
	if err != nil {
		t.Fatal(err)
	}
	want1, _ := sx.QueryNonzero(q1)
	want2, _ := sx.QueryNonzero(q2)
	if !reflect.DeepEqual(a1, want1) || !reflect.DeepEqual(a2, want2) {
		t.Fatalf("cached answers diverge from the index: %v/%v vs %v/%v", a1, a2, want1, want2)
	}
	if reflect.DeepEqual(want1, want2) {
		t.Fatal("test workload degenerate: both queries have the same true answer")
	}
	if reflect.DeepEqual(a1, a2) {
		t.Fatalf("nearby-but-distinct queries share one cached answer: %v", a1)
	}
	// The tightening is monotone: deleting the cluster must not coarsen
	// the quantum back (coarsening could glue distinct cells together).
	for eng.Epoch() < 12 {
		if err := eng.Delete(sx.Len() - 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.CacheQuantum(); got > fine {
		t.Fatalf("quantum loosened from %g to %g after deletes", fine, got)
	}
}

// TestBatchMutateImmutable: monolithic engines reject batches with
// ErrImmutable, like the per-item path.
func TestBatchMutateImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 6, 2, 20, 1.0, 1))
	mono, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(mono, Options{})
	if _, err := eng.BatchMutate([]Mutation{DeleteMutation(0)}); err == nil ||
		!strings.Contains(err.Error(), ErrImmutable.Error()) {
		t.Fatalf("BatchMutate on a monolithic engine: err=%v, want ErrImmutable", err)
	}
}
