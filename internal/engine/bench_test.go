package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"unn/internal/constructions"
	"unn/internal/geom"
)

// mcEngine builds the Monte-Carlo backend at n=1000 — the acceptance
// workload for the batch path (each query walks s kd-trees, so it is
// CPU-bound and embarrassingly parallel).
func mcEngine(b testing.TB, workers int) (*Engine, []geom.Point) {
	rng := rand.New(rand.NewSource(0xbe4c))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 1000, 3, 200, 2.0, 1))
	ix, err := Build(BackendMonteCarlo, ds, BuildOptions{MCRounds: 48, MCParallel: true})
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(ix, Options{Workers: workers}), randQueriesB(rng, 256, 200)
}

func randQueriesB(rng *rand.Rand, n int, side float64) []geom.Point {
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return qs
}

// BenchmarkEngineBatch measures the parallel batch path on the
// Monte-Carlo backend (n=1000): the acceptance target is ≥ 2× the
// throughput of BenchmarkEngineSequential on an 8-core runner.
func BenchmarkEngineBatch(b *testing.B) {
	eng, qs := mcEngine(b, 0) // 0 → runtime.NumCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchProbs(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEngineSequential is the single-worker baseline for
// BenchmarkEngineBatch.
func BenchmarkEngineSequential(b *testing.B) {
	eng, qs := mcEngine(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchProbs(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// e17Workload is the shard-scaling acceptance workload (experiment E17):
// a spread-out discrete dataset where query-local structure lets the
// merge planner prune most shards, plus uniform queries over the domain.
func e17Workload(tb testing.TB) (*Dataset, []geom.Point) {
	rng := rand.New(rand.NewSource(0xe17))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 2000, 2, 2000, 2.0, 1))
	return ds, randQueriesB(rng, 256, 2000)
}

// shardedBatchEngine builds the E17 workload behind a sharded brute
// backend (k shards; k = 0 selects the monolithic baseline).
func shardedBatchEngine(tb testing.TB, k int) (*Engine, []geom.Point) {
	ds, qs := e17Workload(tb)
	ix, err := BuildSharded(BackendBrute, ds, BuildOptions{}, ShardOptions{Shards: k})
	if err != nil {
		tb.Fatal(err)
	}
	return NewEngine(ix, Options{}), qs
}

// BenchmarkShardedBatch measures the sharded batch path at k = NumCPU
// on the E17 workload; the acceptance target is ≥1.5× the throughput of
// BenchmarkUnshardedBatch (shard pruning cuts per-query work on top of
// the batch parallelism both paths share).
func BenchmarkShardedBatch(b *testing.B) {
	eng, qs := shardedBatchEngine(b, runtime.NumCPU())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchNonzero(qs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkUnshardedBatch is the monolithic baseline for
// BenchmarkShardedBatch.
func BenchmarkUnshardedBatch(b *testing.B) {
	eng, qs := shardedBatchEngine(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchNonzero(qs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// TestShardedSpeedup asserts the ≥1.5× sharded-over-unsharded batch
// acceptance criterion on the E17 workload. The gain comes from shard
// pruning (less work per query), so unlike TestBatchSpeedup it does not
// need many cores; k is fixed at 8 shards to keep the measurement
// machine-independent.
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing test, skipped under the race detector")
	}
	engSharded, qs := shardedBatchEngine(t, 8)
	engMono, _ := shardedBatchEngine(t, 0)
	run := func(e *Engine) time.Duration {
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			t0 := time.Now()
			if _, err := e.BatchNonzero(qs); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	mono := run(engMono)
	sharded := run(engSharded)
	speedup := float64(mono) / float64(sharded)
	t.Logf("unsharded %v, sharded(k=8) %v: %.2fx", mono, sharded, speedup)
	if speedup < 1.5 {
		t.Errorf("sharded batch speedup %.2fx < 1.5x", speedup)
	}
}

// TestBatchSpeedup asserts the ≥2× batch-over-sequential acceptance
// criterion when enough cores are available; on smaller machines it
// only sanity-checks that the parallel path is not pathologically
// slower.
func TestBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing test, skipped under the race detector")
	}
	cores := runtime.NumCPU()
	if cores < 4 {
		t.Skipf("%d CPUs: speedup target needs ≥ 4 cores (acceptance runs on 8)", cores)
	}
	engPar, qs := mcEngine(t, 0)
	engSeq, _ := mcEngine(t, 1)
	run := func(e *Engine) time.Duration {
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			t0 := time.Now()
			if _, err := e.BatchProbs(qs, 0); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	seq := run(engSeq)
	par := run(engPar)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v (%d workers): %.2fx", seq, par, engPar.Workers(), speedup)
	want := 2.0
	if cores < 8 {
		want = 1.3 // conservative floor for 4–7 core machines
	}
	if speedup < want {
		t.Errorf("batch speedup %.2fx < %.2fx on %d cores", speedup, want, cores)
	}
}
