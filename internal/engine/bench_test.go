package engine

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"unn/internal/constructions"
	"unn/internal/geom"
)

// mcEngine builds the Monte-Carlo backend at n=1000 — the acceptance
// workload for the batch path (each query walks s kd-trees, so it is
// CPU-bound and embarrassingly parallel).
func mcEngine(b testing.TB, workers int) (*Engine, []geom.Point) {
	rng := rand.New(rand.NewSource(0xbe4c))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 1000, 3, 200, 2.0, 1))
	ix, err := Build(BackendMonteCarlo, ds, BuildOptions{MCRounds: 48, MCParallel: true})
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(ix, Options{Workers: workers}), randQueriesB(rng, 256, 200)
}

func randQueriesB(rng *rand.Rand, n int, side float64) []geom.Point {
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return qs
}

// BenchmarkEngineBatch measures the parallel batch path on the
// Monte-Carlo backend (n=1000): the acceptance target is ≥ 2× the
// throughput of BenchmarkEngineSequential on an 8-core runner.
func BenchmarkEngineBatch(b *testing.B) {
	eng, qs := mcEngine(b, 0) // 0 → runtime.NumCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchProbs(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEngineSequential is the single-worker baseline for
// BenchmarkEngineBatch.
func BenchmarkEngineSequential(b *testing.B) {
	eng, qs := mcEngine(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BatchProbs(qs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// TestBatchSpeedup asserts the ≥2× batch-over-sequential acceptance
// criterion when enough cores are available; on smaller machines it
// only sanity-checks that the parallel path is not pathologically
// slower.
func TestBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test, skipped in -short")
	}
	cores := runtime.NumCPU()
	if cores < 4 {
		t.Skipf("%d CPUs: speedup target needs ≥ 4 cores (acceptance runs on 8)", cores)
	}
	engPar, qs := mcEngine(t, 0)
	engSeq, _ := mcEngine(t, 1)
	run := func(e *Engine) time.Duration {
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			t0 := time.Now()
			if _, err := e.BatchProbs(qs, 0); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	seq := run(engSeq)
	par := run(engPar)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v (%d workers): %.2fx", seq, par, engPar.Workers(), speedup)
	want := 2.0
	if cores < 8 {
		want = 1.3 // conservative floor for 4–7 core machines
	}
	if speedup < want {
		t.Errorf("batch speedup %.2fx < %.2fx on %d cores", speedup, want, cores)
	}
}
