// The merge planner: how a ShardedIndex answers each query kind by
// combining per-shard answers.
//
// All three planners share one pruning primitive: a shard whose
// bounding-box lower-bound distance (in the backend's metric) is at
// least the current best upper bound cannot contribute — every extreme
// distance of its members is at least that lower bound. Shards are
// visited in ascending lower-bound order so the bound tightens as early
// as possible.
//
//   - QueryNonzero applies the global Lemma 2.1 predicate
//     δ_i(q) < min_{j≠i} Δ_j(q) directly. On the flat path (every
//     dataset with a kernel.Flat mirror) one fused SoA pass over the
//     unpruned shards stages each member's δ_i and folds its Δ_i into
//     the two-smallest scan, and the filter then reads the staged δ's —
//     no per-shard backend calls, and half the distance evaluations of
//     the two-pass AoS oracle. Pruned shards cannot qualify (δ_i ≥ lb ≥
//     m2 ≥ the filter bound, which the strict < rejects) nor shift
//     m1/m2 (their Δ's are ≥ lb), so the answer is the monolithic
//     oracle's, bit for bit. Datasets without a flat mirror keep the
//     historical merge: shard answers supply the candidates (each
//     shard's NN≠0 set is a superset of its members' global NN≠0 set)
//     and the same global filter reproduces the monolithic answer.
//   - QueryProbs combines per-shard sparse π vectors under the
//     independence model: within a shard the backend already accounts
//     for in-shard competition, so the merge multiplies each candidate
//     location's contribution by the survival probability of every
//     *other* shard, Π_{t≠s} Π_{j∈t} (1 − G_j(q,r)) — the cross-shard
//     renormalization. For discrete datasets this is exact (it
//     reproduces Eq. (2)); for continuous ones the cross-shard survival
//     is integrated against the candidate's distance cdf *conditioned on
//     the candidate winning its own shard* (the in-shard survival
//     product reweights the integrand), so the sharded Monte-Carlo path
//     converges to the exact Eq. (2) value as the per-shard estimates
//     do — the only residual error is the backend's own estimate and
//     the integral's discretization.
//   - QueryExpected min-reduces the per-shard expected-distance winners,
//     tie-breaking on the global index.
//
// Every planner runs on a pooled planScratch (shard order, staged δ's,
// candidate ids), so steady-state queries through the appending entry
// points allocate nothing.
package engine

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"unn/internal/geom"
	"unn/internal/kernel"
	"unn/internal/lmetric"
	"unn/internal/quantify"
)

// minDist returns δ_i(q) in the planner's metric (the flat row kernel
// when the dataset has one; the kernels replicate the AoS arithmetic
// operation for operation, so the value is bit-identical).
func (sx *ShardedIndex) minDist(i int, q geom.Point) float64 {
	if f := sx.flat; f != nil {
		return f.MinDist(i, q.X, q.Y)
	}
	if sx.ds.Squares != nil {
		s := sx.ds.Squares[i]
		switch sx.metric {
		case metricL1:
			return math.Max(q.DistL1(s.C)-s.R, 0)
		default:
			return s.MinDist(q) // L∞
		}
	}
	return sx.ds.Points[i].MinDist(q)
}

// maxDist returns Δ_i(q) in the planner's metric.
func (sx *ShardedIndex) maxDist(i int, q geom.Point) float64 {
	if f := sx.flat; f != nil {
		return f.MaxDist(i, q.X, q.Y)
	}
	if sx.ds.Squares != nil {
		s := sx.ds.Squares[i]
		switch sx.metric {
		case metricL1:
			return q.DistL1(s.C) + s.R
		default:
			return s.MaxDist(q) // L∞
		}
	}
	return sx.ds.Points[i].MaxDist(q)
}

// boundedShard is one merge part ordered by its bounding-box lower-bound
// distance from q.
type boundedShard struct {
	s  *shard
	lb float64
}

// planScratch is the merge planner's pooled per-query arena: the kernel
// scratch (staged δ's, candidate ids) plus the ordered shard list. One
// lease serves a whole query, so the steady-state appending paths
// allocate nothing.
type planScratch struct {
	sc    kernel.Scratch
	parts []boundedShard
}

var planPool = sync.Pool{New: func() any { return new(planScratch) }}

func getPlanScratch() *planScratch   { return planPool.Get().(*planScratch) }
func putPlanScratch(ps *planScratch) { planPool.Put(ps) }

// queryParts returns every built part the merge planner combines: the
// main shards plus the insert buffer (mutlog.go) when it holds items —
// the buffer is just one more shard to the planner, so every merge
// (the Lemma 2.1 filter, the cross-shard renormalization, the E[d]
// min-reduce) covers buffered items exactly.
func (sx *ShardedIndex) queryParts(yield func(*shard)) {
	for _, s := range sx.shards {
		if s.ix != nil {
			yield(s)
		}
	}
	if sx.buf != nil && sx.buf.ix != nil {
		yield(sx.buf)
	}
}

// appendParts appends every built part to buf with its lower bound and
// sorts ascending (stable, so equal bounds keep shard order) — the
// closure-free byLowerBound that reuses the planScratch backing array.
func (sx *ShardedIndex) appendParts(q geom.Point, buf []boundedShard) []boundedShard {
	for _, s := range sx.shards {
		if s.ix != nil {
			buf = append(buf, boundedShard{s: s, lb: sx.metric.rectDist(q, s.bbox)})
		}
	}
	if sx.buf != nil && sx.buf.ix != nil {
		buf = append(buf, boundedShard{s: sx.buf, lb: sx.metric.rectDist(q, sx.buf.bbox)})
	}
	slices.SortStableFunc(buf, func(a, b boundedShard) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return 0
		}
	})
	return buf
}

// soleShard returns the only built part (main shard or insert buffer),
// or nil when several exist.
func (sx *ShardedIndex) soleShard() *shard {
	var sole *shard
	several := false
	sx.queryParts(func(s *shard) {
		if sole != nil {
			several = true
		}
		sole = s
	})
	if several {
		return nil
	}
	return sole
}

// nonzeroAppender is the allocation-free NN≠0 contract: backends (and
// the sharded planner itself) that can append their sorted answer into a
// caller-supplied buffer implement it, and the engine's Into path and
// the shard merge use it to avoid the per-query result allocation.
type nonzeroAppender interface {
	appendNonzero(q geom.Point, dst []int) ([]int, error)
}

// appendNonzeroOf appends ix's NN≠0 answer to dst, preferring the
// appending fast path when ix (possibly behind the quantum-hint wrapper)
// implements it. Interface embedding does not promote unexported
// methods across the hintedIndex wrapper, hence the explicit unwrap.
func appendNonzeroOf(ix Index, q geom.Point, dst []int) ([]int, error) {
	for {
		if na, ok := ix.(nonzeroAppender); ok {
			return na.appendNonzero(q, dst)
		}
		if h, ok := ix.(hintedIndex); ok {
			ix = h.Index
			continue
		}
		loc, err := ix.QueryNonzero(q)
		if err != nil {
			return dst, err
		}
		return append(dst, loc...), nil
	}
}

// QueryNonzero implements Index: the global Lemma 2.1 answer
// δ_i(q) < min_{j≠i} Δ_j(q) over all shards.
func (sx *ShardedIndex) QueryNonzero(q geom.Point) ([]int, error) {
	return sx.appendNonzero(q, nil)
}

// appendNonzero implements nonzeroAppender over the sharded merge.
func (sx *ShardedIndex) appendNonzero(q geom.Point, dst []int) ([]int, error) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return dst, sx.broken
	}
	if !sx.caps.Has(CapNonzero) {
		return dst, ErrUnsupported
	}
	ps := getPlanScratch()
	dst, err := sx.nonzeroInto(q, dst, ps)
	putPlanScratch(ps)
	return dst, err
}

// nonzeroInto is the merge body: callers hold the read lock and have
// checked broken/caps.
func (sx *ShardedIndex) nonzeroInto(q geom.Point, dst []int, ps *planScratch) ([]int, error) {
	if sole := sx.soleShard(); sole != nil {
		sole.visits[slotNonzero].Add(1)
		start := len(dst)
		out, err := appendNonzeroOf(sole.ix, q, dst)
		if err != nil {
			return dst, err
		}
		dst = out
		for i := start; i < len(dst); i++ {
			dst[i] = sole.ids[dst[i]] // ids ascending: stays sorted
		}
		return dst, nil
	}

	ps.parts = sx.appendParts(q, ps.parts[:0])
	ordered := ps.parts
	start := len(dst)

	// Two smallest Δ over every unpruned shard. A shard with lb ≥ m2 can
	// neither lower m1/m2 (its Δ's are ≥ lb) nor contribute a candidate
	// (its δ's are ≥ lb ≥ the final threshold), and lb only grows along
	// the order, so the scan stops at the first such shard.
	m1, m2 := math.Inf(1), math.Inf(1)
	arg1 := -1

	if f := sx.flat; f != nil {
		// Flat path: one fused SoA pass per active shard stages δ_i into
		// the dense scratch row (indexed by global id) while folding Δ_i
		// into the two-smallest state; the filter then applies the global
		// predicate straight off the staged values — no backend calls.
		deltas := ps.sc.Dists
		if cap(deltas) < f.N {
			deltas = make([]float64, f.N)
			ps.sc.Dists = deltas
		}
		deltas = deltas[:f.N]
		cut := 0
		for _, bs := range ordered {
			if bs.lb >= m2 {
				break
			}
			bs.s.visits[slotNonzero].Add(1)
			m1, m2, arg1 = f.ScanTwoMin(bs.s.ids, q.X, q.Y, deltas, m1, m2, arg1)
			cut++
		}
		for _, bs := range ordered[:cut] {
			for _, i := range bs.s.ids {
				bound := m1
				if i == arg1 {
					bound = m2
				}
				if deltas[i] < bound || sx.n == 1 {
					dst = append(dst, i)
				}
			}
		}
		slices.Sort(dst[start:])
		return dst, nil
	}

	// AoS fallback (no flat mirror): the per-shard merge — shard answers
	// supply the candidates, the global filter decides.
	cut := 0
	for _, bs := range ordered {
		if bs.lb >= m2 {
			break
		}
		bs.s.visits[slotNonzero].Add(1)
		for _, i := range bs.s.ids {
			d := sx.maxDist(i, q)
			if d < m1 {
				m2 = m1
				m1, arg1 = d, i
			} else if d < m2 {
				m2 = d
			}
		}
		cut++
	}
	for _, bs := range ordered[:cut] {
		loc, err := appendNonzeroOf(bs.s.ix, q, ps.sc.Loc[:0])
		ps.sc.Loc = loc
		if err != nil {
			return dst, fmt.Errorf("shard merge: %w", err)
		}
		for _, li := range loc {
			i := bs.s.ids[li]
			bound := m1
			if i == arg1 {
				bound = m2
			}
			if sx.minDist(i, q) < bound || sx.n == 1 {
				dst = append(dst, i)
			}
		}
	}
	slices.Sort(dst[start:])
	return dst, nil
}

// QueryExpected implements Index: a min-reduce over the per-shard
// expected-distance winners. A shard is skipped when its lower bound
// exceeds the best expected distance found so far (E[d(q,P)] ≥ δ(q) ≥
// the shard bound); ties go to the smaller global index, matching the
// monolithic first-strict-min scan.
func (sx *ShardedIndex) QueryExpected(q geom.Point) (int, float64, error) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return -1, 0, sx.broken
	}
	if !sx.caps.Has(CapExpected) {
		return -1, 0, ErrUnsupported
	}
	ps := getPlanScratch()
	defer putPlanScratch(ps)
	ps.parts = sx.appendParts(q, ps.parts[:0])
	bestI, bestD := -1, math.Inf(1)
	for _, bs := range ps.parts {
		if bs.lb > bestD {
			break
		}
		bs.s.visits[slotExpected].Add(1)
		li, d, err := bs.s.ix.QueryExpected(q)
		if err != nil {
			return -1, 0, fmt.Errorf("shard merge: %w", err)
		}
		gi := bs.s.ids[li]
		if d < bestD || (d == bestD && gi < bestI) {
			bestI, bestD = gi, d
		}
	}
	return bestI, bestD, nil
}

// QueryProbs implements Index: per-shard sparse π vectors combined with
// the cross-shard renormalization of the independence model.
func (sx *ShardedIndex) QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return nil, sx.broken
	}
	if !sx.caps.Has(CapProbs) {
		return nil, ErrUnsupported
	}
	return sx.probsLocked(q, eps, slotProbs)
}

// QueryTopK implements the exact cross-shard top-k merge: the merged π
// vector (identical to QueryProbs — exact for discrete datasets,
// renormalized conditional-survival for continuous ones) ranked by the
// shared deterministic selection. Correctness of the sole-shard
// shortcut's id remap relies on shard ids being ascending: the
// local→global remap is monotonic, so the probability-descending,
// index-ascending order is preserved.
func (sx *ShardedIndex) QueryTopK(q geom.Point, k int, eps float64) ([]quantify.Prob, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: topk: k must be ≥ 1, got %d", k)
	}
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return nil, sx.broken
	}
	if !sx.caps.Has(CapTopK) {
		return nil, ErrUnsupported
	}
	probs, err := sx.probsLocked(q, eps, slotTopK)
	if err != nil {
		return nil, err
	}
	return topKSelect(probs, k), nil
}

// probsLocked is the merged-π body shared by QueryProbs and QueryTopK:
// callers hold the read lock and have checked broken/caps. slot names
// the querying kind for the per-shard visit counters.
func (sx *ShardedIndex) probsLocked(q geom.Point, eps float64, slot int) ([]quantify.Prob, error) {
	if sole := sx.soleShard(); sole != nil {
		sole.visits[slot].Add(1)
		loc, err := sole.ix.QueryProbs(q, eps)
		if err != nil {
			return nil, err
		}
		out := make([]quantify.Prob, len(loc))
		for i, pr := range loc {
			out[i] = quantify.Prob{I: sole.ids[pr.I], P: pr.P}
		}
		return out, nil
	}

	ps := getPlanScratch()
	defer putPlanScratch(ps)
	ps.parts = sx.appendParts(q, ps.parts[:0])
	ordered := ps.parts
	// Both merge paths scan every part for candidates (pruning happens at
	// the survival-factor level, not per shard), so every part counts.
	for _, bs := range ordered {
		bs.s.visits[slot].Add(1)
	}
	var out []quantify.Prob
	if sx.ds.Discrete != nil {
		// Exact path: the shard answers fix the candidate set, and each
		// candidate's global value is re-derived per location with the full
		// cross-shard survival product. For candidates, a shard's NN≠0 set
		// is preferred when the backend has it — by Lemma 2.1 it contains
		// every member with positive π (fewer competitors only grow both
		// sets) and is far cheaper than the shard's full π sweep; backends
		// without CapNonzero (vpr, montecarlo, spiral) fall back to their
		// sparse π vector.
		cands := ps.sc.Cand[:0]
		for _, bs := range ordered {
			if bs.s.ix.Capabilities().Has(CapNonzero) {
				loc, err := appendNonzeroOf(bs.s.ix, q, ps.sc.Loc[:0])
				ps.sc.Loc = loc
				if err != nil {
					ps.sc.Cand = cands
					return nil, fmt.Errorf("shard merge: %w", err)
				}
				for _, li := range loc {
					cands = append(cands, bs.s.ids[li])
				}
				continue
			}
			loc, err := bs.s.ix.QueryProbs(q, eps)
			if err != nil {
				ps.sc.Cand = cands
				return nil, fmt.Errorf("shard merge: %w", err)
			}
			for _, pr := range loc {
				cands = append(cands, bs.s.ids[pr.I])
			}
		}
		ps.sc.Cand = cands
		for _, gi := range cands {
			p := sx.exactPi(q, gi, ordered)
			if p > 0 {
				out = append(out, quantify.Prob{I: gi, P: p})
			}
		}
	} else {
		// Continuous path: candidates staged as parallel scratch rows
		// (global id, owning-shard position, shard-local π).
		cands := ps.sc.Cand[:0]
		owners := ps.sc.Loc[:0]
		pis := ps.sc.Probs[:0]
		for si, bs := range ordered {
			loc, err := bs.s.ix.QueryProbs(q, eps)
			if err != nil {
				ps.sc.Cand, ps.sc.Loc, ps.sc.Probs = cands, owners, pis
				return nil, fmt.Errorf("shard merge: %w", err)
			}
			for _, pr := range loc {
				cands = append(cands, bs.s.ids[pr.I])
				owners = append(owners, si)
				pis = append(pis, pr.P)
			}
		}
		ps.sc.Cand, ps.sc.Loc, ps.sc.Probs = cands, owners, pis
		total := 0.0
		for ci, gi := range cands {
			p := pis[ci] * sx.conditionalCrossSurvival(q, gi, ordered, owners[ci])
			if p > 0 {
				out = append(out, quantify.Prob{I: gi, P: p})
				total += p
			}
		}
		// With the conditioned weights the merged vector already sums to 1
		// in the limit; the renormalization only absorbs the per-shard
		// estimators' residual noise (Monte-Carlo variance, integral
		// discretization).
		if total > 0 {
			for i := range out {
				out[i].P /= total
			}
		}
	}
	slices.SortFunc(out, func(a, b quantify.Prob) int {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	})
	return out, nil
}

// distCDF returns G_i(q, r) = Pr[d(q, P_i) ≤ r] in the planner's
// metric. Discrete datasets read the flat location rows (bit-identical
// to the AoS cdf — same fold order, same ≤); other point datasets
// delegate to the uncertain point's own cdf; a squares-only dataset
// (ds.Points == nil, built by FromSquares) derives the cdf from the
// uniform distribution over the square region instead of dereferencing
// the absent Points view.
func (sx *ShardedIndex) distCDF(i int, q geom.Point, r float64) float64 {
	if f := sx.flat; f != nil && f.Kind == kernel.KindDiscrete {
		return f.DistCDF(i, q.X, q.Y, r)
	}
	if sx.ds.Points != nil {
		return sx.ds.Points[i].DistCDF(q, r)
	}
	return squareDistCDF(sx.ds.Squares[i], sx.metric, q, r)
}

// squareDistCDF is the distance cdf of a uniform distribution on square
// (or diamond) s under metric m: the fraction of the region within
// distance r of q. Under L∞ that is a rectangle–rectangle overlap;
// under L1 the 45° rotation (u, v) = (x+y, x−y) maps both diamonds to
// axis-aligned squares (|x−c|₁ = max(|u−cᵤ|, |v−cᵥ|)), reducing to the
// same overlap. The L2 ball–square overlap has no closed form worth
// carrying here — no current constructor shards squares under L2 — so
// it falls back to the linear ramp between δ and Δ.
func squareDistCDF(s lmetric.Square, m qmetric, q geom.Point, r float64) float64 {
	switch m {
	case metricLinf:
		return rectBallOverlap(s.C, s.R, q, r)
	case metricL1:
		return rectBallOverlap(s.C.RotL1(), s.R, q.RotL1(), r)
	default:
		rect := geom.Rect{
			Min: geom.Pt(s.C.X-s.R, s.C.Y-s.R),
			Max: geom.Pt(s.C.X+s.R, s.C.Y+s.R),
		}
		lo, hi := rect.DistToPoint(q), rect.MaxDistToPoint(q)
		switch {
		case r < lo:
			return 0
		case r >= hi:
			return 1
		default:
			return (r - lo) / (hi - lo)
		}
	}
}

// rectBallOverlap is the area fraction of the square [c±R] covered by
// the square [q±r] (the L∞ ball), handling the zero-area point mass.
func rectBallOverlap(c geom.Point, R float64, q geom.Point, r float64) float64 {
	if R <= 0 {
		if q.DistLinf(c) <= r {
			return 1
		}
		return 0
	}
	w := math.Min(c.X+R, q.X+r) - math.Max(c.X-R, q.X-r)
	h := math.Min(c.Y+R, q.Y+r) - math.Max(c.Y-R, q.Y-r)
	if w <= 0 || h <= 0 {
		return 0
	}
	return math.Min(w*h/(4*R*R), 1)
}

// survival returns Π_{j∈t, j≠skip} (1 − G_j(q,r)) for shard t, pruning
// to 1 when the shard's lower bound exceeds r (then G_j(r) = 0 for every
// member). Locations at distance exactly r count into G (the ≤ of
// Eq. (2)), so pruning requires lb > r strictly.
func (sx *ShardedIndex) survival(q geom.Point, r float64, t boundedShard, skip int) float64 {
	if t.lb > r {
		return 1
	}
	prod := 1.0
	for _, j := range t.s.ids {
		if j == skip {
			continue
		}
		f := 1 - sx.distCDF(j, q, r)
		if f <= 0 {
			return 0
		}
		prod *= f
	}
	return prod
}

// exactPi evaluates the global Eq. (2) value for discrete candidate gi:
//
//	π_i(q) = Σ_a w_ia · Π_{j≠i} (1 − G_j(q, d(q, p_ia)))
//
// where the product runs over every shard — in-shard competitors and the
// cross-shard renormalization alike — with shard-level pruning on the
// survival factors. This reproduces the monolithic exact sweep. The
// candidate's locations are read off the flat rows when the dataset has
// them (same order, same arithmetic as the AoS loop).
func (sx *ShardedIndex) exactPi(q geom.Point, gi int, ordered []boundedShard) float64 {
	if f := sx.flat; f != nil && f.Kind == kernel.KindDiscrete {
		total := 0.0
		for a := f.Off[gi]; a < f.Off[gi+1]; a++ {
			r := math.Hypot(q.X-f.Xs[a], q.Y-f.Ys[a])
			prod := 1.0
			for _, t := range ordered {
				prod *= sx.survival(q, r, t, gi)
				if prod == 0 {
					break
				}
			}
			total += f.W[a] * prod
		}
		return total
	}
	p := sx.ds.Discrete[gi]
	total := 0.0
	for a, loc := range p.Locs {
		r := q.Dist(loc)
		prod := 1.0
		for _, t := range ordered {
			prod *= sx.survival(q, r, t, gi)
			if prod == 0 {
				break
			}
		}
		total += p.W[a] * prod
	}
	return total
}

// conditionalCrossSurvival estimates, for a continuous candidate, the
// probability that every *other* shard stays farther than the candidate
// — conditioned on the candidate winning its own shard:
//
//	C_i = ∫ S_in(r)·S_cross(r) dG_i(r) / ∫ S_in(r) dG_i(r)
//
// where S_in(r) = Π_{j∈s, j≠i} (1 − G_j(q,r)) is the in-shard survival
// and S_cross(r) = Π_{t≠s} S_t(r) the cross-shard one. Multiplying the
// shard's own π estimate (≈ the denominator) by C_i recovers the full
// Eq. (2) integral ∫ Π_{j≠i} (1 − G_j) dG_i: the former unconditional
// weighting factorized E[S_in]·E[S_cross] where the exact value needs
// E[S_in·S_cross] — both survivals shrink with r, so the factorization
// systematically overweighted far candidates. With the conditioning the
// sharded Monte-Carlo path is exact in the limit of the per-shard
// estimates; only the backend's own error and the discretization remain.
func (sx *ShardedIndex) conditionalCrossSurvival(q geom.Point, gi int, ordered []boundedShard, own int) float64 {
	cross := func(r float64) float64 {
		prod := 1.0
		for si, t := range ordered {
			if si == own {
				continue
			}
			prod *= sx.survival(q, r, t, gi)
			if prod == 0 {
				break
			}
		}
		return prod
	}
	lo, hi := sx.minDist(gi, q), sx.maxDist(gi, q)
	if !(hi > lo) {
		// Point mass at distance lo: the in-shard factor cancels between
		// numerator and denominator.
		return cross(lo)
	}
	const steps = 32
	num, den := 0.0, 0.0
	uncond := 0.0 // fallback: the unconditional integral
	gPrev := 0.0
	for s := 1; s <= steps; s++ {
		r := lo + (hi-lo)*float64(s)/steps
		g := sx.distCDF(gi, q, r)
		dg := g - gPrev
		gPrev = g
		if dg <= 0 {
			continue
		}
		mid := r - (hi-lo)/(2*steps)
		inShard := sx.survival(q, mid, ordered[own], gi)
		xs := cross(mid)
		num += dg * inShard * xs
		den += dg * inShard
		uncond += dg * xs
	}
	if den <= 1e-12 {
		// The discretized in-shard win probability vanished (the shard
		// backend's estimate disagreed, e.g. Monte-Carlo noise); fall back
		// to the unconditional weighting rather than zeroing a candidate
		// the backend reported alive.
		return uncond
	}
	return num / den
}

// --- tiled batch merge --------------------------------------------------------

// batchTiledNonzero implements tiledNonzeroBatcher over the sharded
// merge: the shard-affine schedule. Queries are sorted by their nearest
// shard (the part with the smallest bbox lower bound) so each tile's
// lanes agree on which shards survive pruning, then each tile runs one
// fused SoA pass per unpruned shard — the shard's rows are read once
// while hot instead of once per query. Answers are emitted per lane
// through sink (lane → input index), so scheduling order never shows in
// the output.
func (sx *ShardedIndex) batchTiledNonzero(qs []geom.Point, tile, workers int, sink nonzeroSink) (int, int, error) {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	if sx.broken != nil {
		return 0, 0, sx.broken
	}
	if !sx.caps.Has(CapNonzero) {
		return 0, 0, ErrUnsupported
	}
	f := sx.flat
	if f == nil {
		return 0, 0, errUntileable
	}
	if len(qs) == 0 {
		return 0, 0, nil
	}
	tile = clampTile(tile, f.N)

	ts := getTileScratch()
	defer putTileScratch(ts)

	// Affinity order: pack (nearest shard ≪ 32 | query index) and sort —
	// queries that agree on their closest shard become tile neighbors,
	// ties keep input order (the low bits).
	pack := ts.pack[:0]
	for qi, q := range qs {
		near, nd := 0, math.Inf(1)
		for si := range sx.shards {
			if sx.shards[si].ix == nil {
				continue
			}
			if d := sx.metric.rectDist(q, sx.shards[si].bbox); d < nd {
				near, nd = si, d
			}
		}
		pack = append(pack, int64(near)<<32|int64(uint32(qi)))
	}
	slices.Sort(pack)
	ts.pack = pack

	nTiles := (len(qs) + tile - 1) / tile
	slots := nTiles * tile
	if workers <= 1 || nTiles == 1 {
		for ti := 0; ti < nTiles; ti++ {
			lo := ti * tile
			sx.runNonzeroTile(f, qs, pack[lo:min(lo+tile, len(pack))], sink, ts)
		}
		return slots, len(qs), nil
	}
	parallelTiles(workers, nTiles, func(ti int, wts *tileScratch) {
		lo := ti * tile
		sx.runNonzeroTile(f, qs, pack[lo:min(lo+tile, len(pack))], sink, wts)
	})
	return slots, len(qs), nil
}

// runNonzeroTile answers one tile: per-lane shard lower bounds, shards
// visited in ascending tile-minimum order with per-lane Lemma 2.1
// pruning (lane t skips a shard once its lb reaches the lane's m2), one
// ScanTwoMinTile pass per surviving shard, then the per-lane global
// filter over the lane's scanned shards. Each lane's candidate set is
// the scalar merge's bit for bit: a skipped shard's rows have
// Δ ≥ δ ≥ lb ≥ the lane's final m2 ≥ its filter bound, so they neither
// shift the two-smallest fold (which is visit-order independent) nor
// pass the strict < filter.
func (sx *ShardedIndex) runNonzeroTile(f *kernel.Flat, qs []geom.Point, pk []int64, sink nonzeroSink, ts *tileScratch) {
	T := len(pk)
	if T == 0 {
		return
	}
	ts.lanes(T)
	for t, p := range pk {
		qi := int(uint32(p))
		ts.qi[t] = qi
		ts.qx[t], ts.qy[t] = qs[qi].X, qs[qi].Y
	}

	parts := ts.parts[:0]
	for _, s := range sx.shards {
		if s.ix != nil {
			parts = append(parts, boundedShard{s: s})
		}
	}
	if sx.buf != nil && sx.buf.ix != nil {
		parts = append(parts, boundedShard{s: sx.buf})
	}
	ts.parts = parts
	S := len(parts)

	ts.lbs = growFloats(ts.lbs, T*S)
	ts.scanned = growBools(ts.scanned, T*S)
	for si := range parts {
		minLb := math.Inf(1)
		for t := 0; t < T; t++ {
			lb := sx.metric.rectDist(geom.Pt(ts.qx[t], ts.qy[t]), parts[si].s.bbox)
			ts.lbs[t*S+si] = lb
			minLb = min(minLb, lb)
		}
		parts[si].lb = minLb
	}
	// Visit order: ascending tile-minimum lower bound (insertion sort —
	// S is small and the slice is pooled; stable, like the scalar path).
	order := ts.order[:0]
	for si := 0; si < S; si++ {
		order = append(order, si)
	}
	for i := 1; i < S; i++ {
		for j := i; j > 0 && parts[order[j]].lb < parts[order[j-1]].lb; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	ts.order = order

	if cap(ts.act) < T {
		ts.act = make([]int, 0, T)
	}
	m1, m2, arg1, deltas := ts.sc.TileLanes(T, f.N)
	for _, si := range order {
		// Tile-level early stop: the minimum lb only grows along the
		// order, so once it reaches every lane's m2 no later shard can
		// activate any lane.
		stop := 0.0
		for t := 0; t < T; t++ {
			stop = max(stop, m2[t])
		}
		if parts[si].lb >= stop {
			break
		}
		act := ts.act[:0]
		for t := 0; t < T; t++ {
			if ts.lbs[t*S+si] < m2[t] {
				act = append(act, t)
				ts.scanned[t*S+si] = true
			}
		}
		ts.act = act
		if len(act) == 0 {
			continue
		}
		parts[si].s.visits[slotNonzero].Add(uint64(len(act)))
		f.ScanTwoMinTile(parts[si].s.ids, act, ts.qx, ts.qy, deltas, f.N, m1, m2, arg1)
	}

	for t := 0; t < T; t++ {
		row := deltas[t*f.N : t*f.N+f.N]
		cand := ts.sc.Cand[:0]
		b1, b2, a1 := m1[t], m2[t], arg1[t]
		for si := range parts {
			if !ts.scanned[t*S+si] {
				continue
			}
			for _, i := range parts[si].s.ids {
				bound := b1
				if i == a1 {
					bound = b2
				}
				if row[i] < bound || sx.n == 1 {
					cand = append(cand, i)
				}
			}
		}
		slices.Sort(cand)
		ts.sc.Cand = cand
		sink.emitNonzero(ts.qi[t], cand)
	}
}
