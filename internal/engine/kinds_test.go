package engine

import (
	"math/rand"
	"strings"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
)

// TestCacheKeyKindSeparation is the cache-key regression gate: requests
// of distinct kinds, or of the same kind with distinct k, must never
// share a cache cell, while requests the registry declares equivalent
// (every eps ≤ 0, unused knobs) must.
func TestCacheKeyKindSeparation(t *testing.T) {
	c := newCache(64, 0.5)
	q := geom.Pt(3.14, 2.72)

	// One key per (kind, k) combination actually used by the registry:
	// all must be pairwise distinct.
	keys := map[cacheKey]string{}
	for _, kc := range []struct {
		name string
		kind uint8
		eps  float64
		k    int
	}{
		{"nonzero", kindNonzero, 0, 0},
		{"probs", kindProbs, 0, 0},
		{"probs eps=0.1", kindProbs, 0.1, 0},
		{"expected", kindExpected, 0, 0},
		{"topk k=1", kindTopK, 0, 1},
		{"topk k=2", kindTopK, 0, 2},
		{"topk k=2 eps=0.1", kindTopK, 0.1, 2},
	} {
		k := c.key(kc.kind, q, kc.eps, kc.k)
		if prev, dup := keys[k]; dup {
			t.Fatalf("%q and %q share cache key %+v", prev, kc.name, k)
		}
		keys[k] = kc.name
	}

	// Canonicalization: every "use the backend default" eps collapses to
	// one key, as do negative k values.
	if c.key(kindProbs, q, 0, 0) != c.key(kindProbs, q, -1, 0) {
		t.Fatal("eps=0 and eps=-1 (both backend-default) got distinct keys")
	}
	if c.key(kindTopK, q, 0, -3) != c.key(kindTopK, q, 0, 0) {
		t.Fatal("negative k not canonicalized")
	}
	// Same kind, same knobs, nearby point inside one quantum cell: shared.
	if c.key(kindTopK, q, 0, 2) != c.key(kindTopK, geom.Pt(3.2, 2.7), 0, 2) {
		t.Fatal("same-cell queries got distinct keys")
	}

	// End to end: a k=3 answer cached on the engine must not answer a
	// k=2 request (covered value-wise in TestEngineTopK; here the miss
	// counters prove the cells are distinct).
	rng := rand.New(rand.NewSource(0x5e9))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 12, 2, 20, 1.0, 1))
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{CacheSize: 32})
	qp := geom.Pt(10, 10)
	if _, err := eng.QueryTopK(qp, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryProbs(qp, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryTopK(qp, 2, 0); err != nil {
		t.Fatal(err)
	}
	if hits, misses := eng.CacheStats(); hits != 0 || misses != 3 {
		t.Fatalf("hits=%d misses=%d after three distinct-cell queries, want 0/3", hits, misses)
	}
	if _, err := eng.QueryTopK(qp, 3, 0); err != nil {
		t.Fatal(err)
	}
	if hits, _ := eng.CacheStats(); hits != 1 {
		t.Fatalf("repeat (kind,k) query missed the cache")
	}
}

// TestShardKindCounters: the per-shard per-kind query counters tick in
// the right registry slot, cover every shard the merge scans, and are
// absent for unsharded backends.
func TestShardKindCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5c0))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 36, 3, 40, 1.0, 1))
	ix, err := BuildSharded(BackendBrute, ds, BuildOptions{}, ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{})
	qs := randQueries(rng, 8, 44)
	for _, q := range qs {
		if _, err := eng.QueryNonzero(q); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.QueryProbs(q, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.QueryTopK(q, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if len(st.ShardQueries) != 3 {
		t.Fatalf("ShardQueries has %d rows, want 3: %+v", len(st.ShardQueries), st.ShardQueries)
	}
	var sum [NumKinds]uint64
	for i, sc := range st.ShardQueries {
		if sc.Shard != i {
			t.Fatalf("row %d reports shard %d", i, sc.Shard)
		}
		for s := 0; s < NumKinds; s++ {
			sum[s] += sc.Counts[s]
		}
	}
	// The π merge (and its top-k ranking) scans every part, so those
	// slots count exactly shards × queries; NN≠0 prunes by bounding-box
	// distance, so it visits at least one and at most all shards per
	// query. Expected-distance was never queried: its slot stays zero.
	want := uint64(3 * len(qs))
	if sum[slotProbs] != want || sum[slotTopK] != want {
		t.Fatalf("probs/topk visits = %d/%d, want %d", sum[slotProbs], sum[slotTopK], want)
	}
	if sum[slotNonzero] < uint64(len(qs)) || sum[slotNonzero] > want {
		t.Fatalf("nonzero visits = %d, want in [%d, %d]", sum[slotNonzero], len(qs), want)
	}
	if sum[slotExpected] != 0 {
		t.Fatalf("expected visits = %d without any expected query", sum[slotExpected])
	}

	// Unsharded engines report no per-shard rows.
	mono, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	me := NewEngine(mono, Options{})
	if _, err := me.QueryNonzero(qs[0]); err != nil {
		t.Fatal(err)
	}
	if sq := me.Stats().ShardQueries; sq != nil {
		t.Fatalf("unsharded engine reports shard counters: %+v", sq)
	}
}

// TestExplainKinds: every execution layer's Explain names the backend
// serving each registered kind — including the registry-added top-k —
// for planned, routed, sharded and plain configurations.
func TestExplainKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe19))
	discrete := FromDiscrete(constructions.RandomDiscrete(rng, 30, 3, 40, 1.0, 1))
	disks := FromDisks(constructions.RandomDisks(rng, 20, 40, 0.5, 2.0))

	cases := []struct {
		name  string
		build func(t *testing.T) *Engine
		kinds []string
	}{
		{"plain", func(t *testing.T) *Engine {
			ix, err := Build(BackendBrute, discrete, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}, []string{"nonzero", "probs", "expected", "topk"}},
		{"routed", func(t *testing.T) *Engine {
			ix, err := BuildAuto(disks, BuildOptions{MCRounds: 16}, ShardOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}, []string{"nonzero", "probs", "topk"}},
		{"sharded", func(t *testing.T) *Engine {
			ix, err := BuildSharded(BackendBrute, discrete, BuildOptions{}, ShardOptions{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}, nil}, // sharded Explain lists per-shard composition, not kinds
		{"planned", func(t *testing.T) *Engine {
			ix, _, err := BuildPlanned(discrete, BuildOptions{}, ShardOptions{},
				PlannerOptions{Mix: Workload{Nonzero: 1, Probs: 1, Expected: 1, TopK: 1}})
			if err != nil {
				t.Fatal(err)
			}
			return NewEngine(ix, Options{})
		}, []string{"nonzero", "probs", "expected", "topk"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := tc.build(t)
			expl := eng.Explain()
			for _, kind := range tc.kinds {
				if !strings.Contains(expl, kind) {
					t.Fatalf("Explain lacks %q:\n%s", kind, expl)
				}
			}
			// Each configuration also answers a top-k query through the
			// surface it explains (except nonzero-only fleets).
			if eng.Capabilities().Has(CapTopK) {
				if _, err := eng.QueryTopK(geom.Pt(20, 20), 2, 0); err != nil {
					t.Fatalf("QueryTopK through %s: %v", tc.name, err)
				}
				// Sharded fleets have no single per-kind backend (each
				// shard plans its own); the resolution applies elsewhere.
				if tc.name != "sharded" {
					if b, ok := eng.kindBackend(CapTopK); !ok || b == "" {
						t.Fatalf("kindBackend(CapTopK) = %q, %v", b, ok)
					}
				}
			}
			if tc.name == "planned" && !strings.Contains(expl, "topk=1.00") {
				t.Fatalf("planned Explain lacks the topk mix share:\n%s", expl)
			}
		})
	}
}
