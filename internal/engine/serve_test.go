package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"unn/internal/constructions"
)

func serveEngine(t testing.TB, workers int) (*Engine, *Dataset) {
	rng := rand.New(rand.NewSource(0x5e12e))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 60, 3, 80, 1.0, 1))
	sx, err := BuildSharded(BackendBrute, ds, BuildOptions{}, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(sx, Options{Workers: workers}), ds
}

// TestServeDrainsStream pushes a 10k-query stream through Serve and
// checks that every sequence ID comes back exactly once, with the same
// answer the synchronous path gives.
func TestServeDrainsStream(t *testing.T) {
	eng, _ := serveEngine(t, 4)
	rng := rand.New(rand.NewSource(0xd2a1))
	const nq = 10000
	qs := randQueries(rng, nq, 80)

	in := make(chan Query)
	out := eng.Serve(context.Background(), in)
	go func() {
		for i, q := range qs {
			kind := CapNonzero
			switch i % 3 {
			case 1:
				kind = CapProbs
			case 2:
				kind = CapExpected
			}
			in <- Query{Seq: uint64(i), Kind: kind, Q: q}
		}
		close(in)
	}()

	seen := make(map[uint64]bool, nq)
	for a := range out {
		if a.Err != nil {
			t.Fatalf("seq %d: %v", a.Seq, a.Err)
		}
		if seen[a.Seq] {
			t.Fatalf("seq %d delivered twice", a.Seq)
		}
		seen[a.Seq] = true
		q := qs[a.Seq]
		switch a.Kind {
		case CapNonzero:
			want, _ := eng.QueryNonzero(q)
			if !reflect.DeepEqual(want, a.Nonzero) && !(len(want) == 0 && len(a.Nonzero) == 0) {
				t.Fatalf("seq %d: nonzero %v, want %v", a.Seq, a.Nonzero, want)
			}
		case CapExpected:
			wi, wd, _ := eng.QueryExpected(q)
			if a.Expected.I != wi || a.Expected.Dist != wd {
				t.Fatalf("seq %d: expected (%d,%v), want (%d,%v)",
					a.Seq, a.Expected.I, a.Expected.Dist, wi, wd)
			}
		}
	}
	if len(seen) != nq {
		t.Fatalf("drained %d answers, want %d", len(seen), nq)
	}
}

// TestServeCancellation cancels mid-stream with an abandoned consumer —
// the worst case for a deadlock — and requires every worker to exit and
// the answer channel to close promptly.
func TestServeCancellation(t *testing.T) {
	eng, _ := serveEngine(t, 4)
	rng := rand.New(rand.NewSource(0xca2c))
	ctx, cancel := context.WithCancel(context.Background())

	in := make(chan Query)
	out := eng.Serve(ctx, in)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for i := 0; ; i++ {
			q := Query{Seq: uint64(i), Kind: CapNonzero, Q: randQueries(rng, 1, 80)[0]}
			select {
			case in <- q:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Read a few answers, then walk away and cancel with the buffer full.
	for i := 0; i < 5; i++ {
		<-out
	}
	time.Sleep(10 * time.Millisecond)
	cancel()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				<-producerDone
				return
			}
		case <-deadline:
			t.Fatal("answer channel did not close after cancellation")
		}
	}
}

// TestServeErrorsInBand verifies per-query failures surface in
// Answer.Err without ending the stream.
func TestServeErrorsInBand(t *testing.T) {
	eng, _ := serveEngine(t, 2)
	in := make(chan Query, 3)
	in <- Query{Seq: 1, Kind: CapNonzero, Q: randQueries(rand.New(rand.NewSource(1)), 1, 80)[0]}
	in <- Query{Seq: 2, Kind: CapNonzero | CapProbs} // not a single kind
	in <- Query{Seq: 3, Kind: CapNonzero, Q: randQueries(rand.New(rand.NewSource(2)), 1, 80)[0]}
	close(in)
	got := map[uint64]error{}
	for a := range eng.Serve(context.Background(), in) {
		got[a.Seq] = a.Err
	}
	if len(got) != 3 {
		t.Fatalf("got %d answers, want 3", len(got))
	}
	if got[1] != nil || got[3] != nil {
		t.Fatalf("valid queries errored: %v / %v", got[1], got[3])
	}
	if got[2] == nil {
		t.Fatal("multi-kind query did not error")
	}
}

// TestServeBackpressure checks the answer channel's capacity bounds the
// number of in-flight completions when the consumer stalls.
func TestServeBackpressure(t *testing.T) {
	eng, _ := serveEngine(t, 2)
	eng.opt.ServeBuffer = 4
	rng := rand.New(rand.NewSource(0xbb))
	in := make(chan Query)
	out := eng.Serve(context.Background(), in)

	accepted := 0
	timeout := time.After(2 * time.Second)
feed:
	for i := 0; i < 100; i++ {
		select {
		case in <- Query{Seq: uint64(i), Kind: CapNonzero, Q: randQueries(rng, 1, 80)[0]}:
			accepted++
		case <-timeout:
			break feed
		}
	}
	// 2 workers + 4 buffered answers + 1 handoff in flight per worker:
	// with nobody consuming, the stream must stop accepting well short of
	// the 100 offered queries.
	if accepted >= 100 {
		t.Fatalf("stream accepted all %d queries with a stalled consumer", accepted)
	}
	close(in)
	for range out {
	}
}
