// The adaptive replanning loop: build-time planning made continuous.
//
// BuildPlanned (planner.go) picks a backend per query kind once, from a
// mix the caller guessed at build time. Real workloads drift, and the
// paper's structures have sharply different per-kind costs — a plan
// that was optimal for a π-heavy stream is badly wrong once the stream
// turns E[d]-heavy (the brute scan the planner kept for a 1% kind is
// suddenly 90% of traffic). The loop here closes that gap in four
// stages, threaded through the existing layers:
//
//		observe ──▶ detect ──▶ replan ──▶ swap
//		   ▲                                │
//		   └────────────────────────────────┘
//
//	  - Observe: every query path (single, batch-tiled, and Serve, which
//	    funnels through them) already records into the engine's per-kind
//	    latency counters and the per-shard visit counters. The controller
//	    windows both behind a countdown — one atomic add per query, zero
//	    allocations — and folds each window into EWMA profiles: global
//	    per-kind mean latency and mix share, per-shard per-kind visit
//	    rates (the shard's temperature).
//	  - Detect: detectDrift (cost.go) compares the smoothed profile
//	    against the installed plan — the mix against the plan's assumed
//	    mix (total-variation distance), the means against the reference
//	    means adopted when the plan was installed (estimate error).
//	  - Replan: planFor re-runs per shard with that shard's *own*
//	    observed mix, and with the build horizon scaled by the shard's
//	    share of the fleet's temperature — a hot shard amortizes over
//	    more queries, so it justifies expensive structures; a cold
//	    shard's horizon shrinks until the cheap-to-build oracle wins.
//	    That is the hot/cold tiering: it falls out of the cost model
//	    rather than a threshold rule. Builds run off the query path, on
//	    private sub-dataset snapshots (subset copies the id slices, and
//	    items are immutable, so concurrent mutations cannot tear them).
//	  - Swap: the install takes the fleet's write lock and re-checks the
//	    mutation epoch captured at snapshot time — the same fencing the
//	    dynamic layer's rebuilds rely on. A mutation that slipped in
//	    between snapshot and install aborts the swap (the next window
//	    retries); otherwise the new backends replace the old ones
//	    atomically, the epoch advances, and the engine closes a mutation
//	    epoch (cache flush) so no stale answers survive the plan change.
//
// Snapshots persist the shard temperatures, observed rates, and replan
// history (snapshot.go), so a restored handle resumes warm instead of
// re-learning the workload from scratch.
package engine

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// AdaptiveOptions tunes the adaptive replanning loop
// (Options.AdaptiveReplan). The zero value selects every default.
type AdaptiveOptions struct {
	// Window is the number of queries per observation window: the
	// controller wakes at each window boundary to fold the counters into
	// the EWMA profiles and run drift detection. Default 512.
	Window int
	// Drift bounds how far the observed workload may wander from the
	// plan before a replan fires (see DriftThresholds).
	Drift DriftThresholds
	// Cooldown is the number of windows after a replan during which
	// drift detection stays silent, so the profiles re-settle around the
	// new plan before it can be judged. Default 2.
	Cooldown int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2
	}
	o.Drift = o.Drift.withDefaults()
	return o
}

// ewmaAlpha is the smoothing factor of every workload profile: each
// window moves the average halfway to the new observation, so a flipped
// mix dominates after two windows while a single odd window cannot
// trigger a replan by itself.
const ewmaAlpha = 0.5

// Horizon scaling bounds for the hot/cold tiering: a shard's effective
// planning horizon is the configured horizon times its share of the
// fleet temperature (×k, so a uniform fleet is unchanged), clamped to
// [minShardHorizon, maxHorizonScale × configured].
const (
	minShardHorizon = 16
	maxHorizonScale = 8
)

// adaptivePlanner is the loop's controller, owned by an Engine whose
// index is a planner-built sharded fleet.
type adaptivePlanner struct {
	e   *Engine
	sx  *ShardedIndex
	opt AdaptiveOptions

	// countdown is the hot-path state: queries decrement it, and the one
	// crossing zero runs the window tick inline (ticking is the reentry
	// guard). Everything the tick touches is preallocated, so the query
	// hot path stays allocation-free.
	countdown atomic.Int64
	ticking   atomic.Bool

	// replanMu serializes replans: the tick's fire-and-forget goroutine
	// and manual Replan calls. Ticks that find it held skip firing.
	replanMu sync.Mutex

	// mu guards the window state below.
	mu  sync.Mutex
	obs Observer
	// mean / mix are the smoothed global profile: per-kind EWMA query
	// latency (ns) and share of window traffic. ref is the reference
	// latency adopted at plan install (the empirical realization of the
	// plan's cost estimates — it absorbs the sharded merge constants the
	// per-backend estimates cannot see); planMix is the normalized mix
	// the installed plan was optimized for.
	mean    [numKinds]float64
	mix     [numKinds]float64
	ref     [numKinds]float64
	planMix [numKinds]float64
	// warm marks the profile seeded: the first window after install (or
	// after a replan) rebaselines ref instead of detecting drift.
	warm        bool
	cooldown    int
	replans     uint64
	lastReason  string
	staleSwaps  uint64 // installs aborted by the epoch fence
	manualTried bool   // a manual Replan ran at least once (Explain detail)
}

// newAdaptivePlanner wires the controller. planMix is seeded from the
// stored planner options (uniform over the supported kinds when the
// configured mix is zero, mirroring planFor).
func newAdaptivePlanner(e *Engine, sx *ShardedIndex, opt AdaptiveOptions) *adaptivePlanner {
	ap := &adaptivePlanner{e: e, sx: sx, opt: opt.withDefaults()}
	ap.countdown.Store(int64(ap.opt.Window))
	ap.setPlanMix(*sx.popt)
	return ap
}

// setPlanMix records the normalized mix of the installed plan (the
// detector's target). Caller holds ap.mu or has exclusive access.
func (ap *adaptivePlanner) setPlanMix(popt PlannerOptions) {
	caps := ap.sx.Capabilities()
	var w [numKinds]float64
	sum := 0.0
	for i := range kindTable {
		if !caps.Has(kindTable[i].cap) {
			continue
		}
		v := popt.Mix.weight(kindTable[i].cap)
		if popt.Mix.isZero() {
			v = 1
		}
		w[i] = v
		sum += v
	}
	if sum > 0 {
		for i := range w {
			w[i] /= sum
		}
	}
	ap.planMix = w
}

// noteQueries is the engine-side hook on every stats-recording site: one
// atomic add per call, and the call that crosses the window boundary
// runs the tick inline.
func (e *Engine) noteQueries(n int) {
	if ap := e.adapt; ap != nil {
		ap.note(n)
	}
}

func (ap *adaptivePlanner) note(n int) {
	if ap.countdown.Add(-int64(n)) > 0 {
		return
	}
	if !ap.ticking.CompareAndSwap(false, true) {
		return // another query is mid-tick; it will reset the countdown
	}
	ap.countdown.Store(int64(ap.opt.Window))
	ap.tick()
	ap.ticking.Store(false)
}

// tick closes one observation window: fold the latency counters and
// shard visit counters into the EWMA profiles, then run drift
// detection. The no-drift path allocates nothing; a firing tick spawns
// the replan goroutine and returns.
func (ap *adaptivePlanner) tick() {
	var cum [numKinds]KindStats
	for i := range cum {
		cum[i] = KindStats{Count: ap.e.stats.count[i].Load(), TotalNs: ap.e.stats.ns[i].Load()}
	}
	ap.mu.Lock()
	win := ap.obs.Window(cum)
	var total uint64
	for i := range win {
		total += win[i].Count
	}
	if total == 0 {
		ap.mu.Unlock()
		return
	}
	for i := range win {
		share := float64(win[i].Count) / float64(total)
		if ap.warm {
			ap.mix[i] += ewmaAlpha * (share - ap.mix[i])
		} else {
			ap.mix[i] = share
		}
		if win[i].Count > 0 {
			m := win[i].MeanNs()
			if ap.warm && ap.mean[i] > 0 {
				ap.mean[i] += ewmaAlpha * (m - ap.mean[i])
			} else {
				ap.mean[i] = m
			}
		}
	}
	if !ap.warm {
		ap.ref = ap.mean
		ap.warm = true
	}
	ap.updateShardRates()
	reason := ""
	if ap.cooldown > 0 {
		ap.cooldown--
	} else {
		reason = detectDrift(ap.mean, ap.mix, ap.ref, ap.planMix, ap.opt.Drift)
	}
	ap.mu.Unlock()
	if reason == "" {
		return
	}
	if !ap.replanMu.TryLock() {
		return // a replan is already in flight
	}
	go func() {
		defer ap.replanMu.Unlock()
		ap.replan(reason)
	}()
}

// updateShardRates folds each shard's visit delta since the previous
// window into its per-kind EWMA rate. Caller holds ap.mu; the shard
// list is read under the fleet's read lock, and the tick is the only
// writer of lastVisits/rates (ticking guard), so no further
// synchronization is needed.
func (ap *adaptivePlanner) updateShardRates() {
	sx := ap.sx
	sx.mu.RLock()
	for _, s := range sx.shards {
		for i := 0; i < numKinds; i++ {
			v := s.visits[i].Load()
			d := float64(v - s.lastVisits[i])
			s.lastVisits[i] = v
			if r := s.rate(i); r > 0 {
				s.setRate(i, r+ewmaAlpha*(d-r))
			} else if d > 0 {
				s.setRate(i, d)
			}
		}
	}
	sx.mu.RUnlock()
}

// shardWorkload reads one shard's observed mix off its EWMA rates (the
// zero Workload when the shard saw no traffic — callers fall back to
// the global mix).
func shardWorkload(s *shard) Workload {
	var w Workload
	for i := range kindTable {
		setWorkloadWeight(&w, kindTable[i].cap, s.rate(i))
	}
	return w
}

// observedWorkload is the global observed mix as planner weights.
// Caller holds ap.mu.
func (ap *adaptivePlanner) observedWorkload() Workload {
	var w Workload
	for i := range kindTable {
		setWorkloadWeight(&w, kindTable[i].cap, ap.mix[i])
	}
	return w
}

func setWorkloadWeight(w *Workload, kind Capability, v float64) {
	switch kind {
	case CapNonzero:
		w.Nonzero = v
	case CapProbs:
		w.Probs = v
	case CapTopK:
		w.TopK = v
	case CapExpected:
		w.Expected = v
	}
}

// Replan triggers one replan-and-swap synchronously — the manual
// counterpart of the automatic drift trigger, exposed as Handle.Replan.
// It reports whether a new plan was installed: false with a nil error
// means the epoch fence aborted the install (a mutation raced the
// build; retry after the stream settles) or the fleet has nothing to
// replan.
func (e *Engine) Replan() (bool, error) {
	ap := e.adapt
	if ap == nil {
		return false, fmt.Errorf("engine: Replan: adaptive replanning is not enabled (Options.AdaptiveReplan)")
	}
	ap.replanMu.Lock()
	defer ap.replanMu.Unlock()
	ap.mu.Lock()
	ap.manualTried = true
	ap.mu.Unlock()
	return ap.replan("manual replan")
}

// replan is the loop's build-and-swap stage. Caller holds replanMu.
//
// It snapshots the fleet under the read lock (shard pointers, their
// immutable sub-dataset snapshots, observed mixes, temperatures, and
// the mutation epoch), builds one freshly planned backend per shard off
// any lock, then installs them under the write lock iff the epoch is
// unchanged — the same fence the dynamic layer's rebuilds use, so
// in-flight queries only ever see the old fleet or the new one, never a
// torn mix of both.
func (ap *adaptivePlanner) replan(reason string) (bool, error) {
	sx := ap.sx

	type job struct {
		s    *shard
		sub  *Dataset
		mix  Workload
		temp float64
	}
	sx.mu.RLock()
	if sx.broken != nil {
		err := sx.broken
		sx.mu.RUnlock()
		return false, err
	}
	epoch0 := sx.epoch
	ds := sx.ds
	model := sx.model
	probed := sx.probed
	bopt := sx.bopt
	var popt PlannerOptions
	if sx.popt != nil {
		popt = *sx.popt
	}
	jobs := make([]job, 0, len(sx.shards))
	totalTemp := 0.0
	for _, s := range sx.shards {
		if s.ix == nil || len(s.ids) == 0 {
			continue
		}
		t := s.temp()
		totalTemp += t
		jobs = append(jobs, job{s: s, sub: s.sub, mix: shardWorkload(s), temp: t})
	}
	workers := sx.opt.BuildWorkers
	sx.mu.RUnlock()
	if len(jobs) == 0 || model == nil {
		return false, nil
	}

	ap.mu.Lock()
	gmix := ap.observedWorkload()
	ap.mu.Unlock()
	if !gmix.isZero() {
		popt.Mix = gmix
	}
	popt = popt.withDefaults()

	// Build the new per-shard backends off-lock, hot/cold tiered: each
	// shard plans with its own observed mix and a horizon proportional
	// to its temperature share.
	k := float64(len(jobs))
	built := make([]Index, len(jobs))
	var firstErr error
	var errMu sync.Mutex
	run := func(j int) {
		po := popt
		if !jobs[j].mix.isZero() {
			po.Mix = jobs[j].mix
		}
		if totalTemp > 0 {
			hor := po.Horizon * jobs[j].temp * k / totalTemp
			hor = math.Min(hor, po.Horizon*maxHorizonScale)
			hor = math.Max(hor, minShardHorizon)
			po.Horizon = hor
		}
		p := planFor(jobs[j].sub, model, po)
		p.Probed = probed
		px := &plannedIndex{plan: p, buildOpts: bopt}
		if err := px.Build(jobs[j].sub); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		built[j] = px
	}
	if workers <= 1 || len(jobs) == 1 {
		for j := range jobs {
			run(j)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(j int) {
				defer wg.Done()
				run(j)
				<-sem
			}(j)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return false, fmt.Errorf("engine: replan: %w", firstErr)
	}

	// Install under the write lock, epoch-fenced.
	sx.mu.Lock()
	if sx.broken != nil {
		err := sx.broken
		sx.mu.Unlock()
		return false, err
	}
	if sx.epoch != epoch0 {
		sx.mu.Unlock()
		ap.mu.Lock()
		ap.staleSwaps++
		ap.mu.Unlock()
		return false, nil
	}
	for j := range jobs {
		s := jobs[j].s
		old := s.ix
		s.ix = built[j]
		if ob, ok := old.(*bruteIndex); ok && ob.flat != nil {
			recycleShardFlat(ob.flat)
			ob.flat = nil
		}
	}
	// The dataset-level plan (Explain's header) under the new mix —
	// computed here, under the write lock, because sx.ds is mutated in
	// place by inserts and may not be read off-lock. The epoch fence just
	// guaranteed it is still the dataset the shard builds came from, and
	// planFor is cost-model arithmetic (no probe, no build), so the lock
	// hold stays short.
	dsPlan := planFor(ds, model, popt)
	dsPlan.Probed = probed
	sx.planNote = dsPlan.Explain()
	if sx.popt != nil {
		sx.popt.Mix = popt.Mix
	}
	// Future shard rebuilds (mutations) must plan with the new mix too:
	// replace the factory closure BuildPlanned installed, which captured
	// the build-time options.
	sx.factory = func(sub *Dataset) (Index, error) {
		p := planFor(sub, model, popt)
		p.Probed = probed
		px := &plannedIndex{plan: p, buildOpts: bopt}
		if err := px.Build(sub); err != nil {
			return nil, err
		}
		return px, nil
	}
	sx.recomputeCaps()
	sx.epoch++ // the swap is an epoch: readers that care re-snapshot
	sx.mu.Unlock()

	// Close the engine-side epoch exactly like a mutation: re-derive the
	// adaptive cache quantum, then flush the answer cache — a replanned
	// backend may answer π with a different (equally valid) approximation,
	// and stale entries must not outlive the plan that produced them.
	ap.e.afterMutation()

	ap.mu.Lock()
	ap.replans++
	ap.lastReason = reason
	ap.cooldown = ap.opt.Cooldown
	ap.warm = false // rebaseline ref on the next window
	ap.setPlanMix(popt)
	ap.mu.Unlock()
	return true, nil
}

// shardTemps snapshots the per-shard temperatures for Stats.
func (ap *adaptivePlanner) shardTemps() []float64 {
	return ap.sx.shardTemps()
}

// replanStats reports the replan count and last reason for Stats.
func (ap *adaptivePlanner) replanStats() (uint64, string) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.replans, ap.lastReason
}

// restoreState re-seeds the controller from a snapshot: replan history
// only — the latency windows rebuild within one window of traffic,
// while the shard rates (temperatures) ride the shards themselves.
func (ap *adaptivePlanner) restoreState(replans uint64, lastReason string) {
	ap.mu.Lock()
	ap.replans = replans
	ap.lastReason = lastReason
	ap.mu.Unlock()
}

// explain renders the loop's state, appended to Engine.Explain.
func (ap *adaptivePlanner) explain() string {
	ap.mu.Lock()
	replans, reason := ap.replans, ap.lastReason
	ap.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "adaptive: window %d queries, %d replans", ap.opt.Window, replans)
	if reason != "" {
		fmt.Fprintf(&sb, " (last: %s)", reason)
	}
	sb.WriteByte('\n')
	temps := ap.sx.shardTemps()
	hot, hotTemp := -1, 0.0
	for si, t := range temps {
		if t > hotTemp {
			hot, hotTemp = si, t
		}
	}
	if hot >= 0 {
		fmt.Fprintf(&sb, "  hottest shard %d at %.1f visits/window of %d shards\n", hot, hotTemp, len(temps))
	}
	return sb.String()
}
