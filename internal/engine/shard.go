package engine

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"unn/internal/geom"
	"unn/internal/kernel"
)

// Split selects the spatial partitioner of a ShardedIndex.
type Split uint8

const (
	// SplitKDMedian recursively halves the point set by the median
	// centroid coordinate along the wider axis (balanced shards).
	SplitKDMedian Split = iota
	// SplitGrid cuts the centroid bounding box into a near-square grid of
	// uniform cells (shards follow spatial density, may be unbalanced).
	SplitGrid
)

// ShardOptions tunes the sharded execution layer. The zero value of
// Shards disables sharding (see BuildSharded).
type ShardOptions struct {
	// Shards is the number of spatial shards k (k ≥ 1). Shards may be
	// empty when k exceeds the dataset size. It also seeds the dynamic
	// layer's per-shard size target at ⌈n/k⌉ of the initial build; under
	// Insert/Delete the target tracks ⌈n/k⌉ of the *live* size with
	// hysteresis (see dynamic.go), so long streams keep the shard count
	// near k instead of fragmenting into ever more shards.
	Shards int
	// Split selects the partitioner. Default SplitKDMedian.
	Split Split
	// BuildWorkers bounds the parallel per-shard builds. Default
	// runtime.NumCPU().
	BuildWorkers int
	// Adaptive enables per-shard backend choice (the ROADMAP's "small
	// shard → brute, large → two-stage"): a shard holding at most
	// AdaptiveCutoff items builds the brute reference backend — O(1)
	// rebuilds under mutation churn — while larger shards build the
	// two-stage structure of their dataset kind. A swap is only made
	// when it preserves the sharded index's capability set (e.g. for
	// discrete data behind the brute backend, where two-stage would drop
	// π and E[d], the configured backend is kept). Ignored by the
	// factory-built auto router.
	Adaptive bool
	// AdaptiveCutoff is the small-shard threshold for Adaptive.
	// Default 32.
	AdaptiveCutoff int
	// InsertBuffer enables the log-structured insert buffer (mutlog.go):
	// inserts append to a small delta shard queried alongside the main
	// shards instead of rebuilding an owning shard per item, and the
	// buffer flushes into the owning shards when it crosses the flush
	// threshold.
	InsertBuffer bool
	// FlushThreshold overrides the insert-buffer capacity; ≤ 0 lets the
	// cost model choose (see ShardedIndex.flushThreshold).
	FlushThreshold int
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.BuildWorkers <= 0 {
		o.BuildWorkers = runtime.NumCPU()
	}
	if o.AdaptiveCutoff <= 0 {
		o.AdaptiveCutoff = 32
	}
	return o
}

// qmetric is the metric the merge planner uses for distance bounds; it
// must match the metric of the wrapped backend (the lmetric backends
// answer under L∞/L1, everything else under L2).
type qmetric uint8

const (
	metricL2 qmetric = iota
	metricLinf
	metricL1
)

func metricFor(b Backend) qmetric {
	switch b {
	case BackendTwoStageLinf:
		return metricLinf
	case BackendTwoStageL1:
		return metricL1
	default:
		return metricL2
	}
}

// rectDist is the metric distance from q to the rectangle (0 inside) —
// the per-shard lower bound that drives pruning.
func (m qmetric) rectDist(q geom.Point, r geom.Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-q.X, q.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-q.Y, q.Y-r.Max.Y))
	switch m {
	case metricLinf:
		return math.Max(dx, dy)
	case metricL1:
		return dx + dy
	default:
		return math.Hypot(dx, dy)
	}
}

// shard is one spatial partition: the global indices it owns (ascending,
// so sub-dataset order preserves global relative order), the backend
// built over the sub-dataset, and the bounding box of its uncertainty
// regions. ix is nil for empty shards.
type shard struct {
	ids  []int
	sub  *Dataset
	ix   Index
	bbox geom.Rect
	// visits counts the queries per registered kind that actually scanned
	// this shard — merges that prune the shard by its lower bound do not
	// count it. Read by Engine.Stats (ShardQueries); the counters live on
	// the shard struct, so they survive in-place rebuilds and reset when
	// rebalancing replaces the shard.
	visits [numKinds]atomic.Uint64
	// rates is the windowed per-kind EWMA of visits — the shard's workload
	// profile, maintained by the adaptive replanning loop (adaptive.go):
	// each observation window folds the visit delta since the previous
	// window into an exponential moving average. Stored as float64 bits so
	// the single writer (the adaptive tick, which runs under the query
	// read lock) never tears against Stats readers. The sum over kinds is
	// the shard's temperature. Like visits, rates survive in-place
	// rebuilds and reset when rebalancing replaces the shard.
	rates [numKinds]atomic.Uint64
	// lastVisits is the adaptive tick's private snapshot of visits at the
	// previous window boundary (only the tick reads or writes it).
	lastVisits [numKinds]uint64
}

// rate returns the shard's EWMA visit rate for one kind slot.
func (s *shard) rate(i int) float64 { return math.Float64frombits(s.rates[i].Load()) }

// setRate stores the shard's EWMA visit rate for one kind slot.
func (s *shard) setRate(i int, v float64) { s.rates[i].Store(math.Float64bits(v)) }

// temp is the shard's temperature: its EWMA visit rate summed over
// kinds — visits per observation window. Hot shards justify expensive
// structures; cold shards demote to brute (see adaptive.go).
func (s *shard) temp() float64 {
	t := 0.0
	for i := 0; i < numKinds; i++ {
		t += s.rate(i)
	}
	return t
}

// ShardedIndex is the sharded execution layer: it splits a Dataset into
// k spatial shards, builds one backend instance per shard in parallel,
// and answers queries by merging per-shard answers with distance-based
// shard pruning (see plan.go). It implements Index, so it composes with
// the batch/cache/serve machinery exactly like a monolithic backend;
// it additionally implements Mutable (see dynamic.go), so a built index
// accepts Insert/Delete with incremental shard rebalancing.
type ShardedIndex struct {
	name    string
	backend Backend // empty for factory-built (auto) wrappers
	factory func(*Dataset) (Index, error)
	metric  qmetric
	opt     ShardOptions
	bopt    BuildOptions

	// planNote is the dataset-level plan description when the factory is
	// the cost-based planner (BuildPlanned); Explain prepends it.
	planNote string

	// mu is the mutation epoch lock: queries hold it shared, Insert and
	// Delete exclusively, so every query observes a consistent epoch —
	// never a half-applied mutation or mid-rebalance shard list.
	mu    sync.RWMutex
	epoch uint64
	// target is the per-shard size target: seeded at Build as ⌈n/k⌉ and
	// re-tracked against the live n with hysteresis by the dynamic layer
	// (see retarget).
	target int
	// broken poisons the index after a mutation failed mid-rebuild: the
	// dataset and id remap were already updated, so shard backends no
	// longer agree with the global numbering and every answer would be
	// silently wrong. Queries and further mutations return this error.
	broken error

	ds    *Dataset
	owned bool // ds views are private copies (first mutation clones)

	// flat is the SoA mirror of ds for the flat merge kernels (plan.go):
	// built at Build, kept in step row-by-row by the mutation paths
	// (flatInsertRow / kernel.Flat.DeleteRow), nil for dataset shapes
	// without a flat layout (mixed region families). Indexed by global
	// id, so shard id lists index straight into it. flatStale marks a
	// mirror a delete-heavy batch chose not to maintain per-op; it is
	// re-derived (reusing the stale slices) once in finishEpoch and never
	// read while stale — both flags only change under the write lock.
	flat      *kernel.Flat
	flatStale bool

	shards []*shard
	caps   Capability
	n      int

	// buf is the log-structured insert buffer (nil unless
	// ShardOptions.InsertBuffer): a delta shard outside the rebalancer's
	// jurisdiction, queried alongside the main shards and flushed into
	// them when it crosses the flush threshold (mutlog.go).
	buf        *shard
	bufInserts uint64
	bufFlushes uint64
	// model prices the flush threshold; BuildPlanned shares the
	// planner's calibrated model, everything else lazily falls back to
	// the seeded defaults.
	model *CostModel

	// popt/probed record the planner configuration when the factory is
	// the cost-based planner (BuildPlanned). Snapshots persist them (with
	// the model's coefficients) so a restored index re-plans shards
	// identically under future mutations without re-probing.
	popt   *PlannerOptions
	probed bool
}

// NewSharded returns an unbuilt sharded wrapper over the named backend.
func NewSharded(b Backend, bopt BuildOptions, sopt ShardOptions) (*ShardedIndex, error) {
	if _, err := NewIndex(b, bopt); err != nil {
		return nil, err
	}
	if sopt.Shards < 1 {
		return nil, fmt.Errorf("engine: sharded %s: need Shards ≥ 1, got %d", b, sopt.Shards)
	}
	return &ShardedIndex{
		name:    string(b),
		backend: b,
		factory: func(sub *Dataset) (Index, error) { return Build(b, sub, bopt) },
		metric:  metricFor(b),
		opt:     sopt.withDefaults(),
		bopt:    bopt,
	}, nil
}

// newShardedFunc is NewSharded for factory-built backends (the auto
// router and the planner); the metric is always L2 there. bopt is the
// build configuration the factory closes over — recorded so adaptive
// rebuilds and snapshots see the same options the factory uses.
func newShardedFunc(name string, factory func(*Dataset) (Index, error), bopt BuildOptions, sopt ShardOptions) *ShardedIndex {
	return &ShardedIndex{name: name, factory: factory, metric: metricL2, opt: sopt.withDefaults(), bopt: bopt}
}

// BuildSharded builds backend b over ds, wrapped in a ShardedIndex when
// sopt.Shards ≥ 1; sopt.Shards ≤ 0 falls back to the plain monolithic
// Build.
func BuildSharded(b Backend, ds *Dataset, bopt BuildOptions, sopt ShardOptions) (Index, error) {
	if sopt.Shards <= 0 {
		return Build(b, ds, bopt)
	}
	sx, err := NewSharded(b, bopt, sopt)
	if err != nil {
		return nil, err
	}
	if err := sx.Build(ds); err != nil {
		return nil, fmt.Errorf("engine: build sharded %s: %w", b, err)
	}
	return sx, nil
}

// Name implements Index.
func (sx *ShardedIndex) Name() string {
	return fmt.Sprintf("sharded(%s,k=%d)", sx.name, sx.opt.Shards)
}

// Capabilities implements Index: the intersection of the capabilities of
// the built shards (empty shards constrain nothing).
func (sx *ShardedIndex) Capabilities() Capability {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return sx.caps
}

// Shards returns the current number of shards (including empty ones);
// the count changes as the dynamic layer splits and merges.
func (sx *ShardedIndex) Shards() int {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	return len(sx.shards)
}

// shardSizes reports the per-shard item counts (diagnostics and tests).
func (sx *ShardedIndex) shardSizes() []int {
	sizes := make([]int, len(sx.shards))
	for i, s := range sx.shards {
		sizes[i] = len(s.ids)
	}
	return sizes
}

// centroid returns the partitioning key of item i: the center of its
// uncertainty-region bounding box.
func centroid(ds *Dataset, i int) geom.Point {
	if ds.Squares != nil {
		return ds.Squares[i].C
	}
	return ds.Points[i].Support().Center()
}

// itemBounds returns the bounding box of item i's uncertainty region.
func itemBounds(ds *Dataset, i int) geom.Rect {
	if ds.Squares != nil {
		s := ds.Squares[i]
		return geom.Rect{
			Min: geom.Pt(s.C.X-s.R, s.C.Y-s.R),
			Max: geom.Pt(s.C.X+s.R, s.C.Y+s.R),
		}
	}
	return ds.Points[i].Support()
}

// subset projects ds onto the given (ascending) global indices,
// preserving every specialized view the parent has.
func subset(ds *Dataset, ids []int) *Dataset {
	sub := &Dataset{}
	if ds.Points != nil {
		for _, i := range ids {
			sub.Points = append(sub.Points, ds.Points[i])
		}
	}
	if ds.Discrete != nil {
		for _, i := range ids {
			sub.Discrete = append(sub.Discrete, ds.Discrete[i])
		}
	}
	if ds.Disks != nil {
		for _, i := range ids {
			sub.Disks = append(sub.Disks, ds.Disks[i])
		}
	}
	if ds.Squares != nil {
		for _, i := range ids {
			sub.Squares = append(sub.Squares, ds.Squares[i])
		}
	}
	return sub
}

// partition splits the item indices of ds into exactly k groups (some
// possibly empty), each sorted ascending.
func partition(ds *Dataset, k int, split Split) [][]int {
	n := ds.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var groups [][]int
	if split == SplitGrid {
		groups = gridSplit(ds, idx, k)
	} else {
		groups = kdMedianSplit(ds, idx, k)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// kdMedianSplit recursively splits by the median centroid coordinate
// along the wider axis, allotting shards proportionally so any k ≥ 1
// (not only powers of two) yields balanced parts.
func kdMedianSplit(ds *Dataset, idx []int, k int) [][]int {
	if k == 1 {
		return [][]int{idx}
	}
	kl := k / 2
	kr := k - kl
	// Wider axis of the centroid bounding box.
	box := geom.EmptyRect()
	for _, i := range idx {
		box = box.Extend(centroid(ds, i))
	}
	byX := box.Width() >= box.Height()
	coord := func(i int) float64 {
		c := centroid(ds, i)
		if byX {
			return c.X
		}
		return c.Y
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := coord(idx[a]), coord(idx[b])
		if ca != cb {
			return ca < cb
		}
		return idx[a] < idx[b] // deterministic under ties
	})
	nl := len(idx) * kl / k
	left := append([]int(nil), idx[:nl]...)
	right := append([]int(nil), idx[nl:]...)
	return append(kdMedianSplit(ds, left, kl), kdMedianSplit(ds, right, kr)...)
}

// gridSplit cuts the centroid bounding box into a gx×gy grid with
// gx·gy ≥ k cells; cells beyond the k-th fold into the last shard.
func gridSplit(ds *Dataset, idx []int, k int) [][]int {
	gx := int(math.Floor(math.Sqrt(float64(k))))
	if gx < 1 {
		gx = 1
	}
	gy := (k + gx - 1) / gx
	box := geom.EmptyRect()
	for _, i := range idx {
		box = box.Extend(centroid(ds, i))
	}
	groups := make([][]int, k)
	w, h := box.Width(), box.Height()
	for _, i := range idx {
		c := centroid(ds, i)
		col, row := 0, 0
		if w > 0 {
			col = int((c.X - box.Min.X) / w * float64(gx))
			if col >= gx {
				col = gx - 1
			}
		}
		if h > 0 {
			row = int((c.Y - box.Min.Y) / h * float64(gy))
			if row >= gy {
				row = gy - 1
			}
		}
		cell := row*gx + col
		if cell >= k {
			cell = k - 1
		}
		groups[cell] = append(groups[cell], i)
	}
	return groups
}

// flatForDataset builds the SoA mirror the flat merge kernels run on:
// squares flatten under the planner's metric (L∞ natively, L1 on the
// unrotated centers — kernel.MetricL1 computes Manhattan distances
// directly, matching the planner's DistL1 arithmetic), discrete and disk
// datasets flatten their location/region rows. Dataset shapes with no
// uniform region family (mixed Points) return nil and the planner keeps
// the AoS merge.
func flatForDataset(ds *Dataset, m qmetric) *kernel.Flat {
	return flatForDatasetInto(nil, ds, m)
}

// flatForDatasetInto is flatForDataset reusing prev's slice capacity
// (matching kinds only); prev must not be read afterward.
func flatForDatasetInto(prev *kernel.Flat, ds *Dataset, m qmetric) *kernel.Flat {
	switch {
	case ds.Squares != nil:
		km := kernel.MetricLinf
		if m == metricL1 {
			km = kernel.MetricL1
		}
		return kernel.FromSquaresInto(prev, ds.Squares, km)
	case ds.Discrete != nil:
		return kernel.FromDiscreteInto(prev, ds.Discrete)
	case ds.Disks != nil:
		return kernel.FromDisksInto(prev, ds.Disks)
	default:
		return nil
	}
}

// Build implements Index: partition, then build one backend instance per
// non-empty shard in parallel (bounded by BuildWorkers).
func (sx *ShardedIndex) Build(ds *Dataset) error {
	n := ds.N()
	if n == 0 {
		return fmt.Errorf("sharded(%s): dataset has no uncertain points", sx.name)
	}
	sx.ds = ds
	sx.n = n
	sx.flat = flatForDataset(ds, sx.metric)
	sx.target = (n + sx.opt.Shards - 1) / sx.opt.Shards
	if sx.target < 1 {
		sx.target = 1
	}
	if sx.opt.InsertBuffer {
		sx.buf = &shard{bbox: geom.EmptyRect()}
		if sx.model == nil {
			// Resolve the flush-pricing model up front: flushThreshold is
			// also read under the query RLock (Explain), so the lazy
			// fallback must never fire there.
			sx.model = NewCostModel(nil)
		}
	}
	groups := partition(ds, sx.opt.Shards, sx.opt.Split)
	sx.shards = make([]*shard, len(groups))
	for si, ids := range groups {
		s := &shard{ids: ids, bbox: geom.EmptyRect()}
		for _, i := range ids {
			s.bbox = s.bbox.Union(itemBounds(ds, i))
		}
		if len(ids) > 0 {
			s.sub = subset(ds, ids)
		}
		sx.shards[si] = s
	}

	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, sx.opt.BuildWorkers)
		mu   sync.Mutex
		berr error
	)
	for _, s := range sx.shards {
		if s.sub == nil {
			continue
		}
		wg.Add(1)
		s := s
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ix, err := sx.shardFactory(s.sub)
			if err != nil {
				mu.Lock()
				if berr == nil {
					berr = err
				}
				mu.Unlock()
				return
			}
			s.ix = ix
		}()
	}
	wg.Wait()
	if berr != nil {
		return berr
	}
	if !sx.recomputeCaps() {
		return fmt.Errorf("sharded(%s): no shard could be built", sx.name)
	}
	return nil
}

// QuantumHint implements the adaptive cache-quantum hint: the finest
// hint among the built shards (each knows its own cell geometry),
// falling back to the dataset-spacing estimate. Sampled when the engine
// is constructed; mutations that reshape the dataset faster than the
// hint tracks only affect sharing granularity, never correctness beyond
// the documented one-cell quantization error.
func (sx *ShardedIndex) QuantumHint() float64 {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	best := autoQuantum(sx.ds)
	sx.queryParts(func(s *shard) {
		if h, ok := s.ix.(quantumHinter); ok {
			if q := h.QuantumHint(); q > 0 && (best <= 0 || q < best) {
				best = q
			}
		}
	})
	return best
}

// shardQuantumHint is the cheap per-mutation refresh source for the
// adaptive cache quantum (Engine.maybeTightenQuantum): the finest hint
// among the built parts only. Each part re-derived its own hint from
// its sub-dataset when it was last rebuilt, so the mutated region's
// spacing is already reflected there and reading it is O(k) — unlike
// QuantumHint, which re-estimates over the whole dataset (O(n log n))
// and would dominate the very rebuild cost the mutation path amortizes.
// A cluster split exactly across a shard boundary can escape the
// per-shard estimates; the refresh then simply keeps the coarser value
// (no worse than the pre-refresh behavior).
func (sx *ShardedIndex) shardQuantumHint() float64 {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	best := 0.0
	sx.queryParts(func(s *shard) {
		if h, ok := s.ix.(quantumHinter); ok {
			if q := h.QuantumHint(); q > 0 && (best <= 0 || q < best) {
				best = q
			}
		}
	})
	return best
}

// Explain describes the sharded composition: the dataset-level plan (for
// planner-built fleets), then one line per shard with its size and the
// backend the factory chose for it — the per-shard planner's decisions
// are read directly off the built parts.
func (sx *ShardedIndex) Explain() string {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	var sb strings.Builder
	if sx.planNote != "" {
		sb.WriteString(sx.planNote)
	}
	fmt.Fprintf(&sb, "sharded(%s): %d shards, per-shard target %d\n", sx.name, len(sx.shards), sx.target)
	for si, s := range sx.shards {
		name := "(empty)"
		if s.ix != nil {
			name = s.ix.Name()
		}
		if t := s.temp(); t > 0 {
			// Adaptive fleets annotate each shard with its temperature
			// (EWMA visits per observation window); cold fleets print the
			// historical line so goldens stay stable.
			fmt.Fprintf(&sb, "  shard %d: %d items → %s (temp %.1f)\n", si, len(s.ids), name, t)
		} else {
			fmt.Fprintf(&sb, "  shard %d: %d items → %s\n", si, len(s.ids), name)
		}
	}
	if sx.buf != nil {
		name := "(empty)"
		if sx.buf.ix != nil {
			name = sx.buf.ix.Name()
		}
		fmt.Fprintf(&sb, "  insert buffer: %d items (flush at %d) → %s\n",
			len(sx.buf.ids), sx.flushThreshold(), name)
	}
	return sb.String()
}

// shardQueryStats snapshots the per-shard per-kind visit counters
// (Engine.Stats surfaces them as Stats.ShardQueries). Only the main
// shards are reported — the insert buffer is an implementation detail
// of the mutation path, not a plannable partition.
func (sx *ShardedIndex) shardQueryStats() []ShardKindCounts {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	out := make([]ShardKindCounts, len(sx.shards))
	for si, s := range sx.shards {
		out[si].Shard = si
		for k := range s.visits {
			out[si].Counts[k] = s.visits[k].Load()
		}
	}
	return out
}

// shardTemps snapshots the per-shard temperatures (EWMA visits per
// observation window, summed over kinds) in shard order.
func (sx *ShardedIndex) shardTemps() []float64 {
	sx.mu.RLock()
	defer sx.mu.RUnlock()
	out := make([]float64, len(sx.shards))
	for si, s := range sx.shards {
		out[si] = s.temp()
	}
	return out
}

// recomputeCaps refreshes the capability intersection over the built
// shards, reporting whether at least one shard is built. The dynamic
// layer calls it after every mutation; for named backends the result
// is additionally clamped to the configured backend's capability set,
// so adaptive swaps (a brute-only interlude can answer MORE kinds than
// the configured two-stage) never let the reported set grow and then
// shrink back mid-stream.
func (sx *ShardedIndex) recomputeCaps() bool {
	sx.caps = allKindCaps()
	built := 0
	for _, s := range sx.shards {
		if s.ix != nil {
			sx.caps &= s.ix.Capabilities()
			built++
		}
	}
	if sx.buf != nil && sx.buf.ix != nil {
		sx.caps &= sx.buf.ix.Capabilities()
		built++
	}
	if built == 0 {
		sx.caps = 0
	}
	if sx.backend != "" {
		sx.caps &= datasetCaps(sx.backend, sx.ds)
	}
	return built > 0
}
