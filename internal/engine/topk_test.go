package engine

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/quantify"
)

// bruteTopK is the reference enumeration: the full exact π vector,
// sorted by probability descending with index-ascending tie-break,
// truncated to k.
func bruteTopK(ds *Dataset, q geom.Point, k int) []quantify.Prob {
	probs := quantify.ExactPositive(ds.Discrete, q)
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].P != probs[j].P {
			return probs[i].P > probs[j].P
		}
		return probs[i].I < probs[j].I
	})
	if k < len(probs) {
		probs = probs[:k]
	}
	return probs
}

// significant truncates a ranked vector at the first entry whose π is
// numerical noise: sharded and monolithic exact sweeps evaluate Eq. (2)
// with different association orders, so candidates at the ~1e-16 floor
// can round to zero on one side and survive on the other. Every entry
// above the floor must agree exactly in ranking and to 1e-12 in value.
func significant(ps []quantify.Prob) []quantify.Prob {
	for i, p := range ps {
		if p.P <= 1e-9 {
			return ps[:i]
		}
	}
	return ps
}

// assertTopK checks got against the reference ranking: identical index
// order and probabilities within 1e-12 on the significant prefix.
func assertTopK(t *testing.T, label string, got, want []quantify.Prob) {
	t.Helper()
	got, want = significant(got), significant(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].I != want[i].I {
			t.Fatalf("%s: rank %d is item %d, want %d (%v vs %v)", label, i, got[i].I, want[i].I, got, want)
		}
		if math.Abs(got[i].P-want[i].P) > 1e-12 {
			t.Fatalf("%s: rank %d π = %v, want %v", label, i, got[i].P, want[i].P)
		}
	}
}

// TestTopKParity is the top-k acceptance gate: monolithic brute,
// sharded (k ∈ parityKs) and planned execution all reproduce the
// brute-force enumeration — same deterministic ranking, π within
// 1e-12 — for several result sizes including k > n.
func TestTopKParity(t *testing.T) {
	rng := rand.New(rand.NewSource(0x70b4))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 40, 3, 40, 1.0, 1))
	qs := randQueries(rng, 32, 44)

	mono, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	planned, _, err := BuildPlanned(ds, BuildOptions{}, ShardOptions{},
		PlannerOptions{Mix: Workload{Nonzero: 1, Probs: 1, Expected: 1, TopK: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !planned.Capabilities().Has(CapTopK) {
		t.Fatalf("planned index lacks topk: %v", planned.Capabilities())
	}
	for _, k := range []int{1, 3, 7, 100} {
		for qi, q := range qs {
			want := bruteTopK(ds, q, k)
			got, err := queryTopKOf(mono, q, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertTopK(t, "mono", got, want)
			got, err = queryTopKOf(planned, q, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertTopK(t, "planned", got, want)
			for _, shards := range parityKs {
				sx := shardedOver(t, BackendBrute, ds, shards, BuildOptions{}).(*ShardedIndex)
				got, err := sx.QueryTopK(q, k, 0)
				if err != nil {
					t.Fatalf("shards=%d q%d: %v", shards, qi, err)
				}
				assertTopK(t, "sharded", got, want)
			}
		}
	}
}

// TestTopKSelect pins the selection kernel: both the copy-and-sort
// (k ≥ n) and heap paths produce the deterministic ranking, ties break
// by index ascending, and the input slice is never reordered (cached π
// vectors are shared).
func TestTopKSelect(t *testing.T) {
	in := []quantify.Prob{{I: 4, P: 0.2}, {I: 1, P: 0.5}, {I: 7, P: 0.2}, {I: 2, P: 0.1}, {I: 0, P: 0.5}}
	orig := append([]quantify.Prob(nil), in...)
	want := []quantify.Prob{{I: 0, P: 0.5}, {I: 1, P: 0.5}, {I: 4, P: 0.2}, {I: 7, P: 0.2}, {I: 2, P: 0.1}}
	for k := 1; k <= len(in)+2; k++ {
		got := topKSelect(in, k)
		wk := want
		if k < len(wk) {
			wk = wk[:k]
		}
		if !reflect.DeepEqual(got, wk) {
			t.Fatalf("k=%d: %v, want %v", k, got, wk)
		}
		if !reflect.DeepEqual(in, orig) {
			t.Fatalf("k=%d: topKSelect mutated its input: %v", k, in)
		}
	}
}

// TestEngineTopK covers the engine surface of the new kind: QueryTopK
// and BatchTopK agree, distinct k values are distinct cache cells, k<1
// and unsupported backends report errors, and the Serve stream carries
// the kind end to end.
func TestEngineTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(0x70b5))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 24, 3, 30, 1.0, 1))
	ix, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, Options{Workers: 2, CacheSize: 64})
	qs := randQueries(rng, 16, 34)

	batch, err := eng.BatchTopK(qs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := eng.QueryTopK(q, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("q%d: batch %v, single %v", i, batch[i], single)
		}
		assertTopK(t, "engine", single, bruteTopK(ds, q, 3))
	}
	// Same point, different k: the cache must not serve the k=3 answer.
	two, err := eng.QueryTopK(qs[0], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, "k=2 after k=3 cached", two, bruteTopK(ds, qs[0], 2))

	if _, err := eng.QueryTopK(qs[0], 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	st := eng.Stats()
	if st.Kind(CapTopK).Count == 0 {
		t.Fatalf("topk stats slot empty: %+v", st)
	}

	// A nonzero-only backend reports ErrUnsupported through every path.
	nz, err := Build(BackendTwoStageDiscrete, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(nz, Options{}).QueryTopK(qs[0], 2, 0); err == nil {
		t.Fatal("topk on a nonzero-only backend accepted")
	}
}
