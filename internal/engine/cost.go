// The cost model behind the query planner: per-backend estimators of
// build time and per-kind query time, seeded from the paper's own
// asymptotics and calibrated to this machine — either by a micro-probe
// at Build time (build a small sample instance per candidate backend and
// time a handful of queries) or from a persisted BENCH_engine.json
// calibration table written by `unnbench -json`.
//
// Every estimate is coefficient × term(n): the term is the theorem's
// growth law (e.g. the Theorem 3.1/3.2 two-stage structures answer NN≠0
// in O(log n + k) while the Lemma 2.1 oracle pays O(n) per query; the
// Theorem 4.2 V_Pr diagram is exact but its construction grows so fast
// that only toy instances afford it), and the coefficient is the
// machine-specific constant the calibration recovers. The planner
// (planner.go) only ever compares estimates, so the coefficients need to
// be mutually consistent, not individually precise.
package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"unn/internal/geom"
)

// CostOp names one estimated operation of a backend.
type CostOp uint8

const (
	// OpBuild is the one-time construction cost.
	OpBuild CostOp = iota
	// OpQueryNonzero is one NN≠0 query.
	OpQueryNonzero
	// OpQueryProbs is one quantification query.
	OpQueryProbs
	// OpQueryExpected is one expected-distance query.
	OpQueryExpected
	// OpQueryTopK is one top-k most-likely-NN query.
	OpQueryTopK
)

// String renders the op.
func (op CostOp) String() string {
	switch op {
	case OpBuild:
		return "build"
	case OpQueryNonzero:
		return "nonzero"
	case OpQueryProbs:
		return "probs"
	case OpQueryExpected:
		return "expected"
	case OpQueryTopK:
		return "topk"
	}
	return "unknown"
}

// queryOp maps a capability bit to its query CostOp (from the registry).
func queryOp(kind Capability) CostOp {
	if s := kindByCap(kind); s != nil {
		return s.op
	}
	return OpQueryExpected
}

// CostKey indexes one calibrated coefficient.
type CostKey struct {
	Backend Backend
	Op      CostOp
}

// Calibration maps (backend, op) to the nanosecond coefficient that
// multiplies the asymptotic term. Missing entries fall back to the
// seeded defaults.
type Calibration map[CostKey]float64

// term returns the asymptotic growth term of op for backend b at
// instance size n — the paper's complexity separations, flattened to the
// two-dimensional setting the library implements. lg is log₂(n+2) so
// degenerate sizes stay positive.
func term(b Backend, op CostOp, n int) float64 {
	fn := float64(n)
	lg := math.Log2(fn + 2)
	if op == OpBuild {
		switch b {
		case BackendBrute:
			return fn // store the input
		case BackendDiagram:
			return fn * fn * lg // arrangement + slab point location (§2)
		case BackendVPr:
			return fn * fn * fn * fn // Thm 4.2: complexity explodes; toy n only
		case BackendMonteCarlo:
			return fn // s instantiations of n points (s fixed by BuildOptions)
		default:
			return fn * lg // the near-linear structures (Thm 3.1/3.2, spiral, expected)
		}
	}
	switch b {
	case BackendBrute:
		switch op {
		case OpQueryNonzero, OpQueryExpected:
			return fn // Lemma 2.1 oracle / linear E[d] scan
		default:
			return fn * fn // Eq. (2) sweep: N log N + N·n
		}
	case BackendMonteCarlo:
		return lg // s point-location rounds (s in the coefficient)
	default:
		return lg // point location / two-stage / spiral prefix: O(log n + k)
	}
}

// DefaultCalibration returns the seeded coefficients (nanoseconds per
// term unit): rough constants measured once on a commodity core, good
// enough to rank backends when no probe or table is available.
func DefaultCalibration() Calibration {
	c := Calibration{}
	seed := func(b Backend, op CostOp, ns float64) { c[CostKey{b, op}] = ns }
	for _, b := range Backends() {
		seed(b, OpBuild, 500)
		seed(b, OpQueryNonzero, 400)
		seed(b, OpQueryProbs, 700)
		seed(b, OpQueryExpected, 400)
		// Top-k derives from the π sweep plus an O(n log k) selection, so
		// its seeds track the probs seeds.
		seed(b, OpQueryTopK, 700)
	}
	seed(BackendBrute, OpBuild, 5)
	// The brute query seeds reflect the flat SoA kernels (internal/kernel):
	// the fused δ/Δ scan halves the per-row distance evaluations of the
	// old AoS double pass, so the per-row nanoseconds dropped ≈2×
	// (measured 21.6µs per NN≠0 query at n=1000, k=3 locations).
	seed(BackendBrute, OpQueryNonzero, 12)
	seed(BackendBrute, OpQueryProbs, 12)
	seed(BackendBrute, OpQueryExpected, 15)
	seed(BackendBrute, OpQueryTopK, 12)
	seed(BackendDiagram, OpBuild, 60)
	seed(BackendVPr, OpBuild, 800)
	seed(BackendMonteCarlo, OpBuild, 3000) // × s instantiations
	seed(BackendMonteCarlo, OpQueryProbs, 2500)
	seed(BackendMonteCarlo, OpQueryTopK, 2500)
	seed(BackendSpiral, OpQueryProbs, 3000)
	seed(BackendSpiral, OpQueryTopK, 3000)
	return c
}

// CostModel estimates build and query costs. The zero value is unusable;
// construct with NewCostModel.
type CostModel struct {
	coef Calibration
}

// NewCostModel returns a model over the given calibration; entries
// missing from cal fall back to DefaultCalibration.
func NewCostModel(cal Calibration) *CostModel {
	coef := DefaultCalibration()
	for k, v := range cal {
		if v > 0 {
			coef[k] = v
		}
	}
	return &CostModel{coef: coef}
}

// Coefficients returns a copy of the model's calibration table — the
// serialization hook for snapshots, which persist the fitted
// coefficients so a restored engine plans (and prices insert-buffer
// flushes) identically without re-probing.
func (m *CostModel) Coefficients() Calibration {
	out := make(Calibration, len(m.coef))
	for k, v := range m.coef {
		out[k] = v
	}
	return out
}

// BuildCost estimates the construction cost (ns) of backend b at size n.
func (m *CostModel) BuildCost(b Backend, n int) float64 {
	return m.coef[CostKey{b, OpBuild}] * term(b, OpBuild, n)
}

// QueryCost estimates one query of the given kind (ns) on backend b at
// size n.
func (m *CostModel) QueryCost(b Backend, kind Capability, n int) float64 {
	op := queryOp(kind)
	return m.coef[CostKey{b, op}] * term(b, op, n)
}

// Observe folds a measured per-op latency back into the model — the
// feedback path from the engine's per-query-kind latency counters
// (Engine.Stats) to the planner. The coefficient moves by an
// equal-weight blend of its current value and the observation, so a
// drifting workload recalibrates without a single outlier rewriting the
// table.
func (m *CostModel) Observe(b Backend, op CostOp, n int, measuredNs float64) {
	t := term(b, op, n)
	if t <= 0 || measuredNs <= 0 {
		return
	}
	k := CostKey{b, op}
	obs := measuredNs / t
	if cur, ok := m.coef[k]; ok && cur > 0 {
		m.coef[k] = (cur + obs) / 2
		return
	}
	m.coef[k] = obs
}

// datasetCaps returns the query kinds backend b can answer for a dataset
// of this shape, mirroring the adapters' Build preconditions and
// dataset-dependent Capabilities — shared by the planner's candidacy
// test, the adaptive-swap gate, and the sharded capability clamp.
func datasetCaps(b Backend, ds *Dataset) Capability {
	switch b {
	case BackendBrute:
		c := Capability(0)
		if len(ds.Points) > 0 {
			c |= CapNonzero
		}
		if ds.Discrete != nil {
			c |= CapProbs | CapExpected | CapTopK
		}
		return c
	case BackendDiagram:
		if ds.Disks != nil || ds.Discrete != nil {
			return CapNonzero
		}
	case BackendTwoStageDisks:
		if ds.Disks != nil {
			return CapNonzero
		}
	case BackendTwoStageDiscrete:
		if ds.Discrete != nil {
			return CapNonzero
		}
	case BackendVPr, BackendSpiral:
		if ds.Discrete != nil {
			return CapProbs | CapTopK
		}
	case BackendMonteCarlo:
		if len(ds.Points) > 0 {
			return CapProbs | CapTopK
		}
	case BackendExpected:
		if ds.Discrete != nil {
			return CapExpected
		}
	case BackendTwoStageLinf, BackendTwoStageL1:
		if ds.Squares != nil {
			return CapNonzero
		}
	}
	return 0
}

// probeSize caps the sample size of the micro-probe per backend: the
// structures whose construction grows super-linearly are probed on toy
// instances (exactly the sizes their theorems afford).
func probeSize(b Backend, n int) int {
	cap := 160
	switch b {
	case BackendDiagram:
		cap = 20
	case BackendVPr:
		cap = 5
	}
	if n < cap {
		return n
	}
	return cap
}

// probeBBox bounds the probe's query window to the sample's support.
func probeBBox(ds *Dataset) geom.Rect {
	r := geom.EmptyRect()
	for i, n := 0, ds.N(); i < n; i++ {
		r = r.Union(itemBounds(ds, i))
	}
	return r
}

// Calibrate runs the micro-probe: for every candidate backend it builds
// a small sample of ds (timed), answers a handful of queries per
// supported kind (timed), and fits the coefficients. Backends whose
// seeded estimate is hopeless at the dataset's real size (≥ 1000× the
// best candidate's) are skipped — probing V_Pr at every Build would cost
// more than it could ever inform.
func Calibrate(ds *Dataset, bopt BuildOptions, candidates []Backend) Calibration {
	base := NewCostModel(nil)
	n := ds.N()
	cal := Calibration{}
	const probeQueries = 8
	for _, kind := range queryKinds() {
		best := math.Inf(1)
		for _, b := range candidates {
			if !datasetCaps(b, ds).Has(kind) {
				continue
			}
			if c := base.QueryCost(b, kind, n) + base.BuildCost(b, n); c < best {
				best = c
			}
		}
		for _, b := range candidates {
			if !datasetCaps(b, ds).Has(kind) {
				continue
			}
			if base.QueryCost(b, kind, n)+base.BuildCost(b, n) > 1000*best {
				continue
			}
			if _, done := cal[CostKey{b, OpBuild}]; done {
				continue // already probed for an earlier kind
			}
			probeBackend(ds, bopt, b, probeQueries, cal)
		}
	}
	return cal
}

// probeBackend builds one sampled instance of b and times its build and
// one query burst per supported kind, writing the fitted coefficients
// into cal.
func probeBackend(ds *Dataset, bopt BuildOptions, b Backend, queries int, cal Calibration) {
	m := probeSize(b, ds.N())
	if m < 1 {
		return
	}
	ids := make([]int, m)
	stride := ds.N() / m
	if stride < 1 {
		stride = 1
	}
	for i := range ids {
		ids[i] = i * stride
	}
	sub := subset(ds, ids)
	t0 := time.Now()
	ix, err := Build(b, sub, bopt)
	buildNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		return // not buildable on this dataset shape: never a candidate
	}
	if t := term(b, OpBuild, m); t > 0 {
		cal[CostKey{b, OpBuild}] = math.Max(buildNs/t, 0.01)
	}
	box := probeBBox(sub)
	rng := rand.New(rand.NewSource(0x9a0be))
	qs := make([]geom.Point, queries)
	for i := range qs {
		qs[i] = geom.Pt(
			box.Min.X+rng.Float64()*math.Max(box.Width(), 1),
			box.Min.Y+rng.Float64()*math.Max(box.Height(), 1),
		)
	}
	caps := ix.Capabilities()
	timeKind := func(op CostOp, run func(geom.Point)) {
		t0 := time.Now()
		for _, q := range qs {
			run(q)
		}
		per := float64(time.Since(t0).Nanoseconds()) / float64(len(qs))
		if t := term(b, op, m); t > 0 {
			cal[CostKey{b, op}] = math.Max(per/t, 0.01)
		}
	}
	if caps.Has(CapNonzero) {
		timeKind(OpQueryNonzero, func(q geom.Point) { ix.QueryNonzero(q) })
	}
	if caps.Has(CapProbs) {
		timeKind(OpQueryProbs, func(q geom.Point) { ix.QueryProbs(q, 0) })
	}
	if caps.Has(CapExpected) {
		timeKind(OpQueryExpected, func(q geom.Point) { ix.QueryExpected(q) })
	}
	if caps.Has(CapTopK) {
		timeKind(OpQueryTopK, func(q geom.Point) { queryTopKOf(ix, q, 3, 0) })
	}
}

// benchRecord is the subset of the unnbench -json schema the calibration
// loader needs; the field names are the stable contract of
// BENCH_engine.json.
type benchRecord struct {
	Exp       string  `json:"exp"`
	Backend   string  `json:"backend"`
	N         int     `json:"n"`
	BuildNs   int64   `json:"build_ns"`
	QueryNsOp float64 `json:"query_ns_op"`
}

// CalibrationFromJSON fits a calibration table from the raw bytes of a
// BENCH_engine.json artifact: every E16 row contributes its backend's
// build coefficient, and its single-query latency calibrates the kind
// that sweep measures (the backend's first capability, mirroring the
// E16 driver: NN≠0 when supported, else π, else E[d]). Rows of other
// sweeps are ignored. Multiple rows per backend average their fits.
func CalibrationFromJSON(data []byte) (Calibration, error) {
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("engine: calibration table: %w", err)
	}
	sums := map[CostKey]float64{}
	counts := map[CostKey]int{}
	add := func(k CostKey, coef float64) {
		sums[k] += coef
		counts[k]++
	}
	for _, r := range recs {
		if r.Exp != "E16" || r.N <= 0 {
			continue
		}
		b := Backend(r.Backend)
		found := false
		for _, known := range Backends() {
			if b == known {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if r.BuildNs > 0 {
			if t := term(b, OpBuild, r.N); t > 0 {
				add(CostKey{b, OpBuild}, float64(r.BuildNs)/t)
			}
		}
		if r.QueryNsOp > 0 {
			op := e16Op(b)
			if t := term(b, op, r.N); t > 0 {
				add(CostKey{b, op}, r.QueryNsOp/t)
			}
		}
	}
	cal := Calibration{}
	for k, s := range sums {
		cal[k] = s / float64(counts[k])
	}
	if len(cal) == 0 {
		// A table without a single usable E16 row would silently hand the
		// planner the seeded defaults while the caller believes it supplied
		// measurements; callers that want defaults can just omit the table.
		return nil, fmt.Errorf("engine: calibration table: no usable E16 records")
	}
	return cal, nil
}

// e16Op is the query kind the E16 sweep times for each backend: its
// first capability in Nonzero → Probs → Expected order.
func e16Op(b Backend) CostOp {
	switch b {
	case BackendVPr, BackendMonteCarlo, BackendSpiral:
		return OpQueryProbs
	case BackendExpected:
		return OpQueryExpected
	default:
		return OpQueryNonzero
	}
}

// LoadCalibration reads a BENCH_engine.json file into a calibration
// table (see CalibrationFromJSON).
func LoadCalibration(path string) (Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CalibrationFromJSON(data)
}

// Observer turns cumulative per-kind latency counters into delta
// windows: each Window call returns only the samples that arrived since
// the previous call and advances the mark. The engine's counters are
// monotone, so folding the same snapshot twice yields an empty window —
// the fix for the old one-shot ObserveInto, which re-blended the full
// cumulative means into the cost model on every call. The zero value is
// ready to use (the first window is everything recorded so far).
type Observer struct {
	last [numKinds]KindStats
}

// Window diffs cum (a cumulative per-kind snapshot, e.g. Stats.Kinds)
// against the previous call and advances. A counter that moved
// backwards (a fresh engine reusing the observer) restarts that kind's
// window from the new snapshot.
func (o *Observer) Window(cum [numKinds]KindStats) [numKinds]KindStats {
	var win [numKinds]KindStats
	for i := range cum {
		c, l := cum[i], o.last[i]
		if c.Count >= l.Count && c.TotalNs >= l.TotalNs {
			win[i] = KindStats{Count: c.Count - l.Count, TotalNs: c.TotalNs - l.TotalNs}
		}
		o.last[i] = c
	}
	return win
}

// DriftThresholds bounds how far the observed workload may wander from
// the installed plan before the adaptive loop fires a replan
// (adaptive.go). The zero value selects the defaults.
type DriftThresholds struct {
	// ErrFactor fires when a kind's observed mean latency is more than
	// this factor away — in either direction — from the reference mean
	// adopted when the plan was installed. Default 4.
	ErrFactor float64
	// MixDelta fires when the total-variation distance between the
	// observed per-kind query mix and the plan's assumed mix exceeds
	// this fraction (0..1). Default 0.35.
	MixDelta float64
}

func (t DriftThresholds) withDefaults() DriftThresholds {
	if t.ErrFactor <= 1 {
		t.ErrFactor = 4
	}
	if t.MixDelta <= 0 {
		t.MixDelta = 0.35
	}
	return t
}

// driftShareFloor is the observed share below which a kind's latency
// estimate error is ignored: a kind that barely runs contributes noise,
// not signal, and replanning for it cannot pay for the builds.
const driftShareFloor = 0.05

// detectDrift compares one observation window against the installed
// plan. mean[i] is the smoothed per-query latency of kind i (0 when the
// kind has no samples), mix[i] its observed share of the window,
// ref[i] the reference latency adopted at plan-install time, and
// planMix[i] the share the plan was optimized for. It returns a short
// human-readable reason when drift fired and "" otherwise; the no-drift
// path allocates nothing, so the adaptive tick can run it inline on the
// query path.
func detectDrift(mean, mix, ref, planMix [numKinds]float64, th DriftThresholds) string {
	th = th.withDefaults()
	tv := 0.0
	for i := range mix {
		tv += math.Abs(mix[i] - planMix[i])
	}
	tv /= 2
	if tv > th.MixDelta {
		return fmt.Sprintf("workload mix shifted (TV distance %.2f > %.2f)", tv, th.MixDelta)
	}
	for i := range mean {
		if mix[i] < driftShareFloor || mean[i] <= 0 || ref[i] <= 0 {
			continue
		}
		r := mean[i] / ref[i]
		if r > th.ErrFactor || r < 1/th.ErrFactor {
			return fmt.Sprintf("%s latency %.1fx its planned estimate", kindTable[i].name, r)
		}
	}
	return ""
}
