package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/uncertain"
)

// dynamicOver builds a mutable sharded index over ds (t.Fatal on error).
func dynamicOver(t *testing.T, b Backend, ds *Dataset, sopt ShardOptions) *ShardedIndex {
	t.Helper()
	sx, err := NewSharded(b, BuildOptions{}, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Build(ds); err != nil {
		t.Fatal(err)
	}
	return sx
}

// checkDynamicParity compares the dynamic index against a freshly built
// monolithic backend over the same surviving items: bit-identical NN≠0
// and expected-distance answers, π within 1e-12 (the exact-merge
// contract of the static sharded layer).
func checkDynamicParity(t *testing.T, sx *ShardedIndex, live []*uncertain.Discrete, qs []geom.Point, tag string) {
	t.Helper()
	mono, err := Build(BackendBrute, FromDiscrete(live), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		want, _ := mono.QueryNonzero(q)
		got, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatalf("%s: nonzero: %v", tag, err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("%s q=%v: nonzero %v, want %v", tag, q, got, want)
		}
		wp, _ := mono.QueryProbs(q, 0)
		gp, err := sx.QueryProbs(q, 0)
		if err != nil {
			t.Fatalf("%s: probs: %v", tag, err)
		}
		if d := probsMaxDiff(gp, wp, len(live)); d > 1e-12 {
			t.Fatalf("%s q=%v: probs diverge by %g", tag, q, d)
		}
		wi, wd, _ := mono.QueryExpected(q)
		gi, gd, err := sx.QueryExpected(q)
		if err != nil {
			t.Fatalf("%s: expected: %v", tag, err)
		}
		if wi != gi || wd != gd {
			t.Fatalf("%s q=%v: expected (%d,%v), want (%d,%v)", tag, q, gi, gd, wi, wd)
		}
	}
}

// checkSizeInvariant asserts the rebalancing bound: every non-empty
// shard holds at most 2× the target.
func checkSizeInvariant(t *testing.T, sx *ShardedIndex, tag string) {
	t.Helper()
	for _, sz := range sx.shardSizes() {
		if sz > 2*sx.target {
			t.Fatalf("%s: shard of %d items exceeds 2×target=%d (sizes %v)",
				tag, sz, 2*sx.target, sx.shardSizes())
		}
	}
}

// TestDynamicParityRandomMutations is the dynamic layer's core
// contract: after ANY interleaving of Insert/Delete (and the splits and
// merges they trigger), the index answers every query kind like a
// freshly built monolithic backend over the surviving items — for every
// Split mode.
func TestDynamicParityRandomMutations(t *testing.T) {
	for split, name := range map[Split]string{SplitKDMedian: "kdmedian", SplitGrid: "grid"} {
		split := split
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xd1a0 ^ int64(split)))
			const side = 80.0
			pool := constructions.RandomDiscrete(rng, 200, 3, side, 2.0, 1)
			live := append([]*uncertain.Discrete(nil), pool[:24]...)
			next := 24
			sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), live...)),
				ShardOptions{Shards: 4, Split: split})
			qs := randQueries(rng, 8, side)
			for step := 0; step < 70; step++ {
				if (rng.Intn(2) == 0 && next < len(pool)) || len(live) <= 2 {
					p := pool[next]
					next++
					gi, err := sx.Insert(Item{Point: p})
					if err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					if gi != len(live) {
						t.Fatalf("step %d: insert returned index %d, want %d", step, gi, len(live))
					}
					live = append(live, p)
				} else {
					i := rng.Intn(len(live))
					if _, err := sx.Delete(i); err != nil {
						t.Fatalf("step %d: delete(%d): %v", step, i, err)
					}
					live = append(live[:i], live[i+1:]...)
				}
				if sx.Len() != len(live) {
					t.Fatalf("step %d: Len=%d, want %d", step, sx.Len(), len(live))
				}
				if sx.Epoch() != uint64(step+1) {
					t.Fatalf("step %d: epoch=%d", step, sx.Epoch())
				}
				checkSizeInvariant(t, sx, name)
				checkDynamicParity(t, sx, live, qs, name)
			}
		})
	}
}

// TestDynamicGrowShrink drives the target tracking: the per-shard size
// target follows ⌈n/k⌉ of the live dataset with hysteresis, so a 15×
// growth keeps the shard count near the configured k (sizes grow with
// the data) instead of fragmenting into 15× more shards, and shrinking
// back ratchets the target — and the sizes — down again.
func TestDynamicGrowShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(0x96aa))
	const side = 120.0
	pool := constructions.RandomDiscrete(rng, 240, 2, side, 1.5, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pool[:16]...)),
		ShardOptions{Shards: 4})
	base := sx.Shards()
	baseTarget := sx.target
	for _, p := range pool[16:] {
		if _, err := sx.Insert(Item{Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	checkSizeInvariant(t, sx, "after growth")
	if sx.target <= baseTarget {
		t.Fatalf("growing 16 → 240 items left the per-shard target at %d (was %d)", sx.target, baseTarget)
	}
	// ⌈240/4⌉ = 60; hysteresis holds the tracked target within ±50%.
	if sx.target < 40 || sx.target > 90 {
		t.Fatalf("target %d after growth, want ≈ 60 (hysteresis band [40, 90])", sx.target)
	}
	grown := sx.Shards()
	if grown < base || grown > 3*base {
		t.Fatalf("15× growth moved shard count %d → %d, want near the configured %d", base, grown, base)
	}
	for sx.Len() > 8 {
		if _, err := sx.Delete(rng.Intn(sx.Len())); err != nil {
			t.Fatal(err)
		}
	}
	checkSizeInvariant(t, sx, "after shrink")
	if sx.target > 4 {
		t.Fatalf("shrinking to 8 items left the per-shard target at %d, want ≤ 4", sx.target)
	}
	if got := sx.Shards(); got < 2 {
		t.Fatalf("8 items under target %d collapsed to %d shards", sx.target, got)
	}
}

// TestDynamicAdaptiveBackends checks the per-shard backend choice on a
// disk dataset: under churn, small shards run brute and large shards
// the two-stage structure, while NN≠0 answers stay bit-identical to the
// monolithic reference.
func TestDynamicAdaptiveBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(0xada))
	const side = 60.0
	disks := constructions.RandomDisks(rng, 20, side, 0.4, 1.2)
	live := append([]geom.Disk(nil), disks...)
	sx := dynamicOver(t, BackendTwoStageDisks, FromDisks(append([]geom.Disk(nil), disks...)),
		ShardOptions{Shards: 2, Adaptive: true, AdaptiveCutoff: 6})
	// Both initial shards hold 10 > 6 items: two-stage everywhere.
	for _, s := range sx.shards {
		if !strings.Contains(s.ix.Name(), string(BackendTwoStageDisks)) {
			t.Fatalf("large shard built %q, want two-stage", s.ix.Name())
		}
	}
	// Drain shard 0 to 6 members (above the merge threshold of
	// ⌈target/2⌉−1 = 4, below the cutoff): its rebuilds must swap to the
	// brute backend while the untouched shard keeps two-stage.
	for len(sx.shards[0].ids) > 6 {
		gi := sx.shards[0].ids[0]
		if _, err := sx.Delete(gi); err != nil {
			t.Fatal(err)
		}
		live = append(live[:gi], live[gi+1:]...)
	}
	if got := sx.shards[0].ix.Name(); got != string(BackendBrute) {
		t.Fatalf("small shard built %q, want brute", got)
	}
	if got := sx.shards[1].ix.Name(); !strings.Contains(got, string(BackendTwoStageDisks)) {
		t.Fatalf("large shard built %q, want two-stage", got)
	}
	// The capability set is unchanged by the mixed fleet, and answers
	// stay bit-identical to the monolithic two-stage reference.
	if got := sx.Capabilities(); got != CapNonzero {
		t.Fatalf("capabilities = %v, want %v", got, CapNonzero)
	}
	mono, err := Build(BackendTwoStageDisks, FromDisks(live), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range randQueries(rng, 24, side) {
		want, _ := mono.QueryNonzero(q)
		got, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
	}
}

// TestDynamicAdaptiveCapsClamped: an adaptive swap may build a backend
// that answers MORE query kinds than the configured one (brute over
// discrete data also quantifies), but the reported capability set must
// stay the configured backend's — otherwise a client could observe
// CapProbs appear during an all-brute interlude and vanish again after
// one insert.
func TestDynamicAdaptiveCapsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc1a))
	pts := constructions.RandomDiscrete(rng, 12, 2, 30, 1.0, 1)
	sx := dynamicOver(t, BackendTwoStageDiscrete, FromDiscrete(pts),
		ShardOptions{Shards: 2, Adaptive: true, AdaptiveCutoff: 64})
	// Every shard is under the cutoff, so the whole fleet runs brute —
	// whose own capability set on discrete data would be all three kinds.
	for _, s := range sx.shards {
		if s.ix.Name() != string(BackendBrute) {
			t.Fatalf("shard built %q, want brute under the cutoff", s.ix.Name())
		}
	}
	if got := sx.Capabilities(); got != CapNonzero {
		t.Fatalf("capabilities = %v, want the configured backend's %v", got, CapNonzero)
	}
	if _, err := sx.QueryProbs(geom.Pt(1, 1), 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("QueryProbs err = %v, want ErrUnsupported", err)
	}
	if _, err := sx.Insert(Item{Point: pts[0]}); err != nil {
		t.Fatal(err)
	}
	if got := sx.Capabilities(); got != CapNonzero {
		t.Fatalf("capabilities after mutation = %v, want %v", got, CapNonzero)
	}
}

// TestDynamicSquares mutates a squares dataset (the lmetric L∞ backend)
// and checks NN≠0 parity against the monolithic structure.
func TestDynamicSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(0x59a))
	mk := func(n int) []lmetric.Square {
		sq := make([]lmetric.Square, n)
		for i := range sq {
			sq[i] = lmetric.Square{C: geom.Pt(rng.Float64()*40, rng.Float64()*40), R: 0.3 + rng.Float64()}
		}
		return sq
	}
	live := mk(20)
	sx := dynamicOver(t, BackendTwoStageLinf, FromSquares(append([]lmetric.Square(nil), live...)),
		ShardOptions{Shards: 3})
	for _, s := range mk(15) {
		s := s
		if _, err := sx.Insert(Item{Square: &s}); err != nil {
			t.Fatal(err)
		}
		live = append(live, s)
	}
	for i := 0; i < 10; i++ {
		di := rng.Intn(len(live))
		if _, err := sx.Delete(di); err != nil {
			t.Fatal(err)
		}
		live = append(live[:di], live[di+1:]...)
	}
	mono, err := Build(BackendTwoStageLinf, FromSquares(live), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range randQueries(rng, 24, 40) {
		want, _ := mono.QueryNonzero(q)
		got, err := sx.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("q=%v: nonzero %v, want %v", q, got, want)
		}
	}
}

// TestDynamicValidation exercises the mutation error paths.
func TestDynamicValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 6, 2, 20, 1.0, 1))
	sx := dynamicOver(t, BackendBrute, ds, ShardOptions{Shards: 2})
	if _, err := sx.Insert(Item{}); err == nil {
		t.Error("Insert accepted an empty Item")
	}
	if _, err := sx.Insert(Item{Point: uncertain.UniformDisk{D: geom.DiskAt(1, 1, 1)}}); err == nil {
		t.Error("Insert accepted a continuous point into an all-discrete dataset")
	}
	if _, err := sx.Delete(-1); err == nil {
		t.Error("Delete accepted a negative index")
	}
	if _, err := sx.Delete(6); err == nil {
		t.Error("Delete accepted an out-of-range index")
	}
	for sx.Len() > 1 {
		if _, err := sx.Delete(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sx.Delete(0); err == nil {
		t.Error("Delete removed the last item")
	}

	// Monolithic backends refuse mutations with ErrImmutable.
	mono, err := Build(BackendBrute, ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(mono, Options{})
	if eng.Mutable() {
		t.Error("monolithic brute reports Mutable")
	}
	if _, err := eng.Insert(Item{Point: ds.Discrete[0]}); !errors.Is(err, ErrImmutable) {
		t.Errorf("Insert on monolithic backend: err=%v, want ErrImmutable", err)
	}
	if err := eng.Delete(0); !errors.Is(err, ErrImmutable) {
		t.Errorf("Delete on monolithic backend: err=%v, want ErrImmutable", err)
	}
}

// TestDynamicCacheInvalidation: a mutation must flush the engine-level
// answer cache — and an in-flight pre-mutation answer must not be
// re-cached after the flush (the generation check).
func TestDynamicCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcace))
	pts := constructions.RandomDiscrete(rng, 12, 2, 30, 1.0, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pts...)),
		ShardOptions{Shards: 2})
	eng := NewEngine(sx, Options{Workers: 1, CacheSize: 32})
	q := geom.Pt(15, 15)
	before, err := eng.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	// A far-away insert that becomes the unique closest point to q.
	ins := uncertain.UniformDiscrete([]geom.Point{q})
	if _, err := eng.Insert(Item{Point: ins}); err != nil {
		t.Fatal(err)
	}
	after, err := eng.QueryNonzero(q)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatalf("cached answer survived a mutation: %v", after)
	}
	mono, err := Build(BackendBrute, FromDiscrete(append(append([]*uncertain.Discrete(nil), pts...), ins)), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mono.QueryNonzero(q)
	if !reflect.DeepEqual(want, after) {
		t.Fatalf("post-mutation answer %v, want %v", after, want)
	}

	// Stale-put: an answer computed under an old generation is dropped.
	c := eng.cache
	gen := c.generation()
	c.invalidate()
	c.put(kindNonzero, q, 0, 0, []int{99}, gen)
	if _, ok := c.get(kindNonzero, q, 0, 0); ok {
		t.Fatal("stale-generation put landed in the cache")
	}
}

// TestDynamicServeMutations drives mutations through the Serve stream:
// OpInsert/OpDelete interleave with queries on one channel, and the
// final index matches a fresh monolithic build over the survivors.
func TestDynamicServeMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5e7e))
	const side = 50.0
	pool := constructions.RandomDiscrete(rng, 40, 2, side, 1.0, 1)
	live := append([]*uncertain.Discrete(nil), pool[:16]...)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), live...)),
		ShardOptions{Shards: 3})
	eng := NewEngine(sx, Options{Workers: 3})
	ctx := context.Background()
	in := make(chan Query)
	out := eng.Serve(ctx, in)

	// Mutations are awaited one at a time (their relative order is the
	// test's ground truth); queries in between may complete out of order.
	await := func(q Query) Answer {
		in <- q
		for a := range out {
			if a.Seq == q.Seq {
				return a
			}
		}
		t.Fatalf("stream closed before answer %d", q.Seq)
		return Answer{}
	}
	seq := uint64(0)
	for i, p := range pool[16:28] {
		seq++
		a := await(Query{Seq: seq, Kind: OpInsert, Item: Item{Point: p}})
		if a.Err != nil {
			t.Fatalf("insert %d: %v", i, a.Err)
		}
		live = append(live, p)
		if a.N != len(live) {
			t.Fatalf("insert %d: N=%d, want %d", i, a.N, len(live))
		}
		seq++
		if a := await(Query{Seq: seq, Kind: CapNonzero, Q: randQueries(rng, 1, side)[0]}); a.Err != nil {
			t.Fatalf("query after insert: %v", a.Err)
		}
		if i%2 == 0 {
			di := rng.Intn(len(live))
			seq++
			if a := await(Query{Seq: seq, Kind: OpDelete, Del: di}); a.Err != nil {
				t.Fatalf("delete %d: %v", di, a.Err)
			}
			live = append(live[:di], live[di+1:]...)
		}
	}
	seq++
	if a := await(Query{Seq: seq, Kind: OpInsert}); a.Err == nil {
		t.Fatal("stream accepted an empty insert payload")
	}
	close(in)
	for range out {
	}
	checkDynamicParity(t, sx, live, randQueries(rng, 16, side), "serve")
}

// TestDynamicConcurrentQueries hammers the index with concurrent
// readers while mutating — the RWMutex epoch must keep every answer
// internally consistent (this test runs under -race in CI).
func TestDynamicConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0c0))
	const side = 60.0
	pool := constructions.RandomDiscrete(rng, 160, 2, side, 1.0, 1)
	sx := dynamicOver(t, BackendBrute, FromDiscrete(append([]*uncertain.Discrete(nil), pool[:32]...)),
		ShardOptions{Shards: 4})
	eng := NewEngine(sx, Options{CacheSize: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geom.Pt(qrng.Float64()*side, qrng.Float64()*side)
				if _, err := eng.QueryNonzero(q); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if _, _, err := eng.QueryExpected(q); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}(w)
	}
	for _, p := range pool[32:] {
		if _, err := eng.Insert(Item{Point: p}); err != nil {
			t.Error(err)
			break
		}
		if eng.Epoch()%3 == 0 {
			if err := eng.Delete(rng.Intn(sx.Len())); err != nil {
				t.Error(err)
				break
			}
		}
	}
	close(stop)
	wg.Wait()
}
