// The query-kind registry: one table driving every per-kind decision in
// the engine layer. Each registered kind carries its capability bit, its
// cost-model op (the planner term), its cache-key canonicalization
// (which request knobs participate in the key), its Stats slot (the
// table index), and its dispatch — so batch.go, serve.go, cache.go,
// cost.go, planner.go, plan.go and engine/snapshot.go iterate the
// registry instead of hardwiring kind lists.
//
// Adding a query kind is one entry here plus its backend
// implementations: append a kindSpec (new capability bit, new CostOp),
// grant the bit in the adapters' Capabilities and in datasetCaps
// (cost.go), and — when the kind needs a cross-shard merge smarter than
// per-part delegation — add its merge to plan.go. Everything else
// (stats, caching, Serve, Batch*, Explain, calibration, snapshot plan
// entries) picks the kind up from the table. DESIGN.md §10 walks
// through the QueryKindTopK registration as the worked example.
package engine

import (
	"fmt"
	"sort"

	"unn/internal/geom"
	"unn/internal/quantify"
)

// Request is the typed query request of the unified entry point
// Engine.Query: the kind (exactly one capability bit), the query point,
// and the per-kind knobs — Eps for approximating probability backends
// (≤ 0 selects the build-time default), K for top-k queries.
type Request struct {
	Kind Capability
	Q    geom.Point
	Eps  float64
	K    int
}

// Result is the typed answer of Engine.Query; the field matching the
// request kind is populated (see Kind).
type Result struct {
	Kind     Capability
	Nonzero  []int
	Probs    []quantify.Prob
	TopK     []quantify.Prob
	Expected ExpectedResult
}

// kindSpec is one registered query kind.
type kindSpec struct {
	cap  Capability
	name string // stable label: Capability.String element, Explain lines
	op   CostOp // the planner's cost-model term
	// cacheKind is the kind byte of the shared cache-key builder; usesEps
	// / usesK declare which request knobs participate in the key (the
	// builder canonicalizes the rest to zero so equivalent requests share
	// a cell).
	cacheKind      uint8
	usesEps, usesK bool
	// tileable marks kinds the tiled batch executor can serve
	// (batchtile.go): the kind has multi-query kernels and a sink-based
	// batcher contract, so Batch* calls and Serve coalescing may group
	// its queries into tiles. Non-tileable kinds always take the scalar
	// per-query batch path.
	tileable bool
	// run is the raw backend dispatch (no cache, no stats).
	run func(ix Index, req Request) (any, error)
	// fill writes the (possibly cached) payload into a Result.
	fill func(r *Result, v any)
	// weight reads the kind's Workload share for the planner.
	weight func(w Workload) float64
}

// numKinds is the registry size; NumKinds is its exported alias (the
// Stats table dimension).
const (
	numKinds = 4
	// NumKinds is the number of registered query kinds — the length of
	// the kind-indexed tables in Stats.
	NumKinds = numKinds
)

// kindTable is the registry, in slot order. Slot order is frozen:
// appending is fine, reordering would silently remap Stats slots.
var kindTable = [numKinds]kindSpec{
	{
		cap: CapNonzero, name: "nonzero", op: OpQueryNonzero, cacheKind: kindNonzero, tileable: true,
		run:    func(ix Index, req Request) (any, error) { return ix.QueryNonzero(req.Q) },
		fill:   func(r *Result, v any) { r.Nonzero = v.([]int) },
		weight: func(w Workload) float64 { return w.Nonzero },
	},
	{
		cap: CapProbs, name: "probs", op: OpQueryProbs, cacheKind: kindProbs, usesEps: true,
		run:    func(ix Index, req Request) (any, error) { return ix.QueryProbs(req.Q, req.Eps) },
		fill:   func(r *Result, v any) { r.Probs = v.([]quantify.Prob) },
		weight: func(w Workload) float64 { return w.Probs },
	},
	{
		cap: CapExpected, name: "expected", op: OpQueryExpected, cacheKind: kindExpected, tileable: true,
		run: func(ix Index, req Request) (any, error) {
			i, d, err := ix.QueryExpected(req.Q)
			return expectedAnswer{i, d}, err
		},
		fill: func(r *Result, v any) {
			ed := v.(expectedAnswer)
			r.Expected = ExpectedResult{I: ed.i, Dist: ed.d}
		},
		weight: func(w Workload) float64 { return w.Expected },
	},
	{
		cap: CapTopK, name: "topk", op: OpQueryTopK, cacheKind: kindTopK, usesEps: true, usesK: true,
		run: func(ix Index, req Request) (any, error) {
			return queryTopKOf(ix, req.Q, req.K, req.Eps)
		},
		fill:   func(r *Result, v any) { r.TopK = v.([]quantify.Prob) },
		weight: func(w Workload) float64 { return w.TopK },
	},
}

// The registry slots by name, for hot paths that index per-kind tables
// without the kindSlot scan (the shard visit counters).
const (
	slotNonzero = iota
	slotProbs
	slotExpected
	slotTopK
)

// kindSlot returns the registry slot of kind, or -1 for a value that is
// not a registered query kind (e.g. a Serve mutation op).
func kindSlot(kind Capability) int {
	for i := range kindTable {
		if kindTable[i].cap == kind {
			return i
		}
	}
	return -1
}

// kindByCap returns the registry entry of kind, or nil.
func kindByCap(kind Capability) *kindSpec {
	if i := kindSlot(kind); i >= 0 {
		return &kindTable[i]
	}
	return nil
}

// queryKinds lists the registered kinds' capability bits in slot order.
func queryKinds() []Capability {
	out := make([]Capability, numKinds)
	for i := range kindTable {
		out[i] = kindTable[i].cap
	}
	return out
}

// allKindCaps is the union of every registered capability bit.
func allKindCaps() Capability {
	var c Capability
	for i := range kindTable {
		c |= kindTable[i].cap
	}
	return c
}

// --- top-k dispatch ----------------------------------------------------------

// topKQuerier is the optional backend interface for kinds that own a
// native top-k path (the sharded merge, the brute reference). Backends
// advertising CapTopK without it are served by the generic
// rank-the-π-vector fallback below.
type topKQuerier interface {
	QueryTopK(q geom.Point, k int, eps float64) ([]quantify.Prob, error)
}

// queryTopKOf answers a top-k most-likely-NN query against ix: the
// backend's native implementation when it has one, else ranking the
// backend's full π vector. The quantum-hint wrapper is unwrapped so a
// hinted sharded/brute index still reaches its native path.
func queryTopKOf(ix Index, q geom.Point, k int, eps float64) ([]quantify.Prob, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: topk: k must be ≥ 1, got %d", k)
	}
	for {
		if tk, ok := ix.(topKQuerier); ok {
			return tk.QueryTopK(q, k, eps)
		}
		if h, ok := ix.(hintedIndex); ok {
			ix = h.Index
			continue
		}
		if !ix.Capabilities().Has(CapTopK) {
			return nil, fmt.Errorf("%w: backend %s lacks %s", ErrUnsupported, ix.Name(), CapTopK)
		}
		probs, err := ix.QueryProbs(q, eps)
		if err != nil {
			return nil, err
		}
		return topKSelect(probs, k), nil
	}
}

// topKSelect ranks a π vector and keeps the top k: probability
// descending, index ascending on ties — the deterministic order every
// top-k implementation (brute, sharded merge, fallback) must agree on.
// A min-heap of size k over the candidates keeps selection at
// O(n log k) without mutating the (possibly cached) input slice.
func topKSelect(probs []quantify.Prob, k int) []quantify.Prob {
	if k >= len(probs) {
		out := make([]quantify.Prob, len(probs))
		copy(out, probs)
		sort.Slice(out, func(i, j int) bool { return topKLess(out[j], out[i]) })
		return out
	}
	// heap[0] is the weakest kept candidate (min by ranking order).
	heap := make([]quantify.Prob, 0, k)
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && topKLess(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && topKLess(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !topKLess(heap[i], heap[p]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for _, c := range probs {
		if len(heap) < k {
			heap = append(heap, c)
			up(len(heap) - 1)
			continue
		}
		if topKLess(heap[0], c) {
			heap[0] = c
			down(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return topKLess(heap[j], heap[i]) })
	return heap
}

// topKLess orders candidates weakest-first: smaller probability, then
// larger index (so the ranking is P descending, index ascending).
func topKLess(a, b quantify.Prob) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return a.I > b.I
}
