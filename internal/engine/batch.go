package engine

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unn/internal/geom"
	"unn/internal/quantify"
)

// Options tunes an Engine.
type Options struct {
	// Workers is the batch worker-pool size. Default runtime.NumCPU();
	// 1 forces sequential execution.
	Workers int
	// CacheSize is the capacity (entries) of the striped LRU answer
	// cache; 0 disables caching. The bound is global — entries are never
	// evicted while the cache holds fewer than CacheSize, regardless of
	// how keys distribute over the stripes.
	CacheSize int
	// CacheQuantum is the grid step used to quantize query points into
	// cache keys: queries within the same quantum cell share an answer.
	// Default 0: keys are the exact float bit patterns, so only repeated
	// identical queries hit. A negative value selects the adaptive
	// quantum: the built index's own cell-extent hint (the V≠0 diagram
	// reports a robust minimum of its slab widths, sharded and composite
	// indexes the finest hint of their parts, everything else the
	// dataset's centroid-spacing estimate), so answer sharing tracks the
	// granularity at which the answer actually changes instead of a
	// hand-tuned knob.
	CacheQuantum float64
	// ServeBuffer is the capacity of the answer channel returned by
	// Serve — the backpressure window of the stream. Default 2×Workers.
	ServeBuffer int
	// BatchTile is the tile width of the batch executor: how many queries
	// share one pass over the backend's SoA rows (and one shard-affine
	// schedule) in Batch* calls for tileable kinds. 0 selects the default
	// (8), negative disables tiling (every batch slot runs the scalar
	// single-query path), larger values clamp to 64. Tiling also enables
	// in-batch deduplication: batch queries sharing a cache key (or, with
	// caching off, exact coordinates) compute once.
	BatchTile int
	// AdaptiveReplan enables the continuous adaptive replanning loop
	// (adaptive.go) when the wrapped index is a planner-built sharded
	// fleet: the engine windows its per-kind latency counters into
	// workload profiles, detects drift from the installed plan, and
	// replans each shard with its own observed mix off the query path.
	// nil disables the loop (the plan stays frozen); a pointer to the
	// zero value enables it with defaults. Ignored for indexes the loop
	// cannot steer (unsharded, or sharded without stored planner state).
	AdaptiveReplan *AdaptiveOptions
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Engine executes queries against one built Index: single queries with
// optional LRU answer caching, and batches fanned across a worker pool
// with deterministic (input-order) results. All methods are safe for
// concurrent use.
//
// Returned slices may be shared with the answer cache (and with other
// callers that hit the same cache entry); treat them as read-only.
type Engine struct {
	ix    Index
	opt   Options
	cache *cache
	// quantum is the effective cache quantum (float64 bits; resolved
	// from the hint when adaptive). It is atomic because mutation epochs
	// tighten it concurrently with queries reading it (see
	// maybeTightenQuantum in dynamic.go).
	quantum  atomic.Uint64
	adaptive bool // Options.CacheQuantum was negative: track the hint
	// appender is the backend's allocation-free NN≠0 path (nil when the
	// backend has none); cells its exact cell identity for cache keys
	// (diagram backends). Both are resolved once at construction by
	// unwrapping the quantum-hint wrapper.
	appender nonzeroAppender
	cells    cellIdentifier
	stats    engineStats
	// obsMu guards obs, the delta-window observer behind ObserveInto:
	// each call folds only the samples recorded since the previous one,
	// so repeated calls never re-count.
	obsMu sync.Mutex
	obs   Observer
	// adapt is the adaptive replanning controller (nil unless
	// Options.AdaptiveReplan selected it and the index supports it).
	adapt *adaptivePlanner
}

// cellIdentifier is the optional backend interface behind the
// cell-identity cache keys: a backend whose NN≠0 answer is piecewise
// constant on known cells (the V≠0 diagram) reports the id of the cell
// containing q, and the engine keys the cache by that id instead of the
// quantized point.
type cellIdentifier interface {
	cellID(q geom.Point) (uint64, bool)
}

// engineStats is the per-query-kind latency record: every single query
// (and therefore every batch slot and Serve completion, which funnel
// through the single-query path) adds its wall time to its kind's
// counters, indexed by registry slot. The counters are the measured
// side of the cost model — Stats exposes them and ObserveInto folds
// them back into a CostModel.
type engineStats struct {
	count [numKinds]atomic.Uint64
	ns    [numKinds]atomic.Uint64
	// Batch traffic: every Batch* call counts once (batches) with its
	// slot count (batchQueries); the tiled executor additionally records
	// its schedule's slot capacity and occupied lanes (tileSlots /
	// tileLanes — their ratio is the mean tile occupancy).
	batches      atomic.Uint64
	batchQueries atomic.Uint64
	tileSlots    atomic.Uint64
	tileLanes    atomic.Uint64
}

func (s *engineStats) record(kind Capability, d time.Duration) {
	i := kindSlot(kind)
	if i < 0 {
		return
	}
	s.count[i].Add(1)
	s.ns[i].Add(uint64(d.Nanoseconds()))
}

// countBatch records one Batch* call of n queries.
func (s *engineStats) countBatch(n int) {
	s.batches.Add(1)
	s.batchQueries.Add(uint64(n))
}

// recordBatchKind attributes a tiled batch's wall time to its kind: n
// queries answered in d total, so the per-kind mean stays a per-query
// latency comparable with the scalar path's.
func (s *engineStats) recordBatchKind(kind Capability, n int, d time.Duration) {
	i := kindSlot(kind)
	if i < 0 {
		return
	}
	s.count[i].Add(uint64(n))
	s.ns[i].Add(uint64(d.Nanoseconds()))
}

// recordTiles records one tiled schedule's slot capacity and occupied
// lanes.
func (s *engineStats) recordTiles(slots, lanes int) {
	s.tileSlots.Add(uint64(slots))
	s.tileLanes.Add(uint64(lanes))
}

// KindStats is the latency record of one query kind.
type KindStats struct {
	Count   uint64
	TotalNs uint64
}

// MeanNs returns the mean per-query latency (0 when no queries ran).
func (k KindStats) MeanNs() float64 {
	if k.Count == 0 {
		return 0
	}
	return float64(k.TotalNs) / float64(k.Count)
}

// ShardKindCounts is the per-shard slice of the query counters: how many
// queries of each registered kind (indexed by registry slot, see
// Stats.Kind) actually scanned the shard — merges that prune a shard by
// its lower bound do not count it. The counters are the groundwork for
// workload-aware shard planning (hot shards buying expensive structures
// cold shards skip); they reset when rebalancing replaces the shard.
type ShardKindCounts struct {
	// Shard is the position in the fleet's current shard order.
	Shard int
	// Counts is indexed by registry slot (kindSlot order: the same order
	// Stats.Kinds uses).
	Counts [NumKinds]uint64
}

// Stats is a snapshot of an Engine's counters: per-kind query latencies
// (one slot per registered kind, in registry order — see Kind), cache
// traffic, the effective cache quantum, and — for sharded backends —
// the per-shard per-kind query counters.
type Stats struct {
	Kinds        [NumKinds]KindStats
	CacheHits    uint64
	CacheMisses  uint64
	CacheQuantum float64
	// Batches / BatchQueries count Batch* calls and their total slots
	// (MeanBatchSize is their ratio).
	Batches      uint64
	BatchQueries uint64
	// TileSlots / TileLanes describe the tiled executor's schedules: slot
	// capacity (Σ tile widths) vs occupied lanes. TileOccupancy is their
	// ratio; ragged final tiles and narrow compute sets lower it.
	TileSlots uint64
	TileLanes uint64
	// ShardQueries is nil for unsharded backends.
	ShardQueries []ShardKindCounts
	// ShardTemps is the per-shard EWMA temperature (visits per
	// observation window, summed over kinds) maintained by the adaptive
	// replanning loop — hot shards justify expensive structures, cold
	// shards demote to brute. nil unless the engine runs adaptive.
	ShardTemps []float64
	// Replans counts completed adaptive plan swaps (automatic and
	// manual); LastReplanReason is the drift reason of the most recent
	// one. Zero/empty unless the engine runs adaptive.
	Replans          uint64
	LastReplanReason string
}

// MeanBatchSize returns the mean number of queries per Batch* call
// (0 when no batches were served).
func (s Stats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchQueries) / float64(s.Batches)
}

// TileOccupancy returns the fraction of the tiled executor's scheduled
// lanes that carried a query (0 when no tiles ran).
func (s Stats) TileOccupancy() float64 {
	if s.TileSlots == 0 {
		return 0
	}
	return float64(s.TileLanes) / float64(s.TileSlots)
}

// Kind returns the latency record of one registered query kind (the
// zero record for a value that is not a registered kind).
func (s Stats) Kind(kind Capability) KindStats {
	if i := kindSlot(kind); i >= 0 {
		return s.Kinds[i]
	}
	return KindStats{}
}

// NewEngine wraps a built Index.
func NewEngine(ix Index, opt Options) *Engine {
	opt = opt.withDefaults()
	e := &Engine{ix: ix, opt: opt}
	q := opt.CacheQuantum
	if q < 0 {
		e.adaptive = true
		q = 0
		if h, ok := ix.(quantumHinter); ok {
			if hq := h.QuantumHint(); hq > 0 {
				q = hq
			}
		}
	}
	e.quantum.Store(math.Float64bits(q))
	if opt.CacheSize > 0 {
		e.cache = newCache(opt.CacheSize, q)
	}
	ux := ix
	if h, ok := ux.(hintedIndex); ok {
		ux = h.Index
	}
	if na, ok := ux.(nonzeroAppender); ok {
		e.appender = na
	}
	if ci, ok := ux.(cellIdentifier); ok {
		e.cells = ci
	}
	if opt.AdaptiveReplan != nil {
		if sx, ok := ux.(*ShardedIndex); ok && sx.popt != nil {
			e.adapt = newAdaptivePlanner(e, sx, *opt.AdaptiveReplan)
		}
	}
	return e
}

// Index returns the wrapped backend.
func (e *Engine) Index() Index { return e.ix }

// Backend returns the wrapped backend's name.
func (e *Engine) Backend() Backend { return Backend(e.ix.Name()) }

// Capabilities returns the wrapped backend's capability set.
func (e *Engine) Capabilities() Capability { return e.ix.Capabilities() }

// Workers returns the effective worker-pool size.
func (e *Engine) Workers() int { return e.opt.Workers }

// CacheStats returns (hits, misses) since construction; zeros when the
// cache is disabled.
func (e *Engine) CacheStats() (hits, misses uint64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

// CacheQuantum returns the effective cache quantum: the configured
// knob, or the resolved adaptive hint when Options.CacheQuantum was
// negative — which mutation epochs may tighten as the dataset
// densifies (see maybeTightenQuantum).
func (e *Engine) CacheQuantum() float64 { return math.Float64frombits(e.quantum.Load()) }

// Stats snapshots the engine's per-query-kind latency counters and
// cache traffic. Latencies include cache hits — they are the serving
// latencies a client observes, which is exactly what the planner's cost
// model wants to track.
func (e *Engine) Stats() Stats {
	s := Stats{CacheQuantum: e.CacheQuantum()}
	for i := range s.Kinds {
		s.Kinds[i] = KindStats{Count: e.stats.count[i].Load(), TotalNs: e.stats.ns[i].Load()}
	}
	s.CacheHits, s.CacheMisses = e.CacheStats()
	s.Batches = e.stats.batches.Load()
	s.BatchQueries = e.stats.batchQueries.Load()
	s.TileSlots = e.stats.tileSlots.Load()
	s.TileLanes = e.stats.tileLanes.Load()
	ix := e.ix
	if h, ok := ix.(hintedIndex); ok {
		ix = h.Index
	}
	if sq, ok := ix.(interface{ shardQueryStats() []ShardKindCounts }); ok {
		s.ShardQueries = sq.shardQueryStats()
	}
	if e.adapt != nil {
		s.ShardTemps = e.adapt.shardTemps()
		s.Replans, s.LastReplanReason = e.adapt.replanStats()
	}
	return s
}

// ObserveInto folds the measured per-kind latencies back into a cost
// model — the feedback loop from serving traffic to planning. Each call
// consumes one delta window (cost.Observer): only the samples recorded
// since the previous call contribute, so calling it on a schedule never
// folds the same cumulative counters in twice. The backend attributed
// per kind is read from the wrapped index (composite indexes report
// their per-kind part); kinds with no new queries, or whose serving
// backend is not a plain named backend (e.g. a sharded fleet), are
// skipped.
func (e *Engine) ObserveInto(model *CostModel) {
	n := 0
	if l, ok := e.ix.(interface{ Len() int }); ok {
		n = l.Len()
	}
	if n <= 0 {
		return
	}
	st := e.Stats()
	e.obsMu.Lock()
	win := e.obs.Window(st.Kinds)
	e.obsMu.Unlock()
	for i := range kindTable {
		ks := win[i]
		if ks.Count == 0 {
			continue
		}
		b, ok := e.kindBackend(kindTable[i].cap)
		if !ok {
			continue
		}
		model.Observe(b, kindTable[i].op, n, ks.MeanNs())
	}
}

// kindBackend resolves which named backend serves kind: composites
// (planned, routed) report their part, plain adapters their own name.
func (e *Engine) kindBackend(kind Capability) (Backend, bool) {
	ix := e.ix
	if h, ok := ix.(hintedIndex); ok {
		ix = h.Index
	}
	if kb, ok := ix.(interface {
		kindBackend(Capability) (Backend, bool)
	}); ok {
		return kb.kindBackend(kind)
	}
	name := Backend(ix.Name())
	for _, b := range Backends() {
		if b == name {
			return b, ix.Capabilities().Has(kind)
		}
	}
	return "", false
}

// Explain describes how this engine answers each query kind: the
// planner's decision (with cost estimates) for planned indexes, the
// routing rule for composites, shard assignments for sharded fleets, and
// a capability summary for plain backends. Engines running the adaptive
// replanning loop append its state (window, replan count, last reason,
// shard temperatures).
func (e *Engine) Explain() string {
	return e.explainIndex() + e.explainAdaptive()
}

func (e *Engine) explainIndex() string {
	if ex, ok := e.ix.(interface{ Explain() string }); ok {
		return ex.Explain()
	}
	ix := e.ix
	if h, ok := ix.(hintedIndex); ok {
		if ex, ok := h.Index.(interface{ Explain() string }); ok {
			return ex.Explain()
		}
		ix = h.Index
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "backend %s: all kinds served directly\n", ix.Name())
	for _, kind := range queryKinds() {
		if ix.Capabilities().Has(kind) {
			fmt.Fprintf(&sb, "  %-8s → %s\n", kind, ix.Name())
		}
	}
	return sb.String()
}

func (e *Engine) explainAdaptive() string {
	if e.adapt == nil {
		return ""
	}
	return e.adapt.explain()
}

// check returns ErrUnsupported early so callers get a uniform
// capability error even for backends whose support depends on the
// dataset.
func (e *Engine) check(c Capability) error {
	if !e.ix.Capabilities().Has(c) {
		return fmt.Errorf("%w: backend %s lacks %s", ErrUnsupported, e.ix.Name(), c)
	}
	return nil
}

// nonzeroKey builds the cache key of an NN≠0 answer: the exact cell
// identity when the backend locates one (two same-cell queries share an
// entry, two across a cell boundary never can), else the quantized
// query point.
func (e *Engine) nonzeroKey(q geom.Point) cacheKey {
	if e.cells != nil {
		if id, ok := e.cells.cellID(q); ok {
			return cacheKey{kind: kindNonzeroCell, x: id}
		}
	}
	return e.cache.key(kindNonzero, q, 0, 0)
}

// requestKey builds the cache key of a registered-kind request through
// the one shared builder, canonicalizing the knobs the kind ignores to
// zero. NN≠0 keeps its cell-identity upgrade (see nonzeroKey).
func (e *Engine) requestKey(spec *kindSpec, req Request) cacheKey {
	if spec.cap == CapNonzero {
		return e.nonzeroKey(req.Q)
	}
	eps, k := 0.0, 0
	if spec.usesEps {
		eps = req.Eps
	}
	if spec.usesK {
		k = req.K
	}
	return e.cache.key(spec.cacheKind, req.Q, eps, k)
}

// Query is the unified typed entry point: it dispatches req to its
// registered kind through the cache and the per-kind latency counters.
// The typed wrappers (QueryNonzero, QueryProbs, QueryExpected,
// QueryTopK) all funnel through here, so every registered kind gets the
// same caching, stats and capability-check behavior for free.
func (e *Engine) Query(req Request) (Result, error) {
	spec := kindByCap(req.Kind)
	if spec == nil {
		return Result{}, fmt.Errorf("engine: request kind %s is not a registered query kind", req.Kind)
	}
	res := Result{Kind: req.Kind}
	v, err := e.queryValue(spec, req)
	if err != nil {
		return Result{}, err
	}
	spec.fill(&res, v)
	return res, nil
}

// queryValue is the shared body of Query and the typed wrappers: the
// capability check, the latency counter, the canonical cache probe, and
// the kind's run hook. It returns the answer in its boxed (cacheable)
// form so the typed wrappers can assert it back directly instead of
// routing through a Result — that keeps their hot path at cache-layer
// alloc parity with the pre-registry per-kind methods.
func (e *Engine) queryValue(spec *kindSpec, req Request) (any, error) {
	if err := e.check(spec.cap); err != nil {
		return nil, err
	}
	defer func(t0 time.Time) { e.stats.record(spec.cap, time.Since(t0)); e.noteQueries(1) }(time.Now())
	var gen uint64
	var key cacheKey
	if e.cache != nil {
		gen = e.cache.generation()
		key = e.requestKey(spec, req)
		if v, ok := e.cache.getKey(key); ok {
			return v, nil
		}
	}
	v, err := spec.run(e.ix, req)
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		e.cache.putKey(key, v, gen)
	}
	return v, nil
}

// QueryNonzero answers a single NN≠0 query through the cache.
func (e *Engine) QueryNonzero(q geom.Point) ([]int, error) {
	v, err := e.queryValue(&kindTable[slotNonzero], Request{Kind: CapNonzero, Q: q})
	if err != nil {
		return nil, err
	}
	return v.([]int), nil
}

// QueryNonzeroInto answers a single NN≠0 query by appending into dst —
// the zero-allocation entry point: with caching disabled and a backend
// that implements the appending contract (brute, the two-stage family,
// and the sharded planner over them), a steady-state query performs no
// heap allocation beyond growing dst once to its high-water mark. Cache
// hits append the shared entry (the entry itself stays read-only);
// misses are answered into dst directly and are NOT installed in the
// cache — the cache stores owned slices, and taking ownership would
// force a copy per miss, defeating the point of the Into path. Callers
// mixing caching with Into should expect only hit-path sharing.
func (e *Engine) QueryNonzeroInto(q geom.Point, dst []int) ([]int, error) {
	if err := e.check(CapNonzero); err != nil {
		return dst, err
	}
	defer func(t0 time.Time) { e.stats.record(CapNonzero, time.Since(t0)); e.noteQueries(1) }(time.Now())
	if e.cache != nil {
		if v, ok := e.cache.getKey(e.nonzeroKey(q)); ok {
			return append(dst, v.([]int)...), nil
		}
	}
	if e.appender != nil {
		return e.appender.appendNonzero(q, dst)
	}
	out, err := e.ix.QueryNonzero(q)
	if err != nil {
		return dst, err
	}
	return append(dst, out...), nil
}

// QueryProbs answers a single quantification query through the cache.
// eps ≤ 0 selects the backend's build-time default.
func (e *Engine) QueryProbs(q geom.Point, eps float64) ([]quantify.Prob, error) {
	v, err := e.queryValue(&kindTable[slotProbs], Request{Kind: CapProbs, Q: q, Eps: eps})
	if err != nil {
		return nil, err
	}
	return v.([]quantify.Prob), nil
}

// QueryExpected answers a single expected-distance NN query through the
// cache.
func (e *Engine) QueryExpected(q geom.Point) (int, float64, error) {
	v, err := e.queryValue(&kindTable[slotExpected], Request{Kind: CapExpected, Q: q})
	if err != nil {
		return -1, 0, err
	}
	ans := v.(expectedAnswer)
	return ans.i, ans.d, nil
}

// QueryTopK answers a single top-k most-likely-NN query through the
// cache: the k indices with the largest π_i(q), ranked by probability
// descending with index-ascending tie-break (fewer than k entries when
// fewer points have π > 0). eps ≤ 0 selects the backend's build-time
// default for the underlying π computation.
func (e *Engine) QueryTopK(q geom.Point, k int, eps float64) ([]quantify.Prob, error) {
	v, err := e.queryValue(&kindTable[slotTopK], Request{Kind: CapTopK, Q: q, Eps: eps, K: k})
	if err != nil {
		return nil, err
	}
	return v.([]quantify.Prob), nil
}

type expectedAnswer struct {
	i int
	d float64
}

// batch fans qs across the worker pool and collects results in input
// order. Each worker writes only its own slots, so the output is
// deterministic regardless of scheduling — including the error: the
// reported failure is always the lowest failing input index, matching
// the sequential path. (Feeding stops once any error is recorded, but
// indices are fed in order, so every index below a failing fed index
// has also been fed and evaluated; the recorded minimum is therefore
// the global minimum failing index, whatever the scheduling.)
func batch[T any](workers int, qs []geom.Point, fn func(geom.Point) (T, error)) ([]T, error) {
	out := make([]T, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			v, err := fn(q)
			if err != nil {
				return nil, fmt.Errorf("engine: batch query %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		wg     sync.WaitGroup
		next   = make(chan int)
		mu     sync.Mutex
		errIdx = -1
		errVal error
		failed atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := fn(qs[i])
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					mu.Unlock()
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := range qs {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if errIdx >= 0 {
		return nil, fmt.Errorf("engine: batch query %d: %w", errIdx, errVal)
	}
	return out, nil
}

// BatchNonzero answers a slice of NN≠0 queries; result i corresponds
// to qs[i] and is identical to QueryNonzero(qs[i]). With tiling enabled
// (Options.BatchTile ≥ 0, the default) the batch runs through the tiled
// executor: duplicate queries compute once, tileable backends scan
// their rows once per tile of queries, and everything else falls back
// to the scalar per-query path — answers are bit-identical either way.
func (e *Engine) BatchNonzero(qs []geom.Point) ([][]int, error) {
	if err := e.check(CapNonzero); err != nil {
		return nil, err
	}
	e.stats.countBatch(len(qs))
	if e.tileSize() > 0 && len(qs) > 0 {
		out, err := e.batchNonzeroTiled(qs, make([][]int, len(qs)), true)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return batch(e.opt.Workers, qs, func(q geom.Point) ([]int, error) {
		return e.QueryNonzero(q)
	})
}

// BatchNonzeroInto answers a slice of NN≠0 queries reusing dst's slots
// — the batch analogue of QueryNonzeroInto: dst must have len(qs)
// slots, slot i is truncated and reused for qs[i]'s answer, and in
// steady state (warmed slots, tiling enabled, tileable backend) the
// call performs no heap allocation. Like QueryNonzeroInto, computed
// answers are not installed in the cache (hits are still served).
func (e *Engine) BatchNonzeroInto(qs []geom.Point, dst [][]int) ([][]int, error) {
	if err := e.check(CapNonzero); err != nil {
		return dst, err
	}
	e.stats.countBatch(len(qs))
	if len(qs) == 0 {
		return dst, nil
	}
	if len(dst) < len(qs) {
		dst = append(dst, make([][]int, len(qs)-len(dst))...)
	}
	if e.tileSize() > 0 {
		return e.batchNonzeroTiled(qs, dst[:len(qs)], false)
	}
	fi, err := runIndexed(e.opt.Workers, len(qs), func(i int) error {
		slot, err := e.QueryNonzeroInto(qs[i], dst[i][:0])
		dst[i] = slot
		return err
	})
	if err != nil {
		return dst, fmt.Errorf("engine: batch query %d: %w", fi, err)
	}
	return dst, nil
}

// BatchProbs answers a slice of quantification queries in parallel;
// result i corresponds to qs[i] and is identical to
// QueryProbs(qs[i], eps).
func (e *Engine) BatchProbs(qs []geom.Point, eps float64) ([][]quantify.Prob, error) {
	if err := e.check(CapProbs); err != nil {
		return nil, err
	}
	e.stats.countBatch(len(qs))
	return batch(e.opt.Workers, qs, func(q geom.Point) ([]quantify.Prob, error) {
		return e.QueryProbs(q, eps)
	})
}

// BatchExpected answers a slice of expected-distance NN queries in
// parallel; result i corresponds to qs[i] and is identical to
// QueryExpected(qs[i]).
func (e *Engine) BatchExpected(qs []geom.Point) ([]ExpectedResult, error) {
	if err := e.check(CapExpected); err != nil {
		return nil, err
	}
	e.stats.countBatch(len(qs))
	if e.tileSize() > 0 && len(qs) > 0 {
		if out, ok, err := e.batchExpectedTiled(qs); ok {
			if err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	return batch(e.opt.Workers, qs, func(q geom.Point) (ExpectedResult, error) {
		i, d, err := e.QueryExpected(q)
		return ExpectedResult{I: i, Dist: d}, err
	})
}

// BatchTopK answers a slice of top-k most-likely-NN queries in
// parallel; result i corresponds to qs[i] and is identical to
// QueryTopK(qs[i], k, eps).
func (e *Engine) BatchTopK(qs []geom.Point, k int, eps float64) ([][]quantify.Prob, error) {
	if err := e.check(CapTopK); err != nil {
		return nil, err
	}
	e.stats.countBatch(len(qs))
	return batch(e.opt.Workers, qs, func(q geom.Point) ([]quantify.Prob, error) {
		return e.QueryTopK(q, k, eps)
	})
}

// ExpectedResult is one expected-distance batch answer.
type ExpectedResult struct {
	I    int     // index of the expected-distance NN
	Dist float64 // its expected distance
}
