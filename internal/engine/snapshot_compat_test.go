package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unn/internal/geom"
)

// The golden mirror of testdata/gen_fixtures.go: the Explain output and
// spot answers recorded when the fixture snapshot was written.
type compatGolden struct {
	Explain      string
	CacheQuantum float64
	Capabilities string
	Queries      []compatQuery
}

type compatQuery struct {
	X, Y    float64
	Nonzero []int
	Probs   []struct {
		I int
		P float64
	}
	Expected *struct {
		I int
		D float64
	}
}

// TestSnapshotCompatV1 restores the checked-in version-1 fixtures with
// the current (version-2) reader and asserts the restored engines still
// report the recorded Explain, capabilities, cache quantum and answers
// — the guarantee that bumping the format version keeps old files
// readable, and that a v1 plan (no top-k entries) restores to exactly
// the engine its writer meant: the three original kinds, nothing more.
func TestSnapshotCompatV1(t *testing.T) {
	for _, name := range []string{"engine_v1_sharded_planned", "engine_v1_plain_kd"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", name+".snap"))
			if err != nil {
				t.Fatal(err)
			}
			gb, err := os.ReadFile(filepath.Join("testdata", name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			var want compatGolden
			if err := json.Unmarshal(gb, &want); err != nil {
				t.Fatal(err)
			}
			eng, err := ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("reading v1 snapshot: %v", err)
			}
			if got := eng.Explain(); got != want.Explain {
				t.Errorf("Explain diverged:\n--- golden ---\n%s--- restored ---\n%s", want.Explain, got)
			}
			if got := eng.Capabilities().String(); got != want.Capabilities {
				t.Errorf("capabilities = %s, want %s", got, want.Capabilities)
			}
			if got := eng.CacheQuantum(); got != want.CacheQuantum {
				t.Errorf("cache quantum = %v, want %v", got, want.CacheQuantum)
			}
			for _, wq := range want.Queries {
				q := geom.Pt(wq.X, wq.Y)
				nz, err := eng.QueryNonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(nz, wq.Nonzero) {
					t.Errorf("q=%v nonzero = %v, want %v", q, nz, wq.Nonzero)
				}
				if wq.Probs != nil {
					ps, err := eng.QueryProbs(q, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(ps) != len(wq.Probs) {
						t.Fatalf("q=%v probs %v, want %v", q, ps, wq.Probs)
					}
					for i, p := range ps {
						if p.I != wq.Probs[i].I || p.P != wq.Probs[i].P {
							t.Errorf("q=%v probs[%d] = %+v, want %+v", q, i, p, wq.Probs[i])
						}
					}
				}
				if wq.Expected != nil {
					gi, gd, err := eng.QueryExpected(q)
					if err != nil {
						t.Fatal(err)
					}
					if gi != wq.Expected.I || gd != wq.Expected.D {
						t.Errorf("q=%v expected = (%d, %v), want (%d, %v)", q, gi, gd, wq.Expected.I, wq.Expected.D)
					}
				}
			}

			// A v1 plan carries no top-k entry; the restored planned fleet
			// must not invent the capability (the writer's engine did not
			// have it registered).
			if name == "engine_v1_sharded_planned" && eng.Capabilities().Has(CapTopK) {
				t.Error("restored v1 planned engine gained CapTopK")
			}

			// Re-snapshotting writes the current version, and the rewritten
			// file restores to the same engine again.
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, eng); err != nil {
				t.Fatal(err)
			}
			eng2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-reading v2 rewrite: %v", err)
			}
			if got, wantE := eng2.Explain(), eng.Explain(); got != wantE {
				t.Errorf("v2 rewrite Explain diverged:\n--- v1 restore ---\n%s--- v2 restore ---\n%s", wantE, got)
			}
			if eng2.Capabilities() != eng.Capabilities() {
				t.Errorf("v2 rewrite capabilities = %v, want %v", eng2.Capabilities(), eng.Capabilities())
			}
		})
	}
}

// TestSnapshotVersionBounds pins the reader's version window: below
// MinVersion and above Version are rejected with the range in the
// error, and the checked-in v1 fixture really is version 1 on disk.
func TestSnapshotVersionBounds(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "engine_v1_plain_kd.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if v := uint16(raw[4]) | uint16(raw[5])<<8; v != 1 {
		t.Fatalf("fixture header version = %d, want 1", v)
	}
	for _, v := range []uint16{0, 3, math.MaxUint16} {
		bad := append([]byte(nil), raw...)
		bad[4], bad[5] = byte(v), byte(v>>8)
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatalf("version %d accepted", v)
		}
	}
}
