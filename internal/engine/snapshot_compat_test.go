package engine

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unn/internal/geom"
	"unn/internal/snapshot"
)

// The golden mirror of testdata/gen_fixtures.go: the Explain output and
// spot answers recorded when the fixture snapshot was written.
type compatGolden struct {
	Explain      string
	CacheQuantum float64
	Capabilities string
	Queries      []compatQuery
}

type compatQuery struct {
	X, Y    float64
	Nonzero []int
	Probs   []struct {
		I int
		P float64
	}
	Expected *struct {
		I int
		D float64
	}
}

// TestSnapshotCompat restores the checked-in version-1 and version-2
// fixtures with the current (version-3) reader and asserts the restored
// engines still report the recorded Explain, capabilities, cache
// quantum and answers — the guarantee that bumping the format version
// keeps old files readable: a v1 plan (no top-k entries) restores to
// exactly the engine its writer meant (the three original kinds,
// nothing more), and a v2 file (no adaptive state) restores with cold
// shard temperatures and the replanning loop disabled.
func TestSnapshotCompat(t *testing.T) {
	for _, name := range []string{
		"engine_v1_sharded_planned", "engine_v1_plain_kd",
		"engine_v2_sharded_planned", "engine_v2_plain_kd",
	} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", name+".snap"))
			if err != nil {
				t.Fatal(err)
			}
			gb, err := os.ReadFile(filepath.Join("testdata", name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			var want compatGolden
			if err := json.Unmarshal(gb, &want); err != nil {
				t.Fatal(err)
			}
			eng, err := ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("reading fixture snapshot: %v", err)
			}
			if got := eng.Explain(); got != want.Explain {
				t.Errorf("Explain diverged:\n--- golden ---\n%s--- restored ---\n%s", want.Explain, got)
			}
			if got := eng.Capabilities().String(); got != want.Capabilities {
				t.Errorf("capabilities = %s, want %s", got, want.Capabilities)
			}
			if got := eng.CacheQuantum(); got != want.CacheQuantum {
				t.Errorf("cache quantum = %v, want %v", got, want.CacheQuantum)
			}
			for _, wq := range want.Queries {
				q := geom.Pt(wq.X, wq.Y)
				nz, err := eng.QueryNonzero(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(nz, wq.Nonzero) {
					t.Errorf("q=%v nonzero = %v, want %v", q, nz, wq.Nonzero)
				}
				if wq.Probs != nil {
					ps, err := eng.QueryProbs(q, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(ps) != len(wq.Probs) {
						t.Fatalf("q=%v probs %v, want %v", q, ps, wq.Probs)
					}
					for i, p := range ps {
						if p.I != wq.Probs[i].I || p.P != wq.Probs[i].P {
							t.Errorf("q=%v probs[%d] = %+v, want %+v", q, i, p, wq.Probs[i])
						}
					}
				}
				if wq.Expected != nil {
					gi, gd, err := eng.QueryExpected(q)
					if err != nil {
						t.Fatal(err)
					}
					if gi != wq.Expected.I || gd != wq.Expected.D {
						t.Errorf("q=%v expected = (%d, %v), want (%d, %v)", q, gi, gd, wq.Expected.I, wq.Expected.D)
					}
				}
			}

			// A v1 plan carries no top-k entry; the restored planned fleet
			// must not invent the capability (the writer's engine did not
			// have it registered).
			if name == "engine_v1_sharded_planned" && eng.Capabilities().Has(CapTopK) {
				t.Error("restored v1 planned engine gained CapTopK")
			}

			// Pre-v3 files carry no adaptive state: the restored engine
			// must report cold temperatures and no replan history, with the
			// loop disabled.
			st := eng.Stats()
			if st.ShardTemps != nil {
				t.Errorf("restored pre-v3 engine has shard temps %v", st.ShardTemps)
			}
			if st.Replans != 0 || st.LastReplanReason != "" {
				t.Errorf("restored pre-v3 engine has replan history (%d, %q)", st.Replans, st.LastReplanReason)
			}
			if _, err := eng.Replan(); err == nil {
				t.Error("restored pre-v3 engine accepted Replan (loop should be disabled)")
			}

			// Re-snapshotting writes the current version, and the rewritten
			// file restores to the same engine again.
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, eng); err != nil {
				t.Fatal(err)
			}
			eng2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-reading current-version rewrite: %v", err)
			}
			if got, wantE := eng2.Explain(), eng.Explain(); got != wantE {
				t.Errorf("rewrite Explain diverged:\n--- fixture restore ---\n%s--- rewrite restore ---\n%s", wantE, got)
			}
			if eng2.Capabilities() != eng.Capabilities() {
				t.Errorf("rewrite capabilities = %v, want %v", eng2.Capabilities(), eng.Capabilities())
			}
		})
	}
}

// TestSnapshotVersionBounds pins the reader's version window: below
// MinVersion and above Version are rejected with the range in the
// error, and the checked-in fixtures really carry their frozen versions
// on disk.
func TestSnapshotVersionBounds(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "engine_v1_plain_kd.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if v := uint16(raw[4]) | uint16(raw[5])<<8; v != 1 {
		t.Fatalf("v1 fixture header version = %d, want 1", v)
	}
	raw2, err := os.ReadFile(filepath.Join("testdata", "engine_v2_plain_kd.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if v := uint16(raw2[4]) | uint16(raw2[5])<<8; v != 2 {
		t.Fatalf("v2 fixture header version = %d, want 2", v)
	}
	for _, v := range []uint16{0, snapshot.Version + 1, math.MaxUint16} {
		bad := append([]byte(nil), raw...)
		bad[4], bad[5] = byte(v), byte(v>>8)
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatalf("version %d accepted", v)
		}
	}
}
