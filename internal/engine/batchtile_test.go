package engine

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"unn/internal/constructions"
	"unn/internal/geom"
)

// tileParityIndex builds one backend/shard-count case for the tiled
// batch parity tests.
func tileParityIndex(t *testing.T, backend Backend, ds *Dataset, shards int) Index {
	t.Helper()
	var ix Index
	var err error
	if shards == 0 {
		ix, err = Build(backend, ds, BuildOptions{})
	} else {
		ix, err = BuildSharded(backend, ds, BuildOptions{}, ShardOptions{Shards: shards})
	}
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestBatchTileParity is the tiled executor's contract: for every
// backend family (tileable or fallback), shard count, worker count and
// tile width, BatchNonzero through the tiled path is bit-identical to
// the scalar batch, BatchExpected matches exactly, and BatchProbs stays
// within 1e-12 — including batches with duplicate queries, whose
// answers must equal their singleton counterparts.
func TestBatchTileParity(t *testing.T) {
	rng := rand.New(rand.NewSource(0x71e5))
	discrete := FromDiscrete(constructions.RandomDiscrete(rng, 60, 3, 40, 1.0, 1))
	disks := FromDisks(constructions.RandomDisks(rng, 60, 40, 0.5, 2.0))
	squares := FromSquares(randSquares(rng, 60, 40))
	cases := []struct {
		name    string
		backend Backend
		ds      *Dataset
		shards  int
	}{
		{"brute/discrete/mono", BackendBrute, discrete, 0},
		{"brute/disks/mono", BackendBrute, disks, 0},
		{"brute/discrete/k1", BackendBrute, discrete, 1},
		{"brute/discrete/k4", BackendBrute, discrete, 4},
		{"brute/discrete/k8", BackendBrute, discrete, 8},
		{"brute/disks/k4", BackendBrute, disks, 4},
		{"twostage-discrete/k4", BackendTwoStageDiscrete, discrete, 4},
		{"twostage-linf/k4", BackendTwoStageLinf, squares, 4},
		{"diagram/mono", BackendDiagram, disks, 0}, // no flat mirror: fallback path
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ix := tileParityIndex(t, tc.backend, tc.ds, tc.shards)
			qrng := rand.New(rand.NewSource(0x9a17))
			qs := randQueries(qrng, 53, 40) // odd count: ragged final tiles
			// Splice in duplicates so the dedup phase is always exercised.
			qs[7], qs[31], qs[50] = qs[3], qs[3], qs[12]
			scalar := NewEngine(ix, Options{Workers: 1, BatchTile: -1})
			want, err := scalar.BatchNonzero(qs)
			if err != nil {
				t.Fatal(err)
			}
			caps := ix.Capabilities()
			var wantExp []ExpectedResult
			if caps.Has(CapExpected) {
				if wantExp, err = scalar.BatchExpected(qs); err != nil {
					t.Fatal(err)
				}
			}
			for _, tile := range []int{1, 7, 16} {
				for _, workers := range []int{1, 4} {
					eng := NewEngine(ix, Options{Workers: workers, BatchTile: tile})
					got, err := eng.BatchNonzero(qs)
					if err != nil {
						t.Fatal(err)
					}
					for i := range qs {
						if !eqIDs(want[i], got[i]) {
							t.Fatalf("tile=%d workers=%d q[%d]=%v: nonzero %v, want %v",
								tile, workers, i, qs[i], got[i], want[i])
						}
					}
					if caps.Has(CapExpected) {
						gotExp, err := eng.BatchExpected(qs)
						if err != nil {
							t.Fatal(err)
						}
						for i := range qs {
							if gotExp[i] != wantExp[i] {
								t.Fatalf("tile=%d workers=%d q[%d]: expected %+v, want %+v",
									tile, workers, i, gotExp[i], wantExp[i])
							}
						}
					}
				}
			}
			if caps.Has(CapProbs) {
				wantP, err := scalar.BatchProbs(qs[:8], 0)
				if err != nil {
					t.Fatal(err)
				}
				gotP, err := NewEngine(ix, Options{Workers: 1, BatchTile: 16}).BatchProbs(qs[:8], 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantP {
					if len(wantP[i]) != len(gotP[i]) {
						t.Fatalf("probs q[%d]: %d entries, want %d", i, len(gotP[i]), len(wantP[i]))
					}
					for j := range wantP[i] {
						if gotP[i][j].I != wantP[i][j].I || math.Abs(gotP[i][j].P-wantP[i][j].P) > 1e-12 {
							t.Fatalf("probs q[%d][%d]: %+v, want %+v", i, j, gotP[i][j], wantP[i][j])
						}
					}
				}
			}
		})
	}
}

// TestBatchNonzeroIntoReuse: the allocation-aware batch entry point
// reuses its destination slots across calls and still matches the
// allocating path.
func TestBatchNonzeroIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1470))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 48, 3, 30, 1.0, 1))
	ix := tileParityIndex(t, BackendBrute, ds, 4)
	eng := NewEngine(ix, Options{Workers: 1})
	qs := randQueries(rng, 33, 30)
	want, err := eng.BatchNonzero(qs)
	if err != nil {
		t.Fatal(err)
	}
	var dst [][]int
	for round := 0; round < 3; round++ {
		dst, err = eng.BatchNonzeroInto(qs, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if !eqIDs(want[i], dst[i]) {
				t.Fatalf("round %d q[%d]: %v, want %v", round, i, dst[i], want[i])
			}
		}
	}
}

// shardVisitTotal sums the per-shard NN≠0 visit counters.
func shardVisitTotal(e *Engine) uint64 {
	total := uint64(0)
	for _, sk := range e.Stats().ShardQueries {
		total += sk.Counts[slotNonzero]
	}
	return total
}

// TestBatchDedupSingleflight is the in-batch singleflight regression:
// duplicate queries in one batch compute once. With caching off the
// dedup keys are exact coordinates — a batch of 64 copies costs exactly
// the shard visits of one query; with caching on, same-cache-cell
// queries collapse to a single miss.
func TestBatchDedupSingleflight(t *testing.T) {
	rng := rand.New(rand.NewSource(0xded0))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 60, 3, 40, 1.0, 1))
	ix := tileParityIndex(t, BackendBrute, ds, 4)
	eng := NewEngine(ix, Options{Workers: 1})
	q := geom.Pt(11, 23)

	before := shardVisitTotal(eng)
	if _, err := eng.QueryNonzero(q); err != nil {
		t.Fatal(err)
	}
	perQuery := shardVisitTotal(eng) - before

	dupes := make([]geom.Point, 64)
	for i := range dupes {
		dupes[i] = q
	}
	before = shardVisitTotal(eng)
	res, err := eng.BatchNonzero(dupes)
	if err != nil {
		t.Fatal(err)
	}
	if got := shardVisitTotal(eng) - before; got != perQuery {
		t.Fatalf("64-duplicate batch cost %d shard visits, want %d (one computation)", got, perQuery)
	}
	for i := 1; i < len(res); i++ {
		if !slices.Equal(res[i], res[0]) {
			t.Fatalf("duplicate %d diverged: %v vs %v", i, res[i], res[0])
		}
	}

	// With a quantized cache, queries sharing a cell are one miss.
	cached := NewEngine(ix, Options{Workers: 1, CacheSize: 256, CacheQuantum: 1.0})
	cell := make([]geom.Point, 16)
	for i := range cell {
		cell[i] = geom.Pt(5.1+float64(i)*1e-3, 7.2) // all inside one 1.0-quantum cell
	}
	if _, err := cached.BatchNonzero(cell); err != nil {
		t.Fatal(err)
	}
	if _, misses := cached.CacheStats(); misses != 1 {
		t.Fatalf("same-cell batch recorded %d cache misses, want 1", misses)
	}
}

// TestBatchStatsCounters: the batch counters surface through Stats —
// batches served, mean batch size, and a sane tile occupancy.
func TestBatchStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(0x57a7))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 48, 3, 30, 1.0, 1))
	ix := tileParityIndex(t, BackendBrute, ds, 4)
	eng := NewEngine(ix, Options{Workers: 1, BatchTile: 8})
	qs := randQueries(rng, 13, 30)
	if _, err := eng.BatchNonzero(qs[:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BatchNonzero(qs[5:]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Batches != 2 || st.BatchQueries != 13 {
		t.Fatalf("batches=%d queries=%d, want 2/13", st.Batches, st.BatchQueries)
	}
	if got := st.MeanBatchSize(); got != 6.5 {
		t.Fatalf("MeanBatchSize = %v, want 6.5", got)
	}
	if st.TileSlots == 0 || st.TileLanes == 0 {
		t.Fatalf("tile counters empty: slots=%d lanes=%d", st.TileSlots, st.TileLanes)
	}
	if occ := st.TileOccupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("TileOccupancy = %v, want (0, 1]", occ)
	}
	// The scalar batch path still counts the batch, without tiles.
	scalar := NewEngine(ix, Options{Workers: 1, BatchTile: -1})
	if _, err := scalar.BatchNonzero(qs); err != nil {
		t.Fatal(err)
	}
	if st := scalar.Stats(); st.Batches != 1 || st.TileSlots != 0 {
		t.Fatalf("scalar path: batches=%d tileSlots=%d, want 1/0", st.Batches, st.TileSlots)
	}
}

// TestServeCoalescesQueries mirrors the mutation-coalescing test for
// queries: a backlog of same-kind queries on the stream is served as
// one batch through the tiled executor (visible in Stats.Batches), and
// every Answer still matches its single-query counterpart by Seq.
func TestServeCoalescesQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5e12))
	ds := FromDiscrete(constructions.RandomDiscrete(rng, 48, 3, 30, 1.0, 1))
	ix := tileParityIndex(t, BackendBrute, ds, 4)
	eng := NewEngine(ix, Options{Workers: 1})
	qs := randQueries(rng, 24, 30)

	in := make(chan Query, len(qs))
	for i, q := range qs {
		in <- Query{Seq: uint64(i), Kind: CapNonzero, Q: q}
	}
	close(in)
	got := make([][]int, len(qs))
	for a := range eng.Serve(t.Context(), in) {
		if a.Err != nil {
			t.Fatalf("seq %d: %v", a.Seq, a.Err)
		}
		got[a.Seq] = a.Nonzero
	}
	for i, q := range qs {
		want, err := eng.QueryNonzero(q)
		if err != nil {
			t.Fatal(err)
		}
		if !eqIDs(want, got[i]) {
			t.Fatalf("seq %d q=%v: %v, want %v", i, q, got[i], want)
		}
	}
	if st := eng.Stats(); st.Batches == 0 {
		t.Fatalf("prefilled stream served no coalesced batches (batches=%d)", st.Batches)
	}
}
