package arrgn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"unn/internal/geom"
)

const tol = 1e-9

func TestBuildCross(t *testing.T) {
	segs := []InSeg{
		{S: geom.Seg(geom.Pt(-1, 0), geom.Pt(1, 0)), Curve: 0},
		{S: geom.Seg(geom.Pt(0, -1), geom.Pt(0, 1)), Curve: 1},
	}
	a := Build(segs, tol)
	st := a.Stats()
	if st.V != 5 || st.E != 4 {
		t.Fatalf("stats %+v want V=5 E=4", st)
	}
	if st.C != 1 {
		t.Fatalf("components %d", st.C)
	}
	if st.F != 1 { // a plus sign encloses nothing: only the outer face
		t.Fatalf("faces %d", st.F)
	}
}

func TestBuildTriangleFaces(t *testing.T) {
	// Three segments forming a triangle: V=3, E=3, F=2 (inside + outside).
	segs := []InSeg{
		{S: geom.Seg(geom.Pt(0, 0), geom.Pt(4, 0)), Curve: 0},
		{S: geom.Seg(geom.Pt(4, 0), geom.Pt(2, 3)), Curve: 0},
		{S: geom.Seg(geom.Pt(2, 3), geom.Pt(0, 0)), Curve: 0},
	}
	st := Build(segs, tol).Stats()
	if st.V != 3 || st.E != 3 || st.F != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// Line arrangement of m lines in general position inside a box:
// interior vertices = C(m,2); known face count = 1 + m + C(m,2) cells
// (plus the regions cut off by the box). We verify V against the closed
// form and F via Euler consistency with a brute rebuild.
func TestBuildLineArrangementCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := geom.Rect{Min: geom.Pt(-10, -10), Max: geom.Pt(10, 10)}
	m := 8
	var segs []InSeg
	for i := 0; i < m; i++ {
		// Lines y = a_i x + b_i with well-separated slopes and small random
		// offsets: every pairwise crossing has |x| <= 0.5, |y| < 5, i.e.
		// strictly inside the box, and crossings are pairwise distinct a.s.
		a := float64(i + 1)
		b := rng.Float64()*0.5 - 0.25
		s, ok := geom.LineThrough(geom.Pt(0, b), geom.Pt(1, a+b)).ClipToRect(box)
		if !ok {
			t.Fatal("line missed box")
		}
		segs = append(segs, InSeg{S: s, Curve: i})
	}
	// Add the box boundary as curve -1.
	c := box.Corners()
	for i := 0; i < 4; i++ {
		segs = append(segs, InSeg{S: geom.Seg(c[i], c[(i+1)%4]), Curve: -1})
	}
	a := Build(segs, tol)
	b := BuildBrute(segs, tol)
	as, bs := a.Stats(), b.Stats()
	if as != bs {
		t.Fatalf("grid %+v != brute %+v", as, bs)
	}
	mm := len(segs) - 4
	wantInterior := mm * (mm - 1) / 2
	// Count interior vertices (degree > 2 or strictly inside the box and
	// not on it): vertices not on the box boundary minus segment endpoints
	// that are on the box (all line endpoints are on the box by clipping).
	interior := 0
	for _, v := range a.Verts {
		onBox := math.Abs(v.X-box.Min.X) < 1e-6 || math.Abs(v.X-box.Max.X) < 1e-6 ||
			math.Abs(v.Y-box.Min.Y) < 1e-6 || math.Abs(v.Y-box.Max.Y) < 1e-6
		if !onBox {
			interior++
		}
	}
	if interior != wantInterior {
		t.Fatalf("interior vertices %d want %d", interior, wantInterior)
	}
	// Faces of an arrangement of mm lines clipped to a box (general
	// position, all crossings inside): 1 + mm + C(mm,2) bounded cells
	// plus the outer face.
	wantFaces := 1 + mm + mm*(mm-1)/2 + 1
	if as.F != wantFaces {
		t.Fatalf("faces %d want %d", as.F, wantFaces)
	}
}

func TestGridMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		segs := make([]InSeg, n)
		for i := range segs {
			a := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			d := geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Scale(2)
			segs[i] = InSeg{S: geom.Seg(a, a.Add(d)), Curve: i}
		}
		sa := Build(segs, tol).Stats()
		sb := BuildBrute(segs, tol).Stats()
		if sa != sb {
			t.Fatalf("trial %d: grid %+v brute %+v", trial, sa, sb)
		}
	}
}

func TestOverlappingCollinearSegments(t *testing.T) {
	segs := []InSeg{
		{S: geom.Seg(geom.Pt(0, 0), geom.Pt(2, 0)), Curve: 0},
		{S: geom.Seg(geom.Pt(1, 0), geom.Pt(3, 0)), Curve: 1},
	}
	a := Build(segs, tol)
	st := a.Stats()
	// Vertices 0,1,2,3 on the x-axis; edges: (0-1,c0),(1-2,c0),(1-2,c1),(2-3,c1).
	if st.V != 4 || st.E != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLocatorGrid(t *testing.T) {
	// A 3x3 grid of unit cells drawn with 8 segments.
	var segs []InSeg
	for i := 0; i <= 3; i++ {
		f := float64(i)
		segs = append(segs,
			InSeg{S: geom.Seg(geom.Pt(0, f), geom.Pt(3, f)), Curve: i},
			InSeg{S: geom.Seg(geom.Pt(f, 0), geom.Pt(f, 3)), Curve: 10 + i},
		)
	}
	a := Build(segs, tol)
	loc := NewLocator(a)
	// Locate the center of each cell and check the gap index counts the
	// horizontal lines below.
	for cx := 0; cx < 3; cx++ {
		for cy := 0; cy < 3; cy++ {
			q := geom.Pt(float64(cx)+0.5, float64(cy)+0.5)
			_, gap, ok := loc.Locate(q)
			if !ok {
				t.Fatalf("locate %v failed", q)
			}
			if gap != cy+1 { // above cy+1 horizontal edges (y=0..cy)
				t.Fatalf("q=%v gap=%d want %d", q, gap, cy+1)
			}
		}
	}
	if _, _, ok := loc.Locate(geom.Pt(-5, 0)); ok {
		t.Error("outside x-range should fail")
	}
}

// Property test: for random segment soups, locating a random point and
// counting edges below it by brute force must agree with the locator.
func TestLocatorMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(25)
		segs := make([]InSeg, n)
		for i := range segs {
			a := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			b := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			segs[i] = InSeg{S: geom.Seg(a, b), Curve: i}
		}
		arr := Build(segs, tol)
		loc := NewLocator(arr)
		for k := 0; k < 200; k++ {
			q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			s, gap, ok := loc.Locate(q)
			if !ok {
				continue
			}
			// Brute force: count split edges whose x-span strictly contains
			// q.X and which pass below q.
			below := 0
			skip := false
			for _, e := range arr.Edges {
				sg := arr.Seg(e)
				lo, hi := math.Min(sg.A.X, sg.B.X), math.Max(sg.A.X, sg.B.X)
				if q.X <= lo || q.X >= hi {
					if q.X == lo || q.X == hi {
						skip = true // measure-zero alignment; ignore
					}
					continue
				}
				y := sg.YAt(q.X)
				if math.Abs(y-q.Y) < 1e-9 {
					skip = true
					break
				}
				if y < q.Y {
					below++
				}
			}
			if skip {
				continue
			}
			if gap != below {
				t.Fatalf("trial %d q=%v: gap=%d brute=%d (slab %d)", trial, q, gap, below, s)
			}
		}
	}
}

func TestLabelStoreParity(t *testing.T) {
	// Two nested squares as curves 0 and 1; labels = set of squares
	// containing the point. Toggling across edges must reproduce direct
	// evaluation everywhere.
	sq := func(lo, hi float64, curve int) []InSeg {
		a, b := geom.Pt(lo, lo), geom.Pt(hi, lo)
		c, d := geom.Pt(hi, hi), geom.Pt(lo, hi)
		return []InSeg{
			{S: geom.Seg(a, b), Curve: curve}, {S: geom.Seg(b, c), Curve: curve},
			{S: geom.Seg(c, d), Curve: curve}, {S: geom.Seg(d, a), Curve: curve},
		}
	}
	segs := append(sq(0, 10, 0), sq(2, 8, 1)...)
	arr := Build(segs, tol)
	loc := NewLocator(arr)
	inside := func(p geom.Point) []int {
		var out []int
		if p.X > 0 && p.X < 10 && p.Y > 0 && p.Y < 10 {
			out = append(out, 0)
		}
		if p.X > 2 && p.X < 8 && p.Y > 2 && p.Y < 8 {
			out = append(out, 1)
		}
		return out
	}
	ls := NewLabelStore(loc, inside)
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 500; k++ {
		q := geom.Pt(rng.Float64()*12-1, rng.Float64()*12-1)
		got, ok := ls.LabelAt(q)
		if !ok {
			continue
		}
		want := inside(q)
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("q=%v got %v want %v", q, got, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// All three candidate-pair strategies must produce identical arrangements.
func TestSweepMatchesGridAndBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(40)
		segs := make([]InSeg, n)
		for i := range segs {
			a := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			d := geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Scale(3)
			segs[i] = InSeg{S: geom.Seg(a, a.Add(d)), Curve: i}
		}
		sg := Build(segs, tol).Stats()
		sb := BuildBrute(segs, tol).Stats()
		ss := BuildSweep(segs, tol).Stats()
		if sg != sb || ss != sb {
			t.Fatalf("trial %d: grid %+v brute %+v sweep %+v", trial, sg, sb, ss)
		}
	}
}
