// Package arrgn builds planar arrangements of segments and answers point
// location queries on them.
//
// It is the subdivision machinery behind the nonzero Voronoi diagram
// V≠0(P) (Section 2 of the paper) and the probabilistic Voronoi diagram
// V_Pr(P) (Section 4.1): input curves are delivered as segment chains
// tagged with a curve index, all pairwise intersections are computed
// (grid-accelerated, with an all-pairs reference implementation used in
// tests), segments are split at intersection points, and the resulting
// 1-skeleton supports
//
//   - combinatorial complexity statistics via the Euler relation
//     V − E + F = 1 + C, and
//   - slab-based point location whose per-cell labels are stored as
//     symmetric-difference chains, following the persistent-structure
//     approach the paper takes from [DSST89] (each gap stores only its
//     diff against the gap above; full label sets exist only at slab
//     tops).
package arrgn

import (
	"math"
	"sort"

	"unn/internal/geom"
)

// InSeg is an input segment tagged with the curve it belongs to.
type InSeg struct {
	S     geom.Segment
	Curve int
}

// Edge is a split sub-segment between two arrangement vertices.
type Edge struct {
	A, B  int // vertex indices, lexicographically A < B
	Curve int
}

// Arrangement is the 1-skeleton of the subdivision induced by the input
// segments: vertices are endpoints and pairwise intersection points
// (snapped at tolerance), edges are maximal sub-segments between them.
type Arrangement struct {
	Verts []geom.Point
	Edges []Edge
	Tol   float64
}

// Seg returns the geometric segment of edge e.
func (a *Arrangement) Seg(e Edge) geom.Segment {
	return geom.Seg(a.Verts[e.A], a.Verts[e.B])
}

// Build computes the arrangement of the given segments. tol is the
// vertex-snapping tolerance (points closer than tol are identified).
func Build(segs []InSeg, tol float64) *Arrangement {
	return buildWith(segs, tol, forCandidatePairs)
}

// BuildBrute is Build with all-pairs intersection testing; it is the
// quadratic reference implementation used to validate the other paths.
func BuildBrute(segs []InSeg, tol float64) *Arrangement {
	return buildWith(segs, tol, allPairs)
}

func allPairs(segs []InSeg, fn func(i, j int)) {
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			fn(i, j)
		}
	}
}

// emit splits every segment at its recorded cut parameters, snaps the
// resulting endpoints into shared vertices and assembles the edge list.
func emit(segs []InSeg, cuts [][]float64, tol float64) *Arrangement {
	arr := &Arrangement{Tol: tol}
	snap := newSnapper(tol)
	for i, s := range segs {
		ts := append(cuts[i], 0, 1)
		sort.Float64s(ts)
		prev := -1
		var prevT float64 = math.Inf(-1)
		for _, t := range ts {
			if t-prevT < 1e-14 {
				continue
			}
			v := snap.id(arr, s.S.At(t))
			if prev >= 0 && prev != v {
				a, b := prev, v
				if arr.Verts[b].Less(arr.Verts[a]) {
					a, b = b, a
				}
				arr.Edges = append(arr.Edges, Edge{A: a, B: b, Curve: s.Curve})
			}
			prev, prevT = v, t
		}
	}
	arr.dedupeEdges()
	return arr
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

func paramOn(s geom.Segment, p geom.Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return 0
	}
	return clamp01(p.Sub(s.A).Dot(d) / l2)
}

func addOverlapCuts(segs []InSeg, cuts [][]float64, i, j int) {
	si, sj := segs[i].S, segs[j].S
	for _, p := range []geom.Point{sj.A, sj.B} {
		if si.DistToPoint(p) < 1e-12 {
			cuts[i] = append(cuts[i], paramOn(si, p))
		}
	}
	for _, p := range []geom.Point{si.A, si.B} {
		if sj.DistToPoint(p) < 1e-12 {
			cuts[j] = append(cuts[j], paramOn(sj, p))
		}
	}
}

func (a *Arrangement) dedupeEdges() {
	type key struct{ a, b, c int }
	seen := make(map[key]bool, len(a.Edges))
	out := a.Edges[:0]
	for _, e := range a.Edges {
		k := key{e.A, e.B, e.Curve}
		if e.A == e.B || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	a.Edges = out
}

// forCandidatePairs calls fn(i, j), i<j, for every pair of segments whose
// bounding boxes share a grid cell. Each pair is reported once.
func forCandidatePairs(segs []InSeg, fn func(i, j int)) {
	n := len(segs)
	if n < 2 {
		return
	}
	bb := geom.EmptyRect()
	total := 0.0
	for _, s := range segs {
		bb = bb.Union(s.S.Bounds())
		total += s.S.Len()
	}
	avg := total / float64(n)
	cell := math.Max(avg, math.Max(bb.Width(), bb.Height())/(2*math.Sqrt(float64(n))+1))
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		cell = 1
	}
	type cellKey struct{ cx, cy int }
	grid := make(map[cellKey][]int)
	for i, s := range segs {
		b := s.S.Bounds()
		x0 := int(math.Floor(b.Min.X / cell))
		x1 := int(math.Floor(b.Max.X / cell))
		y0 := int(math.Floor(b.Min.Y / cell))
		y1 := int(math.Floor(b.Max.Y / cell))
		for cx := x0; cx <= x1; cx++ {
			for cy := y0; cy <= y1; cy++ {
				k := cellKey{cx, cy}
				grid[k] = append(grid[k], i)
			}
		}
	}
	seen := make(map[int64]bool)
	for _, ids := range grid {
		for ai := 0; ai < len(ids); ai++ {
			for bi := ai + 1; bi < len(ids); bi++ {
				i, j := ids[ai], ids[bi]
				if i > j {
					i, j = j, i
				}
				key := int64(i)*int64(n) + int64(j)
				if seen[key] {
					continue
				}
				seen[key] = true
				if segs[i].S.Bounds().Overlaps(segs[j].S.Bounds()) {
					fn(i, j)
				}
			}
		}
	}
}

// snapper identifies nearby points (within tol) with a single vertex id.
type snapper struct {
	tol  float64
	grid map[[2]int64][]int
}

func newSnapper(tol float64) *snapper {
	return &snapper{tol: tol, grid: make(map[[2]int64][]int)}
}

func (s *snapper) id(arr *Arrangement, p geom.Point) int {
	cx := int64(math.Floor(p.X / s.tol))
	cy := int64(math.Floor(p.Y / s.tol))
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, vi := range s.grid[[2]int64{cx + dx, cy + dy}] {
				if arr.Verts[vi].NearEq(p, s.tol) {
					return vi
				}
			}
		}
	}
	vi := len(arr.Verts)
	arr.Verts = append(arr.Verts, p)
	s.grid[[2]int64{cx, cy}] = append(s.grid[[2]int64{cx, cy}], vi)
	return vi
}

// Stats is the combinatorial complexity of the arrangement: vertices,
// edges, faces (via Euler's relation, counting the outer face) and
// connected components of the 1-skeleton.
type Stats struct {
	V, E, F, C int
}

// Complexity returns V+E+F, the total complexity measure used by the
// paper for Voronoi diagram sizes.
func (s Stats) Complexity() int { return s.V + s.E + s.F }

// Stats computes the arrangement's combinatorial statistics. Isolated
// vertices are not produced by Build, so V counts endpoints and
// intersections; F follows from Euler's formula for planar graphs with C
// components: V − E + F = 1 + C.
func (a *Arrangement) Stats() Stats {
	v, e := len(a.Verts), len(a.Edges)
	// Union-find over vertices.
	parent := make([]int, v)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ed := range a.Edges {
		ra, rb := find(ed.A), find(ed.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	comp := map[int]bool{}
	used := make([]bool, v)
	for _, ed := range a.Edges {
		used[ed.A], used[ed.B] = true, true
	}
	nv := 0
	for i := 0; i < v; i++ {
		if used[i] {
			nv++
			comp[find(i)] = true
		}
	}
	c := len(comp)
	f := e - nv + 1 + c
	return Stats{V: nv, E: e, F: f, C: c}
}

// BuildSweep is Build with candidate pairs generated by an x-sweep
// (sort segments by min-x, maintain the active set whose x-intervals
// overlap, and test y-overlapping pairs). It is the O((n+k) log n)-style
// verifier for the grid path; tests require Build, BuildBrute and
// BuildSweep to produce identical arrangements.
func BuildSweep(segs []InSeg, tol float64) *Arrangement {
	return buildWith(segs, tol, forSweepPairs)
}

func buildWith(segs []InSeg, tol float64, pairs func([]InSeg, func(i, j int))) *Arrangement {
	n := len(segs)
	cuts := make([][]float64, n)
	pairs(segs, func(i, j int) {
		x := segs[i].S.Intersect(segs[j].S)
		if !x.OK {
			return
		}
		if x.Overlap {
			addOverlapCuts(segs, cuts, i, j)
			return
		}
		cuts[i] = append(cuts[i], clamp01(x.T))
		cuts[j] = append(cuts[j], paramOn(segs[j].S, x.P))
	})
	return emit(segs, cuts, tol)
}

// forSweepPairs reports every pair of segments whose bounding boxes
// overlap, via a sweep over x with an active list.
func forSweepPairs(segs []InSeg, fn func(i, j int)) {
	n := len(segs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	minX := func(i int) float64 { return segs[i].S.Bounds().Min.X }
	maxX := func(i int) float64 { return segs[i].S.Bounds().Max.X }
	sort.Slice(order, func(a, b int) bool { return minX(order[a]) < minX(order[b]) })
	var active []int
	for _, i := range order {
		xi := minX(i)
		// Retire segments that ended before xi.
		keep := active[:0]
		for _, j := range active {
			if maxX(j) >= xi {
				keep = append(keep, j)
			}
		}
		active = keep
		bi := segs[i].S.Bounds()
		for _, j := range active {
			if bi.Overlaps(segs[j].S.Bounds()) {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				fn(a, b)
			}
		}
		active = append(active, i)
	}
}
