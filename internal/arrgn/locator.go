package arrgn

import (
	"math"
	"sort"

	"unn/internal/geom"
)

// Locator answers vertical-slab point location on an arrangement.
//
// The x-coordinates of the arrangement vertices partition the plane into
// vertical slabs; inside a slab the non-vertical edges crossing it are
// totally ordered by height. Locating a point is two binary searches:
// O(log V) for the slab, O(log E_s) for the gap between consecutive edges.
// This is the classical O(n²)-space slab method of [dBCKO08, §6.1]; the
// paper's Theorem 2.11 point-location bound O(log n + t) is met per query.
type Locator struct {
	arr   *Arrangement
	xs    []float64 // slab boundaries, ascending
	slabs [][]int   // per slab: edge ids crossing it, sorted bottom→top at mid-x
}

// NewLocator builds the slab structure for a (the arrangement keeps
// ownership of vertices/edges and must not be mutated afterwards).
func NewLocator(a *Arrangement) *Locator {
	// Slab boundaries: unique vertex xs.
	xs := make([]float64, 0, len(a.Verts))
	for _, v := range a.Verts {
		xs = append(xs, v.X)
	}
	sort.Float64s(xs)
	xs = dedupeFloats(xs)

	l := &Locator{arr: a, xs: xs}
	ns := len(xs) - 1
	if ns <= 0 {
		return l
	}
	l.slabs = make([][]int, ns)

	// Sweep: edges enter at their min-x boundary and leave at max-x.
	type ev struct {
		x     float64
		edge  int
		enter bool
	}
	evs := make([]ev, 0, 2*len(a.Edges))
	for ei, e := range a.Edges {
		ax, bx := a.Verts[e.A].X, a.Verts[e.B].X
		lo, hi := math.Min(ax, bx), math.Max(ax, bx)
		if hi-lo <= 0 {
			continue // vertical edge: lies on a slab boundary
		}
		evs = append(evs, ev{lo, ei, true}, ev{hi, ei, false})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].x != evs[j].x {
			return evs[i].x < evs[j].x
		}
		return !evs[i].enter && evs[j].enter // leave before enter at same x
	})

	active := map[int]bool{}
	ei := 0
	for s := 0; s < ns; s++ {
		for ei < len(evs) && evs[ei].x <= xs[s] {
			if evs[ei].enter {
				active[evs[ei].edge] = true
			} else {
				delete(active, evs[ei].edge)
			}
			ei++
		}
		if len(active) == 0 {
			continue
		}
		ids := make([]int, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		mid := (xs[s] + xs[s+1]) / 2
		sort.Slice(ids, func(i, j int) bool {
			return a.Seg(a.Edges[ids[i]]).YAt(mid) < a.Seg(a.Edges[ids[j]]).YAt(mid)
		})
		l.slabs[s] = ids
	}
	return l
}

func dedupeFloats(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x > out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// SlabCount returns the number of slabs.
func (l *Locator) SlabCount() int { return len(l.slabs) }

// EdgesInSlab returns the edges crossing slab s, sorted bottom→top.
func (l *Locator) EdgesInSlab(s int) []int { return l.slabs[s] }

// MidX returns the x-coordinate of the middle of slab s.
func (l *Locator) MidX(s int) float64 { return (l.xs[s] + l.xs[s+1]) / 2 }

// SlabWidth returns the width of slab s — the horizontal extent of every
// cell fragment the slab holds (consumers deriving cell-extent bounds,
// e.g. the engine's adaptive cache quantum, read these).
func (l *Locator) SlabWidth(s int) float64 { return l.xs[s+1] - l.xs[s] }

// GapCount returns the number of vertical gaps in slab s (edges + 1).
func (l *Locator) GapCount(s int) int { return len(l.slabs[s]) + 1 }

// Locate returns the slab containing q.X and the gap index of q within it:
// gap g means q lies above exactly g of the slab's edges. ok is false when
// q.X falls outside the arrangement's x-range.
func (l *Locator) Locate(q geom.Point) (slab, gap int, ok bool) {
	if len(l.slabs) == 0 || q.X < l.xs[0] || q.X > l.xs[len(l.xs)-1] {
		return 0, 0, false
	}
	s := sort.SearchFloat64s(l.xs, q.X) - 1
	if s < 0 {
		s = 0
	}
	if s >= len(l.slabs) {
		s = len(l.slabs) - 1
	}
	ids := l.slabs[s]
	g := sort.Search(len(ids), func(i int) bool {
		return l.arr.Seg(l.arr.Edges[ids[i]]).YAt(q.X) > q.Y
	})
	return s, g, true
}

// GapRep returns a representative point strictly inside gap g of slab s.
// For the unbounded extreme gaps the point is placed one unit beyond the
// outermost edge.
func (l *Locator) GapRep(s, g int) geom.Point {
	mid := l.MidX(s)
	ids := l.slabs[s]
	switch {
	case len(ids) == 0:
		return geom.Pt(mid, 0)
	case g <= 0:
		return geom.Pt(mid, l.arr.Seg(l.arr.Edges[ids[0]]).YAt(mid)-1)
	case g >= len(ids):
		return geom.Pt(mid, l.arr.Seg(l.arr.Edges[ids[len(ids)-1]]).YAt(mid)+1)
	default:
		y0 := l.arr.Seg(l.arr.Edges[ids[g-1]]).YAt(mid)
		y1 := l.arr.Seg(l.arr.Edges[ids[g]]).YAt(mid)
		return geom.Pt(mid, (y0+y1)/2)
	}
}

// LabelStore stores one label set (a sorted []int, e.g. the indices in
// NN≠0) per gap of the locator, persistently: only each slab's topmost gap
// stores a full set; every other gap stores the single index toggled when
// crossing the edge above it, following the symmetric-difference
// observation of Section 2.1 ("for two adjacent cells, |P_φ ⊕ P_φ'| = 1")
// and [DSST89].
type LabelStore struct {
	loc *Locator
	top [][]int // per slab: label of the topmost gap
}

// NewLabelStore evaluates eval once per slab (at a representative point of
// the topmost gap) and derives every other gap's label by toggling curve
// indices downward on demand.
func NewLabelStore(loc *Locator, eval func(geom.Point) []int) *LabelStore {
	ls := &LabelStore{loc: loc, top: make([][]int, loc.SlabCount())}
	for s := 0; s < loc.SlabCount(); s++ {
		ls.top[s] = eval(loc.GapRep(s, loc.GapCount(s)-1))
	}
	return ls
}

// Label returns the label set of gap g in slab s (sorted ascending).
func (ls *LabelStore) Label(s, g int) []int {
	ids := ls.loc.slabs[s]
	set := map[int]bool{}
	for _, i := range ls.top[s] {
		set[i] = true
	}
	for k := len(ids) - 1; k >= g; k-- {
		c := ls.loc.arr.Edges[ids[k]].Curve
		if set[c] {
			delete(set, c)
		} else {
			set[c] = true
		}
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// LabelAt locates q and returns its label set; ok is false when q is
// outside the locator's x-range (callers fall back to direct evaluation).
func (ls *LabelStore) LabelAt(q geom.Point) ([]int, bool) {
	s, g, ok := ls.loc.Locate(q)
	if !ok {
		return nil, false
	}
	return ls.Label(s, g), true
}
