package expected

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

func randPts(rng *rand.Rand, n, k int) []*uncertain.Discrete {
	pts := make([]*uncertain.Discrete, n)
	for i := range pts {
		c := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = c.Add(geom.Pt(rng.NormFloat64()*2, rng.NormFloat64()*2))
			w[j] = 0.3 + rng.Float64()
		}
		d, _ := uncertain.NewDiscrete(locs, w)
		pts[i] = d
	}
	return pts
}

func TestNNExpectedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		ix, err := New(pts)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			gi, gv := ix.NNExpected(q)
			wi, wv := -1, math.Inf(1)
			for i, p := range pts {
				if v := p.ExpectedDist(q); v < wv {
					wi, wv = i, v
				}
			}
			if gi != wi || math.Abs(gv-wv) > 1e-9 {
				t.Fatalf("NNExpected: got (%d, %v) want (%d, %v)", gi, gv, wi, wv)
			}
		}
	}
}

func TestNNSquaredMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		ix, err := New(pts)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			gi, gv := ix.NNSquared(q)
			wi, wv := -1, math.Inf(1)
			for i, p := range pts {
				// Direct E‖q−P‖² without the reduction.
				v := 0.0
				for a, l := range p.Locs {
					v += p.W[a] * q.Dist2(l)
				}
				if v < wv {
					wi, wv = i, v
				}
			}
			if gi != wi || math.Abs(gv-wv) > 1e-6*(1+wv) {
				t.Fatalf("NNSquared: got (%d, %v) want (%d, %v)", gi, gv, wi, wv)
			}
		}
	}
}

func TestRankExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 20, 3)
	ix, _ := New(pts)
	q := geom.Pt(0, 0)
	rank := ix.RankExpected(q)
	if len(rank) != 20 {
		t.Fatalf("rank size %d", len(rank))
	}
	for i := 1; i < len(rank); i++ {
		if ix.ExpectedDist(q, rank[i-1]) > ix.ExpectedDist(q, rank[i])+1e-12 {
			t.Fatal("rank not sorted by expected distance")
		}
	}
	// The top of the ranking equals NNExpected.
	if nn, _ := ix.NNExpected(q); nn != rank[0] {
		t.Fatalf("rank[0]=%d, NNExpected=%d", rank[0], nn)
	}
}

func TestEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty accepted")
	}
}
