// Package expected implements nearest-neighbor search under the
// *expected-distance* semantics of the companion PODS 2012 paper
// "Nearest-neighbor searching under uncertainty" [AESZ12] — the paper
// whose journal version is titled "Nearest-Neighbor Searching Under
// Uncertainty I". The supplied paper (part II) discusses this semantics
// in §1.2: the expected nearest neighbor is computable per point
// independently, which makes it far easier than quantification
// probabilities, but it is a poor indicator under large uncertainty
// (see [YTX+10] and experiment E14).
//
// Two metrics are supported, mirroring [AESZ12]'s main cases:
//
//   - squared Euclidean: E‖q−P_i‖² = ‖q−c_i‖² + Var(P_i), an exact
//     reduction to an additively-weighted point problem over centroids
//     (their linear-size exact structure);
//   - Euclidean: ED_i(q) = Σ_a w_ia·d(q, p_ia), answered exactly by
//     best-first search over centroids with the Jensen lower bound
//     ED_i(q) ≥ d(q, c_i).
package expected

import (
	"fmt"
	"math"
	"sort"

	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/uncertain"
)

// Index answers expected-distance NN queries over discrete uncertain
// points. Preprocessing is O(N + n log n); space is O(n) beyond the
// input.
type Index struct {
	pts       []*uncertain.Discrete
	centroids *kdtree.Tree // item: P = centroid, W = Var(P_i), ID = i
}

// New builds the index.
func New(pts []*uncertain.Discrete) (*Index, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("expected: empty point set")
	}
	items := make([]kdtree.Item, len(pts))
	for i, p := range pts {
		items[i] = kdtree.Item{P: p.Centroid(), W: p.Variance(), ID: i}
	}
	return &Index{pts: pts, centroids: kdtree.New(items)}, nil
}

// ExpectedDist returns ED_i(q) = Σ_a w_ia d(q, p_ia).
func (ix *Index) ExpectedDist(q geom.Point, i int) float64 {
	return ix.pts[i].ExpectedDist(q)
}

// ExpectedDist2 returns E‖q−P_i‖² via the centroid reduction.
func (ix *Index) ExpectedDist2(q geom.Point, i int) float64 {
	return q.Dist2(ix.pts[i].Centroid()) + ix.pts[i].Variance()
}

// NNSquared returns the point minimizing the expected *squared* distance,
// exactly: candidates are enumerated by centroid distance d, and the
// search stops once d² alone exceeds the best d²+Var seen (variances are
// non-negative, so no farther centroid can win).
func (ix *Index) NNSquared(q geom.Point) (int, float64) {
	e := ix.centroids.Enumerate(q)
	best, bestVal := -1, math.Inf(1)
	for {
		nb, ok := e.Next()
		if !ok || nb.Dist*nb.Dist >= bestVal {
			break
		}
		if v := nb.Dist*nb.Dist + nb.Item.W; v < bestVal {
			best, bestVal = nb.Item.ID, v
		}
	}
	return best, bestVal
}

// NNExpected returns the point minimizing the expected Euclidean
// distance, exactly: by Jensen's inequality ED_i(q) ≥ d(q, c_i), so the
// centroid-distance enumeration can stop as soon as the next centroid is
// farther than the best exact expected distance found.
func (ix *Index) NNExpected(q geom.Point) (int, float64) {
	e := ix.centroids.Enumerate(q)
	best, bestVal := -1, math.Inf(1)
	for {
		nb, ok := e.Next()
		if !ok || nb.Dist >= bestVal {
			break
		}
		if v := ix.pts[nb.Item.ID].ExpectedDist(q); v < bestVal {
			best, bestVal = nb.Item.ID, v
		}
	}
	return best, bestVal
}

// RankExpected returns all points ordered by increasing expected
// Euclidean distance — the straightforward expected-distance kNN ranking
// mentioned in §1.2.
func (ix *Index) RankExpected(q geom.Point) []int {
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, len(ix.pts))
	for i := range ix.pts {
		ps[i] = pair{i, ix.ExpectedDist(q, i)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.i
	}
	return out
}
