// Package geom is the planar geometry kernel underlying the uncertain
// nearest-neighbor library. It provides points, segments, disks,
// rectangles, convex hulls, smallest enclosing disks, half-plane
// intersections and the exact orientation/in-circle predicates (with a
// math/big fallback) that the higher-level structures rely on.
//
// Coordinates are float64 throughout. Predicates that decide combinatorial
// structure (orientation, in-circle) use a floating-point filter with an
// exact big.Rat fallback, so they are reliable even on the near-degenerate
// inputs produced by the paper's lower-bound constructions.
package geom

import "math"

// Eps is the default absolute tolerance used by the non-exact helpers.
const Eps = 1e-9

// Point is a point (or vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s * p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product <p, q>.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean norm of p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide exactly.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// NearEq reports whether p and q coincide within tol (absolute, per axis).
func (p Point) NearEq(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// Less orders points lexicographically by (X, Y). It is the sweep order
// used by the arrangement machinery.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Rot90 returns p rotated by +90 degrees.
func (p Point) Rot90() Point { return Point{-p.Y, p.X} }

// Unit returns p normalized to unit length; the zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Angle returns the polar angle of p in [0, 2π).
func (p Point) Angle() float64 {
	a := math.Atan2(p.Y, p.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// Dir returns the unit vector with polar angle theta.
func Dir(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c, s}
}

// Lerp returns the affine combination (1-t)p + tq.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// DistLinf returns the Chebyshev (L∞) distance between p and q.
func (p Point) DistLinf(q Point) float64 {
	dx, dy := math.Abs(p.X-q.X), math.Abs(p.Y-q.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// DistL1 returns the Manhattan (L1) distance between p and q.
func (p Point) DistL1(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// RotL1 maps p to coordinates in which the L1 metric becomes L∞ (and
// vice versa): d_1(p,q) = d_∞(RotL1(p), RotL1(q)).
func (p Point) RotL1() Point { return Point{p.X + p.Y, p.X - p.Y} }
