package geom

import "math"

// Rect is an axis-aligned rectangle [Min.X, Max.X] x [Min.Y, Max.Y].
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity for Union: an inverted rectangle.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// RectAround returns the smallest rectangle containing all pts.
func RectAround(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Extend grows r to include p.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rectangle containing r and o.
func (r Rect) Union(o Rect) Rect {
	if o.IsEmpty() {
		return r
	}
	if r.IsEmpty() {
		return o
	}
	return r.Extend(o.Min).Extend(o.Max)
}

// Inflate grows r by m on every side.
func (r Rect) Inflate(m float64) Rect {
	return Rect{Point{r.Min.X - m, r.Min.Y - m}, Point{r.Max.X + m, r.Max.Y + m}}
}

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Overlaps reports whether the closed rectangles r and o intersect.
func (r Rect) Overlaps(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point { return Midpoint(r.Min, r.Max) }

// Diag returns the diagonal length of r.
func (r Rect) Diag() float64 { return r.Min.Dist(r.Max) }

// DistToPoint returns the distance from p to the rectangle (0 if inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MaxDistToPoint returns the largest distance from p to a point of r.
func (r Rect) MaxDistToPoint(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// Corners returns the four corners of r in CCW order.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// DistToPointLinf returns the Chebyshev distance from p to the rectangle
// (0 if inside).
func (r Rect) DistToPointLinf(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	if dx > dy {
		return dx
	}
	return dy
}
