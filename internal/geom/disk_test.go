package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDiskMinMaxDist(t *testing.T) {
	d := DiskAt(0, 0, 5)
	q := Pt(6, 8) // |q| = 10; this is the configuration of Figure 1.
	if got := d.MinDist(q); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinDist = %v want 5", got)
	}
	if got := d.MaxDist(q); math.Abs(got-15) > 1e-12 {
		t.Errorf("MaxDist = %v want 15", got)
	}
	// Query inside the disk: delta must clamp to 0.
	if got := d.MinDist(Pt(1, 1)); got != 0 {
		t.Errorf("MinDist inside = %v want 0", got)
	}
}

func TestLensAreaSpecialCases(t *testing.T) {
	a := DiskAt(0, 0, 2)
	if got := a.LensArea(DiskAt(10, 0, 1)); got != 0 {
		t.Errorf("disjoint lens = %v", got)
	}
	// Contained disk: lens = area of smaller.
	if got := a.LensArea(DiskAt(0.5, 0, 1)); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("contained lens = %v want pi", got)
	}
	// Identical disks.
	if got := a.LensArea(a); math.Abs(got-4*math.Pi) > 1e-9 {
		t.Errorf("self lens = %v want 4pi", got)
	}
	// Equal circles of radius r with centers distance d apart have lens
	// area 2 r^2 cos^-1(d/2r) - (d/2) sqrt(4r^2 - d^2).
	r := 3.0
	d := r
	b := DiskAt(r, 0, r)
	c := DiskAt(0, 0, r)
	want := 2*r*r*math.Acos(d/(2*r)) - d/2*math.Sqrt(4*r*r-d*d)
	if got := b.LensArea(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("half-overlap lens = %v want %v", got, want)
	}
}

// TestLensAreaMonteCarlo cross-checks the closed form against sampling.
func TestLensAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		d1 := DiskAt(rng.Float64()*4-2, rng.Float64()*4-2, 0.5+rng.Float64()*2)
		d2 := DiskAt(rng.Float64()*4-2, rng.Float64()*4-2, 0.5+rng.Float64()*2)
		want := d1.LensArea(d2)
		// Sample inside d1.
		const N = 60000
		in := 0
		for i := 0; i < N; i++ {
			p := sampleDisk(rng, d1)
			if d2.Contains(p) {
				in++
			}
		}
		got := float64(in) / N * d1.Area()
		tol := 4 * d1.Area() / math.Sqrt(N) // ~4 sigma
		if math.Abs(got-want) > tol+1e-9 {
			t.Errorf("trial %d: MC=%v closed=%v (tol %v)", trial, got, want, tol)
		}
	}
}

func sampleDisk(rng *rand.Rand, d Disk) Point {
	for {
		p := Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		if p.Norm2() <= 1 {
			return d.C.Add(p.Scale(d.R))
		}
	}
}

func TestIntersectCircle(t *testing.T) {
	a := DiskAt(0, 0, 5)
	b := DiskAt(8, 0, 5)
	p1, p2, n := a.IntersectCircle(b)
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	for _, p := range []Point{p1, p2} {
		if math.Abs(p.Dist(a.C)-5) > 1e-9 || math.Abs(p.Dist(b.C)-5) > 1e-9 {
			t.Errorf("intersection %v not on both circles", p)
		}
	}
	// Tangent circles.
	c := DiskAt(10, 0, 5)
	q1, q2, n := a.IntersectCircle(c)
	if n != 1 || !q1.NearEq(Pt(5, 0), 1e-9) || !q2.NearEq(q1, 1e-9) {
		t.Errorf("tangency: n=%d q1=%v", n, q1)
	}
	// Disjoint and nested.
	if _, _, n := a.IntersectCircle(DiskAt(100, 0, 1)); n != 0 {
		t.Error("disjoint circles intersect")
	}
	if _, _, n := a.IntersectCircle(DiskAt(0, 0, 1)); n != 0 {
		t.Error("nested circles intersect")
	}
}

func TestCircleSegmentIntersections(t *testing.T) {
	d := DiskAt(0, 0, 1)
	ts := d.CircleSegmentIntersections(Seg(Pt(-2, 0), Pt(2, 0)))
	if len(ts) != 2 {
		t.Fatalf("len = %d", len(ts))
	}
	if math.Abs(ts[0]-0.25) > 1e-12 || math.Abs(ts[1]-0.75) > 1e-12 {
		t.Errorf("ts = %v", ts)
	}
	if ts := d.CircleSegmentIntersections(Seg(Pt(-2, 3), Pt(2, 3))); len(ts) != 0 {
		t.Errorf("miss case: %v", ts)
	}
	// Segment starting inside.
	ts = d.CircleSegmentIntersections(Seg(Pt(0, 0), Pt(2, 0)))
	if len(ts) != 1 || math.Abs(ts[0]-0.5) > 1e-12 {
		t.Errorf("inside-out: %v", ts)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectAround(Pt(0, 0), Pt(4, 2), Pt(1, 5))
	if r.Min != Pt(0, 0) || r.Max != Pt(4, 5) {
		t.Fatalf("RectAround = %+v", r)
	}
	if !r.Contains(Pt(2, 2)) || r.Contains(Pt(-1, 2)) {
		t.Error("Contains broken")
	}
	if got := r.DistToPoint(Pt(7, 9)); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistToPoint = %v", got)
	}
	if got := r.DistToPoint(Pt(2, 2)); got != 0 {
		t.Errorf("inside dist = %v", got)
	}
	if got := r.MaxDistToPoint(Pt(0, 0)); math.Abs(got-r.Min.Dist(Pt(4, 5))) > 1e-12 {
		t.Errorf("MaxDistToPoint = %v", got)
	}
	if !EmptyRect().IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	if got := EmptyRect().Union(r); got != r {
		t.Error("empty union identity broken")
	}
}
