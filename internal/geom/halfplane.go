package geom

// HalfPlane is the closed set {(x,y) : A*x + B*y <= C}.
type HalfPlane struct {
	A, B, C float64
}

// Eval returns A*x + B*y - C; the point is inside iff Eval <= 0.
func (h HalfPlane) Eval(p Point) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Contains reports whether p lies in the closed half-plane.
func (h HalfPlane) Contains(p Point) bool { return h.Eval(p) <= 0 }

// HalfPlaneIntersection clips the convex polygon defined by bounds (a
// large axis-aligned box) against every half-plane and returns the
// resulting convex polygon in CCW order, or nil if the intersection is
// empty (within the box). This is Sutherland–Hodgman clipping, O(n*k) for
// n half-planes and result size k — ample for the O(k²) half-planes per
// region B_ij in the discrete nonzero-Voronoi pipeline (Lemma 2.13).
func HalfPlaneIntersection(hs []HalfPlane, bounds Rect) []Point {
	c := bounds.Corners()
	poly := []Point{c[0], c[1], c[2], c[3]}
	for _, h := range hs {
		poly = clipAgainst(poly, h)
		if len(poly) == 0 {
			return nil
		}
	}
	return poly
}

func clipAgainst(poly []Point, h HalfPlane) []Point {
	if len(poly) == 0 {
		return nil
	}
	out := make([]Point, 0, len(poly)+2)
	prev := poly[len(poly)-1]
	prevIn := h.Eval(prev) <= 0
	for _, cur := range poly {
		curIn := h.Eval(cur) <= 0
		if curIn != prevIn {
			out = append(out, hpCross(prev, cur, h))
		}
		if curIn {
			out = append(out, cur)
		}
		prev, prevIn = cur, curIn
	}
	// Remove near-duplicate consecutive vertices to keep polygons clean.
	return dedupeLoop(out)
}

func hpCross(p, q Point, h HalfPlane) Point {
	fp, fq := h.Eval(p), h.Eval(q)
	t := fp / (fp - fq)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Lerp(p, q, t)
}

func dedupeLoop(poly []Point) []Point {
	if len(poly) < 2 {
		return poly
	}
	out := poly[:0]
	for _, p := range poly {
		if len(out) == 0 || !p.NearEq(out[len(out)-1], 1e-12) {
			out = append(out, p)
		}
	}
	for len(out) >= 2 && out[len(out)-1].NearEq(out[0], 1e-12) {
		out = out[:len(out)-1]
	}
	return out
}
