package geom

import "math"

// Disk is a closed disk with center C and radius R >= 0.
type Disk struct {
	C Point
	R float64
}

// DiskAt is shorthand for Disk{Point{x,y}, r}.
func DiskAt(x, y, r float64) Disk { return Disk{Point{x, y}, r} }

// Contains reports whether p lies in the closed disk.
func (d Disk) Contains(p Point) bool { return d.C.Dist2(p) <= d.R*d.R }

// ContainsDisk reports whether o lies entirely inside the closed disk d.
func (d Disk) ContainsDisk(o Disk) bool { return d.C.Dist(o.C)+o.R <= d.R }

// Intersects reports whether the closed disks d and o share a point.
func (d Disk) Intersects(o Disk) bool { return d.C.Dist(o.C) <= d.R+o.R }

// Bounds returns the bounding rectangle of d.
func (d Disk) Bounds() Rect {
	return Rect{Point{d.C.X - d.R, d.C.Y - d.R}, Point{d.C.X + d.R, d.C.Y + d.R}}
}

// Area returns the area of d.
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// MinDist returns the minimum distance from q to the disk
// (delta_i(q) in the paper): max{|q-C| - R, 0}.
func (d Disk) MinDist(q Point) float64 {
	return math.Max(q.Dist(d.C)-d.R, 0)
}

// MaxDist returns the maximum distance from q to the disk
// (Delta_i(q) in the paper): |q-C| + R.
func (d Disk) MaxDist(q Point) float64 { return q.Dist(d.C) + d.R }

// IntersectCircle returns the intersection points of the two circle
// boundaries. n is 0, 1 or 2; for n==1 both points coincide.
func (d Disk) IntersectCircle(o Disk) (p1, p2 Point, n int) {
	dist := d.C.Dist(o.C)
	if dist > d.R+o.R || dist < math.Abs(d.R-o.R) || dist == 0 {
		return Point{}, Point{}, 0
	}
	// a = distance from d.C to the radical line along the center line.
	a := (dist*dist + d.R*d.R - o.R*o.R) / (2 * dist)
	h2 := d.R*d.R - a*a
	if h2 < 0 {
		if h2 > -Eps*d.R*d.R {
			h2 = 0
		} else {
			return Point{}, Point{}, 0
		}
	}
	h := math.Sqrt(h2)
	u := o.C.Sub(d.C).Scale(1 / dist)
	m := d.C.Add(u.Scale(a))
	perp := u.Rot90().Scale(h)
	if h == 0 {
		return m, m, 1
	}
	return m.Add(perp), m.Sub(perp), 2
}

// LensArea returns the area of the intersection of the two disks, using
// the standard circular-lens formula. It is the building block of the
// distance cdf G_{q,i} for uniform-disk pdfs (Figure 1 of the paper).
func (d Disk) LensArea(o Disk) float64 {
	dist := d.C.Dist(o.C)
	if dist >= d.R+o.R {
		return 0
	}
	small, big := d.R, o.R
	if small > big {
		small, big = big, small
	}
	if dist <= big-small {
		return math.Pi * small * small
	}
	r, R := d.R, o.R
	d2 := dist * dist
	a1 := r * r * safeAcos((d2+r*r-R*R)/(2*dist*r))
	a2 := R * R * safeAcos((d2+R*R-r*r)/(2*dist*R))
	t := (-dist + r + R) * (dist + r - R) * (dist - r + R) * (dist + r + R)
	if t < 0 {
		t = 0
	}
	return a1 + a2 - 0.5*math.Sqrt(t)
}

func safeAcos(x float64) float64 {
	if x > 1 {
		x = 1
	} else if x < -1 {
		x = -1
	}
	return math.Acos(x)
}

// CircleSegmentIntersections returns the parameters t in [0,1] at which
// segment s crosses the boundary circle of d, in increasing order.
func (d Disk) CircleSegmentIntersections(s Segment) []float64 {
	f := s.A.Sub(d.C)
	dir := s.B.Sub(s.A)
	a := dir.Norm2()
	if a == 0 {
		return nil
	}
	b := 2 * f.Dot(dir)
	c := f.Norm2() - d.R*d.R
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	var out []float64
	for _, t := range []float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
		if t >= 0 && t <= 1 {
			if len(out) == 1 && out[0] == t {
				continue
			}
			out = append(out, t)
		}
	}
	return out
}
