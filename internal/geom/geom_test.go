package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Dist(q); math.Abs(got-math.Sqrt(13)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Dist2(q); got != 13 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestAngleDirRoundTrip(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.2, math.Pi, 4.9, 2*math.Pi - 1e-9} {
		u := Dir(theta)
		if math.Abs(u.Norm()-1) > 1e-12 {
			t.Fatalf("Dir(%v) not unit", theta)
		}
		if got := u.Angle(); math.Abs(got-theta) > 1e-9 {
			t.Errorf("Angle(Dir(%v)) = %v", theta, got)
		}
	}
}

func TestLexLess(t *testing.T) {
	if !Pt(0, 1).Less(Pt(1, 0)) || !Pt(1, 0).Less(Pt(1, 1)) || Pt(1, 1).Less(Pt(1, 1)) {
		t.Error("lexicographic order broken")
	}
}

func TestOrient2DBasic(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if Orient2D(a, b, Pt(0.5, 1)) != CounterClockwise {
		t.Error("want CCW")
	}
	if Orient2D(a, b, Pt(0.5, -1)) != Clockwise {
		t.Error("want CW")
	}
	if Orient2D(a, b, Pt(2, 0)) != Collinear {
		t.Error("want collinear")
	}
}

// TestOrient2DNearDegenerate exercises the exact fallback: points that are
// collinear by construction but where naive arithmetic is unreliable.
func TestOrient2DNearDegenerate(t *testing.T) {
	// Classic Kettner et al. failure pattern: tiny perturbations around a
	// collinear triple at awkward magnitudes.
	a := Pt(0.5, 0.5)
	b := Pt(12, 12)
	c := Pt(24, 24)
	if Orient2D(a, b, c) != Collinear {
		t.Error("exactly collinear points misclassified")
	}
	// Perturb by one ulp and require a deterministic, consistent answer.
	cUp := Pt(24, math.Nextafter(24, 25))
	cDn := Pt(24, math.Nextafter(24, 23))
	if Orient2D(a, b, cUp) != CounterClockwise {
		t.Error("one-ulp CCW perturbation missed")
	}
	if Orient2D(a, b, cDn) != Clockwise {
		t.Error("one-ulp CW perturbation missed")
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := Pt(rng.NormFloat64(), rng.NormFloat64())
		b := Pt(rng.NormFloat64(), rng.NormFloat64())
		c := Pt(rng.NormFloat64(), rng.NormFloat64())
		o1 := Orient2D(a, b, c)
		if o2 := Orient2D(b, a, c); o2 != -o1 {
			t.Fatalf("swap not antisymmetric: %v vs %v", o1, o2)
		}
		if o3 := Orient2D(c, a, b); o3 != o1 {
			t.Fatalf("cyclic rotation changed orientation: %v vs %v", o1, o3)
		}
	}
}

func TestInCircleBasic(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(1, 0), Pt(0, 1) // CCW unit right triangle
	if InCircle(a, b, c, Pt(0.5, 0.5)) <= 0 {
		t.Error("interior point not inside")
	}
	if InCircle(a, b, c, Pt(5, 5)) >= 0 {
		t.Error("far point not outside")
	}
	if InCircle(a, b, c, Pt(1, 1)) != 0 {
		t.Error("cocircular point not detected") // circle through the 3 pts has center (.5,.5)
	}
}

func TestInCircleMatchesCircumcenter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		if Orient2D(a, b, c) != CounterClockwise {
			a, b = b, a
		}
		if Orient2D(a, b, c) != CounterClockwise {
			continue // collinear
		}
		d := Pt(rng.Float64()*10, rng.Float64()*10)
		o, ok := Circumcenter(a, b, c)
		if !ok {
			continue
		}
		r := o.Dist(a)
		want := 0
		if d.Dist(o) < r-1e-7 {
			want = 1
		} else if d.Dist(o) > r+1e-7 {
			want = -1
		} else {
			continue // too close to the circle for the float reference
		}
		if got := InCircle(a, b, c, d); got != want {
			t.Fatalf("InCircle=%v want %v (a=%v b=%v c=%v d=%v)", got, want, a, b, c, d)
		}
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Keep quick's unbounded float64 inputs in a numerically sane range.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		o, ok := Circumcenter(a, b, c)
		if !ok {
			return true
		}
		ra, rb, rc := o.Dist(a), o.Dist(b), o.Dist(c)
		if math.IsInf(ra, 0) || math.IsNaN(ra) {
			return true
		}
		scale := math.Max(ra, 1)
		return math.Abs(ra-rb) < 1e-5*scale && math.Abs(ra-rc) < 1e-5*scale
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3)),
		Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
