package geom

import (
	"math"
	"math/big"
)

// Orientation constants returned by Orient2D and friends.
const (
	Clockwise        = -1
	Collinear        = 0
	CounterClockwise = 1
)

// orientErrBound is the relative rounding-error bound for the 2x2
// determinant used by Orient2D. If the floating-point determinant exceeds
// this bound times the magnitude of the summands, its sign is certain.
// The constant follows Shewchuk's analysis: (3 + 16u) u with u = 2^-53.
var orientErrBound = (3.0 + 16.0*ulp) * ulp

// inCircleErrBound is the analogous bound for the 4x4 in-circle
// determinant: (10 + 96u) u.
var inCircleErrBound = (10.0 + 96.0*ulp) * ulp

const ulp = 1.1102230246251565e-16 // 2^-53

// Orient2D returns the orientation of the triangle (a, b, c):
// CounterClockwise if c lies to the left of the directed line a->b,
// Clockwise if to the right, and Collinear otherwise. The result is exact:
// a floating-point filter decides the easy cases and a big.Rat evaluation
// decides the rest.
func Orient2D(a, b, c Point) int {
	detL := (b.X - a.X) * (c.Y - a.Y)
	detR := (b.Y - a.Y) * (c.X - a.X)
	det := detL - detR

	var detSum float64
	switch {
	case detL > 0:
		if detR <= 0 {
			return sign(det)
		}
		detSum = detL + detR
	case detL < 0:
		if detR >= 0 {
			return sign(det)
		}
		detSum = -detL - detR
	default:
		return sign(-detR)
	}
	if math.Abs(det) >= orientErrBound*detSum {
		return sign(det)
	}
	return orient2DExact(a, b, c)
}

func orient2DExact(a, b, c Point) int {
	rat := func(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }
	t1 := new(big.Rat).Sub(rat(b.X), rat(a.X))
	t2 := new(big.Rat).Sub(rat(c.Y), rat(a.Y))
	t3 := new(big.Rat).Sub(rat(b.Y), rat(a.Y))
	t4 := new(big.Rat).Sub(rat(c.X), rat(a.X))
	l := new(big.Rat).Mul(t1, t2)
	r := new(big.Rat).Mul(t3, t4)
	return l.Cmp(r)
}

// InCircle reports whether d lies inside the circle through a, b, c.
// It returns +1 if d is strictly inside, -1 if strictly outside and 0 if
// cocircular, assuming (a, b, c) is counterclockwise. The result is exact
// via a floating-point filter with big.Rat fallback.
func InCircle(a, b, c, d Point) int {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	if math.Abs(det) > inCircleErrBound*permanent {
		return sign(det)
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) int {
	rat := func(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }
	adx := new(big.Rat).Sub(rat(a.X), rat(d.X))
	ady := new(big.Rat).Sub(rat(a.Y), rat(d.Y))
	bdx := new(big.Rat).Sub(rat(b.X), rat(d.X))
	bdy := new(big.Rat).Sub(rat(b.Y), rat(d.Y))
	cdx := new(big.Rat).Sub(rat(c.X), rat(d.X))
	cdy := new(big.Rat).Sub(rat(c.Y), rat(d.Y))

	lift := func(x, y *big.Rat) *big.Rat {
		xx := new(big.Rat).Mul(x, x)
		yy := new(big.Rat).Mul(y, y)
		return xx.Add(xx, yy)
	}
	al, bl, cl := lift(adx, ady), lift(bdx, bdy), lift(cdx, cdy)

	m1 := new(big.Rat).Sub(new(big.Rat).Mul(bdx, cdy), new(big.Rat).Mul(cdx, bdy))
	m2 := new(big.Rat).Sub(new(big.Rat).Mul(cdx, ady), new(big.Rat).Mul(adx, cdy))
	m3 := new(big.Rat).Sub(new(big.Rat).Mul(adx, bdy), new(big.Rat).Mul(bdx, ady))

	det := new(big.Rat).Mul(al, m1)
	det.Add(det, new(big.Rat).Mul(bl, m2))
	det.Add(det, new(big.Rat).Mul(cl, m3))
	return det.Sign()
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Circumcenter returns the center of the circle through a, b, c and true,
// or the zero point and false if the points are (near-)collinear.
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * ((a.X-c.X)*(b.Y-c.Y) - (a.Y-c.Y)*(b.X-c.X))
	if d == 0 {
		return Point{}, false
	}
	al := a.Norm2() - c.Norm2()
	bl := b.Norm2() - c.Norm2()
	ux := (al*(b.Y-c.Y) - bl*(a.Y-c.Y)) / d
	uy := (bl*(a.X-c.X) - al*(b.X-c.X)) / d
	return Point{ux, uy}, true
}
