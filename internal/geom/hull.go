package geom

import "sort"

// ConvexHull returns the convex hull of pts in counterclockwise order
// (Andrew's monotone chain). Collinear points on the hull boundary are
// discarded. The input slice is not modified.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n <= 2 {
		out := make([]Point, n)
		copy(out, pts)
		if n == 2 && out[0].Eq(out[1]) {
			return out[:1]
		}
		return out
	}
	ps := make([]Point, n)
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) == 1 {
		return ps
	}

	hull := make([]Point, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && Orient2D(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && Orient2D(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// PolygonArea returns the signed area of the polygon (positive if CCW).
func PolygonArea(poly []Point) float64 {
	var a float64
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		a += p.Cross(q)
	}
	return a / 2
}

// PointInConvex reports whether p lies in the closed convex polygon given
// in CCW order. Runs in O(len(poly)).
func PointInConvex(poly []Point, p Point) bool {
	n := len(poly)
	if n == 0 {
		return false
	}
	if n == 1 {
		return poly[0].Eq(p)
	}
	for i := 0; i < n; i++ {
		if Orient2D(poly[i], poly[(i+1)%n], p) < 0 {
			return false
		}
	}
	return true
}

// PointInConvexStrict reports whether p lies strictly inside the convex
// polygon given in CCW order.
func PointInConvexStrict(poly []Point, p Point) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if Orient2D(poly[i], poly[(i+1)%n], p) <= 0 {
			return false
		}
	}
	return true
}

// Centroid returns the arithmetic mean of pts.
func Centroid(pts []Point) Point {
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	if len(pts) > 0 {
		c = c.Scale(1 / float64(len(pts)))
	}
	return c
}
