package geom

import "math"

// Segment is a closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Len returns the length of s.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Bounds returns the bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// At returns the point A + t(B-A).
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// Mid returns the midpoint of s.
func (s Segment) Mid() Point { return Midpoint(s.A, s.B) }

// DistToPoint returns the distance from p to the closed segment s.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.At(t))
}

// SegIntersection describes how two segments meet.
type SegIntersection struct {
	// OK is true if the segments intersect in at least one point.
	OK bool
	// P is an intersection point (for overlapping collinear segments, one
	// point of the shared portion).
	P Point
	// T, U are the parameters of P along the first and second segment.
	T, U float64
	// Proper is true if the segments cross transversally at an interior
	// point of both.
	Proper bool
	// Overlap is true if the segments are collinear and share a
	// non-degenerate portion.
	Overlap bool
}

// Intersect computes the intersection of segments s and o. Endpoint
// touches are reported with Proper=false. Collinear overlaps set Overlap.
func (s Segment) Intersect(o Segment) SegIntersection {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	denom := r.Cross(d)
	diff := o.A.Sub(s.A)

	if denom == 0 {
		// Parallel. Check collinearity.
		if diff.Cross(r) != 0 {
			return SegIntersection{}
		}
		// Collinear: project onto r.
		rl2 := r.Norm2()
		if rl2 == 0 {
			// s is a point.
			if o.DistToPoint(s.A) == 0 {
				return SegIntersection{OK: true, P: s.A}
			}
			return SegIntersection{}
		}
		t0 := diff.Dot(r) / rl2
		t1 := o.B.Sub(s.A).Dot(r) / rl2
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		lo, hi = math.Max(lo, 0), math.Min(hi, 1)
		if lo > hi {
			return SegIntersection{}
		}
		p := s.At(lo)
		return SegIntersection{OK: true, P: p, T: lo, Overlap: hi > lo}
	}

	t := diff.Cross(d) / denom
	u := diff.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return SegIntersection{}
	}
	proper := t > 0 && t < 1 && u > 0 && u < 1
	return SegIntersection{OK: true, P: s.At(t), T: t, U: u, Proper: proper}
}

// YAt returns the y-coordinate of the (non-vertical) segment's supporting
// line at the given x.
func (s Segment) YAt(x float64) float64 {
	if s.A.X == s.B.X {
		return math.Min(s.A.Y, s.B.Y)
	}
	t := (x - s.A.X) / (s.B.X - s.A.X)
	return s.A.Y + t*(s.B.Y-s.A.Y)
}

// Line is the infinite line {(x,y) : A*x + B*y = C}, with (A,B) != (0,0).
type Line struct {
	A, B, C float64
}

// LineThrough returns the line through two distinct points.
func LineThrough(p, q Point) Line {
	d := q.Sub(p)
	n := d.Rot90()
	return Line{A: n.X, B: n.Y, C: n.Dot(p)}
}

// Bisector returns the perpendicular bisector of p and q, oriented so that
// Side(x) < 0 on p's side.
func Bisector(p, q Point) Line {
	d := q.Sub(p)
	m := Midpoint(p, q)
	return Line{A: d.X, B: d.Y, C: d.Dot(m)}
}

// Side returns A*x + B*y - C; its sign tells which side of the line x is on.
func (l Line) Side(p Point) float64 { return l.A*p.X + l.B*p.Y - l.C }

// IntersectLine returns the intersection point of two lines, or false if
// they are parallel.
func (l Line) IntersectLine(m Line) (Point, bool) {
	det := l.A*m.B - l.B*m.A
	if det == 0 {
		return Point{}, false
	}
	x := (l.C*m.B - l.B*m.C) / det
	y := (l.A*m.C - l.C*m.A) / det
	return Point{x, y}, true
}

// ClipToRect clips the line to rectangle r and returns the resulting
// segment, or false if the line misses r.
func (l Line) ClipToRect(r Rect) (Segment, bool) {
	// Liang-Barsky style: parameterize along the dominant direction.
	d := Point{l.B, -l.A} // direction of the line
	var p0 Point
	// A point on the line: solve for the larger coefficient.
	if math.Abs(l.A) >= math.Abs(l.B) {
		p0 = Point{l.C / l.A, 0}
	} else {
		p0 = Point{0, l.C / l.B}
	}
	tmin, tmax := math.Inf(-1), math.Inf(1)
	clip := func(p, q, lo, hi float64) bool {
		if q == 0 {
			return p >= lo && p <= hi
		}
		t0 := (lo - p) / q
		t1 := (hi - p) / q
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		tmin = math.Max(tmin, t0)
		tmax = math.Min(tmax, t1)
		return tmin <= tmax
	}
	if !clip(p0.X, d.X, r.Min.X, r.Max.X) || !clip(p0.Y, d.Y, r.Min.Y, r.Max.Y) {
		return Segment{}, false
	}
	if math.IsInf(tmin, 0) || math.IsInf(tmax, 0) || tmin > tmax {
		return Segment{}, false
	}
	return Segment{p0.Add(d.Scale(tmin)), p0.Add(d.Scale(tmax))}, true
}

// ClipToRect clips the segment to rectangle r (Liang–Barsky). ok is false
// if the segment misses r entirely.
func (s Segment) ClipToRect(r Rect) (Segment, bool) {
	d := s.B.Sub(s.A)
	t0, t1 := 0.0, 1.0
	// Each constraint has the form p*t <= q.
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return t0 <= t1
	}
	if !clip(-d.X, s.A.X-r.Min.X) || !clip(d.X, r.Max.X-s.A.X) ||
		!clip(-d.Y, s.A.Y-r.Min.Y) || !clip(d.Y, r.Max.Y-s.A.Y) {
		return Segment{}, false
	}
	return Segment{s.At(t0), s.At(t1)}, true
}

// OnRectBoundary reports whether the whole segment lies on one side of
// rectangle r (within tol) — used to discard clipping artifacts.
func (s Segment) OnRectBoundary(r Rect, tol float64) bool {
	for _, side := range []float64{r.Min.X, r.Max.X} {
		if math.Abs(s.A.X-side) <= tol && math.Abs(s.B.X-side) <= tol {
			return true
		}
	}
	for _, side := range []float64{r.Min.Y, r.Max.Y} {
		if math.Abs(s.A.Y-side) <= tol && math.Abs(s.B.Y-side) <= tol {
			return true
		}
	}
	return false
}
