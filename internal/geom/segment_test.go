package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegIntersectProper(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(2, 2))
	o := Seg(Pt(0, 2), Pt(2, 0))
	x := s.Intersect(o)
	if !x.OK || !x.Proper {
		t.Fatalf("want proper intersection, got %+v", x)
	}
	if !x.P.NearEq(Pt(1, 1), 1e-12) {
		t.Errorf("P = %v", x.P)
	}
	if math.Abs(x.T-0.5) > 1e-12 || math.Abs(x.U-0.5) > 1e-12 {
		t.Errorf("T=%v U=%v", x.T, x.U)
	}
}

func TestSegIntersectEndpointTouch(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	o := Seg(Pt(1, 0), Pt(1, 5))
	x := s.Intersect(o)
	if !x.OK || x.Proper {
		t.Fatalf("want non-proper touch, got %+v", x)
	}
	if !x.P.NearEq(Pt(1, 0), 1e-12) {
		t.Errorf("P = %v", x.P)
	}
}

func TestSegIntersectDisjointAndParallel(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	if x := s.Intersect(Seg(Pt(0, 1), Pt(1, 1))); x.OK {
		t.Error("parallel disjoint reported as intersecting")
	}
	if x := s.Intersect(Seg(Pt(2, -1), Pt(2, 1))); x.OK {
		t.Error("disjoint reported as intersecting")
	}
}

func TestSegIntersectCollinearOverlap(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(2, 0))
	o := Seg(Pt(1, 0), Pt(3, 0))
	x := s.Intersect(o)
	if !x.OK || !x.Overlap {
		t.Fatalf("want overlap, got %+v", x)
	}
	// Collinear but disjoint:
	if x := s.Intersect(Seg(Pt(3, 0), Pt(4, 0))); x.OK {
		t.Error("collinear disjoint reported as intersecting")
	}
	// Collinear touching at one point:
	x = s.Intersect(Seg(Pt(2, 0), Pt(4, 0)))
	if !x.OK || x.Overlap {
		t.Fatalf("collinear endpoint touch misreported: %+v", x)
	}
}

func TestSegIntersectRandomAgainstParametric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		s := Seg(randPt(rng), randPt(rng))
		o := Seg(randPt(rng), randPt(rng))
		x := s.Intersect(o)
		if x.OK && !x.Overlap {
			// The reported point must lie (nearly) on both segments.
			if d := s.DistToPoint(x.P); d > 1e-7 {
				t.Fatalf("P off first segment by %v", d)
			}
			if d := o.DistToPoint(x.P); d > 1e-7 {
				t.Fatalf("P off second segment by %v", d)
			}
		}
		if !x.OK {
			// Sample both segments and verify no near-coincidence ever occurs.
			for k := 0; k < 5; k++ {
				p := s.At(rng.Float64())
				if o.DistToPoint(p) < 1e-12 {
					t.Fatalf("missed intersection: %v on both", p)
				}
			}
		}
	}
}

func randPt(rng *rand.Rand) Point {
	return Pt(rng.Float64()*20-10, rng.Float64()*20-10)
}

func TestDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p Point
		d float64
	}{
		{Pt(5, 3), 3}, {Pt(-4, 3), 5}, {Pt(13, 4), 5}, {Pt(7, 0), 0},
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.d) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v want %v", c.p, got, c.d)
		}
	}
	// Degenerate segment.
	pt := Seg(Pt(1, 1), Pt(1, 1))
	if got := pt.DistToPoint(Pt(4, 5)); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestLineThroughAndBisector(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 1))
	if math.Abs(l.Side(Pt(2, 2))) > 1e-12 {
		t.Error("point on line has nonzero side")
	}
	b := Bisector(Pt(0, 0), Pt(2, 0))
	if math.Abs(b.Side(Pt(1, 7))) > 1e-12 {
		t.Error("bisector misses equidistant point")
	}
	if b.Side(Pt(0, 0)) >= 0 {
		t.Error("bisector orientation: p-side should be negative")
	}
	if b.Side(Pt(2, 0)) <= 0 {
		t.Error("bisector orientation: q-side should be positive")
	}
}

func TestLineIntersectLine(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(1, 1))
	m := LineThrough(Pt(0, 2), Pt(2, 0))
	p, ok := l.IntersectLine(m)
	if !ok || !p.NearEq(Pt(1, 1), 1e-12) {
		t.Errorf("got %v ok=%v", p, ok)
	}
	if _, ok := l.IntersectLine(LineThrough(Pt(0, 1), Pt(1, 2))); ok {
		t.Error("parallel lines reported as intersecting")
	}
}

func TestLineClipToRect(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(10, 10)}
	l := LineThrough(Pt(-5, 5), Pt(15, 5)) // horizontal through middle
	s, ok := l.ClipToRect(r)
	if !ok {
		t.Fatal("clip missed rectangle")
	}
	if math.Abs(s.Len()-10) > 1e-9 {
		t.Errorf("clipped length %v", s.Len())
	}
	// Line that misses the box.
	if _, ok := LineThrough(Pt(-1, 20), Pt(1, 20)).ClipToRect(r); ok {
		t.Error("line above box reported as hitting")
	}
	// Random lines: clipped endpoints must be inside (slightly inflated) box
	// and on the line.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p, q := randPt(rng), randPt(rng)
		if p.Eq(q) {
			continue
		}
		l := LineThrough(p, q)
		s, ok := l.ClipToRect(r)
		if !ok {
			continue
		}
		big := r.Inflate(1e-6)
		if !big.Contains(s.A) || !big.Contains(s.B) {
			t.Fatalf("clip outside box: %+v", s)
		}
		if math.Abs(l.Side(s.A)) > 1e-6*(1+math.Abs(l.C)) || math.Abs(l.Side(s.B)) > 1e-6*(1+math.Abs(l.C)) {
			t.Fatalf("clip endpoints off line: %+v", s)
		}
	}
}
