package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1),
		Pt(0.5, 0.5), Pt(0.25, 0.75), // interior
		Pt(0.5, 0), // on an edge
	}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size %d: %v", len(h), h)
	}
	if PolygonArea(h) <= 0 {
		t.Error("hull not CCW")
	}
	if math.Abs(PolygonArea(h)-1) > 1e-12 {
		t.Errorf("hull area %v", PolygonArea(h))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Error("nil input")
	}
	if h := ConvexHull([]Point{Pt(1, 2)}); len(h) != 1 {
		t.Error("single point")
	}
	if h := ConvexHull([]Point{Pt(1, 2), Pt(1, 2), Pt(1, 2)}); len(h) != 1 {
		t.Errorf("all-duplicates: %v", h)
	}
	// Collinear points: hull is the two extremes.
	h := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(h) != 2 {
		t.Fatalf("collinear hull: %v", h)
	}
}

// Property: every input point lies inside the hull, and hull vertices are
// input points in convex position.
func TestConvexHullProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10, rng.Float64()*10)
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			continue
		}
		for _, p := range pts {
			if !PointInConvex(h, p) {
				t.Fatalf("input point %v outside hull", p)
			}
		}
		for i := range h {
			a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
			if Orient2D(a, b, c) != CounterClockwise {
				t.Fatalf("hull not strictly convex at %d", i)
			}
		}
	}
}

func TestPointInConvexStrict(t *testing.T) {
	sq := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !PointInConvexStrict(sq, Pt(1, 1)) {
		t.Error("interior not strict-in")
	}
	if PointInConvexStrict(sq, Pt(0, 1)) {
		t.Error("boundary is strict-in")
	}
	if !PointInConvex(sq, Pt(0, 1)) {
		t.Error("boundary not closed-in")
	}
	if PointInConvex(sq, Pt(-0.1, 1)) {
		t.Error("outside is in")
	}
}

func TestSmallestEnclosingDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		d := SmallestEnclosingDisk(pts, rng)
		// All points contained (with tolerance).
		for _, p := range pts {
			if p.Dist(d.C) > d.R*(1+1e-9)+1e-9 {
				t.Fatalf("point %v outside SEB %v (excess %v)", p, d, p.Dist(d.C)-d.R)
			}
		}
		// Minimality heuristic check: shrinking by 0.5% must exclude a point
		// (unless all points coincide).
		if d.R > 1e-9 {
			shrunk := Disk{d.C, d.R * 0.995}
			all := true
			for _, p := range pts {
				if p.Dist(shrunk.C) > shrunk.R+1e-12 {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("SEB not minimal: radius %v can shrink", d.R)
			}
		}
	}
}

func TestSmallestEnclosingDiskKnown(t *testing.T) {
	pts := []Point{Pt(-1, 0), Pt(1, 0), Pt(0, 0.2)}
	d := SmallestEnclosingDisk(pts, nil)
	if !d.C.NearEq(Pt(0, 0), 1e-9) || math.Abs(d.R-1) > 1e-9 {
		t.Errorf("SEB = %+v want unit disk at origin", d)
	}
}

func TestHalfPlaneIntersection(t *testing.T) {
	box := Rect{Pt(-100, -100), Pt(100, 100)}
	// Unit square via 4 half-planes.
	hs := []HalfPlane{
		{A: -1, B: 0, C: 0}, // x >= 0
		{A: 1, B: 0, C: 1},  // x <= 1
		{A: 0, B: -1, C: 0}, // y >= 0
		{A: 0, B: 1, C: 1},  // y <= 1
	}
	poly := HalfPlaneIntersection(hs, box)
	if len(poly) != 4 {
		t.Fatalf("poly = %v", poly)
	}
	if math.Abs(PolygonArea(poly)-1) > 1e-9 {
		t.Errorf("area = %v", PolygonArea(poly))
	}
	// Infeasible system.
	hs = append(hs, HalfPlane{A: -1, B: 0, C: -5}) // x >= 5
	if poly := HalfPlaneIntersection(hs, box); poly != nil {
		t.Errorf("infeasible system gave %v", poly)
	}
}

// Property: the clipped polygon is exactly the subset of the box
// satisfying all constraints — verified by sampling.
func TestHalfPlaneIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	box := Rect{Pt(-10, -10), Pt(10, 10)}
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(8)
		hs := make([]HalfPlane, m)
		for i := range hs {
			hs[i] = HalfPlane{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64() * 5}
		}
		poly := HalfPlaneIntersection(hs, box)
		for k := 0; k < 200; k++ {
			p := Pt(rng.Float64()*20-10, rng.Float64()*20-10)
			margin := math.Inf(-1) // max over constraints of Eval(p)
			for _, h := range hs {
				if v := h.Eval(p); v > margin {
					margin = v
				}
			}
			got := len(poly) >= 3 && PointInConvex(poly, p)
			if margin < -1e-6 && !got {
				t.Fatalf("point %v satisfies all constraints but outside polygon", p)
			}
			if margin > 1e-6 && got {
				t.Fatalf("point %v violates a constraint but inside polygon", p)
			}
		}
	}
}
