package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func clampQ(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

// Property (testing/quick): segment clipping returns a sub-segment of the
// input that lies inside the rectangle, and misses only when the segment
// truly avoids the rectangle.
func TestQuickClipToRect(t *testing.T) {
	r := Rect{Min: Pt(-10, -10), Max: Pt(10, 10)}
	f := func(ax, ay, bx, by float64) bool {
		s := Seg(Pt(clampQ(ax), clampQ(ay)), Pt(clampQ(bx), clampQ(by)))
		c, ok := s.ClipToRect(r)
		if ok {
			big := r.Inflate(1e-9)
			if !big.Contains(c.A) || !big.Contains(c.B) {
				return false
			}
			// Clipped endpoints must lie on the original segment.
			if s.DistToPoint(c.A) > 1e-9*(1+s.Len()) || s.DistToPoint(c.B) > 1e-9*(1+s.Len()) {
				return false
			}
			return true
		}
		// No intersection claimed: sampling must confirm.
		for i := 0; i <= 20; i++ {
			if r.Contains(s.At(float64(i) / 20)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): the convex hull contains every input point
// and is convex.
func TestQuickConvexHull(t *testing.T) {
	f := func(coords []float64) bool {
		pts := make([]Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Pt(clampQ(coords[i]), clampQ(coords[i+1])))
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			return true
		}
		for _, p := range pts {
			if !PointInConvex(h, p) {
				return false
			}
		}
		for i := range h {
			if Orient2D(h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]) != CounterClockwise {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): the smallest enclosing disk contains all
// points and is determined by at most three of them (its radius cannot
// shrink without losing a point).
func TestQuickSmallestEnclosingDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func(coords []float64) bool {
		pts := make([]Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Pt(clampQ(coords[i]), clampQ(coords[i+1])))
		}
		if len(pts) == 0 {
			return true
		}
		d := SmallestEnclosingDisk(pts, rng)
		for _, p := range pts {
			if p.Dist(d.C) > d.R*(1+1e-9)+1e-9 {
				return false
			}
		}
		if d.R < 1e-9 {
			return true
		}
		shrunk := d.R * 0.99
		for _, p := range pts {
			if p.Dist(d.C) > shrunk+1e-12 {
				return true // some point pins the radius
			}
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): the circular lens area is symmetric,
// monotone in either radius, and bounded by the smaller disk's area.
func TestQuickLensArea(t *testing.T) {
	f := func(ax, ay, ar, bx, by, br float64) bool {
		a := DiskAt(clampQ(ax), clampQ(ay), math.Abs(clampQ(ar))+0.1)
		b := DiskAt(clampQ(bx), clampQ(by), math.Abs(clampQ(br))+0.1)
		l1, l2 := a.LensArea(b), b.LensArea(a)
		if math.Abs(l1-l2) > 1e-6*(1+l1) {
			return false
		}
		if l1 < -1e-12 || l1 > math.Min(a.Area(), b.Area())+1e-9 {
			return false
		}
		grown := Disk{C: b.C, R: b.R * 1.1}
		return a.LensArea(grown) >= l1-1e-9
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(74))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
