package geom

import "math/rand"

// SmallestEnclosingDisk returns the smallest disk containing all pts
// (Welzl's randomized algorithm, expected linear time). The result is the
// exact smallest enclosing disk up to floating-point rounding; a small
// tolerance is used in the containment tests to keep the recursion stable.
//
// The nonzero-NN structures use it as the per-point summary (o_i, rho_i)
// with the invariants d(q,o_i) <= maxdist_i(q) <= d(q,o_i) + rho_i.
func SmallestEnclosingDisk(pts []Point, rng *rand.Rand) Disk {
	if len(pts) == 0 {
		return Disk{}
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5eb))
	}
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })

	d := Disk{C: ps[0], R: 0}
	for i := 1; i < len(ps); i++ {
		if sebContains(d, ps[i]) {
			continue
		}
		d = Disk{C: ps[i], R: 0}
		for j := 0; j < i; j++ {
			if sebContains(d, ps[j]) {
				continue
			}
			d = diskFrom2(ps[i], ps[j])
			for k := 0; k < j; k++ {
				if sebContains(d, ps[k]) {
					continue
				}
				d = diskFrom3(ps[i], ps[j], ps[k])
			}
		}
	}
	return d
}

func sebContains(d Disk, p Point) bool {
	return d.C.Dist2(p) <= d.R*d.R*(1+1e-12)+1e-24
}

func diskFrom2(a, b Point) Disk {
	c := Midpoint(a, b)
	return Disk{C: c, R: c.Dist(a)}
}

func diskFrom3(a, b, c Point) Disk {
	o, ok := Circumcenter(a, b, c)
	if !ok {
		// Collinear: the two farthest points determine the disk.
		d1, d2, d3 := diskFrom2(a, b), diskFrom2(a, c), diskFrom2(b, c)
		best := d1
		if d2.R > best.R {
			best = d2
		}
		if d3.R > best.R {
			best = d3
		}
		return best
	}
	return Disk{C: o, R: o.Dist(a)}
}
