package experiments

import (
	"encoding/json"
	"io"
	"math/rand"
	"time"

	"unn/internal/constructions"
	"unn/internal/engine"
	"unn/internal/geom"
	"unn/internal/lmetric"
)

// randomSquares draws n random L∞ balls (shared by the lmetric backends).
func randomSquares(rng *rand.Rand, n int, side float64) []lmetric.Square {
	sq := make([]lmetric.Square, n)
	for i := range sq {
		sq[i] = lmetric.Square{
			C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
			R: 0.5 + rng.Float64()*1.5,
		}
	}
	return sq
}

// BenchRecord is one row of the machine-readable engine benchmark
// (BENCH_engine.json): one backend at one instance size, with build cost
// and per-query cost through the sequential and parallel batch paths.
// The schema is stable across PRs so the perf trajectory can be tracked.
type BenchRecord struct {
	Backend   string  `json:"backend"`
	N         int     `json:"n"`
	Queries   int     `json:"queries"`
	Workers   int     `json:"workers"`
	BuildNs   int64   `json:"build_ns"`
	QueryNsOp float64 `json:"query_ns_op"` // sequential single queries
	BatchNsOp float64 `json:"batch_ns_op"` // parallel batch, per query
}

// WriteBenchJSON renders records as indented JSON (the BENCH_engine.json
// payload).
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// engineWorkloads describes the per-backend sweep: every adapted backend
// is exercised by this one driver through the same engine.Index
// interface — the point of the engine layer.
type engineWorkload struct {
	backend engine.Backend
	ns      []int // instance sizes (number of uncertain points)
	quickNs []int
	opt     engine.BuildOptions
}

func engineWorkloads() []engineWorkload {
	mc := engine.BuildOptions{MCRounds: 48, MCParallel: true}
	return []engineWorkload{
		{engine.BackendBrute, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendDiagram, []int{16, 32}, []int{12}, engine.BuildOptions{}},
		{engine.BackendTwoStageDisks, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageDiscrete, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendVPr, []int{4, 6}, []int{4}, engine.BuildOptions{}},
		{engine.BackendMonteCarlo, []int{200, 1000}, []int{100}, mc},
		{engine.BackendSpiral, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendExpected, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageLinf, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageL1, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
	}
}

// engineDataset builds the dataset a backend needs at size n, plus the
// side of the square domain it occupies (queries are drawn from the
// same window so the timings reflect typical, not corner, queries).
func engineDataset(b engine.Backend, n int, rng *rand.Rand) (*engine.Dataset, float64) {
	switch b {
	case engine.BackendDiagram, engine.BackendTwoStageDisks:
		return engine.FromDisks(constructions.RandomDisks(rng, n, 40, 0.5, 2.0)), 40
	case engine.BackendTwoStageLinf, engine.BackendTwoStageL1:
		return engine.FromSquares(randomSquares(rng, n, 40)), 40
	default:
		// Side grows with n to keep the location density constant.
		side := 10 * float64(n)
		return engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 3, side, 2.0, 1)), side
	}
}

// EngineBench runs every adapted backend through the engine layer —
// build, 256 single queries, and the same 256 queries through the
// parallel batch path — and returns the machine-readable records plus
// the human-readable table.
func EngineBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E16",
		Title:  "engine layer: every backend through one Index interface",
		Claim:  "one driver exercises all backends; batch path parallelizes the hot loop",
		Header: []string{"backend", "n", "build", "singleQ", "batchQ", "workers"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	var recs []BenchRecord
	for _, w := range engineWorkloads() {
		ns := w.ns
		if opt.Quick {
			ns = w.quickNs
		}
		for _, n := range ns {
			ds, side := engineDataset(w.backend, n, rng)
			var ix engine.Index
			var err error
			build := timeIt(func() { ix, err = engine.Build(w.backend, ds, w.opt) })
			if err != nil {
				t.Note("%s n=%d: %v", w.backend, n, err)
				continue
			}
			eng := engine.NewEngine(ix, engine.Options{})
			qs := make([]geom.Point, 256)
			for i := range qs {
				qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
			}
			caps := ix.Capabilities()
			var single, batchTot time.Duration
			run := func(one func(q geom.Point) error, all func() error) error {
				single = timePer(len(qs), func(i int) {
					if e := one(qs[i]); e != nil && err == nil {
						err = e
					}
				})
				batchTot = timeIt(func() {
					if e := all(); e != nil && err == nil {
						err = e
					}
				})
				return err
			}
			switch {
			case caps.Has(engine.CapNonzero):
				err = run(
					func(q geom.Point) error { _, e := eng.QueryNonzero(q); return e },
					func() error { _, e := eng.BatchNonzero(qs); return e })
			case caps.Has(engine.CapProbs):
				err = run(
					func(q geom.Point) error { _, e := eng.QueryProbs(q, 0); return e },
					func() error { _, e := eng.BatchProbs(qs, 0); return e })
			default:
				err = run(
					func(q geom.Point) error { _, _, e := eng.QueryExpected(q); return e },
					func() error { _, e := eng.BatchExpected(qs); return e })
			}
			if err != nil {
				t.Note("%s n=%d: %v", w.backend, n, err)
				continue
			}
			batchPer := batchTot / time.Duration(len(qs))
			recs = append(recs, BenchRecord{
				Backend:   string(w.backend),
				N:         n,
				Queries:   len(qs),
				Workers:   eng.Workers(),
				BuildNs:   build.Nanoseconds(),
				QueryNsOp: float64(single.Nanoseconds()),
				BatchNsOp: float64(batchPer.Nanoseconds()),
			})
			t.AddRow(string(w.backend), itoa(n), dtoa(build), dtoa(single), dtoa(batchPer),
				itoa(eng.Workers()))
		}
	}
	t.Note("batchQ is per-query cost through the parallel batch path (workers = NumCPU)")
	return recs, t
}

// E16Engine is the Table-only driver registered in All.
func E16Engine(opt Options) *Table {
	_, t := EngineBench(opt)
	return t
}
