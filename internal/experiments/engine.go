package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"strings"
	"time"

	"unn/internal/constructions"
	"unn/internal/engine"
	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/uncertain"
)

// randomSquares draws n random L∞ balls (shared by the lmetric backends).
func randomSquares(rng *rand.Rand, n int, side float64) []lmetric.Square {
	sq := make([]lmetric.Square, n)
	for i := range sq {
		sq[i] = lmetric.Square{
			C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
			R: 0.5 + rng.Float64()*1.5,
		}
	}
	return sq
}

// BenchRecord is one row of the machine-readable engine benchmark
// (BENCH_engine.json): one backend at one instance size, with build cost
// and per-query cost through the sequential and parallel batch paths.
// The schema is stable across PRs so the perf trajectory can be tracked.
type BenchRecord struct {
	// Exp tags the sweep that produced the record ("E16" backend sweep,
	// "E17" shard-scaling sweep), so trajectory tooling can select rows
	// without guessing from field shapes.
	Exp       string  `json:"exp"`
	Backend   string  `json:"backend"`
	N         int     `json:"n"`
	Queries   int     `json:"queries"`
	Workers   int     `json:"workers"`
	BuildNs   int64   `json:"build_ns"`
	QueryNsOp float64 `json:"query_ns_op"` // sequential single queries
	BatchNsOp float64 `json:"batch_ns_op"` // parallel batch, per query
	// AllocsPerQuery is the steady-state heap allocations per single
	// NN≠0 query through the zero-alloc path (QueryNonzeroInto), with
	// scratch pools warm; -1 when the row's backend does not serve NN≠0
	// or the sweep does not measure allocations. The flat-kernel PR's
	// acceptance bar is 0 for the brute / two-stage / sharded rows
	// (cmd/benchdiff warns when a measured row drifts above zero).
	AllocsPerQuery float64 `json:"allocs_per_query"`
	// Shards is the shard count of the sharded execution layer; 0 is the
	// monolithic path (all E16 rows, and the E17 baseline row).
	Shards int `json:"shards"`
	// CacheHitRate is the striped-LRU hit rate (hits / lookups, 0–1) on
	// the hotspot serving workload with quantized cache keys.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MutateNsOp is the amortized per-mutation cost (insert/delete with
	// incremental rebalancing) on the E18 streaming workload; 0 outside
	// E18.
	MutateNsOp float64 `json:"mutate_ns_op,omitempty"`
	// RebuildNsOp is the E18 baseline: the cost of rebuilding the whole
	// sharded index from scratch, i.e. what one mutation would cost
	// without the dynamic layer; 0 outside E18.
	RebuildNsOp float64 `json:"rebuild_ns_op,omitempty"`
	// CacheQuantum is the adaptive cache quantum the hit-rate probe
	// resolved from the built structure (cell extents / centroid
	// spacing); 0 when the probe fell back to exact keys.
	CacheQuantum float64 `json:"cache_quantum,omitempty"`
	// Plan describes the cost-based planner's per-kind backend assignment
	// on the E19 row measuring it; empty elsewhere.
	Plan string `json:"plan,omitempty"`
	// BufferHitRate is the fraction of inserts the E20 log-structured
	// insert buffer absorbed without a main-shard rebuild
	// (1 − flushes/inserts); 0 outside the E20 buffer row.
	BufferHitRate float64 `json:"buffer_hit_rate,omitempty"`
	// SnapshotLoadNs is the time to restore the engine from its binary
	// snapshot (E21); cmd/benchdiff warns when build_ns/snapshot_load_ns
	// falls below the 10× acceptance bar. 0 outside E21.
	SnapshotLoadNs int64 `json:"snapshot_load_ns,omitempty"`
	// SnapshotBytes is the encoded snapshot size (E21); cmd/benchdiff
	// warns when it grows >20% against the committed baseline.
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Parity fingerprints answer equivalence between the live and the
	// restored engine on the E21 row: "ok:<fnv32a over NN≠0 answers>"
	// when live and restored hash identically (and Explain matches).
	// E23 reuses it for tiled-vs-scalar batch parity. Otherwise the
	// mismatch kind.
	Parity string `json:"parity,omitempty"`
	// Batches, MeanBatchSize and TileOccupancy surface the tiled batch
	// executor's counters on E23 tiled rows: batches the engine served
	// during the sweep, mean queries per batch, and the fraction of tile
	// lanes occupied by real queries (ragged final tiles lower it).
	// 0 outside E23.
	Batches       uint64  `json:"batches,omitempty"`
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`
	TileOccupancy float64 `json:"tile_occupancy,omitempty"`
	// Replans and ReplanReason surface the adaptive replanning loop on
	// the E24 adaptive row: how many replan-and-swap cycles the drifted
	// stream triggered and the detector's last reason. 0/"" outside E24
	// and on the frozen row.
	Replans      uint64 `json:"replans,omitempty"`
	ReplanReason string `json:"replan_reason,omitempty"`
}

// WriteBenchJSON renders records as indented JSON (the BENCH_engine.json
// payload).
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// engineWorkloads describes the per-backend sweep: every adapted backend
// is exercised by this one driver through the same engine.Index
// interface — the point of the engine layer.
type engineWorkload struct {
	backend engine.Backend
	ns      []int // instance sizes (number of uncertain points)
	quickNs []int
	opt     engine.BuildOptions
}

func engineWorkloads() []engineWorkload {
	mc := engine.BuildOptions{MCRounds: 48, MCParallel: true}
	return []engineWorkload{
		{engine.BackendBrute, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendDiagram, []int{16, 32}, []int{12}, engine.BuildOptions{}},
		{engine.BackendTwoStageDisks, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageDiscrete, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendVPr, []int{4, 6}, []int{4}, engine.BuildOptions{}},
		{engine.BackendMonteCarlo, []int{200, 1000}, []int{100}, mc},
		{engine.BackendSpiral, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendExpected, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageLinf, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
		{engine.BackendTwoStageL1, []int{200, 1000}, []int{100}, engine.BuildOptions{}},
	}
}

// engineDataset builds the dataset a backend needs at size n, plus the
// side of the square domain it occupies (queries are drawn from the
// same window so the timings reflect typical, not corner, queries).
func engineDataset(b engine.Backend, n int, rng *rand.Rand) (*engine.Dataset, float64) {
	switch b {
	case engine.BackendDiagram, engine.BackendTwoStageDisks:
		return engine.FromDisks(constructions.RandomDisks(rng, n, 40, 0.5, 2.0)), 40
	case engine.BackendTwoStageLinf, engine.BackendTwoStageL1:
		return engine.FromSquares(randomSquares(rng, n, 40)), 40
	default:
		// Side grows with n to keep the location density constant.
		side := 10 * float64(n)
		return engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 3, side, 2.0, 1)), side
	}
}

// EngineBench runs every adapted backend through the engine layer —
// build, 256 single queries, and the same 256 queries through the
// parallel batch path — and returns the machine-readable records plus
// the human-readable table.
func EngineBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E16",
		Title:  "engine layer: every backend through one Index interface",
		Claim:  "one driver exercises all backends; batch path parallelizes the hot loop",
		Header: []string{"backend", "n", "build", "singleQ", "batchQ", "workers", "allocs", "cacheHit"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	var recs []BenchRecord
	for _, w := range engineWorkloads() {
		ns := w.ns
		if opt.Quick {
			ns = w.quickNs
		}
		for _, n := range ns {
			ds, side := engineDataset(w.backend, n, rng)
			var ix engine.Index
			var err error
			build := timeIt(func() { ix, err = engine.Build(w.backend, ds, w.opt) })
			if err != nil {
				t.Note("%s n=%d: %v", w.backend, n, err)
				continue
			}
			eng := engine.NewEngine(ix, engine.Options{})
			qs := make([]geom.Point, 256)
			for i := range qs {
				qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
			}
			caps := ix.Capabilities()
			var single, batchTot time.Duration
			run := func(one func(q geom.Point) error, all func() error) error {
				single = timePer(len(qs), func(i int) {
					if e := one(qs[i]); e != nil && err == nil {
						err = e
					}
				})
				batchTot = timeIt(func() {
					if e := all(); e != nil && err == nil {
						err = e
					}
				})
				return err
			}
			switch {
			case caps.Has(engine.CapNonzero):
				err = run(
					func(q geom.Point) error { _, e := eng.QueryNonzero(q); return e },
					func() error { _, e := eng.BatchNonzero(qs); return e })
			case caps.Has(engine.CapProbs):
				err = run(
					func(q geom.Point) error { _, e := eng.QueryProbs(q, 0); return e },
					func() error { _, e := eng.BatchProbs(qs, 0); return e })
			default:
				err = run(
					func(q geom.Point) error { _, _, e := eng.QueryExpected(q); return e },
					func() error { _, e := eng.BatchExpected(qs); return e })
			}
			if err != nil {
				t.Note("%s n=%d: %v", w.backend, n, err)
				continue
			}
			batchPer := batchTot / time.Duration(len(qs))
			allocs := -1.0
			if caps.Has(engine.CapNonzero) {
				allocs = allocsPerQuery(eng, qs)
			}
			hitRate, quantum := cacheHitRate(ix, caps, side, opt.seed()+int64(n))
			recs = append(recs, BenchRecord{
				Exp:            "E16",
				Backend:        string(w.backend),
				N:              n,
				Queries:        len(qs),
				Workers:        eng.Workers(),
				BuildNs:        build.Nanoseconds(),
				QueryNsOp:      float64(single.Nanoseconds()),
				BatchNsOp:      float64(batchPer.Nanoseconds()),
				AllocsPerQuery: allocs,
				CacheHitRate:   hitRate,
				CacheQuantum:   quantum,
			})
			t.AddRow(string(w.backend), itoa(n), dtoa(build), dtoa(single), dtoa(batchPer),
				itoa(eng.Workers()), allocsCell(allocs), ftoa(hitRate))
		}
	}
	t.Note("batchQ is per-query cost through the parallel batch path (workers = NumCPU)")
	t.Note("allocs is steady-state heap allocations per NN≠0 query via QueryNonzeroInto (- = backend has no NN≠0 path)")
	t.Note("cacheHit is the striped-LRU hit rate on a hotspot workload with quantized keys")
	return recs, t
}

// allocsCell renders an allocs-per-query figure for the table (-1 = not
// measured).
func allocsCell(a float64) string {
	if a < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", a)
}

// allocsPerQuery measures steady-state heap allocations per NN≠0 query
// through the zero-alloc entry point. The warmup pass populates the
// scratch pools and grows the result buffer to its high-water mark;
// the explicit GC then empties the pools, so the measured figure
// honestly charges the one-time pool refill — amortized over the
// measured rounds it stays ≪ 1 for a genuinely allocation-free path.
func allocsPerQuery(eng *engine.Engine, qs []geom.Point) float64 {
	const rounds = 4
	buf := make([]int, 0, 64)
	for _, q := range qs {
		out, err := eng.QueryNonzeroInto(q, buf[:0])
		if err != nil {
			return -1
		}
		buf = out[:0]
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for r := 0; r < rounds; r++ {
		for _, q := range qs {
			out, _ := eng.QueryNonzeroInto(q, buf[:0])
			buf = out[:0]
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds*len(qs))
}

// cacheHitRate measures the striped LRU on a localized serving workload:
// 256 queries cluster around hotspots and cache keys snap to the
// *adaptive* quantum grid — the engine derives the quantum from the
// built structure (diagram cell extents, centroid spacing) — so the rate
// reflects how much answer sharing the workload admits at the
// granularity the structure itself reports. Queries scatter around each
// hotspot at the resolved quantum's scale (repeat lookups near a cached
// answer), so the rate stays comparable as the derivation changes. The
// resolved quantum is returned alongside the rate and recorded in
// BENCH_engine.json.
//
// The probe owns its rng (derived from the caller's seed, not the shared
// sweep stream): consuming the sweep rng here would shift every workload
// generated after it, breaking cross-PR comparability of the records at
// a fixed -seed.
func cacheHitRate(ix engine.Index, caps engine.Capability, side float64, seed int64) (rate, quantum float64) {
	const nq = 256
	rng := rand.New(rand.NewSource(seed ^ 0xcac4e))
	eng := engine.NewEngine(ix, engine.Options{CacheSize: nq, CacheQuantum: -1})
	quantum = eng.CacheQuantum()
	scatter := quantum
	if scatter <= 0 {
		scatter = side / 64
	}
	hotspots := make([]geom.Point, 24)
	for i := range hotspots {
		hotspots[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	for i := 0; i < nq; i++ {
		h := hotspots[rng.Intn(len(hotspots))]
		q := geom.Pt(h.X+rng.NormFloat64()*scatter, h.Y+rng.NormFloat64()*scatter)
		switch {
		case caps.Has(engine.CapNonzero):
			eng.QueryNonzero(q)
		case caps.Has(engine.CapProbs):
			eng.QueryProbs(q, 0)
		default:
			eng.QueryExpected(q)
		}
	}
	hits, misses := eng.CacheStats()
	if hits+misses == 0 {
		return 0, quantum
	}
	return float64(hits) / float64(hits+misses), quantum
}

// ShardBench (E17) sweeps the sharded execution layer on the E17
// workload — a spread-out discrete instance (local query structure, so
// bbox pruning bites) behind the brute backend — and measures batch
// throughput at shard counts k ∈ {0 (monolithic), 1, 2, 4, 8, NumCPU}.
// The acceptance criterion of the sharding PR is ≥1.5× batch throughput
// at k = NumCPU over the monolithic batch path.
func ShardBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E17",
		Title:  "sharded execution layer: shard-scaling sweep (brute backend)",
		Claim:  "per-shard backends + bbox pruning: sharded batch ≥1.5× unsharded batch",
		Header: []string{"n", "shards", "build", "singleQ", "batchQ", "speedup", "allocs", "cacheHit"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 2000
	if opt.Quick {
		n = 800
	}
	side := float64(n)
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 2, side, 2.0, 1))
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	// The acceptance criterion is stated at k = NumCPU, so that row is
	// always present whatever the core count.
	ks := []int{0, 1, 2, 4, 8}
	if c := runtime.NumCPU(); !slices.Contains(ks, c) {
		ks = append(ks, c)
	}
	var recs []BenchRecord
	var baseline time.Duration
	for _, k := range ks {
		var ix engine.Index
		var err error
		build := timeIt(func() {
			ix, err = engine.BuildSharded(engine.BackendBrute, ds, engine.BuildOptions{},
				engine.ShardOptions{Shards: k})
		})
		if err != nil {
			t.Note("k=%d: %v", k, err)
			continue
		}
		eng := engine.NewEngine(ix, engine.Options{})
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			d := timeIt(func() {
				if _, e := eng.BatchNonzero(qs); e != nil && err == nil {
					err = e
				}
			})
			if d < best {
				best = d
			}
		}
		if err != nil {
			t.Note("k=%d: %v", k, err)
			continue
		}
		batchPer := best / time.Duration(len(qs))
		if k == 0 {
			baseline = batchPer
		}
		speedup := "1.00x"
		if k > 0 && batchPer > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(baseline)/float64(batchPer))
		}
		single := timePer(len(qs), func(i int) {
			if _, e := eng.QueryNonzero(qs[i]); e != nil && err == nil {
				err = e
			}
		})
		if err != nil {
			t.Note("k=%d singles: %v", k, err)
			continue
		}
		allocs := allocsPerQuery(eng, qs)
		hitRate, quantum := cacheHitRate(ix, engine.CapNonzero, side, opt.seed()+int64(k))
		recs = append(recs, BenchRecord{
			Exp:            "E17",
			Backend:        string(engine.BackendBrute),
			N:              n,
			Queries:        len(qs),
			Workers:        eng.Workers(),
			Shards:         k,
			BuildNs:        build.Nanoseconds(),
			QueryNsOp:      float64(single.Nanoseconds()),
			BatchNsOp:      float64(batchPer.Nanoseconds()),
			AllocsPerQuery: allocs,
			CacheHitRate:   hitRate,
			CacheQuantum:   quantum,
		})
		t.AddRow(itoa(n), itoa(k), dtoa(build), dtoa(single), dtoa(batchPer), speedup,
			allocsCell(allocs), ftoa(hitRate))
	}
	t.Note("shards=0 is the monolithic baseline; speedup is baseline batchQ / sharded batchQ")
	t.Note("workload: spread discrete points (local queries), so bbox pruning skips far shards")
	return recs, t
}

// E17Shard is the Table-only driver registered in All.
func E17Shard(opt Options) *Table {
	_, t := ShardBench(opt)
	return t
}

// StreamBench (E18) measures the dynamic shard layer on a streaming
// workload: a sharded brute index absorbs interleaved Insert/Delete
// (with queries running between mutations, as a serving stream would)
// and the amortized per-mutation cost is compared against the
// full-rebuild baseline — partitioning and rebuilding every shard from
// scratch, which is what each mutation would cost without the dynamic
// layer. The acceptance criterion of the dynamic-shard PR is amortized
// mutation cost ≥5× cheaper than a full rebuild at n ≥ 10k.
func StreamBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E18",
		Title:  "dynamic shard layer: streaming insert/delete vs full rebuild",
		Claim:  "incremental rebalancing amortizes ≥5× below full rebuild per mutation",
		Header: []string{"n", "shards", "muts", "mutateOp", "rebuildOp", "amortization", "queryOp"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n, muts, rebuilds := 10000, 512, 8
	if opt.Quick {
		n, muts, rebuilds = 2000, 128, 4
	}
	side := float64(n)
	const k = 16
	pool := constructions.RandomDiscrete(rng, n+(muts+1)/2, 2, side, 2.0, 1)
	live := append([]*uncertain.Discrete(nil), pool[:n]...)
	sx, err := engine.NewSharded(engine.BackendBrute, engine.BuildOptions{},
		engine.ShardOptions{Shards: k})
	if err != nil {
		t.Note("%v", err)
		return nil, t
	}
	if err := sx.Build(engine.FromDiscrete(append([]*uncertain.Discrete(nil), live...))); err != nil {
		t.Note("%v", err)
		return nil, t
	}
	eng := engine.NewEngine(sx, engine.Options{})
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}

	var mutTotal, queryTotal time.Duration
	next := n
	var mutErr error
	for m := 0; m < muts && mutErr == nil; m++ {
		if m%2 == 0 {
			p := pool[next]
			next++
			mutTotal += timeIt(func() { _, mutErr = eng.Insert(engine.Item{Point: p}) })
			live = append(live, p)
		} else {
			di := rng.Intn(len(live))
			mutTotal += timeIt(func() { mutErr = eng.Delete(di) })
			live = append(live[:di], live[di+1:]...)
		}
		q := qs[m%len(qs)]
		queryTotal += timeIt(func() {
			if _, e := eng.QueryNonzero(q); e != nil && mutErr == nil {
				mutErr = e
			}
		})
	}
	if mutErr != nil {
		t.Note("stream: %v", mutErr)
		return nil, t
	}
	mutatePer := mutTotal / time.Duration(muts)

	// Baseline: a full sharded rebuild over the current survivors,
	// sampled a few times (it is the expensive side).
	var rebuildTotal time.Duration
	for s := 0; s < rebuilds && mutErr == nil; s++ {
		ds := engine.FromDiscrete(append([]*uncertain.Discrete(nil), live...))
		rebuildTotal += timeIt(func() {
			_, mutErr = engine.BuildSharded(engine.BackendBrute, ds, engine.BuildOptions{},
				engine.ShardOptions{Shards: k})
		})
	}
	if mutErr != nil {
		t.Note("rebuild baseline: %v", mutErr)
		return nil, t
	}
	rebuildPer := rebuildTotal / time.Duration(rebuilds)
	amort := float64(rebuildPer) / float64(mutatePer)
	queryPer := queryTotal / time.Duration(muts)

	rec := BenchRecord{
		Exp:            "E18",
		AllocsPerQuery: -1,
		Backend:        string(engine.BackendBrute),
		N:              n,
		Queries:        muts,
		Workers:        eng.Workers(),
		Shards:         k,
		MutateNsOp:     float64(mutatePer.Nanoseconds()),
		RebuildNsOp:    float64(rebuildPer.Nanoseconds()),
		QueryNsOp:      float64(queryPer.Nanoseconds()),
	}
	t.AddRow(itoa(n), fmt.Sprintf("%d→%d", k, sx.Shards()), itoa(muts), dtoa(mutatePer),
		dtoa(rebuildPer), fmt.Sprintf("%.1fx", amort), dtoa(queryPer))
	t.Note("mutateOp amortizes routing + owning-shard rebuild + split/merge rebalancing")
	t.Note("rebuildOp re-partitions and rebuilds all shards — the no-dynamic-layer cost per mutation")
	t.Note("shards column is configured→final: splits track the grown dataset")
	return []BenchRecord{rec}, t
}

// E18Stream is the Table-only driver registered in All.
func E18Stream(opt Options) *Table {
	_, t := StreamBench(opt)
	return t
}

// E16Engine is the Table-only driver registered in All.
func E16Engine(opt Options) *Table {
	_, t := EngineBench(opt)
	return t
}

// MutationBench (E20) measures the mutation-batching layer on two
// workloads at n = 10k behind a 16-shard brute fleet:
//
//   - Burst coalescing: rounds of 64-mutation bursts with spatial
//     locality (the motivating scenario — a convoy of inserts plus a few
//     deletes landing in one region) applied through BatchMutate on one
//     index and as 64 single mutations on an identical twin. The
//     epoch-coalesced path rebuilds each touched shard once per burst
//     where the per-item path pays one rebuild per mutation, so the
//     acceptance bar is batched ≥ 5× cheaper per mutation.
//   - Insert buffering: a pure-insert stream against a
//     WithInsertBuffer fleet. The buffer absorbs inserts without any
//     main-shard rebuild until the cost-model flush threshold F, so a
//     threshold's worth of inserts must amortize below ONE owning-shard
//     rebuild (the per-item path's cost for the same stream is F
//     rebuilds). buffer_hit_rate records 1 − flushes/inserts.
func MutationBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E20",
		Title:  "mutation batching: coalesced bursts and the insert buffer",
		Claim:  "BatchMutate ≥5× cheaper per mutation than singles; buffered inserts amortize below one shard rebuild per flush",
		Header: []string{"mode", "n", "muts", "batchedOp", "singleOp", "speedup", "bufferHit"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n, rounds, burst := 10000, 6, 64
	if opt.Quick {
		n, rounds = 2000, 3
	}
	side := float64(n)
	const k = 16
	pool := constructions.RandomDiscrete(rng, n+rounds*burst, 2, side, 2.0, 1)
	build := func(sopt engine.ShardOptions) (*engine.ShardedIndex, error) {
		sx, err := engine.NewSharded(engine.BackendBrute, engine.BuildOptions{}, sopt)
		if err != nil {
			return nil, err
		}
		if err := sx.Build(engine.FromDiscrete(append([]*uncertain.Discrete(nil), pool[:n]...))); err != nil {
			return nil, err
		}
		return sx, nil
	}

	// --- burst coalescing: BatchMutate vs an identical twin fed singles.
	batched, err := build(engine.ShardOptions{Shards: k})
	var single *engine.ShardedIndex
	if err == nil {
		single, err = build(engine.ShardOptions{Shards: k})
	}
	if err != nil {
		t.Note("%v", err)
		return nil, t
	}
	var batchTotal, singleTotal time.Duration
	next := n
	for r := 0; r < rounds && err == nil; r++ {
		// A spatially local burst: inserts drawn around one hotspot (so
		// one or two shards own the whole run), deletes of random items.
		hot := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		live := batched.Len()
		ms := make([]engine.Mutation, burst)
		for j := range ms {
			if j%8 == 7 {
				ms[j] = engine.DeleteMutation(rng.Intn(live))
				live--
			} else {
				p := pool[next]
				next++
				p = relocate(p, hot, rng)
				ms[j] = engine.InsertMutation(engine.Item{Point: p})
				live++
			}
		}
		batchTotal += timeIt(func() { _, err = batched.BatchMutate(ms) })
		if err != nil {
			break
		}
		singleTotal += timeIt(func() {
			for _, m := range ms {
				if m.Op == engine.OpInsert {
					_, err = single.Insert(m.Item)
				} else {
					_, err = single.Delete(m.Del)
				}
				if err != nil {
					return
				}
			}
		})
	}
	if err != nil {
		t.Note("burst sweep: %v", err)
		return nil, t
	}
	muts := rounds * burst
	batchPer := batchTotal / time.Duration(muts)
	singlePer := singleTotal / time.Duration(muts)
	recs := []BenchRecord{{
		Exp:            "E20",
		AllocsPerQuery: -1,
		Backend:        string(engine.BackendBrute),
		N:              n,
		Queries:        muts,
		Shards:         k,
		BatchNsOp:      float64(batchPer.Nanoseconds()),
		MutateNsOp:     float64(singlePer.Nanoseconds()),
	}}
	t.AddRow("burst64", itoa(n), itoa(muts), dtoa(batchPer), dtoa(singlePer),
		fmt.Sprintf("%.1fx", float64(singlePer)/float64(batchPer)), "-")

	// --- insert buffering: a pure-insert stream with the same arrival
	// locality as the bursts (a hotspot that moves every `burst`
	// arrivals), fed identically to the buffered fleet and the per-item
	// baseline.
	stream := muts
	streamPts := make([]*uncertain.Discrete, stream)
	var hot geom.Point
	for i := range streamPts {
		if i%burst == 0 {
			hot = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		streamPts[i] = relocate(pool[n+i%(rounds*burst)], hot, rng)
	}
	buffered, err := build(engine.ShardOptions{Shards: k, InsertBuffer: true})
	if err != nil {
		t.Note("buffer sweep: %v", err)
		return recs, t
	}
	var insTotal time.Duration
	for i := 0; i < stream && err == nil; i++ {
		p := streamPts[i]
		insTotal += timeIt(func() { _, err = buffered.Insert(engine.Item{Point: p}) })
	}
	if err != nil {
		t.Note("buffer sweep: %v", err)
		return recs, t
	}
	insertPer := insTotal / time.Duration(stream)
	_, inserts, flushes := buffered.BufferStats()
	hit := 0.0
	if inserts > 0 {
		hit = 1 - float64(flushes)/float64(inserts)
	}
	// The no-buffer baseline for the same stream: one owning-shard
	// rebuild per insert (the per-item dynamic path).
	base, err := build(engine.ShardOptions{Shards: k})
	if err != nil {
		t.Note("buffer baseline: %v", err)
		return recs, t
	}
	var basePer time.Duration
	{
		var baseTotal time.Duration
		for i := 0; i < stream && err == nil; i++ {
			p := streamPts[i]
			baseTotal += timeIt(func() { _, err = base.Insert(engine.Item{Point: p}) })
		}
		if err != nil {
			t.Note("buffer baseline: %v", err)
			return recs, t
		}
		basePer = baseTotal / time.Duration(stream)
	}
	recs = append(recs, BenchRecord{
		Exp:            "E20",
		AllocsPerQuery: -1,
		Backend:        string(engine.BackendBrute) + "+buffer",
		N:              n,
		Queries:        stream,
		Shards:         k,
		MutateNsOp:     float64(insertPer.Nanoseconds()),
		RebuildNsOp:    float64(basePer.Nanoseconds()),
		BufferHitRate:  hit,
	})
	t.AddRow("insert-buffer", itoa(n), itoa(stream), dtoa(insertPer), dtoa(basePer),
		fmt.Sprintf("%.1fx", float64(basePer)/float64(insertPer)), ftoa(hit))
	t.Note("burst64: 64 spatially-local mutations per round, BatchMutate vs the same ops applied singly on a twin index")
	t.Note("insert-buffer: pure-insert stream; batchedOp is the amortized buffered insert, singleOp the per-item rebuild path")
	t.Note("bufferHit is the fraction of inserts absorbed without a main-shard rebuild (1 − flushes/inserts)")
	return recs, t
}

// relocate clones discrete point p translated so its centroid lands
// near hot — the E20 burst generator's spatial locality.
func relocate(p *uncertain.Discrete, hot geom.Point, rng *rand.Rand) *uncertain.Discrete {
	c := p.Support().Center()
	dx := hot.X - c.X + rng.NormFloat64()*2
	dy := hot.Y - c.Y + rng.NormFloat64()*2
	locs := make([]geom.Point, len(p.Locs))
	for i, l := range p.Locs {
		locs[i] = geom.Pt(l.X+dx, l.Y+dy)
	}
	out, err := uncertain.NewDiscrete(locs, append([]float64(nil), p.W...))
	if err != nil {
		return p
	}
	return out
}

// E20Mutation is the Table-only driver registered in All.
func E20Mutation(opt Options) *Table {
	_, t := MutationBench(opt)
	return t
}

// PlannerBench (E19) measures the cost-based query planner against the
// rule-based auto router on a mixed workload: one discrete dataset,
// queries cycling NN≠0 → π → E[d]. The rule-based choice serves all
// three kinds from the brute reference (O(n) NN≠0 and E[d], Õ(n²) π);
// the planner assigns each kind its cheapest calibrated backend
// (two-stage / spiral / expected on this workload). The acceptance
// criterion of the planner PR is ≥1.2× mixed-workload throughput over
// the rule-based auto.
func PlannerBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E19",
		Title:  "cost-based planner vs rule-based auto (mixed workload)",
		Claim:  "per-kind cost-based assignment ≥1.2× the rule-based auto's throughput",
		Header: []string{"router", "n", "build", "mixedQ", "speedup", "plan"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 2000
	if opt.Quick {
		n = 600
	}
	side := 10 * float64(n)
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 3, side, 2.0, 1))
	qs := make([]geom.Point, 192)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	// The mixed loop: query i runs the kind i mod 3, so both routers see
	// an identical interleaving of all three semantics.
	mixed := func(eng *engine.Engine) error {
		for i, q := range qs {
			var err error
			switch i % 3 {
			case 0:
				_, err = eng.QueryNonzero(q)
			case 1:
				_, err = eng.QueryProbs(q, 0)
			default:
				_, _, err = eng.QueryExpected(q)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	var recs []BenchRecord
	var autoPer time.Duration
	for _, router := range []string{"auto", "planner"} {
		var (
			ix   engine.Index
			plan *engine.Plan
			err  error
		)
		build := timeIt(func() {
			if router == "auto" {
				ix, err = engine.BuildAuto(ds, engine.BuildOptions{}, engine.ShardOptions{})
			} else {
				ix, plan, err = engine.BuildPlanned(ds, engine.BuildOptions{},
					engine.ShardOptions{}, engine.PlannerOptions{})
			}
		})
		if err != nil {
			t.Note("%s: %v", router, err)
			continue
		}
		eng := engine.NewEngine(ix, engine.Options{})
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 2; attempt++ {
			d := timeIt(func() {
				if e := mixed(eng); e != nil && err == nil {
					err = e
				}
			})
			if d < best {
				best = d
			}
		}
		if err != nil {
			t.Note("%s: %v", router, err)
			continue
		}
		per := best / time.Duration(len(qs))
		if router == "auto" {
			autoPer = per
		}
		speedup := "1.00x"
		if router == "planner" && per > 0 && autoPer > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(autoPer)/float64(per))
		}
		planStr := ""
		if plan != nil {
			planStr = planSummary(plan)
		}
		recs = append(recs, BenchRecord{
			Exp:            "E19",
			AllocsPerQuery: -1,
			Backend:        router,
			N:              n,
			Queries:        len(qs),
			Workers:        eng.Workers(),
			BuildNs:        build.Nanoseconds(),
			QueryNsOp:      float64(per.Nanoseconds()),
			Plan:           planStr,
		})
		t.AddRow(router, itoa(n), dtoa(build), dtoa(per), speedup, planStr)
	}
	t.Note("mixedQ is per-query cost over an interleaved NN≠0 / π / E[d] stream (single-query path)")
	t.Note("auto = rule-based (brute serves everything on discrete data); planner = cost-based per-kind assignment")
	return recs, t
}

// planSummary compacts a plan to its per-kind backend choices.
func planSummary(p *engine.Plan) string {
	var parts []string
	for _, kind := range []engine.Capability{engine.CapNonzero, engine.CapProbs, engine.CapExpected, engine.CapTopK} {
		if ch, ok := p.Choices[kind]; ok {
			parts = append(parts, fmt.Sprintf("%s=%s", kind, ch.Backend))
		}
	}
	return strings.Join(parts, ",")
}

// E19Planner is the Table-only driver registered in All.
func E19Planner(opt Options) *Table {
	_, t := PlannerBench(opt)
	return t
}

// TopKBench (E22) measures the registry-added top-k query kind across
// the execution layers: the monolithic brute reference, the exact
// cross-shard merge, and the planned composite. Top-k is one π sweep
// plus an O(n log k) selection, so its per-query cost must track the π
// query at the same configuration — each configuration emits one
// "<config>-probs" baseline row and one "<config>-topk<k>" row per k,
// and cmd/benchdiff enforces the ratio as an intra-run invariant.
func TopKBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E22",
		Title:  "top-k most-likely NN through the query-kind registry",
		Claim:  "top-k = one π sweep + O(n log k) selection: per-query cost tracks the π query per configuration",
		Header: []string{"config", "n", "shards", "k", "πQ", "topkQ", "ratio"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 2000
	if opt.Quick {
		n = 600
	}
	side := 10 * float64(n)
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 3, side, 2.0, 1))
	qs := make([]geom.Point, 128)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}

	configs := []struct {
		name   string
		shards int
		build  func() (engine.Index, error)
	}{
		{"brute", 0, func() (engine.Index, error) {
			return engine.Build(engine.BackendBrute, ds, engine.BuildOptions{})
		}},
		{"sharded", 4, func() (engine.Index, error) {
			return engine.BuildSharded(engine.BackendBrute, ds, engine.BuildOptions{}, engine.ShardOptions{Shards: 4})
		}},
		{"planned", 0, func() (engine.Index, error) {
			ix, _, err := engine.BuildPlanned(ds, engine.BuildOptions{}, engine.ShardOptions{},
				engine.PlannerOptions{Mix: engine.Workload{Nonzero: 1, Probs: 1, Expected: 1, TopK: 1}})
			return ix, err
		}},
	}
	var recs []BenchRecord
	for _, cfg := range configs {
		var (
			ix  engine.Index
			err error
		)
		build := timeIt(func() { ix, err = cfg.build() })
		if err != nil {
			t.Note("%s: %v", cfg.name, err)
			continue
		}
		eng := engine.NewEngine(ix, engine.Options{})
		probsPer := timePer(len(qs), func(i int) {
			if _, e := eng.QueryProbs(qs[i], 0); e != nil && err == nil {
				err = e
			}
		})
		if err != nil {
			t.Note("%s: %v", cfg.name, err)
			continue
		}
		recs = append(recs, BenchRecord{
			Exp:            "E22",
			AllocsPerQuery: -1,
			Backend:        cfg.name + "-probs",
			N:              n,
			Queries:        len(qs),
			Workers:        eng.Workers(),
			Shards:         cfg.shards,
			BuildNs:        build.Nanoseconds(),
			QueryNsOp:      float64(probsPer.Nanoseconds()),
		})
		for _, k := range []int{1, 10} {
			k := k
			topkPer := timePer(len(qs), func(i int) {
				if _, e := eng.QueryTopK(qs[i], k, 0); e != nil && err == nil {
					err = e
				}
			})
			if err != nil {
				t.Note("%s k=%d: %v", cfg.name, k, err)
				break
			}
			ratio := "n/a"
			if probsPer > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(topkPer)/float64(probsPer))
			}
			recs = append(recs, BenchRecord{
				Exp:            "E22",
				AllocsPerQuery: -1,
				Backend:        fmt.Sprintf("%s-topk%d", cfg.name, k),
				N:              n,
				Queries:        len(qs),
				Workers:        eng.Workers(),
				Shards:         cfg.shards,
				QueryNsOp:      float64(topkPer.Nanoseconds()),
			})
			t.AddRow(cfg.name, itoa(n), itoa(cfg.shards), itoa(k), dtoa(probsPer), dtoa(topkPer), ratio)
		}
	}
	t.Note("every row's top-k answer set is the ranked prefix of the same configuration's π sweep")
	t.Note("rows pair as <config>-probs vs <config>-topk<k> in BENCH_engine.json; benchdiff bounds the ratio")
	return recs, t
}

// E22TopK is the Table-only driver registered in All.
func E22TopK(opt Options) *Table {
	_, t := TopKBench(opt)
	return t
}

// BatchTileBench (E23) measures the batch-fused tiled executor against
// the scalar batch path on one shared sharded index. Two workloads per
// the bench/history methodology: "hot" draws 2048 queries from 256
// distinct points — the service-skew case where in-batch dedup
// (singleflight) computes each distinct query once — and "uniq" uses
// 2048 distinct queries, the honest no-sharing bound where only kernel
// tiling and shard-affine scheduling help. Timings are A/B interleaved
// (scalar and tiled alternate within each attempt, best of 3) so the
// pairs share thermal and GC conditions. The acceptance bar of the
// batch-tiling PR is tiled ≥2× scalar on the hot pair (cmd/benchdiff
// enforces ≥1.5× as the regression floor) with 0 allocs/op steady
// state through BatchNonzeroInto and bit-identical answers.
func BatchTileBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E23",
		Title:  "batch-fused tiled kernels with shard-affine scheduling",
		Claim:  "in-batch dedup + tiled shard-affine execution: hot-skew batches ≥2× the scalar batch path",
		Header: []string{"workload", "n", "tile", "scalarQ", "tiledQ", "speedup", "allocs", "occupancy", "parity"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 100_000
	if opt.Quick {
		n = 10_000
	}
	const (
		shards = 8
		tile   = 16
		nq     = 2048
		nHot   = 256
	)
	side := float64(n)
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 2, side, 2.0, 1))
	var ix engine.Index
	var err error
	build := timeIt(func() {
		ix, err = engine.BuildSharded(engine.BackendBrute, ds, engine.BuildOptions{},
			engine.ShardOptions{Shards: shards})
	})
	if err != nil {
		t.Note("build: %v", err)
		return nil, t
	}

	hotPts := make([]geom.Point, nHot)
	for i := range hotPts {
		hotPts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	hot := make([]geom.Point, nq)
	for i := range hot {
		hot[i] = hotPts[rng.Intn(nHot)]
	}
	uniq := make([]geom.Point, nq)
	for i := range uniq {
		uniq[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}

	// Same index, same worker pool; the only difference is BatchTile.
	scalar := engine.NewEngine(ix, engine.Options{BatchTile: -1})
	tiled := engine.NewEngine(ix, engine.Options{BatchTile: tile})
	engines := []*engine.Engine{scalar, tiled}
	workloads := []struct {
		name string
		qs   []geom.Point
	}{{"hot", hot}, {"uniq", uniq}}

	var best [2][2]time.Duration // [workload][scalar|tiled]
	for wi := range best {
		best[wi][0], best[wi][1] = 1<<62-1, 1<<62-1
	}
	for attempt := 0; attempt < 3; attempt++ {
		for wi, wl := range workloads {
			for ei, eng := range engines {
				d := timeIt(func() {
					if _, e := eng.BatchNonzero(wl.qs); e != nil && err == nil {
						err = e
					}
				})
				if d < best[wi][ei] {
					best[wi][ei] = d
				}
			}
		}
	}
	if err != nil {
		t.Note("batch: %v", err)
		return nil, t
	}

	// Parity: the tiled executor must be bit-identical to the scalar
	// batch on the headline workload.
	wantRes, err1 := scalar.BatchNonzero(hot)
	gotRes, err2 := tiled.BatchNonzero(hot)
	parity := "mismatch"
	if err1 == nil && err2 == nil {
		parity = fmt.Sprintf("ok:%08x", batchFingerprint(wantRes))
		for i := range wantRes {
			if !slices.Equal(wantRes[i], gotRes[i]) {
				parity = fmt.Sprintf("mismatch@%d", i)
				break
			}
		}
	}

	// Steady-state allocations per query through the reuse entry point,
	// on a fresh single-worker tiled engine (the zero-alloc contract is
	// stated for the sequential path; the parallel path shares the same
	// pooled scratch).
	allocs := allocsPerBatchQuery(engine.NewEngine(ix, engine.Options{Workers: 1, BatchTile: tile}), hot)

	st := tiled.Stats()
	var recs []BenchRecord
	for wi, wl := range workloads {
		scalarPer := best[wi][0] / time.Duration(nq)
		tiledPer := best[wi][1] / time.Duration(nq)
		speedup := "n/a"
		if tiledPer > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(scalarPer)/float64(tiledPer))
		}
		rowParity := ""
		if wl.name == "hot" {
			rowParity = parity
		}
		recs = append(recs,
			BenchRecord{
				Exp:            "E23",
				Backend:        fmt.Sprintf("sharded%d-%s-scalar", shards, wl.name),
				N:              n,
				Queries:        nq,
				Workers:        scalar.Workers(),
				Shards:         shards,
				BuildNs:        build.Nanoseconds(),
				BatchNsOp:      float64(scalarPer.Nanoseconds()),
				AllocsPerQuery: -1,
			},
			BenchRecord{
				Exp:            "E23",
				Backend:        fmt.Sprintf("sharded%d-%s-tiled", shards, wl.name),
				N:              n,
				Queries:        nq,
				Workers:        tiled.Workers(),
				Shards:         shards,
				BuildNs:        build.Nanoseconds(),
				BatchNsOp:      float64(tiledPer.Nanoseconds()),
				AllocsPerQuery: allocs,
				Parity:         rowParity,
				Batches:        st.Batches,
				MeanBatchSize:  st.MeanBatchSize(),
				TileOccupancy:  st.TileOccupancy(),
			})
		t.AddRow(wl.name, itoa(n), itoa(tile), dtoa(scalarPer), dtoa(tiledPer), speedup,
			allocsCell(allocs), ftoa(st.TileOccupancy()), rowParity)
	}
	t.Note("hot: %d queries drawn from %d distinct points (service skew) — in-batch dedup computes each once", nq, nHot)
	t.Note("uniq: %d distinct queries — the honest no-sharing bound for pure tiling + shard affinity", nq)
	t.Note("A/B interleaved best-of-3 on one shared sharded index; scalar disables the tiled executor (BatchTile=-1)")
	return recs, t
}

// batchFingerprint folds a batch's NN≠0 answers into one FNV-1a hash —
// the E23 parity fingerprint recorded in BENCH_engine.json.
func batchFingerprint(res [][]int) uint32 {
	h := fnv.New32a()
	var b [8]byte
	for _, ids := range res {
		binary.LittleEndian.PutUint64(b[:], uint64(len(ids)))
		h.Write(b[:])
		for _, id := range ids {
			binary.LittleEndian.PutUint64(b[:], uint64(id))
			h.Write(b[:])
		}
	}
	return h.Sum32()
}

// allocsPerBatchQuery measures steady-state heap allocations per query
// through the batch reuse entry point (BatchNonzeroInto with a recycled
// destination), the batch analogue of allocsPerQuery: warm up to the
// pools' high-water marks, GC to empty them, then charge the refill
// amortized over the measured rounds.
func allocsPerBatchQuery(eng *engine.Engine, qs []geom.Point) float64 {
	const rounds = 4
	var dst [][]int
	var err error
	for warm := 0; warm < 2; warm++ {
		if dst, err = eng.BatchNonzeroInto(qs, dst); err != nil {
			return -1
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for r := 0; r < rounds; r++ {
		dst, _ = eng.BatchNonzeroInto(qs, dst)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds*len(qs))
}

// E23BatchTile is the Table-only driver registered in All.
func E23BatchTile(opt Options) *Table {
	_, t := BatchTileBench(opt)
	return t
}

// AdaptiveBench (E24) measures the adaptive replanning loop under
// workload drift. Two planner-built sharded engines open on the same
// dataset with the same π-heavy plan; a π-heavy warmup stream runs
// through the adaptive one, then the stream flips E[d]-heavy. The
// adaptive engine's loop detects the mix shift and replans every shard
// for the observed traffic (the drifted mix makes the planner buy the
// expected-distance tree the original plan skipped); the frozen engine
// keeps serving E[d] off the plan it was born with. The post-drift
// query list then runs through both, A/B interleaved best-of-3. The
// acceptance bar of the adaptive-replanning PR is adaptive ≥1.3× frozen
// post-drift (cmd/benchdiff enforces it) with answers still exact: the
// parity fingerprint hashes the adaptive engine's NN≠0 answers against
// a monolithic brute oracle, and π/E[d] must sit within 1e-12 of it.
func AdaptiveBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E24",
		Title:  "adaptive replanning under workload drift",
		Claim:  "mid-stream mix flip: drift-detected per-shard replan serves the new mix ≥1.3× the frozen plan",
		Header: []string{"engine", "n", "shards", "postQ", "speedup", "replans", "reason", "parity"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 10_000
	if opt.Quick {
		n = 4_000
	}
	// 4 shards keeps per-shard instances large (1000–2500 points):
	// below ~500 points the flat brute scan beats the E[d] tree's
	// per-shard walk constant and a correct replan buys nothing.
	const (
		shards = 4
		window = 256
		nq     = 2048
	)
	side := float64(n)
	ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 2, side, 2.0, 1))
	preMix := engine.Workload{Probs: 1, Nonzero: 0.25, Expected: 0.01}
	popt := engine.PlannerOptions{Mix: preMix, NoProbe: true}

	// Two independent builds of the same plan: the replan swaps shard
	// backends in place, so the frozen control needs its own fleet.
	var ixA, ixF engine.Index
	var err error
	build := timeIt(func() {
		ixA, _, err = engine.BuildPlanned(ds, engine.BuildOptions{}, engine.ShardOptions{Shards: shards}, popt)
	})
	if err == nil {
		ixF, _, err = engine.BuildPlanned(ds, engine.BuildOptions{}, engine.ShardOptions{Shards: shards}, popt)
	}
	if err != nil {
		t.Note("build: %v", err)
		return nil, t
	}
	adaptive := engine.NewEngine(ixA, engine.Options{
		AdaptiveReplan: &engine.AdaptiveOptions{Window: window, Cooldown: 1}})
	frozen := engine.NewEngine(ixF, engine.Options{})

	pt := func() geom.Point { return geom.Pt(rng.Float64()*side, rng.Float64()*side) }

	// Phase A: traffic matching the plan warms the profile without
	// firing (80% π / 20% NN≠0 ≈ the plan's normalized mix).
	for i := 0; i < 3*window; i++ {
		if i%5 == 4 {
			_, err = adaptive.QueryNonzero(pt())
		} else {
			_, err = adaptive.QueryProbs(pt(), 1e-3)
		}
		if err != nil {
			t.Note("warmup: %v", err)
			return nil, t
		}
	}

	// Phase B: the stream flips E[d]-heavy; keep serving until the loop
	// notices and swaps (bounded, so a broken detector fails loudly
	// instead of spinning).
	drift := func() geom.Point { return geom.Pt(rng.Float64()*side, rng.Float64()*side) }
	for w := 0; w < 64 && adaptive.Stats().Replans == 0; w++ {
		for i := 0; i < window; i++ {
			if i%10 == 9 {
				_, err = adaptive.QueryNonzero(drift())
			} else {
				_, _, err = adaptive.QueryExpected(drift())
			}
			if err != nil {
				t.Note("drift stream: %v", err)
				return nil, t
			}
		}
	}
	st := adaptive.Stats()
	if st.Replans == 0 {
		t.Note("adaptive loop never replanned under the flipped mix")
	}

	// Post-drift measurement: one fixed E[d]-heavy list through both
	// engines, interleaved best-of-3. The GC fence isolates the timing
	// from garbage earlier sweeps left behind — background marking
	// penalizes the replanned tree's pointer walks far more than the
	// frozen plan's linear scans, which would understate the win.
	runtime.GC()
	qs := make([]geom.Point, nq)
	for i := range qs {
		qs[i] = pt()
	}
	engines := []*engine.Engine{frozen, adaptive}
	var best [2]time.Duration
	best[0], best[1] = 1<<62-1, 1<<62-1
	serve := func(e *engine.Engine) {
		for i, q := range qs {
			if i%10 == 9 {
				_, e2 := e.QueryNonzero(q)
				if e2 != nil && err == nil {
					err = e2
				}
			} else {
				_, _, e2 := e.QueryExpected(q)
				if e2 != nil && err == nil {
					err = e2
				}
			}
		}
	}
	for attempt := 0; attempt < 3; attempt++ {
		for ei, e := range engines {
			if d := timeIt(func() { serve(e) }); d < best[ei] {
				best[ei] = d
			}
		}
	}
	if err != nil {
		t.Note("post-drift: %v", err)
		return nil, t
	}

	// Parity: the swapped fleet against a fresh monolithic brute oracle —
	// NN≠0 hashed bit-identically, π and E[d] within 1e-12.
	parity := adaptiveParity(adaptive, ds, rng, side)

	frozenPer := best[0] / time.Duration(nq)
	adaptPer := best[1] / time.Duration(nq)
	speedup := "n/a"
	if adaptPer > 0 {
		speedup = fmt.Sprintf("%.2fx", float64(frozenPer)/float64(adaptPer))
	}
	recs := []BenchRecord{
		{
			Exp:            "E24",
			Backend:        fmt.Sprintf("sharded%d-frozen", shards),
			N:              n,
			Queries:        nq,
			Workers:        frozen.Workers(),
			Shards:         shards,
			BuildNs:        build.Nanoseconds(),
			QueryNsOp:      float64(frozenPer.Nanoseconds()),
			AllocsPerQuery: -1,
		},
		{
			Exp:            "E24",
			Backend:        fmt.Sprintf("sharded%d-adaptive", shards),
			N:              n,
			Queries:        nq,
			Workers:        adaptive.Workers(),
			Shards:         shards,
			BuildNs:        build.Nanoseconds(),
			QueryNsOp:      float64(adaptPer.Nanoseconds()),
			AllocsPerQuery: adaptiveObserveAllocs(ixF),
			Parity:         parity,
			Replans:        st.Replans,
			ReplanReason:   st.LastReplanReason,
		},
	}
	t.AddRow("frozen", itoa(n), itoa(shards), dtoa(frozenPer), "1.00x", "0", "", "")
	t.AddRow("adaptive", itoa(n), itoa(shards), dtoa(adaptPer), speedup,
		fmt.Sprintf("%d", st.Replans), st.LastReplanReason, parity)
	t.Note("plan built for π-heavy traffic (%.0f%% π); stream flips to ~90%% E[d] mid-run", 100*preMix.Probs/(preMix.Probs+preMix.Nonzero+preMix.Expected))
	t.Note("post-drift list: %d queries (90%% E[d] / 10%% NN≠0), A/B interleaved best-of-3", nq)
	t.Note("parity: adaptive answers vs monolithic brute oracle — NN≠0 hashed, π and E[d] within 1e-12")
	return recs, t
}

// adaptiveObserveAllocs measures the observation path's allocation
// contract: steady-state allocs per NN≠0 query with the adaptive loop
// windowing every query into its EWMA profiles. Drift thresholds sit
// at the ceiling so a replan — which allocates, off the query path —
// cannot fire mid-measurement: the recorded figure is the pure
// observe-path overhead (the E24 bar is 0; the measured adaptive
// engine itself would re-drift under the probe's pure-NN≠0 traffic
// and fold replan allocations into the number).
func adaptiveObserveAllocs(ix engine.Index) float64 {
	e := engine.NewEngine(ix, engine.Options{Workers: 1, AdaptiveReplan: &engine.AdaptiveOptions{
		Window: 256,
		Drift:  engine.DriftThresholds{ErrFactor: 1e9, MixDelta: 1},
	}})
	rng := rand.New(rand.NewSource(0xa110c))
	qs := make([]geom.Point, 256)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return allocsPerQuery(e, qs)
}

// adaptiveParity fingerprints the swapped adaptive fleet against a
// monolithic brute oracle: "ok:<fnv32a over NN≠0 answers>" when every
// probe matches (NN≠0 bit-identical, π and E[d] within 1e-12), the
// mismatch kind otherwise.
func adaptiveParity(adaptive *engine.Engine, ds *engine.Dataset, rng *rand.Rand, side float64) string {
	oracleIx, err := engine.Build(engine.BackendBrute, ds, engine.BuildOptions{})
	if err != nil {
		return "oracle: " + err.Error()
	}
	oracle := engine.NewEngine(oracleIx, engine.Options{})
	const probes = 64
	const tol = 1e-12
	res := make([][]int, 0, probes)
	for i := 0; i < probes; i++ {
		q := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		nzA, err1 := adaptive.QueryNonzero(q)
		nzO, err2 := oracle.QueryNonzero(q)
		if err1 != nil || err2 != nil || !slices.Equal(nzA, nzO) {
			return fmt.Sprintf("nonzero-mismatch@%d", i)
		}
		res = append(res, nzA)
		// π compares as a set within tol: the sharded merge and the
		// oracle may disagree on entries whose probability is float
		// noise (≈1e-16 tails one side rounds to exactly zero and
		// drops), and those are inside the 1e-12 contract.
		psA, err1 := adaptive.QueryProbs(q, 0)
		psO, err2 := oracle.QueryProbs(q, 0)
		if err1 != nil || err2 != nil {
			return fmt.Sprintf("probs-mismatch@%d", i)
		}
		pa := make(map[int]float64, len(psA))
		for _, p := range psA {
			pa[p.I] = p.P
		}
		for _, p := range psO {
			if math.Abs(pa[p.I]-p.P) > tol {
				return fmt.Sprintf("probs-mismatch@%d", i)
			}
			delete(pa, p.I)
		}
		for _, p := range pa {
			if math.Abs(p) > tol {
				return fmt.Sprintf("probs-mismatch@%d", i)
			}
		}
		iA, dA, err1 := adaptive.QueryExpected(q)
		iO, dO, err2 := oracle.QueryExpected(q)
		if err1 != nil || err2 != nil || iA != iO || math.Abs(dA-dO) > tol*math.Max(1, math.Abs(dO)) {
			return fmt.Sprintf("expected-mismatch@%d", i)
		}
	}
	return fmt.Sprintf("ok:%08x", batchFingerprint(res))
}

// E24Adaptive is the Table-only driver registered in All.
func E24Adaptive(opt Options) *Table {
	_, t := AdaptiveBench(opt)
	return t
}
