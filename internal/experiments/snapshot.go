package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"time"

	"unn/internal/constructions"
	"unn/internal/engine"
	"unn/internal/geom"
)

// SnapshotBench (E21) measures the versioned binary snapshot layer:
// cold build vs snapshot restore for the same engine, snapshot size,
// and answer parity (a checksum over NN≠0 answers that must match
// between the live and the restored handle, plus an identical Explain
// plan). The acceptance bar of the snapshot PR is restore ≥10× faster
// than the cold build at n = 100k with bit-identical answers.
//
// With Options.SnapshotPath set (unnbench -snapshot), the flagship row
// persists its snapshot to that path; when the file already exists the
// row restores from it instead of building cold, so consecutive runs
// reuse the index.
func SnapshotBench(opt Options) ([]BenchRecord, *Table) {
	t := &Table{
		ID:     "E21",
		Title:  "index snapshots: cold build vs zero-copy restore",
		Claim:  "snapshot restore ≥10× faster than cold build at n=100k, bit-identical answers",
		Header: []string{"config", "n", "build", "load", "speedup", "bytes", "allocs", "parity"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	ns := []int{10000, 100000}
	if opt.Quick {
		ns = []int{2000}
	}
	type snapCase struct {
		name  string
		build func(n int) (engine.Index, float64, error)
	}
	cases := []snapCase{
		{"twostage-disks/8sh", func(n int) (engine.Index, float64, error) {
			// Side grows with √n so disk overlap density stays constant.
			side := 4 * math.Sqrt(float64(n))
			ds := engine.FromDisks(constructions.RandomDisks(rng, n, side, 0.5, 2.0))
			ix, err := engine.BuildSharded(engine.BackendTwoStageDisks, ds,
				engine.BuildOptions{}, engine.ShardOptions{Shards: 8})
			return ix, side, err
		}},
		{"planned-discrete/8sh", func(n int) (engine.Index, float64, error) {
			side := 10 * float64(n)
			ds := engine.FromDiscrete(constructions.RandomDiscrete(rng, n, 3, side, 2.0, 1))
			ix, _, err := engine.BuildPlanned(ds, engine.BuildOptions{},
				engine.ShardOptions{Shards: 8},
				engine.PlannerOptions{Mix: engine.Workload{Nonzero: 1}})
			return ix, side, err
		}},
	}

	var recs []BenchRecord
	for ci, sc := range cases {
		for ni, n := range ns {
			flagship := ci == 0 && ni == len(ns)-1
			rec, row, err := snapshotRow(sc.name, n, flagship, opt, sc.build)
			if err != nil {
				t.Note("%s n=%d: %v", sc.name, n, err)
				continue
			}
			recs = append(recs, rec)
			t.AddRow(row...)
		}
	}
	t.Note("load restores dataset + kd-trees + kernel mirrors as raw slabs: no geometry recomputation, no calibration probes")
	t.Note("parity is an FNV-1a checksum over NN≠0 answers, equal between live and restored (and Explain matches)")
	t.Note("allocs is steady-state heap allocations per NN≠0 query on the RESTORED handle (0 = pooled flat-kernel path intact)")
	return recs, t
}

// snapshotRow measures one (config, n) cell: cold build, snapshot
// encode, restore (best of 3), parity, restored-handle allocations.
func snapshotRow(name string, n int, flagship bool, opt Options,
	build func(n int) (engine.Index, float64, error)) (BenchRecord, []string, error) {

	reusePath := ""
	if flagship && opt.SnapshotPath != "" {
		reusePath = opt.SnapshotPath
	}

	if reusePath != "" {
		if data, err := os.ReadFile(reusePath); err == nil {
			// Reuse: the index comes from the persisted snapshot; no cold
			// build this run.
			var eng *engine.Engine
			load := timeIt(func() { eng, err = engine.ReadSnapshot(bytes.NewReader(data)) })
			if err != nil {
				return BenchRecord{}, nil, fmt.Errorf("reuse %s: %w", reusePath, err)
			}
			_ = eng
			rec := BenchRecord{
				Exp: "E21", Backend: name, N: n, AllocsPerQuery: -1,
				SnapshotLoadNs: load.Nanoseconds(),
				SnapshotBytes:  int64(len(data)),
				Parity:         "reused",
			}
			row := []string{name, itoa(n), "-", dtoa(load), "-", itoa(len(data)), "-", "reused"}
			return rec, row, nil
		}
	}

	var (
		ix  engine.Index
		err error
	)
	var side float64
	buildTime := timeIt(func() { ix, side, err = build(n) })
	if err != nil {
		return BenchRecord{}, nil, err
	}
	live := engine.NewEngine(ix, engine.Options{})

	var buf bytes.Buffer
	if err := engine.WriteSnapshot(&buf, live); err != nil {
		return BenchRecord{}, nil, err
	}
	data := buf.Bytes()
	if reusePath != "" {
		if werr := os.WriteFile(reusePath, data, 0o644); werr != nil {
			return BenchRecord{}, nil, fmt.Errorf("persist %s: %w", reusePath, werr)
		}
	}

	var restored *engine.Engine
	load := time.Duration(1<<62 - 1)
	for attempt := 0; attempt < 3; attempt++ {
		d := timeIt(func() { restored, err = engine.ReadSnapshot(bytes.NewReader(data)) })
		if err != nil {
			return BenchRecord{}, nil, err
		}
		if d < load {
			load = d
		}
	}

	// Parity: identical Explain and bit-identical NN≠0 answers.
	qrng := rand.New(rand.NewSource(opt.seed() ^ int64(n)))
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Pt(qrng.Float64()*side, qrng.Float64()*side)
	}
	parity := "ok"
	if live.Explain() != restored.Explain() {
		parity = "explain-mismatch"
	}
	hLive, err := nonzeroChecksum(live, qs)
	if err != nil {
		return BenchRecord{}, nil, err
	}
	hRest, err := nonzeroChecksum(restored, qs)
	if err != nil {
		return BenchRecord{}, nil, err
	}
	if hLive != hRest {
		parity = "answer-mismatch"
	} else if parity == "ok" {
		parity = fmt.Sprintf("ok:%08x", hRest)
	}

	allocs := allocsPerQuery(restored, qs)
	speedup := float64(buildTime) / float64(load)
	rec := BenchRecord{
		Exp:            "E21",
		Backend:        name,
		N:              n,
		Queries:        len(qs),
		Workers:        live.Workers(),
		Shards:         8,
		BuildNs:        buildTime.Nanoseconds(),
		AllocsPerQuery: allocs,
		SnapshotLoadNs: load.Nanoseconds(),
		SnapshotBytes:  int64(len(data)),
		Parity:         parity,
	}
	row := []string{name, itoa(n), dtoa(buildTime), dtoa(load),
		fmt.Sprintf("%.1fx", speedup), itoa(len(data)), allocsCell(allocs), parity}
	return rec, row, nil
}

// nonzeroChecksum folds every NN≠0 answer over qs into one FNV-1a hash —
// the parity fingerprint recorded in BENCH_engine.json.
func nonzeroChecksum(e *engine.Engine, qs []geom.Point) (uint32, error) {
	h := fnv.New32a()
	var scratch [8]byte
	for _, q := range qs {
		ids, err := e.QueryNonzero(q)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(ids)))
		h.Write(scratch[:])
		for _, id := range ids {
			binary.LittleEndian.PutUint64(scratch[:], uint64(id))
			h.Write(scratch[:])
		}
	}
	return h.Sum32(), nil
}

// E21Snapshot is the Table-only driver registered in All.
func E21Snapshot(opt Options) *Table {
	_, t := SnapshotBench(opt)
	return t
}
