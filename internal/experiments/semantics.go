package experiments

import (
	"math/rand"

	"unn/internal/constructions"
	"unn/internal/expected"
	"unn/internal/geom"
	"unn/internal/nonzero"
	"unn/internal/quantify"
)

// E14Semantics contrasts the expected-distance NN of the PODS 2012
// companion paper [AESZ12] with the quantification-probability NN of this
// paper. §1.2 (citing [YTX+10]) observes that the expected NN "is not a
// good indicator under large uncertainty": the table sweeps the
// uncertainty scale and reports how often the two semantics disagree
// about the most-likely nearest neighbor.
func E14Semantics(opt Options) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "expected NN ([AESZ12]) vs probabilistic NN (this paper) — §1.2",
		Claim:  "the two semantics diverge as uncertainty grows",
		Header: []string{"sigma", "disagree%", "avg π of ENN choice", "avg max π"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n, k := 12, 4
	sigmas := []float64{0.2, 1, 3}
	if !opt.Quick {
		sigmas = append(sigmas, 8, 16)
	}
	for _, sigma := range sigmas {
		pts := constructions.RandomDiscrete(rng, n, k, 20, sigma, 6)
		ix, err := expected.New(pts)
		if err != nil {
			t.Note("sigma=%v: %v", sigma, err)
			continue
		}
		disagree, piOfENN, piMax := 0, 0.0, 0.0
		const Q = 200
		for j := 0; j < Q; j++ {
			q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
			enn, _ := ix.NNExpected(q)
			pi := quantify.ExactAt(pts, q)
			best, bestV := 0, pi[0]
			for i, v := range pi {
				if v > bestV {
					best, bestV = i, v
				}
			}
			if best != enn {
				disagree++
			}
			piOfENN += pi[enn]
			piMax += bestV
		}
		t.AddRow(ftoa(sigma), ftoa(100*float64(disagree)/Q),
			ftoa(piOfENN/Q), ftoa(piMax/Q))
	}
	return t
}

// E15BuildScaling measures the V≠0 construction time against the
// Theorem 2.5 bound O(n² log n + μ): time vs n on random instances, and
// time vs μ on the Ω(n³) construction where μ dominates.
func E15BuildScaling(opt Options) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "V≠0 construction time (Theorem 2.5: O(n² log n + μ))",
		Claim:  "near-quadratic on random inputs; output-dominated on lower-bound inputs",
		Header: []string{"workload", "n", "segments", "vertices", "time"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	ns := []int{8, 16, 32}
	if !opt.Quick {
		ns = append(ns, 64)
	}
	var xs, ys []float64
	for _, n := range ns {
		disks := constructions.RandomDisks(rng, n, 40, 0.5, 2.0)
		var diag *nonzero.Diagram
		var err error
		d := timeIt(func() {
			diag, err = nonzero.BuildDiskDiagram(disks, nonzero.DiagramOptions{
				FlattenStep: 2 * 3.14159 / 360,
			})
		})
		if err != nil {
			t.Note("n=%d: %v", n, err)
			continue
		}
		st := diag.Stats()
		t.AddRow("random", itoa(n), itoa(st.E), itoa(st.V), dtoa(d))
		xs = append(xs, float64(n))
		ys = append(ys, d.Seconds())
	}
	t.Note("random-input time exponent %.2f in n (theory ~2 plus output term)", fitExponent(xs, ys))
	for _, m := range []int{2, 3} {
		disks := constructions.LowerBoundEqual(m)
		var diag *nonzero.Diagram
		var err error
		d := timeIt(func() {
			diag, err = nonzero.BuildDiskDiagram(disks, nonzero.DiagramOptions{})
		})
		if err != nil {
			t.Note("lb m=%d: %v", m, err)
			continue
		}
		st := diag.Stats()
		t.AddRow("lowerbound-eq", itoa(3*m), itoa(st.E), itoa(st.V), dtoa(d))
	}
	return t
}
