package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every driver must run in quick mode, produce a well-formed table, and
// carry its claim text.
func TestAllDriversQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are exercised in full runs")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(Options{Quick: true})
			if tab == nil {
				t.Fatal("nil table")
			}
			if tab.ID != e.ID {
				t.Fatalf("ID mismatch: %q vs %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			if tab.Claim == "" {
				t.Fatal("missing claim")
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Fatalf("row width %d != header %d (%v)", len(r), len(tab.Header), r)
				}
			}
			var buf bytes.Buffer
			if _, err := tab.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatal("render missing ID")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e9"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestFitExponent(t *testing.T) {
	xs := []float64{2, 4, 8, 16}
	ys := []float64{8, 64, 512, 4096} // y = x³
	if got := fitExponent(xs, ys); got < 2.99 || got > 3.01 {
		t.Fatalf("exponent %v want 3", got)
	}
}
