// Package experiments contains one driver per reproduced artifact of the
// paper (its theorems, lower-bound constructions and figures — the paper
// is a theory paper, so the "tables and figures" of its evaluation are
// the complexity and accuracy claims themselves). Each driver generates
// the workload, runs the implementation, and returns an ASCII table whose
// rows mirror the claim being checked. EXPERIMENTS.md records paper
// claim vs measured outcome for every driver; `cmd/unnbench` regenerates
// any of them; `bench_test.go` carries a testing.B benchmark per driver.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Options tunes all drivers.
type Options struct {
	// Quick shrinks the sweeps for CI-speed runs (used by tests and the
	// default bench configuration).
	Quick bool
	// Seed makes workloads reproducible.
	Seed int64
	// SnapshotPath, when non-empty, makes the E21 snapshot sweep persist
	// its flagship index to that file and reuse it on subsequent runs
	// instead of rebuilding cold (unnbench -snapshot <path>).
	SnapshotPath string
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 0x5eed
	}
	return o.Seed
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "   note: %s\n", n)
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Driver is an experiment entry point.
type Driver func(Options) *Table

// All maps experiment IDs to drivers, in presentation order.
var All = []struct {
	ID   string
	Desc string
	Run  Driver
}{
	{"E1", "V≠0 complexity, random disks (Thm 2.5)", E1RandomDiskComplexity},
	{"E2", "Ω(n³) mixed-radius construction (Thm 2.7, Fig 5)", E2LowerBoundMixed},
	{"E3", "Ω(n³) equal-radius construction (Thm 2.8, Fig 6)", E3LowerBoundEqual},
	{"E4", "disjoint disks Θ(λn²) (Thm 2.10, Fig 8)", E4DisjointLambda},
	{"E5", "V≠0 complexity, discrete (Thm 2.14)", E5DiscreteComplexity},
	{"E6", "NN≠0 queries over disks (Thm 2.11 vs Thm 3.1)", E6ContinuousQueries},
	{"E7", "NN≠0 queries, discrete two-stage (Thm 3.2)", E7DiscreteQueries},
	{"E8", "V_Pr growth and exact queries (Lem 4.1, Thm 4.2)", E8VPrGrowth},
	{"E9", "Monte-Carlo error vs rounds (Thm 4.3)", E9MonteCarloError},
	{"E10", "continuous discretization (Thm 4.5, Lem 4.4)", E10ContinuousMC},
	{"E11", "spiral search vs exact vs MC (Thm 4.7)", E11Spiral},
	{"E12", "light-location pruning counterexample (§4.3 Rem i)", E12Remark},
	{"E13", "distance pdf of Figure 1", E13Figure1},
	{"E14", "expected NN vs probabilistic NN (§1.2, [AESZ12])", E14Semantics},
	{"E15", "V≠0 construction time (Thm 2.5)", E15BuildScaling},
	{"E16", "engine layer: all backends, single vs batch", E16Engine},
	{"E17", "sharded engine: shard-scaling sweep, batch throughput", E17Shard},
	{"E18", "dynamic shards: streaming insert/delete vs full rebuild", E18Stream},
	{"E19", "cost-based planner vs rule-based auto, mixed workload", E19Planner},
	{"E20", "mutation batching: coalesced bursts + insert buffer", E20Mutation},
	{"E21", "index snapshots: cold build vs zero-copy restore", E21Snapshot},
	{"E22", "top-k most-likely NN: registry kind across execution layers", E22TopK},
	{"E23", "batch-fused tiled kernels: shard-affine scheduling + in-batch dedup", E23BatchTile},
	{"E24", "adaptive replanning: drift-detected per-shard replan vs frozen plan", E24Adaptive},
}

// Lookup finds a driver by ID.
func Lookup(id string) (Driver, bool) {
	for _, e := range All {
		if strings.EqualFold(e.ID, id) {
			return e.Run, true
		}
	}
	return nil, false
}

// --- small shared helpers ---------------------------------------------------

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.4g", v) }
func dtoa(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// timeIt measures fn once.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// timePer measures the average latency of fn over reps runs.
func timePer(reps int, fn func(i int)) time.Duration {
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		fn(i)
	}
	return time.Duration(int64(time.Since(t0)) / int64(reps))
}

// fitExponent returns the least-squares slope of log(y) vs log(x) — the
// empirical growth exponent of a sweep.
func fitExponent(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

// maxAbs returns the max absolute difference between dense vectors.
func maxAbs(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// median of a sample (destructive).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}
