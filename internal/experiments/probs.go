package experiments

import (
	"math"
	"math/rand"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// E9MonteCarloError verifies Theorem 4.3: with s rounds the estimation
// error behaves like sqrt(ln(2n/δ)/2s); the table sweeps s and compares
// the measured maximum error (over queries, against the exact sweep) with
// the Chernoff prediction, for both NN backends.
func E9MonteCarloError(opt Options) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Monte-Carlo quantification (Theorem 4.3)",
		Claim:  "max error ≤ ε w.h.p. with s = O(ε⁻² log(N/δ)); error ∝ s^{-1/2}",
		Header: []string{"s", "predicted ε", "maxErr(kd)", "maxErr(delaunay)", "Q(kd)", "Q(del)"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n, k := 20, 4
	pts := constructions.RandomDiscrete(rng, n, k, 30, 2, 1)
	upts := make([]uncertain.Point, n)
	for i, p := range pts {
		upts[i] = p
	}
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*30, rng.Float64()*30)
	}
	exact := make([][]float64, len(qs))
	for i, q := range qs {
		exact[i] = quantify.ExactAt(pts, q)
	}
	ss := []int{50, 200, 800}
	if !opt.Quick {
		ss = append(ss, 3200)
	}
	var xs, ys []float64
	for _, s := range ss {
		mcK, err := quantify.NewMonteCarlo(upts, s, quantify.MCOptions{Rng: rand.New(rand.NewSource(opt.seed() + 1))})
		if err != nil {
			t.Note("s=%d: %v", s, err)
			continue
		}
		mcD, err := quantify.NewMonteCarlo(upts, s, quantify.MCOptions{
			Backend: quantify.MCDelaunay,
			Rng:     rand.New(rand.NewSource(opt.seed() + 1)),
		})
		if err != nil {
			t.Note("s=%d: %v", s, err)
			continue
		}
		errK, errD := 0.0, 0.0
		for i, q := range qs {
			errK = math.Max(errK, maxAbs(mcK.QueryDense(q), exact[i]))
			errD = math.Max(errD, maxAbs(mcD.QueryDense(q), exact[i]))
		}
		pred := math.Sqrt(math.Log(2*float64(n)/0.05) / (2 * float64(s)))
		qK := timePer(len(qs), func(i int) { mcK.Query(qs[i]) })
		qD := timePer(len(qs), func(i int) { mcD.Query(qs[i]) })
		t.AddRow(itoa(s), ftoa(pred), ftoa(errK), ftoa(errD), dtoa(qK), dtoa(qD))
		xs = append(xs, float64(s))
		ys = append(ys, errK)
	}
	t.Note("error decay exponent %.2f in s (theory: -0.50)", fitExponent(xs, ys))
	return t
}

// E10ContinuousMC verifies Theorem 4.5 / Lemma 4.4: quantification over
// continuous pdfs via (a) direct per-round instantiation and (b) the
// paper's discretize-first reduction with per-point sample size k(α).
// Both must agree with a fine-discretization reference within ε.
func E10ContinuousMC(opt Options) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "continuous distributions (Theorem 4.5, Lemma 4.4)",
		Claim:  "discretizing each pdf with k(α) samples changes every π by ≤ αn",
		Header: []string{"pdf", "perPointSamples", "maxErr vs reference", "target ε"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	n := 5
	var cont []uncertain.Point
	for i := 0; i < n; i++ {
		d := geom.DiskAt(rng.Float64()*12, rng.Float64()*12, 0.8+rng.Float64())
		if i%2 == 0 {
			cont = append(cont, uncertain.UniformDisk{D: d})
		} else {
			cont = append(cont, uncertain.NewTruncGauss(d, d.R/2))
		}
	}
	// Reference: very fine discretization + exact sweep.
	refK := 3000
	if opt.Quick {
		refK = 1500
	}
	ref := make([]*uncertain.Discrete, n)
	for i, p := range cont {
		ref[i] = uncertain.Discretize(p, refK, rng)
	}
	qs := make([]geom.Point, 24)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*12, rng.Float64()*12)
	}
	eps := 0.1
	for _, m := range []int{32, 128, 512} {
		disc := make([]*uncertain.Discrete, n)
		for i, p := range cont {
			disc[i] = uncertain.Discretize(p, m, rng)
		}
		worst := 0.0
		for _, q := range qs {
			worst = math.Max(worst, maxAbs(quantify.ExactAt(disc, q), quantify.ExactAt(ref, q)))
		}
		t.AddRow("mixed disk/gauss", itoa(m), ftoa(worst), ftoa(eps))
	}
	t.Note("Theorem 4.5 would prescribe k(ε/2n) = %d samples per point for ε=%.2f, δ=0.1",
		uncertain.SampleSizeForError(n, eps, 0.1), eps)
	return t
}

// E11Spiral measures the spiral-search structure (Theorem 4.7): the
// retrieval budget m(ρ,ε) vs the spread ρ, the fixed-m vs adaptive
// retrieval counts, the error guarantee, and the query-time comparison
// against the exact sweep and Monte Carlo — including where each wins as
// N grows.
func E11Spiral(opt Options) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "spiral search (Theorem 4.7, Lemma 4.6) vs exact vs Monte Carlo",
		Claim:  "error ≤ ε retrieving m(ρ,ε) = ρk ln(ρ/ε)+k−1 locations; query O(ρk log(ρ/ε) + log N)",
		Header: []string{"n", "k", "ρ", "m(ρ,ε)", "retr(fix)", "retr(adap)", "maxErr", "spiralQ", "exactQ", "mcQ"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	eps := 0.05
	type cfg struct {
		n, k   int
		spread float64
	}
	cfgs := []cfg{{100, 4, 1}, {100, 4, 8}, {100, 4, 32}}
	if !opt.Quick {
		cfgs = append(cfgs, cfg{1000, 4, 8}, cfg{4000, 4, 8})
	}
	for _, c := range cfgs {
		pts := constructions.RandomDiscrete(rng, c.n, c.k, 100, 1.5, c.spread)
		sp, err := quantify.NewSpiral(pts)
		if err != nil {
			t.Note("n=%d: %v", c.n, err)
			continue
		}
		upts := make([]uncertain.Point, len(pts))
		for i, p := range pts {
			upts[i] = p
		}
		s := quantify.RoundsEmpirical(c.n, eps, 0.05)
		if s > 800 {
			s = 800 // cap the MC preprocessing cost in the timing table
		}
		mc, err := quantify.NewMonteCarlo(upts, s, quantify.MCOptions{Rng: rng})
		if err != nil {
			t.Note("mc n=%d: %v", c.n, err)
			continue
		}
		qs := make([]geom.Point, 64)
		for i := range qs {
			qs[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		worst := 0.0
		retrF, retrA := 0, 0
		for _, q := range qs {
			probs, m := sp.Query(q, eps)
			retrF += m
			_, ma := sp.QueryAdaptive(q, eps)
			retrA += ma
			exact := quantify.ExactAt(pts, q)
			got := make([]float64, len(pts))
			for _, pr := range probs {
				got[pr.I] = pr.P
			}
			worst = math.Max(worst, maxAbs(got, exact))
		}
		sq := timePer(len(qs), func(i int) { sp.Query(qs[i], eps) })
		eq := timePer(len(qs), func(i int) { quantify.ExactAt(pts, qs[i]) })
		mq := timePer(len(qs), func(i int) { mc.Query(qs[i]) })
		t.AddRow(itoa(c.n), itoa(c.k), ftoa(sp.Rho()), itoa(sp.M(eps)),
			itoa(retrF/len(qs)), itoa(retrA/len(qs)), ftoa(worst),
			dtoa(sq), dtoa(eq), dtoa(mq))
	}
	t.Note("ε = %.2f; spiral wins once N ≫ m(ρ,ε); exact wins at small N; MC pays s=%s rounds",
		eps, "O(ε⁻² log(n/δ))")
	return t
}

// E12Remark reproduces the adversarial example of §4.3 Remark (i):
// dropping locations lighter than ε/k inverts the apparent NN order.
func E12Remark(opt Options) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "why light locations cannot be dropped (§4.3 Remark i)",
		Claim:  "naive pruning misestimates π₂ by > 2ε and inverts the π₁ vs π₂ order",
		Header: []string{"quantity", "value"},
	}
	eps := 0.01
	n := 40
	pts, q := constructions.RemarkInstance(eps, n)
	pi := quantify.ExactAt(pts, q)
	last := len(pi) - 1
	naive := 5 * eps * (1 - 3*eps)
	t.AddRow("ε", ftoa(eps))
	t.AddRow("π₁ exact (≈3ε)", ftoa(pi[0]))
	t.AddRow("π₂ exact (<2ε)", ftoa(pi[last]))
	t.AddRow("π̂₂ dropping light points (>4ε)", ftoa(naive))
	t.AddRow("true order", "π₁ > π₂")
	if naive > pi[0] {
		t.AddRow("naive order", "π̂₂ > π₁ (inverted)")
	} else {
		t.AddRow("naive order", "not inverted (unexpected)")
	}
	return t
}

// E13Figure1 regenerates Figure 1: the distance pdf g_{q,i} for a uniform
// disk of radius 5 centered at the origin and q = (6,8). Each row is one
// sample of the curve; the analytic arc-length formula is printed next to
// the numeric derivative of the lens-area cdf.
func E13Figure1(opt Options) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "distance pdf g_{q,i} (Figure 1: D = disk(O,5), q = (6,8))",
		Claim:  "support [5,15], interior maximum; pdf = arc length of ∂B(q,r) in D",
		Header: []string{"r", "g (numeric)", "g (analytic)", "G (cdf)"},
	}
	u := uncertain.UniformDisk{D: geom.DiskAt(0, 0, 5)}
	q := geom.Pt(6, 8)
	dq, R := 10.0, 5.0
	for i := 0; i <= 20; i++ {
		r := 5 + 10*float64(i)/20
		gNum := uncertain.DistPDF(u, q, r, 1e-5)
		cosPhi := (r*r + dq*dq - R*R) / (2 * r * dq)
		if cosPhi > 1 {
			cosPhi = 1
		} else if cosPhi < -1 {
			cosPhi = -1
		}
		gAna := 2 * r * math.Acos(cosPhi) / (math.Pi * R * R)
		t.AddRow(ftoa(r), ftoa(gNum), ftoa(gAna), ftoa(u.DistCDF(q, r)))
	}
	return t
}
