package experiments

import (
	"math/rand"

	"unn/internal/constructions"
	"unn/internal/engine"
	"unn/internal/geom"
	"unn/internal/nonzero"
	"unn/internal/quantify"
	"unn/internal/uncertain"
)

// E6ContinuousQueries compares the two ways the paper answers NN≠0
// queries over disks: the V≠0 diagram with point location (Theorem 2.11,
// O(log n + t) queries but up to cubic space) versus the near-linear
// two-stage structure (Theorem 3.1), with the O(n) Lemma 2.1 oracle as
// the baseline. All three run through the unified engine layer — one
// driver, three backends — and the batch column shows the same queries
// through the parallel batch path. The table shows the space/query
// trade-off and where the crossover falls.
func E6ContinuousQueries(opt Options) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "NN≠0 queries over disks: diagram vs two-stage vs brute (Thm 2.11 / Thm 3.1)",
		Claim:  "diagram: O(log n+t) query, large space; two-stage: O(n) space, output-sensitive query",
		Header: []string{"n", "diagBuild", "diagQ", "2stageQ", "shardQ", "bruteQ", "2stageBatchQ", "avg|out|"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	ns := []int{8, 16, 32}
	if !opt.Quick {
		ns = append(ns, 64, 96)
	}
	for _, n := range ns {
		disks := constructions.RandomDisks(rng, n, 40, 0.5, 2.0)
		ds := engine.FromDisks(disks)
		var diag engine.Index
		var err error
		build := timeIt(func() {
			diag, err = engine.Build(engine.BackendDiagram, ds, engine.BuildOptions{
				Diagram: diagramOptFlatten(),
			})
		})
		if err != nil {
			t.Note("n=%d: %v", n, err)
			continue
		}
		eDiag := engine.NewEngine(diag, engine.Options{})
		eTS := mustEngine(t, engine.BackendTwoStageDisks, ds)
		eBrute := mustEngine(t, engine.BackendBrute, ds)
		eShard := mustShardedEngine(t, engine.BackendTwoStageDisks, ds, 4)
		if eTS == nil || eBrute == nil || eShard == nil {
			continue
		}
		qs := make([]geom.Point, 256)
		for i := range qs {
			qs[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
		}
		outSz := 0
		dq := timePer(len(qs), func(i int) {
			out, _ := eDiag.QueryNonzero(qs[i])
			outSz += len(out)
		})
		tq := timePer(len(qs), func(i int) { eTS.QueryNonzero(qs[i]) })
		sq := timePer(len(qs), func(i int) { eShard.QueryNonzero(qs[i]) })
		bq := timePer(len(qs), func(i int) { eBrute.QueryNonzero(qs[i]) })
		batch := timeIt(func() { eTS.BatchNonzero(qs) }) / 256
		t.AddRow(itoa(n), dtoa(build), dtoa(dq), dtoa(tq), dtoa(sq), dtoa(bq), dtoa(batch),
			ftoa(float64(outSz)/float64(len(qs))))
	}
	t.Note("diagram queries include the persistent-label reconstruction (Thm 2.11: O(log n + t))")
	t.Note("all backends run through the engine layer (internal/engine); batch uses NumCPU workers")
	t.Note("shardQ is the two-stage backend behind the sharded execution layer (k=4, merge planner)")
	return t
}

// E7DiscreteQueries measures the discrete two-stage structure of
// Theorem 3.2 as N = nk grows: near-linear space, output-sensitive
// queries, versus the O(N) brute oracle — both through the engine layer,
// with the batch column exercising the parallel path.
func E7DiscreteQueries(opt Options) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "NN≠0 queries, discrete distributions (Theorem 3.2 two-stage)",
		Claim:  "O(N log N) preprocessing, near-linear space, sublinear queries in practice",
		Header: []string{"n", "k", "N", "build", "2stageQ", "shardQ", "bruteQ", "2stageBatchQ", "avg|out|"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	type cfg struct{ n, k int }
	cfgs := []cfg{{50, 4}, {100, 4}, {200, 4}}
	if !opt.Quick {
		cfgs = append(cfgs, cfg{400, 4}, cfg{800, 4}, cfg{200, 8}, cfg{200, 16})
	}
	for _, c := range cfgs {
		pts := constructions.RandomDiscrete(rng, c.n, c.k, 100, 1.5, 1)
		ds := engine.FromDiscrete(pts)
		var ts engine.Index
		var err error
		build := timeIt(func() {
			ts, err = engine.Build(engine.BackendTwoStageDiscrete, ds, engine.BuildOptions{})
		})
		if err != nil {
			t.Note("n=%d k=%d: %v", c.n, c.k, err)
			continue
		}
		eTS := engine.NewEngine(ts, engine.Options{})
		eBrute := mustEngine(t, engine.BackendBrute, ds)
		eShard := mustShardedEngine(t, engine.BackendTwoStageDiscrete, ds, 4)
		if eBrute == nil || eShard == nil {
			continue
		}
		qs := make([]geom.Point, 256)
		for i := range qs {
			qs[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		outSz := 0
		tq := timePer(len(qs), func(i int) {
			out, _ := eTS.QueryNonzero(qs[i])
			outSz += len(out)
		})
		sq := timePer(len(qs), func(i int) { eShard.QueryNonzero(qs[i]) })
		bq := timePer(len(qs), func(i int) { eBrute.QueryNonzero(qs[i]) })
		batch := timeIt(func() { eTS.BatchNonzero(qs) }) / 256
		t.AddRow(itoa(c.n), itoa(c.k), itoa(c.n*c.k), dtoa(build), dtoa(tq), dtoa(sq), dtoa(bq),
			dtoa(batch), ftoa(float64(outSz)/float64(len(qs))))
	}
	t.Note("all backends run through the engine layer (internal/engine); batch uses NumCPU workers")
	t.Note("shardQ is the two-stage backend behind the sharded execution layer (k=4, merge planner)")
	return t
}

// mustEngine builds a backend over ds and wraps it, noting failures in
// the table.
func mustEngine(t *Table, b engine.Backend, ds *engine.Dataset) *engine.Engine {
	ix, err := engine.Build(b, ds, engine.BuildOptions{})
	if err != nil {
		t.Note("%s: %v", b, err)
		return nil
	}
	return engine.NewEngine(ix, engine.Options{})
}

// mustShardedEngine is mustEngine behind the sharded execution layer.
func mustShardedEngine(t *Table, b engine.Backend, ds *engine.Dataset, k int) *engine.Engine {
	ix, err := engine.BuildSharded(b, ds, engine.BuildOptions{}, engine.ShardOptions{Shards: k})
	if err != nil {
		t.Note("sharded %s: %v", b, err)
		return nil
	}
	return engine.NewEngine(ix, engine.Options{})
}

// diagramOptFlatten keeps the historical 1° flattening step of E6.
func diagramOptFlatten() nonzero.DiagramOptions {
	return nonzero.DiagramOptions{FlattenStep: 2 * 3.14159 / 360}
}

// E8VPrGrowth measures the exact probabilistic Voronoi diagram of §4.1:
// the bisector-line arrangement refining V_Pr(P) grows like Θ(N⁴)
// (Lemma 4.1), queries run in O(log N + t) (Theorem 4.2), and the Ω(n⁴)
// construction concentrates distinct cells as predicted.
func E8VPrGrowth(opt Options) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "exact probabilistic Voronoi diagram V_Pr (Lemma 4.1 / Theorem 4.2)",
		Claim:  "size Θ(N⁴); O(log N + t) exact queries",
		Header: []string{"workload", "n", "N", "arrF", "cells", "build", "VPrQ", "exactQ"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	ns := []int{3, 4, 5}
	if !opt.Quick {
		ns = append(ns, 6, 8)
	}
	var xs, ys []float64
	run := func(kind string, pts []*uncertain.Discrete, n int) {
		var v *quantify.VPr
		var err error
		build := timeIt(func() { v, err = quantify.BuildVPr(pts, quantify.VPrOptions{}) })
		if err != nil {
			t.Note("%s n=%d: %v", kind, n, err)
			return
		}
		N := 0
		for _, p := range pts {
			N += p.K()
		}
		qs := make([]geom.Point, 128)
		for i := range qs {
			qs[i] = geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		}
		vq := timePer(len(qs), func(i int) { v.Query(qs[i]) })
		eq := timePer(len(qs), func(i int) { quantify.ExactAt(pts, qs[i]) })
		t.AddRow(kind, itoa(n), itoa(N), itoa(v.Stats().F), itoa(v.DistinctCells()),
			dtoa(build), dtoa(vq), dtoa(eq))
		if kind == "lemma4.1" {
			xs = append(xs, float64(N))
			ys = append(ys, float64(v.DistinctCells()))
		}
	}
	for _, n := range ns {
		run("lemma4.1", constructions.VPrLowerBound(n, rng), n)
	}
	for _, n := range ns {
		run("random", constructions.RandomDiscrete(rng, n, 2, 4, 1, 1), n)
	}
	t.Note("lemma4.1 distinct-cell growth exponent %.2f (theory: up to 4.00)", fitExponent(xs, ys))
	return t
}
