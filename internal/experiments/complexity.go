package experiments

import (
	"math/rand"

	"unn/internal/constructions"
	"unn/internal/nonzero"
)

// E1RandomDiskComplexity measures the exact vertex census of V≠0(P) on
// random disk instances (Theorem 2.5 upper bound O(n³); open problem (i)
// of §5 conjectures near-linear behaviour for realistic inputs — the
// measured exponent quantifies exactly that gap).
func E1RandomDiskComplexity(opt Options) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "complexity of V≠0(P), random disks (Theorem 2.5)",
		Claim:  "O(n³) worst case; random instances are far below the bound",
		Header: []string{"n", "breakpoints", "crossings", "vertices", "verts/n", "verts/n³"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	ns := []int{8, 16, 24, 32}
	if !opt.Quick {
		ns = append(ns, 48, 64)
	}
	var xs, ys []float64
	for _, n := range ns {
		disks := constructions.RandomDisks(rng, n, 40, 0.5, 2.5)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, 0)
		v := c.Vertices()
		t.AddRow(itoa(n), itoa(c.Breakpoints), itoa(c.Crossings), itoa(v),
			ftoa(float64(v)/float64(n)), ftoa(float64(v)/float64(n*n*n)))
		xs = append(xs, float64(n))
		ys = append(ys, float64(v))
	}
	t.Note("measured growth exponent %.2f (cubic worst case = 3.00)", fitExponent(xs, ys))
	return t
}

// E2LowerBoundMixed verifies the Ω(n³) construction of Theorem 2.7 /
// Figure 5: every triple (i,j,k) contributes two vertices, 4m³ in total.
func E2LowerBoundMixed(opt Options) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Ω(n³) lower bound, mixed radii (Theorem 2.7, Figure 5)",
		Claim:  "the construction realizes ≥ 4m³ = n³/16 crossing vertices",
		Header: []string{"m", "n", "guaranteed 4m³", "measured crossings", "ratio"},
	}
	ms := []int{2, 3, 4}
	if !opt.Quick {
		ms = append(ms, 5, 6)
	}
	var xs, ys []float64
	for _, m := range ms {
		disks := constructions.LowerBoundMixed(m)
		n := len(disks)
		grid := 32 * n * n // angular separation ~4/R with R = 8n²
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, grid)
		want := constructions.LowerBoundMixedExpected(m)
		t.AddRow(itoa(m), itoa(n), itoa(want), itoa(c.Crossings),
			ftoa(float64(c.Crossings)/float64(want)))
		xs = append(xs, float64(n))
		ys = append(ys, float64(c.Crossings))
	}
	t.Note("growth exponent %.2f (theory: 3.00)", fitExponent(xs, ys))
	return t
}

// E3LowerBoundEqual verifies the equal-radius Ω(n³) construction of
// Theorem 2.8 / Figure 6: m³ guaranteed vertices with unit disks only.
func E3LowerBoundEqual(opt Options) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Ω(n³) lower bound, equal radii (Theorem 2.8, Figure 6)",
		Claim:  "the construction realizes ≥ m³ = n³/27 crossing vertices",
		Header: []string{"m", "n", "guaranteed m³", "measured crossings", "ratio"},
	}
	ms := []int{3, 4, 5}
	if !opt.Quick {
		ms = append(ms, 6, 8)
	}
	var xs, ys []float64
	for _, m := range ms {
		disks := constructions.LowerBoundEqual(m)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
		want := constructions.LowerBoundEqualExpected(m)
		t.AddRow(itoa(m), itoa(len(disks)), itoa(want), itoa(c.Crossings),
			ftoa(float64(c.Crossings)/float64(want)))
		xs = append(xs, float64(len(disks)))
		ys = append(ys, float64(c.Crossings))
	}
	t.Note("growth exponent %.2f (theory: 3.00)", fitExponent(xs, ys))
	return t
}

// E4DisjointLambda covers Theorem 2.10 / Figure 8 from both sides: the
// Ω(n²) collinear construction, and an O(λn²) sweep over the radius
// ratio λ for random disjoint disks.
func E4DisjointLambda(opt Options) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "disjoint disks: Θ(λn²) (Theorem 2.10, Figure 8)",
		Claim:  "Ω(n²) for the collinear construction; O(λn²) as λ grows",
		Header: []string{"workload", "n", "λ", "guaranteed", "vertices", "verts/n²"},
	}
	ms := []int{3, 5, 8}
	if !opt.Quick {
		ms = append(ms, 12, 16)
	}
	var xs, ys []float64
	for _, m := range ms {
		disks := constructions.LowerBoundDisjoint(m)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{Grid: 4096}, 1<<15)
		want := constructions.LowerBoundDisjointExpected(m)
		n := len(disks)
		t.AddRow("collinear", itoa(n), "1", itoa(want), itoa(c.Vertices()),
			ftoa(float64(c.Vertices())/float64(n*n)))
		xs = append(xs, float64(n))
		ys = append(ys, float64(c.Vertices()))
	}
	t.Note("collinear growth exponent %.2f (theory: 2.00)", fitExponent(xs, ys))

	rng := rand.New(rand.NewSource(opt.seed()))
	n := 24
	lambdas := []float64{1, 2, 4}
	if !opt.Quick {
		lambdas = append(lambdas, 8, 16)
	}
	for _, lam := range lambdas {
		disks := constructions.DisjointDisks(rng, n, lam)
		c := nonzero.CountDiskComplexity(disks, nonzero.GammaOptions{}, 0)
		t.AddRow("random-disjoint", itoa(n), ftoa(lam), "-", itoa(c.Vertices()),
			ftoa(float64(c.Vertices())/float64(n*n)))
	}
	return t
}

// E5DiscreteComplexity measures the discrete-case diagram of §2.2
// (Theorem 2.14, O(kn³)): the subdivision is built exactly (all
// polygonal), so arrangement vertices are genuine V≠0 vertices plus O(n)
// box artifacts.
func E5DiscreteComplexity(opt Options) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "complexity of V≠0(P), discrete distributions (Theorem 2.14)",
		Claim:  "O(kn³); linear in the description complexity k",
		Header: []string{"n", "k", "V", "E", "F", "V/(k·n³)"},
	}
	rng := rand.New(rand.NewSource(opt.seed()))
	type cfg struct{ n, k int }
	cfgs := []cfg{{4, 2}, {6, 2}, {8, 2}, {6, 3}, {6, 4}}
	if !opt.Quick {
		cfgs = append(cfgs, cfg{10, 2}, cfg{12, 2}, cfg{6, 6}, cfg{6, 8})
	}
	for _, c := range cfgs {
		pts := constructions.RandomDiscrete(rng, c.n, c.k, 30, 2.5, 1)
		diag, err := nonzero.BuildDiscreteDiagram(pts, nonzero.DiagramOptions{})
		if err != nil {
			t.Note("n=%d k=%d failed: %v", c.n, c.k, err)
			continue
		}
		st := diag.Stats()
		t.AddRow(itoa(c.n), itoa(c.k), itoa(st.V), itoa(st.E), itoa(st.F),
			ftoa(float64(st.V)/(float64(c.k)*float64(c.n*c.n*c.n))))
	}
	return t
}
