package nonzero

import (
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

// Heavily overlapping disks: every γ_ij between overlapping pairs is
// empty, yet queries must still be exact everywhere.
func TestDiskDiagramOverlappingDisks(t *testing.T) {
	disks := []geom.Disk{
		geom.DiskAt(0, 0, 3),
		geom.DiskAt(1, 0, 3),   // overlaps disk 0
		geom.DiskAt(0.5, 1, 3), // overlaps both
		geom.DiskAt(20, 0, 1),  // far away
	}
	diag, err := BuildDiskDiagram(disks, DiagramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	checked := 0
	for k := 0; k < 600 && checked < 200; k++ {
		q := geom.Pt(rng.Float64()*30-5, rng.Float64()*20-10)
		if nearBoundaryDisks(disks, q, 1e-3) {
			continue
		}
		checked++
		if got, want := diag.Query(q), BruteDisks(disks, q); !equalSets(got, want) {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
}

// Identical disks: δ and Δ coincide for the twins; NN≠0 must contain both
// everywhere both are viable, and all engines must agree.
func TestIdenticalDisks(t *testing.T) {
	disks := []geom.Disk{
		geom.DiskAt(0, 0, 2), geom.DiskAt(0, 0, 2), geom.DiskAt(10, 0, 1),
	}
	ts := NewTwoStageDisks(disks)
	rng := rand.New(rand.NewSource(52))
	for k := 0; k < 200; k++ {
		q := geom.Pt(rng.Float64()*20-5, rng.Float64()*10-5)
		if got, want := ts.Query(q), BruteDisks(disks, q); !equalSets(got, want) {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
	// Near the twins both must be reported.
	got := ts.Query(geom.Pt(0.1, 0.1))
	if len(got) < 2 {
		t.Fatalf("twins not both reported: %v", got)
	}
}

// Queries exactly at disk centers and at location points (vertices of the
// distance functions) must be answered consistently by all engines.
func TestQueriesAtSpecialPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	disks := randDisks(rng, 12, 2)
	ts := NewTwoStageDisks(disks)
	for _, d := range disks {
		if got, want := ts.Query(d.C), BruteDisks(disks, d.C); !equalSets(got, want) {
			t.Fatalf("at center %v: got %v want %v", d.C, got, want)
		}
	}
	pts := randDiscretes(rng, 10, 3)
	tsd := NewTwoStageDiscrete(pts)
	upts := DiscreteAsUncertain(pts)
	for _, p := range pts {
		for _, l := range p.Locs {
			if got, want := tsd.Query(l), Brute(upts, l); !equalSets(got, want) {
				t.Fatalf("at location %v: got %v want %v", l, got, want)
			}
		}
	}
}

// Single-location (certain) points mixed with multi-location ones.
func TestMixedCertainUncertain(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	var pts []*uncertain.Discrete
	for i := 0; i < 20; i++ {
		k := 1
		if i%2 == 0 {
			k = 3
		}
		c := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = c.Add(geom.Pt(rng.NormFloat64(), rng.NormFloat64()))
			w[j] = 1
		}
		d, err := uncertain.NewDiscrete(locs, w)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, d)
	}
	ts := NewTwoStageDiscrete(pts)
	upts := DiscreteAsUncertain(pts)
	for k := 0; k < 300; k++ {
		q := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		if got, want := ts.Query(q), Brute(upts, q); !equalSets(got, want) {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
}

// The diagram builder must reject invalid input rather than misbehave.
func TestBuilderValidation(t *testing.T) {
	if _, err := BuildDiskDiagram(nil, DiagramOptions{}); err == nil {
		t.Error("empty disks accepted")
	}
	if _, err := BuildDiskDiagram([]geom.Disk{geom.DiskAt(0, 0, 0)}, DiagramOptions{}); err == nil {
		t.Error("zero radius accepted by diagram builder")
	}
	if _, err := BuildDiscreteDiagram(nil, DiagramOptions{}); err == nil {
		t.Error("empty discrete accepted")
	}
}
