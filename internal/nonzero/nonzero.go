// Package nonzero implements the first half of the paper: nonzero
// nearest neighbors and the nonzero Voronoi diagram V≠0(P).
//
// For a query q, NN≠0(q) = {P_i : π_i(q) > 0} depends only on the
// uncertainty regions through the extreme distance functions
// δ_i(q) (minimum distance) and Δ_i(q) (maximum distance):
//
//	P_i ∈ NN≠0(q)  ⇔  δ_i(q) < Δ_j(q) for every j ≠ i      (Lemma 2.1)
//
// The package provides
//
//   - Brute: the O(n)-per-query oracle straight from Lemma 2.1, used as
//     the ground truth everywhere;
//   - the continuous (disk-region) pipeline: closed-form polar curves
//     γ_ij, lower envelopes γ_i (Lemma 2.2), exact complexity counting of
//     V≠0(P) (Theorems 2.5–2.10), and the arrangement-based diagram with
//     point location and persistent cell labels (Theorem 2.11);
//   - the discrete pipeline of §2.2: convex regions B_ij = {δ_i ≥ Δ_j}
//     from half-plane intersections (Lemma 2.13), union boundaries γ_i,
//     and the O(kn³) diagram (Theorem 2.14);
//   - near-linear two-stage query structures in the spirit of
//     Theorems 3.1/3.2 (kd-tree backed; see DESIGN.md §3 for the
//     substitution rationale).
package nonzero

import (
	"math"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

// Brute returns NN≠0(q) for arbitrary uncertain points by direct
// application of Lemma 2.1: P_i qualifies iff δ_i(q) < min_{j≠i} Δ_j(q).
// It runs in O(n) per query (two passes to get the two smallest Δ's) and
// is exact even in degenerate cases such as zero-radius regions, where
// the Δ(q)-based test of Eq. (4) needs the second minimum.
func Brute(pts []uncertain.Point, q geom.Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	// Two smallest Δ values.
	min1, min2 := math.Inf(1), math.Inf(1)
	arg1 := -1
	for i, p := range pts {
		d := p.MaxDist(q)
		if d < min1 {
			min2 = min1
			min1, arg1 = d, i
		} else if d < min2 {
			min2 = d
		}
	}
	var out []int
	for i, p := range pts {
		bound := min1
		if i == arg1 {
			bound = min2 // min over j ≠ i
		}
		if p.MinDist(q) < bound || n == 1 {
			out = append(out, i)
		}
	}
	return out
}

// BruteDisks is Brute specialized to disk uncertainty regions.
func BruteDisks(disks []geom.Disk, q geom.Point) []int {
	n := len(disks)
	if n == 0 {
		return nil
	}
	min1, min2 := math.Inf(1), math.Inf(1)
	arg1 := -1
	for i, d := range disks {
		v := d.MaxDist(q)
		if v < min1 {
			min2 = min1
			min1, arg1 = v, i
		} else if v < min2 {
			min2 = v
		}
	}
	var out []int
	for i, d := range disks {
		bound := min1
		if i == arg1 {
			bound = min2
		}
		if d.MinDist(q) < bound || n == 1 {
			out = append(out, i)
		}
	}
	return out
}

// DisksAsUncertain wraps disks as uniform uncertain points (the pdf does
// not matter for NN≠0; see the remark after Eq. (3)).
func DisksAsUncertain(disks []geom.Disk) []uncertain.Point {
	out := make([]uncertain.Point, len(disks))
	for i, d := range disks {
		out[i] = uncertain.UniformDisk{D: d}
	}
	return out
}

// DiscreteAsUncertain converts a slice of discrete points to the generic
// interface.
func DiscreteAsUncertain(pts []*uncertain.Discrete) []uncertain.Point {
	out := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}
