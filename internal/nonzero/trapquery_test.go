package nonzero

import (
	"math/rand"
	"testing"

	"unn/internal/geom"
)

func TestTrapQuerierMatchesOracleDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		disks := randDisks(rng, 4+rng.Intn(8), 2.0)
		diag, err := BuildDiskDiagram(disks, DiagramOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tq, err := NewTrapQuerier(diag, rng)
		if err != nil {
			t.Fatal(err)
		}
		traps, nodes := tq.Size()
		if traps == 0 || nodes < traps {
			t.Fatalf("degenerate sizes: %d traps, %d nodes", traps, nodes)
		}
		checked := 0
		for k := 0; k < 800 && checked < 300; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			if nearBoundaryDisks(disks, q, 1e-3) {
				continue
			}
			checked++
			got := tq.Query(q)
			want := BruteDisks(disks, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestTrapQuerierMatchesOracleDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := randDiscretes(rng, 6, 3)
	diag, err := BuildDiscreteDiagram(pts, DiagramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tq, err := NewTrapQuerier(diag, rng)
	if err != nil {
		t.Fatal(err)
	}
	upts := DiscreteAsUncertain(pts)
	checked := 0
	for k := 0; k < 800 && checked < 300; k++ {
		q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
		if nearBoundaryDiscrete(pts, q, 1e-6) {
			continue
		}
		checked++
		got := tq.Query(q)
		want := Brute(upts, q)
		if !equalSets(got, want) {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
}

// Far-outside queries must fall back to the oracle.
func TestTrapQuerierFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	disks := randDisks(rng, 5, 2)
	diag, err := BuildDiskDiagram(disks, DiagramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tq, err := NewTrapQuerier(diag, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(1e8, -1e8)
	if got := tq.Query(q); !equalSets(got, BruteDisks(disks, q)) {
		t.Fatal("fallback mismatch")
	}
}
