package nonzero

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

func randDisks(rng *rand.Rand, n int, maxR float64) []geom.Disk {
	disks := make([]geom.Disk, n)
	for i := range disks {
		disks[i] = geom.DiskAt(rng.Float64()*20-10, rng.Float64()*20-10, 0.2+rng.Float64()*maxR)
	}
	return disks
}

func randDiscretes(rng *rand.Rand, n, k int) []*uncertain.Discrete {
	pts := make([]*uncertain.Discrete, n)
	for i := range pts {
		c := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = c.Add(geom.Pt(rng.NormFloat64(), rng.NormFloat64()))
			w[j] = 0.2 + rng.Float64()
		}
		d, err := uncertain.NewDiscrete(locs, w)
		if err != nil {
			panic(err)
		}
		pts[i] = d
	}
	return pts
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBruteBasics(t *testing.T) {
	// Single point: always the NN.
	one := DisksAsUncertain([]geom.Disk{geom.DiskAt(0, 0, 1)})
	if got := Brute(one, geom.Pt(100, 100)); !equalSets(got, []int{0}) {
		t.Fatalf("single: %v", got)
	}
	// Two distant disks: only the near one qualifies far to its side.
	disks := []geom.Disk{geom.DiskAt(0, 0, 1), geom.DiskAt(100, 0, 1)}
	pts := DisksAsUncertain(disks)
	if got := Brute(pts, geom.Pt(-5, 0)); !equalSets(got, []int{0}) {
		t.Fatalf("far left: %v", got)
	}
	// Near the middle both qualify.
	if got := Brute(pts, geom.Pt(50, 0)); !equalSets(got, []int{0, 1}) {
		t.Fatalf("middle: %v", got)
	}
	// Certain points (zero radius): a unique closest certain point is the
	// unique nonzero NN — the Eq. (4) strict test would wrongly drop it.
	cpts := DisksAsUncertain([]geom.Disk{geom.DiskAt(0, 0, 0), geom.DiskAt(10, 0, 0)})
	if got := Brute(cpts, geom.Pt(1, 0)); !equalSets(got, []int{0}) {
		t.Fatalf("certain: %v", got)
	}
}

// γ_i correctness: points on the curve satisfy δ_i = Δ, inside points have
// δ_i < Δ, outside points δ_i > Δ.
func TestGammaOnCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		disks := randDisks(rng, 2+rng.Intn(8), 2)
		// Ensure strict separation is possible; overlapping pairs are fine
		// (γ_ij empty) but we need at least some finite curve.
		i := rng.Intn(len(disks))
		g := ComputeGamma(disks, i, GammaOptions{})
		deltaMin := func(x geom.Point) float64 {
			best := math.Inf(1)
			for _, d := range disks {
				best = math.Min(best, d.MaxDist(x))
			}
			return best
		}
		for k := 0; k < 200; k++ {
			theta := rng.Float64() * 2 * math.Pi
			tRad := g.Radius(disks, theta)
			if math.IsInf(tRad, 0) {
				continue
			}
			x := disks[i].C.Add(geom.Dir(theta).Scale(tRad))
			if d := math.Abs(disks[i].MinDist(x) - deltaMin(x)); d > 1e-6 {
				t.Fatalf("on-curve residual %v at theta=%v", d, theta)
			}
			// Slightly inside (radially): member; slightly outside: not.
			xin := disks[i].C.Add(geom.Dir(theta).Scale(tRad * 0.999))
			xout := disks[i].C.Add(geom.Dir(theta).Scale(tRad * 1.001))
			if disks[i].MinDist(xin) >= deltaMin(xin)+1e-12 {
				t.Fatalf("inside point not member at theta=%v", theta)
			}
			if disks[i].MinDist(xout) <= deltaMin(xout)-1e-12 {
				t.Fatalf("outside point member at theta=%v", theta)
			}
		}
	}
}

func TestTijDiskClosedForm(t *testing.T) {
	di := geom.DiskAt(0, 0, 1)
	dj := geom.DiskAt(10, 0, 1)
	// Along the center line: t − 1 = (10 − t) + 1 → t = 6.
	if got := TijDisk(di, dj, geom.Pt(1, 0)); math.Abs(got-6) > 1e-12 {
		t.Fatalf("t = %v want 6", got)
	}
	// Opposite direction: no crossing.
	if got := TijDisk(di, dj, geom.Pt(-1, 0)); !math.IsInf(got, 1) {
		t.Fatalf("backward ray t = %v", got)
	}
	// Overlapping disks: empty curve.
	if got := TijDisk(di, geom.DiskAt(1, 0, 1), geom.Pt(1, 0)); !math.IsInf(got, 1) {
		t.Fatalf("overlap t = %v", got)
	}
	// Generic direction: verify the defining equation δ_i = Δ_j.
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 500; k++ {
		di := geom.DiskAt(rng.Float64()*10-5, rng.Float64()*10-5, 0.1+rng.Float64()*2)
		dj := geom.DiskAt(rng.Float64()*10-5, rng.Float64()*10-5, 0.1+rng.Float64()*2)
		u := geom.Dir(rng.Float64() * 2 * math.Pi)
		tt := TijDisk(di, dj, u)
		if math.IsInf(tt, 0) {
			continue
		}
		x := di.C.Add(u.Scale(tt))
		if r := math.Abs(di.MinDist(x) - dj.MaxDist(x)); r > 1e-6 {
			t.Fatalf("closed form residual %v", r)
		}
	}
}

func TestCountComplexityTwoDisks(t *testing.T) {
	disks := []geom.Disk{geom.DiskAt(0, 0, 1), geom.DiskAt(10, 0, 1)}
	c := CountDiskComplexity(disks, GammaOptions{}, 0)
	if c.Crossings != 0 {
		t.Fatalf("two disks cannot produce crossings: %+v", c)
	}
	if c.Breakpoints != 0 {
		t.Fatalf("two disks cannot produce breakpoints: %+v", c)
	}
}

func TestTwoStageDisksMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		disks := randDisks(rng, 1+rng.Intn(40), 3)
		ts := NewTwoStageDisks(disks)
		for k := 0; k < 200; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			got := ts.Query(q)
			want := BruteDisks(disks, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestTwoStageDisksDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Mix of certain points (R=0) and disks.
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		disks := make([]geom.Disk, n)
		for i := range disks {
			r := 0.0
			if rng.Intn(2) == 0 {
				r = rng.Float64() * 2
			}
			disks[i] = geom.DiskAt(rng.Float64()*20-10, rng.Float64()*20-10, r)
		}
		ts := NewTwoStageDisks(disks)
		for k := 0; k < 100; k++ {
			q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
			got := ts.Query(q)
			want := BruteDisks(disks, q)
			if !equalSets(got, want) {
				t.Fatalf("degenerate trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
	// Query exactly at a certain point.
	disks := []geom.Disk{geom.DiskAt(0, 0, 0), geom.DiskAt(5, 0, 1)}
	ts := NewTwoStageDisks(disks)
	if got := ts.Query(geom.Pt(0, 0)); !equalSets(got, BruteDisks(disks, geom.Pt(0, 0))) {
		t.Fatalf("query at certain point: %v", got)
	}
}

func TestTwoStageDiscreteMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		pts := randDiscretes(rng, 1+rng.Intn(25), 1+rng.Intn(5))
		ts := NewTwoStageDiscrete(pts)
		upts := DiscreteAsUncertain(pts)
		for k := 0; k < 150; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			got := ts.Query(q)
			want := Brute(upts, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestDiskDiagramMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		disks := randDisks(rng, 3+rng.Intn(8), 2.5)
		diag, err := BuildDiskDiagram(disks, DiagramOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for k := 0; k < 600 && checked < 250; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			// Skip queries too close to a curve: the flattened polylines
			// are accurate to ~1e-5·diam there.
			if nearBoundaryDisks(disks, q, 1e-3) {
				continue
			}
			checked++
			got := diag.Query(q)
			want := BruteDisks(disks, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
		if checked < 50 {
			t.Fatalf("too few robust queries (%d)", checked)
		}
	}
}

// nearBoundaryDisks reports whether q is within eps (relative) of some
// curve γ_i, i.e. |δ_i(q) − Δ(q)| small.
func nearBoundaryDisks(disks []geom.Disk, q geom.Point, eps float64) bool {
	delta := math.Inf(1)
	for _, d := range disks {
		delta = math.Min(delta, d.MaxDist(q))
	}
	for _, d := range disks {
		if math.Abs(d.MinDist(q)-delta) < eps*(1+delta) {
			return true
		}
	}
	return false
}

func TestDiskDiagramFallbackOutside(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	disks := randDisks(rng, 5, 2)
	diag, err := BuildDiskDiagram(disks, DiagramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Way outside the cap: must still answer exactly (oracle fallback).
	q := geom.Pt(1e9, 1e9)
	if got := diag.Query(q); !equalSets(got, BruteDisks(disks, q)) {
		t.Fatalf("far query mismatch")
	}
}

func TestBijPolygon(t *testing.T) {
	// Two certain points: B_ij = {x : d(x,p_i) ≥ d(x,p_j)} is the
	// half-plane beyond the bisector.
	pi := uncertain.UniformDiscrete([]geom.Point{geom.Pt(0, 0)})
	pj := uncertain.UniformDiscrete([]geom.Point{geom.Pt(4, 0)})
	box := geom.Rect{Min: geom.Pt(-50, -50), Max: geom.Pt(50, 50)}
	poly := BijPolygon(pi, pj, box)
	if poly == nil {
		t.Fatal("empty B_ij")
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 500; k++ {
		q := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		in := geom.PointInConvex(poly, q)
		want := pi.MinDist(q) >= pj.MaxDist(q)
		margin := math.Abs(pi.MinDist(q) - pj.MaxDist(q))
		if margin > 1e-9 && in != want {
			t.Fatalf("q=%v in=%v want=%v", q, in, want)
		}
	}
}

func TestDiscreteDiagramMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 4; trial++ {
		pts := randDiscretes(rng, 3+rng.Intn(6), 2+rng.Intn(3))
		diag, err := BuildDiscreteDiagram(pts, DiagramOptions{})
		if err != nil {
			t.Fatal(err)
		}
		upts := DiscreteAsUncertain(pts)
		checked := 0
		for k := 0; k < 600 && checked < 250; k++ {
			q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			if nearBoundaryDiscrete(pts, q, 1e-6) {
				continue
			}
			checked++
			got := diag.Query(q)
			want := Brute(upts, q)
			if !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func nearBoundaryDiscrete(pts []*uncertain.Discrete, q geom.Point, eps float64) bool {
	delta := math.Inf(1)
	for _, p := range pts {
		delta = math.Min(delta, p.MaxDist(q))
	}
	for _, p := range pts {
		if math.Abs(p.MinDist(q)-delta) < eps*(1+delta) {
			return true
		}
	}
	return false
}

func TestDiagramCellsAndGuaranteed(t *testing.T) {
	// Two far-apart disks: near each disk only that disk is a nonzero NN,
	// so guaranteed cells must exist.
	disks := []geom.Disk{geom.DiskAt(0, 0, 1), geom.DiskAt(30, 0, 1)}
	diag, err := BuildDiskDiagram(disks, DiagramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diag.GuaranteedCells() == 0 {
		t.Fatal("no guaranteed cells found")
	}
	if got := diag.Query(geom.Pt(0, 0)); !equalSets(got, []int{0}) {
		t.Fatalf("at disk 0: %v", got)
	}
	if got := diag.Query(geom.Pt(15, 0.1)); !equalSets(got, []int{0, 1}) {
		t.Fatalf("midpoint: %v", got)
	}
}
