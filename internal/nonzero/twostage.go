package nonzero

import (
	"math"
	"slices"

	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/kernel"
	"unn/internal/uncertain"
)

// TwoStageDisks answers NN≠0 queries over disk regions with near-linear
// space, following the two-stage plan of Theorem 3.1:
//
//	stage 1: Δ(q) = min_i (d(q,c_i) + r_i) — an additively-weighted NN
//	         query (the lower envelope whose projection is the
//	         additively-weighted Voronoi diagram M of Section 2.1);
//	stage 2: report {i : δ_i(q) < Δ(q)} — all disks intersecting the open
//	         disk of radius Δ(q) centered at q.
//
// Both stages run on implicit-array weighted kd-trees (the practical
// stand-in for the [KMR+16] structure; see DESIGN.md §3). Space is O(n);
// queries are output-sensitive and allocation-free on the QueryAppend
// path. Results agree exactly with the Brute oracle, including
// zero-radius (certain) regions, which need the second-minimum test of
// Lemma 2.1 on a rare slow path.
type TwoStageDisks struct {
	disks []geom.Disk
	tree  *kdtree.FlatTree
}

// NewTwoStageDisks preprocesses the disks in O(n log n).
func NewTwoStageDisks(disks []geom.Disk) *TwoStageDisks {
	items := make([]kdtree.Item, len(disks))
	for i, d := range disks {
		items[i] = kdtree.Item{P: d.C, W: d.R, ID: i}
	}
	return &TwoStageDisks{disks: disks, tree: kdtree.NewFlat(items)}
}

// Delta returns Δ(q) = min_i Δ_i(q).
func (t *TwoStageDisks) Delta(q geom.Point) float64 {
	_, v, ok := t.tree.NearestAdditive(q)
	if !ok {
		return math.Inf(1)
	}
	return v
}

// Query returns NN≠0(q), sorted ascending.
func (t *TwoStageDisks) Query(q geom.Point) []int {
	return t.QueryAppend(q, nil)
}

// QueryAppend appends NN≠0(q), sorted ascending, to dst — without
// allocating on the steady-state path (the buffer aside).
func (t *TwoStageDisks) QueryAppend(q geom.Point, dst []int) []int {
	n := len(t.disks)
	switch n {
	case 0:
		return dst
	case 1:
		return append(dst, 0)
	}
	nb, delta, _ := t.tree.NearestAdditive(q)
	if delta <= 0 {
		// A certain point coincides with q; measure-zero tie handling.
		return append(dst, BruteDisks(t.disks, q)...)
	}
	start := len(dst)
	dst = t.tree.AppendBelow(q, delta, dst)
	// Degenerate slow path: a zero-radius minimizer has δ = Δ = delta and
	// is never caught by the strict stage-2 test, yet qualifies under
	// Lemma 2.1 iff it beats the second-smallest Δ.
	if nb.W == 0 {
		i := nb.ID
		min2 := math.Inf(1)
		for j, d := range t.disks {
			if j != i {
				min2 = math.Min(min2, d.MaxDist(q))
			}
		}
		if t.disks[i].MinDist(q) < min2 {
			dst = append(dst, i)
		}
	}
	return sortDedupTail(dst, start)
}

// sortDedupTail sorts dst[start:] ascending and removes duplicates in
// place, leaving dst[:start] untouched.
func sortDedupTail(dst []int, start int) []int {
	tail := dst[start:]
	slices.Sort(tail)
	w := 0
	for r := 0; r < len(tail); r++ {
		if w == 0 || tail[w-1] != tail[r] {
			tail[w] = tail[r]
			w++
		}
	}
	return dst[:start+w]
}

// ---------------------------------------------------------------------------

// TwoStageDiscrete answers NN≠0 queries over discrete uncertain points
// (the two-stage reduction of Theorem 3.2, kd-tree backed):
//
//	stage 1: Δ(q) = min_i max_a d(q, p_ia) — the minimum over points of
//	         the farthest-location distance (the surface Φ of §2.2);
//	         candidates are pruned through each point's smallest
//	         enclosing disk (o_i, ρ_i), which brackets
//	         max_a d(q,p_ia) ∈ [d(q,o_i), d(q,o_i)+ρ_i];
//	stage 2: a circular range query of radius Δ(q) over all N = nk
//	         locations reports every i with δ_i(q) < Δ(q).
type TwoStageDiscrete struct {
	pts     []*uncertain.Discrete
	centers *kdtree.FlatTree // SEB centers with weight = SEB radius
	locs    *kdtree.FlatTree // all N locations; ID = owner index
}

// NewTwoStageDiscrete preprocesses in O(N log N), storing O(N).
func NewTwoStageDiscrete(pts []*uncertain.Discrete) *TwoStageDiscrete {
	centers := make([]kdtree.Item, len(pts))
	var locs []kdtree.Item
	for i, p := range pts {
		seb := p.EnclosingDisk()
		centers[i] = kdtree.Item{P: seb.C, W: seb.R, ID: i}
		for _, l := range p.Locs {
			locs = append(locs, kdtree.Item{P: l, ID: i})
		}
	}
	return &TwoStageDiscrete{pts: pts, centers: kdtree.NewFlat(centers), locs: kdtree.NewFlat(locs)}
}

// Delta returns Δ(q) = min_i Δ_i(q) exactly, along with the minimizing
// point index.
func (t *TwoStageDiscrete) Delta(q geom.Point) (float64, int) {
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	return t.delta(q, sc)
}

func (t *TwoStageDiscrete) delta(q geom.Point, sc *kernel.Scratch) (float64, int) {
	// Upper bound from the additively-weighted NN over SEBs:
	// min_i Δ_i(q) ≤ min_i (d(q,o_i) + ρ_i).
	nb, ub, ok := t.centers.NearestAdditive(q)
	if !ok {
		return math.Inf(1), -1
	}
	best, arg := t.pts[nb.ID].MaxDist(q), nb.ID
	if best > ub {
		best = ub // cannot happen, but keep the invariant tight
	}
	// Any point whose SEB-center lower bound d(q,o_i) beats the current
	// best must be evaluated exactly. The center of a smallest enclosing
	// disk lies in the convex hull of the locations, so
	// max_a d(q,p_ia) ≥ d(q,o_i). The refinement visits candidates in the
	// tree's reporting order, matching the callback traversal.
	cands := t.centers.AppendWithin(q, best, true, sc.Loc[:0])
	sc.Loc = cands
	for _, id := range cands {
		if v := t.pts[id].MaxDist(q); v < best {
			best, arg = v, id
		}
	}
	return best, arg
}

// Query returns NN≠0(q), sorted ascending.
func (t *TwoStageDiscrete) Query(q geom.Point) []int {
	return t.QueryAppend(q, nil)
}

// QueryAppend appends NN≠0(q), sorted ascending, to dst. Steady-state
// queries allocate nothing beyond the result buffer: owner ids reported
// by the range query are deduplicated by sort rather than a set map.
func (t *TwoStageDiscrete) QueryAppend(q geom.Point, dst []int) []int {
	n := len(t.pts)
	switch n {
	case 0:
		return dst
	case 1:
		return append(dst, 0)
	}
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	delta, arg := t.delta(q, sc)
	if delta <= 0 {
		return append(dst, Brute(DiscreteAsUncertain(t.pts), q)...)
	}
	start := len(dst)
	dst = t.locs.AppendWithin(q, delta, true, dst)
	dst = sortDedupTail(dst, start)
	// Degenerate slow path: if every location of the minimizer is at
	// distance exactly Δ(q) (e.g. a single-location point), the strict
	// stage-2 test misses it; Lemma 2.1 then compares against
	// min_{j≠arg} Δ_j.
	if arg >= 0 {
		if _, found := slices.BinarySearch(dst[start:], arg); !found {
			min2 := math.Inf(1)
			for j, p := range t.pts {
				if j != arg {
					min2 = math.Min(min2, p.MaxDist(q))
				}
			}
			if t.pts[arg].MinDist(q) < min2 {
				dst = append(dst, arg)
				dst = sortDedupTail(dst, start)
			}
		}
	}
	return dst
}
