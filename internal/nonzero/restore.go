package nonzero

import (
	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/uncertain"
)

// Tree exposes the kd-tree over disk centers for serialization.
func (t *TwoStageDisks) Tree() *kdtree.FlatTree { return t.tree }

// Trees exposes the SEB-center and location kd-trees for serialization.
func (t *TwoStageDiscrete) Trees() (centers, locs *kdtree.FlatTree) {
	return t.centers, t.locs
}

// RestoreTwoStageDisks reassembles a TwoStageDisks around an
// already-built tree — the snapshot path, which skips the O(n log n)
// kd-tree build. The tree must be the one NewTwoStageDisks would build
// over the same disks (items centered at d.C with weight d.R, ID = i);
// callers decode both from the same snapshot, so this holds by
// construction.
func RestoreTwoStageDisks(disks []geom.Disk, tree *kdtree.FlatTree) *TwoStageDisks {
	return &TwoStageDisks{disks: disks, tree: tree}
}

// RestoreTwoStageDiscrete reassembles a TwoStageDiscrete around its two
// persisted trees, skipping both the kd-tree builds and — the expensive
// part — the per-point smallest-enclosing-disk computation that seeds
// the centers tree.
func RestoreTwoStageDiscrete(pts []*uncertain.Discrete, centers, locs *kdtree.FlatTree) *TwoStageDiscrete {
	return &TwoStageDiscrete{pts: pts, centers: centers, locs: locs}
}
