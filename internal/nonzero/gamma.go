package nonzero

import (
	"math"

	"unn/internal/envelope"
	"unn/internal/geom"
)

// Gamma is the curve γ_i = {x : δ_i(x) = Δ(x)} of one disk, represented
// exactly in polar coordinates around the disk center: the lower envelope
// over j≠i of the closed-form hyperbola branches γ_ij (Lemma 2.2). Pieces
// with J == -1 are directions in which γ_i escapes to infinity (P_i stays
// a nonzero NN arbitrarily far out in that direction).
type Gamma struct {
	I      int
	Center geom.Point
	Pieces []envelope.Piece // over θ ∈ [0, 2π); J indexes the *other* disk
	fs     []envelope.Func
}

// TijDisk returns the distance t ≥ 0 from c_i along direction u at which
// δ_i = Δ_j, or +Inf if the ray misses γ_ij. Closed form: with
// d = c_j − c_i, s = r_i + r_j, b = <u, d>,
//
//	t = (|d|² − s²) / (2(b − s)),   valid iff |d| > s and b > s.
//
// For overlapping or touching disks (|d| ≤ s) the curve γ_ij is empty:
// δ_i(x) = Δ_j(x) would force |x−c_j| = t − s ≥ 0 with t ≤ b + ...,
// impossible unless the disks are strictly separated.
func TijDisk(di, dj geom.Disk, u geom.Point) float64 {
	d := dj.C.Sub(di.C)
	c2 := d.Norm2()
	s := di.R + dj.R
	if c2 <= s*s {
		return math.Inf(1)
	}
	b := u.Dot(d)
	den := 2 * (b - s)
	if den <= 0 {
		return math.Inf(1)
	}
	t := (c2 - s*s) / den
	if t < s {
		return math.Inf(1)
	}
	return t
}

// GammaOptions tunes the envelope computation.
type GammaOptions struct {
	// Grid is the number of angular samples for the envelope scan
	// (default max(512, 16n)).
	Grid int
	// Tol is the angular bisection tolerance for breakpoints
	// (default 1e-12).
	Tol float64
}

func (o GammaOptions) withDefaults(n int) GammaOptions {
	if o.Grid == 0 {
		o.Grid = 512
		if 16*n > o.Grid {
			o.Grid = 16 * n
		}
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	return o
}

// ComputeGamma computes γ_i for disk i of the set.
func ComputeGamma(disks []geom.Disk, i int, opt GammaOptions) *Gamma {
	opt = opt.withDefaults(len(disks))
	di := disks[i]
	fs := make([]envelope.Func, 0, len(disks)-1)
	idx := make([]int, 0, len(disks)-1)
	for j, dj := range disks {
		if j == i {
			continue
		}
		dj := dj
		fs = append(fs, func(theta float64) float64 {
			return TijDisk(di, dj, geom.Dir(theta))
		})
		idx = append(idx, j)
	}
	pieces := envelope.Lower(fs, 0, 2*math.Pi, opt.Grid, opt.Tol)
	// Remap envelope labels to disk indices.
	for pi := range pieces {
		if pieces[pi].J >= 0 {
			pieces[pi].J = idx[pieces[pi].J]
		}
	}
	return &Gamma{I: i, Center: di.C, Pieces: pieces, fs: fs}
}

// At returns the point of γ_i at angle theta and true, or false if γ_i is
// unbounded (or empty) in that direction.
func (g *Gamma) At(disks []geom.Disk, theta float64) (geom.Point, bool) {
	t := g.Radius(disks, theta)
	if math.IsInf(t, 0) {
		return geom.Point{}, false
	}
	return g.Center.Add(geom.Dir(theta).Scale(t)), true
}

// Radius returns γ_i's radial distance at angle theta (+Inf if absent).
func (g *Gamma) Radius(disks []geom.Disk, theta float64) float64 {
	best := math.Inf(1)
	di := disks[g.I]
	for j, dj := range disks {
		if j == g.I {
			continue
		}
		if t := TijDisk(di, dj, geom.Dir(theta)); t < best {
			best = t
		}
	}
	return best
}

// Breakpoints returns the number of genuine breakpoints of γ_i: angular
// transitions between two finite envelope pieces (transitions to/from an
// unbounded gap are escapes to infinity, not vertices of V≠0).
func (g *Gamma) Breakpoints() int {
	if len(g.Pieces) < 2 {
		return 0
	}
	count := 0
	for k := 1; k < len(g.Pieces); k++ {
		if g.Pieces[k-1].J >= 0 && g.Pieces[k].J >= 0 {
			count++
		}
	}
	// Wrap-around transition at θ = 0 ≡ 2π.
	first, last := g.Pieces[0], g.Pieces[len(g.Pieces)-1]
	if first.J >= 0 && last.J >= 0 && first.J != last.J {
		count++
	}
	return count
}

// DiskComplexity is the exact combinatorial census of the vertices of
// V≠0(P) for disk regions, computed entirely in the polar
// parameterization (no bounding box, no flattening bias):
// Breakpoints are the envelope transitions of each γ_i, Crossings the
// transversal intersections γ_i ∩ γ_j located by sign changes of
// δ_j(x) − Δ(x) along γ_i.
type DiskComplexity struct {
	Breakpoints int
	Crossings   int
	// PerPair[i][j] (i<j) is the number of γ_i ∩ γ_j crossings.
	PerPair map[[2]int]int
}

// Vertices returns the total vertex count of V≠0(P).
func (c DiskComplexity) Vertices() int { return c.Breakpoints + c.Crossings }

// CountDiskComplexity runs the census. grid is the angular sampling
// resolution per curve used for crossing detection (default 4× the
// envelope grid); crossings closer than one grid step may be missed, so
// workloads with Θ(n³) vertices should pass a grid ≳ n² samples.
func CountDiskComplexity(disks []geom.Disk, opt GammaOptions, grid int) DiskComplexity {
	n := len(disks)
	opt = opt.withDefaults(n)
	if grid == 0 {
		grid = 4 * opt.Grid
	}
	out := DiskComplexity{PerPair: map[[2]int]int{}}
	deltaMin := func(x geom.Point) float64 {
		best := math.Inf(1)
		for _, d := range disks {
			best = math.Min(best, d.MaxDist(x))
		}
		return best
	}
	for i := 0; i < n; i++ {
		g := ComputeGamma(disks, i, opt)
		out.Breakpoints += g.Breakpoints()
		if n < 2 {
			continue
		}
		// One sweep along γ_i tracking the sign of h_j = δ_j(x) − Δ(x)
		// for every j > i simultaneously.
		prevSign := make([]int, n) // 0 = unknown
		for k := 0; k <= grid; k++ {
			theta := 2 * math.Pi * float64(k) / float64(grid)
			x, ok := g.At(disks, theta)
			if !ok {
				for j := range prevSign {
					prevSign[j] = 0
				}
				continue
			}
			dm := deltaMin(x)
			for j := i + 1; j < n; j++ {
				h := disks[j].MinDist(x) - dm
				s := 0
				if h > 0 {
					s = 1
				} else if h < 0 {
					s = -1
				}
				if s != 0 && prevSign[j] != 0 && s != prevSign[j] {
					// A transversal γ_i ∩ γ_j crossing between samples.
					out.Crossings++
					out.PerPair[[2]int{i, j}]++
				}
				if s != 0 {
					prevSign[j] = s
				}
			}
		}
	}
	return out
}
