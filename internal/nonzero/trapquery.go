package nonzero

import (
	"fmt"
	"math/rand"

	"unn/internal/geom"
	"unn/internal/trapmap"
)

// TrapQuerier answers Diagram queries through a randomized-incremental
// trapezoidal map ([dBCKO08, Ch. 6]) built over the diagram's edges —
// the literal point-location structure behind Theorem 2.11, with O(log)
// expected query depth and O(μ) expected size. Every trapezoid lies
// inside a single cell of V≠0(P), so its label is the exact oracle value
// at any interior point, computed once at construction.
type TrapQuerier struct {
	m      *trapmap.Map
	labels map[*trapmap.Trapezoid][]int
	diag   *Diagram
}

// NewTrapQuerier builds the trapezoidal map and labels every trapezoid.
func NewTrapQuerier(d *Diagram, rng *rand.Rand) (*TrapQuerier, error) {
	segs := make([]geom.Segment, len(d.Arr.Edges))
	for i, e := range d.Arr.Edges {
		segs[i] = d.Arr.Seg(e)
	}
	m, err := trapmap.New(segs, rng)
	if err != nil {
		return nil, fmt.Errorf("nonzero: trapezoidal map: %w", err)
	}
	tq := &TrapQuerier{m: m, labels: map[*trapmap.Trapezoid][]int{}, diag: d}
	for _, t := range m.Trapezoids() {
		tq.labels[t] = d.Oracle(m.Rep(t))
	}
	return tq, nil
}

// Size returns the number of trapezoids and search-DAG nodes.
func (tq *TrapQuerier) Size() (traps, nodes int) { return tq.m.Count() }

// Query returns NN≠0(q).
func (tq *TrapQuerier) Query(q geom.Point) []int {
	if !tq.diag.Box.Contains(q) || !tq.m.Bounds().Contains(q) {
		return tq.diag.Oracle(q)
	}
	if lbl, ok := tq.labels[tq.m.Locate(q)]; ok {
		return lbl
	}
	return tq.diag.Oracle(q)
}
