package nonzero

import (
	"fmt"
	"math"

	"unn/internal/arrgn"
	"unn/internal/geom"
	"unn/internal/uncertain"
)

// Diagram is a constructed nonzero Voronoi diagram V≠0(P): the planar
// subdivision induced by the curves γ_1,…,γ_n inside a working box, with
// slab point location and persistent per-cell labels (Theorem 2.11).
// Queries return NN≠0(q) in O(log + t); points outside the box fall back
// to the O(n) oracle (far-field cells are unbounded, so the fallback is
// exact and rare for realistic query distributions).
//
// Correctness of the toggle labels: every emitted edge lies on a true
// curve γ_i, and crossing γ_i transversally flips exactly P_i's
// membership in NN≠0 (Eq. (4)). Each slab's topmost gap is labeled by the
// exact Lemma 2.1 oracle, and any true crossing above that gap is outside
// the box and therefore above the oracle-labeled representative. No
// artificial closure edges are ever emitted.
type Diagram struct {
	Arr    *arrgn.Arrangement
	Loc    *arrgn.Locator
	Labels *arrgn.LabelStore
	Box    geom.Rect
	// Oracle is the exact Lemma 2.1 evaluator used for slab-top seeds and
	// out-of-range fallback.
	Oracle func(q geom.Point) []int
	stats  arrgn.Stats
}

// Stats returns the combinatorial statistics of the built subdivision
// (for disk inputs these count the flattened polylines; use
// CountDiskComplexity for the exact vertex census).
func (d *Diagram) Stats() arrgn.Stats { return d.stats }

// Query returns NN≠0(q), sorted ascending.
func (d *Diagram) Query(q geom.Point) []int {
	if d.Box.Contains(q) {
		if lbl, ok := d.Labels.LabelAt(q); ok {
			return lbl
		}
	}
	return d.Oracle(q)
}

// Cells enumerates one representative point and label per located cell
// gap. Cells spanning several slabs are visited once per slab.
func (d *Diagram) Cells(fn func(rep geom.Point, label []int)) {
	for s := 0; s < d.Loc.SlabCount(); s++ {
		for g := 0; g < d.Loc.GapCount(s); g++ {
			fn(d.Loc.GapRep(s, g), d.Labels.Label(s, g))
		}
	}
}

// GuaranteedCells counts the located gaps whose label is a single point —
// the guaranteed Voronoi diagram of [SE08], where π_i(q) = 1.
func (d *Diagram) GuaranteedCells() int {
	count := 0
	d.Cells(func(_ geom.Point, label []int) {
		if len(label) == 1 {
			count++
		}
	})
	return count
}

// DiagramOptions tunes diagram construction.
type DiagramOptions struct {
	Gamma GammaOptions
	// FlattenStep is the angular step for polyline flattening of the γ
	// curves (continuous case only; default 2π/720).
	FlattenStep float64
	// BoxMargin inflates the instance bounding box to form the working
	// box; 0 picks 4× the instance diameter. Queries outside the box use
	// the oracle fallback.
	BoxMargin float64
	// SnapTol is the arrangement vertex-snapping tolerance (default
	// 1e-9 × instance diameter).
	SnapTol float64
}

func (o DiagramOptions) resolve(bb geom.Rect) (DiagramOptions, geom.Rect) {
	diam := math.Max(bb.Diag(), 1)
	if o.BoxMargin == 0 {
		o.BoxMargin = 4 * diam
	}
	if o.FlattenStep == 0 {
		o.FlattenStep = 2 * math.Pi / 720
	}
	if o.SnapTol == 0 {
		o.SnapTol = 1e-9 * diam
	}
	return o, bb.Inflate(o.BoxMargin)
}

// BuildDiskDiagram constructs V≠0(P) for disk uncertainty regions
// (Theorem 2.5: O(n³) complexity, construction by computing each γ_i as a
// polar lower envelope and overlaying the curves).
//
// The γ curves are computed exactly (closed-form hyperbola envelopes with
// bisection-refined breakpoints) and flattened to dense polylines clipped
// to the working box.
func BuildDiskDiagram(disks []geom.Disk, opt DiagramOptions) (*Diagram, error) {
	n := len(disks)
	if n == 0 {
		return nil, fmt.Errorf("nonzero: empty disk set")
	}
	for i, d := range disks {
		if d.R <= 0 {
			return nil, fmt.Errorf("nonzero: disk %d has non-positive radius %v (degenerate regions need the Brute oracle or TwoStageDisks)", i, d.R)
		}
	}
	bb := geom.EmptyRect()
	for _, d := range disks {
		bb = bb.Union(d.Bounds())
	}
	opt, box := opt.resolve(bb)

	var segs []arrgn.InSeg
	for i := 0; i < n; i++ {
		g := ComputeGamma(disks, i, opt.Gamma)
		for _, s := range flattenGamma(g, disks, box, opt.FlattenStep) {
			segs = append(segs, arrgn.InSeg{S: s, Curve: i})
		}
	}
	oracle := func(q geom.Point) []int { return BruteDisks(disks, q) }
	return assembleDiagram(segs, box, opt.SnapTol, oracle)
}

// flattenGamma samples γ_i into chords and clips them to the working box.
// Chords whose both endpoints are far outside the box are dropped; the
// radius is capped well beyond the box so near-asymptotic branches keep
// an accurate direction through the box.
func flattenGamma(g *Gamma, disks []geom.Disk, box geom.Rect, step float64) []geom.Segment {
	tCap := 8 * (box.Diag() + g.Center.Dist(box.Center()))
	var out []geom.Segment
	var prev geom.Point
	havePrev := false
	emit := func(p geom.Point) {
		if havePrev && !prev.Eq(p) {
			if c, ok := geom.Seg(prev, p).ClipToRect(box); ok && c.Len() > 0 {
				out = append(out, c)
			}
		}
		prev, havePrev = p, true
	}
	for _, piece := range g.Pieces {
		if piece.J < 0 {
			havePrev = false // unbounded gap: break the chain
			continue
		}
		span := piece.Hi - piece.Lo
		steps := int(math.Ceil(span / step))
		if steps < 1 {
			steps = 1
		}
		for s := 0; s <= steps; s++ {
			th := piece.Lo + span*float64(s)/float64(steps)
			t := g.Radius(disks, th)
			if math.IsInf(t, 0) {
				havePrev = false
				continue
			}
			if t > tCap {
				t = tCap
			}
			emit(g.Center.Add(geom.Dir(th).Scale(t)))
		}
	}
	return out
}

func assembleDiagram(segs []arrgn.InSeg, box geom.Rect, tol float64, oracle func(geom.Point) []int) (*Diagram, error) {
	arr := arrgn.Build(segs, tol)
	loc := arrgn.NewLocator(arr)
	labels := arrgn.NewLabelStore(loc, oracle)
	return &Diagram{
		Arr:    arr,
		Loc:    loc,
		Labels: labels,
		Box:    box,
		Oracle: oracle,
		stats:  arr.Stats(),
	}, nil
}

// ---------------------------------------------------------------------------
// Discrete case (§2.2).

// BijPolygon returns the convex region B_ij = {x : δ_i(x) ≥ Δ_j(x)} — the
// locus where P_i is excluded from NN≠0 by P_j — as a convex polygon
// clipped to bounds (Lemma 2.13: δ_i ≥ Δ_j ⇔ ϕ_i ≥ Φ_j, an intersection
// of k_i·k_j half-planes f(x,p_ia) ≥ f(x,p_jb) with
// f(x,p) = ‖p‖² − 2⟨x,p⟩). nil means the region is empty within bounds.
func BijPolygon(pi, pj *uncertain.Discrete, bounds geom.Rect) []geom.Point {
	var hs []geom.HalfPlane
	for _, a := range pi.Locs {
		for _, b := range pj.Locs {
			// f(x,a) ≥ f(x,b)  ⇔  2⟨x, a−b⟩ ≤ ‖a‖² − ‖b‖².
			hs = append(hs, geom.HalfPlane{
				A: 2 * (a.X - b.X),
				B: 2 * (a.Y - b.Y),
				C: a.Norm2() - b.Norm2(),
			})
		}
	}
	poly := geom.HalfPlaneIntersection(hs, bounds)
	if len(poly) < 3 {
		return nil
	}
	return poly
}

// BuildDiscreteDiagram constructs V≠0(P) for discrete uncertain points
// (Theorem 2.14: complexity O(kn³)). Each γ_i is the boundary of the
// union ∪_{j≠i} B_ij, computed exactly (all-polygonal); the curves are
// then overlaid into the global subdivision. Box-clipping artifacts are
// discarded so that only true γ_i edges participate in labeling.
func BuildDiscreteDiagram(pts []*uncertain.Discrete, opt DiagramOptions) (*Diagram, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("nonzero: empty point set")
	}
	bb := geom.EmptyRect()
	for _, p := range pts {
		bb = bb.Union(p.Support())
	}
	opt, box := opt.resolve(bb)

	var global []arrgn.InSeg
	for i := 0; i < n; i++ {
		for _, s := range unionBoundary(pts, i, box, opt.SnapTol) {
			global = append(global, arrgn.InSeg{S: s, Curve: i})
		}
	}
	upts := DiscreteAsUncertain(pts)
	oracle := func(q geom.Point) []int { return Brute(upts, q) }
	return assembleDiagram(global, box, opt.SnapTol, oracle)
}

// unionBoundary returns the boundary segments of ∪_{j≠i} B_ij: all
// polygon edges are mutually split, and a sub-edge survives iff it is not
// a box-clipping artifact and its midpoint is not strictly inside any
// other polygon of the union.
func unionBoundary(pts []*uncertain.Discrete, i int, box geom.Rect, tol float64) []geom.Segment {
	var polys [][]geom.Point
	for j := range pts {
		if j == i {
			continue
		}
		if poly := BijPolygon(pts[i], pts[j], box); poly != nil {
			polys = append(polys, poly)
		}
	}
	if len(polys) == 0 {
		return nil
	}
	boundaryTol := math.Max(tol, 1e-9) * (1 + box.Diag())
	var segs []arrgn.InSeg
	for pi, poly := range polys {
		for k := range poly {
			s := geom.Seg(poly[k], poly[(k+1)%len(poly)])
			if s.OnRectBoundary(box, boundaryTol) {
				continue // clipping artifact, not part of the true γ_i
			}
			segs = append(segs, arrgn.InSeg{S: s, Curve: pi})
		}
	}
	arr := arrgn.Build(segs, tol)
	var out []geom.Segment
	for _, e := range arr.Edges {
		mid := arr.Seg(e).Mid()
		keep := true
		for pi, poly := range polys {
			if pi == e.Curve {
				continue
			}
			if geom.PointInConvexStrict(poly, mid) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, arr.Seg(e))
		}
	}
	return out
}
