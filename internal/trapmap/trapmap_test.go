package trapmap

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/arrgn"
	"unn/internal/geom"
)

// contains checks geometrically that trapezoid t contains q: between the
// walls in sheared order and between bottom and top.
func (m *Map) contains(t *Trapezoid, q geom.Point) bool {
	if lexLess(q, t.Leftp) || lexLess(t.Rightp, q) {
		return false
	}
	if t.Bottom >= 0 {
		if ab, on := m.above(t.Bottom, q); !ab && !on {
			return false
		}
	} else if q.Y < m.box.Min.Y {
		return false
	}
	if t.Top >= 0 {
		if ab, on := m.above(t.Top, q); ab && !on {
			return false
		}
	} else if q.Y > m.box.Max.Y {
		return false
	}
	return true
}

// belowSegBrute returns the index of the segment directly below q (the
// one with the largest YAt(q.X) that is < q.Y among segments whose open
// x-span contains q.X), or -1.
func belowSegBrute(segs []geom.Segment, q geom.Point) int {
	best, bestY := -1, math.Inf(-1)
	for i, s := range segs {
		lo, hi := math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
		if q.X <= lo || q.X >= hi {
			continue
		}
		y := s.YAt(q.X)
		if y < q.Y && y > bestY {
			best, bestY = i, y
		}
	}
	return best
}

// disjointify splits an arbitrary segment soup into interior-disjoint
// pieces via the arrangement machinery (this also produces the collinear
// shared-endpoint chains the structure must survive).
func disjointify(segs []geom.Segment) []geom.Segment {
	in := make([]arrgn.InSeg, len(segs))
	for i, s := range segs {
		in[i] = arrgn.InSeg{S: s, Curve: i}
	}
	arr := arrgn.Build(in, 1e-9)
	seen := map[[4]float64]bool{}
	var out []geom.Segment
	for _, e := range arr.Edges {
		s := arr.Seg(e)
		a, b := s.A, s.B
		if lexLess(b, a) {
			a, b = b, a
		}
		k := [4]float64{a.X, a.Y, b.X, b.Y}
		if !seen[k] {
			seen[k] = true
			out = append(out, geom.Seg(a, b))
		}
	}
	return out
}

func checkMap(t *testing.T, segs []geom.Segment, queries int, rng *rand.Rand) *Map {
	t.Helper()
	m, err := New(segs, rng)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bb := m.Bounds()
	for k := 0; k < queries; k++ {
		q := geom.Pt(
			bb.Min.X+rng.Float64()*bb.Width(),
			bb.Min.Y+rng.Float64()*bb.Height(),
		)
		// Skip queries on/very near any segment or wall x-coordinate.
		skip := false
		for i := 0; i < m.NumSegs(); i++ {
			s := m.Seg(i)
			if s.DistToPoint(q) < 1e-9 || math.Abs(q.X-s.A.X) < 1e-9 || math.Abs(q.X-s.B.X) < 1e-9 {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		tr := m.Locate(q)
		if tr == nil {
			t.Fatalf("nil trapezoid for %v", q)
		}
		if !m.contains(tr, q) {
			t.Fatalf("trapezoid %+v does not contain %v", tr, q)
		}
		// The trapezoid's bottom must be the segment directly below q.
		want := belowSegBrute(m.segs, q)
		got := tr.Bottom
		if got < 0 {
			got = -1
		}
		if got != want {
			t.Fatalf("q=%v: bottom=%d want %d (trap %+v)", q, got, want, tr)
		}
	}
	return m
}

func TestEmptyAndSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := New(nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr := m.Locate(geom.Pt(0.5, 0.5)); tr == nil || tr.Top != SegTop || tr.Bottom != SegBottom {
		t.Fatalf("empty map locate: %+v", tr)
	}
	checkMap(t, []geom.Segment{geom.Seg(geom.Pt(0, 0), geom.Pt(10, 3))}, 200, rng)
}

func TestGridDegenerate(t *testing.T) {
	// Horizontal and vertical segments sharing endpoints: the classic
	// worst case for naive x-comparisons.
	var segs []geom.Segment
	for i := 0; i <= 4; i++ {
		f := float64(i) * 2
		segs = append(segs,
			geom.Seg(geom.Pt(0, f), geom.Pt(8, f)),
			geom.Seg(geom.Pt(f, 0), geom.Pt(f, 8)),
		)
	}
	rng := rand.New(rand.NewSource(2))
	checkMap(t, disjointify(segs), 400, rng)
}

func TestCollinearChains(t *testing.T) {
	// One long line pre-split into collinear pieces, plus crossers.
	segs := []geom.Segment{
		geom.Seg(geom.Pt(0, 0), geom.Pt(10, 5)),
		geom.Seg(geom.Pt(2, 4), geom.Pt(8, -2)),
		geom.Seg(geom.Pt(1, -3), geom.Pt(9, 6)),
	}
	rng := rand.New(rand.NewSource(3))
	checkMap(t, disjointify(segs), 400, rng)
}

func TestRandomSoups(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		var segs []geom.Segment
		for i := 0; i < n; i++ {
			a := geom.Pt(rng.Float64()*20, rng.Float64()*20)
			b := a.Add(geom.Pt(rng.NormFloat64()*5, rng.NormFloat64()*5))
			segs = append(segs, geom.Seg(a, b))
		}
		checkMap(t, disjointify(segs), 200, rng)
	}
}

func TestVerticalHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var segs []geom.Segment
	for i := 0; i < 10; i++ {
		x := float64(i)
		segs = append(segs, geom.Seg(geom.Pt(x, rng.Float64()*3), geom.Pt(x, 5+rng.Float64()*3)))
	}
	// One diagonal crossing them all.
	segs = append(segs, geom.Seg(geom.Pt(-1, 4), geom.Pt(10, 4.7)))
	checkMap(t, disjointify(segs), 400, rng)
}

func TestExpectedSizeAndDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var segs []geom.Segment
	for i := 0; i < 300; i++ {
		a := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		b := a.Add(geom.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3))
		segs = append(segs, geom.Seg(a, b))
	}
	dsegs := disjointify(segs)
	m := checkMap(t, dsegs, 300, rng)
	traps, nodes := m.Count()
	n := m.NumSegs()
	// Expected O(n) size, O(n log n)-ish nodes: allow generous constants.
	if traps > 20*n+100 {
		t.Fatalf("trapezoid count %d too large for n=%d", traps, n)
	}
	if nodes > 60*n+200 {
		t.Fatalf("node count %d too large for n=%d", nodes, n)
	}
	if d := m.Depth(); d > 12*int(math.Log2(float64(n)))+16 {
		t.Fatalf("depth %d too large for n=%d", d, n)
	}
}

// The trapezoidal map must agree with the slab locator about which
// arrangement edge lies directly below random query points.
func TestAgreesWithSlabLocator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in []arrgn.InSeg
	for i := 0; i < 30; i++ {
		a := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		b := a.Add(geom.Pt(rng.NormFloat64()*6, rng.NormFloat64()*6))
		in = append(in, arrgn.InSeg{S: geom.Seg(a, b), Curve: i})
	}
	arr := arrgn.Build(in, 1e-9)
	loc := arrgn.NewLocator(arr)
	segs := make([]geom.Segment, len(arr.Edges))
	for i, e := range arr.Edges {
		segs[i] = arr.Seg(e)
	}
	m, err := New(segs, rng)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		s, g, ok := loc.Locate(q)
		if !ok || g == 0 {
			continue
		}
		skip := false
		for _, sg := range segs {
			if sg.DistToPoint(q) < 1e-9 || math.Abs(q.X-sg.A.X) < 1e-9 || math.Abs(q.X-sg.B.X) < 1e-9 {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		below := loc.EdgesInSlab(s)[g-1]
		tr := m.Locate(q)
		if tr.Bottom < 0 {
			t.Fatalf("q=%v: trapmap says box bottom, slab says edge %d", q, below)
		}
		// Compare geometric segments (trapmap dedups/normalizes).
		want := arr.Seg(arr.Edges[below])
		got := m.Seg(tr.Bottom)
		same := (got.A.NearEq(want.A, 1e-9) && got.B.NearEq(want.B, 1e-9)) ||
			(got.A.NearEq(want.B, 1e-9) && got.B.NearEq(want.A, 1e-9))
		if !same {
			// Collinear split pieces may differ; accept if q's x lies in
			// both spans and the supporting lines agree at q.X.
			if math.Abs(got.YAt(q.X)-want.YAt(q.X)) > 1e-9 {
				t.Fatalf("q=%v: below segment disagrees (%v vs %v)", q, got, want)
			}
		}
	}
}
