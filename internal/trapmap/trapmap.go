// Package trapmap implements randomized-incremental trapezoidal-map point
// location over a set of interior-disjoint segments (shared endpoints
// allowed) — the structure of [dBCKO08, Chapter 6] that the paper cites
// for the O(log n) point-location step of Theorem 2.11.
//
// Design notes:
//
//   - Degenerate x-coordinates are handled by the standard symbolic
//     shear: all point comparisons are lexicographic by (x, y), which
//     makes vertical segments behave like steeply positive-slope ones.
//   - Instead of the textbook four-neighbor threading, the insertion walk
//     re-locates the segment's crossing point of each trapezoid's right
//     wall through the DAG (O(log n) per step, same expected total).
//     This removes the error-prone neighbor bookkeeping entirely; the
//     search DAG is the only structure.
//   - Merging of upper/lower runs along an inserted segment is done by
//     reusing one trapezoid object across consecutive leaves (the
//     structure is a dag precisely because leaves share trapezoids).
package trapmap

import (
	"fmt"
	"math/rand"

	"unn/internal/geom"
)

// SegTop / SegBottom mark the bounding box in Trapezoid.Top / .Bottom.
const (
	SegTop    = -1 // the bounding box's upper edge
	SegBottom = -2 // the bounding box's lower edge
)

// Trapezoid is one cell of the map: bounded above by segment Top, below
// by segment Bottom, and left/right by the vertical walls through Leftp
// and Rightp.
type Trapezoid struct {
	Top, Bottom   int // segment indices, or SegTop / SegBottom
	Leftp, Rightp geom.Point
	leaf          *node
}

type nodeKind int8

const (
	leafNode nodeKind = iota
	xNode
	yNode
)

type node struct {
	kind  nodeKind
	p     geom.Point // xNode
	s     int        // yNode: segment index
	left  *node      // xNode: lex-left;  yNode: above
	right *node      // xNode: lex-right; yNode: below
	trap  *Trapezoid // leafNode
}

// Map is the trapezoidal map of a fixed segment set.
type Map struct {
	segs []geom.Segment // normalized: A lexicographically before B
	root *node
	box  geom.Rect
}

func lexLess(p, q geom.Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// above reports whether p lies strictly above segment s (in the sheared
// order); onSeg is true when p is exactly on the supporting line within
// the segment's span.
func (m *Map) above(s int, p geom.Point) (above, onSeg bool) {
	sg := m.segs[s]
	o := geom.Orient2D(sg.A, sg.B, p)
	return o > 0, o == 0
}

// slopeAbove reports whether segment s leaves their common left endpoint
// above segment t (both normalized A lex< B).
func (m *Map) slopeAbove(s, t int) bool {
	ds := m.segs[s].B.Sub(m.segs[s].A)
	dt := m.segs[t].B.Sub(m.segs[t].A)
	return dt.Cross(ds) > 0
}

// New builds the map by randomized incremental insertion. Segments must
// have disjoint interiors (shared endpoints are fine); zero-length and
// exactly duplicated segments are dropped.
func New(segs []geom.Segment, rng *rand.Rand) (*Map, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(0x7a9))
	}
	m := &Map{}
	seen := map[[4]float64]bool{}
	bb := geom.EmptyRect()
	for _, s := range segs {
		a, b := s.A, s.B
		if lexLess(b, a) {
			a, b = b, a
		}
		if a.Eq(b) {
			continue
		}
		key := [4]float64{a.X, a.Y, b.X, b.Y}
		if seen[key] {
			continue
		}
		seen[key] = true
		m.segs = append(m.segs, geom.Seg(a, b))
		bb = bb.Extend(a).Extend(b)
	}
	if bb.IsEmpty() {
		bb = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	}
	m.box = bb.Inflate(1 + bb.Diag()*0.05)
	start := &Trapezoid{
		Top: SegTop, Bottom: SegBottom,
		Leftp: m.box.Min, Rightp: geom.Pt(m.box.Max.X, m.box.Min.Y),
	}
	m.root = &node{kind: leafNode, trap: start}
	start.leaf = m.root

	order := rng.Perm(len(m.segs))
	for _, si := range order {
		if err := m.insert(si); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// locate descends the DAG for point p. If dir >= 0 it is a segment index
// used to break ties when p coincides with an x-node point or lies on a
// y-node segment (the point is interpreted as "p, continuing along
// segment dir to the right").
func (m *Map) locate(p geom.Point, dir int) *node {
	n := m.root
	for n.kind != leafNode {
		switch n.kind {
		case xNode:
			switch {
			case dir >= 0 && p.X == n.p.X && m.segs[dir].A.X != m.segs[dir].B.X:
				// Advancing along a non-vertical segment tips the sheared
				// x-coordinate past any point on the same wall.
				n = n.right
			case lexLess(p, n.p):
				n = n.left
			case lexLess(n.p, p):
				n = n.right
			default: // p == node point: a rightward segment continues right
				n = n.right
			}
		case yNode:
			ab, on := m.above(n.s, p)
			if on && dir >= 0 {
				ab = m.slopeAbove(dir, n.s)
			}
			if ab {
				n = n.left
			} else {
				n = n.right
			}
		}
	}
	return n
}

// Locate returns the trapezoid containing q. Points exactly on a segment
// are assigned to one adjacent side.
func (m *Map) Locate(q geom.Point) *Trapezoid {
	return m.locate(q, -1).trap
}

// insert adds segment si to the map.
func (m *Map) insert(si int) error {
	s := m.segs[si]
	// Collect the chain of trapezoids crossed by s, left to right.
	var chain []*node
	cur := m.locate(s.A, si)
	for {
		chain = append(chain, cur)
		tr := cur.trap
		if !lexLess(tr.Rightp, s.B) {
			break
		}
		// Step into the next trapezoid: re-locate the point where s
		// crosses the right wall (with s as the tie direction). For a
		// vertical segment the sheared wall through Rightp meets it at
		// Rightp's own height.
		x := tr.Rightp.X
		var p geom.Point
		if s.A.X == s.B.X {
			p = geom.Pt(x, tr.Rightp.Y)
		} else {
			p = geom.Pt(x, s.YAt(x))
		}
		next := m.locate(p, si)
		if next.trap == tr {
			return fmt.Errorf("trapmap: stuck at wall x=%v inserting segment %d (degenerate input?)", x, si)
		}
		cur = next
		if len(chain) > 4*len(m.segs)+16 {
			return fmt.Errorf("trapmap: runaway chain inserting segment %d", si)
		}
	}

	// Build the replacement trapezoids. U and L are the (merged) runs
	// above and below s.
	var upper, lower *Trapezoid
	for j, leaf := range chain {
		tr := leaf.trap
		first, last := j == 0, j == len(chain)-1

		// Close or extend the runs.
		if upper == nil || upper.Top != tr.Top {
			upper = &Trapezoid{Top: tr.Top, Bottom: si, Leftp: runLeft(first, s.A, tr), Rightp: tr.Rightp}
		} else {
			upper.Rightp = tr.Rightp
		}
		if lower == nil || lower.Bottom != tr.Bottom {
			lower = &Trapezoid{Top: si, Bottom: tr.Bottom, Leftp: runLeft(first, s.A, tr), Rightp: tr.Rightp}
		} else {
			lower.Rightp = tr.Rightp
		}
		if last && lexLess(s.B, tr.Rightp) {
			upper.Rightp = s.B
			lower.Rightp = s.B
		}

		// Assemble the subtree that replaces this leaf.
		sub := &node{kind: yNode, s: si}
		sub.left = leafFor(upper)
		sub.right = leafFor(lower)
		if last && lexLess(s.B, tr.Rightp) {
			right := &Trapezoid{Top: tr.Top, Bottom: tr.Bottom, Leftp: s.B, Rightp: tr.Rightp}
			sub = &node{kind: xNode, p: s.B, left: sub, right: leafFor(right)}
		}
		if first && lexLess(tr.Leftp, s.A) {
			left := &Trapezoid{Top: tr.Top, Bottom: tr.Bottom, Leftp: tr.Leftp, Rightp: s.A}
			sub = &node{kind: xNode, p: s.A, left: leafFor(left), right: sub}
		}
		// Morph the old leaf in place so all DAG parents see the update.
		*leaf = *sub
		relink(leaf)
	}
	return nil
}

func runLeft(first bool, a geom.Point, tr *Trapezoid) geom.Point {
	if first {
		return a
	}
	return tr.Leftp
}

// leafFor returns the canonical leaf node of a trapezoid, creating it on
// first use (run-merged trapezoids appear under several parents).
func leafFor(t *Trapezoid) *node {
	if t.leaf == nil || t.leaf.trap != t {
		t.leaf = &node{kind: leafNode, trap: t}
	}
	return t.leaf
}

// relink repairs leaf back-pointers after a leaf node was morphed into an
// internal node (its children may be canonical leaves created elsewhere).
func relink(n *node) {
	for _, c := range []*node{n.left, n.right} {
		if c != nil && c.kind == leafNode {
			c.trap.leaf = c
		}
	}
}

// Bounds returns the bounding box of the map.
func (m *Map) Bounds() geom.Rect { return m.box }

// Seg returns the i-th (normalized) segment.
func (m *Map) Seg(i int) geom.Segment { return m.segs[i] }

// NumSegs returns the number of stored segments.
func (m *Map) NumSegs() int { return len(m.segs) }

// Count returns the number of distinct trapezoids and DAG nodes — the
// O(n) expected size bound of [dBCKO08, Thm 6.2] is checked in tests.
func (m *Map) Count() (traps, nodes int) {
	seenT := map[*Trapezoid]bool{}
	seenN := map[*node]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || seenN[n] {
			return
		}
		seenN[n] = true
		if n.kind == leafNode {
			seenT[n.trap] = true
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(m.root)
	return len(seenT), len(seenN)
}

// Depth returns the maximum DAG depth (expected O(log n)).
func (m *Map) Depth() int {
	memo := map[*node]int{}
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		if d, ok := memo[n]; ok {
			return d
		}
		memo[n] = 0 // cycle guard; DAG has none, but stay safe
		d := 0
		if n.kind != leafNode {
			l, r := walk(n.left), walk(n.right)
			if r > l {
				l = r
			}
			d = 1 + l
		}
		memo[n] = d
		return d
	}
	return walk(m.root)
}

// Trapezoids returns every distinct trapezoid of the map.
func (m *Map) Trapezoids() []*Trapezoid {
	seenT := map[*Trapezoid]bool{}
	seenN := map[*node]bool{}
	var out []*Trapezoid
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || seenN[n] {
			return
		}
		seenN[n] = true
		if n.kind == leafNode {
			if !seenT[n.trap] {
				seenT[n.trap] = true
				out = append(out, n.trap)
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(m.root)
	return out
}

// Rep returns a point in the interior of the trapezoid (on the midline
// for zero-width sheared trapezoids).
func (m *Map) Rep(t *Trapezoid) geom.Point {
	x := (t.Leftp.X + t.Rightp.X) / 2
	var yLo, yHi float64
	if t.Bottom >= 0 {
		yLo = m.segs[t.Bottom].YAt(x)
	} else {
		yLo = m.box.Min.Y
	}
	if t.Top >= 0 {
		yHi = m.segs[t.Top].YAt(x)
	} else {
		yHi = m.box.Max.Y
	}
	return geom.Pt(x, (yLo+yHi)/2)
}
