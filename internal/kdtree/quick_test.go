package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"unn/internal/geom"
)

// quickConfig produces bounded, well-conditioned float inputs from
// testing/quick's unbounded generator.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e3)
}

// Property (testing/quick): for arbitrary point sets and query points,
// the tree's nearest neighbor matches a linear scan.
func TestQuickNearestInvariant(t *testing.T) {
	f := func(coords []float64, qx, qy float64) bool {
		if len(coords) < 2 {
			return true
		}
		items := make([]Item, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			items = append(items, Item{
				P:  geom.Pt(clampCoord(coords[i]), clampCoord(coords[i+1])),
				ID: i / 2,
			})
		}
		tr := New(items)
		q := geom.Pt(clampCoord(qx), clampCoord(qy))
		got, ok := tr.Nearest(q)
		if !ok {
			return len(items) == 0
		}
		want := math.Inf(1)
		for _, it := range items {
			want = math.Min(want, q.Dist(it.P))
		}
		return math.Abs(got.Dist-want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): enumeration yields every item exactly once in
// non-decreasing distance order, whatever the input.
func TestQuickEnumerateInvariant(t *testing.T) {
	f := func(coords []float64, qx, qy float64) bool {
		items := make([]Item, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			items = append(items, Item{
				P:  geom.Pt(clampCoord(coords[i]), clampCoord(coords[i+1])),
				ID: i / 2,
			})
		}
		tr := New(items)
		q := geom.Pt(clampCoord(qx), clampCoord(qy))
		e := tr.Enumerate(q)
		prev := -1.0
		n := 0
		seen := map[int]bool{}
		for {
			nb, ok := e.Next()
			if !ok {
				break
			}
			if nb.Dist < prev || seen[nb.Item.ID] {
				return false
			}
			seen[nb.Item.ID] = true
			prev = nb.Dist
			n++
		}
		return n == len(items)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(62))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): NearestAdditive with weights equals the
// linear-scan minimum of d + w.
func TestQuickAdditiveInvariant(t *testing.T) {
	f := func(coords []float64, ws []float64, qx, qy float64) bool {
		n := len(coords) / 2
		if n > len(ws) {
			n = len(ws)
		}
		if n == 0 {
			return true
		}
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			items[i] = Item{
				P:  geom.Pt(clampCoord(coords[2*i]), clampCoord(coords[2*i+1])),
				W:  math.Abs(clampCoord(ws[i])),
				ID: i,
			}
		}
		tr := New(items)
		q := geom.Pt(clampCoord(qx), clampCoord(qy))
		_, got, ok := tr.NearestAdditive(q)
		if !ok {
			return false
		}
		want := math.Inf(1)
		for _, it := range items {
			want = math.Min(want, q.Dist(it.P)+it.W)
		}
		return math.Abs(got-want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(63))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
