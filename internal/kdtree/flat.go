package kdtree

import (
	"math"
	"sort"

	"unn/internal/geom"
)

// FlatTree is the implicit-array twin of Tree: the same median-split
// kd-tree stored without pointer nodes. Node i's children live at
// 2i+1 / 2i+2, leaves hold [lo, hi) ranges into SoA item arrays
// permuted in build order, and per-node bounds/weight aggregates are
// parallel float64 slices. Traversals replicate Tree's pruning tests
// and visit order operation for operation, so every query result is
// bit-identical to the pointer tree built from the same items — the
// flat layout only removes the pointer chases and the per-callback
// closure allocations (queries append into caller-supplied slices).
type FlatTree struct {
	n int
	// Node SoA in implicit heap order. lo[i] >= 0 marks a leaf owning
	// items [lo[i], hi[i]); lo[i] == -1 is an internal node (slots below
	// leaves are never visited).
	minX, minY, maxX, maxY []float64
	minW, maxW             []float64
	lo, hi                 []int32
	// Item SoA, permuted so each leaf's payload is contiguous.
	xs, ys, ws []float64
	ids        []int32
}

// FlatNeighbor is a FlatTree query result: the item's coordinates,
// weight, caller ID, and distance to the query.
type FlatNeighbor struct {
	X, Y, W float64
	ID      int
	Dist    float64
}

// NewFlat builds a FlatTree over the given items. The slice is copied;
// the tree is immutable afterwards and safe for concurrent queries.
func NewFlat(items []Item) *FlatTree {
	t := &FlatTree{n: len(items)}
	if t.n == 0 {
		return t
	}
	buf := make([]Item, len(items))
	copy(buf, items)
	// Leaf depth bound: every split hands a child at most ⌈m/2⌉ items,
	// so ⌈·/2⌉-iterating n down to leafSize bounds the deepest leaf, and
	// the implicit array needs 2^(d+1)−1 slots.
	d := 0
	for m := len(buf); m > leafSize; m = (m + 1) / 2 {
		d++
	}
	size := 1<<(uint(d)+1) - 1
	t.minX = make([]float64, size)
	t.minY = make([]float64, size)
	t.maxX = make([]float64, size)
	t.maxY = make([]float64, size)
	t.minW = make([]float64, size)
	t.maxW = make([]float64, size)
	t.lo = make([]int32, size)
	t.hi = make([]int32, size)
	for i := range t.lo {
		t.lo[i] = -1
	}
	t.xs = make([]float64, t.n)
	t.ys = make([]float64, t.n)
	t.ws = make([]float64, t.n)
	t.ids = make([]int32, t.n)
	t.buildAt(0, buf, 0)
	return t
}

// buildAt mirrors build() exactly — same aggregate folds, same
// wider-axis comparator, same median — writing node ni and placing
// leaf payloads at item offset off onward.
func (t *FlatTree) buildAt(ni int, items []Item, off int) {
	bounds := geom.EmptyRect()
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, it := range items {
		bounds = bounds.Extend(it.P)
		minW = math.Min(minW, it.W)
		maxW = math.Max(maxW, it.W)
	}
	t.minX[ni], t.minY[ni] = bounds.Min.X, bounds.Min.Y
	t.maxX[ni], t.maxY[ni] = bounds.Max.X, bounds.Max.Y
	t.minW[ni], t.maxW[ni] = minW, maxW
	if len(items) <= leafSize {
		t.lo[ni], t.hi[ni] = int32(off), int32(off+len(items))
		for k, it := range items {
			t.xs[off+k], t.ys[off+k] = it.P.X, it.P.Y
			t.ws[off+k], t.ids[off+k] = it.W, int32(it.ID)
		}
		return
	}
	byX := bounds.Width() >= bounds.Height()
	sort.Slice(items, func(i, j int) bool {
		if byX {
			return items[i].P.X < items[j].P.X
		}
		return items[i].P.Y < items[j].P.Y
	})
	mid := len(items) / 2
	t.buildAt(2*ni+1, items[:mid], off)
	t.buildAt(2*ni+2, items[mid:], off+mid)
}

// Len returns the number of items in the tree.
func (t *FlatTree) Len() int { return t.n }

// nodeDist replicates Rect.DistToPoint on node ni's bounds.
func (t *FlatTree) nodeDist(ni int, qx, qy float64) float64 {
	dx := math.Max(0, math.Max(t.minX[ni]-qx, qx-t.maxX[ni]))
	dy := math.Max(0, math.Max(t.minY[ni]-qy, qy-t.maxY[ni]))
	return math.Hypot(dx, dy)
}

// nodeDistLinf replicates Rect.DistToPointLinf on node ni's bounds.
func (t *FlatTree) nodeDistLinf(ni int, qx, qy float64) float64 {
	dx := math.Max(0, math.Max(t.minX[ni]-qx, qx-t.maxX[ni]))
	dy := math.Max(0, math.Max(t.minY[ni]-qy, qy-t.maxY[ni]))
	if dx > dy {
		return dx
	}
	return dy
}

// NearestAdditive returns the item minimizing d(q,p) + w and that
// minimum value — Tree.NearestAdditive on the flat layout.
func (t *FlatTree) NearestAdditive(q geom.Point) (FlatNeighbor, float64, bool) {
	if t.n == 0 {
		return FlatNeighbor{}, 0, false
	}
	best := FlatNeighbor{ID: -1, Dist: math.Inf(1)}
	bestVal := math.Inf(1)
	t.nearestAdd(0, q.X, q.Y, &best, &bestVal)
	return best, bestVal, true
}

func (t *FlatTree) nearestAdd(ni int, qx, qy float64, best *FlatNeighbor, bestVal *float64) {
	if t.nodeDist(ni, qx, qy)+t.minW[ni] >= *bestVal {
		return
	}
	if lo := t.lo[ni]; lo >= 0 {
		for k := lo; k < t.hi[ni]; k++ {
			d := math.Hypot(qx-t.xs[k], qy-t.ys[k])
			if v := d + t.ws[k]; v < *bestVal {
				*best = FlatNeighbor{X: t.xs[k], Y: t.ys[k], W: t.ws[k], ID: int(t.ids[k]), Dist: d}
				*bestVal = v
			}
		}
		return
	}
	a, b := 2*ni+1, 2*ni+2
	if t.nodeDist(b, qx, qy)+t.minW[b] < t.nodeDist(a, qx, qy)+t.minW[a] {
		a, b = b, a
	}
	t.nearestAdd(a, qx, qy, best, bestVal)
	t.nearestAdd(b, qx, qy, best, bestVal)
}

// AppendBelow appends the ID of every item with d(q,p) − w < T to dst —
// Tree.ReportBelow without the callback (and its closure allocation).
func (t *FlatTree) AppendBelow(q geom.Point, T float64, dst []int) []int {
	if t.n == 0 {
		return dst
	}
	return t.appendBelow(0, q.X, q.Y, T, dst)
}

func (t *FlatTree) appendBelow(ni int, qx, qy, T float64, dst []int) []int {
	if t.nodeDist(ni, qx, qy)-t.maxW[ni] >= T {
		return dst
	}
	if lo := t.lo[ni]; lo >= 0 {
		for k := lo; k < t.hi[ni]; k++ {
			if math.Hypot(qx-t.xs[k], qy-t.ys[k])-t.ws[k] < T {
				dst = append(dst, int(t.ids[k]))
			}
		}
		return dst
	}
	dst = t.appendBelow(2*ni+1, qx, qy, T, dst)
	return t.appendBelow(2*ni+2, qx, qy, T, dst)
}

// AppendWithin appends the ID of every item with d(q,p) ≤ r (strictly
// < r if strict) to dst, visiting leaves in Tree.WithinDist's order.
func (t *FlatTree) AppendWithin(q geom.Point, r float64, strict bool, dst []int) []int {
	if t.n == 0 {
		return dst
	}
	return t.appendWithin(0, q.X, q.Y, r, strict, dst)
}

func (t *FlatTree) appendWithin(ni int, qx, qy, r float64, strict bool, dst []int) []int {
	d := t.nodeDist(ni, qx, qy)
	if d > r || (strict && d >= r) {
		return dst
	}
	if lo := t.lo[ni]; lo >= 0 {
		for k := lo; k < t.hi[ni]; k++ {
			dd := math.Hypot(qx-t.xs[k], qy-t.ys[k])
			if dd < r || (!strict && dd == r) {
				dst = append(dst, int(t.ids[k]))
			}
		}
		return dst
	}
	dst = t.appendWithin(2*ni+1, qx, qy, r, strict, dst)
	return t.appendWithin(2*ni+2, qx, qy, r, strict, dst)
}

// NearestAdditiveLinf is NearestAdditive under the Chebyshev metric.
func (t *FlatTree) NearestAdditiveLinf(q geom.Point) (FlatNeighbor, float64, bool) {
	if t.n == 0 {
		return FlatNeighbor{}, 0, false
	}
	best := FlatNeighbor{ID: -1, Dist: math.Inf(1)}
	bestVal := math.Inf(1)
	t.nearestAddLinf(0, q.X, q.Y, &best, &bestVal)
	return best, bestVal, true
}

func (t *FlatTree) nearestAddLinf(ni int, qx, qy float64, best *FlatNeighbor, bestVal *float64) {
	if t.nodeDistLinf(ni, qx, qy)+t.minW[ni] >= *bestVal {
		return
	}
	if lo := t.lo[ni]; lo >= 0 {
		for k := lo; k < t.hi[ni]; k++ {
			dx, dy := math.Abs(qx-t.xs[k]), math.Abs(qy-t.ys[k])
			d := dx
			if dy > dx {
				d = dy
			}
			if v := d + t.ws[k]; v < *bestVal {
				*best = FlatNeighbor{X: t.xs[k], Y: t.ys[k], W: t.ws[k], ID: int(t.ids[k]), Dist: d}
				*bestVal = v
			}
		}
		return
	}
	a, b := 2*ni+1, 2*ni+2
	if t.nodeDistLinf(b, qx, qy)+t.minW[b] < t.nodeDistLinf(a, qx, qy)+t.minW[a] {
		a, b = b, a
	}
	t.nearestAddLinf(a, qx, qy, best, bestVal)
	t.nearestAddLinf(b, qx, qy, best, bestVal)
}

// AppendBelowLinf appends every item with d_∞(q,p) − w < T to dst.
func (t *FlatTree) AppendBelowLinf(q geom.Point, T float64, dst []int) []int {
	if t.n == 0 {
		return dst
	}
	return t.appendBelowLinf(0, q.X, q.Y, T, dst)
}

func (t *FlatTree) appendBelowLinf(ni int, qx, qy, T float64, dst []int) []int {
	if t.nodeDistLinf(ni, qx, qy)-t.maxW[ni] >= T {
		return dst
	}
	if lo := t.lo[ni]; lo >= 0 {
		for k := lo; k < t.hi[ni]; k++ {
			dx, dy := math.Abs(qx-t.xs[k]), math.Abs(qy-t.ys[k])
			d := dx
			if dy > dx {
				d = dy
			}
			if d-t.ws[k] < T {
				dst = append(dst, int(t.ids[k]))
			}
		}
		return dst
	}
	dst = t.appendBelowLinf(2*ni+1, qx, qy, T, dst)
	return t.appendBelowLinf(2*ni+2, qx, qy, T, dst)
}
