// Package kdtree implements the planar kd-tree family used throughout the
// uncertain nearest-neighbor library:
//
//   - exact nearest / k-nearest neighbor queries,
//   - incremental best-first enumeration of points by distance (the
//     retrieval primitive behind the paper's spiral-search algorithm,
//     Section 4.3),
//   - circular range reporting,
//   - additively-weighted nearest neighbor (min over items of d(q,p)+w),
//     which evaluates the lower envelope Δ(q) of the paper's Section 2,
//   - below-threshold weighted reporting (all items with d(q,p)−w < T),
//     the second stage of the Theorem 3.1 query structure.
//
// The implementations are the practical stand-ins for the partition-tree
// and [KMR+16]/[AC09] structures the paper uses in its theorems; see
// DESIGN.md §3 for the substitution rationale.
package kdtree

import (
	"math"
	"sort"

	"unn/internal/geom"
)

// Item is a point with an additive weight and a caller-supplied ID.
type Item struct {
	P  geom.Point
	W  float64
	ID int
}

// Tree is an immutable planar kd-tree over a set of Items.
type Tree struct {
	root *node
	n    int
}

type node struct {
	bounds     geom.Rect
	minW, maxW float64
	left       *node
	right      *node
	items      []Item // leaf payload; nil for internal nodes
}

const leafSize = 8

// New builds a kd-tree over the given items. The slice is copied; the tree
// is immutable afterwards and safe for concurrent queries.
func New(items []Item) *Tree {
	buf := make([]Item, len(items))
	copy(buf, items)
	t := &Tree{n: len(buf)}
	if len(buf) > 0 {
		t.root = build(buf)
	}
	return t
}

// FromPoints builds a tree of unweighted points with IDs 0..len-1.
func FromPoints(pts []geom.Point) *Tree {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{P: p, ID: i}
	}
	return New(items)
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.n }

// Bounds returns the bounding rectangle of all items.
func (t *Tree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.EmptyRect()
	}
	return t.root.bounds
}

func build(items []Item) *node {
	nd := &node{bounds: geom.EmptyRect(), minW: math.Inf(1), maxW: math.Inf(-1)}
	for _, it := range items {
		nd.bounds = nd.bounds.Extend(it.P)
		nd.minW = math.Min(nd.minW, it.W)
		nd.maxW = math.Max(nd.maxW, it.W)
	}
	if len(items) <= leafSize {
		nd.items = items
		return nd
	}
	// Split on the wider axis at the median.
	byX := nd.bounds.Width() >= nd.bounds.Height()
	sort.Slice(items, func(i, j int) bool {
		if byX {
			return items[i].P.X < items[j].P.X
		}
		return items[i].P.Y < items[j].P.Y
	})
	mid := len(items) / 2
	nd.left = build(items[:mid])
	nd.right = build(items[mid:])
	return nd
}

// Neighbor is a query result: an item and its distance to the query.
type Neighbor struct {
	Item Item
	Dist float64
}

// Nearest returns the item closest to q (ignoring weights) and its
// distance. ok is false for an empty tree.
func (t *Tree) Nearest(q geom.Point) (Neighbor, bool) {
	if t.root == nil {
		return Neighbor{}, false
	}
	best := Neighbor{Dist: math.Inf(1)}
	t.root.nearest(q, &best)
	return best, true
}

func (nd *node) nearest(q geom.Point, best *Neighbor) {
	if nd.bounds.DistToPoint(q) >= best.Dist {
		return
	}
	if nd.items != nil {
		for _, it := range nd.items {
			if d := q.Dist(it.P); d < best.Dist {
				*best = Neighbor{Item: it, Dist: d}
			}
		}
		return
	}
	a, b := nd.left, nd.right
	if b.bounds.DistToPoint(q) < a.bounds.DistToPoint(q) {
		a, b = b, a
	}
	a.nearest(q, best)
	b.nearest(q, best)
}

// KNearest returns the k items closest to q in increasing distance order.
// Ties are broken arbitrarily. If k >= Len, all items are returned.
func (t *Tree) KNearest(q geom.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	e := t.Enumerate(q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		nb, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out
}

// WithinDist calls fn for every item with d(q, p) <= r (or strictly < r if
// strict). Iteration order is unspecified. fn returning false stops the
// search early.
func (t *Tree) WithinDist(q geom.Point, r float64, strict bool, fn func(Item, float64) bool) {
	if t.root != nil {
		t.root.within(q, r, strict, fn)
	}
}

func (nd *node) within(q geom.Point, r float64, strict bool, fn func(Item, float64) bool) bool {
	d := nd.bounds.DistToPoint(q)
	if d > r || (strict && d >= r) {
		return true
	}
	if nd.items != nil {
		for _, it := range nd.items {
			dd := q.Dist(it.P)
			if dd < r || (!strict && dd == r) {
				if !fn(it, dd) {
					return false
				}
			}
		}
		return true
	}
	return nd.left.within(q, r, strict, fn) && nd.right.within(q, r, strict, fn)
}

// NearestAdditive returns the item minimizing d(q, p) + w over the tree,
// together with that minimum value. For uncertainty disks (w = radius)
// this evaluates Δ(q) = min_i Δ_i(q), the lower envelope of maximum
// distances whose xy-projection is the additively-weighted Voronoi
// diagram M of Section 2.1.
func (t *Tree) NearestAdditive(q geom.Point) (Neighbor, float64, bool) {
	if t.root == nil {
		return Neighbor{}, 0, false
	}
	best := Neighbor{Dist: math.Inf(1)}
	bestVal := math.Inf(1)
	t.root.nearestAdd(q, &best, &bestVal)
	return best, bestVal, true
}

func (nd *node) nearestAdd(q geom.Point, best *Neighbor, bestVal *float64) {
	if nd.bounds.DistToPoint(q)+nd.minW >= *bestVal {
		return
	}
	if nd.items != nil {
		for _, it := range nd.items {
			d := q.Dist(it.P)
			if v := d + it.W; v < *bestVal {
				*best = Neighbor{Item: it, Dist: d}
				*bestVal = v
			}
		}
		return
	}
	a, b := nd.left, nd.right
	if b.bounds.DistToPoint(q)+b.minW < a.bounds.DistToPoint(q)+a.minW {
		a, b = b, a
	}
	a.nearestAdd(q, best, bestVal)
	b.nearestAdd(q, best, bestVal)
}

// ReportBelow calls fn for every item with d(q, p) - w < T. With w = r_i
// and T = Δ(q) this reports exactly {i : δ_i(q) < Δ(q)} = NN≠0(q)
// (Lemma 2.1 via Eq. (4)), the second stage of Theorem 3.1.
func (t *Tree) ReportBelow(q geom.Point, T float64, fn func(Item, float64) bool) {
	if t.root != nil {
		t.root.reportBelow(q, T, fn)
	}
}

func (nd *node) reportBelow(q geom.Point, T float64, fn func(Item, float64) bool) bool {
	if nd.bounds.DistToPoint(q)-nd.maxW >= T {
		return true
	}
	if nd.items != nil {
		for _, it := range nd.items {
			d := q.Dist(it.P)
			if d-it.W < T {
				if !fn(it, d) {
					return false
				}
			}
		}
		return true
	}
	return nd.left.reportBelow(q, T, fn) && nd.right.reportBelow(q, T, fn)
}

// NearestAdditiveLinf is NearestAdditive under the Chebyshev (L∞)
// metric: it returns the item minimizing d_∞(q,p) + w. Together with
// ReportBelowLinf it supports the L∞/L1 variant of the two-stage NN≠0
// structure (the remark after Theorem 3.1: square and diamond
// uncertainty regions).
func (t *Tree) NearestAdditiveLinf(q geom.Point) (Neighbor, float64, bool) {
	if t.root == nil {
		return Neighbor{}, 0, false
	}
	best := Neighbor{Dist: math.Inf(1)}
	bestVal := math.Inf(1)
	t.root.nearestAddLinf(q, &best, &bestVal)
	return best, bestVal, true
}

func (nd *node) nearestAddLinf(q geom.Point, best *Neighbor, bestVal *float64) {
	if nd.bounds.DistToPointLinf(q)+nd.minW >= *bestVal {
		return
	}
	if nd.items != nil {
		for _, it := range nd.items {
			d := q.DistLinf(it.P)
			if v := d + it.W; v < *bestVal {
				*best = Neighbor{Item: it, Dist: d}
				*bestVal = v
			}
		}
		return
	}
	a, b := nd.left, nd.right
	if b.bounds.DistToPointLinf(q)+b.minW < a.bounds.DistToPointLinf(q)+a.minW {
		a, b = b, a
	}
	a.nearestAddLinf(q, best, bestVal)
	b.nearestAddLinf(q, best, bestVal)
}

// ReportBelowLinf calls fn for every item with d_∞(q, p) - w < T — the
// "report all axis-aligned squares intersecting a query square" step of
// the L∞ two-stage structure.
func (t *Tree) ReportBelowLinf(q geom.Point, T float64, fn func(Item, float64) bool) {
	if t.root != nil {
		t.root.reportBelowLinf(q, T, fn)
	}
}

func (nd *node) reportBelowLinf(q geom.Point, T float64, fn func(Item, float64) bool) bool {
	if nd.bounds.DistToPointLinf(q)-nd.maxW >= T {
		return true
	}
	if nd.items != nil {
		for _, it := range nd.items {
			d := q.DistLinf(it.P)
			if d-it.W < T {
				if !fn(it, d) {
					return false
				}
			}
		}
		return true
	}
	return nd.left.reportBelowLinf(q, T, fn) && nd.right.reportBelowLinf(q, T, fn)
}
