package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"unn/internal/geom"
)

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			P:  geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50),
			W:  rng.Float64() * 5,
			ID: i,
		}
	}
	return items
}

func bruteNearest(items []Item, q geom.Point) (Item, float64) {
	best, bd := Item{}, math.Inf(1)
	for _, it := range items {
		if d := q.Dist(it.P); d < bd {
			best, bd = it, d
		}
	}
	return best, bd
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatal("len")
	}
	if _, ok := tr.Nearest(geom.Pt(0, 0)); ok {
		t.Error("Nearest on empty tree")
	}
	if _, _, ok := tr.NearestAdditive(geom.Pt(0, 0)); ok {
		t.Error("NearestAdditive on empty tree")
	}
	if _, ok := tr.Enumerate(geom.Pt(0, 0)).Next(); ok {
		t.Error("Enumerate on empty tree")
	}
	tr.WithinDist(geom.Pt(0, 0), 10, false, func(Item, float64) bool {
		t.Error("WithinDist on empty tree")
		return true
	})
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		items := randItems(rng, n)
		tr := New(items)
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*120-60, rng.Float64()*120-60)
			got, ok := tr.Nearest(q)
			if !ok {
				t.Fatal("not ok")
			}
			_, want := bruteNearest(items, q)
			if math.Abs(got.Dist-want) > 1e-12 {
				t.Fatalf("Nearest dist %v want %v", got.Dist, want)
			}
		}
	}
}

func TestKNearestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		items := randItems(rng, n)
		tr := New(items)
		q := geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		k := 1 + rng.Intn(n+3)
		got := tr.KNearest(q, k)

		dists := make([]float64, n)
		for i, it := range items {
			dists[i] = q.Dist(it.P)
		}
		sort.Float64s(dists)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("len %d want %d", len(got), wantLen)
		}
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-12 {
				t.Fatalf("k-NN #%d dist %v want %v", i, nb.Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatal("k-NN not sorted")
			}
		}
	}
}

func TestEnumerateFullOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 500)
	tr := New(items)
	q := geom.Pt(3, -7)
	e := tr.Enumerate(q)
	var prev float64 = -1
	seen := map[int]bool{}
	count := 0
	for {
		// Peek must agree with Next.
		pd, pok := e.Peek()
		nb, ok := e.Next()
		if ok != pok {
			t.Fatal("Peek/Next disagree on ok")
		}
		if !ok {
			break
		}
		if math.Abs(pd-nb.Dist) > 1e-12 {
			t.Fatalf("Peek %v != Next %v", pd, nb.Dist)
		}
		if nb.Dist < prev {
			t.Fatalf("order violated: %v after %v", nb.Dist, prev)
		}
		if seen[nb.Item.ID] {
			t.Fatalf("duplicate ID %d", nb.Item.ID)
		}
		seen[nb.Item.ID] = true
		prev = nb.Dist
		count++
	}
	if count != len(items) {
		t.Fatalf("enumerated %d of %d", count, len(items))
	}
}

func TestWithinDistMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		items := randItems(rng, 200)
		tr := New(items)
		q := geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		r := rng.Float64() * 40
		for _, strict := range []bool{false, true} {
			got := map[int]bool{}
			tr.WithinDist(q, r, strict, func(it Item, d float64) bool {
				got[it.ID] = true
				return true
			})
			for _, it := range items {
				d := q.Dist(it.P)
				want := d <= r
				if strict {
					want = d < r
				}
				if got[it.ID] != want {
					t.Fatalf("WithinDist(strict=%v) id=%d d=%v r=%v got=%v",
						strict, it.ID, d, r, got[it.ID])
				}
			}
		}
	}
}

func TestWithinDistEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 100)
	tr := New(items)
	calls := 0
	tr.WithinDist(geom.Pt(0, 0), 1000, false, func(Item, float64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop: %d calls", calls)
	}
}

func TestNearestAdditiveMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		items := randItems(rng, 1+rng.Intn(300))
		tr := New(items)
		for k := 0; k < 30; k++ {
			q := geom.Pt(rng.Float64()*120-60, rng.Float64()*120-60)
			_, got, ok := tr.NearestAdditive(q)
			if !ok {
				t.Fatal("not ok")
			}
			want := math.Inf(1)
			for _, it := range items {
				if v := q.Dist(it.P) + it.W; v < want {
					want = v
				}
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("NearestAdditive %v want %v", got, want)
			}
		}
	}
}

func TestReportBelowMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		items := randItems(rng, 200)
		tr := New(items)
		q := geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		T := rng.Float64() * 30
		got := map[int]bool{}
		tr.ReportBelow(q, T, func(it Item, d float64) bool {
			got[it.ID] = true
			return true
		})
		for _, it := range items {
			want := q.Dist(it.P)-it.W < T
			if got[it.ID] != want {
				t.Fatalf("ReportBelow id=%d got=%v want=%v", it.ID, got[it.ID], want)
			}
		}
	}
}

// Duplicate points must all be retrievable.
func TestDuplicatePoints(t *testing.T) {
	items := []Item{
		{P: geom.Pt(1, 1), ID: 0}, {P: geom.Pt(1, 1), ID: 1},
		{P: geom.Pt(1, 1), ID: 2}, {P: geom.Pt(5, 5), ID: 3},
	}
	tr := New(items)
	nbs := tr.KNearest(geom.Pt(1, 1), 3)
	if len(nbs) != 3 {
		t.Fatalf("got %d", len(nbs))
	}
	for _, nb := range nbs {
		if nb.Dist != 0 {
			t.Fatalf("dup dist %v", nb.Dist)
		}
	}
}

func TestFromPoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	tr := FromPoints(pts)
	nb, _ := tr.Nearest(geom.Pt(1.9, 0))
	if nb.Item.ID != 2 {
		t.Fatalf("ID %d", nb.Item.ID)
	}
}
