package kdtree

import (
	"container/heap"

	"unn/internal/geom"
)

// Enumerator yields the items of a tree in non-decreasing distance from a
// fixed query point, lazily. It is the incremental "spiral" retrieval
// primitive of Section 4.3: the caller pulls exactly as many nearest
// locations as the error analysis requires (m(ρ,ε) of Theorem 4.7, or an
// adaptive stopping rule) without committing to k in advance.
//
// Each Next call runs in O(log n) amortized heap operations.
type Enumerator struct {
	q geom.Point
	h entryHeap
}

type entry struct {
	dist float64
	nd   *node // nil if this entry is a concrete item
	item Item
}

type entryHeap []entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Enumerate returns a fresh enumerator for query point q.
func (t *Tree) Enumerate(q geom.Point) *Enumerator {
	e := &Enumerator{q: q}
	if t.root != nil {
		e.h = entryHeap{{dist: t.root.bounds.DistToPoint(q), nd: t.root}}
	}
	return e
}

// Next returns the next-closest item and its distance. ok is false once
// the tree is exhausted.
func (e *Enumerator) Next() (Neighbor, bool) {
	for len(e.h) > 0 {
		top := heap.Pop(&e.h).(entry)
		if top.nd == nil {
			return Neighbor{Item: top.item, Dist: top.dist}, true
		}
		nd := top.nd
		if nd.items != nil {
			for _, it := range nd.items {
				heap.Push(&e.h, entry{dist: e.q.Dist(it.P), item: it})
			}
			continue
		}
		heap.Push(&e.h, entry{dist: nd.left.bounds.DistToPoint(e.q), nd: nd.left})
		heap.Push(&e.h, entry{dist: nd.right.bounds.DistToPoint(e.q), nd: nd.right})
	}
	return Neighbor{}, false
}

// Peek returns the distance of the item Next would return, without
// consuming it. ok is false if the enumeration is exhausted.
func (e *Enumerator) Peek() (float64, bool) {
	for len(e.h) > 0 {
		if e.h[0].nd == nil {
			return e.h[0].dist, true
		}
		top := heap.Pop(&e.h).(entry)
		nd := top.nd
		if nd.items != nil {
			for _, it := range nd.items {
				heap.Push(&e.h, entry{dist: e.q.Dist(it.P), item: it})
			}
			continue
		}
		heap.Push(&e.h, entry{dist: nd.left.bounds.DistToPoint(e.q), nd: nd.left})
		heap.Push(&e.h, entry{dist: nd.right.bounds.DistToPoint(e.q), nd: nd.right})
	}
	return 0, false
}
