package kdtree

import (
	"math/rand"
	"slices"
	"testing"

	"unn/internal/geom"
)

// flatItems reuses the package helper but pins item 0 to zero weight so
// a certain (radius-0) region is always in play.
func flatItems(rng *rand.Rand, n int) []Item {
	items := randItems(rng, n)
	if n > 0 {
		items[0].W = 0
	}
	return items
}

// TestFlatNearestAdditiveParity: the implicit-array tree and the pointer
// tree share the same split rule and traversal order, so the
// additively-weighted NN must agree exactly — value, coordinates and id.
func TestFlatNearestAdditiveParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 63, 64, 65, 200} {
		items := flatItems(rng, n)
		pt := New(slices.Clone(items))
		ft := NewFlat(slices.Clone(items))
		if pt.Len() != ft.Len() {
			t.Fatalf("n=%d: Len %d != %d", n, ft.Len(), pt.Len())
		}
		for q := 0; q < 64; q++ {
			p := geom.Pt(rng.Float64()*60-5, rng.Float64()*60-5)
			wn, wv, wok := pt.NearestAdditive(p)
			gn, gv, gok := ft.NearestAdditive(p)
			if wok != gok || wv != gv || wn.Item.ID != gn.ID {
				t.Fatalf("n=%d q=%v: flat (%v,%v,%d) vs pointer (%v,%v,%d)",
					n, p, gok, gv, gn.ID, wok, wv, wn.Item.ID)
			}
			wn, wv, wok = pt.NearestAdditiveLinf(p)
			gn, gv, gok = ft.NearestAdditiveLinf(p)
			if wok != gok || wv != gv || wn.Item.ID != gn.ID {
				t.Fatalf("n=%d q=%v linf: flat (%v,%v,%d) vs pointer (%v,%v,%d)",
					n, p, gok, gv, gn.ID, wok, wv, wn.Item.ID)
			}
		}
	}
}

// TestFlatReportParity: the flat appenders report the same id sets as
// the pointer callbacks, for the strict weighted threshold (AppendBelow,
// both metrics) and the circular range query (AppendWithin).
func TestFlatReportParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 9, 64, 200} {
		items := flatItems(rng, n)
		pt := New(slices.Clone(items))
		ft := NewFlat(slices.Clone(items))
		for q := 0; q < 48; q++ {
			p := geom.Pt(rng.Float64()*60-5, rng.Float64()*60-5)
			for _, T := range []float64{0.5, 3, 10, 80} {
				var want []int
				pt.ReportBelow(p, T, func(it Item, _ float64) bool {
					want = append(want, it.ID)
					return true
				})
				got := ft.AppendBelow(p, T, nil)
				slices.Sort(want)
				slices.Sort(got)
				if !slices.Equal(want, got) {
					t.Fatalf("n=%d T=%v: below %v, want %v", n, T, got, want)
				}

				want = want[:0]
				pt.ReportBelowLinf(p, T, func(it Item, _ float64) bool {
					want = append(want, it.ID)
					return true
				})
				got = ft.AppendBelowLinf(p, T, nil)
				slices.Sort(want)
				slices.Sort(got)
				if !slices.Equal(want, got) {
					t.Fatalf("n=%d T=%v: belowLinf %v, want %v", n, T, got, want)
				}

				for _, strict := range []bool{false, true} {
					want = want[:0]
					pt.WithinDist(p, T, strict, func(it Item, _ float64) bool {
						want = append(want, it.ID)
						return true
					})
					got = ft.AppendWithin(p, T, strict, nil)
					slices.Sort(want)
					slices.Sort(got)
					if !slices.Equal(want, got) {
						t.Fatalf("n=%d r=%v strict=%v: within %v, want %v", n, T, strict, got, want)
					}
				}
			}
		}
	}
}

// TestFlatZeroAlloc: steady-state flat-tree queries allocate nothing
// once the destination buffer reached its high-water mark.
func TestFlatZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ft := NewFlat(flatItems(rng, 256))
	q := geom.Pt(25, 25)
	var dst []int
	dst = ft.AppendBelow(q, 20, dst)
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = ft.NearestAdditive(q)
		dst = ft.AppendBelow(q, 20, dst[:0])
		dst = ft.AppendWithin(q, 20, true, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("flat tree query allocs/op = %v, want 0", allocs)
	}
}
