package kdtree

import (
	"fmt"
)

// Slab is FlatTree's state as raw arrays, for binary persistence: the
// node SoA in implicit heap order plus the leaf-permuted item SoA.
// A Slab taken from a tree aliases the tree's arrays (trees are
// immutable after build), and FlatFromSlab adopts the given arrays
// without copying — the zero-copy restore path.
type Slab struct {
	N                                  int
	MinX, MinY, MaxX, MaxY, MinW, MaxW []float64
	Lo, Hi                             []int32
	Xs, Ys, Ws                         []float64
	IDs                                []int32
}

// Slab exposes the tree's arrays for serialization. The returned slices
// alias the tree; callers must treat them as read-only.
func (t *FlatTree) Slab() Slab {
	return Slab{
		N:    t.n,
		MinX: t.minX, MinY: t.minY, MaxX: t.maxX, MaxY: t.maxY,
		MinW: t.minW, MaxW: t.maxW,
		Lo: t.lo, Hi: t.hi,
		Xs: t.xs, Ys: t.ys, Ws: t.ws,
		IDs: t.ids,
	}
}

// FlatFromSlab reassembles a FlatTree around decoded arrays, adopting
// them without copying. It validates the shape an adversarial payload
// could break — array-length consistency plus leaf/child invariants on
// every node reachable from the root — so traversals can never index out
// of bounds, while trusting the geometry itself (bounds and weight
// aggregates are whatever the writer stored).
func FlatFromSlab(s Slab) (*FlatTree, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("kdtree: slab has negative item count %d", s.N)
	}
	if s.N == 0 {
		// NewFlat's empty-tree shape: no arrays at all.
		return &FlatTree{}, nil
	}
	size := len(s.MinX)
	if size == 0 {
		return nil, fmt.Errorf("kdtree: slab has %d items but no nodes", s.N)
	}
	if len(s.MinY) != size || len(s.MaxX) != size || len(s.MaxY) != size ||
		len(s.MinW) != size || len(s.MaxW) != size ||
		len(s.Lo) != size || len(s.Hi) != size {
		return nil, fmt.Errorf("kdtree: slab node arrays disagree on length")
	}
	if len(s.Xs) != s.N || len(s.Ys) != s.N || len(s.Ws) != s.N || len(s.IDs) != s.N {
		return nil, fmt.Errorf("kdtree: slab item arrays disagree with item count %d", s.N)
	}
	// Walk from the root exactly as queries do: internal nodes need both
	// children in range, leaves need a sane [lo, hi) item window.
	// Unreachable slots are never touched by traversals and need no check.
	stack := []int{0}
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if lo := s.Lo[ni]; lo >= 0 {
			if hi := s.Hi[ni]; hi < lo || int(hi) > s.N {
				return nil, fmt.Errorf("kdtree: slab leaf %d has item window [%d,%d) outside [0,%d)", ni, lo, hi, s.N)
			}
			continue
		}
		if 2*ni+2 >= size {
			return nil, fmt.Errorf("kdtree: slab internal node %d is missing children (size %d)", ni, size)
		}
		stack = append(stack, 2*ni+1, 2*ni+2)
	}
	return &FlatTree{
		n:    s.N,
		minX: s.MinX, minY: s.MinY, maxX: s.MaxX, maxY: s.MaxY,
		minW: s.MinW, maxW: s.MaxW,
		lo: s.Lo, hi: s.Hi,
		xs: s.Xs, ys: s.Ys, ws: s.Ws,
		ids: s.IDs,
	}, nil
}
