package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
)

func randPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
	}
	return pts
}

func TestValidateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		tr := New(randPts(rng, n))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumVertices() != n {
			t.Fatalf("n=%d: NumVertices=%d", n, tr.NumVertices())
		}
	}
}

func TestValidateGridWithDegeneracies(t *testing.T) {
	// A regular grid maximizes cocircular quadruples.
	var pts []geom.Point
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, geom.Pt(float64(i), float64(j)))
		}
	}
	tr := New(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 64 {
		t.Fatalf("NumVertices=%d", tr.NumVertices())
	}
}

func TestCollinearInput(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Pt(float64(i), 2*float64(i)))
	}
	tr := New(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// NN queries must still work.
	idx, _, ok := tr.Nearest(geom.Pt(5.1, 10.3))
	if !ok || idx != 5 {
		t.Fatalf("NN on collinear input: idx=%d ok=%v", idx, ok)
	}
}

func TestDuplicatesMerged(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(1, 1)}
	tr := New(pts)
	if tr.NumVertices() != 2 {
		t.Fatalf("NumVertices=%d want 2", tr.NumVertices())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(400)
		pts := randPts(rng, n)
		tr := New(pts)
		for k := 0; k < 100; k++ {
			q := geom.Pt(rng.Float64()*140-70, rng.Float64()*140-70)
			gi, gd, ok := tr.Nearest(q)
			if !ok {
				t.Fatal("not ok")
			}
			wd := math.Inf(1)
			for _, p := range pts {
				wd = math.Min(wd, p.Dist(q))
			}
			if math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("trial %d: NN dist %v want %v (idx %d)", trial, gd, wd, gi)
			}
			if d := tr.Point(gi).Dist(q); math.Abs(d-gd) > 1e-12 {
				t.Fatalf("returned index inconsistent with distance")
			}
		}
	}
}

func TestTrianglesCallback(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)}
	tr := New(pts)
	count := 0
	tr.Triangles(func(a, b, c int) {
		count++
		for _, v := range []int{a, b, c} {
			if v < 0 || v >= 4 {
				t.Fatalf("vertex index %d out of range", v)
			}
		}
	})
	if count != 2 {
		t.Fatalf("triangle count %d want 2", count)
	}
}

// Incremental structure invariant under permutations: the Delaunay
// triangulation is unique for points in general position, so the edge set
// must not depend on insertion order.
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 60)
	edges := func(tr *Triangulation) map[[2]int]bool {
		es := map[[2]int]bool{}
		tr.Triangles(func(a, b, c int) {
			for _, e := range [][2]int{{a, b}, {b, c}, {c, a}} {
				if e[0] > e[1] {
					e[0], e[1] = e[1], e[0]
				}
				es[e] = true
			}
		})
		return es
	}
	t1 := New(pts)
	perm := rng.Perm(len(pts))
	shuffled := make([]geom.Point, len(pts))
	inv := make([]int, len(pts))
	for i, j := range perm {
		shuffled[i] = pts[j]
		inv[j] = i
	}
	t2 := New(shuffled)
	e1, e2 := edges(t1), edges(t2)
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for e := range e1 {
		f := [2]int{inv[e[0]], inv[e[1]]}
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
		if !e2[f] {
			t.Fatalf("edge %v missing after permutation", e)
		}
	}
}

func BenchmarkBuild1k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := randPts(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts)
	}
}

func BenchmarkNearest1k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	tr := New(randPts(rng, 1000))
	qs := randPts(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(qs[i%len(qs)])
	}
}
