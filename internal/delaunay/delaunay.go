// Package delaunay implements an incremental Delaunay triangulation
// (Bowyer–Watson with walking point location) over points in the plane,
// with exact orientation/in-circle predicates from internal/geom.
//
// The Monte-Carlo quantification structure of Section 4.2 preprocesses
// each random instantiation R_j of the uncertain points into "the Voronoi
// diagram Vor(R_j) ... for point-location queries"; nearest-neighbor
// queries against a Delaunay triangulation (walk + greedy descent) are the
// standard dual formulation of exactly that primitive. The library also
// offers a kd-tree backend for the same job; benchmark E9 compares them.
package delaunay

import (
	"fmt"
	"math"

	"unn/internal/geom"
)

// Triangulation is a Delaunay triangulation of a fixed point set.
type Triangulation struct {
	pts   []geom.Point // [0..2] are the super-triangle vertices
	tris  []tri
	alive []bool
	// vertTri[v] is some live triangle incident to vertex v.
	vertTri []int32
	lastTri int32
	nSuper  int
}

type tri struct {
	v [3]int32 // CCW vertices
	n [3]int32 // n[i] = neighbor across edge (v[i], v[(i+1)%3]); -1 if none
}

// New builds the Delaunay triangulation of pts. Exact duplicate points
// are merged into a single vertex.
func New(pts []geom.Point) *Triangulation {
	// Super-triangle comfortably containing everything.
	bb := geom.EmptyRect()
	for _, p := range pts {
		bb = bb.Extend(p)
	}
	if bb.IsEmpty() {
		bb = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	}
	c := bb.Center()
	r := math.Max(bb.Diag(), 1) * 16
	t := &Triangulation{nSuper: 3}
	t.pts = append(t.pts,
		geom.Pt(c.X-2*r, c.Y-r),
		geom.Pt(c.X+2*r, c.Y-r),
		geom.Pt(c.X, c.Y+2*r),
	)
	t.tris = append(t.tris, tri{v: [3]int32{0, 1, 2}, n: [3]int32{-1, -1, -1}})
	t.alive = append(t.alive, true)
	t.vertTri = []int32{0, 0, 0}
	for _, p := range pts {
		t.insert(p)
	}
	return t
}

// NumVertices returns the number of distinct real (non-super) vertices.
func (t *Triangulation) NumVertices() int { return len(t.pts) - t.nSuper }

// Point returns the coordinates of real vertex i (0-based among real
// vertices).
func (t *Triangulation) Point(i int) geom.Point { return t.pts[i+t.nSuper] }

func (t *Triangulation) insert(p geom.Point) {
	loc, on := t.locate(p)
	_ = on
	// Merge exact duplicates.
	for _, vi := range t.tris[loc].v {
		if t.pts[vi].Eq(p) {
			return
		}
	}
	// Collect the cavity: triangles whose circumcircle strictly contains p.
	cavity := map[int32]bool{loc: true}
	stack := []int32{loc}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.tris[cur].n {
			if nb < 0 || cavity[nb] {
				continue
			}
			tv := t.tris[nb].v
			if geom.InCircle(t.pts[tv[0]], t.pts[tv[1]], t.pts[tv[2]], p) > 0 {
				cavity[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	// Boundary edges of the cavity, as (a, b, outsideNeighbor).
	type bEdge struct {
		a, b, out int32
	}
	var boundary []bEdge
	for ti := range cavity {
		tr := t.tris[ti]
		for i := 0; i < 3; i++ {
			nb := tr.n[i]
			if nb < 0 || !cavity[nb] {
				boundary = append(boundary, bEdge{tr.v[i], tr.v[(i+1)%3], nb})
			}
		}
	}
	// Retire cavity triangles.
	for ti := range cavity {
		t.alive[ti] = false
	}
	// New vertex.
	pv := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.vertTri = append(t.vertTri, -1)
	// One new triangle per boundary edge.
	newTris := make([]int32, len(boundary))
	for i, be := range boundary {
		ti := int32(len(t.tris))
		t.tris = append(t.tris, tri{v: [3]int32{be.a, be.b, pv}, n: [3]int32{be.out, -1, -1}})
		t.alive = append(t.alive, true)
		newTris[i] = ti
		if be.out >= 0 {
			// Fix the outside neighbor's back-pointer.
			out := &t.tris[be.out]
			for k := 0; k < 3; k++ {
				if out.v[k] == be.b && out.v[(k+1)%3] == be.a {
					out.n[k] = ti
				}
			}
		}
	}
	// Link the new fan: neighbor across (b, pv) is the new triangle whose
	// first edge starts at b; across (pv, a) the one ending at a.
	startAt := map[int32]int32{}
	for i, be := range boundary {
		startAt[be.a] = newTris[i]
	}
	for i, be := range boundary {
		ti := newTris[i]
		t.tris[ti].n[1] = startAt[be.b] // across (b, pv)
		// across (pv, a): triangle whose edge (a', b') has b' == a.
	}
	endAt := map[int32]int32{}
	for i, be := range boundary {
		endAt[be.b] = newTris[i]
	}
	for i, be := range boundary {
		t.tris[newTris[i]].n[2] = endAt[be.a]
	}
	for i, be := range boundary {
		t.vertTri[be.a] = newTris[i]
		t.vertTri[be.b] = newTris[i]
	}
	t.vertTri[pv] = newTris[0]
	t.lastTri = newTris[0]
}

// locate walks from the last-touched triangle to one containing p.
func (t *Triangulation) locate(p geom.Point) (int32, bool) {
	cur := t.lastTri
	if cur < 0 || !t.alive[cur] {
		for i := len(t.tris) - 1; i >= 0; i-- {
			if t.alive[i] {
				cur = int32(i)
				break
			}
		}
	}
	for steps := 0; steps < 4*len(t.tris)+64; steps++ {
		tr := t.tris[cur]
		moved := false
		for i := 0; i < 3; i++ {
			a, b := t.pts[tr.v[i]], t.pts[tr.v[(i+1)%3]]
			if geom.Orient2D(a, b, p) < 0 {
				nb := tr.n[i]
				if nb < 0 {
					// Outside the super-triangle; should not happen.
					return cur, false
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			t.lastTri = cur
			return cur, true
		}
	}
	panic(fmt.Sprintf("delaunay: walk did not terminate at %v", p))
}

// Nearest returns the index (among real vertices) of the nearest vertex
// to q and its distance. ok is false if the triangulation has no real
// vertices.
func (t *Triangulation) Nearest(q geom.Point) (int, float64, bool) {
	if t.NumVertices() == 0 {
		return 0, 0, false
	}
	loc, _ := t.locate(q)
	// Seed with the closest real vertex of the containing triangle, or any
	// real vertex if the triangle touches only super vertices.
	cur := int32(-1)
	bd := math.Inf(1)
	for _, vi := range t.tris[loc].v {
		if vi < int32(t.nSuper) {
			continue
		}
		if d := t.pts[vi].Dist(q); d < bd {
			cur, bd = vi, d
		}
	}
	if cur < 0 {
		cur = int32(t.nSuper)
		bd = t.pts[cur].Dist(q)
	}
	// Greedy descent over Delaunay neighbors.
	for {
		improved := false
		for _, u := range t.vertexNeighbors(cur) {
			if u < int32(t.nSuper) {
				continue
			}
			if d := t.pts[u].Dist(q); d < bd {
				cur, bd = u, d
				improved = true
			}
		}
		if !improved {
			return int(cur) - t.nSuper, bd, true
		}
	}
}

// vertexNeighbors returns the Delaunay neighbors of vertex v by rotating
// around it. The super-triangle guarantees every real vertex has a closed
// fan.
func (t *Triangulation) vertexNeighbors(v int32) []int32 {
	start := t.vertTri[v]
	if start < 0 || !t.alive[start] {
		// Rare fallback: scan for any live triangle containing v.
		for i, tr := range t.tris {
			if !t.alive[i] {
				continue
			}
			if tr.v[0] == v || tr.v[1] == v || tr.v[2] == v {
				start = int32(i)
				t.vertTri[v] = start
				break
			}
		}
		if start < 0 || !t.alive[start] {
			return nil
		}
	}
	var out []int32
	cur := start
	for {
		tr := t.tris[cur]
		i := 0
		for ; i < 3; i++ {
			if tr.v[i] == v {
				break
			}
		}
		out = append(out, tr.v[(i+1)%3])
		// Rotate CCW around v: next triangle shares edge (v, v_{i+2}).
		next := tr.n[(i+2)%3]
		if next < 0 {
			// Open fan (v is a super vertex on the boundary): walk the other way.
			break
		}
		if next == start {
			break
		}
		cur = next
	}
	return out
}

// Triangles calls fn for every live triangle with real-vertex indices
// only (triangles touching the super-triangle are skipped).
func (t *Triangulation) Triangles(fn func(a, b, c int)) {
	for i, tr := range t.tris {
		if !t.alive[i] {
			continue
		}
		if tr.v[0] < int32(t.nSuper) || tr.v[1] < int32(t.nSuper) || tr.v[2] < int32(t.nSuper) {
			continue
		}
		fn(int(tr.v[0])-t.nSuper, int(tr.v[1])-t.nSuper, int(tr.v[2])-t.nSuper)
	}
}

// Validate checks the Delaunay empty-circumcircle property across every
// internal edge and the mutual consistency of neighbor pointers. It
// returns the first violation found.
func (t *Triangulation) Validate() error {
	for i, tr := range t.tris {
		if !t.alive[i] {
			continue
		}
		a, b, c := t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]]
		if geom.Orient2D(a, b, c) <= 0 {
			return fmt.Errorf("triangle %d not CCW", i)
		}
		for e := 0; e < 3; e++ {
			nb := tr.n[e]
			if nb < 0 {
				continue
			}
			if !t.alive[nb] {
				return fmt.Errorf("triangle %d has dead neighbor %d", i, nb)
			}
			// Find the vertex of nb opposite to the shared edge.
			va, vb := tr.v[e], tr.v[(e+1)%3]
			ntr := t.tris[nb]
			opp := int32(-1)
			back := false
			for k := 0; k < 3; k++ {
				if ntr.v[k] != va && ntr.v[k] != vb {
					opp = ntr.v[k]
				}
				if ntr.v[k] == vb && ntr.v[(k+1)%3] == va {
					if ntr.n[k] != int32(i) {
						return fmt.Errorf("neighbor back-pointer broken at tri %d edge %d", i, e)
					}
					back = true
				}
			}
			if !back {
				return fmt.Errorf("triangles %d and %d do not share edge (%d,%d)", i, nb, va, vb)
			}
			if opp >= 0 && geom.InCircle(a, b, c, t.pts[opp]) > 0 {
				return fmt.Errorf("Delaunay violation between triangles %d and %d", i, nb)
			}
		}
	}
	return nil
}
