package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
)

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{P: geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50), ID: i}
	}
	return items
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatal("len")
	}
	if _, ok := tr.Nearest(geom.Pt(0, 0)); ok {
		t.Fatal("nearest on empty")
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		items := randItems(rng, 1+rng.Intn(400))
		tr := New(items)
		for k := 0; k < 50; k++ {
			q := geom.Pt(rng.Float64()*120-60, rng.Float64()*120-60)
			got, ok := tr.Nearest(q)
			if !ok {
				t.Fatal("not ok")
			}
			want := math.Inf(1)
			for _, it := range items {
				want = math.Min(want, q.Dist(it.P))
			}
			if math.Abs(got.Dist-want) > 1e-12 {
				t.Fatalf("dist %v want %v", got.Dist, want)
			}
		}
	}
}

func TestEnumerationOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, 500)
	tr := New(items)
	e := tr.Enumerate(geom.Pt(7, -3))
	prev := -1.0
	seen := map[int]bool{}
	count := 0
	for {
		nb, ok := e.Next()
		if !ok {
			break
		}
		if nb.Dist < prev {
			t.Fatalf("order violated: %v after %v", nb.Dist, prev)
		}
		if seen[nb.Item.ID] {
			t.Fatalf("duplicate %d", nb.Item.ID)
		}
		seen[nb.Item.ID] = true
		prev = nb.Dist
		count++
	}
	if count != len(items) {
		t.Fatalf("enumerated %d of %d", count, len(items))
	}
}

// Coincident points must not recurse forever and must all be returned.
func TestCoincidentPoints(t *testing.T) {
	items := make([]Item, 50)
	for i := range items {
		items[i] = Item{P: geom.Pt(3, 4), ID: i}
	}
	tr := New(items)
	e := tr.Enumerate(geom.Pt(0, 0))
	count := 0
	for {
		nb, ok := e.Next()
		if !ok {
			break
		}
		if nb.Dist != 5 {
			t.Fatalf("dist %v", nb.Dist)
		}
		count++
	}
	if count != 50 {
		t.Fatalf("count %d", count)
	}
}

// Clustered data (the regime where quadtrees adapt): results must still
// match a linear scan.
func TestClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var items []Item
	for c := 0; c < 5; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 100; i++ {
			items = append(items, Item{
				P:  geom.Pt(cx+rng.NormFloat64()*0.1, cy+rng.NormFloat64()*0.1),
				ID: len(items),
			})
		}
	}
	tr := New(items)
	for k := 0; k < 100; k++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got, _ := tr.Nearest(q)
		want := math.Inf(1)
		for _, it := range items {
			want = math.Min(want, q.Dist(it.P))
		}
		if math.Abs(got.Dist-want) > 1e-12 {
			t.Fatalf("clustered NN: %v want %v", got.Dist, want)
		}
	}
}
