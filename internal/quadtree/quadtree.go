// Package quadtree implements a point-region quadtree with best-first
// incremental nearest-neighbor retrieval — the branch-and-bound
// alternative the paper suggests in §4.3 Remark (ii) (citing [Har11])
// for fetching the m locations closest to a query, in place of the
// theoretically optimal but "too complex to be implemented" [AC09]
// structure. The spiral search accepts either backend; benchmark
// E11 compares it with the kd-tree.
package quadtree

import (
	"container/heap"
	"math"

	"unn/internal/geom"
)

// Item is a stored point with payload.
type Item struct {
	P  geom.Point
	W  float64
	ID int
}

// Tree is a PR quadtree over a fixed item set.
type Tree struct {
	root *qnode
	n    int
}

type qnode struct {
	box      geom.Rect
	items    []Item    // leaf payload
	children [4]*qnode // nil for leaves
}

const leafCap = 8
const maxDepth = 48

// New builds a quadtree over the items.
func New(items []Item) *Tree {
	t := &Tree{n: len(items)}
	if len(items) == 0 {
		return t
	}
	bb := geom.EmptyRect()
	for _, it := range items {
		bb = bb.Extend(it.P)
	}
	// Square up the box so cells stay well shaped.
	side := math.Max(bb.Width(), bb.Height())
	if side == 0 {
		side = 1
	}
	c := bb.Center()
	bb = geom.Rect{
		Min: geom.Pt(c.X-side/2, c.Y-side/2),
		Max: geom.Pt(c.X+side/2, c.Y+side/2),
	}.Inflate(side * 1e-9)
	buf := make([]Item, len(items))
	copy(buf, items)
	t.root = buildQ(bb, buf, 0)
	return t
}

func buildQ(box geom.Rect, items []Item, depth int) *qnode {
	nd := &qnode{box: box}
	if len(items) <= leafCap || depth >= maxDepth {
		nd.items = items
		return nd
	}
	c := box.Center()
	quads := [4]geom.Rect{
		{Min: box.Min, Max: c},
		{Min: geom.Pt(c.X, box.Min.Y), Max: geom.Pt(box.Max.X, c.Y)},
		{Min: geom.Pt(box.Min.X, c.Y), Max: geom.Pt(c.X, box.Max.Y)},
		{Min: c, Max: box.Max},
	}
	var parts [4][]Item
	for _, it := range items {
		qi := 0
		if it.P.X >= c.X {
			qi |= 1
		}
		if it.P.Y >= c.Y {
			qi |= 2
		}
		parts[qi] = append(parts[qi], it)
	}
	allInOne := false
	for _, p := range parts {
		if len(p) == len(items) {
			allInOne = true
		}
	}
	if allInOne && depth > 0 {
		// Coincident (or near-coincident) points: stop splitting.
		nd.items = items
		return nd
	}
	for i := 0; i < 4; i++ {
		if len(parts[i]) > 0 {
			nd.children[i] = buildQ(quads[i], parts[i], depth+1)
		}
	}
	return nd
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.n }

// Neighbor is an enumeration result.
type Neighbor struct {
	Item Item
	Dist float64
}

type qentry struct {
	dist float64
	nd   *qnode
	item Item
}

type qheap []qentry

func (h qheap) Len() int            { return len(h) }
func (h qheap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h qheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *qheap) Push(x interface{}) { *h = append(*h, x.(qentry)) }
func (h *qheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Enumerator yields items in non-decreasing distance from q.
type Enumerator struct {
	q geom.Point
	h qheap
}

// Enumerate starts a best-first traversal from q.
func (t *Tree) Enumerate(q geom.Point) *Enumerator {
	e := &Enumerator{q: q}
	if t.root != nil {
		e.h = qheap{{dist: t.root.box.DistToPoint(q), nd: t.root}}
	}
	return e
}

// Next returns the next-closest item.
func (e *Enumerator) Next() (Neighbor, bool) {
	for len(e.h) > 0 {
		top := heap.Pop(&e.h).(qentry)
		if top.nd == nil {
			return Neighbor{Item: top.item, Dist: top.dist}, true
		}
		nd := top.nd
		if nd.items != nil {
			for _, it := range nd.items {
				heap.Push(&e.h, qentry{dist: e.q.Dist(it.P), item: it})
			}
			continue
		}
		for _, ch := range nd.children {
			if ch != nil {
				heap.Push(&e.h, qentry{dist: ch.box.DistToPoint(e.q), nd: ch})
			}
		}
	}
	return Neighbor{}, false
}

// Nearest returns the closest item to q.
func (t *Tree) Nearest(q geom.Point) (Neighbor, bool) {
	return t.Enumerate(q).Next()
}
