// Package envelope computes one-dimensional lower envelopes of families
// of partial real functions over an interval, with numerically refined
// breakpoints.
//
// It is the engine behind Lemma 2.2 of the paper: each curve γ_i of the
// nonzero Voronoi diagram is the lower envelope, in polar coordinates
// around the center c_i, of the pairwise curves γ_ij. Those curves are
// well-behaved (each pair crosses O(1) times), so a dense scan over the
// parameter interval followed by bisection refinement recovers the
// envelope and its breakpoints to within an absolute parameter tolerance.
// The number of grid samples is chosen by the caller proportionally to
// the expected envelope complexity (O(n) pieces by the theory of
// Davenport–Schinzel sequences [SA95]).
package envelope

import "math"

// Func evaluates one family member at parameter t. Return +Inf where the
// function is undefined; the envelope treats such points as "absent".
type Func func(t float64) float64

// Piece is a maximal interval [Lo, Hi] on which a single function J
// realizes the lower envelope. J == -1 denotes a gap where every function
// is +Inf.
type Piece struct {
	Lo, Hi float64
	J      int
}

// Lower computes the lower envelope of fs over [lo, hi]. The interval is
// scanned at `grid` equally spaced samples; transitions between samples
// are refined by bisection to parameter tolerance tol. Functions are
// assumed continuous on their domains with finitely many pairwise
// crossings; features narrower than one grid step can be missed, so
// choose grid ≳ 4× the expected number of envelope pieces.
func Lower(fs []Func, lo, hi float64, grid int, tol float64) []Piece {
	if grid < 2 {
		grid = 2
	}
	if hi <= lo || len(fs) == 0 {
		return nil
	}
	argmin := func(t float64) int {
		best, bv := -1, math.Inf(1)
		for j, f := range fs {
			if v := f(t); v < bv {
				best, bv = j, v
			}
		}
		return best
	}

	// transition locates one changeover in (a, b) given argmin(a)==ja and
	// argmin(b)!=ja, by bisection on the predicate "argmin == ja". It
	// returns the breakpoint and the label taking over just after it.
	transition := func(a, b float64, ja int) (float64, int) {
		for b-a > tol {
			m := (a + b) / 2
			if argmin(m) == ja {
				a = m
			} else {
				b = m
			}
		}
		return (a + b) / 2, argmin(b)
	}

	step := (hi - lo) / float64(grid)
	var pieces []Piece
	cur := argmin(lo)
	start := lo
	prevT := lo
	for i := 1; i <= grid; i++ {
		t := lo + float64(i)*step
		if i == grid {
			t = hi
		}
		// Resolve the (possibly chained) transitions between prevT and t.
		a, ja := prevT, cur
		for guard := 0; argmin(t) != ja && guard < 16; guard++ {
			bp, jn := transition(a, t, ja)
			pieces = append(pieces, Piece{Lo: start, Hi: bp, J: ja})
			start, a, ja = bp, bp+tol, jn
			cur = jn
		}
		prevT = t
	}
	pieces = append(pieces, Piece{Lo: start, Hi: hi, J: cur})
	return mergePieces(pieces)
}

func mergePieces(ps []Piece) []Piece {
	if len(ps) == 0 {
		return ps
	}
	out := ps[:1]
	for _, p := range ps[1:] {
		if last := &out[len(out)-1]; last.J == p.J && p.Lo <= last.Hi+1e-15 {
			last.Hi = p.Hi
		} else {
			out = append(out, p)
		}
	}
	// Drop zero-width slivers.
	cleaned := out[:0]
	for _, p := range out {
		if p.Hi > p.Lo {
			cleaned = append(cleaned, p)
		}
	}
	return cleaned
}

// Eval returns the envelope value at t given its pieces and the family.
func Eval(pieces []Piece, fs []Func, t float64) float64 {
	for _, p := range pieces {
		if t >= p.Lo && t <= p.Hi {
			if p.J < 0 {
				return math.Inf(1)
			}
			return fs[p.J](t)
		}
	}
	return math.Inf(1)
}

// Breakpoints returns the interior transition parameters of the envelope
// (excluding lo and hi).
func Breakpoints(pieces []Piece) []float64 {
	var bps []float64
	for i := 1; i < len(pieces); i++ {
		bps = append(bps, pieces[i].Lo)
	}
	return bps
}

// SignChanges returns the parameters in (lo, hi) at which f changes sign,
// located by a grid scan plus bisection to tolerance tol. Tangential
// touches (no sign change) are not reported. Roots closer together than
// one grid step may be merged or missed; callers choose grid according to
// the expected root count.
func SignChanges(f Func, lo, hi float64, grid int, tol float64) []float64 {
	if grid < 2 {
		grid = 2
	}
	var roots []float64
	step := (hi - lo) / float64(grid)
	const unknown = -2
	prevSign := unknown
	prevT := lo
	zeroAt := math.NaN()
	for i := 0; i <= grid; i++ {
		t := lo + float64(i)*step
		if i == grid {
			t = hi
		}
		v := f(t)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			prevSign, zeroAt = unknown, math.NaN()
			continue
		}
		s := 0
		if v > 0 {
			s = 1
		} else if v < 0 {
			s = -1
		}
		if s == 0 {
			// Remember where the function first touched zero; whether it is
			// a root to report depends on the sign on the far side.
			if math.IsNaN(zeroAt) {
				zeroAt = t
			}
			continue
		}
		switch {
		case prevSign == unknown:
			// First finite sample of this stretch; nothing to compare.
		case s != prevSign:
			if !math.IsNaN(zeroAt) {
				roots = append(roots, zeroAt)
			} else {
				a, b := prevT, t
				fa := f(a)
				for b-a > tol {
					m := (a + b) / 2
					fm := f(m)
					if fm == 0 {
						a, b = m, m
						break
					}
					if (fa < 0) == (fm < 0) {
						a, fa = m, fm
					} else {
						b = m
					}
				}
				roots = append(roots, (a+b)/2)
			}
		}
		prevSign, prevT, zeroAt = s, t, math.NaN()
	}
	return roots
}
