package envelope

import (
	"math"
	"math/rand"
	"testing"
)

func TestLowerTwoLines(t *testing.T) {
	fs := []Func{
		func(t float64) float64 { return t },     // y = t
		func(t float64) float64 { return 2 - t }, // y = 2 - t, crossing at t=1
	}
	ps := Lower(fs, 0, 2, 64, 1e-12)
	if len(ps) != 2 {
		t.Fatalf("pieces = %+v", ps)
	}
	if ps[0].J != 0 || ps[1].J != 1 {
		t.Fatalf("labels = %+v", ps)
	}
	if math.Abs(ps[0].Hi-1) > 1e-9 {
		t.Fatalf("breakpoint %v want 1", ps[0].Hi)
	}
}

func TestLowerWithGaps(t *testing.T) {
	inf := math.Inf(1)
	fs := []Func{
		func(t float64) float64 { // defined only on [0, 1]
			if t > 1 {
				return inf
			}
			return 5
		},
		func(t float64) float64 { // defined only on [2, 3]
			if t < 2 {
				return inf
			}
			return 7
		},
	}
	ps := Lower(fs, 0, 3, 300, 1e-10)
	if len(ps) != 3 {
		t.Fatalf("pieces = %+v", ps)
	}
	if ps[0].J != 0 || ps[1].J != -1 || ps[2].J != 1 {
		t.Fatalf("labels = %+v", ps)
	}
	if math.Abs(ps[0].Hi-1) > 1e-6 || math.Abs(ps[2].Lo-2) > 1e-6 {
		t.Fatalf("gap boundaries: %+v", ps)
	}
}

func TestLowerChainedTransitions(t *testing.T) {
	// Three parabolas with minima at 0.3, 0.5, 0.7 — two breakpoints that
	// fall close together when the grid is coarse.
	f := func(c float64) Func {
		return func(t float64) float64 { return (t - c) * (t - c) }
	}
	fs := []Func{f(0.3), f(0.5), f(0.7)}
	ps := Lower(fs, 0, 1, 16, 1e-12)
	if len(ps) != 3 {
		t.Fatalf("pieces = %+v", ps)
	}
	for i, want := range []int{0, 1, 2} {
		if ps[i].J != want {
			t.Fatalf("labels: %+v", ps)
		}
	}
	if math.Abs(ps[0].Hi-0.4) > 1e-9 || math.Abs(ps[1].Hi-0.6) > 1e-9 {
		t.Fatalf("breakpoints: %+v", ps)
	}
}

// Property: the envelope value equals the true pointwise minimum on a
// dense independent sample, and pieces tile [lo, hi].
func TestLowerIsPointwiseMin(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		type par struct{ a, b, c float64 }
		pars := make([]par, n)
		fs := make([]Func, n)
		for i := range fs {
			p := par{rng.Float64()*2 + 0.1, rng.Float64()*4 - 2, rng.Float64() * 3}
			pars[i] = p
			fs[i] = func(t float64) float64 { return p.a*(t-p.b)*(t-p.b) + p.c }
		}
		ps := Lower(fs, -3, 3, 512, 1e-12)
		// Tiling.
		if ps[0].Lo != -3 || ps[len(ps)-1].Hi != 3 {
			t.Fatalf("pieces do not span: %+v", ps)
		}
		for i := 1; i < len(ps); i++ {
			if math.Abs(ps[i].Lo-ps[i-1].Hi) > 1e-9 {
				t.Fatalf("gap between pieces %d and %d", i-1, i)
			}
		}
		for k := 0; k < 500; k++ {
			x := rng.Float64()*6 - 3
			want := math.Inf(1)
			for _, f := range fs {
				want = math.Min(want, f(x))
			}
			got := Eval(ps, fs, x)
			// Allow slack near breakpoints (within tol of a crossing the
			// two candidates are equal anyway).
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("Eval(%v) = %v want %v (pieces %+v)", x, got, want, ps)
			}
		}
	}
}

func TestBreakpoints(t *testing.T) {
	ps := []Piece{{0, 1, 0}, {1, 2, 1}, {2, 3, 0}}
	bps := Breakpoints(ps)
	if len(bps) != 2 || bps[0] != 1 || bps[1] != 2 {
		t.Fatalf("bps = %v", bps)
	}
}

func TestSignChanges(t *testing.T) {
	f := func(t float64) float64 { return math.Sin(t) }
	roots := SignChanges(f, 0.1, 3*math.Pi-0.1, 256, 1e-12)
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	if math.Abs(roots[0]-math.Pi) > 1e-9 || math.Abs(roots[1]-2*math.Pi) > 1e-9 {
		t.Fatalf("roots = %v", roots)
	}
	// Tangency (no sign change) must not be reported.
	g := func(t float64) float64 { v := t - 1; return v * v }
	if roots := SignChanges(g, 0, 2, 256, 1e-12); len(roots) != 0 {
		t.Fatalf("tangency reported: %v", roots)
	}
	// Function with infinities on part of the domain.
	h := func(t float64) float64 {
		if t < 0.5 {
			return math.Inf(1)
		}
		return t - 1
	}
	roots = SignChanges(h, 0, 2, 256, 1e-12)
	if len(roots) != 1 || math.Abs(roots[0]-1) > 1e-9 {
		t.Fatalf("roots with gap = %v", roots)
	}
}

func TestLowerEmptyAndDegenerate(t *testing.T) {
	if ps := Lower(nil, 0, 1, 16, 1e-9); ps != nil {
		t.Error("nil family")
	}
	fs := []Func{func(float64) float64 { return 1 }}
	if ps := Lower(fs, 1, 1, 16, 1e-9); ps != nil {
		t.Error("empty interval")
	}
	ps := Lower(fs, 0, 1, 16, 1e-9)
	if len(ps) != 1 || ps[0].J != 0 {
		t.Fatalf("constant: %+v", ps)
	}
}
