// Package svg is a minimal dependency-free SVG writer used to render the
// diagrams of the library (V≠0 curves, V_Pr arrangements, uncertainty
// regions) for documentation and debugging.
package svg

import (
	"fmt"
	"io"
	"math"
	"strings"

	"unn/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport and
// renders them scaled into a pixel-sized image (y-axis flipped so +y is
// up, as in the paper's figures).
type Canvas struct {
	view   geom.Rect
	w, h   float64
	body   strings.Builder
	margin float64
}

// New creates a canvas for the given world viewport and pixel width; the
// height preserves the aspect ratio.
func New(view geom.Rect, pixelWidth float64) *Canvas {
	if view.Width() <= 0 || view.Height() <= 0 {
		view = view.Inflate(1)
	}
	h := pixelWidth * view.Height() / view.Width()
	return &Canvas{view: view, w: pixelWidth, h: h, margin: 8}
}

func (c *Canvas) tx(p geom.Point) (float64, float64) {
	x := c.margin + (p.X-c.view.Min.X)/c.view.Width()*c.w
	y := c.margin + (c.view.Max.Y-p.Y)/c.view.Height()*c.h
	return x, y
}

func (c *Canvas) scale() float64 { return c.w / c.view.Width() }

// Line draws a segment.
func (c *Canvas) Line(s geom.Segment, stroke string, width float64) {
	x1, y1 := c.tx(s.A)
	x2, y2 := c.tx(s.B)
	if badCoord(x1, y1, x2, y2) {
		return
	}
	fmt.Fprintf(&c.body,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Circle draws a circle outline with optional translucent fill.
func (c *Canvas) Circle(d geom.Disk, stroke, fill string, width float64) {
	x, y := c.tx(d.C)
	r := d.R * c.scale()
	if badCoord(x, y, r, 0) {
		return
	}
	if fill == "" {
		fill = "none"
	}
	fmt.Fprintf(&c.body,
		`<circle cx="%.2f" cy="%.2f" r="%.2f" stroke="%s" fill="%s" stroke-width="%.2f"/>`+"\n",
		x, y, r, stroke, fill, width)
}

// Dot draws a filled point marker.
func (c *Canvas) Dot(p geom.Point, r float64, fill string) {
	x, y := c.tx(p)
	if badCoord(x, y, 0, 0) {
		return
	}
	fmt.Fprintf(&c.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, r, fill)
}

// Text places a label at a world coordinate.
func (c *Canvas) Text(p geom.Point, s string, size float64, fill string) {
	x, y := c.tx(p)
	if badCoord(x, y, 0, 0) {
		return
	}
	fmt.Fprintf(&c.body, `<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s">%s</text>`+"\n",
		x, y, size, fill, escape(s))
}

// Palette returns a visually distinct stroke color for index i.
func Palette(i int) string {
	colors := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}
	return colors[((i%len(colors))+len(colors))%len(colors)]
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.w+2*c.margin, c.h+2*c.margin, c.w+2*c.margin, c.h+2*c.margin)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	sb.WriteString(c.body.String())
	sb.WriteString("</svg>\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

func badCoord(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e7 {
			return true
		}
	}
	return false
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
