package svg

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"unn/internal/geom"
)

func TestCanvasRendersElements(t *testing.T) {
	c := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 5)}, 500)
	c.Line(geom.Seg(geom.Pt(1, 1), geom.Pt(9, 4)), "#123456", 1.5)
	c.Circle(geom.DiskAt(5, 2.5, 2), "#abc", "", 1)
	c.Dot(geom.Pt(2, 2), 3, "red")
	c.Text(geom.Pt(1, 4), "a<b&c", 12, "black")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<line", "<circle", "<text", "a&lt;b&amp;c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// y-axis is flipped: (1,1) maps to pixel y = 8 + (5-1)/5*250 = 208,
	// below (9,4)'s pixel y = 8 + (5-4)/5*250 = 58.
	if !strings.Contains(out, `y1="208.00"`) || !strings.Contains(out, `y2="58.00"`) {
		t.Fatalf("unexpected y mapping:\n%s", out)
	}
}

func TestBadCoordinatesSkipped(t *testing.T) {
	c := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 100)
	c.Line(geom.Seg(geom.Pt(math.NaN(), 0), geom.Pt(1, 1)), "#000", 1)
	c.Dot(geom.Pt(math.Inf(1), 0), 2, "red")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<line") || strings.Contains(out, "NaN") {
		t.Fatal("non-finite elements leaked into output")
	}
}

func TestPaletteStable(t *testing.T) {
	if Palette(0) == "" || Palette(3) != Palette(13) {
		t.Fatal("palette not cyclic")
	}
	if Palette(-1) == "" {
		t.Fatal("negative index mishandled")
	}
}

func TestDegenerateViewport(t *testing.T) {
	// Zero-area viewport must not divide by zero.
	c := New(geom.Rect{Min: geom.Pt(2, 2), Max: geom.Pt(2, 2)}, 100)
	c.Dot(geom.Pt(2, 2), 1, "blue")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN in degenerate viewport")
	}
}
