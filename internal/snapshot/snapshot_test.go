package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	var e1 Enc
	e1.U8(7)
	e1.U32(0xdeadbeef)
	e1.U64(1 << 40)
	e1.F64(math.Pi)
	e1.String("hello")
	e1.F64s([]float64{1, 2.5, math.Inf(1), math.Inf(-1)})
	e1.I32s([]int32{-1, 0, 42})

	var w Writer
	w.Add(1, 0, e1.Bytes())
	w.Add(0x100, FlagRebuilt, []byte("raw"))
	w.Add(2, 0, nil)

	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := len(r.Sections()); got != 3 {
		t.Fatalf("sections = %d, want 3", got)
	}
	payload, flags, ok := r.Section(0x100)
	if !ok || flags != FlagRebuilt || string(payload) != "raw" {
		t.Fatalf("section 0x100 = %q flags %d ok %v", payload, flags, ok)
	}
	if _, _, ok := r.Section(999); ok {
		t.Fatal("lookup of absent section succeeded")
	}

	p1, _, ok := r.Section(1)
	if !ok {
		t.Fatal("section 1 missing")
	}
	d := NewDec(p1)
	if v, _ := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v, _ := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v, _ := d.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v, _ := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if s, _ := d.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	fs, err := d.F64s()
	if err != nil || len(fs) != 4 || fs[1] != 2.5 || !math.IsInf(fs[2], 1) || !math.IsInf(fs[3], -1) {
		t.Fatalf("F64s = %v (%v)", fs, err)
	}
	is, err := d.I32s()
	if err != nil || len(is) != 3 || is[0] != -1 || is[2] != 42 {
		t.Fatalf("I32s = %v (%v)", is, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full decode", d.Remaining())
	}
	if _, err := d.U8(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read past end: %v, want ErrCorrupt", err)
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	var w Writer
	var e Enc
	e.F64s([]float64{1, 2, 3})
	w.Add(1, 0, e.Bytes())
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":             {},
		"short":             good[:5],
		"bad magic":         append([]byte("XXXX"), good[4:]...),
		"truncated payload": good[:len(good)-4],
	}
	// Section length pointing past the end of the buffer.
	bad2 := append([]byte(nil), good...)
	bad2[headerSize+16] = 0xff // section 0 length low byte
	cases["oversized section"] = bad2

	for name, data := range cases {
		if _, err := NewReader(data); err == nil {
			t.Errorf("%s: NewReader accepted malformed input", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}

	// A wrong format version is rejected, but as its own error (a future
	// reader may handle it), not as corruption.
	bad := append([]byte(nil), good...)
	bad[4], bad[5] = 0xff, 0xff
	if _, err := NewReader(bad); err == nil {
		t.Error("bad version: NewReader accepted unsupported version")
	}
}

func TestDecRejectsOversizedSlabs(t *testing.T) {
	// A slab header claiming 2^60 elements must error before allocating.
	var e Enc
	e.U64(1 << 60)
	d := NewDec(e.Bytes())
	if _, err := d.F64s(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("F64s on absurd count: %v, want ErrCorrupt", err)
	}
	d = NewDec(e.Bytes())
	if _, err := d.I32s(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("I32s on absurd count: %v, want ErrCorrupt", err)
	}
	var es Enc
	es.U32(0xffffffff) // string length prefix far past the payload end
	d = NewDec(es.Bytes())
	if _, err := d.String(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("String on absurd count: %v, want ErrCorrupt", err)
	}
}

func FuzzReader(f *testing.F) {
	var w Writer
	var e Enc
	e.F64s([]float64{1, 2, 3})
	e.String("seed")
	w.Add(1, 0, e.Bytes())
	w.Add(2, FlagRebuilt, []byte{1, 2, 3, 4})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		// A successfully opened container must serve every listed
		// section, and decoding each payload must never panic.
		for _, si := range r.Sections() {
			payload, _, ok := r.Section(si.ID)
			if !ok {
				t.Fatalf("listed section %d not retrievable", si.ID)
			}
			if len(payload) != si.Len {
				t.Fatalf("section %d payload %d bytes, table says %d", si.ID, len(payload), si.Len)
			}
			d := NewDec(payload)
			for d.Remaining() > 0 {
				if _, err := d.F64s(); err != nil {
					break
				}
			}
		}
	})
}
