// Package snapshot implements the versioned binary container behind
// index persistence (unn.OpenSnapshot / Handle.Snapshot): a little-endian
// format carrying a magic, a format version, endianness/arch flags, and a
// section table of typed blobs — the sheet-format idiom of putting the
// decode contract (endianness + header sizes) up front so a reader can
// reject a foreign file before touching any payload.
//
// Layout:
//
//	offset 0   magic   "UNNS" (4 bytes)
//	offset 4   version uint16 (little-endian)
//	offset 6   flags   uint8  (bit 0: payload is little-endian, always set;
//	                           bit 1: written on a 64-bit word size)
//	offset 7   reserved uint8 (zero)
//	offset 8   count   uint32 — number of section-table entries
//	offset 12  table   count × {id uint32, flags uint32, offset uint64,
//	                            length uint64} (24 bytes per entry)
//	...        payload blobs, each addressed by its table entry
//
// Sections are typed blobs: the id says what the blob is, the per-section
// flags record restore semantics (e.g. FlagRebuilt marks state the reader
// reconstructs from the dataset instead of decoding — the fallback for
// backends without flat state). Payload values are fixed-width
// little-endian; slabs are a uint64 count followed by the raw values.
// Every decode validates lengths against the remaining input BEFORE
// allocating, so truncated or corrupted input fails with an error instead
// of a panic or an attacker-sized allocation.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// Magic identifies a snapshot file.
const Magic = "UNNS"

// Version is the current format version. Version 2 added per-kind plan
// entries for registered query kinds beyond the original three (the
// top-k kind). Version 3 added the adaptive replanning state: per-shard
// observed visit rates (shard temperatures) and the replan
// configuration/history in the run meta. The container layout is
// unchanged across all three, so readers accept every version — the
// engine layer treats the absent fields as "never observed / loop
// disabled", which is exactly what an older writer meant.
const Version = 3

// MinVersion is the oldest format version readers still accept.
const MinVersion = 1

// Header flags.
const (
	// FlagLittleEndian marks a little-endian payload (always set by this
	// writer; a reader rejects files without it).
	FlagLittleEndian = 1 << 0
	// FlagArch64 records that the writer ran on a 64-bit word size —
	// informational: the payload itself is word-size independent.
	FlagArch64 = 1 << 1
)

// FlagRebuilt is a per-section flag: the section's backend state was not
// serialized (it has no flat representation) and the reader rebuilds it
// from the dataset on restore.
const FlagRebuilt = 1 << 0

const (
	headerSize = 12
	entrySize  = 24
)

// ErrCorrupt wraps every malformed-input failure so callers can test for
// the class with errors.Is.
var ErrCorrupt = fmt.Errorf("snapshot: corrupt input")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// --- writer -----------------------------------------------------------------

type wsec struct {
	id, flags uint32
	payload   []byte
}

// Writer accumulates sections and serializes them behind a header and
// section table.
type Writer struct {
	secs []wsec
}

// Add appends one section. Sections are written in Add order; ids must
// be unique within a container (NewReader rejects duplicates).
func (w *Writer) Add(id, flags uint32, payload []byte) {
	w.secs = append(w.secs, wsec{id: id, flags: flags, payload: payload})
}

// WriteTo writes the container: header, section table, then payloads.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	head := make([]byte, headerSize+entrySize*len(w.secs))
	copy(head[0:4], Magic)
	binary.LittleEndian.PutUint16(head[4:6], Version)
	flags := uint8(FlagLittleEndian)
	if bits.UintSize == 64 {
		flags |= FlagArch64
	}
	head[6] = flags
	head[7] = 0
	binary.LittleEndian.PutUint32(head[8:12], uint32(len(w.secs)))
	off := uint64(len(head))
	for i, s := range w.secs {
		e := head[headerSize+entrySize*i:]
		binary.LittleEndian.PutUint32(e[0:4], s.id)
		binary.LittleEndian.PutUint32(e[4:8], s.flags)
		binary.LittleEndian.PutUint64(e[8:16], off)
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.payload)))
		off += uint64(len(s.payload))
	}
	total := int64(0)
	n, err := out.Write(head)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, s := range w.secs {
		n, err := out.Write(s.payload)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// --- reader -----------------------------------------------------------------

// SectionInfo describes one decoded section-table entry.
type SectionInfo struct {
	ID    uint32
	Flags uint32
	Len   int
}

// Reader parses a snapshot container held fully in memory. Payload
// slices alias the input buffer; callers must not retain them past the
// buffer's lifetime unless they copy.
type Reader struct {
	secs     []wsec
	infos    []SectionInfo
	hdrFlags uint8
}

// NewReader validates the header and section table of data.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, corruptf("short header: %d bytes", len(data))
	}
	if string(data[0:4]) != Magic {
		return nil, corruptf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v < MinVersion || v > Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d–%d)", v, MinVersion, Version)
	}
	flags := data[6]
	if flags&FlagLittleEndian == 0 {
		return nil, corruptf("payload not marked little-endian (flags 0x%02x)", flags)
	}
	count := binary.LittleEndian.Uint32(data[8:12])
	// The table must fit in the input — checked before any allocation
	// sized by count.
	if uint64(count) > uint64(len(data)-headerSize)/entrySize {
		return nil, corruptf("section count %d exceeds input", count)
	}
	r := &Reader{
		secs:     make([]wsec, 0, count),
		infos:    make([]SectionInfo, 0, count),
		hdrFlags: flags,
	}
	seen := make(map[uint32]bool, count)
	for i := uint32(0); i < count; i++ {
		e := data[headerSize+entrySize*int(i):]
		id := binary.LittleEndian.Uint32(e[0:4])
		sf := binary.LittleEndian.Uint32(e[4:8])
		off := binary.LittleEndian.Uint64(e[8:16])
		ln := binary.LittleEndian.Uint64(e[16:24])
		if off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, corruptf("section %d (id %d) out of bounds: off %d len %d of %d", i, id, off, ln, len(data))
		}
		if seen[id] {
			return nil, corruptf("duplicate section id %d", id)
		}
		seen[id] = true
		r.secs = append(r.secs, wsec{id: id, flags: sf, payload: data[off : off+ln]})
		r.infos = append(r.infos, SectionInfo{ID: id, Flags: sf, Len: int(ln)})
	}
	return r, nil
}

// Sections lists the decoded section-table entries in file order.
func (r *Reader) Sections() []SectionInfo { return r.infos }

// Section returns the payload and flags of the first section with the
// given id.
func (r *Reader) Section(id uint32) (payload []byte, flags uint32, ok bool) {
	for _, s := range r.secs {
		if s.id == id {
			return s.payload, s.flags, true
		}
	}
	return nil, 0, false
}

// --- payload codec ----------------------------------------------------------

// Enc builds one section payload out of fixed-width little-endian values
// and count-prefixed slabs.
type Enc struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// F64 appends a float64 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// F64s appends a count-prefixed float64 slab.
func (e *Enc) F64s(vs []float64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// I32s appends a count-prefixed int32 slab.
func (e *Enc) I32s(vs []int32) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// Dec consumes one section payload. Every read validates the remaining
// length first; slab reads additionally bound their element count by the
// remaining bytes before allocating.
type Dec struct {
	b []byte
}

// NewDec wraps payload for decoding.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Remaining reports the unread byte count.
func (d *Dec) Remaining() int { return len(d.b) }

func (d *Dec) take(n int) ([]byte, error) {
	if len(d.b) < n {
		return nil, corruptf("need %d bytes, have %d", n, len(d.b))
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v, nil
}

// U8 reads one byte.
func (d *Dec) U8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// U32 reads a uint32.
func (d *Dec) U32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// U64 reads a uint64.
func (d *Dec) U64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// F64 reads a float64.
func (d *Dec) F64() (float64, error) {
	v, err := d.U64()
	return math.Float64frombits(v), err
}

// String reads a length-prefixed string.
func (d *Dec) String() (string, error) {
	n, err := d.U32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// F64s reads a count-prefixed float64 slab. The count is validated
// against the remaining bytes before the slab is allocated.
func (d *Dec) F64s() ([]float64, error) {
	n, err := d.U64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b))/8 {
		return nil, corruptf("float64 slab of %d elements exceeds %d remaining bytes", n, len(d.b))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[8*i:]))
	}
	d.b = d.b[8*n:]
	return out, nil
}

// I32s reads a count-prefixed int32 slab, bounds-checked before
// allocation.
func (d *Dec) I32s() ([]int32, error) {
	n, err := d.U64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b))/4 {
		return nil, corruptf("int32 slab of %d elements exceeds %d remaining bytes", n, len(d.b))
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.b[4*i:]))
	}
	d.b = d.b[4*n:]
	return out, nil
}
