package kernel_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"unn/internal/geom"
	"unn/internal/kernel"
)

// appendNonzeroTiled runs AppendNonzeroTile over qs in chunks of tile
// lanes and returns one answer slice per query.
func appendNonzeroTiled(f *kernel.Flat, qs []geom.Point, tile int, sc *kernel.Scratch) [][]int {
	out := make([][]int, len(qs))
	for lo := 0; lo < len(qs); lo += tile {
		hi := min(lo+tile, len(qs))
		qx := make([]float64, hi-lo)
		qy := make([]float64, hi-lo)
		for t := range qx {
			qx[t], qy[t] = qs[lo+t].X, qs[lo+t].Y
		}
		f.AppendNonzeroTile(qx, qy, out[lo:hi], sc)
	}
	return out
}

// TestTileNonzeroParity: every lane of AppendNonzeroTile must be
// bit-identical to a scalar AppendNonzero call on that query alone,
// across all three row layouts, skewed tile widths, and the n ∈ {0,1}
// special cases.
func TestTileNonzeroParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	scTile := kernel.GetScratch()
	defer kernel.PutScratch(scTile)
	for _, n := range []int{0, 1, 2, 3, 17, 100} {
		flats := []*kernel.Flat{
			kernel.FromDisks(randDisks(rng, n, 20)),
			kernel.FromDiscrete(randDiscrete(rng, max(n, 0), 3, 20)),
			kernel.FromSquares(randSquares(rng, n, 20), kernel.MetricLinf),
			kernel.FromSquares(randSquares(rng, n, 20), kernel.MetricL1),
		}
		qs := randQueries(rng, 37, 20) // 37: exercises ragged final tiles
		for fi, f := range flats {
			for _, tile := range []int{1, 7, 16} {
				got := appendNonzeroTiled(f, qs, tile, scTile)
				for qi, q := range qs {
					want := f.AppendNonzero(q.X, q.Y, nil, sc)
					if !slices.Equal(got[qi], want) {
						t.Fatalf("flat %d n=%d tile=%d q=%v: got %v, want %v",
							fi, n, tile, q, got[qi], want)
					}
				}
			}
		}
	}
}

// TestTileScanTwoMinParity: the subset-scan tile kernel with a sparse
// active-lane set must leave each active lane's (m1, m2, arg1, staged
// δ's) bit-identical to the scalar ScanTwoMin over the same ids, and
// inactive lanes untouched.
func TestTileScanTwoMinParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 40
	flats := []*kernel.Flat{
		kernel.FromDisks(randDisks(rng, n, 20)),
		kernel.FromDiscrete(randDiscrete(rng, n, 4, 20)),
		kernel.FromSquares(randSquares(rng, n, 20), kernel.MetricLinf),
	}
	ids := []int{3, 7, 8, 11, 20, 39}
	qs := randQueries(rng, 8, 20)
	T := len(qs)
	for fi, f := range flats {
		qx := make([]float64, T)
		qy := make([]float64, T)
		for t := range qs {
			qx[t], qy[t] = qs[t].X, qs[t].Y
		}
		sc := kernel.GetScratch()
		m1, m2, arg1, deltas := sc.TileLanes(T, n)
		act := []int{0, 2, 3, 6} // lanes 1, 4, 5, 7 inactive
		f.ScanTwoMinTile(ids, act, qx, qy, deltas, n, m1, m2, arg1)
		scalarDeltas := make([]float64, n)
		for _, lane := range act {
			wm1, wm2, warg := f.ScanTwoMin(ids, qx[lane], qy[lane], scalarDeltas, math.Inf(1), math.Inf(1), -1)
			if m1[lane] != wm1 || m2[lane] != wm2 || arg1[lane] != warg {
				t.Fatalf("flat %d lane %d: state (%v,%v,%d), want (%v,%v,%d)",
					fi, lane, m1[lane], m2[lane], arg1[lane], wm1, wm2, warg)
			}
			for _, i := range ids {
				if deltas[lane*n+i] != scalarDeltas[i] {
					t.Fatalf("flat %d lane %d row %d: δ %v, want %v",
						fi, lane, i, deltas[lane*n+i], scalarDeltas[i])
				}
			}
		}
		for _, lane := range []int{1, 4, 5, 7} {
			if !math.IsInf(m1[lane], 1) || !math.IsInf(m2[lane], 1) || arg1[lane] != -1 {
				t.Fatalf("flat %d inactive lane %d mutated: (%v,%v,%d)",
					fi, lane, m1[lane], m2[lane], arg1[lane])
			}
		}
		kernel.PutScratch(sc)
	}
}

// TestTileExpectedParity: every lane of ExpectedArgminTile equals the
// scalar ExpectedArgmin bit for bit (argmin row and minimum value).
func TestTileExpectedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 9, 40} {
		f := kernel.FromDiscrete(randDiscrete(rng, n, 3, 20))
		qs := randQueries(rng, 19, 20)
		T := len(qs)
		qx := make([]float64, T)
		qy := make([]float64, T)
		for t := range qs {
			qx[t], qy[t] = qs[t].X, qs[t].Y
		}
		best := make([]int, T)
		bestD := make([]float64, T)
		f.ExpectedArgminTile(qx, qy, best, bestD)
		for lane, q := range qs {
			wantI, wantD := f.ExpectedArgmin(q.X, q.Y)
			if best[lane] != wantI || bestD[lane] != wantD {
				t.Fatalf("n=%d lane %d: got (%d,%v), want (%d,%v)",
					n, lane, best[lane], bestD[lane], wantI, wantD)
			}
		}
	}
}

// TestTileZeroAlloc: a warmed tile scratch answers whole tiles with no
// heap allocation beyond the per-lane result buffers' one-time growth.
func TestTileZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := kernel.FromDisks(randDisks(rng, 64, 20))
	qs := randQueries(rng, 8, 20)
	qx := make([]float64, len(qs))
	qy := make([]float64, len(qs))
	for t := range qs {
		qx[t], qy[t] = qs[t].X, qs[t].Y
	}
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	dsts := make([][]int, len(qs))
	dsts = f.AppendNonzeroTile(qx, qy, dsts, sc) // warm lane buffers
	allocs := testing.AllocsPerRun(100, func() {
		for t := range dsts {
			dsts[t] = dsts[t][:0]
		}
		dsts = f.AppendNonzeroTile(qx, qy, dsts, sc)
	})
	if allocs != 0 {
		t.Fatalf("AppendNonzeroTile allocs/op = %v, want 0", allocs)
	}
}

// FuzzTileParity drives the tiled kernels against their scalar
// counterparts on fuzzer-chosen geometry and tile width: every dataset
// kind, every lane compared element-for-element (NN≠0) and bit-for-bit
// (E[d] argmin).
func FuzzTileParity(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(8), 3.0, 4.0)
	f.Add(int64(42), uint8(1), uint8(1), -1.5, 25.0)
	f.Add(int64(9), uint8(60), uint8(16), 10.0, 10.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, tileRaw uint8, qx0, qy0 float64) {
		if math.IsNaN(qx0) || math.IsInf(qx0, 0) || math.IsNaN(qy0) || math.IsInf(qy0, 0) {
			t.Skip()
		}
		n := int(nRaw%64) + 1
		tile := int(tileRaw%17) + 1
		rng := rand.New(rand.NewSource(seed))
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)
		qs := append([]geom.Point{geom.Pt(qx0, qy0)}, randQueries(rng, 2*tile, 20)...)

		flats := []*kernel.Flat{
			kernel.FromDisks(randDisks(rng, n, 20)),
			kernel.FromDiscrete(randDiscrete(rng, n, int(nRaw%4)+1, 20)),
			kernel.FromSquares(randSquares(rng, n, 20), kernel.MetricLinf),
			kernel.FromSquares(randSquares(rng, n, 20), kernel.MetricL1),
		}
		for fi, flat := range flats {
			got := appendNonzeroTiled(flat, qs, tile, sc)
			for qi, q := range qs {
				want := flat.AppendNonzero(q.X, q.Y, nil, sc)
				if !slices.Equal(got[qi], want) {
					t.Fatalf("flat %d n=%d tile=%d q=%v: got %v, want %v",
						fi, n, tile, q, got[qi], want)
				}
			}
		}

		fp := flats[1]
		qxs := make([]float64, len(qs))
		qys := make([]float64, len(qs))
		for i, q := range qs {
			qxs[i], qys[i] = q.X, q.Y
		}
		best := make([]int, len(qs))
		bestD := make([]float64, len(qs))
		fp.ExpectedArgminTile(qxs, qys, best, bestD)
		for lane, q := range qs {
			wantI, wantD := fp.ExpectedArgmin(q.X, q.Y)
			if best[lane] != wantI || bestD[lane] != wantD {
				t.Fatalf("expected n=%d lane %d: got (%d,%v), want (%d,%v)",
					n, lane, best[lane], bestD[lane], wantI, wantD)
			}
		}
	})
}
