// Package kernel provides flat, allocation-free query kernels over
// structure-of-arrays (SoA) mirrors of the uncertain datasets.
//
// The AoS inner loops (interface dispatch into uncertain.Point, pointer
// chases into per-point location slices) dominate every per-query cost
// the engine's planner routes between. Flattening each region family
// into contiguous float64 rows removes the dispatch and the chases, and
// — more importantly — lets one pass compute both extreme distances
// δ_i(q) and Δ_i(q) from the same per-location distances, halving the
// hypot count of the Lemma 2.1 oracle (the AoS path pays one full pass
// for the two-smallest-Δ scan and a second for the δ filter).
//
// Three row layouts cover every dataset the engine flattens:
//
//	disks    (uniform / truncated-Gaussian regions): CX, CY, R
//	discrete (location sets): Xs, Ys, W with Off[i] row offsets
//	squares  (L∞ balls, or L1 diamonds pre-rotation): CX, CY, R
//
// Every kernel reproduces the AoS arithmetic operation for operation:
// the same math.Hypot calls in the same order, with min/max folds
// written as the builtin min/max instead of math.Min/math.Max calls.
// The builtins carry the exact math.Min/math.Max IEEE semantics (NaN
// propagation, -0 < +0), so every fold is bit-identical — but they
// inline to branchless compare-select code, where math.Min/math.Max
// compile to assembly calls on amd64/go1.24 (≈55% of the brute query
// in profiles) and hand-written `if d < lo` branches mispredict on
// random query streams (≈2.5× slower than the select in the same
// loop). Answers stay bit-identical to the interface path, and the
// sharded merge stays bit-identical to the monolithic oracle.
package kernel

import (
	"math"

	"unn/internal/geom"
	"unn/internal/lmetric"
	"unn/internal/uncertain"
)

// Kind identifies the flattened region family.
type Kind uint8

const (
	KindDisks Kind = iota
	KindDiscrete
	KindSquares
)

// Metric selects the distance used for square rows (disk and discrete
// rows are always Euclidean).
type Metric uint8

const (
	MetricL2 Metric = iota
	MetricLinf
	MetricL1
)

// Flat is the SoA mirror of one dataset (or one shard's sub-dataset).
// Concurrent readers may share a Flat freely; the mutating
// AppendRegionRow / AppendDiscreteRow / DeleteRow methods keep a mirror
// in step with a mutable dataset and require the caller to exclude
// readers while they run (the engine calls them under its write lock).
type Flat struct {
	Kind   Kind
	Metric Metric
	N      int
	// Disk / square rows: center and radius (half-side for squares).
	CX, CY, R []float64
	// Discrete rows: all locations flattened, row i owning
	// [Off[i], Off[i+1]).
	Xs, Ys, W []float64
	Off       []int32
}

// FromDisks flattens disk regions.
func FromDisks(disks []geom.Disk) *Flat {
	return FromDisksInto(nil, disks)
}

// FromDisksInto is FromDisks reusing prev's slice capacity when prev is
// a disk-kind mirror (the engine re-derives a mutable dataset's mirror
// at most once per mutation epoch; reuse keeps that off the allocator).
// prev must not be read afterward.
func FromDisksInto(prev *Flat, disks []geom.Disk) *Flat {
	f := recycle(prev, KindDisks, MetricL2)
	f.N = len(disks)
	for _, d := range disks {
		f.CX = append(f.CX, d.C.X)
		f.CY = append(f.CY, d.C.Y)
		f.R = append(f.R, d.R)
	}
	return f
}

// FromDiscrete flattens discrete uncertain points, preserving per-row
// location order (the kernels' min/max/sum folds must visit locations
// in the AoS order to stay bit-identical).
func FromDiscrete(pts []*uncertain.Discrete) *Flat {
	return FromDiscreteInto(nil, pts)
}

// FromDiscreteInto is FromDiscrete reusing prev's slice capacity when
// prev is a discrete-kind mirror. prev must not be read afterward.
func FromDiscreteInto(prev *Flat, pts []*uncertain.Discrete) *Flat {
	f := recycle(prev, KindDiscrete, MetricL2)
	f.N = len(pts)
	f.Off = append(f.Off, 0)
	for _, p := range pts {
		for a, l := range p.Locs {
			f.Xs = append(f.Xs, l.X)
			f.Ys = append(f.Ys, l.Y)
			f.W = append(f.W, p.W[a])
		}
		f.Off = append(f.Off, int32(len(f.Xs)))
	}
	return f
}

// FromSquares flattens square (L∞) or diamond (L1) regions under the
// given metric.
func FromSquares(sqs []lmetric.Square, m Metric) *Flat {
	return FromSquaresInto(nil, sqs, m)
}

// FromSquaresInto is FromSquares reusing prev's slice capacity when
// prev is a square-kind mirror under the same metric. prev must not be
// read afterward.
func FromSquaresInto(prev *Flat, sqs []lmetric.Square, m Metric) *Flat {
	f := recycle(prev, KindSquares, m)
	f.N = len(sqs)
	for _, s := range sqs {
		f.CX = append(f.CX, s.C.X)
		f.CY = append(f.CY, s.C.Y)
		f.R = append(f.R, s.R)
	}
	return f
}

// recycle returns prev emptied for refilling when its kind and metric
// match, a fresh Flat otherwise.
func recycle(prev *Flat, k Kind, m Metric) *Flat {
	if prev == nil || prev.Kind != k || prev.Metric != m {
		return &Flat{Kind: k, Metric: m}
	}
	prev.N = 0
	prev.CX, prev.CY, prev.R = prev.CX[:0], prev.CY[:0], prev.R[:0]
	prev.Xs, prev.Ys, prev.W = prev.Xs[:0], prev.Ys[:0], prev.W[:0]
	prev.Off = prev.Off[:0]
	return prev
}

// AppendRegionRow appends one disk or square row (both families share
// the CX/CY/R layout). Mutating method: see the Flat doc for the
// locking contract.
func (f *Flat) AppendRegionRow(cx, cy, r float64) {
	f.CX = append(f.CX, cx)
	f.CY = append(f.CY, cy)
	f.R = append(f.R, r)
	f.N++
}

// AppendDiscreteRow appends one discrete row of locations in AoS order.
// Mutating method: see the Flat doc for the locking contract.
func (f *Flat) AppendDiscreteRow(locs []geom.Point, w []float64) {
	for a, l := range locs {
		f.Xs = append(f.Xs, l.X)
		f.Ys = append(f.Ys, l.Y)
		f.W = append(f.W, w[a])
	}
	f.Off = append(f.Off, int32(len(f.Xs)))
	f.N++
}

// DeleteRow removes row i, shifting later rows down one slot — the same
// dense id remap the engine applies to its dataset views, at the same
// O(n) splice cost. Mutating method: see the Flat doc for the locking
// contract.
func (f *Flat) DeleteRow(i int) {
	if f.Kind == KindDiscrete {
		lo, hi := int(f.Off[i]), int(f.Off[i+1])
		f.Xs = append(f.Xs[:lo], f.Xs[hi:]...)
		f.Ys = append(f.Ys[:lo], f.Ys[hi:]...)
		f.W = append(f.W[:lo], f.W[hi:]...)
		w := int32(hi - lo)
		n := f.N
		for j := i + 1; j < n; j++ {
			f.Off[j] = f.Off[j+1] - w
		}
		f.Off = f.Off[:n]
	} else {
		f.CX = append(f.CX[:i], f.CX[i+1:]...)
		f.CY = append(f.CY[:i], f.CY[i+1:]...)
		f.R = append(f.R[:i], f.R[i+1:]...)
	}
	f.N--
}

// squareDist is d(q, C_i) in the square metric: Chebyshev for L∞ rows,
// Manhattan for L1 rows (matching the planner's qmetric arithmetic).
func (f *Flat) squareDist(i int, qx, qy float64) float64 {
	dx, dy := math.Abs(qx-f.CX[i]), math.Abs(qy-f.CY[i])
	if f.Metric == MetricL1 {
		return dx + dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// MinDist returns δ_i(q), bit-identical to the AoS MinDist of row i.
func (f *Flat) MinDist(i int, qx, qy float64) float64 {
	switch f.Kind {
	case KindDiscrete:
		best := math.Inf(1)
		for a := f.Off[i]; a < f.Off[i+1]; a++ {
			best = min(best, math.Hypot(qx-f.Xs[a], qy-f.Ys[a]))
		}
		return best
	case KindSquares:
		return max(f.squareDist(i, qx, qy)-f.R[i], 0)
	default:
		return max(math.Hypot(qx-f.CX[i], qy-f.CY[i])-f.R[i], 0)
	}
}

// MaxDist returns Δ_i(q), bit-identical to the AoS MaxDist of row i.
func (f *Flat) MaxDist(i int, qx, qy float64) float64 {
	switch f.Kind {
	case KindDiscrete:
		best := 0.0
		for a := f.Off[i]; a < f.Off[i+1]; a++ {
			best = max(best, math.Hypot(qx-f.Xs[a], qy-f.Ys[a]))
		}
		return best
	case KindSquares:
		return f.squareDist(i, qx, qy) + f.R[i]
	default:
		return math.Hypot(qx-f.CX[i], qy-f.CY[i]) + f.R[i]
	}
}

// MinMaxDist returns (δ_i(q), Δ_i(q)) from one pass over row i — the
// fused form that halves the per-location distance evaluations relative
// to separate MinDist+MaxDist calls.
func (f *Flat) MinMaxDist(i int, qx, qy float64) (lo, hi float64) {
	switch f.Kind {
	case KindDiscrete:
		lo, hi = math.Inf(1), 0
		for a := f.Off[i]; a < f.Off[i+1]; a++ {
			d := math.Hypot(qx-f.Xs[a], qy-f.Ys[a])
			lo = min(lo, d)
			hi = max(hi, d)
		}
		return lo, hi
	case KindSquares:
		d := f.squareDist(i, qx, qy)
		return max(d-f.R[i], 0), d + f.R[i]
	default:
		d := math.Hypot(qx-f.CX[i], qy-f.CY[i])
		return max(d-f.R[i], 0), d + f.R[i]
	}
}

// ScanTwoMin folds the rows listed in ids into the running
// two-smallest-Δ state (m1, m2, arg1) of the Lemma 2.1 scan, staging
// each row's δ into deltas (indexed by row id) for the later filter
// pass. The update rule matches the brute oracles exactly, so the final
// (m1, m2) are the true two smallest Δ values regardless of visit
// order, and arg1 only differs from the monolithic scan's when
// m1 == m2 — where the filter bound is the same either way.
func (f *Flat) ScanTwoMin(ids []int, qx, qy float64, deltas []float64, m1, m2 float64, arg1 int) (float64, float64, int) {
	switch f.Kind {
	case KindDiscrete:
		for _, i := range ids {
			rx := f.Xs[f.Off[i]:f.Off[i+1]]
			ry := f.Ys[f.Off[i]:f.Off[i+1]]
			ry = ry[:len(rx)] // provable len equality: no ry[a] bounds check
			lo, hi := math.Inf(1), 0.0
			for a, x := range rx {
				d := math.Hypot(qx-x, qy-ry[a])
				lo = min(lo, d)
				hi = max(hi, d)
			}
			deltas[i] = lo
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	case KindSquares:
		for _, i := range ids {
			d := f.squareDist(i, qx, qy)
			deltas[i] = max(d-f.R[i], 0)
			hi := d + f.R[i]
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	default:
		for _, i := range ids {
			d := math.Hypot(qx-f.CX[i], qy-f.CY[i])
			deltas[i] = max(d-f.R[i], 0)
			hi := d + f.R[i]
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	}
	return m1, m2, arg1
}

// AppendNonzero appends NN≠0(q) over every row to dst — the Lemma 2.1
// brute oracle in one fused pass, staging δ values in sc.Dists. Output
// is in ascending row order, matching the AoS oracles.
func (f *Flat) AppendNonzero(qx, qy float64, dst []int, sc *Scratch) []int {
	n := f.N
	if n == 0 {
		return dst
	}
	deltas := sc.Dists
	if cap(deltas) < n {
		deltas = make([]float64, n)
		sc.Dists = deltas
	}
	deltas = deltas[:n]
	if n == 1 {
		// The sole region is its own nonzero neighbor regardless of δ/Δ.
		return append(dst, 0)
	}
	m1, m2 := math.Inf(1), math.Inf(1)
	arg1 := -1
	m1, m2, arg1 = f.scanAllTwoMin(qx, qy, deltas, m1, m2, arg1)
	// Split the filter at arg1 so the common rows test a loop-invariant
	// bound (m1); only the Δ-minimizer itself tests m2 (min over j ≠ i).
	// Appends happen in the same ascending order as the fused loop did.
	end := arg1
	if end < 0 {
		end = n
	}
	for i := 0; i < end; i++ {
		if deltas[i] < m1 {
			dst = append(dst, i)
		}
	}
	if arg1 >= 0 {
		if deltas[arg1] < m2 {
			dst = append(dst, arg1)
		}
		for i := arg1 + 1; i < n; i++ {
			if deltas[i] < m1 {
				dst = append(dst, i)
			}
		}
	}
	return dst
}

// scanAllTwoMin is ScanTwoMin over every row without the ids
// indirection (the brute oracle's full scan).
func (f *Flat) scanAllTwoMin(qx, qy float64, deltas []float64, m1, m2 float64, arg1 int) (float64, float64, int) {
	n := f.N
	deltas = deltas[:n] // provable i < n = len(deltas): no store bounds checks
	switch f.Kind {
	case KindDiscrete:
		// The full scan visits rows in storage order, so one flat cursor
		// walks Xs/Ys once — no per-row subslice construction, and the
		// row boundary is the only extra compare per location.
		xs, ys, off := f.Xs, f.Ys, f.Off
		a := int(off[0])
		for i := 0; i < n; i++ {
			end := int(off[i+1])
			lo, hi := math.Inf(1), 0.0
			for ; a < end; a++ {
				d := math.Hypot(qx-xs[a], qy-ys[a])
				lo = min(lo, d)
				hi = max(hi, d)
			}
			deltas[i] = lo
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	case KindSquares:
		for i := 0; i < n; i++ {
			d := f.squareDist(i, qx, qy)
			deltas[i] = max(d-f.R[i], 0)
			hi := d + f.R[i]
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	default:
		for i := 0; i < n; i++ {
			d := math.Hypot(qx-f.CX[i], qy-f.CY[i])
			deltas[i] = max(d-f.R[i], 0)
			hi := d + f.R[i]
			if hi < m1 {
				m2 = m1
				m1, arg1 = hi, i
			} else if hi < m2 {
				m2 = hi
			}
		}
	}
	return m1, m2, arg1
}

// ExpectedArgmin returns the discrete row minimizing E d(q, P_i) with
// the first-strict-min tie rule of the brute scan, and that minimum.
// Callers guard Kind == KindDiscrete.
func (f *Flat) ExpectedArgmin(qx, qy float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i := 0; i < f.N; i++ {
		e := 0.0
		for a := f.Off[i]; a < f.Off[i+1]; a++ {
			e += f.W[a] * math.Hypot(qx-f.Xs[a], qy-f.Ys[a])
		}
		if e < bestD {
			best, bestD = i, e
		}
	}
	return best, bestD
}

// DistCDF returns G_i(q, r) = Σ_{d(q,p_ia) ≤ r} w_ia for discrete row i
// (Eq. (2)). Callers guard Kind == KindDiscrete.
func (f *Flat) DistCDF(i int, qx, qy, r float64) float64 {
	total := 0.0
	for a := f.Off[i]; a < f.Off[i+1]; a++ {
		if math.Hypot(qx-f.Xs[a], qy-f.Ys[a]) <= r {
			total += f.W[a]
		}
	}
	return total
}
