package kernel_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"unn/internal/geom"
	"unn/internal/kernel"
	"unn/internal/lmetric"
	"unn/internal/nonzero"
	"unn/internal/uncertain"
)

func randDisks(rng *rand.Rand, n int, side float64) []geom.Disk {
	out := make([]geom.Disk, n)
	for i := range out {
		out[i] = geom.Disk{
			C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
			R: rng.Float64() * 2,
		}
	}
	if n > 0 {
		out[0].R = 0 // always exercise a certain point
	}
	return out
}

func randDiscrete(rng *rand.Rand, n, k int, side float64) []*uncertain.Discrete {
	out := make([]*uncertain.Discrete, n)
	for i := range out {
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for a := range locs {
			locs[a] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
			w[a] = 1 / float64(k)
		}
		out[i] = &uncertain.Discrete{Locs: locs, W: w}
	}
	return out
}

func randSquares(rng *rand.Rand, n int, side float64) []lmetric.Square {
	out := make([]lmetric.Square, n)
	for i := range out {
		out[i] = lmetric.Square{
			C: geom.Pt(rng.Float64()*side, rng.Float64()*side),
			R: rng.Float64() * 2,
		}
	}
	return out
}

func randQueries(rng *rand.Rand, n int, side float64) []geom.Point {
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side*1.2-side*0.1, rng.Float64()*side*1.2-side*0.1)
	}
	return qs
}

// TestAppendNonzeroParityDisks: the fused one-pass kernel must be
// bit-identical to the AoS Lemma 2.1 oracle over disks.
func TestAppendNonzeroParityDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 17, 100} {
		disks := randDisks(rng, n, 20)
		f := kernel.FromDisks(disks)
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)
		for _, q := range randQueries(rng, 64, 20) {
			want := nonzero.BruteDisks(disks, q)
			got := f.AppendNonzero(q.X, q.Y, nil, sc)
			if !slices.Equal(want, got) {
				t.Fatalf("n=%d q=%v: got %v, want %v", n, q, got, want)
			}
		}
	}
}

// TestAppendNonzeroParityDiscrete: same contract over discrete points.
func TestAppendNonzeroParityDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 9, 40} {
		pts := randDiscrete(rng, n, 3, 20)
		f := kernel.FromDiscrete(pts)
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)
		for _, q := range randQueries(rng, 64, 20) {
			want := nonzero.Brute(nonzero.DiscreteAsUncertain(pts), q)
			got := f.AppendNonzero(q.X, q.Y, nil, sc)
			if !slices.Equal(want, got) {
				t.Fatalf("n=%d q=%v: got %v, want %v", n, q, got, want)
			}
		}
	}
}

// TestAppendNonzeroParitySquares: square rows under both L∞ and
// (pre-rotated) L1 against the lmetric brute oracles.
func TestAppendNonzeroParitySquares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 9, 40} {
		sqs := randSquares(rng, n, 20)
		flinf := kernel.FromSquares(sqs, kernel.MetricLinf)
		fl1 := kernel.FromSquares(sqs, kernel.MetricL1)
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)
		for _, q := range randQueries(rng, 64, 20) {
			want := lmetric.BruteLinf(sqs, q)
			got := flinf.AppendNonzero(q.X, q.Y, nil, sc)
			if !slices.Equal(want, got) {
				t.Fatalf("linf n=%d q=%v: got %v, want %v", n, q, got, want)
			}
			want = lmetric.BruteL1(sqs, q)
			got = fl1.AppendNonzero(q.X, q.Y, nil, sc)
			if !slices.Equal(want, got) {
				t.Fatalf("l1 n=%d q=%v: got %v, want %v", n, q, got, want)
			}
		}
	}
}

// TestMinMaxDistParity: the per-row extreme distances equal the AoS
// region methods bit for bit, and MinMaxDist agrees with the pair.
func TestMinMaxDistParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	disks := randDisks(rng, 20, 20)
	pts := randDiscrete(rng, 20, 4, 20)
	fd := kernel.FromDisks(disks)
	fp := kernel.FromDiscrete(pts)
	for _, q := range randQueries(rng, 32, 20) {
		for i := range disks {
			if got, want := fd.MinDist(i, q.X, q.Y), disks[i].MinDist(q); got != want {
				t.Fatalf("disk min %d: %v != %v", i, got, want)
			}
			if got, want := fd.MaxDist(i, q.X, q.Y), disks[i].MaxDist(q); got != want {
				t.Fatalf("disk max %d: %v != %v", i, got, want)
			}
		}
		for i := range pts {
			if got, want := fp.MinDist(i, q.X, q.Y), pts[i].MinDist(q); got != want {
				t.Fatalf("discrete min %d: %v != %v", i, got, want)
			}
			if got, want := fp.MaxDist(i, q.X, q.Y), pts[i].MaxDist(q); got != want {
				t.Fatalf("discrete max %d: %v != %v", i, got, want)
			}
			lo, hi := fp.MinMaxDist(i, q.X, q.Y)
			if lo != pts[i].MinDist(q) || hi != pts[i].MaxDist(q) {
				t.Fatalf("discrete minmax %d: (%v,%v)", i, lo, hi)
			}
		}
	}
}

// TestExpectedArgminParity: the contiguous E[d] scan matches the AoS
// strict-< argmin fold.
func TestExpectedArgminParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randDiscrete(rng, 30, 3, 20)
	f := kernel.FromDiscrete(pts)
	for _, q := range randQueries(rng, 48, 20) {
		wantI, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.ExpectedDist(q); d < wantD {
				wantI, wantD = i, d
			}
		}
		gotI, gotD := f.ExpectedArgmin(q.X, q.Y)
		if gotI != wantI || gotD != wantD {
			t.Fatalf("q=%v: got (%d,%v), want (%d,%v)", q, gotI, gotD, wantI, wantD)
		}
	}
}

// TestDistCDFParity: the flat distance cdf matches the AoS one exactly
// (same fold order, same ≤ comparisons), including at exact location
// distances.
func TestDistCDFParity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randDiscrete(rng, 10, 4, 20)
	f := kernel.FromDiscrete(pts)
	for _, q := range randQueries(rng, 16, 20) {
		for i, p := range pts {
			for _, r := range []float64{0, 1, 5, p.MinDist(q), p.MaxDist(q), 100} {
				if got, want := f.DistCDF(i, q.X, q.Y, r), p.DistCDF(q, r); got != want {
					t.Fatalf("i=%d r=%v: %v != %v", i, r, got, want)
				}
			}
		}
	}
}

// TestAppendNonzeroZeroAlloc: a warmed scratch answers queries with no
// heap allocation beyond the result buffer's one-time growth.
func TestAppendNonzeroZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	disks := randDisks(rng, 64, 20)
	f := kernel.FromDisks(disks)
	sc := kernel.GetScratch()
	defer kernel.PutScratch(sc)
	q := geom.Pt(10, 10)
	var dst []int
	dst = f.AppendNonzero(q.X, q.Y, dst, sc) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		dst = f.AppendNonzero(q.X, q.Y, dst[:0], sc)
	})
	if allocs != 0 {
		t.Fatalf("AppendNonzero allocs/op = %v, want 0", allocs)
	}
}

// FuzzKernelParity drives the flat kernels and the implicit-kd
// two-stage structures against the AoS oracles on fuzzer-chosen
// geometry: every dataset kind (disks, discrete with k ∈ {1,2,4,7}
// locations, L∞/L1 squares) rebuilt from the fuzzed seed, NN≠0 answers
// compared element-for-element, and the per-row extreme distances plus
// the E[d] argmin compared bit-for-bit.
func FuzzKernelParity(f *testing.F) {
	f.Add(int64(1), uint8(5), 3.0, 4.0)
	f.Add(int64(42), uint8(1), -1.5, 25.0)
	f.Add(int64(9), uint8(60), 10.0, 10.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, qx, qy float64) {
		if math.IsNaN(qx) || math.IsInf(qx, 0) || math.IsNaN(qy) || math.IsInf(qy, 0) {
			t.Skip()
		}
		n := int(nRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		q := geom.Pt(qx, qy)
		sc := kernel.GetScratch()
		defer kernel.PutScratch(sc)

		disks := randDisks(rng, n, 20)
		fd := kernel.FromDisks(disks)
		if got, want := fd.AppendNonzero(qx, qy, nil, sc), nonzero.BruteDisks(disks, q); !slices.Equal(got, want) {
			t.Fatalf("disks n=%d: got %v, want %v", n, got, want)
		}
		ts := nonzero.NewTwoStageDisks(disks)
		if got, want := ts.Query(q), nonzero.BruteDisks(disks, q); !slices.Equal(got, want) {
			t.Fatalf("twostage disks n=%d: got %v, want %v", n, got, want)
		}

		for _, k := range []int{1, 2, 4, 7} {
			pts := randDiscrete(rng, n, k, 20)
			fp := kernel.FromDiscrete(pts)
			asU := nonzero.DiscreteAsUncertain(pts)
			if got, want := fp.AppendNonzero(qx, qy, nil, sc), nonzero.Brute(asU, q); !slices.Equal(got, want) {
				t.Fatalf("discrete n=%d k=%d: got %v, want %v", n, k, got, want)
			}
			tsd := nonzero.NewTwoStageDiscrete(pts)
			if got, want := tsd.Query(q), nonzero.Brute(asU, q); !slices.Equal(got, want) {
				t.Fatalf("twostage discrete n=%d k=%d: got %v, want %v", n, k, got, want)
			}
			for i, p := range pts {
				lo, hi := fp.MinMaxDist(i, qx, qy)
				if lo != p.MinDist(q) || hi != p.MaxDist(q) {
					t.Fatalf("discrete minmax n=%d k=%d i=%d: (%v,%v) vs (%v,%v)",
						n, k, i, lo, hi, p.MinDist(q), p.MaxDist(q))
				}
			}
			wantI, wantD := -1, math.Inf(1)
			for i, p := range pts {
				if d := p.ExpectedDist(q); d < wantD {
					wantI, wantD = i, d
				}
			}
			if gotI, gotD := fp.ExpectedArgmin(qx, qy); gotI != wantI || gotD != wantD {
				t.Fatalf("expected argmin n=%d k=%d: got (%d,%v), want (%d,%v)", n, k, gotI, gotD, wantI, wantD)
			}
		}

		sqs := randSquares(rng, n, 20)
		if got, want := kernel.FromSquares(sqs, kernel.MetricLinf).AppendNonzero(qx, qy, nil, sc), lmetric.BruteLinf(sqs, q); !slices.Equal(got, want) {
			t.Fatalf("squares linf n=%d: got %v, want %v", n, got, want)
		}
		if got, want := kernel.FromSquares(sqs, kernel.MetricL1).AppendNonzero(qx, qy, nil, sc), lmetric.BruteL1(sqs, q); !slices.Equal(got, want) {
			t.Fatalf("squares l1 n=%d: got %v, want %v", n, got, want)
		}
	})
}

// TestMutateRowsMatchesRebuild: a mirror maintained by
// AppendRegionRow/AppendDiscreteRow/DeleteRow through a random
// append/delete sequence must equal a fresh From* build of the final
// rows — the invariant the engine's mutation epochs rely on instead of
// rebuilding the whole mirror per epoch.
func TestMutateRowsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))

	disks := randDisks(rng, 10, 20)
	fd := kernel.FromDisks(disks)
	pts := randDiscrete(rng, 10, 3, 20)
	fp := kernel.FromDiscrete(pts)
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 || len(disks) == 0 {
			d := geom.Disk{C: geom.Pt(rng.Float64()*20, rng.Float64()*20), R: rng.Float64()}
			disks = append(disks, d)
			fd.AppendRegionRow(d.C.X, d.C.Y, d.R)
			k := 1 + rng.Intn(4)
			p := randDiscrete(rng, 1, k, 20)[0]
			pts = append(pts, p)
			fp.AppendDiscreteRow(p.Locs, p.W)
		} else {
			i := rng.Intn(len(disks))
			disks = append(disks[:i], disks[i+1:]...)
			fd.DeleteRow(i)
			i = rng.Intn(len(pts))
			pts = append(pts[:i], pts[i+1:]...)
			fp.DeleteRow(i)
		}
	}
	wantD := kernel.FromDisks(disks)
	if fd.N != wantD.N || !slices.Equal(fd.CX, wantD.CX) || !slices.Equal(fd.CY, wantD.CY) || !slices.Equal(fd.R, wantD.R) {
		t.Fatalf("disk mirror diverged from rebuild after mutations (n=%d vs %d)", fd.N, wantD.N)
	}
	wantP := kernel.FromDiscrete(pts)
	if fp.N != wantP.N || !slices.Equal(fp.Xs, wantP.Xs) || !slices.Equal(fp.Ys, wantP.Ys) ||
		!slices.Equal(fp.W, wantP.W) || !slices.Equal(fp.Off, wantP.Off) {
		t.Fatalf("discrete mirror diverged from rebuild after mutations (n=%d vs %d)", fp.N, wantP.N)
	}
}
