package kernel

import "sync"

// Scratch is the reusable per-query arena: every buffer a query kernel
// needs to stage candidates, per-row distances, or probabilities lives
// here, so a steady-state query allocates nothing. Buffers keep their
// capacity across uses; callers reslice to [:0] (or resize Dists) at
// acquisition and may store grown slices back before releasing.
type Scratch struct {
	// Cand stages candidate / merged row ids.
	Cand []int
	// Loc stages shard-local answer ids.
	Loc []int
	// Dists stages per-row distance values (δ in the fused Lemma 2.1
	// scan), indexed by row id.
	Dists []float64
	// Probs stages probability values for the π merge.
	Probs []float64
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch leases a scratch arena from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch arena to the pool. The caller must not
// retain any of its buffers (results must be copied out first).
func PutScratch(s *Scratch) { scratchPool.Put(s) }
