package kernel

import (
	"math"
	"sync"
)

// Scratch is the reusable per-query arena: every buffer a query kernel
// needs to stage candidates, per-row distances, or probabilities lives
// here, so a steady-state query allocates nothing. Buffers keep their
// capacity across uses; callers reslice to [:0] (or resize Dists) at
// acquisition and may store grown slices back before releasing.
type Scratch struct {
	// Cand stages candidate / merged row ids.
	Cand []int
	// Loc stages shard-local answer ids.
	Loc []int
	// Dists stages per-row distance values (δ in the fused Lemma 2.1
	// scan), indexed by row id.
	Dists []float64
	// Probs stages probability values for the π merge.
	Probs []float64
	// Tile lanes for the multi-query kernels (tile.go): per-lane
	// two-smallest-Δ state and the lane-major dense δ block
	// (TileDists[t*stride+i] is lane t's δ_i). Sized by TileLanes.
	TileM1, TileM2 []float64
	TileArg        []int
	TileDists      []float64
}

// TileLanes returns the tile kernels' per-lane state sized for T lanes
// over n rows, with every lane's two-smallest-Δ state initialized
// (m1 = m2 = +Inf, arg1 = -1) exactly as the scalar scan starts. The
// δ block is uninitialized — the kernels write each staged entry before
// the filter reads it.
func (s *Scratch) TileLanes(T, n int) (m1, m2 []float64, arg1 []int, deltas []float64) {
	if cap(s.TileM1) < T {
		s.TileM1 = make([]float64, T)
		s.TileM2 = make([]float64, T)
		s.TileArg = make([]int, T)
	}
	m1, m2, arg1 = s.TileM1[:T], s.TileM2[:T], s.TileArg[:T]
	for t := 0; t < T; t++ {
		inf := math.Inf(1)
		m1[t], m2[t], arg1[t] = inf, inf, -1
	}
	if cap(s.TileDists) < T*n {
		s.TileDists = make([]float64, T*n)
	}
	deltas = s.TileDists[:T*n]
	return m1, m2, arg1, deltas
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch leases a scratch arena from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch arena to the pool. The caller must not
// retain any of its buffers (results must be copied out first).
func PutScratch(s *Scratch) { scratchPool.Put(s) }
