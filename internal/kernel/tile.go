// Tiled (multi-query) kernels: one pass over the SoA rows serves a
// whole tile of T queries. The row data — the expensive stream at large
// n — is read once per tile instead of once per query, so the per-query
// memory traffic drops by the tile width while the arithmetic stays
// exactly the scalar kernels': for every lane t the per-row work is the
// same math.Hypot calls in the same order with the same builtin min/max
// folds, so each lane's answer is bit-identical to a scalar
// ScanTwoMin/AppendNonzero/ExpectedArgmin call on that query alone.
//
// Loop order is row-major (row outer, lane inner, locations innermost
// for discrete rows): the row's locations are hot in L1 while every
// lane consumes them, and each lane's scalar accumulators (m1, m2,
// arg1) live in small per-lane slices indexed by the lane id.
package kernel

import "math"

// ScanTwoMinTile is ScanTwoMin over a tile of queries: it folds the
// rows listed in ids into each active lane's running two-smallest-Δ
// state, staging lane t's δ_i at deltas[t*stride+i]. act lists the
// active lane indices (a lane whose pruning bound already excludes this
// shard is simply absent); qx/qy/m1/m2/arg1 are indexed by lane id, so
// inactive lanes' state is untouched. Per lane the update rule is
// ScanTwoMin's, operation for operation.
func (f *Flat) ScanTwoMinTile(ids []int, act []int, qx, qy []float64, deltas []float64, stride int, m1, m2 []float64, arg1 []int) {
	switch f.Kind {
	case KindDiscrete:
		for _, i := range ids {
			rx := f.Xs[f.Off[i]:f.Off[i+1]]
			ry := f.Ys[f.Off[i]:f.Off[i+1]]
			ry = ry[:len(rx)] // provable len equality: no ry[a] bounds check
			for _, t := range act {
				qxt, qyt := qx[t], qy[t]
				lo, hi := math.Inf(1), 0.0
				for a, x := range rx {
					d := math.Hypot(qxt-x, qyt-ry[a])
					lo = min(lo, d)
					hi = max(hi, d)
				}
				deltas[t*stride+i] = lo
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	case KindSquares:
		for _, i := range ids {
			for _, t := range act {
				d := f.squareDist(i, qx[t], qy[t])
				deltas[t*stride+i] = max(d-f.R[i], 0)
				hi := d + f.R[i]
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	default:
		for _, i := range ids {
			cx, cy, r := f.CX[i], f.CY[i], f.R[i]
			for _, t := range act {
				d := math.Hypot(qx[t]-cx, qy[t]-cy)
				deltas[t*stride+i] = max(d-r, 0)
				hi := d + r
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	}
}

// scanAllTwoMinTile is ScanTwoMinTile over every row with every lane
// active — the brute tile's full scan, without the ids/act indirection.
func (f *Flat) scanAllTwoMinTile(qx, qy []float64, deltas []float64, m1, m2 []float64, arg1 []int) {
	n := f.N
	T := len(qx)
	qy = qy[:T]
	switch f.Kind {
	case KindDiscrete:
		for i := 0; i < n; i++ {
			rx := f.Xs[f.Off[i]:f.Off[i+1]]
			ry := f.Ys[f.Off[i]:f.Off[i+1]]
			ry = ry[:len(rx)]
			for t := 0; t < T; t++ {
				qxt, qyt := qx[t], qy[t]
				lo, hi := math.Inf(1), 0.0
				for a, x := range rx {
					d := math.Hypot(qxt-x, qyt-ry[a])
					lo = min(lo, d)
					hi = max(hi, d)
				}
				deltas[t*n+i] = lo
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	case KindSquares:
		for i := 0; i < n; i++ {
			for t := 0; t < T; t++ {
				d := f.squareDist(i, qx[t], qy[t])
				deltas[t*n+i] = max(d-f.R[i], 0)
				hi := d + f.R[i]
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	default:
		for i := 0; i < n; i++ {
			cx, cy, r := f.CX[i], f.CY[i], f.R[i]
			for t := 0; t < T; t++ {
				d := math.Hypot(qx[t]-cx, qy[t]-cy)
				deltas[t*n+i] = max(d-r, 0)
				hi := d + r
				if hi < m1[t] {
					m2[t] = m1[t]
					m1[t], arg1[t] = hi, i
				} else if hi < m2[t] {
					m2[t] = hi
				}
			}
		}
	}
}

// AppendNonzeroTile is AppendNonzero over a tile of queries: lane t's
// NN≠0 answer (ascending row order) is appended to dsts[t]. Each lane's
// output is bit-identical to AppendNonzero(qx[t], qy[t], ...).
func (f *Flat) AppendNonzeroTile(qx, qy []float64, dsts [][]int, sc *Scratch) [][]int {
	n := f.N
	T := len(qx)
	if n == 0 || T == 0 {
		return dsts
	}
	if n == 1 {
		// The sole region is its own nonzero neighbor regardless of δ/Δ.
		for t := 0; t < T; t++ {
			dsts[t] = append(dsts[t], 0)
		}
		return dsts
	}
	m1, m2, arg1, deltas := sc.TileLanes(T, n)
	f.scanAllTwoMinTile(qx, qy, deltas, m1, m2, arg1)
	// Per lane, the same arg1-split filter as the scalar kernel: rows
	// other than the Δ-minimizer test the loop-invariant m1, the
	// minimizer itself tests m2, appends stay in ascending row order.
	for t := 0; t < T; t++ {
		row := deltas[t*n : t*n+n]
		dst := dsts[t]
		b1 := m1[t]
		a1 := arg1[t]
		end := a1
		if end < 0 {
			end = n
		}
		for i := 0; i < end; i++ {
			if row[i] < b1 {
				dst = append(dst, i)
			}
		}
		if a1 >= 0 {
			if row[a1] < m2[t] {
				dst = append(dst, a1)
			}
			for i := a1 + 1; i < n; i++ {
				if row[i] < b1 {
					dst = append(dst, i)
				}
			}
		}
		dsts[t] = dst
	}
	return dsts
}

// ExpectedArgminTile is ExpectedArgmin over a tile of queries: lane t's
// (argmin row, minimum expected distance) land in best[t]/bestD[t],
// with the scalar kernel's first-strict-min tie rule per lane. Callers
// guard Kind == KindDiscrete.
func (f *Flat) ExpectedArgminTile(qx, qy []float64, best []int, bestD []float64) {
	T := len(qx)
	for t := 0; t < T; t++ {
		best[t], bestD[t] = -1, math.Inf(1)
	}
	for i := 0; i < f.N; i++ {
		rx := f.Xs[f.Off[i]:f.Off[i+1]]
		ry := f.Ys[f.Off[i]:f.Off[i+1]]
		rw := f.W[f.Off[i]:f.Off[i+1]]
		ry = ry[:len(rx)]
		rw = rw[:len(rx)]
		for t := 0; t < T; t++ {
			qxt, qyt := qx[t], qy[t]
			e := 0.0
			for a, x := range rx {
				e += rw[a] * math.Hypot(qxt-x, qyt-ry[a])
			}
			if e < bestD[t] {
				best[t], bestD[t] = i, e
			}
		}
	}
}
