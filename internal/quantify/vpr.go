package quantify

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"unn/internal/arrgn"
	"unn/internal/geom"
	"unn/internal/uncertain"
)

// VPr is the exact probabilistic Voronoi diagram of §4.1 (Theorem 4.2):
// the arrangement of all O(N²) pairwise bisector lines of the N possible
// locations refines V_Pr(P) — inside each cell the distance order of all
// locations, hence every π_i, is constant (Lemma 4.1). Each cell stores
// its full π vector; queries are point location plus a lookup.
//
// The worst-case size is Θ(N⁴), which is why the paper (and this
// library) treats it as the small-instance exact baseline.
type VPr struct {
	pts    []*uncertain.Discrete
	Arr    *arrgn.Arrangement
	Loc    *arrgn.Locator
	Box    geom.Rect
	labels [][]int32   // per slab, per gap: index into vecs
	vecs   [][]float64 // interned distinct π vectors
	stats  arrgn.Stats
}

// VPrOptions tunes construction.
type VPrOptions struct {
	// BoxMargin inflates the location bounding box (default 2× diameter).
	BoxMargin float64
	// SnapTol is the arrangement snapping tolerance.
	SnapTol float64
}

// BuildVPr constructs the diagram. Cost grows like N⁴; instances beyond a
// few dozen locations are rejected to keep memory sane.
func BuildVPr(pts []*uncertain.Discrete, opt VPrOptions) (*VPr, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("quantify: empty point set")
	}
	var locs []geom.Point
	for _, p := range pts {
		locs = append(locs, p.Locs...)
	}
	N := len(locs)
	if N > 96 {
		return nil, fmt.Errorf("quantify: V_Pr over %d locations would have ~N⁴ = %g cells; use MonteCarlo or Spiral", N, math.Pow(float64(N), 4))
	}
	bb := geom.RectAround(locs...)
	diam := math.Max(bb.Diag(), 1)
	if opt.BoxMargin == 0 {
		opt.BoxMargin = 2 * diam
	}
	if opt.SnapTol == 0 {
		opt.SnapTol = 1e-9 * diam
	}
	box := bb.Inflate(opt.BoxMargin)

	var segs []arrgn.InSeg
	curve := 0
	for a := 0; a < N; a++ {
		for b := a + 1; b < N; b++ {
			if locs[a].Eq(locs[b]) {
				continue // coincident locations have no bisector
			}
			l := geom.Bisector(locs[a], locs[b])
			if s, ok := l.ClipToRect(box); ok {
				segs = append(segs, arrgn.InSeg{S: s, Curve: curve})
				curve++
			}
		}
	}
	v := &VPr{pts: pts, Box: box}
	v.Arr = arrgn.Build(segs, opt.SnapTol)
	v.Loc = arrgn.NewLocator(v.Arr)
	v.stats = v.Arr.Stats()

	// Label every gap with its (interned) exact π vector.
	intern := map[string]int32{}
	v.labels = make([][]int32, v.Loc.SlabCount())
	for s := 0; s < v.Loc.SlabCount(); s++ {
		gaps := v.Loc.GapCount(s)
		v.labels[s] = make([]int32, gaps)
		for g := 0; g < gaps; g++ {
			pi := ExactAt(pts, v.Loc.GapRep(s, g))
			key := vecKey(pi)
			id, ok := intern[key]
			if !ok {
				id = int32(len(v.vecs))
				v.vecs = append(v.vecs, pi)
				intern[key] = id
			}
			v.labels[s][g] = id
		}
	}
	return v, nil
}

// vecKey quantizes a probability vector for interning; 1e-12 resolution
// comfortably separates genuinely distinct cells at the scales used.
func vecKey(pi []float64) string {
	var sb strings.Builder
	for _, v := range pi {
		sb.WriteString(strconv.FormatInt(int64(math.Round(v*1e12)), 36))
		sb.WriteByte(':')
	}
	return sb.String()
}

// Stats returns the combinatorial statistics of the bisector arrangement
// (the refinement of V_Pr whose size Lemma 4.1 bounds by O(N⁴)).
func (v *VPr) Stats() arrgn.Stats { return v.stats }

// DistinctCells returns the number of distinct π vectors over all located
// gaps — a lower bound on the true complexity of V_Pr(P).
func (v *VPr) DistinctCells() int { return len(v.vecs) }

// DistinctCellsWithin counts distinct π vectors among gaps whose
// representative lies inside region (used by the Ω(n⁴) construction of
// Lemma 4.1, which concentrates its cells in the unit disk).
func (v *VPr) DistinctCellsWithin(region geom.Disk) int {
	seen := map[int32]bool{}
	for s := range v.labels {
		for g, id := range v.labels[s] {
			if region.Contains(v.Loc.GapRep(s, g)) {
				seen[id] = true
			}
		}
	}
	return len(seen)
}

// Query returns the exact quantification probabilities of q: an O(log N)
// point location inside the box, the exact sweep outside.
func (v *VPr) Query(q geom.Point) []float64 {
	if v.Box.Contains(q) {
		if s, g, ok := v.Loc.Locate(q); ok {
			return v.vecs[v.labels[s][g]]
		}
	}
	return ExactAt(v.pts, q)
}

// QueryPositive returns the positive entries of Query.
func (v *VPr) QueryPositive(q geom.Point) []Prob {
	var out []Prob
	for i, p := range v.Query(q) {
		if p > 0 {
			out = append(out, Prob{I: i, P: p})
		}
	}
	return out
}
