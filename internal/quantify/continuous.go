package quantify

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"unn/internal/kdtree"
	"unn/internal/uncertain"
)

// NewSpiralContinuous builds a spiral-search structure over continuous
// uncertain points by the discretization of Theorem 4.5: each pdf is
// replaced by perPoint uniform samples, after which Theorem 4.7 applies
// with ρ = 1 (uniform weights). This addresses the paper's open problem
// (iii) — extending spiral search to continuous distributions — in the
// engineering sense: queries are sublinear in n for fixed accuracy, and
// the total additive error is bounded by the spiral ε plus the αn
// discretization error of Lemma 4.4 (α shrinks like perPoint^{-1/2}).
//
// Use uncertain.SampleSizeForError(n, eps, delta) for a perPoint value
// with a proven guarantee, or a few hundred samples for the empirical
// accuracy shown in experiment E10.
func NewSpiralContinuous(pts []uncertain.Point, perPoint int, rng *rand.Rand) (*Spiral, []*uncertain.Discrete, error) {
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("quantify: empty point set")
	}
	if perPoint <= 0 {
		return nil, nil, fmt.Errorf("quantify: perPoint must be positive, got %d", perPoint)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5c5))
	}
	disc := make([]*uncertain.Discrete, len(pts))
	for i, p := range pts {
		disc[i] = uncertain.Discretize(p, perPoint, rng)
	}
	sp, err := NewSpiral(disc)
	if err != nil {
		return nil, nil, err
	}
	return sp, disc, nil
}

// NewMonteCarloParallel is NewMonteCarlo with the per-round sampling and
// preprocessing fanned out over all CPUs. Each round draws from its own
// deterministic sub-generator, so the result is independent of the worker
// count and identical across runs with the same options.
func NewMonteCarloParallel(pts []uncertain.Point, s int, opt MCOptions) (*MonteCarlo, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("quantify: empty point set")
	}
	if s <= 0 {
		return nil, fmt.Errorf("quantify: need at least one round, got %d", s)
	}
	if opt.Backend == MCDelaunay {
		// The Delaunay backend is an ablation path; keep it serial.
		return NewMonteCarlo(pts, s, opt)
	}
	seed := int64(0x6d63)
	if opt.Rng != nil {
		seed = int64(opt.Rng.Uint64())
	}
	mc := &MonteCarlo{n: len(pts), s: s, backend: MCKDTree}
	mc.trees = make([]*kdtree.Tree, s)

	workers := runtime.GOMAXPROCS(0)
	if workers > s {
		workers = s
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				rng := rand.New(rand.NewSource(seed + int64(r)*0x9e3779b9))
				items := make([]kdtree.Item, len(pts))
				for i, p := range pts {
					items[i] = kdtree.Item{P: p.Sample(rng), ID: i}
				}
				mc.trees[r] = kdtree.New(items)
			}
		}()
	}
	for r := 0; r < s; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	return mc, nil
}
