package quantify

import (
	"fmt"
	"math"
	"math/rand"

	"unn/internal/delaunay"
	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/uncertain"
)

// MCBackend selects the per-instantiation nearest-neighbor structure.
type MCBackend int

const (
	// MCKDTree answers each round's NN query with a kd-tree (default).
	MCKDTree MCBackend = iota
	// MCDelaunay uses a Delaunay triangulation per round — the literal
	// "Voronoi diagram + point location" plan of §4.2, kept as an
	// ablation backend (benchmark E9).
	MCDelaunay
)

// MonteCarlo is the structure of Theorem 4.3/4.5: s independent
// instantiations R_1,…,R_s of the uncertain points, each preprocessed for
// exact nearest-neighbor queries. ˆπ_i(q) = (#rounds where P_i's sample
// is the NN of q)/s satisfies |ˆπ_i(q) − π_i(q)| ≤ ε for all i and all q
// with probability ≥ 1−δ when s = Rounds(n, k, ε, δ).
type MonteCarlo struct {
	n       int
	s       int
	trees   []*kdtree.Tree
	tris    []*delaunay.Triangulation
	owners  [][]int // per round: sample index -> owner (Delaunay may merge duplicates)
	backend MCBackend
}

// MCOptions configures construction.
type MCOptions struct {
	Backend MCBackend
	Rng     *rand.Rand
}

// Rounds returns the number s of instantiations prescribed by the proof
// of Theorem 4.3: s = (1/2ε²) ln(2 n |Q| / δ) with |Q| = O((nk)⁴) distinct
// cells (Lemma 4.1).
func Rounds(n, k int, eps, delta float64) int {
	N := float64(n * k)
	if N < 2 {
		N = 2
	}
	q := 4 * math.Log(N) // ln |Q| with |Q| = N⁴
	s := (math.Log(2*float64(n)/delta) + q) / (2 * eps * eps)
	if s < 1 {
		s = 1
	}
	return int(math.Ceil(s))
}

// RoundsEmpirical returns the much smaller per-query bound
// s = (1/2ε²) ln(2n/δ), valid when the guarantee is needed for any fixed
// query rather than uniformly over the plane. The experiments use it to
// show the ε ∝ 1/√s error decay.
func RoundsEmpirical(n int, eps, delta float64) int {
	s := math.Log(2*float64(n)/delta) / (2 * eps * eps)
	if s < 1 {
		s = 1
	}
	return int(math.Ceil(s))
}

// NewMonteCarlo draws s instantiations and preprocesses each one.
// Works for any mix of continuous and discrete uncertain points: a round
// instantiates every point by sampling its distribution (for continuous
// points this is the direct form of Theorem 4.5; pre-discretized points
// via uncertain.Discretize give the literal reduction of Lemma 4.4).
func NewMonteCarlo(pts []uncertain.Point, s int, opt MCOptions) (*MonteCarlo, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("quantify: empty point set")
	}
	if s <= 0 {
		return nil, fmt.Errorf("quantify: need at least one round, got %d", s)
	}
	rng := opt.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x6d63))
	}
	mc := &MonteCarlo{n: len(pts), s: s, backend: opt.Backend}
	for r := 0; r < s; r++ {
		sample := make([]geom.Point, len(pts))
		for i, p := range pts {
			sample[i] = p.Sample(rng)
		}
		switch opt.Backend {
		case MCDelaunay:
			// The triangulation merges exact duplicates, so remember each
			// vertex's owner; duplicate collisions pick the first owner
			// (a measure-zero tie for continuous distributions).
			tri := delaunay.New(sample)
			owner := make([]int, 0, len(sample))
			seen := map[geom.Point]bool{}
			for i, p := range sample {
				if !seen[p] {
					seen[p] = true
					owner = append(owner, i)
				}
			}
			mc.tris = append(mc.tris, tri)
			mc.owners = append(mc.owners, owner)
		default:
			items := make([]kdtree.Item, len(sample))
			for i, p := range sample {
				items[i] = kdtree.Item{P: p, ID: i}
			}
			mc.trees = append(mc.trees, kdtree.New(items))
		}
	}
	return mc, nil
}

// Rounds returns the number of instantiations stored.
func (mc *MonteCarlo) RoundsStored() int { return mc.s }

// Query estimates the quantification probabilities of q. At most s
// entries are nonzero; the remaining ˆπ_i are implicitly 0 (they are not
// returned).
func (mc *MonteCarlo) Query(q geom.Point) []Prob {
	counts := map[int]int{}
	if mc.backend == MCDelaunay {
		for r, tri := range mc.tris {
			if vi, _, ok := tri.Nearest(q); ok {
				counts[mc.owners[r][vi]]++
			}
		}
	} else {
		for _, tr := range mc.trees {
			if nb, ok := tr.Nearest(q); ok {
				counts[nb.Item.ID]++
			}
		}
	}
	out := make([]Prob, 0, len(counts))
	for i, c := range counts {
		out = append(out, Prob{I: i, P: float64(c) / float64(mc.s)})
	}
	return sortProbs(out)
}

// QueryDense returns the full estimate vector.
func (mc *MonteCarlo) QueryDense(q geom.Point) []float64 {
	pi := make([]float64, mc.n)
	for _, pr := range mc.Query(q) {
		pi[pr.I] = pr.P
	}
	return pi
}
