// Package quantify implements the second half of the paper: computing the
// quantification probabilities π_i(q) — the probability that P_i is the
// nearest uncertain point to q (Section 4).
//
// Four engines are provided:
//
//   - Exact evaluation of Eq. (2) for discrete distributions, by sweeping
//     the N = Σk_i locations in distance order (the per-query reference
//     every approximation is tested against);
//   - the exact probabilistic Voronoi diagram V_Pr(P) of §4.1: the
//     arrangement of the O(N²) pairwise bisector lines refines V_Pr, each
//     cell carries the full π vector (Lemma 4.1, Θ(N⁴) worst case;
//     Theorem 4.2 queries);
//   - the Monte-Carlo structure of §4.2: s random instantiations of P,
//     each preprocessed for exact NN queries; ˆπ_i(q) is the fraction of
//     instantiations in which P_i's sample is nearest (Theorem 4.3, and
//     Theorem 4.5 for continuous pdfs via direct instantiation or the
//     Discretize reduction);
//   - the deterministic spiral search of §4.3: only the m(ρ,ε) locations
//     nearest to q are retrieved and Eq. (2) is evaluated on that prefix
//     (Lemma 4.6 / Theorem 4.7), plus an adaptive variant that stops as
//     soon as the survival probability Π_j(1 − Ĝ_j) drops below ε.
package quantify

import (
	"math"
	"sort"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

// Prob is a sparse quantification-probability entry.
type Prob struct {
	I int     // index of the uncertain point
	P float64 // (estimated) probability of being the NN
}

// sortProbs orders by index for deterministic output.
func sortProbs(ps []Prob) []Prob {
	sort.Slice(ps, func(i, j int) bool { return ps[i].I < ps[j].I })
	return ps
}

// ExactAt evaluates π_i(q) for all i exactly via Eq. (2):
//
//	π_i(q) = Σ_{p_ia ∈ P_i} w_ia · Π_{j≠i} (1 − G_{q,j}(d(p_ia, q)))
//
// where G_{q,j}(r) = Σ_{d(p_jt,q) ≤ r} w_jt. Locations at exactly equal
// distance count into each other's cdf (the ≤ of Eq. (2)); such ties are
// measure-zero for generic inputs.
//
// Runs in O(N log N + N·n) time for n points with N total locations.
func ExactAt(pts []*uncertain.Discrete, q geom.Point) []float64 {
	var entries []swpEntry
	for i, p := range pts {
		for a, l := range p.Locs {
			entries = append(entries, swpEntry{d: q.Dist(l), i: i, w: p.W[a]})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].d < entries[b].d })
	return etaSweep(entries, len(pts))
}

// ExactPositive returns the positive entries of ExactAt as sparse pairs.
func ExactPositive(pts []*uncertain.Discrete, q geom.Point) []Prob {
	var out []Prob
	for i, p := range ExactAt(pts, q) {
		if p > 0 {
			out = append(out, Prob{I: i, P: p})
		}
	}
	return out
}

// TotalMass returns Σ_i π_i — 1 up to floating error for generic inputs
// (ties can only decrease it); exposed for validation.
func TotalMass(pi []float64) float64 {
	s := 0.0
	for _, v := range pi {
		s += v
	}
	return s
}

// MaxAbsDiff is the L∞ distance between two probability vectors.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		m = math.Max(m, math.Abs(a[i]-b[i]))
	}
	return m
}
